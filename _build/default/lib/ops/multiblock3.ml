(* Inter-block halos in 3D — the 3D instantiation of {!Multiblock}.

   A halo couples a box face of one dataset to a face of another, with an
   orientation matrix (axis permutation and flips, entries -1/0/1)
   describing how indices map across the interface.  Transfers are
   triggered explicitly by the application, as the paper describes. *)

open Types3

(* Destination point = dst_origin + M * (p - src_origin), with the
   transformed box shifted so its minimum corner lands on dst_origin. *)
type orientation = {
  xx : int; xy : int; xz : int;
  yx : int; yy : int; yz : int;
  zx : int; zy : int; zz : int;
}

let identity_orientation =
  { xx = 1; xy = 0; xz = 0; yx = 0; yy = 1; yz = 0; zx = 0; zy = 0; zz = 1 }

type halo = {
  halo_name : string;
  src : dat;
  dst : dat;
  src_range : range; (* face/box on the source, ghost cells allowed *)
  dst_range : range;
  orientation : orientation;
}

let transformed_extent o r =
  let w = r.xhi - r.xlo and h = r.yhi - r.ylo and d = r.zhi - r.zlo in
  ( abs ((o.xx * w) + (o.xy * h) + (o.xz * d)),
    abs ((o.yx * w) + (o.yy * h) + (o.yz * d)),
    abs ((o.zx * w) + (o.zy * h) + (o.zz * d)) )

let decl_halo ~name ~src ~dst ~src_range ~dst_range
    ?(orientation = identity_orientation) () =
  if src.dim <> dst.dim then invalid_arg "decl_halo3: component counts differ";
  let tw, th, td = transformed_extent orientation src_range in
  let dw = dst_range.xhi - dst_range.xlo in
  let dh = dst_range.yhi - dst_range.ylo in
  let dd = dst_range.zhi - dst_range.zlo in
  if tw <> dw || th <> dh || td <> dd then
    invalid_arg
      (Printf.sprintf
         "decl_halo3 %s: transformed source box %dx%dx%d does not match \
          destination box %dx%dx%d" name tw th td dw dh dd);
  let check_bounds d r =
    if r.xlo < x_min d || r.xhi > x_max d || r.ylo < y_min d || r.yhi > y_max d
       || r.zlo < z_min d || r.zhi > z_max d
    then
      invalid_arg (Printf.sprintf "decl_halo3 %s: range %s outside dat %s" name
                     (range_to_string r) d.dat_name)
  in
  check_bounds src src_range;
  check_bounds dst dst_range;
  { halo_name = name; src; dst; src_range; dst_range; orientation }

let transfer h =
  let o = h.orientation in
  let sw = h.src_range.xhi - h.src_range.xlo in
  let sh = h.src_range.yhi - h.src_range.ylo in
  let sd = h.src_range.zhi - h.src_range.zlo in
  let tx i j k = (o.xx * i) + (o.xy * j) + (o.xz * k) in
  let ty i j k = (o.yx * i) + (o.yy * j) + (o.yz * k) in
  let tz i j k = (o.zx * i) + (o.zy * j) + (o.zz * k) in
  (* Minimum transformed coordinate over the box corners (the transform is
     affine, so extrema sit on corners). *)
  let corner_min f =
    let m = ref 0 in
    List.iter
      (fun (i, j, k) -> if f i j k < !m then m := f i j k)
      [ (0, 0, 0); (sw - 1, 0, 0); (0, sh - 1, 0); (0, 0, sd - 1);
        (sw - 1, sh - 1, 0); (sw - 1, 0, sd - 1); (0, sh - 1, sd - 1);
        (sw - 1, sh - 1, sd - 1) ];
    !m
  in
  let min_tx = corner_min tx and min_ty = corner_min ty and min_tz = corner_min tz in
  for k = 0 to sd - 1 do
    for j = 0 to sh - 1 do
      for i = 0 to sw - 1 do
        let dx = h.dst_range.xlo + (tx i j k - min_tx) in
        let dy = h.dst_range.ylo + (ty i j k - min_ty) in
        let dz = h.dst_range.zlo + (tz i j k - min_tz) in
        for c = 0 to h.src.dim - 1 do
          set h.dst ~x:dx ~y:dy ~z:dz ~c
            (get h.src ~x:(h.src_range.xlo + i) ~y:(h.src_range.ylo + j)
               ~z:(h.src_range.zlo + k) ~c)
        done
      done
    done
  done

let transfer_all halos = List.iter transfer halos
