(* Airfoil driver: the OP2 proxy application from the command line.

     airfoil --nx 200 --ny 150 --iters 100 --backend mpi --ranks 8 --verify

   Prints the residual history like the original test case, the per-loop
   profile (the data behind Table I), and optionally cross-checks the
   result against the hand-coded baseline. *)

module Op2 = Am_op2.Op2
module App = Am_airfoil.App
module Umesh = Am_mesh.Umesh

let run nx ny iters backend ranks overlap renumber verify check analyze save_to
    mesh_file trace obs_json faults recover perf =
  Check_common.guard @@ fun () ->
  Am_obs.Obs.reset ();
  if trace <> None then Am_obs.Obs.set_tracing true;
  (* Meshes load from snapshot files (the HDF5-style input path) or are
     generated; --save-mesh in a previous run produces the file. *)
  let mesh =
    match mesh_file with
    | Some path when Sys.file_exists path ->
      Printf.printf "loading mesh from %s
%!" path;
      Am_sysio.Meshio.load path
    | Some path ->
      let m = Umesh.generate_airfoil ~nx ~ny () in
      Am_sysio.Meshio.save path m;
      Printf.printf "generated mesh written to %s
%!" path;
      m
    | None -> Umesh.generate_airfoil ~nx ~ny ()
  in
  Printf.printf "airfoil: %d cells, %d edges, %d nodes\n%!" mesh.Umesh.n_cells
    mesh.Umesh.n_edges mesh.Umesh.n_nodes;
  Fault_common.with_faults ~app:"airfoil" ~faults ~recover @@ fun fc ~recovering ->
  let pool = ref None in
  let t = App.create mesh in
  Perf_common.enable perf (Op2.trace t.App.ctx);
  if analyze then Am_core.Trace.set_enabled (Op2.trace t.App.ctx) true;
  if check then begin
    Op2.set_backend t.App.ctx Op2.Check;
    Am_core.Trace.set_enabled (Op2.trace t.App.ctx) true
  end
  else (match backend with
  | "seq" -> ()
  | "shared" ->
    let p = Am_taskpool.Pool.create () in
    pool := Some p;
    Op2.set_backend t.App.ctx (Op2.Shared { pool = p; block_size = 256 })
  | "cuda" ->
    Op2.set_backend t.App.ctx (Op2.Cuda_sim Am_op2.Exec_cuda.default_config)
  | "vec" -> Op2.set_backend t.App.ctx (Op2.Vec Am_op2.Exec_vec.default_config)
  | "mpi" ->
    Op2.partition t.App.ctx ~n_ranks:ranks
      ~strategy:(Op2.Kway_through t.App.edge_cells)
  | "hybrid" ->
    Op2.partition t.App.ctx ~n_ranks:ranks
      ~strategy:(Op2.Kway_through t.App.edge_cells);
    let p = Am_taskpool.Pool.create () in
    pool := Some p;
    Op2.set_rank_execution t.App.ctx (Op2.Rank_shared { pool = p; block_size = 256 })
  | other -> failwith (Printf.sprintf "unknown backend %s" other));
  if overlap then begin
    if not (backend = "mpi" || backend = "hybrid") then
      failwith "--overlap requires --backend mpi or hybrid";
    Op2.set_comm_mode t.App.ctx Op2.Overlap
  end;
  if renumber then begin
    let before, after = Op2.renumber t.App.ctx ~through:t.App.edge_cells in
    Printf.printf "renumbered: dual-graph mean bandwidth %.1f -> %.1f\n%!" before after
  end;
  (match Fault_common.injector fc with
  | Some f -> Op2.set_fault_injector t.App.ctx f
  | None -> ());
  Fault_common.arm fc ~recovering
    ~recover:(fun path -> Op2.recover_from_file t.App.ctx ~path)
    ~enable:(fun () ->
      Op2.enable_checkpointing t.App.ctx;
      Op2.request_checkpoint t.App.ctx);
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    let rms = App.iteration t in
    Fault_common.maybe_persist fc (Op2.checkpoint_session t.App.ctx) (fun path ->
        Op2.checkpoint_to_file t.App.ctx ~path);
    if i mod 100 = 0 || i = iters then Printf.printf "  %4d  %10.5e\n%!" i rms
  done;
  Printf.printf "wall time: %s\n\n%!" (Am_util.Units.seconds (Unix.gettimeofday () -. t0));
  print_string (Am_core.Profile.report (Op2.profile t.App.ctx));
  (match Op2.comm_stats t.App.ctx with
  | Some s ->
    Printf.printf "\ncommunication: %d messages, %s, %d halo exchanges\n"
      s.Am_simmpi.Comm.messages
      (Am_util.Units.bytes s.Am_simmpi.Comm.bytes)
      s.Am_simmpi.Comm.exchanges
  | None -> ());
  if check || analyze then
    Check_common.report
      (if analyze then Am_analysis.Analysis.static_op2 t.App.ctx
       else Am_analysis.Analysis.check_op2 t.App.ctx);
  if verify && not renumber then begin
    let h = Am_airfoil.Hand.create mesh in
    ignore (Am_airfoil.Hand.run h ~iters);
    let d =
      Am_util.Fa.rel_discrepancy (App.solution t) (Am_airfoil.Hand.solution h)
    in
    Printf.printf "\nverification vs hand-coded baseline: max discrepancy %.3e %s\n" d
      (if d < 1e-10 then "(PASS)" else "(FAIL)");
    if d >= 1e-10 then exit 1
  end;
  (match save_to with
  | Some path ->
    Am_sysio.Snapshot.save path [ ("q", App.solution t) ];
    Printf.printf "solution written to %s\n" path
  | None -> ());
  Perf_common.print perf ~profile:(Op2.profile t.App.ctx) ~trace:(Op2.trace t.App.ctx);
  Am_obs.Obs.finish ?trace ?obs_json
    ~roofline_gbs:Am_perfmodel.Machines.(xeon_e5_2697v2.stream_bw)
    ~loops:(Am_core.Profile.obs_rows (Op2.profile t.App.ctx))
    ();
  match !pool with Some p -> Am_taskpool.Pool.shutdown p | None -> ()

open Cmdliner

let nx = Arg.(value & opt int 120 & info [ "nx" ] ~doc:"Cells in x.")
let ny = Arg.(value & opt int 80 & info [ "ny" ] ~doc:"Cells in y.")
let iters = Arg.(value & opt int 100 & info [ "iters" ] ~doc:"Outer iterations.")

let backend =
  Arg.(
    value
    & opt string "seq"
    & info [ "backend" ] ~doc:"Backend: seq, vec, shared, cuda, mpi or hybrid.")

let ranks = Arg.(value & opt int 4 & info [ "ranks" ] ~doc:"Simulated MPI ranks.")

let overlap =
  Arg.(
    value & flag
    & info [ "overlap" ]
        ~doc:
          "Overlap halo exchanges with interior compute (core/boundary split; \
           mpi and hybrid backends).")

let renumber =
  Arg.(value & flag & info [ "renumber" ] ~doc:"Apply RCM mesh renumbering first.")

let verify =
  Arg.(value & flag & info [ "verify" ] ~doc:"Cross-check against the hand-coded baseline.")

let save_to =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~doc:"Write the final solution to a snapshot file.")

let mesh_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "mesh" ]
        ~doc:"Mesh snapshot file: loaded if it exists, generated and written \
              otherwise (the HDF5-style input path).")


let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"Write a Chrome trace-event JSON of the run to $(docv) (open in \
              chrome://tracing or ui.perfetto.dev).  Enables span tracing."
        ~docv:"FILE")

let obs_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-json" ]
        ~doc:"Write the runtime counter registry as JSON to $(docv)." ~docv:"FILE")

let cmd =
  Cmd.v
    (Cmd.info "airfoil" ~doc:"Non-linear 2D inviscid Euler proxy application (OP2)")
    Term.(
      const run $ nx $ ny $ iters $ backend $ ranks $ overlap $ renumber $ verify
      $ Check_common.arg $ Check_common.analyze_arg $ save_to $ mesh_file
      $ trace_arg $ obs_json_arg
      $ Fault_common.faults_arg $ Fault_common.recover_arg $ Perf_common.arg)

let () = exit (Cmd.eval cmd)
