examples/unstructured_advection.ml: Am_core Am_mesh Am_op2 Array Float Printf
