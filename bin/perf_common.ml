(* Shared --perf-report plumbing for the proxy-app drivers.

   The flag turns on span tracing (so the facades sample per-loop GC
   deltas) and the context's loop-descriptor trace (so the doctor has a
   signature to price), then prints the per-loop attribution table after
   the run: achieved GB/s vs. the perfmodel prediction, GC activity and a
   verdict per loop handle. *)

let device = Am_perfmodel.Machines.xeon_e5_2697v2

let enable perf trace =
  if perf then begin
    Am_obs.Obs.set_tracing true;
    Am_core.Trace.set_enabled trace true
  end

let print perf ~profile ~trace =
  if perf then begin
    Am_obs.Obs.run_flush_hooks ();
    let rows =
      Am_perfmodel.Doctor.diagnose ~device ~profile ~loops:(Am_core.Trace.events trace) ()
    in
    print_newline ();
    print_string (Am_perfmodel.Doctor.report ~device rows)
  end

open Cmdliner

let arg =
  Arg.(
    value & flag
    & info [ "perf-report" ]
        ~doc:
          "Print a per-loop performance-attribution table after the run: \
           achieved GB/s against the perfmodel prediction for each loop, GC \
           deltas, and an ok / below-model / above-model verdict.  Enables \
           span tracing for the run.")
