lib/op2/exec_common.ml: Am_core Array Float List Types
