(* Tests for the mesh substrate: CSR graphs, generators, partitioners,
   reordering and colouring. *)

module Csr = Am_mesh.Csr
module Umesh = Am_mesh.Umesh
module Partition = Am_mesh.Partition
module Reorder = Am_mesh.Reorder
module Coloring = Am_mesh.Coloring

let path_graph n = Csr.of_edges ~n (Array.init (n - 1) (fun i -> (i, i + 1)))

(* ---- Csr ---- *)

let test_csr_of_edges () =
  let g = Csr.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3); (3, 0) |] in
  Alcotest.(check int) "vertices" 4 (Csr.n_vertices g);
  Alcotest.(check int) "arcs" 8 (Csr.n_arcs g);
  Alcotest.(check int) "degree" 2 (Csr.degree g 0);
  Alcotest.(check bool) "symmetric" true (Csr.is_symmetric g)

let test_csr_self_loops_dropped () =
  let g = Csr.of_edges ~n:3 [| (0, 0); (0, 1) |] in
  Alcotest.(check int) "self loop dropped" 2 (Csr.n_arcs g)

let test_csr_of_map_rows () =
  (* Two rows (1D edges) over 3 vertices: 0-1, 1-2 -> a path. *)
  let g = Csr.of_map_rows ~n_vertices:3 ~n_rows:2 ~arity:2 [| 0; 1; 1; 2 |] in
  Alcotest.(check int) "path arcs" 4 (Csr.n_arcs g);
  Alcotest.(check (array int)) "middle vertex" [| 0; 2 |]
    (let nb = Csr.neighbours g 1 in
     Array.sort compare nb;
     nb)

let test_csr_edge_cut () =
  let g = path_graph 4 in
  Alcotest.(check int) "cut of split" 1 (Csr.edge_cut g [| 0; 0; 1; 1 |]);
  Alcotest.(check int) "no cut" 0 (Csr.edge_cut g [| 0; 0; 0; 0 |])

let test_csr_bandwidth () =
  let g = path_graph 5 in
  Alcotest.(check int) "path bandwidth" 1 (Csr.bandwidth g);
  (* Permute ends to middle: bandwidth grows. *)
  let g2 = Csr.permute g [| 4; 1; 2; 3; 0 |] in
  Alcotest.(check bool) "worse numbering" true (Csr.bandwidth g2 > 1)

let test_csr_permute_invalid () =
  let g = path_graph 3 in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Csr.permute: not a permutation") (fun () ->
      ignore (Csr.permute g [| 0; 0; 1 |]))

(* ---- Umesh ---- *)

let test_umesh_counts () =
  let m = Umesh.generate_square ~nx:4 ~ny:3 () in
  Alcotest.(check int) "cells" 12 m.Umesh.n_cells;
  Alcotest.(check int) "nodes" 20 m.Umesh.n_nodes;
  Alcotest.(check int) "edges" (3 * 3 + 4 * 2) m.Umesh.n_edges;
  Alcotest.(check int) "bedges" 14 m.Umesh.n_bedges

let test_umesh_validates () =
  let m = Umesh.generate_airfoil ~nx:10 ~ny:8 () in
  Umesh.validate m (* raises on violation *)

let test_umesh_dual_graph () =
  let m = Umesh.generate_square ~nx:3 ~ny:3 () in
  let g = Umesh.cell_dual_graph m in
  Alcotest.(check int) "dual vertices" 9 (Csr.n_vertices g);
  (* Centre cell has 4 neighbours. *)
  Alcotest.(check int) "centre degree" 4 (Csr.degree g 4)

let test_umesh_each_interior_edge_two_cells () =
  let m = Umesh.generate_square ~nx:5 ~ny:4 () in
  for e = 0 to m.Umesh.n_edges - 1 do
    let c1 = m.Umesh.edge_cells.(2 * e) and c2 = m.Umesh.edge_cells.((2 * e) + 1) in
    if c1 = c2 then Alcotest.fail "interior edge must join two distinct cells"
  done

let test_umesh_scramble_preserves_structure () =
  let m = Umesh.generate_square ~nx:6 ~ny:5 () in
  let s = Umesh.scramble ~seed:11 m in
  Umesh.validate s;
  (* The dual graph is isomorphic, so degree multisets must match. *)
  let deg g = Array.init (Csr.n_vertices g) (Csr.degree g) in
  let d1 = deg (Umesh.cell_dual_graph m) and d2 = deg (Umesh.cell_dual_graph s) in
  Array.sort compare d1;
  Array.sort compare d2;
  Alcotest.(check (array int)) "degree multiset" d1 d2

let test_umesh_coords_bounded () =
  let m = Umesh.generate_airfoil ~nx:16 ~ny:12 () in
  for n = 0 to m.Umesh.n_nodes - 1 do
    let x = m.Umesh.node_coords.(2 * n) and y = m.Umesh.node_coords.((2 * n) + 1) in
    if x < -1e-9 || x > 3.0 +. 1e-9 || y < -1e-9 || y > 2.0 +. 1e-9 then
      Alcotest.failf "node %d out of domain: (%f, %f)" n x y
  done

(* ---- Partition ---- *)

let grid_graph nx ny =
  let m = Umesh.generate_square ~nx ~ny () in
  (m, Umesh.cell_dual_graph m)

let test_partition_block () =
  let parts = Partition.block ~n:10 ~parts:3 in
  Alcotest.(check (array int)) "sizes" [| 4; 3; 3 |] (Partition.part_sizes ~parts:3 parts);
  Alcotest.(check int) "first part" 0 parts.(0);
  Alcotest.(check int) "last part" 2 parts.(9)

let test_partition_rcb_balance () =
  let m, _ = grid_graph 16 16 in
  let coords = Umesh.cell_centroids m in
  let parts = Partition.rcb ~coords ~dim:2 ~n:m.Umesh.n_cells ~parts:4 in
  Alcotest.(check bool) "balanced" true (Partition.imbalance ~parts:4 parts < 0.05)

let test_partition_rcb_nonpow2 () =
  let m, _ = grid_graph 15 13 in
  let coords = Umesh.cell_centroids m in
  let parts = Partition.rcb ~coords ~dim:2 ~n:m.Umesh.n_cells ~parts:3 in
  Alcotest.(check bool) "balanced with 3 parts" true
    (Partition.imbalance ~parts:3 parts < 0.1)

let test_partition_kway_quality () =
  let _, g = grid_graph 20 20 in
  let parts = Partition.kway g ~parts:4 in
  let q = Partition.quality g ~parts:4 parts in
  Alcotest.(check bool) "balanced" true (q.Partition.imbalance < 0.12);
  (* A 20x20 grid split 4 ways should cut far fewer than half the edges. *)
  Alcotest.(check bool) "cut reasonable" true (q.Partition.edge_cut < 200)

let test_partition_kway_beats_block_on_cut () =
  let _, g = grid_graph 24 24 in
  let kway = Partition.kway g ~parts:8 in
  (* A scrambled (locality-free) assignment as worst case. *)
  let rng = Am_util.Prng.create 5 in
  let random = Array.init (Csr.n_vertices g) (fun _ -> Am_util.Prng.int rng 8) in
  Alcotest.(check bool) "kway beats random cut" true
    (Csr.edge_cut g kway < Csr.edge_cut g random)

let test_partition_halo_volume () =
  let _, g = grid_graph 10 10 in
  let one_part = Array.make (Csr.n_vertices g) 0 in
  Alcotest.(check int) "single part: no halo" 0 (Partition.halo_volume g one_part);
  let parts = Partition.kway g ~parts:4 in
  Alcotest.(check bool) "multi part: some halo" true
    (Partition.halo_volume g parts > 0)

(* ---- Reorder ---- *)

let test_reorder_rcm_reduces_bandwidth () =
  let m = Umesh.scramble ~seed:3 (Umesh.generate_square ~nx:20 ~ny:20 ()) in
  let g = Umesh.cell_dual_graph m in
  let perm = Reorder.rcm g in
  Alcotest.(check bool) "is permutation" true (Reorder.is_permutation perm);
  let g2 = Csr.permute g perm in
  Alcotest.(check bool) "bandwidth reduced" true (Csr.bandwidth g2 < Csr.bandwidth g)

let test_reorder_rcm_disconnected () =
  (* Two disjoint path components. *)
  let g = Csr.of_edges ~n:6 [| (0, 1); (1, 2); (3, 4); (4, 5) |] in
  let perm = Reorder.rcm g in
  Alcotest.(check bool) "is permutation" true (Reorder.is_permutation perm)

let test_reorder_permute_data_roundtrip () =
  let perm = [| 2; 0; 1 |] in
  let data = [| 10.0; 11.0; 20.0; 21.0; 30.0; 31.0 |] in
  let permuted = Reorder.permute_data ~perm ~dim:2 data in
  Alcotest.(check (array (float 0.0))) "moved" [| 20.0; 21.0; 30.0; 31.0; 10.0; 11.0 |]
    permuted;
  let back = Reorder.permute_data ~perm:(Reorder.inverse perm) ~dim:2 permuted in
  Alcotest.(check (array (float 0.0))) "roundtrip" data back

let test_reorder_inverse_rejects () =
  Alcotest.check_raises "inverse rejects"
    (Invalid_argument "Reorder.inverse: not a permutation") (fun () ->
      ignore (Reorder.inverse [| 0; 0 |]))

let test_reorder_induced_order () =
  (* Two sources: source 0 touches target 5, source 1 touches target 1. After
     induction, source 1 (touching the smaller target) comes first. *)
  let perm = Reorder.induced_order ~n_sources:2 ~arity:1 [| 5; 1 |] in
  Alcotest.(check (array int)) "induced" [| 1; 0 |] perm

let test_hilbert_is_permutation () =
  let m = Umesh.generate_airfoil ~nx:15 ~ny:11 () in
  let coords = Umesh.cell_centroids m in
  let perm = Reorder.hilbert ~coords ~dim:2 ~n:m.Umesh.n_cells () in
  Alcotest.(check bool) "permutation" true (Reorder.is_permutation perm)

let test_hilbert_improves_scrambled_locality () =
  let m = Umesh.scramble ~seed:4 (Umesh.generate_square ~nx:24 ~ny:24 ()) in
  let g = Umesh.cell_dual_graph m in
  let perm = Reorder.hilbert ~coords:(Umesh.cell_centroids m) ~dim:2 ~n:m.Umesh.n_cells () in
  let g2 = Csr.permute g perm in
  Alcotest.(check bool) "locality improves" true
    (Csr.average_bandwidth g2 < Csr.average_bandwidth g /. 2.0)

let test_hilbert_adjacent_cells_near () =
  (* Consecutive curve positions must be geometrically close: the mean
     Hilbert-index distance of mesh-adjacent cells stays small. *)
  let m = Umesh.generate_square ~nx:16 ~ny:16 () in
  let perm = Reorder.hilbert ~coords:(Umesh.cell_centroids m) ~dim:2 ~n:m.Umesh.n_cells () in
  let g = Csr.permute (Umesh.cell_dual_graph m) perm in
  Alcotest.(check bool) "mean neighbour distance small" true
    (Csr.average_bandwidth g < 32.0)

let test_hilbert_rejects_bad_input () =
  Alcotest.check_raises "dim 1" (Invalid_argument "Reorder.hilbert: need at least 2 coordinates")
    (fun () -> ignore (Reorder.hilbert ~coords:[| 0.0 |] ~dim:1 ~n:1 ()))

(* ---- Coloring ---- *)

let edge_targets (m : Umesh.t) e f =
  f m.Umesh.edge_cells.(2 * e);
  f m.Umesh.edge_cells.((2 * e) + 1)

let test_coloring_valid_on_mesh () =
  let m = Umesh.generate_square ~nx:12 ~ny:9 () in
  let c =
    Coloring.color ~n_items:m.Umesh.n_edges ~n_targets:m.Umesh.n_cells
      ~targets:(edge_targets m)
  in
  Alcotest.(check bool) "proper colouring" true
    (Coloring.verify ~n_targets:m.Umesh.n_cells ~targets:(edge_targets m) c);
  (* A structured quad mesh edge-colours with few colours. *)
  Alcotest.(check bool) "few colours" true (c.Coloring.n_colors <= 6)

let test_coloring_partitions_items () =
  let m = Umesh.generate_square ~nx:8 ~ny:8 () in
  let c =
    Coloring.color ~n_items:m.Umesh.n_edges ~n_targets:m.Umesh.n_cells
      ~targets:(edge_targets m)
  in
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 c.Coloring.by_color in
  Alcotest.(check int) "all items coloured" m.Umesh.n_edges total

let test_coloring_blocks () =
  let m = Umesh.generate_square ~nx:10 ~ny:10 () in
  let blocks = Coloring.make_blocks ~n_items:m.Umesh.n_edges ~block_size:16 in
  let c =
    Coloring.color_blocks ~blocks ~n_targets:m.Umesh.n_cells ~targets:(edge_targets m)
  in
  Alcotest.(check int) "all blocks coloured" blocks.Coloring.n_blocks
    (Array.length c.Coloring.colors);
  (* Same-colour blocks must touch disjoint cells. *)
  let block_targets b f =
    let lo, hi = Coloring.block_range blocks b in
    for e = lo to hi - 1 do
      edge_targets m e f
    done
  in
  Alcotest.(check bool) "proper block colouring" true
    (Coloring.verify ~n_targets:m.Umesh.n_cells ~targets:block_targets c)

let test_coloring_block_range () =
  let blocks = Coloring.make_blocks ~n_items:10 ~block_size:4 in
  Alcotest.(check int) "n_blocks" 3 blocks.Coloring.n_blocks;
  Alcotest.(check (pair int int)) "ragged last" (8, 10) (Coloring.block_range blocks 2)

(* ---- Properties ---- *)

let mesh_gen =
  QCheck.Gen.(pair (int_range 2 12) (int_range 2 12))

let prop_rcm_always_permutation =
  QCheck.Test.make ~name:"rcm returns a permutation" ~count:50
    (QCheck.make mesh_gen) (fun (nx, ny) ->
      let m = Umesh.generate_square ~nx ~ny () in
      Reorder.is_permutation (Reorder.rcm (Umesh.cell_dual_graph m)))

let prop_kway_covers_all_parts =
  QCheck.Test.make ~name:"kway uses every part id" ~count:50
    (QCheck.make QCheck.Gen.(pair mesh_gen (int_range 1 6)))
    (fun ((nx, ny), parts) ->
      QCheck.assume (nx * ny >= parts * 2);
      let g = Umesh.cell_dual_graph (Umesh.generate_square ~nx ~ny ()) in
      let assignment = Partition.kway g ~parts in
      let sizes = Partition.part_sizes ~parts assignment in
      Array.for_all (fun s -> s > 0) sizes)

let prop_coloring_proper =
  QCheck.Test.make ~name:"edge colouring is always proper" ~count:50
    (QCheck.make mesh_gen) (fun (nx, ny) ->
      let m = Umesh.generate_square ~nx ~ny () in
      let c =
        Coloring.color ~n_items:m.Umesh.n_edges ~n_targets:m.Umesh.n_cells
          ~targets:(edge_targets m)
      in
      Coloring.verify ~n_targets:m.Umesh.n_cells ~targets:(edge_targets m) c)

let () =
  Alcotest.run "mesh"
    [
      ( "csr",
        [
          Alcotest.test_case "of_edges" `Quick test_csr_of_edges;
          Alcotest.test_case "self loops dropped" `Quick test_csr_self_loops_dropped;
          Alcotest.test_case "of_map_rows" `Quick test_csr_of_map_rows;
          Alcotest.test_case "edge cut" `Quick test_csr_edge_cut;
          Alcotest.test_case "bandwidth" `Quick test_csr_bandwidth;
          Alcotest.test_case "permute invalid" `Quick test_csr_permute_invalid;
        ] );
      ( "umesh",
        [
          Alcotest.test_case "counts" `Quick test_umesh_counts;
          Alcotest.test_case "validates" `Quick test_umesh_validates;
          Alcotest.test_case "dual graph" `Quick test_umesh_dual_graph;
          Alcotest.test_case "interior edges distinct" `Quick
            test_umesh_each_interior_edge_two_cells;
          Alcotest.test_case "scramble preserves structure" `Quick
            test_umesh_scramble_preserves_structure;
          Alcotest.test_case "coords bounded" `Quick test_umesh_coords_bounded;
        ] );
      ( "partition",
        [
          Alcotest.test_case "block" `Quick test_partition_block;
          Alcotest.test_case "rcb balance" `Quick test_partition_rcb_balance;
          Alcotest.test_case "rcb non-pow2" `Quick test_partition_rcb_nonpow2;
          Alcotest.test_case "kway quality" `Quick test_partition_kway_quality;
          Alcotest.test_case "kway beats random" `Quick
            test_partition_kway_beats_block_on_cut;
          Alcotest.test_case "halo volume" `Quick test_partition_halo_volume;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "rcm reduces bandwidth" `Quick
            test_reorder_rcm_reduces_bandwidth;
          Alcotest.test_case "rcm disconnected" `Quick test_reorder_rcm_disconnected;
          Alcotest.test_case "permute roundtrip" `Quick
            test_reorder_permute_data_roundtrip;
          Alcotest.test_case "inverse rejects" `Quick test_reorder_inverse_rejects;
          Alcotest.test_case "induced order" `Quick test_reorder_induced_order;
          Alcotest.test_case "hilbert permutation" `Quick test_hilbert_is_permutation;
          Alcotest.test_case "hilbert improves scrambled" `Quick
            test_hilbert_improves_scrambled_locality;
          Alcotest.test_case "hilbert neighbours near" `Quick
            test_hilbert_adjacent_cells_near;
          Alcotest.test_case "hilbert rejects bad input" `Quick
            test_hilbert_rejects_bad_input;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "valid on mesh" `Quick test_coloring_valid_on_mesh;
          Alcotest.test_case "partitions items" `Quick test_coloring_partitions_items;
          Alcotest.test_case "blocks" `Quick test_coloring_blocks;
          Alcotest.test_case "block range" `Quick test_coloring_block_range;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_rcm_always_permutation;
          QCheck_alcotest.to_alcotest prop_kway_covers_all_parts;
          QCheck_alcotest.to_alcotest prop_coloring_proper;
        ] );
    ]
