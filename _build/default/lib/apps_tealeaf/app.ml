(* TeaLeaf-sim: implicit 3D heat conduction solved with conjugate gradients
   on the Ops3 API.

   TeaLeaf is another UK Mini-App Consortium proxy (the suite the paper
   cites alongside CloverLeaf): a linear heat-conduction solve per time
   step, dominated by sparse matrix-vector products (here the 7-point
   stencil), dot-product reductions and axpy updates — a very different
   loop profile from CloverLeaf's hydro cycle (reduction-heavy, iterative)
   that exercises the structured abstraction's global reductions hard.

   Backward-Euler step for u_t = div(k grad u):
     (I - dt * L_k) u^{n+1} = u^n
   solved by CG with the 7-point variable-coefficient Laplacian; face
   conductivities are harmonic means of cell conductivities, zero-flux
   boundaries via zero ghost conductivity. *)

module Ops3 = Am_ops.Ops3
module Access = Am_core.Access

type t = {
  ctx : Ops3.ctx;
  grid : Ops3.block;
  n : int;
  dt : float;
  u : Ops3.dat; (* temperature *)
  kappa : Ops3.dat; (* cell conductivity *)
  r : Ops3.dat; (* CG residual *)
  p : Ops3.dat; (* CG search direction *)
  w : Ops3.dat; (* A p *)
  mutable cg_iterations : int; (* total over the run *)
}

let matvec_info = { Am_core.Descr.flops = 30.0; transcendentals = 0.0 }
let dot_info = { Am_core.Descr.flops = 2.0; transcendentals = 0.0 }
let axpy_info = { Am_core.Descr.flops = 4.0; transcendentals = 0.0 }

let create ?backend ?(n = 16) ?(dt = 0.5) () =
  let ctx = Ops3.create ?backend () in
  let grid = Ops3.decl_block ctx ~name:"tea_grid" in
  let field name = Ops3.decl_dat ctx ~name ~block:grid ~xsize:n ~ysize:n ~zsize:n () in
  let t =
    {
      ctx;
      grid;
      n;
      dt;
      u = field "u";
      kappa = field "kappa";
      r = field "r";
      p = field "p";
      w = field "w";
      cg_iterations = 0;
    }
  in
  (* A hot corner region and spatially varying conductivity (TeaLeaf's
     standard two-state setup); ghost conductivity zero = insulated walls. *)
  Ops3.init ctx t.u (fun x y z _ ->
      if x < n / 3 && y < n / 3 && z < n / 3 then 10.0 else 0.1);
  Ops3.init ctx t.kappa (fun x y z _ ->
      let inside c = c >= 0 && c < n in
      if inside x && inside y && inside z then
        if (x + y + z) mod 7 < 4 then 1.0 else 0.1
      else 0.0);
  t

(* A p with the variable-coefficient 7-point operator:
     (A p)(c) = p(c) - dt * sum_faces k_face * (p(nb) - p(c))
   args: p (R, 7pt), kappa (R, 7pt), w (W, centre), consts gbl [dt]. *)
let matvec_kernel args =
  let p = args.(0) and k = args.(1) and w = args.(2) in
  let dt = args.(3).(0) in
  let harmonic a b = if a +. b <= 0.0 then 0.0 else 2.0 *. a *. b /. (a +. b) in
  let acc = ref 0.0 in
  for face = 1 to 6 do
    let kf = harmonic k.(0) k.(face) in
    acc := !acc +. (kf *. (p.(face) -. p.(0)))
  done;
  w.(0) <- p.(0) -. (dt *. !acc)

let dot t a b =
  let acc = [| 0.0 |] in
  Ops3.par_loop t.ctx ~name:"cg_dot" ~info:dot_info t.grid (Ops3.interior t.u)
    [
      Ops3.arg_dat a Ops3.stencil_point Access.Read;
      Ops3.arg_dat b Ops3.stencil_point Access.Read;
      Ops3.arg_gbl ~name:"dot" acc Access.Inc;
    ]
    (fun bufs -> bufs.(2).(0) <- bufs.(2).(0) +. (bufs.(0).(0) *. bufs.(1).(0)));
  acc.(0)

let matvec t ~src ~dst =
  Ops3.par_loop t.ctx ~name:"cg_matvec" ~info:matvec_info t.grid (Ops3.interior t.u)
    [
      Ops3.arg_dat src Ops3.stencil_7pt Access.Read;
      Ops3.arg_dat t.kappa Ops3.stencil_7pt Access.Read;
      Ops3.arg_dat dst Ops3.stencil_point Access.Write;
      Ops3.arg_gbl ~name:"dt" [| t.dt |] Access.Read;
    ]
    matvec_kernel

(* dst := a + alpha * b (centre-only). *)
let axpy t ~a ~alpha ~b ~dst =
  Ops3.par_loop t.ctx ~name:"cg_axpy" ~info:axpy_info t.grid (Ops3.interior t.u)
    [
      Ops3.arg_dat a Ops3.stencil_point Access.Read;
      Ops3.arg_dat b Ops3.stencil_point Access.Read;
      Ops3.arg_dat dst Ops3.stencil_point Access.Write;
      Ops3.arg_gbl ~name:"alpha" [| alpha |] Access.Read;
    ]
    (fun bufs -> bufs.(2).(0) <- bufs.(0).(0) +. (bufs.(3).(0) *. bufs.(1).(0)))

(* One backward-Euler step: solve (I - dt L) u' = u by CG. Returns the CG
   iterations used. *)
let step ?(tol = 1e-9) ?(max_iters = 200) t =
  (* r = b - A u = u - A u; p = r *)
  matvec t ~src:t.u ~dst:t.w;
  Ops3.par_loop t.ctx ~name:"cg_init" ~info:axpy_info t.grid (Ops3.interior t.u)
    [
      Ops3.arg_dat t.u Ops3.stencil_point Access.Read;
      Ops3.arg_dat t.w Ops3.stencil_point Access.Read;
      Ops3.arg_dat t.r Ops3.stencil_point Access.Write;
      Ops3.arg_dat t.p Ops3.stencil_point Access.Write;
    ]
    (fun bufs ->
      let r = bufs.(0).(0) -. bufs.(1).(0) in
      bufs.(2).(0) <- r;
      bufs.(3).(0) <- r);
  let rr = ref (dot t t.r t.r) in
  let iters = ref 0 in
  while !rr > tol && !iters < max_iters do
    matvec t ~src:t.p ~dst:t.w;
    let alpha = !rr /. dot t t.p t.w in
    axpy t ~a:t.u ~alpha ~b:t.p ~dst:t.u;
    axpy t ~a:t.r ~alpha:(-.alpha) ~b:t.w ~dst:t.r;
    let rr' = dot t t.r t.r in
    axpy t ~a:t.r ~alpha:(rr' /. !rr) ~b:t.p ~dst:t.p;
    rr := rr';
    incr iters
  done;
  t.cg_iterations <- t.cg_iterations + !iters;
  !iters

let run t ~steps =
  for _ = 1 to steps do
    ignore (step t)
  done

let temperature t = Ops3.fetch_interior t.ctx t.u

let total_heat t =
  let acc = [| 0.0 |] in
  Ops3.par_loop t.ctx ~name:"tea_sum" ~info:dot_info t.grid (Ops3.interior t.u)
    [
      Ops3.arg_dat t.u Ops3.stencil_point Access.Read;
      Ops3.arg_gbl ~name:"sum" acc Access.Inc;
    ]
    (fun bufs -> bufs.(1).(0) <- bufs.(1).(0) +. bufs.(0).(0));
  acc.(0)
