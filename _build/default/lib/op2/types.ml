(* Core value types of the unstructured-mesh active library.

   An application declares its mesh once — sets (edges, cells, ...), maps
   between sets and datasets on sets — and then expresses all computation as
   parallel loops; see {!Op2} for the user-facing API.  Everything here is
   deliberately backend-agnostic: the same declarations drive the
   sequential, shared-memory, GPU-simulator and distributed backends. *)

module Access = Am_core.Access

type set = { set_id : int; set_name : string; set_size : int }

type map_t = {
  map_id : int;
  map_name : string;
  from_set : set;
  to_set : set;
  arity : int;
  mutable values : int array; (* arity entries per from_set element *)
}

(* Memory layout of a dataset: array-of-structures (element-major, the
   natural CPU layout) or structure-of-arrays (component-major, what the GPU
   backend prefers).  The automatic AoS->SoA conversion of the paper is
   [Op2.convert_layout]. *)
type layout = Aos | Soa

type dat = {
  dat_id : int;
  dat_name : string;
  dat_set : set;
  dim : int;
  mutable data : float array; (* dim values per set element *)
  mutable layout : layout;
}

type arg =
  | Arg_dat of { dat : dat; map : (map_t * int) option; access : Access.t }
    (* [map = None]: direct access on the iteration set.
       [map = Some (m, k)]: element [e] touches [m.values.(e*arity + k)]. *)
  | Arg_gbl of { name : string; buf : float array; access : Access.t }

(* Declaration registry: one per application context. *)
type env = {
  mutable sets : set list; (* reversed declaration order *)
  mutable maps : map_t list;
  mutable dats : dat list;
  mutable consts : (string * float array) list; (* op_decl_const registry *)
  mutable next_id : int;
}

let make_env () = { sets = []; maps = []; dats = []; consts = []; next_id = 0 }

let fresh_id env =
  let id = env.next_id in
  env.next_id <- id + 1;
  id

let decl_set env ~name ~size =
  if size < 0 then invalid_arg "decl_set: negative size";
  let s = { set_id = fresh_id env; set_name = name; set_size = size } in
  env.sets <- s :: env.sets;
  s

let decl_map env ~name ~from_set ~to_set ~arity ~values =
  if arity <= 0 then invalid_arg "decl_map: arity must be positive";
  if Array.length values <> from_set.set_size * arity then
    invalid_arg (Printf.sprintf "decl_map %s: expected %d values, got %d" name
                   (from_set.set_size * arity) (Array.length values));
  Array.iter
    (fun v ->
      if v < 0 || v >= to_set.set_size then
        invalid_arg (Printf.sprintf "decl_map %s: target %d out of range" name v))
    values;
  let m =
    { map_id = fresh_id env; map_name = name; from_set; to_set; arity;
      values = Array.copy values }
  in
  env.maps <- m :: env.maps;
  m

let decl_dat env ~name ~set ~dim ~data =
  if dim <= 0 then invalid_arg "decl_dat: dim must be positive";
  if Array.length data <> set.set_size * dim then
    invalid_arg (Printf.sprintf "decl_dat %s: expected %d values, got %d" name
                   (set.set_size * dim) (Array.length data));
  let d =
    { dat_id = fresh_id env; dat_name = name; dat_set = set; dim;
      data = Array.copy data; layout = Aos }
  in
  env.dats <- d :: env.dats;
  d

let decl_dat_const env ~name ~set ~dim ~value =
  decl_dat env ~name ~set ~dim ~data:(Array.make (set.set_size * dim) value)

(* op_decl_const: global simulation constants registered with the library
   so the code generator can emit them per target (e.g. CUDA constant
   memory) and diagnostics can report them. *)
let decl_global_const env ~name values =
  if List.mem_assoc name env.consts then
    invalid_arg (Printf.sprintf "decl_const: %s already declared" name);
  if Array.length values = 0 then invalid_arg "decl_const: empty constant";
  env.consts <- (name, Array.copy values) :: env.consts

let consts env = List.rev env.consts

let sets env = List.rev env.sets
let maps env = List.rev env.maps
let dats env = List.rev env.dats

let dats_on env set =
  List.filter (fun d -> d.dat_set.set_id = set.set_id) (dats env)

let maps_from env set =
  List.filter (fun m -> m.from_set.set_id = set.set_id) (maps env)

let maps_to env set =
  List.filter (fun m -> m.to_set.set_id = set.set_id) (maps env)

(* Layout-aware addressing into a dataset array holding [n] elements of
   [dim] components.  In distributed mode [n] is the rank-local element
   count, so it is threaded explicitly rather than read off the set. *)
let value_index layout ~n ~dim ~elem ~comp =
  match layout with
  | Aos -> (elem * dim) + comp
  | Soa -> (comp * n) + elem

let dat_n_elems dat = Array.length dat.data / dat.dim

let dat_get dat ~elem ~comp =
  dat.data.(value_index dat.layout ~n:(dat_n_elems dat) ~dim:dat.dim ~elem ~comp)

let dat_set_value dat ~elem ~comp v =
  dat.data.(value_index dat.layout ~n:(dat_n_elems dat) ~dim:dat.dim ~elem ~comp) <- v

(* Convert a raw array between layouts. *)
let convert_array ~from_layout ~to_layout ~n ~dim data =
  if from_layout = to_layout then data
  else begin
    let out = Array.make (Array.length data) 0.0 in
    for elem = 0 to n - 1 do
      for comp = 0 to dim - 1 do
        out.(value_index to_layout ~n ~dim ~elem ~comp) <-
          data.(value_index from_layout ~n ~dim ~elem ~comp)
      done
    done;
    out
  end

let arg_access = function
  | Arg_dat { access; _ } -> access
  | Arg_gbl { access; _ } -> access

let arg_dim = function
  | Arg_dat { dat; _ } -> dat.dim
  | Arg_gbl { buf; _ } -> Array.length buf

let is_indirect = function
  | Arg_dat { map = Some _; _ } -> true
  | Arg_dat { map = None; _ } | Arg_gbl _ -> false

(* Validate an argument list against the iteration set; raises
   [Invalid_argument] with a precise message on misuse.  This is the
   "consistency checking" developer aid the paper describes. *)
let validate_args ~iter_set args =
  List.iteri
    (fun i arg ->
      let fail msg = invalid_arg (Printf.sprintf "par_loop arg %d: %s" i msg) in
      match arg with
      | Arg_gbl { buf; access; name } ->
        if not (Access.valid_on_gbl access) then
          fail (Printf.sprintf "global %s: access %s not valid on globals" name
                  (Access.to_string access));
        if Array.length buf = 0 then fail (Printf.sprintf "global %s: empty buffer" name)
      | Arg_dat { dat; map = None; access } ->
        if not (Access.valid_on_dat access) then
          fail (Printf.sprintf "dat %s: access %s not valid on datasets" dat.dat_name
                  (Access.to_string access));
        if dat.dat_set.set_id <> iter_set.set_id then
          fail (Printf.sprintf "direct dat %s lives on set %s, loop iterates %s"
                  dat.dat_name dat.dat_set.set_name iter_set.set_name)
      | Arg_dat { dat; map = Some (m, k); access } ->
        if not (Access.valid_on_dat access) then
          fail (Printf.sprintf "dat %s: access %s not valid on datasets" dat.dat_name
                  (Access.to_string access));
        if m.from_set.set_id <> iter_set.set_id then
          fail (Printf.sprintf "map %s goes from set %s, loop iterates %s" m.map_name
                  m.from_set.set_name iter_set.set_name);
        if m.to_set.set_id <> dat.dat_set.set_id then
          fail (Printf.sprintf "map %s targets set %s, but dat %s lives on %s"
                  m.map_name m.to_set.set_name dat.dat_name dat.dat_set.set_name);
        if k < 0 || k >= m.arity then
          fail (Printf.sprintf "map %s has arity %d, index %d out of range" m.map_name
                  m.arity k))
    args

(* Build the backend-independent loop descriptor for tracing/profiling. *)
let describe ~name ~iter_set ~info args : Am_core.Descr.loop =
  let arg_descr = function
    | Arg_gbl { name; buf; access } ->
      {
        Am_core.Descr.dat_name = name;
        dat_id = -1;
        dim = Array.length buf;
        access;
        kind = Am_core.Descr.Global;
      }
    | Arg_dat { dat; map = None; access } ->
      {
        Am_core.Descr.dat_name = dat.dat_name;
        dat_id = dat.dat_id;
        dim = dat.dim;
        access;
        kind = Am_core.Descr.Direct;
      }
    | Arg_dat { dat; map = Some (m, k); access } ->
      {
        Am_core.Descr.dat_name = dat.dat_name;
        dat_id = dat.dat_id;
        dim = dat.dim;
        access;
        kind =
          Am_core.Descr.Indirect
            {
              map_name = m.map_name;
              map_index = k;
              ratio =
                Float.of_int m.to_set.set_size /. Float.of_int (max 1 m.from_set.set_size);
            };
      }
  in
  {
    Am_core.Descr.loop_name = name;
    set_name = iter_set.set_name;
    set_size = iter_set.set_size;
    args = List.map arg_descr args;
    info;
  }
