(** Access descriptors of the access-execute abstraction. *)

type t =
  | Read
  | Write  (** fully overwritten; previous value irrelevant *)
  | Inc  (** accumulated into; kernels see a zeroed buffer *)
  | Rw
  | Min  (** global reduction: minimum *)
  | Max  (** global reduction: maximum *)

(** Short form used in reports ("R", "W", "I", "RW", "MIN", "MAX"). *)
val to_string : t -> string

(** Whether the kernel observes the previous value. *)
val reads : t -> bool

(** Whether the kernel produces a new value. *)
val writes : t -> bool

(** Modes allowed on mesh datasets (reductions are global-only). *)
val valid_on_dat : t -> bool

(** Modes allowed on global arguments. *)
val valid_on_gbl : t -> bool
