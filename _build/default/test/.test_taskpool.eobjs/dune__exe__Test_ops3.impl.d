test/test_ops3.ml: Alcotest Am_core Am_ops Am_simmpi Am_taskpool Am_util Array Filename Float Fun Lazy Printf QCheck QCheck_alcotest Sys
