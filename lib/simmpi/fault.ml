(* Seeded, schedule-driven fault injector for the simulated communicator.

   A [t] carries a fault specification (per-message probabilities for drop,
   duplicate, delay and payload corruption, plus an optional armed rank
   crash) and a splitmix64 stream.  The communicator consults it on every
   message it stages; the facades consult it once per parallel loop for the
   crash trigger.  All decisions are drawn from the one stream in a fixed
   order per message, so a (seed, program) pair replays the identical fault
   schedule — the property the soak harness's AM_SEED reproduction relies
   on.

   The injector deliberately holds no per-channel state: a recovery restart
   builds a fresh communicator but keeps the same injector, so the stream
   advances monotonically across restarts (a transient fault does not
   re-occur identically on replay) while the crash trigger, once fired, is
   disarmed — the simulated analogue of replacing the failed node. *)

module Prng = Am_util.Prng

type spec = {
  seed : int;
  drop : float; (* per-message loss probability *)
  dup : float; (* per-message duplication probability *)
  delay : float; (* per-message delay probability *)
  max_delay : int; (* delays are uniform in 1..max_delay deliver-steps *)
  corrupt : float; (* per-message single-bit-flip probability *)
  crash : (int * int) option; (* (rank, loop counter) to crash at *)
}

let default =
  { seed = 1; drop = 0.0; dup = 0.0; delay = 0.0; max_delay = 8; corrupt = 0.0;
    crash = None }

exception Crashed of { rank : int; loop : int }
exception Unrecoverable of string

let () =
  Printexc.register_printer (function
    | Crashed { rank; loop } ->
      Some (Printf.sprintf "Fault.Crashed(rank %d at loop %d)" rank loop)
    | Unrecoverable msg -> Some ("Fault.Unrecoverable: " ^ msg)
    | _ -> None)

(* ---- Specification strings ------------------------------------------- *)

(* "seed=42,drop=0.1,dup=0.05,delay=0.1,corrupt=0.02,crash=1@12" *)
let spec_of_string s =
  let prob what v =
    if v < 0.0 || v > 1.0 then
      Error (Printf.sprintf "faults: %s must be a probability in [0,1]" what)
    else Ok v
  in
  let parse_field spec field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "faults: expected key=value, got %S" field)
    | Some i -> (
      let key = String.sub field 0 i in
      let value = String.sub field (i + 1) (String.length field - i - 1) in
      let float_v what =
        match float_of_string_opt value with
        | Some v -> prob what v
        | None -> Error (Printf.sprintf "faults: %s must be a float, got %S" what value)
      in
      match key with
      | "seed" -> (
        match int_of_string_opt value with
        | Some seed -> Ok { spec with seed }
        | None -> Error (Printf.sprintf "faults: seed must be an integer, got %S" value))
      | "drop" -> Result.map (fun drop -> { spec with drop }) (float_v "drop")
      | "dup" -> Result.map (fun dup -> { spec with dup }) (float_v "dup")
      | "delay" -> Result.map (fun delay -> { spec with delay }) (float_v "delay")
      | "corrupt" ->
        Result.map (fun corrupt -> { spec with corrupt }) (float_v "corrupt")
      | "max_delay" -> (
        match int_of_string_opt value with
        | Some d when d >= 1 -> Ok { spec with max_delay = d }
        | Some _ | None ->
          Error (Printf.sprintf "faults: max_delay must be a positive integer, got %S" value))
      | "crash" -> (
        match String.index_opt value '@' with
        | None -> Error "faults: crash takes RANK@LOOP, e.g. crash=1@12"
        | Some j -> (
          let rank = String.sub value 0 j in
          let loop = String.sub value (j + 1) (String.length value - j - 1) in
          match (int_of_string_opt rank, int_of_string_opt loop) with
          | Some r, Some l when r >= 0 && l >= 0 -> Ok { spec with crash = Some (r, l) }
          | _ -> Error "faults: crash takes RANK@LOOP with non-negative integers"))
      | other -> Error (Printf.sprintf "faults: unknown key %S" other))
  in
  String.split_on_char ',' (String.trim s)
  |> List.filter (fun f -> String.trim f <> "")
  |> List.fold_left
       (fun acc field ->
         Result.bind acc (fun spec -> parse_field spec (String.trim field)))
       (Ok default)

let spec_to_string s =
  let fields =
    [ Printf.sprintf "seed=%d" s.seed ]
    @ (if s.drop > 0.0 then [ Printf.sprintf "drop=%g" s.drop ] else [])
    @ (if s.dup > 0.0 then [ Printf.sprintf "dup=%g" s.dup ] else [])
    @ (if s.delay > 0.0 then
         [ Printf.sprintf "delay=%g" s.delay; Printf.sprintf "max_delay=%d" s.max_delay ]
       else [])
    @ (if s.corrupt > 0.0 then [ Printf.sprintf "corrupt=%g" s.corrupt ] else [])
    @
    match s.crash with
    | Some (r, l) -> [ Printf.sprintf "crash=%d@%d" r l ]
    | None -> []
  in
  String.concat "," fields

(* ---- Injector state --------------------------------------------------- *)

type t = {
  spec : spec;
  rng : Prng.t;
  mutable loops : int; (* parallel loops entered since creation *)
  mutable crash_armed : bool;
}

let create spec =
  { spec; rng = Prng.create spec.seed; loops = 0; crash_armed = spec.crash <> None }

let spec t = t.spec
let loops_seen t = t.loops
let crash_armed t = t.crash_armed

(* Message-level verdict.  One uniform draw per category, in fixed order,
   whether or not the category is enabled — so adding e.g. duplication to a
   spec does not shift the drop decisions of an otherwise identical seed. *)
type verdict = Deliver | Drop | Duplicate | Delay of int

let classify t =
  let roll p = Prng.float t.rng < p in
  let dropped = roll t.spec.drop in
  let duplicated = roll t.spec.dup in
  let delayed = roll t.spec.delay in
  let delay_steps = 1 + Prng.int t.rng (max 1 t.spec.max_delay) in
  if dropped then Drop
  else if duplicated then Duplicate
  else if delayed then Delay delay_steps
  else Deliver

(* Single-bit flip in a copy of the message; [None] leaves it untouched.
   The bit position is drawn even when corruption misses, for the same
   stream-stability reason as [classify]. *)
let corrupted t msg =
  let hit = Prng.float t.rng < t.spec.corrupt in
  let word = Prng.int t.rng (max 1 (Array.length msg)) in
  let bit = Prng.int t.rng 64 in
  if (not hit) || Array.length msg = 0 then None
  else begin
    let out = Array.copy msg in
    out.(word) <-
      Int64.float_of_bits
        (Int64.logxor (Int64.bits_of_float out.(word)) (Int64.shift_left 1L bit));
    Some out
  end

(* Loop-counter crash trigger, called by the facades once per parallel
   loop.  Fires at most once: the "failed node" does not fail again when
   the restarted application replays past the same loop. *)
let note_loop t =
  let at = t.loops in
  t.loops <- at + 1;
  match t.spec.crash with
  | Some (rank, loop) when t.crash_armed && at = loop ->
    t.crash_armed <- false;
    Am_obs.Counters.incr Am_obs.Obs.fault_crashes;
    raise (Crashed { rank; loop })
  | Some _ | None -> ()
