(** Roofline-style loop cost model.

    Prices the backend-independent loop descriptors the runtimes produce:
    memory time (streamed vs gathered traffic, with read-for-ownership on
    write-allocate CPUs and amortised indirect volumes) against compute
    time (flops and transcendentals, with a scalar penalty when not
    vectorised), plus dispatch latency and the GPU small-workload ramp.
    Device constants live in {!Machines} and were calibrated once against
    the paper's Table I. *)

module Descr = Am_core.Descr

(** Execution-style modifiers; encode mesh ordering quality, NUMA placement,
    runtime/driver overheads and GPU occupancy. *)
type style = {
  vectorized : bool;
  locality : float;  (** 1.0 = renumbered mesh; lower degrades gathers *)
  numa_efficiency : float;  (** < 1.0 models NUMA-blind first touch *)
  runtime_overhead : float;  (** multiplicative runtime/driver overhead *)
  gpu_occupancy : float;  (** < 1.0 for register/branch-heavy kernels *)
}

val default_style : style
val unvectorized : style

(** Per-element traffic, split streamed/gathered and read/write, plus map
    index bytes. Indirect volumes are grouped per dataset (amortised by the
    target/iteration set ratio, capped by the reference count) and index
    bytes per distinct (map, index). *)
type traffic = {
  streamed_read : float;
  streamed_write : float;
  gathered_read : float;
  gathered_write : float;
  index_bytes : float;
}

val traffic_of_loop : Descr.loop -> traffic

(** (streamed, gathered-including-index) useful bytes per element. *)
val traffic_per_element : Descr.loop -> int * int

val useful_bytes_per_element : Descr.loop -> float

(** Achieved-bandwidth loss factor of scalar (non-vectorised) CPU code. *)
val novec_bandwidth_factor : float

(** Seconds for one execution of the loop on the device. *)
val loop_time : Machines.device -> style -> Descr.loop -> float

(** Useful bandwidth implied by {!loop_time} (Table I's GB/s). *)
val loop_bandwidth_gbs : Machines.device -> style -> Descr.loop -> float

(** Sum of {!loop_time} over a sequence. *)
val sequence_time : Machines.device -> style -> Descr.loop list -> float

(** Step time under communication/computation overlap: the exchange is in
    flight while the core (interior) compute runs, so only the larger of
    the two is paid; the boundary share waits for the messages —
    [max comm core + boundary], the analytic form of the runtime's
    core/boundary split. *)
val overlapped_time : comm:float -> core:float -> boundary:float -> float

(** Re-price a traced loop at a scaled set size. *)
val scale_loop : float -> Descr.loop -> Descr.loop

val scale_sequence : float -> Descr.loop list -> Descr.loop list
