lib/perfmodel/cluster.mli: Am_core Machines Model
