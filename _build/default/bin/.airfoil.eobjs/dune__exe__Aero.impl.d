bin/aero.ml: Am_aero Am_core Am_mesh Am_op2 Am_simmpi Am_taskpool Am_util Arg Cmd Cmdliner Printf Term Unix
