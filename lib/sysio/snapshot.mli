(** Self-describing binary snapshot files (the HDF5 stand-in).

    A snapshot is an ordered list of named float arrays, written with a
    magic header ("AMSNAP02"), a CRC-32 of the body, little-endian sizes
    and IEEE-754 payloads. Used by checkpointing, the mesh format and the
    CLI drivers' [--save] options. Every decode validates lengths, the
    magic and the checksum — a truncated file or a flipped bit raises
    {!Corrupt} rather than yielding garbage. Legacy "AMSNAP01" files
    (written before the checksum word) still load, without verification. *)

(** Raised by {!decode}/{!load} on malformed input, with a description. *)
exception Corrupt of string

(** Serialise entries to the binary format. *)
val encode : (string * float array) list -> string

(** Parse a snapshot; raises {!Corrupt} on any inconsistency. *)
val decode : string -> (string * float array) list

val save : string -> (string * float array) list -> unit
val load : string -> (string * float array) list

(** Append a human-readable rendering of one array to a text file
    (debugging aid). *)
val dump_text : string -> string -> float array -> unit

(** Compare two snapshot files: per-dataset max relative discrepancy for
    every name present in both (infinite on size mismatch), plus the names
    unique to each side. *)
val compare_files :
  string -> string -> (string * float) list * string list * string list
