lib/ops/ops3.mli: Am_checkpoint Am_core Am_simmpi Am_taskpool Boundary3 Dist3 Exec3 Multiblock3 Types3
