(* Mesh renumbering for locality.

   OP2 renumbers set elements (reverse Cuthill-McKee on the dual graph) so
   that elements referenced together are close in memory; the paper credits
   this with a large share of Fig 3's 30% single-node gain on Hydra.
   Permutations follow the convention [perm.(old) = new]. *)

(* Reverse Cuthill-McKee.  Components are processed in order of discovery,
   each started from a minimum-degree vertex; within the BFS, neighbours are
   visited in increasing-degree order. *)
let rcm graph =
  let n = Csr.n_vertices graph in
  let order = Array.make n (-1) in (* order.(rank) = vertex *)
  let visited = Array.make n false in
  let rank = ref 0 in
  let by_degree = Array.init n Fun.id in
  Array.sort (fun a b -> compare (Csr.degree graph a) (Csr.degree graph b)) by_degree;
  let bfs start =
    let queue = Queue.create () in
    Queue.push start queue;
    visited.(start) <- true;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order.(!rank) <- v;
      incr rank;
      let nbrs = Csr.neighbours graph v in
      Array.sort (fun a b -> compare (Csr.degree graph a) (Csr.degree graph b)) nbrs;
      Array.iter
        (fun u ->
          if not visited.(u) then begin
            visited.(u) <- true;
            Queue.push u queue
          end)
        nbrs
    done
  in
  Array.iter (fun v -> if not visited.(v) then bfs v) by_degree;
  assert (!rank = n);
  (* Reverse the Cuthill-McKee ordering and convert to perm.(old) = new. *)
  let perm = Array.make n 0 in
  for r = 0 to n - 1 do
    perm.(order.(r)) <- n - 1 - r
  done;
  perm

let identity n = Array.init n Fun.id

let inverse perm =
  let n = Array.length perm in
  let inv = Array.make n (-1) in
  Array.iteri
    (fun old_v new_v ->
      if new_v < 0 || new_v >= n || inv.(new_v) <> -1 then
        invalid_arg "Reorder.inverse: not a permutation";
      inv.(new_v) <- old_v)
    perm;
  inv

let is_permutation perm =
  match inverse perm with _ -> true | exception Invalid_argument _ -> false

(* Reorder per-element data of arity [dim]: element [old] moves to slot
   [perm.(old)]. *)
let permute_data ~perm ~dim data =
  let n = Array.length perm in
  if Array.length data <> n * dim then invalid_arg "Reorder.permute_data: bad data length";
  if n = 0 then data
  else begin
    let out = Array.make (n * dim) data.(0) in
    for old_i = 0 to n - 1 do
      Array.blit data (old_i * dim) out (perm.(old_i) * dim) dim
    done;
    out
  end

(* Renumber the *targets* of a map when the target set was permuted. *)
let renumber_targets ~perm map_values = Array.map (fun v -> perm.(v)) map_values

(* Reorder the *sources* of a map (arity [dim]) when the source set was
   permuted. *)
let permute_sources ~perm ~dim map_values = permute_data ~perm ~dim map_values

(* Induce an ordering on a set B from an already-renumbered set A through a
   map B->A: sort B elements by the (new) minimum target index, so that e.g.
   edges end up ordered like the cells they touch.  Returns perm.(old)=new. *)
let induced_order ~n_sources ~arity map_values =
  let key = Array.make n_sources max_int in
  for s = 0 to n_sources - 1 do
    for k = 0 to arity - 1 do
      let t = map_values.((s * arity) + k) in
      if t < key.(s) then key.(s) <- t
    done
  done;
  let order = Array.init n_sources Fun.id in
  Array.sort (fun a b -> compare (key.(a), a) (key.(b), b)) order;
  let perm = Array.make n_sources 0 in
  Array.iteri (fun new_i old_i -> perm.(old_i) <- new_i) order;
  perm

(* ---- Hilbert-curve ordering ---------------------------------------------- *)

(* Space-filling-curve renumbering: order elements by their position along a
   Hilbert curve over their coordinates.  An alternative to RCM that needs
   geometry instead of connectivity; both serve OP2's mesh-renumbering
   optimisation and the ablation harness compares them. *)

(* Distance along a 2^order x 2^order Hilbert curve of integer cell (x, y).
   Classic bit-interleaving walk (Hamilton's d2xy inverse). *)
let hilbert_d ~order ~x ~y =
  let rx = ref 0 and ry = ref 0 in
  let x = ref x and y = ref y in
  let d = ref 0 in
  let s = ref (1 lsl (order - 1)) in
  while !s > 0 do
    rx := if !x land !s > 0 then 1 else 0;
    ry := if !y land !s > 0 then 1 else 0;
    d := !d + (!s * !s * ((3 * !rx) lxor !ry));
    (* rotate quadrant *)
    if !ry = 0 then begin
      if !rx = 1 then begin
        x := !s - 1 - !x;
        y := !s - 1 - !y
      end;
      let t = !x in
      x := !y;
      y := t
    end;
    s := !s / 2
  done;
  !d

(* [hilbert ~coords ~dim ~n] returns perm.(old) = new ordering elements along
   a Hilbert curve over the first two coordinate components. *)
let hilbert ?(order = 16) ~coords ~dim ~n () =
  if dim < 2 then invalid_arg "Reorder.hilbert: need at least 2 coordinates";
  if Array.length coords <> n * dim then invalid_arg "Reorder.hilbert: bad coords length";
  if n = 0 then [||]
  else begin
    let min_c = [| infinity; infinity |] and max_c = [| neg_infinity; neg_infinity |] in
    for e = 0 to n - 1 do
      for c = 0 to 1 do
        let v = coords.((e * dim) + c) in
        if v < min_c.(c) then min_c.(c) <- v;
        if v > max_c.(c) then max_c.(c) <- v
      done
    done;
    let side = 1 lsl order in
    let quantise c v =
      let extent = max_c.(c) -. min_c.(c) in
      if extent <= 0.0 then 0
      else
        min (side - 1)
          (Float.to_int (Float.of_int side *. ((v -. min_c.(c)) /. extent)))
    in
    let keys =
      Array.init n (fun e ->
          let x = quantise 0 coords.(e * dim) in
          let y = quantise 1 coords.((e * dim) + 1) in
          (hilbert_d ~order ~x ~y, e))
    in
    Array.sort compare keys;
    let perm = Array.make n 0 in
    Array.iteri (fun new_i (_, old_i) -> perm.(old_i) <- new_i) keys;
    perm
  end
