(* In-process message-passing simulator.

   The distributed-memory backends of OP2/OPS run on this instead of real
   MPI: ranks are slots of one process, executed in a BSP style (compute
   phase over all ranks, then exchange phase).  Messages are FIFO per
   (src, dst) channel.  Every transfer is recorded so the performance model
   can translate observed communication volumes into cluster-scale timings,
   and so tests can assert that e.g. a loop with only direct arguments sends
   nothing.

   Two API levels coexist:

   - blocking [send]/[recv]: a send is delivered immediately; a recv pops the
     oldest delivered message or fails (a deadlock in the simulated program);
   - non-blocking [isend]/[irecv]/[wait]/[waitall]: an isend *stages* its
     payload in flight without delivering it, and the matching payload only
     becomes receivable after delivery.  Delivery normally happens inside
     [wait]/[recv], but tests can drive it one message at a time with
     [deliver_one] to enumerate delivery schedules (dejafu-style): FIFO order
     is preserved within a channel, while the interleaving *across* channels
     is up to the driver. *)

module Obs = Am_obs.Obs
module Counters = Am_obs.Counters
module Cat = Am_obs.Tracer

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable exchanges : int; (* collective halo-exchange rounds *)
  mutable reductions : int;
}

type t = {
  n_ranks : int;
  channels : float array Queue.t array; (* delivered; indexed src * n_ranks + dst *)
  staged : float array Queue.t array; (* isend'd, still in flight *)
  stats : stats;
}

(* A request handle carries its own byte accounting so callers can attribute
   traffic per exchange phase, not just per communicator. *)
type request =
  | Send_req of { src : int; dst : int; bytes : int; mutable completed : bool }
  | Recv_req of { src : int; dst : int; mutable payload : float array option }

let create ~n_ranks =
  if n_ranks <= 0 then invalid_arg "Comm.create: n_ranks must be positive";
  {
    n_ranks;
    channels = Array.init (n_ranks * n_ranks) (fun _ -> Queue.create ());
    staged = Array.init (n_ranks * n_ranks) (fun _ -> Queue.create ());
    stats = { messages = 0; bytes = 0; exchanges = 0; reductions = 0 };
  }

let n_ranks t = t.n_ranks

let stats t = t.stats

(* Collective-round accounting shared by the halo layers: bump the
   communicator's stats and the global observability counters together so
   the two views cannot drift. *)
let count_exchange t =
  t.stats.exchanges <- t.stats.exchanges + 1;
  Counters.incr Obs.comm_exchanges

let count_reduction t =
  t.stats.reductions <- t.stats.reductions + 1;
  Counters.incr Obs.comm_reductions

let reset_stats t =
  t.stats.messages <- 0;
  t.stats.bytes <- 0;
  t.stats.exchanges <- 0;
  t.stats.reductions <- 0

let check_rank t r name =
  if r < 0 || r >= t.n_ranks then invalid_arg ("Comm." ^ name ^ ": rank out of range")

let chan t ~src ~dst = (src * t.n_ranks) + dst

(* Move one in-flight message of a channel into the receivable queue. *)
let deliver_one t ~src ~dst =
  check_rank t src "deliver_one";
  check_rank t dst "deliver_one";
  let c = chan t ~src ~dst in
  if Queue.is_empty t.staged.(c) then false
  else begin
    Queue.push (Queue.pop t.staged.(c)) t.channels.(c);
    true
  end

(* Deliver everything in flight on one channel (FIFO preserved). *)
let deliver_channel t ~src ~dst =
  while deliver_one t ~src ~dst do
    ()
  done

let in_flight t ~src ~dst =
  check_rank t src "in_flight";
  check_rank t dst "in_flight";
  Queue.length t.staged.(chan t ~src ~dst)

(* Channels with staged messages, in deterministic (src, dst) order. *)
let in_flight_channels t =
  let acc = ref [] in
  for src = t.n_ranks - 1 downto 0 do
    for dst = t.n_ranks - 1 downto 0 do
      if not (Queue.is_empty t.staged.(chan t ~src ~dst)) then
        acc := (src, dst) :: !acc
    done
  done;
  !acc

let isend t ~src ~dst payload =
  check_rank t src "isend";
  check_rank t dst "isend";
  let bytes = 8 * Array.length payload in
  let traced = Obs.tracing () in
  if traced then
    Obs.begin_span ~lane:src ~cat:Cat.Halo_post
      ~args:[ ("dst", float_of_int dst); ("bytes", float_of_int bytes) ]
      "isend";
  Queue.push payload t.staged.(chan t ~src ~dst);
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes <- t.stats.bytes + bytes;
  Counters.incr Obs.comm_messages;
  Counters.add Obs.comm_bytes bytes;
  if traced then Obs.end_span ~lane:src ();
  Send_req { src; dst; bytes; completed = false }

let irecv t ~src ~dst =
  check_rank t src "irecv";
  check_rank t dst "irecv";
  Recv_req { src; dst; payload = None }

(* Completing a send needs nothing: the payload is already buffered in
   flight.  Completing a recv forces delivery of its channel, then pops;
   with nothing staged or delivered, the simulated program has deadlocked.
   Returns the received payload ([||] for sends). *)
let wait t req =
  match req with
  | Send_req r ->
    r.completed <- true;
    [||]
  | Recv_req r -> (
    match r.payload with
    | Some p -> p
    | None ->
      let traced = Obs.tracing () in
      if traced then
        Obs.begin_span ~lane:r.dst ~cat:Cat.Halo_wait
          ~args:[ ("src", float_of_int r.src) ]
          "wait";
      deliver_channel t ~src:r.src ~dst:r.dst;
      let q = t.channels.(chan t ~src:r.src ~dst:r.dst) in
      if Queue.is_empty q then
        failwith
          (Printf.sprintf
             "Comm.wait: deadlock: no message in flight from rank %d to rank %d"
             r.src r.dst);
      let p = Queue.pop q in
      r.payload <- Some p;
      if traced then
        Obs.end_span ~lane:r.dst ();
      p)

let waitall t reqs = List.iter (fun r -> ignore (wait t r)) reqs

let request_bytes = function
  | Send_req r -> r.bytes
  | Recv_req r -> ( match r.payload with Some p -> 8 * Array.length p | None -> 0)

let request_payload = function
  | Send_req _ -> None
  | Recv_req r -> r.payload

(* Blocking send: delivered immediately (an isend followed by a full channel
   delivery observes exactly the same state). *)
let send t ~src ~dst payload =
  check_rank t src "send";
  check_rank t dst "send";
  let bytes = 8 * Array.length payload in
  if Obs.tracing () then
    Obs.instant ~lane:src ~cat:Cat.Halo_post
      ~args:[ ("dst", float_of_int dst); ("bytes", float_of_int bytes) ]
      "send";
  Queue.push payload t.channels.(chan t ~src ~dst);
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes <- t.stats.bytes + bytes;
  Counters.incr Obs.comm_messages;
  Counters.add Obs.comm_bytes bytes

let recv t ~src ~dst =
  check_rank t src "recv";
  check_rank t dst "recv";
  if Obs.tracing () then
    Obs.instant ~lane:dst ~cat:Cat.Halo_wait ~args:[ ("src", float_of_int src) ] "recv";
  deliver_channel t ~src ~dst;
  let q = t.channels.(chan t ~src ~dst) in
  if Queue.is_empty q then
    failwith
      (Printf.sprintf "Comm.recv: no message pending from rank %d to rank %d" src dst);
  Queue.pop q

let pending t ~src ~dst =
  check_rank t src "pending";
  check_rank t dst "pending";
  let c = chan t ~src ~dst in
  Queue.length t.channels.(c) + Queue.length t.staged.(c)

let all_drained t =
  Array.for_all Queue.is_empty t.channels && Array.for_all Queue.is_empty t.staged

(* Global reduction over one value per rank. Counted once per call. *)
let allreduce t ~combine values =
  if Array.length values <> t.n_ranks then invalid_arg "Comm.allreduce: bad arity";
  count_reduction t;
  let acc = ref values.(0) in
  for r = 1 to t.n_ranks - 1 do
    acc := combine !acc values.(r)
  done;
  !acc

let allreduce_sum t values = allreduce t ~combine:( +. ) values
let allreduce_min t values = allreduce t ~combine:Float.min values
let allreduce_max t values = allreduce t ~combine:Float.max values
