(* Access descriptors — the heart of the access-execute abstraction.

   Every argument of a parallel loop declares how the user kernel touches it;
   this single declaration is what lets the library derive halo exchanges,
   race-free colourings, checkpoint contents and data-movement estimates
   without inspecting the kernel body. *)

type t =
  | Read (* consumed only *)
  | Write (* fully overwritten, previous value irrelevant *)
  | Inc (* accumulated into; kernels see a zeroed buffer *)
  | Rw (* read and modified *)
  | Min (* global reduction: minimum *)
  | Max (* global reduction: maximum *)

let to_string = function
  | Read -> "R"
  | Write -> "W"
  | Inc -> "I"
  | Rw -> "RW"
  | Min -> "MIN"
  | Max -> "MAX"

let reads = function
  | Read | Rw -> true
  | Write | Inc | Min | Max -> false

let writes = function
  | Write | Inc | Rw -> true
  | Read -> false
  | Min | Max -> true

(* Valid on mesh datasets (reductions are for globals only). *)
let valid_on_dat = function
  | Read | Write | Inc | Rw -> true
  | Min | Max -> false

(* Valid on global arguments. *)
let valid_on_gbl = function
  | Read | Inc | Min | Max -> true
  | Write | Rw -> false
