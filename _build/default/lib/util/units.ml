(* Human-readable quantity formatting used in reports. *)

let seconds s =
  if s >= 100.0 then Printf.sprintf "%.0f s" s
  else if s >= 1.0 then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
  else Printf.sprintf "%.1f ns" (s *. 1e9)

let bytes b =
  let b = Float.of_int b in
  if b >= 1e12 then Printf.sprintf "%.2f TB" (b /. 1e12)
  else if b >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2f kB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

let bandwidth_gbs bytes_moved secs =
  if secs <= 0.0 then 0.0 else Float.of_int bytes_moved /. secs /. 1e9

let gflops flops secs = if secs <= 0.0 then 0.0 else flops /. secs /. 1e9

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f0 x = Printf.sprintf "%.0f" x
