(* 3D structured-mesh types.

   OPS blocks carry "a number of dimensions (1D, 2D, 3D, etc.)"; this is
   the 3D instantiation of the same abstraction as [Types]: datasets with
   their own extents and a ghost shell, stencils of (dx, dy, dz) offsets,
   parallel loops over boxes, centre-only writes.  Kept as a separate
   module family (types3/exec3/dist3) so the heavily-exercised 2D path
   stays monomorphic and simple. *)

module Access = Am_core.Access

type block = { block_id : int; block_name : string }

type dat = {
  dat_id : int;
  dat_name : string;
  dat_block : block;
  xsize : int;
  ysize : int;
  zsize : int;
  halo : int; (* ghost shell width on every face *)
  dim : int;
  mutable data : float array; (* x fastest, then y, then z; padded *)
}

type stencil = (int * int * int) array

let stencil_point : stencil = [| (0, 0, 0) |]

(* 7-point Laplacian stencil: centre, ±x, ±y, ±z. *)
let stencil_7pt : stencil =
  [| (0, 0, 0); (-1, 0, 0); (1, 0, 0); (0, -1, 0); (0, 1, 0); (0, 0, -1); (0, 0, 1) |]

let stencil_extent (s : stencil) =
  Array.fold_left
    (fun acc (dx, dy, dz) -> max acc (max (abs dx) (max (abs dy) (abs dz))))
    0 s

let is_center_only (s : stencil) = s = stencil_point

(* Grid-transfer stride: the accessed point for iteration (x, y, z) and
   offset (dx, dy, dz) is (floor(x*xn/xd) + dx, ...).  Unit stride is the
   ordinary case; xn = f (restriction) reads a finer grid from a coarse
   loop, xd = f (prolongation) reads a coarser grid from a fine loop. *)
type stride = { xn : int; xd : int; yn : int; yd : int; zn : int; zd : int }

let unit_stride = { xn = 1; xd = 1; yn = 1; yd = 1; zn = 1; zd = 1 }
let is_unit_stride s = s = unit_stride

let floordiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let apply_stride stride ~x ~y ~z =
  ( floordiv (x * stride.xn) stride.xd,
    floordiv (y * stride.yn) stride.yd,
    floordiv (z * stride.zn) stride.zd )

type arg =
  | Arg_dat of { dat : dat; stencil : stencil; access : Access.t; stride : stride }
  | Arg_gbl of { name : string; buf : float array; access : Access.t }
  | Arg_idx (* kernel receives (x, y, z) as three floats *)

type range = { xlo : int; xhi : int; ylo : int; yhi : int; zlo : int; zhi : int }

let range_size r =
  max 0 (r.xhi - r.xlo) * max 0 (r.yhi - r.ylo) * max 0 (r.zhi - r.zlo)

let range_to_string r =
  Printf.sprintf "[%d,%d)x[%d,%d)x[%d,%d)" r.xlo r.xhi r.ylo r.yhi r.zlo r.zhi

type env = {
  mutable blocks : block list;
  mutable dats : dat list;
  mutable next_id : int;
}

let make_env () = { blocks = []; dats = []; next_id = 0 }

let fresh_id env =
  let id = env.next_id in
  env.next_id <- id + 1;
  id

let decl_block env ~name =
  let b = { block_id = fresh_id env; block_name = name } in
  env.blocks <- b :: env.blocks;
  b

let decl_dat env ~name ~block ~xsize ~ysize ~zsize ?(halo = 2) ?(dim = 1) () =
  if xsize <= 0 || ysize <= 0 || zsize <= 0 then
    invalid_arg "decl_dat3: extents must be positive";
  if halo < 0 then invalid_arg "decl_dat3: negative halo";
  if dim <= 0 then invalid_arg "decl_dat3: dim must be positive";
  let total =
    (xsize + (2 * halo)) * (ysize + (2 * halo)) * (zsize + (2 * halo)) * dim
  in
  let d =
    { dat_id = fresh_id env; dat_name = name; dat_block = block; xsize; ysize; zsize;
      halo; dim; data = Array.make total 0.0 }
  in
  env.dats <- d :: env.dats;
  d

let blocks env = List.rev env.blocks
let dats env = List.rev env.dats

let padded_x dat = dat.xsize + (2 * dat.halo)
let padded_y dat = dat.ysize + (2 * dat.halo)

let index dat ~x ~y ~z ~c =
  (((((z + dat.halo) * padded_y dat) + (y + dat.halo)) * padded_x dat + (x + dat.halo))
   * dat.dim)
  + c

let get dat ~x ~y ~z ~c = dat.data.(index dat ~x ~y ~z ~c)
let set dat ~x ~y ~z ~c v = dat.data.(index dat ~x ~y ~z ~c) <- v

let x_min dat = -dat.halo
let x_max dat = dat.xsize + dat.halo
let y_min dat = -dat.halo
let y_max dat = dat.ysize + dat.halo
let z_min dat = -dat.halo
let z_max dat = dat.zsize + dat.halo

let interior dat =
  { xlo = 0; xhi = dat.xsize; ylo = 0; yhi = dat.ysize; zlo = 0; zhi = dat.zsize }

let fetch_interior dat =
  let out = Array.make (dat.xsize * dat.ysize * dat.zsize * dat.dim) 0.0 in
  let k = ref 0 in
  for z = 0 to dat.zsize - 1 do
    for y = 0 to dat.ysize - 1 do
      for x = 0 to dat.xsize - 1 do
        for c = 0 to dat.dim - 1 do
          out.(!k) <- get dat ~x ~y ~z ~c;
          incr k
        done
      done
    done
  done;
  out

(* Same validation discipline as 2D: stencils within the ghost shell over
   the whole range, centre-only writes, no loop-carried dependences. *)
let validate_args ~block ~range args =
  let written = Hashtbl.create 4 in
  List.iter
    (function
      | Arg_dat { dat; access; _ } when Access.writes access ->
        Hashtbl.replace written dat.dat_id ()
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args;
  List.iteri
    (fun i arg ->
      let fail msg = invalid_arg (Printf.sprintf "ops3 par_loop arg %d: %s" i msg) in
      match arg with
      | Arg_idx -> ()
      | Arg_gbl { access; name; buf } ->
        if not (Access.valid_on_gbl access) then
          fail (Printf.sprintf "global %s: access %s not valid on globals" name
                  (Access.to_string access));
        if Array.length buf = 0 then fail (Printf.sprintf "global %s: empty buffer" name)
      | Arg_dat { dat; stencil; access; stride } ->
        if not (Access.valid_on_dat access) then
          fail (Printf.sprintf "dat %s: access %s not valid on datasets" dat.dat_name
                  (Access.to_string access));
        if dat.dat_block.block_id <> block.block_id then
          fail (Printf.sprintf "dat %s lives on block %s" dat.dat_name
                  dat.dat_block.block_name);
        if Array.length stencil = 0 then fail "empty stencil";
        if (not (is_unit_stride stride)) && Access.writes access then
          fail (Printf.sprintf "dat %s: strided (grid-transfer) access is read-only"
                  dat.dat_name);
        if stride.xn <= 0 || stride.xd <= 0 || stride.yn <= 0 || stride.yd <= 0
           || stride.zn <= 0 || stride.zd <= 0 then
          fail (Printf.sprintf "dat %s: stride components must be positive" dat.dat_name);
        if Access.writes access && not (is_center_only stencil) then
          fail (Printf.sprintf "dat %s: %s access requires the center-only stencil"
                  dat.dat_name (Access.to_string access));
        if Hashtbl.mem written dat.dat_id
           && not (is_center_only stencil && is_unit_stride stride) then
          fail (Printf.sprintf "dat %s: written in this loop but read through an \
                                offset or strided stencil" dat.dat_name);
        Array.iter
          (fun (dx, dy, dz) ->
            let bx0, by0, bz0 =
              apply_stride stride ~x:range.xlo ~y:range.ylo ~z:range.zlo
            in
            let bx1, by1, bz1 =
              apply_stride stride ~x:(range.xhi - 1) ~y:(range.yhi - 1)
                ~z:(range.zhi - 1)
            in
            if bx0 + dx < x_min dat || bx1 + dx >= x_max dat
               || by0 + dy < y_min dat || by1 + dy >= y_max dat
               || bz0 + dz < z_min dat || bz1 + dz >= z_max dat
            then
              fail (Printf.sprintf "dat %s: stencil offset (%d,%d,%d) leaves the \
                                    ghost shell over range %s" dat.dat_name dx dy dz
                      (range_to_string range)))
          stencil)
    args

let describe ~name ~block ~range ~info args : Am_core.Descr.loop =
  let arg_descr = function
    | Arg_gbl { name; buf; access } ->
      { Am_core.Descr.dat_name = name; dat_id = -1; dim = Array.length buf; access;
        kind = Am_core.Descr.Global }
    | Arg_idx ->
      { Am_core.Descr.dat_name = "idx"; dat_id = -1; dim = 3; access = Access.Read;
        kind = Am_core.Descr.Global }
    | Arg_dat { dat; stencil; access; stride = _ } ->
      {
        Am_core.Descr.dat_name = dat.dat_name;
        dat_id = dat.dat_id;
        dim = dat.dim;
        access;
        kind =
          (if is_center_only stencil then Am_core.Descr.Direct
           else
             Am_core.Descr.Stencil
               { points = Array.length stencil; extent = stencil_extent stencil });
      }
  in
  { Am_core.Descr.loop_name = name; set_name = block.block_name;
    set_size = range_size range; args = List.map arg_descr args; info }
