lib/ops/exec3.ml: Am_core Am_taskpool Array Float List Mutex Types3
