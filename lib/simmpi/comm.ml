(* In-process message-passing simulator.

   The distributed-memory backends of OP2/OPS run on this instead of real
   MPI: ranks are slots of one process, executed in a BSP style (compute
   phase over all ranks, then exchange phase).  Messages are FIFO per
   (src, dst) channel.  Every transfer is recorded so the performance model
   can translate observed communication volumes into cluster-scale timings,
   and so tests can assert that e.g. a loop with only direct arguments sends
   nothing.

   Two API levels coexist:

   - blocking [send]/[recv]: a send is delivered immediately; a recv pops the
     oldest delivered message or fails (a deadlock in the simulated program);
   - non-blocking [isend]/[irecv]/[wait]/[waitall]: an isend *stages* its
     payload in flight without delivering it, and the matching payload only
     becomes receivable after delivery.  Delivery normally happens inside
     [wait]/[recv], but tests can drive it one message at a time with
     [deliver_one] to enumerate delivery schedules (dejafu-style): FIFO order
     is preserved within a channel, while the interleaving *across* channels
     is up to the driver. *)

module Obs = Am_obs.Obs
module Counters = Am_obs.Counters
module Cat = Am_obs.Tracer

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable exchanges : int; (* collective halo-exchange rounds *)
  mutable reductions : int;
}

(* Reliable-transport state, allocated only when a fault injector is
   attached.  Every message then travels inside a sequence-numbered,
   CRC-verified envelope; the receiver discards corrupt and stale copies,
   stashes early ones, and drives capped retransmission with backoff from
   the sender-side buffer when the expected sequence number times out (in
   simulated deliver-steps).  All fields are per (src, dst) channel. *)
type reliable = {
  fault : Fault.t;
  send_seq : int array; (* next sequence number to assign *)
  recv_seq : int array; (* next sequence number to accept *)
  sent : (int, float array) Hashtbl.t array; (* clean payloads, for retransmit *)
  stash : (int, float array) Hashtbl.t array; (* early out-of-order payloads *)
  delayed : (int ref * float array) Queue.t array; (* maturing envelopes *)
}

type t = {
  n_ranks : int;
  channels : float array Queue.t array; (* delivered; indexed src * n_ranks + dst *)
  staged : float array Queue.t array; (* isend'd, still in flight *)
  stats : stats;
  mutable reliable : reliable option;
}

(* A request handle carries its own byte accounting so callers can attribute
   traffic per exchange phase, not just per communicator. *)
type request =
  | Send_req of { src : int; dst : int; bytes : int; mutable completed : bool }
  | Recv_req of { src : int; dst : int; mutable payload : float array option }

let create ~n_ranks =
  if n_ranks <= 0 then invalid_arg "Comm.create: n_ranks must be positive";
  {
    n_ranks;
    channels = Array.init (n_ranks * n_ranks) (fun _ -> Queue.create ());
    staged = Array.init (n_ranks * n_ranks) (fun _ -> Queue.create ());
    stats = { messages = 0; bytes = 0; exchanges = 0; reductions = 0 };
    reliable = None;
  }

let n_ranks t = t.n_ranks

let stats t = t.stats

(* Collective-round accounting shared by the halo layers: bump the
   communicator's stats and the global observability counters together so
   the two views cannot drift. *)
let count_exchange t =
  t.stats.exchanges <- t.stats.exchanges + 1;
  Counters.incr Obs.comm_exchanges

let count_reduction t =
  t.stats.reductions <- t.stats.reductions + 1;
  Counters.incr Obs.comm_reductions

let reset_stats t =
  t.stats.messages <- 0;
  t.stats.bytes <- 0;
  t.stats.exchanges <- 0;
  t.stats.reductions <- 0

let check_rank t r name =
  if r < 0 || r >= t.n_ranks then invalid_arg ("Comm." ^ name ^ ": rank out of range")

let chan t ~src ~dst = (src * t.n_ranks) + dst

(* ---- Controlled delivery scheduling ----------------------------------- *)

(* A chooser intercepts every implicit delivery a wait/recv would perform
   and picks which in-flight channel delivers next.  It is process-global
   (like the Obs singletons) because communicators are constructed deep
   inside the facades, far from the test harness that wants to steer them;
   schedule explorers install one around each run and must remove it again
   (the Schedcheck library wraps runs in [Fun.protect]).  With no chooser
   installed every path below is byte-for-byte the historical behaviour. *)
type chooser = needed:int * int -> enabled:(int * int) list -> int * int

let chooser_ref : chooser option ref = ref None

let set_chooser c = chooser_ref := c
let current_chooser () = !chooser_ref

(* Move one in-flight message of a channel into the receivable queue. *)
let deliver_one t ~src ~dst =
  check_rank t src "deliver_one";
  check_rank t dst "deliver_one";
  let c = chan t ~src ~dst in
  if Queue.is_empty t.staged.(c) then false
  else begin
    Queue.push (Queue.pop t.staged.(c)) t.channels.(c);
    true
  end

(* Deliver everything in flight on one channel (FIFO preserved). *)
let deliver_channel t ~src ~dst =
  while deliver_one t ~src ~dst do
    ()
  done

let in_flight t ~src ~dst =
  check_rank t src "in_flight";
  check_rank t dst "in_flight";
  Queue.length t.staged.(chan t ~src ~dst)

(* Channels with staged messages, in deterministic (src, dst) order. *)
let in_flight_channels t =
  let acc = ref [] in
  for src = t.n_ranks - 1 downto 0 do
    for dst = t.n_ranks - 1 downto 0 do
      if not (Queue.is_empty t.staged.(chan t ~src ~dst)) then
        acc := (src, dst) :: !acc
    done
  done;
  !acc

(* Deliver until the (src, dst) channel has a receivable message or nothing
   staged remains on it.  Without a chooser this is [deliver_channel]; with
   one, every delivery is a scheduling decision: the chooser may interleave
   deliveries of *other* channels before the needed one.  Termination: each
   choice removes one staged message somewhere, and the needed channel stays
   enabled until the chooser finally picks it. *)
let drive t ~src ~dst =
  match !chooser_ref with
  | None -> deliver_channel t ~src ~dst
  | Some choose ->
    let c = chan t ~src ~dst in
    while Queue.is_empty t.channels.(c) && not (Queue.is_empty t.staged.(c)) do
      let enabled = in_flight_channels t in
      let s, d = choose ~needed:(src, dst) ~enabled in
      if not (deliver_one t ~src:s ~dst:d) then
        invalid_arg "Comm: schedule chooser picked a channel with nothing staged"
    done

(* Deliver everything staged on the (src, dst) channel — the reliable
   transport drains its channel once per simulated deliver-step — again
   giving an installed chooser the cross-channel interleaving decisions. *)
let drain t ~src ~dst =
  match !chooser_ref with
  | None -> deliver_channel t ~src ~dst
  | Some choose ->
    let c = chan t ~src ~dst in
    while not (Queue.is_empty t.staged.(c)) do
      let enabled = in_flight_channels t in
      let s, d = choose ~needed:(src, dst) ~enabled in
      if not (deliver_one t ~src:s ~dst:d) then
        invalid_arg "Comm: schedule chooser picked a channel with nothing staged"
    done

(* ---- Reliable transport (fault injection attached) -------------------- *)

let attach_fault t fault =
  let n = t.n_ranks * t.n_ranks in
  t.reliable <-
    Some
      {
        fault;
        send_seq = Array.make n 0;
        recv_seq = Array.make n 0;
        sent = Array.init n (fun _ -> Hashtbl.create 8);
        stash = Array.init n (fun _ -> Hashtbl.create 8);
        delayed = Array.init n (fun _ -> Queue.create ());
      }

let fault t = Option.map (fun r -> r.fault) t.reliable

(* Envelope layout: [| magic; seq; crc; payload... |].  The CRC covers the
   sequence number and the payload, so a bit flip anywhere in the envelope
   (header included) is detected; the magic word guards against the header
   itself being flipped into a plausible CRC. *)
let env_magic = Int64.float_of_bits 0x414D_4641_554C_5431L (* "AMFAULT1" *)

let env_crc ~seq payload =
  let acc = Am_util.Crc.add_float Am_util.Crc.start (float_of_int seq) in
  float_of_int (Am_util.Crc.finish (Array.fold_left Am_util.Crc.add_float acc payload))

let make_envelope ~seq payload =
  let n = Array.length payload in
  let env = Array.make (3 + n) 0.0 in
  env.(0) <- env_magic;
  env.(1) <- float_of_int seq;
  env.(2) <- env_crc ~seq payload;
  Array.blit payload 0 env 3 n;
  env

(* (seq, payload) of a verified envelope; [None] when the magic or the CRC
   does not check out (injected corruption, detected). *)
let parse_envelope env =
  if Array.length env < 3 then None
  else if Int64.bits_of_float env.(0) <> Int64.bits_of_float env_magic then None
  else begin
    let seq = int_of_float env.(1) in
    let payload = Array.sub env 3 (Array.length env - 3) in
    if Int64.bits_of_float (env_crc ~seq payload) <> Int64.bits_of_float env.(2) then
      None
    else Some (seq, payload)
  end

(* Stage one envelope through the injector: deliver, drop, duplicate, or
   park it in the delayed queue for a few deliver-steps (later messages of
   the channel then overtake it — the reorder fault). *)
let inject t rel ~src ~dst env =
  let c = chan t ~src ~dst in
  let env =
    match Fault.corrupted rel.fault env with
    | Some flipped ->
      Counters.incr Obs.fault_corruptions;
      flipped
    | None -> env
  in
  match Fault.classify rel.fault with
  | Fault.Deliver -> Queue.push env t.staged.(c)
  | Fault.Drop ->
    Counters.incr Obs.fault_drops;
    if Obs.tracing () then Obs.instant ~lane:src ~cat:Cat.Fault "drop"
  | Fault.Duplicate ->
    Counters.incr Obs.fault_dups;
    Queue.push env t.staged.(c);
    Queue.push (Array.copy env) t.staged.(c)
  | Fault.Delay steps ->
    Counters.incr Obs.fault_delays;
    Queue.push (ref steps, env) rel.delayed.(c)

(* One simulated deliver-step of a channel's delayed queue: matured
   envelopes move (in parked order) into the in-flight queue. *)
let tick_delayed t rel c =
  let q = rel.delayed.(c) in
  for _ = 1 to Queue.length q do
    let (left, env) = Queue.pop q in
    decr left;
    if !left <= 0 then Queue.push env t.staged.(c) else Queue.push (left, env) q
  done

let reliable_isend t rel ~src ~dst payload =
  let c = chan t ~src ~dst in
  let seq = rel.send_seq.(c) in
  rel.send_seq.(c) <- seq + 1;
  Hashtbl.replace rel.sent.(c) seq payload;
  let env = make_envelope ~seq payload in
  let bytes = 8 * Array.length env in
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes <- t.stats.bytes + bytes;
  Counters.incr Obs.comm_messages;
  Counters.add Obs.comm_bytes bytes;
  inject t rel ~src ~dst env;
  bytes

(* Timeout/backoff policy, in simulated deliver-steps: retry [r] waits
   [timeout_steps lsl r] steps before retransmitting. *)
let timeout_steps = 4
let max_retries = 6

(* Blocking receive of the channel's next in-order message.  Drives the
   deliver-step clock (maturing delayed messages), discards corrupt and
   stale envelopes, stashes early ones, and retransmits from the sender
   buffer on timeout.  Raises [Fault.Unrecoverable] — never the plain
   deadlock [Failure] — when the message cannot be obtained. *)
let reliable_receive t rel ~src ~dst =
  let c = chan t ~src ~dst in
  let expected = rel.recv_seq.(c) in
  let accept payload =
    rel.recv_seq.(c) <- expected + 1;
    Hashtbl.remove rel.sent.(c) expected;
    Hashtbl.remove rel.stash.(c) expected;
    payload
  in
  match Hashtbl.find_opt rel.stash.(c) expected with
  | Some payload -> accept payload
  | None ->
    let result = ref None in
    (try
       for retry = 0 to max_retries do
         let steps = timeout_steps lsl retry in
         let step = ref 0 in
         while !result = None && !step < steps do
           incr step;
           tick_delayed t rel c;
           drain t ~src ~dst;
           let q = t.channels.(c) in
           while !result = None && not (Queue.is_empty q) do
             match parse_envelope (Queue.pop q) with
             | None ->
               Counters.incr Obs.fault_crc_failures;
               if Obs.tracing () then
                 Obs.instant ~lane:dst ~cat:Cat.Fault "crc_failure"
             | Some (seq, payload) ->
               if seq < expected then Counters.incr Obs.fault_stale
               else if seq > expected then Hashtbl.replace rel.stash.(c) seq payload
               else result := Some payload
           done;
           (* Nothing in flight and nothing maturing: further steps of this
              window cannot help, jump straight to the timeout. *)
           if
             !result = None
             && Queue.is_empty t.staged.(c)
             && Queue.is_empty rel.delayed.(c)
           then step := steps
         done;
         if !result <> None then raise Exit;
         if retry < max_retries then begin
           Counters.incr Obs.fault_timeouts;
           match Hashtbl.find_opt rel.sent.(c) expected with
           | Some payload ->
             Counters.incr Obs.fault_retransmits;
             if Obs.tracing () then
               Obs.instant ~lane:src ~cat:Cat.Fault
                 ~args:[ ("seq", float_of_int expected); ("retry", float_of_int retry) ]
                 "retransmit";
             inject t rel ~src ~dst (make_envelope ~seq:expected payload)
           | None ->
             raise
               (Fault.Unrecoverable
                  (Printf.sprintf
                     "message %d->%d seq %d: nothing in flight and no retransmit \
                      source (simulated deadlock)"
                     src dst expected))
         end
       done;
       raise
         (Fault.Unrecoverable
            (Printf.sprintf "message %d->%d seq %d lost after %d retransmits" src dst
               expected max_retries))
     with Exit -> ());
    accept (Option.get !result)

let isend t ~src ~dst payload =
  check_rank t src "isend";
  check_rank t dst "isend";
  match t.reliable with
  | Some rel ->
    let bytes = reliable_isend t rel ~src ~dst payload in
    Send_req { src; dst; bytes; completed = false }
  | None ->
    let bytes = 8 * Array.length payload in
    let traced = Obs.tracing () in
    if traced then
      Obs.begin_span ~lane:src ~cat:Cat.Halo_post
        ~args:[ ("dst", float_of_int dst); ("bytes", float_of_int bytes) ]
        "isend";
    Queue.push payload t.staged.(chan t ~src ~dst);
    t.stats.messages <- t.stats.messages + 1;
    t.stats.bytes <- t.stats.bytes + bytes;
    Counters.incr Obs.comm_messages;
    Counters.add Obs.comm_bytes bytes;
    if traced then Obs.end_span ~lane:src ();
    Send_req { src; dst; bytes; completed = false }

let irecv t ~src ~dst =
  check_rank t src "irecv";
  check_rank t dst "irecv";
  Recv_req { src; dst; payload = None }

(* Completing a send needs nothing: the payload is already buffered in
   flight.  Completing a recv forces delivery of its channel, then pops;
   with nothing staged or delivered, the simulated program has deadlocked.
   Returns the received payload ([||] for sends). *)
let wait t req =
  match req with
  | Send_req r ->
    r.completed <- true;
    [||]
  | Recv_req r -> (
    match r.payload with
    | Some p -> p
    | None ->
      let traced = Obs.tracing () in
      if traced then
        Obs.begin_span ~lane:r.dst ~cat:Cat.Halo_wait
          ~args:[ ("src", float_of_int r.src) ]
          "wait";
      let p =
        match t.reliable with
        | Some rel -> reliable_receive t rel ~src:r.src ~dst:r.dst
        | None ->
          drive t ~src:r.src ~dst:r.dst;
          let q = t.channels.(chan t ~src:r.src ~dst:r.dst) in
          if Queue.is_empty q then
            failwith
              (Printf.sprintf
                 "Comm.wait: deadlock: no message in flight from rank %d to rank %d"
                 r.src r.dst);
          Queue.pop q
      in
      r.payload <- Some p;
      if traced then
        Obs.end_span ~lane:r.dst ();
      p)

let waitall t reqs = List.iter (fun r -> ignore (wait t r)) reqs

let request_bytes = function
  | Send_req r -> r.bytes
  | Recv_req r -> ( match r.payload with Some p -> 8 * Array.length p | None -> 0)

let request_payload = function
  | Send_req _ -> None
  | Recv_req r -> r.payload

(* Blocking send: delivered immediately (an isend followed by a full channel
   delivery observes exactly the same state).  Under fault injection the
   message instead goes through the reliable transport — staged, enveloped
   and injected — which [recv] forces delivery of anyway. *)
let send t ~src ~dst payload =
  check_rank t src "send";
  check_rank t dst "send";
  match t.reliable with
  | Some rel -> ignore (reliable_isend t rel ~src ~dst payload)
  | None ->
    let bytes = 8 * Array.length payload in
    if Obs.tracing () then
      Obs.instant ~lane:src ~cat:Cat.Halo_post
        ~args:[ ("dst", float_of_int dst); ("bytes", float_of_int bytes) ]
        "send";
    Queue.push payload t.channels.(chan t ~src ~dst);
    t.stats.messages <- t.stats.messages + 1;
    t.stats.bytes <- t.stats.bytes + bytes;
    Counters.incr Obs.comm_messages;
    Counters.add Obs.comm_bytes bytes

let recv t ~src ~dst =
  check_rank t src "recv";
  check_rank t dst "recv";
  if Obs.tracing () then
    Obs.instant ~lane:dst ~cat:Cat.Halo_wait ~args:[ ("src", float_of_int src) ] "recv";
  match t.reliable with
  | Some rel -> reliable_receive t rel ~src ~dst
  | None ->
    drive t ~src ~dst;
    let q = t.channels.(chan t ~src ~dst) in
    if Queue.is_empty q then
      failwith
        (Printf.sprintf "Comm.recv: no message pending from rank %d to rank %d" src dst);
    Queue.pop q

let pending t ~src ~dst =
  check_rank t src "pending";
  check_rank t dst "pending";
  let c = chan t ~src ~dst in
  Queue.length t.channels.(c) + Queue.length t.staged.(c)
  + match t.reliable with
    | Some rel -> Queue.length rel.delayed.(c) + Hashtbl.length rel.stash.(c)
    | None -> 0

let all_drained t =
  Array.for_all Queue.is_empty t.channels
  && Array.for_all Queue.is_empty t.staged
  &&
  match t.reliable with
  | Some rel ->
    Array.for_all Queue.is_empty rel.delayed
    && Array.for_all (fun h -> Hashtbl.length h = 0) rel.stash
  | None -> true

(* Global reduction over one value per rank. Counted once per call. *)
let allreduce t ~combine values =
  if Array.length values <> t.n_ranks then invalid_arg "Comm.allreduce: bad arity";
  count_reduction t;
  let acc = ref values.(0) in
  for r = 1 to t.n_ranks - 1 do
    acc := combine !acc values.(r)
  done;
  !acc

let allreduce_sum t values = allreduce t ~combine:( +. ) values
let allreduce_min t values = allreduce t ~combine:Float.min values
let allreduce_max t values = allreduce t ~combine:Float.max values
