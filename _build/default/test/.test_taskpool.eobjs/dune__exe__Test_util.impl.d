test/test_util.ml: Alcotest Am_util Array Float Fun Gen List QCheck QCheck_alcotest String
