(** Mesh renumbering for locality.

    Permutations use the convention [perm.(old) = new]. *)

(** Reverse Cuthill-McKee ordering of a symmetric graph. Handles
    disconnected graphs (component by component). *)
val rcm : Csr.t -> int array

val identity : int -> int array

(** Inverse permutation; raises [Invalid_argument] on non-permutations. *)
val inverse : int array -> int array

val is_permutation : int array -> bool

(** Move element [old]'s [dim] values to slot [perm.(old)]. *)
val permute_data : perm:int array -> dim:int -> 'a array -> 'a array

(** Rewrite map values after the *target* set was permuted. *)
val renumber_targets : perm:int array -> int array -> int array

(** Reorder map rows after the *source* set was permuted. *)
val permute_sources : perm:int array -> dim:int -> int array -> int array

(** Order a source set by the minimum (already renumbered) target it touches
    — e.g. sort edges to follow cell order. Returns [perm.(old) = new]. *)
val induced_order : n_sources:int -> arity:int -> int array -> int array

(** Hilbert space-filling-curve ordering of elements by their (first two)
    coordinates: an alternative locality renumbering to {!rcm} that uses
    geometry instead of connectivity. [order] is the curve refinement
    (2^order cells per axis). Returns [perm.(old) = new]. *)
val hilbert :
  ?order:int -> coords:float array -> dim:int -> n:int -> unit -> int array
