lib/experiments/extensions.ml: Am_core Am_perfmodel Am_util Calibrate Float List Printf
