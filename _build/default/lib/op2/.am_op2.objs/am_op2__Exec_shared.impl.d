lib/op2/exec_shared.ml: Am_mesh Am_taskpool Array Exec_common Mutex Plan
