(** Greedy conflict colouring (OP2/OPS's two-level race-avoidance scheme).

    Items sharing an indirect target never share a colour, so all items of
    one colour can run concurrently. *)

type t = {
  colors : int array;  (** colour of each item *)
  n_colors : int;
  by_color : int array array;  (** items of each colour, ascending *)
}

(** [color ~n_items ~n_targets ~targets] greedily colours items;
    [targets item f] must call [f] on every indirect address the item
    touches (addresses in [0, n_targets)). Raises [Failure] beyond 62
    colours. *)
val color : n_items:int -> n_targets:int -> targets:(int -> (int -> unit) -> unit) -> t

(** Check that no two same-coloured items share a target. *)
val verify : n_targets:int -> targets:(int -> (int -> unit) -> unit) -> t -> bool

(** Partition of a contiguous iteration range into fixed-size blocks. *)
type blocks = { n_blocks : int; block_size : int; n_items : int }

val make_blocks : n_items:int -> block_size:int -> blocks

(** Half-open item range of block [i]. *)
val block_range : blocks -> int -> int * int

(** Colour whole blocks (block targets = union of member item targets). *)
val color_blocks :
  blocks:blocks -> n_targets:int -> targets:(int -> (int -> unit) -> unit) -> t
