(* The Airfoil application in OP2 form.

   Declares the mesh (sets, maps, datasets) and runs the published solver
   structure: each iteration saves the state and performs two inner cycles
   of adt_calc -> res_calc -> bres_calc -> update, accumulating an RMS
   residual (printed every 100 iterations in the original). *)

module Op2 = Am_op2.Op2
module Access = Am_core.Access
module Umesh = Am_mesh.Umesh

type t = {
  ctx : Op2.ctx;
  mesh : Umesh.t;
  nodes : Op2.set;
  cells : Op2.set;
  edges : Op2.set;
  bedges : Op2.set;
  edge_nodes : Op2.map_t;
  edge_cells : Op2.map_t;
  bedge_nodes : Op2.map_t;
  bedge_cell : Op2.map_t;
  cell_nodes : Op2.map_t;
  x : Op2.dat;
  q : Op2.dat;
  qold : Op2.dat;
  adt : Op2.dat;
  res : Op2.dat;
  bound : Op2.dat;
  (* Accumulator reused across iterations so the update loop's argument
     signature stays pointer-identical for the cached executor. *)
  rms_buf : float array;
  (* One loop handle per call site: plan + compiled executor are resolved
     once and revalidated with pointer compares on each invocation. *)
  h_save_soln : Op2.handle;
  h_adt_calc : Op2.handle;
  h_res_calc : Op2.handle;
  h_bres_calc : Op2.handle;
  h_update : Op2.handle;
}

(* Free-stream initial state on every cell. *)
let initial_q mesh =
  let out = Array.make (mesh.Umesh.n_cells * 4) 0.0 in
  for c = 0 to mesh.Umesh.n_cells - 1 do
    Array.blit Kernels.qinf 0 out (4 * c) 4
  done;
  out

let create ?backend (mesh : Umesh.t) =
  let ctx = Op2.create ?backend () in
  (* op_decl_const: the constants the kernels close over, registered so the
     code generator can emit them per target. *)
  Op2.decl_const ctx ~name:"gam" [| Kernels.gam |];
  Op2.decl_const ctx ~name:"gm1" [| Kernels.gm1 |];
  Op2.decl_const ctx ~name:"cfl" [| Kernels.cfl |];
  Op2.decl_const ctx ~name:"eps" [| Kernels.eps |];
  Op2.decl_const ctx ~name:"qinf" Kernels.qinf;
  let nodes = Op2.decl_set ctx ~name:"nodes" ~size:mesh.Umesh.n_nodes in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
  let bedges = Op2.decl_set ctx ~name:"bedges" ~size:mesh.Umesh.n_bedges in
  let edge_nodes =
    Op2.decl_map ctx ~name:"edge_nodes" ~from_set:edges ~to_set:nodes ~arity:2
      ~values:mesh.Umesh.edge_nodes
  in
  let edge_cells =
    Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges ~to_set:cells ~arity:2
      ~values:mesh.Umesh.edge_cells
  in
  let bedge_nodes =
    Op2.decl_map ctx ~name:"bedge_nodes" ~from_set:bedges ~to_set:nodes ~arity:2
      ~values:mesh.Umesh.bedge_nodes
  in
  let bedge_cell =
    Op2.decl_map ctx ~name:"bedge_cell" ~from_set:bedges ~to_set:cells ~arity:1
      ~values:mesh.Umesh.bedge_cell
  in
  let cell_nodes =
    Op2.decl_map ctx ~name:"cell_nodes" ~from_set:cells ~to_set:nodes ~arity:4
      ~values:mesh.Umesh.cell_nodes
  in
  let x = Op2.decl_dat ctx ~name:"x" ~set:nodes ~dim:2 ~data:mesh.Umesh.node_coords in
  let q = Op2.decl_dat ctx ~name:"q" ~set:cells ~dim:4 ~data:(initial_q mesh) in
  let qold = Op2.decl_dat_zero ctx ~name:"qold" ~set:cells ~dim:4 in
  let adt = Op2.decl_dat_zero ctx ~name:"adt" ~set:cells ~dim:1 in
  let res = Op2.decl_dat_zero ctx ~name:"res" ~set:cells ~dim:4 in
  let bound =
    Op2.decl_dat ctx ~name:"bound" ~set:bedges ~dim:1
      ~data:(Array.map Float.of_int mesh.Umesh.bedge_bound)
  in
  {
    ctx; mesh; nodes; cells; edges; bedges; edge_nodes; edge_cells; bedge_nodes;
    bedge_cell; cell_nodes; x; q; qold; adt; res; bound;
    rms_buf = [| 0.0 |];
    h_save_soln = Op2.make_handle ();
    h_adt_calc = Op2.make_handle ();
    h_res_calc = Op2.make_handle ();
    h_bres_calc = Op2.make_handle ();
    h_update = Op2.make_handle ();
  }

(* One outer iteration: save the state, then two inner explicit cycles.
   Returns the RMS residual of the final inner cycle. *)
let iteration t =
  Op2.par_loop t.ctx ~name:"save_soln" ~info:Kernels.save_soln_info
    ~handle:t.h_save_soln t.cells
    [ Op2.arg_dat t.q Access.Read; Op2.arg_dat t.qold Access.Write ]
    Kernels.save_soln;
  let rms = t.rms_buf in
  rms.(0) <- 0.0;
  for _inner = 1 to 2 do
    Op2.par_loop t.ctx ~name:"adt_calc" ~info:Kernels.adt_calc_info
      ~handle:t.h_adt_calc t.cells
      [
        Op2.arg_dat_indirect t.x t.cell_nodes 0 Access.Read;
        Op2.arg_dat_indirect t.x t.cell_nodes 1 Access.Read;
        Op2.arg_dat_indirect t.x t.cell_nodes 2 Access.Read;
        Op2.arg_dat_indirect t.x t.cell_nodes 3 Access.Read;
        Op2.arg_dat t.q Access.Read;
        Op2.arg_dat t.adt Access.Write;
      ]
      Kernels.adt_calc;
    Op2.par_loop t.ctx ~name:"res_calc" ~info:Kernels.res_calc_info
      ~handle:t.h_res_calc t.edges
      [
        Op2.arg_dat_indirect t.x t.edge_nodes 0 Access.Read;
        Op2.arg_dat_indirect t.x t.edge_nodes 1 Access.Read;
        Op2.arg_dat_indirect t.q t.edge_cells 0 Access.Read;
        Op2.arg_dat_indirect t.q t.edge_cells 1 Access.Read;
        Op2.arg_dat_indirect t.adt t.edge_cells 0 Access.Read;
        Op2.arg_dat_indirect t.adt t.edge_cells 1 Access.Read;
        Op2.arg_dat_indirect t.res t.edge_cells 0 Access.Inc;
        Op2.arg_dat_indirect t.res t.edge_cells 1 Access.Inc;
      ]
      Kernels.res_calc;
    Op2.par_loop t.ctx ~name:"bres_calc" ~info:Kernels.bres_calc_info
      ~handle:t.h_bres_calc t.bedges
      [
        Op2.arg_dat_indirect t.x t.bedge_nodes 0 Access.Read;
        Op2.arg_dat_indirect t.x t.bedge_nodes 1 Access.Read;
        Op2.arg_dat_indirect t.q t.bedge_cell 0 Access.Read;
        Op2.arg_dat_indirect t.adt t.bedge_cell 0 Access.Read;
        Op2.arg_dat_indirect t.res t.bedge_cell 0 Access.Inc;
        Op2.arg_dat t.bound Access.Read;
      ]
      Kernels.bres_calc;
    Array.fill rms 0 1 0.0;
    Op2.par_loop t.ctx ~name:"update" ~info:Kernels.update_info
      ~handle:t.h_update t.cells
      [
        Op2.arg_dat t.qold Access.Read;
        Op2.arg_dat t.q Access.Write;
        Op2.arg_dat t.res Access.Rw;
        Op2.arg_dat t.adt Access.Read;
        Op2.arg_gbl ~name:"rms" rms Access.Inc;
      ]
      Kernels.update
  done;
  sqrt (rms.(0) /. Float.of_int t.mesh.Umesh.n_cells)

let run t ~iters =
  let rms = ref 0.0 in
  for _ = 1 to iters do
    rms := iteration t
  done;
  !rms

(* Final state in global cell order (any backend). *)
let solution t = Op2.fetch t.ctx t.q
