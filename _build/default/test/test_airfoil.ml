(* Tests for the Airfoil proxy application: physical sanity, hand-coded
   equivalence, and backend equivalence on the full solver. *)

module App = Am_airfoil.App
module Hand = Am_airfoil.Hand
module Kernels = Am_airfoil.Kernels
module Op2 = Am_op2.Op2
module Umesh = Am_mesh.Umesh
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let mesh = lazy (Umesh.generate_airfoil ~nx:24 ~ny:16 ())

let reference = lazy (
  let t = App.create (Lazy.force mesh) in
  let rms = App.run t ~iters:5 in
  (App.solution t, rms))

let check_matches ?(tol = 1e-10) name (sol, rms) =
  let ref_sol, ref_rms = Lazy.force reference in
  if not (Fa.approx_equal ~tol ref_sol sol) then
    Alcotest.failf "%s: solution diverges (%g)" name (Fa.rel_discrepancy ref_sol sol);
  if Float.abs (rms -. ref_rms) /. (1.0 +. ref_rms) > tol then
    Alcotest.failf "%s: rms diverges (%g vs %g)" name rms ref_rms

(* ---- Physics sanity ---- *)

let test_rms_decreases () =
  (* Explicit solver from free stream: the residual must decay over time. *)
  let t = App.create (Lazy.force mesh) in
  let early = App.run t ~iters:3 in
  let late = App.run t ~iters:50 in
  Alcotest.(check bool) "finite early" true (Float.is_finite early);
  Alcotest.(check bool) "decays" true (late < early)

let test_solution_stays_finite () =
  let t = App.create (Lazy.force mesh) in
  ignore (App.run t ~iters:30);
  Alcotest.(check bool) "finite state" true (Fa.is_finite (App.solution t))

let test_density_positive () =
  let t = App.create (Lazy.force mesh) in
  ignore (App.run t ~iters:30);
  let q = App.solution t in
  let n = Array.length q / 4 in
  for c = 0 to n - 1 do
    if q.(4 * c) <= 0.0 then Alcotest.failf "cell %d: non-positive density" c
  done

let test_freestream_preserved_without_walls () =
  (* On a mesh whose "bump" is absent (flat channel with uniform inflow and
     free-stream everywhere), the free stream is an exact steady state of
     the interior discretisation; residuals reflect only boundary effects.
     Weak check: one iteration from free stream leaves q within a small
     neighbourhood of the free stream. *)
  let t = App.create (Lazy.force mesh) in
  ignore (App.iteration t);
  let q = App.solution t in
  let n = Array.length q / 4 in
  for c = 0 to n - 1 do
    if Float.abs (q.(4 * c) -. Kernels.qinf.(0)) > 0.2 then
      Alcotest.failf "cell %d: density drifted far after one step" c
  done

(* ---- Hand-coded equivalence ---- *)

let test_hand_matches_op2 () =
  let h = Hand.create (Lazy.force mesh) in
  let rms = Hand.run h ~iters:5 in
  check_matches "hand-coded" (Hand.solution h, rms)

(* ---- Backend equivalence on the full app ---- *)

let run_with_backend setup =
  let t = App.create (Lazy.force mesh) in
  setup t;
  let rms = App.run t ~iters:5 in
  (App.solution t, rms)

let test_shared_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      check_matches "shared"
        (run_with_backend (fun t ->
             Op2.set_backend t.App.ctx (Op2.Shared { pool; block_size = 64 }))))

let test_vec_backend () =
  check_matches "vec(8)"
    (run_with_backend (fun t ->
         Op2.set_backend t.App.ctx (Op2.Vec { Am_op2.Exec_vec.width = 8 })))

let test_cuda_staged_backend () =
  check_matches "cuda staged"
    (run_with_backend (fun t ->
         Op2.set_backend t.App.ctx
           (Op2.Cuda_sim
              { Am_op2.Exec_cuda.block_size = 64; strategy = Am_op2.Exec_cuda.Staged })))

let test_cuda_soa_backend () =
  check_matches "cuda soa"
    (run_with_backend (fun t ->
         Op2.set_backend t.App.ctx
           (Op2.Cuda_sim
              { Am_op2.Exec_cuda.block_size = 64; strategy = Am_op2.Exec_cuda.Global_soa })))

let test_mpi_backend () =
  check_matches "mpi(4)"
    (run_with_backend (fun t ->
         Op2.partition t.App.ctx ~n_ranks:4
           ~strategy:(Op2.Kway_through t.App.edge_cells)))

let test_hybrid_backend () =
  Pool.with_pool ~size:2 (fun pool ->
      check_matches "mpi+shared(4)"
        (run_with_backend (fun t ->
             Op2.partition t.App.ctx ~n_ranks:4
               ~strategy:(Op2.Kway_through t.App.edge_cells);
             Op2.set_rank_execution t.App.ctx
               (Op2.Rank_shared { pool; block_size = 32 }))))

let test_eager_halo_policy () =
  (* Eager exchanges must change traffic, never results. *)
  let run policy =
    let t = App.create (Lazy.force mesh) in
    Op2.partition t.App.ctx ~n_ranks:4 ~strategy:(Op2.Kway_through t.App.edge_cells);
    Op2.set_halo_policy t.App.ctx policy;
    let rms = App.run t ~iters:3 in
    let stats = Option.get (Op2.comm_stats t.App.ctx) in
    (App.solution t, rms, stats.Am_simmpi.Comm.bytes)
  in
  let sol_e, rms_e, bytes_e = run Op2.Eager in
  let sol_o, rms_o, bytes_o = run Op2.On_demand in
  if not (Fa.approx_equal ~tol:0.0 sol_e sol_o) then
    Alcotest.fail "eager halo policy changed the solution";
  Alcotest.(check (float 0.0)) "rms identical" rms_o rms_e;
  Alcotest.(check bool) "eager moves strictly more bytes" true (bytes_e > bytes_o)

let test_mpi_rcb_backend () =
  check_matches "mpi rcb(3)"
    (run_with_backend (fun t ->
         Op2.partition t.App.ctx ~n_ranks:3 ~strategy:(Op2.Rcb_on t.App.x)))

let test_renumbered_matches_rms () =
  (* Renumbering relabels cells; the RMS residual is order-insensitive. *)
  let t = App.create (Lazy.force mesh) in
  ignore (Op2.renumber t.App.ctx ~through:t.App.edge_cells);
  let rms = App.run t ~iters:5 in
  let _, ref_rms = Lazy.force reference in
  Alcotest.(check bool) "rms invariant under renumbering" true
    (Float.abs (rms -. ref_rms) /. (1.0 +. ref_rms) < 1e-10)

let test_scrambled_mesh_same_rms () =
  (* The scrambled mesh is the same physical problem: RMS must agree. *)
  let t = App.create (Umesh.scramble ~seed:42 (Lazy.force mesh)) in
  let rms = App.run t ~iters:5 in
  let _, ref_rms = Lazy.force reference in
  Alcotest.(check bool) "rms invariant under relabeling" true
    (Float.abs (rms -. ref_rms) /. (1.0 +. ref_rms) < 1e-10)

let test_trace_shape () =
  (* One iteration = save_soln + 2 x (adt res bres update) = 9 loops: the
     periodic structure Fig 8's speculative checkpointing exploits. *)
  let t = App.create (Lazy.force mesh) in
  Am_core.Trace.set_enabled (Op2.trace t.App.ctx) true;
  ignore (App.iteration t);
  ignore (App.iteration t);
  let events = Am_core.Trace.events (Op2.trace t.App.ctx) in
  Alcotest.(check int) "18 loops over two iterations" 18 (List.length events);
  Alcotest.(check (option int)) "9-periodic" (Some 9)
    (Am_checkpoint.Planner.detect_period events)

(* ---- Automatic checkpointing through the context ---- *)

let test_automatic_checkpoint_recovery () =
  let mesh_cp = Umesh.generate_airfoil ~nx:16 ~ny:12 () in
  let iters = 6 in
  (* Ground truth. *)
  let truth = App.create mesh_cp in
  ignore (App.run truth ~iters);
  (* Run with automatic checkpointing: request partway, persist to disk. *)
  let live = App.create mesh_cp in
  Op2.enable_checkpointing live.App.ctx;
  ignore (App.run live ~iters:3);
  Op2.request_checkpoint live.App.ctx;
  ignore (App.run live ~iters:(iters - 3));
  (* The checkpointed run must be unperturbed. *)
  Alcotest.(check bool) "checkpointing is transparent" true
    (Fa.approx_equal ~tol:0.0 (App.solution truth) (App.solution live));
  let session = Option.get (Op2.checkpoint_session live.App.ctx) in
  Alcotest.(check bool) "saved less than all state" true
    (Am_checkpoint.Runtime.saved_units session
     < 13 * mesh_cp.Umesh.n_cells (* q+qold+res+adt dims = 13 per cell *));
  let path = Filename.temp_file "airfoil_auto_cp" ".snap" in
  Op2.checkpoint_to_file live.App.ctx ~path;
  (* "Crash": a fresh application recovers from the file and re-runs the
     whole program; loops before the checkpoint are skipped. *)
  let recovered = App.create mesh_cp in
  Op2.recover_from_file recovered.App.ctx ~path;
  ignore (App.run recovered ~iters);
  Sys.remove path;
  Alcotest.(check bool) "recovered bit-identical" true
    (Fa.approx_equal ~tol:0.0 (App.solution truth) (App.solution recovered))

let test_distributed_checkpoint_recovery () =
  (* The paper's checkpointing works under MPI too: the snapshot accessors
     gather from / scatter to the rank-local windows, so a partitioned run
     checkpoints and recovers exactly like a serial one — including
     recovery onto a *different* rank count. *)
  let mesh_cp = Umesh.generate_airfoil ~nx:16 ~ny:12 () in
  let iters = 6 in
  let make ~ranks =
    let t = App.create mesh_cp in
    Op2.partition t.App.ctx ~n_ranks:ranks ~strategy:(Op2.Kway_through t.App.edge_cells);
    t
  in
  let truth = make ~ranks:4 in
  ignore (App.run truth ~iters);
  let live = make ~ranks:4 in
  Op2.enable_checkpointing live.App.ctx;
  ignore (App.run live ~iters:3);
  Op2.request_checkpoint live.App.ctx;
  ignore (App.run live ~iters:(iters - 3));
  Alcotest.(check bool) "checkpointing transparent under mpi" true
    (Fa.approx_equal ~tol:0.0 (App.solution truth) (App.solution live));
  let path = Filename.temp_file "airfoil_mpi_cp" ".snap" in
  Op2.checkpoint_to_file live.App.ctx ~path;
  (* Same decomposition: recovery is bit-identical. *)
  let recovered = make ~ranks:4 in
  Op2.recover_from_file recovered.App.ctx ~path;
  ignore (App.run recovered ~iters);
  Alcotest.(check bool) "recovered on 4 ranks bit-identical" true
    (Fa.approx_equal ~tol:0.0 (App.solution truth) (App.solution recovered));
  (* Different decomposition: the snapshot is stored in global ordering, so
     a restart on 3 ranks also works — equal up to the partition-dependent
     order of halo-reduction sums (same tolerance class as dist-vs-seq). *)
  let recovered3 = make ~ranks:3 in
  Op2.recover_from_file recovered3.App.ctx ~path;
  ignore (App.run recovered3 ~iters);
  Sys.remove path;
  Alcotest.(check bool) "recovered on 3 ranks equal to fp tolerance" true
    (Fa.approx_equal ~tol:1e-10 (App.solution truth) (App.solution recovered3))

let test_checkpoint_requires_enable () =
  let t = App.create (Lazy.force mesh) in
  match Op2.request_checkpoint t.App.ctx with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "airfoil"
    [
      ( "physics",
        [
          Alcotest.test_case "rms decays" `Quick test_rms_decreases;
          Alcotest.test_case "finite" `Quick test_solution_stays_finite;
          Alcotest.test_case "positive density" `Quick test_density_positive;
          Alcotest.test_case "near free stream after one step" `Quick
            test_freestream_preserved_without_walls;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hand-coded = op2" `Quick test_hand_matches_op2;
          Alcotest.test_case "shared backend" `Quick test_shared_backend;
          Alcotest.test_case "vec backend" `Quick test_vec_backend;
          Alcotest.test_case "cuda staged" `Quick test_cuda_staged_backend;
          Alcotest.test_case "cuda soa" `Quick test_cuda_soa_backend;
          Alcotest.test_case "mpi kway" `Quick test_mpi_backend;
          Alcotest.test_case "mpi rcb" `Quick test_mpi_rcb_backend;
          Alcotest.test_case "eager halo policy" `Quick test_eager_halo_policy;
          Alcotest.test_case "hybrid mpi+shared" `Quick test_hybrid_backend;
          Alcotest.test_case "renumbered rms" `Quick test_renumbered_matches_rms;
          Alcotest.test_case "scrambled rms" `Quick test_scrambled_mesh_same_rms;
        ] );
      ("structure", [ Alcotest.test_case "trace shape" `Quick test_trace_shape ]);
      ( "checkpointing",
        [
          Alcotest.test_case "automatic checkpoint + recovery" `Quick
            test_automatic_checkpoint_recovery;
          Alcotest.test_case "distributed checkpoint + rank-count change" `Quick
            test_distributed_checkpoint_recovery;
          Alcotest.test_case "requires enable" `Quick test_checkpoint_requires_enable;
        ] );
    ]
