(* Real measurements on the host machine.

   The modelled figures answer "what would this look like on the paper's
   hardware"; these tables answer the paper's *portability and overhead*
   questions directly, with wall-clock measurements of this repository's
   own backends: framework-generated execution vs the hand-coded baselines
   (Fig 3's Original-vs-OP2 and Fig 5's Original-vs-OPS question), the
   shared-memory backend's scaling on the host cores, and the effect of
   mesh renumbering on a scrambled mesh. *)

module Table = Am_util.Table
module Units = Am_util.Units
module Op2 = Am_op2.Op2
module Ops = Am_ops.Ops
module Pool = Am_taskpool.Pool
module Umesh = Am_mesh.Umesh

let time_best ?(repeats = 3) f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    f ();
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best

(* ---- Framework overhead: Airfoil ---- *)

let airfoil_overhead ?(nx = 120) ?(ny = 80) ?(iters = 10) () =
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "measured: Airfoil %dx%d, %d iterations — hand-coded vs framework" nx ny
           iters)
      ~header:[ "configuration"; "seconds"; "vs hand-coded" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let hand_time =
    time_best (fun () ->
        let h = Am_airfoil.Hand.create mesh in
        ignore (Am_airfoil.Hand.run h ~iters))
  in
  let add name seconds =
    Table.add_row table
      [ name; Units.seconds seconds; Printf.sprintf "%.2fx" (seconds /. hand_time) ]
  in
  add "hand-coded (Original)" hand_time;
  add "OP2 sequential"
    (time_best (fun () ->
         let t = Am_airfoil.App.create mesh in
         ignore (Am_airfoil.App.run t ~iters)));
  add "OP2 vectorised structure (8 lanes)"
    (time_best (fun () ->
         let t =
           Am_airfoil.App.create ~backend:(Op2.Vec { Am_op2.Exec_vec.width = 8 }) mesh
         in
         ignore (Am_airfoil.App.run t ~iters)));
  Pool.with_pool (fun pool ->
      add
        (Printf.sprintf "OP2 shared (%d domains)" (Pool.size pool))
        (time_best (fun () ->
             let t =
               Am_airfoil.App.create ~backend:(Op2.Shared { pool; block_size = 256 })
                 mesh
             in
             ignore (Am_airfoil.App.run t ~iters))));
  add "OP2 mpi-sim (4 ranks)"
    (time_best (fun () ->
         let t = Am_airfoil.App.create mesh in
         Op2.partition t.Am_airfoil.App.ctx ~n_ranks:4
           ~strategy:(Op2.Kway_through t.Am_airfoil.App.edge_cells);
         ignore (Am_airfoil.App.run t ~iters)));
  Pool.with_pool (fun pool ->
      add "OP2 mpi-sim + shared (hybrid)"
        (time_best (fun () ->
             let t = Am_airfoil.App.create mesh in
             Op2.partition t.Am_airfoil.App.ctx ~n_ranks:4
               ~strategy:(Op2.Kway_through t.Am_airfoil.App.edge_cells);
             Op2.set_rank_execution t.Am_airfoil.App.ctx
               (Op2.Rank_shared { pool; block_size = 256 });
             ignore (Am_airfoil.App.run t ~iters))));
  add "OP2 gpu-sim (staged)"
    (time_best (fun () ->
         let t =
           Am_airfoil.App.create
             ~backend:
               (Op2.Cuda_sim
                  { Am_op2.Exec_cuda.block_size = 128;
                    strategy = Am_op2.Exec_cuda.Staged })
             mesh
         in
         ignore (Am_airfoil.App.run t ~iters)));
  Table.print table;
  print_newline ()

(* ---- Framework overhead: CloverLeaf ---- *)

let cloverleaf_overhead ?(nx = 96) ?(ny = 96) ?(steps = 5) () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "measured: CloverLeaf %dx%d, %d steps — hand-coded vs OPS" nx
           ny steps)
      ~header:[ "configuration"; "seconds"; "vs hand-coded" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let hand_time =
    time_best (fun () ->
        let h = Am_cloverleaf.Hand.create ~nx ~ny () in
        ignore (Am_cloverleaf.Hand.run h ~steps))
  in
  let add name seconds =
    Table.add_row table
      [ name; Units.seconds seconds; Printf.sprintf "%.2fx" (seconds /. hand_time) ]
  in
  add "hand-coded (Original)" hand_time;
  add "OPS sequential"
    (time_best (fun () ->
         let t = Am_cloverleaf.App.create ~nx ~ny () in
         ignore (Am_cloverleaf.App.run t ~steps)));
  Pool.with_pool (fun pool ->
      add
        (Printf.sprintf "OPS shared (%d domains)" (Pool.size pool))
        (time_best (fun () ->
             let t =
               Am_cloverleaf.App.create ~backend:(Ops.Shared { pool }) ~nx ~ny ()
             in
             ignore (Am_cloverleaf.App.run t ~steps))));
  add "OPS mpi-sim (4 ranks)"
    (time_best (fun () ->
         let t = Am_cloverleaf.App.create ~nx ~ny () in
         Ops.partition t.Am_cloverleaf.App.ctx ~n_ranks:4 ~ref_ysize:ny;
         ignore (Am_cloverleaf.App.run t ~steps)));
  add "OPS gpu-sim (tiled)"
    (time_best (fun () ->
         let t =
           Am_cloverleaf.App.create
             ~backend:
               (Ops.Cuda_sim
                  { Am_ops.Exec.tile_x = 32; tile_y = 4;
                    strategy = Am_ops.Exec.Cuda_tiled })
             ~nx ~ny ()
         in
         ignore (Am_cloverleaf.App.run t ~steps)));
  Table.print table;
  print_newline ()

(* ---- Framework overhead: Hydra-sim ---- *)

let hydra_overhead ?(nx = 64) ?(ny = 48) ?(iters = 5) () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "measured: Hydra-sim %dx%d, %d iterations (Fig 3's \
                         Original-vs-OP2 question)" nx ny iters)
      ~header:[ "configuration"; "seconds"; "vs hand-coded" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let hand_time =
    time_best (fun () ->
        let h = Am_hydra.Hand.create ~nx ~ny () in
        ignore (Am_hydra.Hand.run h ~iters))
  in
  let add name seconds =
    Table.add_row table
      [ name; Units.seconds seconds; Printf.sprintf "%.2fx" (seconds /. hand_time) ]
  in
  add "hand-coded (Original)" hand_time;
  add "OP2 (unoptimised mesh order)"
    (time_best (fun () ->
         let t = Am_hydra.App.create ~nx ~ny () in
         ignore (Am_hydra.App.run t ~iters)));
  add "OP2 (renumbered)"
    (time_best (fun () ->
         let t = Am_hydra.App.create ~nx ~ny () in
         ignore (Op2.renumber t.Am_hydra.App.ctx ~through:t.Am_hydra.App.edge_cells);
         ignore (Am_hydra.App.run t ~iters)));
  Table.print table;
  print_newline ()

(* ---- Framework overhead: Aero (FEM + CG) ---- *)

let aero_overhead ?(n = 48) ?(iters = 2) () =
  let mesh = Am_aero.App.generate_mesh ~n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "measured: Aero %dx%d (FEM assembly + matrix-free CG), %d Newton \
            iterations — hand-coded vs framework" n n iters)
      ~header:[ "configuration"; "seconds"; "vs hand-coded" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let hand_time =
    time_best (fun () ->
        let h = Am_aero.Hand.create mesh in
        ignore (Am_aero.Hand.run h ~iters))
  in
  let add name seconds =
    Table.add_row table
      [ name; Units.seconds seconds; Printf.sprintf "%.2fx" (seconds /. hand_time) ]
  in
  add "hand-coded (Original)" hand_time;
  add "OP2 sequential"
    (time_best (fun () ->
         let t = Am_aero.App.create mesh in
         ignore (Am_aero.App.run t ~iters)));
  add "OP2 vectorised structure (8 lanes)"
    (time_best (fun () ->
         let t =
           Am_aero.App.create ~backend:(Op2.Vec { Am_op2.Exec_vec.width = 8 }) mesh
         in
         ignore (Am_aero.App.run t ~iters)));
  Pool.with_pool (fun pool ->
      add
        (Printf.sprintf "OP2 shared (%d domains)" (Pool.size pool))
        (time_best (fun () ->
             let t =
               Am_aero.App.create ~backend:(Op2.Shared { pool; block_size = 256 }) mesh
             in
             ignore (Am_aero.App.run t ~iters))));
  add "OP2 mpi-sim (4 ranks, RCB)"
    (time_best (fun () ->
         let t = Am_aero.App.create mesh in
         Op2.partition t.Am_aero.App.ctx ~n_ranks:4
           ~strategy:(Op2.Rcb_on t.Am_aero.App.x);
         ignore (Am_aero.App.run t ~iters)));
  Table.print table;
  print_newline ()

(* ---- Shared-memory scaling on the host ---- *)

let shared_scaling ?(nx = 160) ?(ny = 120) ?(iters = 5) () =
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "measured: Airfoil %dx%d shared-memory scaling on this host (%d core(s)             available: speedup is only expected with more cores)"
           nx ny (Domain.recommended_domain_count ()))
      ~header:[ "domains"; "seconds"; "speedup" ]
      ~aligns:[ Table.Right; Right; Right ]
      ()
  in
  let base = ref 0.0 in
  let max_domains = min 8 (max 4 (Domain.recommended_domain_count ())) in
  let sizes = List.filter (fun s -> s <= max_domains) [ 1; 2; 4; 8 ] in
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          let t =
            time_best ~repeats:2 (fun () ->
                let a =
                  Am_airfoil.App.create
                    ~backend:(Op2.Shared { pool; block_size = 512 })
                    mesh
                in
                ignore (Am_airfoil.App.run a ~iters))
          in
          if size = 1 then base := t;
          Table.add_row table
            [ string_of_int size; Units.seconds t; Printf.sprintf "%.2fx" (!base /. t) ]))
    sizes;
  Table.print table;
  print_newline ()

(* ---- Renumbering a scrambled mesh (Fig 3's ~30% mechanism, measured) ---- *)

let renumbering_effect ?(nx = 400) ?(ny = 300) ?(iters = 3) () =
  let scrambled = Umesh.scramble ~seed:7 (Umesh.generate_airfoil ~nx ~ny ()) in
  (* Renumbering is a one-time preprocessing step: set up outside the timed
     region, as the paper's Fig 3 timings do. *)
  let run renumber =
    let t = Am_airfoil.App.create scrambled in
    if renumber then
      ignore (Op2.renumber t.Am_airfoil.App.ctx ~through:t.Am_airfoil.App.edge_cells);
    time_best ~repeats:2 (fun () -> ignore (Am_airfoil.App.run t ~iters))
  in
  let before = run false in
  let after = run true in
  let g = Umesh.cell_dual_graph scrambled in
  let bw_before = Am_mesh.Csr.average_bandwidth g in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "measured: Airfoil %dx%d on a scrambled (production-order) mesh" nx ny)
      ~header:[ "configuration"; "seconds"; "note" ]
      ~aligns:[ Table.Left; Right; Left ]
      ()
  in
  Table.add_row table
    [ "scrambled order"; Units.seconds before;
      Printf.sprintf "dual-graph mean bandwidth %.0f" bw_before ];
  Table.add_row table
    [ "after renumbering (one-time RCM excluded)"; Units.seconds after;
      Printf.sprintf "%.0f%% faster" (100.0 *. (1.0 -. (after /. before))) ];
  Table.print table;
  print_newline ()

let all () =
  airfoil_overhead ();
  cloverleaf_overhead ();
  hydra_overhead ();
  aero_overhead ();
  shared_scaling ();
  renumbering_effect ()
