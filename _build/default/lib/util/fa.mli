(** Float-array kernels shared by the runtimes and proxy applications. *)

(** [create n x] is an array of [n] copies of [x]. *)
val create : int -> float -> float array

(** [zeros n] is an [n]-element zero array. *)
val zeros : int -> float array

(** [copy_into ~src ~dst] blits [src] over [dst]; lengths must match. *)
val copy_into : src:float array -> dst:float array -> unit

(** In-place constant fill. *)
val fill : float array -> float -> unit

(** [axpy ~alpha x y] performs [y := y + alpha*x] in place. *)
val axpy : alpha:float -> float array -> float array -> unit

(** In-place scalar multiply. *)
val scale : float array -> float -> unit

(** Dot product; lengths must match. *)
val dot : float array -> float array -> float

(** Euclidean norm. *)
val l2_norm : float array -> float

(** Sum of elements. *)
val sum : float array -> float

(** Largest absolute element (0 for the empty array). *)
val max_abs : float array -> float

(** Largest absolute componentwise difference. *)
val max_abs_diff : float array -> float array -> float

(** Max over components of [|x-y| / (1 + |x| + |y|)]: absolute near zero,
    relative for large magnitudes. *)
val rel_discrepancy : float array -> float array -> float

(** [approx_equal ?tol x y] is [rel_discrepancy x y <= tol] (default 1e-10). *)
val approx_equal : ?tol:float -> float array -> float array -> bool

(** Position-weighted fingerprint used to detect silent numerical drift. *)
val checksum : float array -> float

(** Whether every component is finite (no NaN/inf). *)
val is_finite : float array -> bool
