test/test_checkpoint.ml: Alcotest Am_checkpoint Am_core Am_sysio Am_util Array Filename Float List Printf Str_contains Sys
