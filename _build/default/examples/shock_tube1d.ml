(* Sod shock tube on the true 1D OPS instantiation (Ops1).

   The same Riemann problem as examples/shock_tube.ml, but written against
   the one-dimensional API (the paper: blocks have "a number of dimensions
   (1D, 2D, 3D, etc.)") — with a higher-resolution grid, reflective ends
   via mirror_halo, and the whole computation re-run on the simulated-MPI
   backend to show serial and distributed execution agree bit-for-bit.

   Run with:  dune exec examples/shock_tube1d.exe *)

module Ops1 = Am_ops.Ops1
module Access = Am_core.Access

let gamma = 1.4
let nx = 800
let steps = 350

let flux rho m e =
  let u = m /. rho in
  let p = (gamma -. 1.0) *. (e -. (0.5 *. m *. u)) in
  (m, (m *. u) +. p, u *. (e +. p))

(* Build and run the whole problem on one context; returns the final
   density profile and total mass. *)
let run ~partitioned =
  let ctx = Ops1.create () in
  let tube = Ops1.decl_block ctx ~name:"tube" in
  let q = Ops1.decl_dat ctx ~name:"q" ~block:tube ~xsize:nx ~dim:3 () in
  let qnew = Ops1.decl_dat ctx ~name:"qnew" ~block:tube ~xsize:nx ~dim:3 () in
  if partitioned then Ops1.partition ctx ~n_ranks:4 ~ref_xsize:nx;
  let dx = 1.0 /. Float.of_int nx in
  let dt = 0.4 *. dx in
  (* Sod initial condition: (1, 0, 1) left, (0.125, 0, 0.1) right. *)
  Ops1.init ctx q (fun x c ->
      let left = Float.of_int x +. 0.5 < 0.5 *. Float.of_int nx in
      match c with
      | 0 -> if left then 1.0 else 0.125
      | 1 -> 0.0
      | _ ->
        let p = if left then 1.0 else 0.1 in
        p /. (gamma -. 1.0));
  Ops1.init ctx qnew (fun _ _ -> 0.0);
  let lax args =
    let q = args.(0) and qnew = args.(1) in
    let get p c = q.((p * 3) + c) in
    (* stencil_3pt order: centre, -x, +x *)
    let fw0, fw1, fw2 = flux (get 1 0) (get 1 1) (get 1 2) in
    let fe0, fe1, fe2 = flux (get 2 0) (get 2 1) (get 2 2) in
    let lam = dt /. (2.0 *. dx) in
    qnew.(0) <- (0.5 *. (get 1 0 +. get 2 0)) -. (lam *. (fe0 -. fw0));
    qnew.(1) <- (0.5 *. (get 1 1 +. get 2 1)) -. (lam *. (fe1 -. fw1));
    qnew.(2) <- (0.5 *. (get 1 2 +. get 2 2)) -. (lam *. (fe2 -. fw2))
  in
  let interior = Ops1.interior q in
  let mass = [| 0.0 |] in
  for _ = 1 to steps do
    (* Reflective ends; momentum flips its sign at a wall. This refreshes
       only the ghost cells, so the centre-only write discipline holds. *)
    Ops1.mirror_halo ctx ~depth:1 q;
    Ops1.par_loop ctx ~name:"lax_step" tube interior
      [
        Ops1.arg_dat q Ops1.stencil_3pt Access.Read;
        Ops1.arg_dat qnew Ops1.stencil_point Access.Write;
      ]
      lax;
    Array.fill mass 0 1 0.0;
    Ops1.par_loop ctx ~name:"copy_back" tube interior
      [
        Ops1.arg_dat qnew Ops1.stencil_point Access.Read;
        Ops1.arg_dat q Ops1.stencil_point Access.Write;
        Ops1.arg_gbl ~name:"mass" mass Access.Inc;
      ]
      (fun a ->
        for c = 0 to 2 do
          a.(1).(c) <- a.(0).(c)
        done;
        a.(2).(0) <- a.(2).(0) +. a.(0).(0))
  done;
  let state = Ops1.fetch_interior ctx q in
  let density = Array.init nx (fun i -> state.(3 * i)) in
  (density, mass.(0) *. dx, Ops1.comm_stats ctx)

let () =
  let rho, mass, _ = run ~partitioned:false in
  let rho_mpi, mass_mpi, stats = run ~partitioned:true in
  (* The expanding fan, contact and shock of the Sod problem. *)
  let sample i = rho.(i) in
  Printf.printf "shock_tube1d: %d cells, %d Lax-Friedrichs steps\n" nx steps;
  Printf.printf "  density at x=0.25/0.50/0.75: %.4f %.4f %.4f\n" (sample (nx / 4))
    (sample (nx / 2))
    (sample (3 * nx / 4));
  Printf.printf "  total mass: %.6f (initial %.6f)\n" mass (0.5 *. (1.0 +. 0.125));
  assert (Float.abs (mass -. (0.5 *. 1.125)) < 1e-12);
  (* Shock has moved right of the midpoint, fan left of it. *)
  assert (sample (nx / 2) < 0.9 && sample (nx / 2) > 0.2);
  assert (sample 0 > 0.95 && sample (nx - 1) < 0.15);
  (* Serial and simulated-MPI runs agree: the field bit-for-bit, the mass
     reduction up to its rank-order summation (4 partial sums vs one). *)
  assert (rho = rho_mpi);
  assert (Float.abs (mass -. mass_mpi) < 1e-13);
  (match stats with
  | Some s ->
    Printf.printf "  mpi(4): %d messages, %d ghost-cell exchanges — identical result\n"
      s.Am_simmpi.Comm.messages s.Am_simmpi.Comm.exchanges
  | None -> assert false);
  print_endline "shock_tube1d: OK"
