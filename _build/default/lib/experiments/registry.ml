(* Experiment registry: every table and figure of the paper, the measured
   host-machine comparisons and the ablations, addressable by id. *)

type experiment = { id : string; title : string; run : unit -> unit }

let experiments =
  [
    { id = "table1"; title = "Table I: Airfoil per-loop time and bandwidth";
      run = Figures.table1 };
    { id = "fig2"; title = "Fig 2: Airfoil single-node performance"; run = Figures.fig2 };
    { id = "fig3"; title = "Fig 3: Hydra single-node performance"; run = Figures.fig3 };
    { id = "fig4"; title = "Fig 4: Airfoil vs Hydra cluster scaling"; run = Figures.fig4 };
    { id = "fig5"; title = "Fig 5: CloverLeaf hand-coded vs OPS"; run = Figures.fig5 };
    { id = "fig6"; title = "Fig 6: CloverLeaf scaling on Titan"; run = Figures.fig6 };
    { id = "fig7"; title = "Fig 7: generated CUDA memory strategies"; run = Figures.fig7 };
    { id = "fig8"; title = "Fig 8: checkpoint planning"; run = Figures.fig8 };
    { id = "measured"; title = "Measured host-machine comparisons"; run = Measured.all };
    { id = "ablations"; title = "Design-choice ablations"; run = Ablations.all };
    { id = "ext"; title = "Extensions: TeaLeaf-sim & CloverLeaf 3D modelled";
      run = Extensions.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) experiments

let run_all () =
  List.iter
    (fun e ->
      Printf.printf "######## %s — %s ########\n\n%!" e.id e.title;
      e.run ())
    experiments
