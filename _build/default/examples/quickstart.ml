(* Quickstart: solving the heat equation with the OPS API.

   The shortest end-to-end use of the structured-mesh library:

     1. create a context and a block;
     2. declare datasets (with their ghost rings);
     3. express the computation as parallel loops over ranges, with
        per-argument stencils and access descriptors;
     4. let the library run it on any backend.

   Run with:  dune exec examples/quickstart.exe *)

module Ops = Am_ops.Ops
module Access = Am_core.Access

let () =
  let nx = 64 and ny = 64 in
  let ctx = Ops.create () in
  let grid = Ops.decl_block ctx ~name:"grid" in
  let u = Ops.decl_dat ctx ~name:"u" ~block:grid ~xsize:nx ~ysize:ny () in
  let unew = Ops.decl_dat ctx ~name:"unew" ~block:grid ~xsize:nx ~ysize:ny () in

  (* A hot square in the middle of a cold domain; the ghost ring gives the
     fixed (cold) boundary condition. *)
  Ops.init ctx u (fun x y _ ->
      if abs (x - (nx / 2)) < 8 && abs (y - (ny / 2)) < 8 then 1.0 else 0.0);

  let interior = Ops.interior u in
  let diffuse args =
    (* stencil_2d_5pt order: centre, west, east, south, north *)
    let u = args.(0) and unew = args.(1) in
    unew.(0) <- u.(0) +. (0.2 *. (u.(1) +. u.(2) +. u.(3) +. u.(4) -. (4.0 *. u.(0))))
  in
  let copy args = args.(1).(0) <- args.(0).(0) in

  for step = 1 to 200 do
    Ops.par_loop ctx ~name:"diffuse" grid interior
      [
        Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
        Ops.arg_dat unew Ops.stencil_point Access.Write;
      ]
      diffuse;
    Ops.par_loop ctx ~name:"copy" grid interior
      [
        Ops.arg_dat unew Ops.stencil_point Access.Read;
        Ops.arg_dat u Ops.stencil_point Access.Write;
      ]
      copy;
    if step mod 50 = 0 then begin
      (* A global reduction: total heat in the domain. *)
      let total = [| 0.0 |] in
      Ops.par_loop ctx ~name:"sum" grid interior
        [
          Ops.arg_dat u Ops.stencil_point Access.Read;
          Ops.arg_gbl ~name:"total" total Access.Inc;
        ]
        (fun a -> a.(1).(0) <- a.(1).(0) +. a.(0).(0));
      Printf.printf "step %3d: total heat %.4f (leaks through the cold walls)\n" step
        total.(0)
    end
  done;
  print_endline "done. Try the same program on another backend:";
  print_endline "  Ops.create ~backend:(Ops.Shared { pool }) — domains";
  print_endline "  Ops.partition ctx ~n_ranks:4 ~ref_ysize:ny — simulated MPI"
