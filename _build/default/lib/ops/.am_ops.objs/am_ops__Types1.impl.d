lib/ops/types1.ml: Am_core Array Hashtbl List Printf
