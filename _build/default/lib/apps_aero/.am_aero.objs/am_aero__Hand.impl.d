lib/apps_aero/hand.ml: Am_mesh App Array Float Kernels
