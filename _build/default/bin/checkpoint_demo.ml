(* Checkpoint/recovery demonstration (paper Section VI, Fig 8).

   Uses the *automatic* checkpointing of the OP2 context: because the
   application hands all data to the library and every loop declares its
   accesses, a single [request_checkpoint] is enough — the library detects
   the periodic loop sequence, defers to the cheapest trigger, saves exactly
   the datasets recovery needs, and on restart fast-forwards the unmodified
   application to the checkpoint.

   Flow: run Airfoil with a checkpoint requested partway -> persist the
   checkpoint -> "crash" -> recover a fresh run from the file -> verify the
   final state is bit-identical to an uninterrupted run. *)

module App = Am_airfoil.App
module Op2 = Am_op2.Op2
module Planner = Am_checkpoint.Planner
module Runtime = Am_checkpoint.Runtime

let () =
  let nx = 48 and ny = 32 and iters = 8 in
  let mesh () = Am_mesh.Umesh.generate_airfoil ~nx ~ny () in
  (* The planner's Fig 8 analysis of the loop chain this app executes. *)
  let probe = App.create (mesh ()) in
  Am_core.Trace.set_enabled (Op2.trace probe.App.ctx) true;
  ignore (App.iteration probe);
  ignore (App.iteration probe);
  let chain = Am_core.Trace.events (Op2.trace probe.App.ctx) in
  print_endline "=== checkpoint planning (Fig 8) ===";
  print_endline (Planner.render_figure chain);
  (match Planner.detect_period chain with
  | Some p -> Printf.printf "detected loop period: %d kernels\n\n" p
  | None -> print_endline "no period detected\n");

  (* Ground truth: uninterrupted run. *)
  let truth = App.create (mesh ()) in
  let truth_rms = App.run truth ~iters in

  (* Run with automatic checkpointing: one request, the library does the
     rest. *)
  let live = App.create (mesh ()) in
  Op2.enable_checkpointing live.App.ctx;
  ignore (App.run live ~iters:3);
  Op2.request_checkpoint live.App.ctx;
  ignore (App.run live ~iters:(iters - 3));
  let session = Option.get (Op2.checkpoint_session live.App.ctx) in
  (match Runtime.trigger_at session with
  | Some at ->
    Printf.printf
      "checkpoint made before loop %d; datasets saved automatically: %s (%d values)\n"
      (at + 1)
      (String.concat ", " (Runtime.saved_names session))
      (Runtime.saved_units session)
  | None -> failwith "no checkpoint made");
  let path = Filename.temp_file "airfoil_checkpoint" ".snap" in
  Op2.checkpoint_to_file live.App.ctx ~path;
  let size = (Unix.stat path).Unix.st_size in
  Printf.printf "checkpoint file: %s (%s)\n" path (Am_util.Units.bytes size);

  (* "Crash" and restart: the unmodified application runs from the start;
     the library fast-forwards it to the checkpoint. *)
  let recovered = App.create (mesh ()) in
  Op2.recover_from_file recovered.App.ctx ~path;
  let rec_rms = App.run recovered ~iters in
  let d = Am_util.Fa.rel_discrepancy (App.solution truth) (App.solution recovered) in
  Printf.printf
    "uninterrupted rms %.6e | recovered rms %.6e | state discrepancy %.3e %s\n"
    truth_rms rec_rms d
    (if d = 0.0 then "(EXACT)" else "(MISMATCH)");
  Sys.remove path;
  if d <> 0.0 then exit 1
