(* Ring-buffer span tracer with Chrome trace-event export.

   Events live in preallocated parallel arrays (the float arrays store
   timestamps unboxed), so recording is a handful of array stores and the
   disabled path is a single mutable-bool check with no allocation.  Each
   lane (Chrome [tid]; one per simulated rank) keeps its own stack of open
   spans so nesting is tracked independently per rank. *)

type category =
  | Loop
  | Plan
  | Colour_round
  | Halo_pack
  | Halo_post
  | Halo_wait
  | Halo_unpack
  | Reduce
  | Checkpoint
  | Fault
  | Worker

let category_to_string = function
  | Loop -> "loop"
  | Plan -> "plan"
  | Colour_round -> "colour_round"
  | Halo_pack -> "halo_pack"
  | Halo_post -> "halo_post"
  | Halo_wait -> "halo_wait"
  | Halo_unpack -> "halo_unpack"
  | Reduce -> "reduce"
  | Checkpoint -> "checkpoint"
  | Fault -> "fault"
  | Worker -> "worker"

type event = {
  ev_name : string;
  ev_cat : category;
  ev_instant : bool;
  ev_ts : float;
  ev_dur : float;
  ev_lane : int;
  ev_args : (string * float) list;
}

(* An open span awaiting its end. *)
type frame = { f_name : string; f_cat : category; f_ts : float; f_args : (string * float) list }

type t = {
  mutable enabled : bool;
  capacity : int;
  clock : unit -> float;
  mutable epoch : float;
  (* ring buffer as parallel arrays *)
  names : string array;
  cats : category array;
  insts : bool array;
  tss : float array;
  durs : float array;
  lanes : int array;
  argss : (string * float) list array;
  head : int Atomic.t; (* events recorded since clear; slot = head mod capacity *)
  mutable stacks : frame list array; (* indexed by lane *)
  mutable unmatched : int;
  mutable process_name : string;
  lane_names : (int, string) Hashtbl.t;
}

let create ?(capacity = 65536) ?clock () =
  let capacity = max 16 capacity in
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    enabled = false;
    capacity;
    clock;
    epoch = clock ();
    names = Array.make capacity "";
    cats = Array.make capacity Loop;
    insts = Array.make capacity false;
    tss = Array.make capacity 0.0;
    durs = Array.make capacity 0.0;
    lanes = Array.make capacity 0;
    argss = Array.make capacity [];
    head = Atomic.make 0;
    stacks = Array.make 8 [];
    unmatched = 0;
    process_name = "active_mesh";
    lane_names = Hashtbl.create 8;
  }

let set_enabled t flag = t.enabled <- flag
let enabled t = t.enabled

let now_us t = (t.clock () -. t.epoch) *. 1e6

let set_process_name t name = t.process_name <- name
let set_lane_name t ~lane name = Hashtbl.replace t.lane_names lane name
let lane_name t lane = Hashtbl.find_opt t.lane_names lane

let ensure_lane t lane =
  if lane >= Array.length t.stacks then begin
    let bigger = Array.make (max (lane + 1) (2 * Array.length t.stacks)) [] in
    Array.blit t.stacks 0 bigger 0 (Array.length t.stacks);
    t.stacks <- bigger
  end

let reserve_lanes t n = ensure_lane t (n - 1)

(* Slot allocation is a fetch-and-add so concurrent domains (taskpool
   workers emitting busy/idle spans) never tear each other's slots; the
   per-slot stores are unsynchronised but distinct.  The begin/end stack
   bookkeeping stays single-domain per lane. *)
let record t ~name ~cat ~inst ~ts ~dur ~lane ~args =
  let slot = Atomic.fetch_and_add t.head 1 in
  let i = slot mod t.capacity in
  t.names.(i) <- name;
  t.cats.(i) <- cat;
  t.insts.(i) <- inst;
  t.tss.(i) <- ts;
  t.durs.(i) <- dur;
  t.lanes.(i) <- lane;
  t.argss.(i) <- args

(* Record a span whose endpoints the caller measured itself (taskpool
   workers time their job bodies and record in one shot, so no per-lane
   stack state is shared across domains). *)
let complete_span t ?(lane = 0) ?(args = []) ~cat ~ts ~dur name =
  if t.enabled then record t ~name ~cat ~inst:false ~ts ~dur ~lane ~args

let begin_span t ?(lane = 0) ?(args = []) ~cat name =
  if t.enabled then begin
    ensure_lane t lane;
    t.stacks.(lane) <-
      { f_name = name; f_cat = cat; f_ts = now_us t; f_args = args } :: t.stacks.(lane)
  end

let end_span t ?(lane = 0) () =
  if t.enabled then begin
    ensure_lane t lane;
    match t.stacks.(lane) with
    | [] -> t.unmatched <- t.unmatched + 1
    | f :: rest ->
      t.stacks.(lane) <- rest;
      let ts = f.f_ts in
      record t ~name:f.f_name ~cat:f.f_cat ~inst:false ~ts ~dur:(now_us t -. ts) ~lane
        ~args:f.f_args
  end

let with_span t ?lane ?args ~cat name f =
  if not t.enabled then f ()
  else begin
    begin_span t ?lane ?args ~cat name;
    Fun.protect ~finally:(fun () -> end_span t ?lane ()) f
  end

let instant t ?(lane = 0) ?(args = []) ~cat name =
  if t.enabled then record t ~name ~cat ~inst:true ~ts:(now_us t) ~dur:0.0 ~lane ~args

let clear t =
  Atomic.set t.head 0;
  t.unmatched <- 0;
  Array.iteri (fun i _ -> t.stacks.(i) <- []) t.stacks;
  t.epoch <- t.clock ()

let recorded t = Atomic.get t.head
let dropped t = max 0 (recorded t - t.capacity)
let unmatched t = t.unmatched

let events t =
  let total = recorded t in
  let n = min total t.capacity in
  let first = if total <= t.capacity then 0 else total mod t.capacity in
  let evs =
    List.init n (fun k ->
        let i = (first + k) mod t.capacity in
        {
          ev_name = t.names.(i);
          ev_cat = t.cats.(i);
          ev_instant = t.insts.(i);
          ev_ts = t.tss.(i);
          ev_dur = t.durs.(i);
          ev_lane = t.lanes.(i);
          ev_args = t.argss.(i);
        })
  in
  (* Spans are recorded at their *end*, so restore timeline order; for equal
     start times put the longer (enclosing) span first. *)
  List.stable_sort
    (fun a b ->
      let c = Float.compare a.ev_ts b.ev_ts in
      if c <> 0 then c else Float.compare b.ev_dur a.ev_dur)
    evs

(* ---- Chrome trace-event export -------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let evs = events t in
  (* "M" metadata events label the process and every lane that appears, so
     Perfetto shows named timelines ("rank 0", "worker 3") instead of bare
     tids.  Unnamed lanes default to rank naming. *)
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"%s\"}}"
       (escape t.process_name));
  let lanes = List.sort_uniq compare (List.map (fun ev -> ev.ev_lane) evs) in
  List.iter
    (fun lane ->
      let label =
        match lane_name t lane with
        | Some name -> name
        | None -> Printf.sprintf "rank %d" lane
      in
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           lane (escape label)))
    lanes;
  List.iter
    (fun ev ->
      Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d"
           (escape ev.ev_name)
           (category_to_string ev.ev_cat)
           (if ev.ev_instant then "i" else "X")
           ev.ev_ts ev.ev_dur ev.ev_lane);
      if ev.ev_instant then Buffer.add_string b ",\"s\":\"t\"";
      if ev.ev_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "\"%s\":%.3f" (escape k) v))
          ev.ev_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome t ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc

(* ---- Flame summary --------------------------------------------------- *)

(* Aggregate spans by call path ("loop res_calc/halo_wait wait"), merging
   lanes; self time is inclusive time minus the inclusive time of direct
   children. *)
let flame_summary t =
  let incl : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  let child_sum : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  let touch path dur =
    match Hashtbl.find_opt incl path with
    | Some (d, c) ->
      d := !d +. dur;
      incr c
    | None -> Hashtbl.add incl path (ref dur, ref 1)
  in
  let credit_child parent dur =
    match Hashtbl.find_opt child_sum parent with
    | Some d -> d := !d +. dur
    | None -> Hashtbl.add child_sum parent (ref dur)
  in
  let evs = events t in
  let lanes = List.sort_uniq compare (List.map (fun e -> e.ev_lane) evs) in
  List.iter
    (fun lane ->
      (* stack of (end_ts, path) of currently enclosing spans *)
      let stack = ref [] in
      List.iter
        (fun ev ->
          if (not ev.ev_instant) && ev.ev_lane = lane then begin
            let end_ts = ev.ev_ts +. ev.ev_dur in
            while
              match !stack with
              | (e, _) :: _ when e <= ev.ev_ts +. 1e-9 -> true
              | _ -> false
            do
              stack := List.tl !stack
            done;
            let label =
              Printf.sprintf "%s %s" (category_to_string ev.ev_cat) ev.ev_name
            in
            let path =
              match !stack with
              | [] -> label
              | (_, parent) :: _ ->
                credit_child parent ev.ev_dur;
                parent ^ "/" ^ label
            in
            touch path ev.ev_dur;
            stack := (end_ts, path) :: !stack
          end)
        evs)
    lanes;
  let rows =
    Hashtbl.fold (fun path (d, c) acc -> (path, !d, !c) :: acc) incl []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "flame summary (%d events, %d dropped)\n" (recorded t) (dropped t));
  Buffer.add_string b
    (Printf.sprintf "  %-56s %12s %12s %8s\n" "span" "incl ms" "self ms" "count");
  List.iter
    (fun (path, d, c) ->
      let depth =
        String.fold_left (fun acc ch -> if ch = '/' then acc + 1 else acc) 0 path
      in
      let leaf =
        match String.rindex_opt path '/' with
        | None -> path
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      in
      let self =
        d -. (match Hashtbl.find_opt child_sum path with Some s -> !s | None -> 0.0)
      in
      Buffer.add_string b
        (Printf.sprintf "  %-56s %12.3f %12.3f %8d\n"
           (String.make (2 * depth) ' ' ^ leaf)
           (d /. 1e3) (self /. 1e3) c))
    rows;
  Buffer.contents b
