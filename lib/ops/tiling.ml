(* Skewed tile planner for lazy loop chains (the paper's run-time tiling:
   "Loop Tiling in Large-Scale Stencil Codes at Run-time with OPS").

   A flushed chain is a sequence of parallel loops over ranges of one
   shared index space.  Executing the chain loop-by-loop streams every
   dataset through memory once per loop; executing it tile-by-tile — a
   slab of loop 0, then a slab of loop 1, ... then the next slab of loop 0
   — keeps each slab's working set in cache across the whole chain.  The
   price is legality: a loop reading a neighbour of a row another loop
   writes must stay *behind* its producer (and ahead of a later
   overwriter) by the stencil extent.

   The planner is dimension-agnostic: the facades project each recorded
   loop onto the outermost (slowest-varying) axis — y in 2D, z in 3D, x in
   1D — as a half-open interval plus per-dataset read extents, and get
   back per-loop skew offsets and a tile-by-tile slab schedule.  Tiling
   only the outer axis is the natural choice here: writes are centre-only
   (validated), so any outer-axis partition of a single loop is race-free,
   and inner axes are contiguous in memory — an outer slab *is* the cache
   block.

   Skew rule.  Number the loops 0..n-1 in chain order and give loop k a
   skew sigma_k >= 0; in tile t (of size T over a global origin [base]),
   loop k executes rows [done_k, min(hi_k, base + (t+1)*T - sigma_k)).
   Within a tile loops run in chain order, and a larger sigma means
   "further behind".  sigma_0 = 0 and, for j > i sharing a dataset d:

   - flow (i writes d, j reads d up to [above_j] rows ahead):
       sigma_j >= sigma_i + above_j
     so every row j's stencil reaches has already been written;
   - anti (i reads d down to [below_i] rows behind, j overwrites d):
       sigma_j >= sigma_i + below_i
     so j never overwrites a row i still has to read;
   - output (both write d): sigma_j >= sigma_i, which chain order inside
     a tile upgrades to "i's slab runs first" — rows land in chain order.

   Monotone sigma (sigma_j >= sigma_{j-1}) keeps every earlier frontier
   ahead of every later one, which also covers downward reads: a row read
   [below] rows behind the iteration point was produced in this or an
   earlier tile.  [validate] re-proves all of this at row granularity by
   replaying the schedule against per-loop frontiers, and runs on every
   cache miss — the same philosophy as the OP2 plan validator. *)

(* Projection of one recorded loop onto the tiled axis. *)
type loop_info = {
  li_lo : int; (* half-open iteration interval on the outer axis *)
  li_hi : int;
  li_reads : (int * int * int) list;
      (* dataset id, below-extent (rows read behind the iteration point,
         >= 0), above-extent (rows read ahead, >= 0) *)
  li_writes : int list; (* dataset ids written (centre-only by validation) *)
}

(* One slab: rows [s_lo, s_hi) of chain entry [s_loop]. *)
type slab = { s_loop : int; s_lo : int; s_hi : int }

type schedule = {
  sched_tile : int;
  sched_sigma : int array;
  sched_tiles : slab array array; (* sched_tiles.(t) = slabs in chain order *)
}

exception Invalid_schedule of string

let n_slabs sched =
  Array.fold_left (fun acc slabs -> acc + Array.length slabs) 0 sched.sched_tiles

(* ---- Skew computation ------------------------------------------------- *)

let skew loops =
  let n = Array.length loops in
  let sigma = Array.make n 0 in
  for j = 1 to n - 1 do
    sigma.(j) <- sigma.(j - 1);
    for i = 0 to j - 1 do
      let req = ref (-1) in
      let need k = if k > !req then req := k in
      (* flow: i writes d, j reads d up to [above] rows ahead *)
      List.iter
        (fun (d, _below, above) ->
          if List.mem d loops.(i).li_writes then need above)
        loops.(j).li_reads;
      (* anti: i reads d down to [below] rows behind, j overwrites d *)
      List.iter
        (fun d ->
          List.iter
            (fun (d', below, _above) -> if d = d' then need below)
            loops.(i).li_reads)
        loops.(j).li_writes;
      (* output: both write d *)
      List.iter
        (fun d -> if List.mem d loops.(i).li_writes then need 0)
        loops.(j).li_writes;
      if !req >= 0 && sigma.(i) + !req > sigma.(j) then sigma.(j) <- sigma.(i) + !req
    done
  done;
  sigma

(* ---- Planning ---------------------------------------------------------- *)

let plan ~tile_size loops =
  if tile_size <= 0 then invalid_arg "Tiling.plan: tile size must be positive";
  let n = Array.length loops in
  if n = 0 then { sched_tile = tile_size; sched_sigma = [||]; sched_tiles = [||] }
  else begin
    let sigma = skew loops in
    let base = Array.fold_left (fun a l -> min a l.li_lo) max_int loops in
    let top = ref min_int in
    Array.iteri
      (fun k l -> if l.li_hi + sigma.(k) > !top then top := l.li_hi + sigma.(k))
      loops;
    let span = max 1 (!top - base) in
    let ntiles = (span + tile_size - 1) / tile_size in
    (* done_.(k): the next unexecuted row of loop k. *)
    let done_ = Array.map (fun l -> l.li_lo) loops in
    let tiles =
      Array.init ntiles (fun t ->
          let front = base + ((t + 1) * tile_size) in
          let slabs = ref [] in
          for k = 0 to n - 1 do
            let target = min loops.(k).li_hi (front - sigma.(k)) in
            if target > done_.(k) then begin
              slabs := { s_loop = k; s_lo = done_.(k); s_hi = target } :: !slabs;
              done_.(k) <- target
            end
          done;
          Array.of_list (List.rev !slabs))
    in
    { sched_tile = tile_size; sched_sigma = sigma; sched_tiles = tiles }
  end

(* ---- Validation --------------------------------------------------------- *)

(* Replay the schedule against per-loop row frontiers and check, for every
   slab, every dependence at row granularity.  Returns the violations (an
   empty list proves the schedule legal for any kernel honouring the
   declared descriptors).  Notation per slab (k, [lo, hi)): loop i has
   executed rows [li_lo_i, done_i). *)
let validate loops sched =
  let n = Array.length loops in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let done_ = Array.map (fun l -> l.li_lo) loops in
  (* "loop i has executed every row < bound it will ever execute" *)
  let reached i bound = done_.(i) >= min loops.(i).li_hi bound in
  (* rows loop i has written so far: [li_lo_i, done_i) *)
  let written_overlaps i ~lo ~hi =
    min done_.(i) hi > max loops.(i).li_lo lo
  in
  (* rows loop i's reads of (below, above) have touched so far:
     [li_lo_i - below, done_i - 1 + above] when anything has executed *)
  let read_overlaps i ~below ~above ~lo ~hi =
    done_.(i) > loops.(i).li_lo
    && min (done_.(i) + above) hi > max (loops.(i).li_lo - below) lo
  in
  Array.iteri
    (fun t slabs ->
      Array.iter
        (fun { s_loop = k; s_lo = lo; s_hi = hi } ->
          if k < 0 || k >= n then err "tile %d: slab for loop %d outside the chain" t k
          else begin
            let l = loops.(k) in
            if lo <> done_.(k) then
              err "tile %d loop %d: slab starts at %d but the frontier is %d" t k lo
                done_.(k);
            if hi <= lo || hi > l.li_hi then
              err "tile %d loop %d: slab [%d,%d) outside [%d,%d)" t k lo hi l.li_lo
                l.li_hi;
            (* the slab's reads: rows [lo - below, hi - 1 + above] of d *)
            List.iter
              (fun (d, below, above) ->
                for i = 0 to k - 1 do
                  if List.mem d loops.(i).li_writes && not (reached i (hi + above))
                  then
                    err
                      "tile %d loop %d: reads dataset %d to row %d but producer \
                       loop %d has only reached %d"
                      t k d (hi - 1 + above) i done_.(i)
                done;
                for i = k + 1 to n - 1 do
                  if List.mem d loops.(i).li_writes
                     && written_overlaps i ~lo:(lo - below) ~hi:(hi + above)
                  then
                    err
                      "tile %d loop %d: reads rows [%d,%d) of dataset %d already \
                       overwritten by later loop %d"
                      t k (lo - below) (hi + above) d i
                done)
              l.li_reads;
            (* the slab's writes: rows [lo, hi) of d *)
            List.iter
              (fun d ->
                for i = 0 to k - 1 do
                  List.iter
                    (fun (d', below, _above) ->
                      if d = d' && not (reached i (hi + below)) then
                        err
                          "tile %d loop %d: overwrites dataset %d rows [%d,%d) \
                           still unread by earlier loop %d (frontier %d)"
                          t k d lo hi i done_.(i))
                    loops.(i).li_reads;
                  if List.mem d loops.(i).li_writes && not (reached i hi) then
                    err
                      "tile %d loop %d: writes dataset %d rows [%d,%d) before \
                       earlier writer loop %d (frontier %d)"
                      t k d lo hi i done_.(i)
                done;
                for i = k + 1 to n - 1 do
                  List.iter
                    (fun (d', below, above) ->
                      if d = d' && read_overlaps i ~below ~above ~lo ~hi then
                        err
                          "tile %d loop %d: writes dataset %d rows [%d,%d) \
                           already read by later loop %d"
                          t k d lo hi i)
                    loops.(i).li_reads;
                  if List.mem d loops.(i).li_writes && written_overlaps i ~lo ~hi
                  then
                    err
                      "tile %d loop %d: writes dataset %d rows [%d,%d) after \
                       later writer loop %d"
                      t k d lo hi i
                done)
              l.li_writes;
            done_.(k) <- max done_.(k) hi
          end)
        slabs)
    sched.sched_tiles;
  Array.iteri
    (fun k l ->
      if l.li_hi > l.li_lo && done_.(k) < l.li_hi then
        err "loop %d: rows [%d,%d) never executed" k done_.(k) l.li_hi)
    loops;
  List.rev !errors

(* ---- Signature and schedule cache -------------------------------------- *)

(* Chain signature: everything the planner looks at, so equal signatures
   guarantee an identical schedule.  Dataset ids are stable for a context's
   lifetime, which is what makes repeated solver steps hit. *)
let signature ~tile_size loops =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int tile_size);
  Array.iter
    (fun l ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int l.li_lo);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int l.li_hi);
      List.iter
        (fun (d, below, above) ->
          Printf.bprintf b ";r%d,%d,%d" d below above)
        l.li_reads;
      List.iter (fun d -> Printf.bprintf b ";w%d" d) l.li_writes)
    loops;
  Buffer.contents b

(* Process-wide schedule cache, keyed by chain signature — the same
   philosophy as the OP2 plan cache: solver steps repeat the same chains,
   so after the first flush the planner and validator cost nothing. *)
let cache : (string, schedule) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let find ~tile_size loops =
  let key = signature ~tile_size loops in
  match Hashtbl.find_opt cache key with
  | Some s ->
    Am_obs.Counters.incr Am_obs.Obs.tile_hits;
    s
  | None ->
    Am_obs.Counters.incr Am_obs.Obs.tile_misses;
    let s =
      Am_obs.Obs.span ~cat:Am_obs.Tracer.Plan "tile_plan" (fun () ->
          plan ~tile_size loops)
    in
    (* Total skew is the per-chain price of the declared (or, with footprint
       inference, the observed) dependence distances — the counter makes
       descriptor tightening measurable in bench output.  Bumped here, not
       in [plan]: a cache hit replays the same schedule and must not count
       its skew again. *)
    Array.iter
      (fun sg -> Am_obs.Counters.add Am_obs.Obs.tile_skew_rows sg)
      s.sched_sigma;
    (match validate loops s with
    | [] -> ()
    | e :: _ -> raise (Invalid_schedule e));
    Hashtbl.add cache key s;
    s
