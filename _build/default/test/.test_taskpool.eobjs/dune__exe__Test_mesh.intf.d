test/test_mesh.mli:
