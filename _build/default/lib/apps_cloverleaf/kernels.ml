(* CloverLeaf 2D kernels.

   A compressible-Euler hydrodynamics cycle on a staggered structured grid,
   following the published CloverLeaf mini-app: thermodynamics on cell
   centres, velocities on nodes, fluxes on faces; a Lagrangian step (PdV +
   acceleration) followed by first-order donor-cell advection sweeps and a
   field reset.  Slope limiters of the original are omitted (first-order
   upwind donor cell), which keeps the scheme robust and preserves the
   loop/stencil structure the paper's evaluation depends on.

   Kernels receive staging buffers gathered through their declared stencils
   (point-major: buf.(p*dim + c)); the stencil orders are documented with
   each kernel and fixed in [App].  The same functions are reused by the
   hand-coded baseline. *)

let gamma = 1.4

(* EoS: p = (gamma-1) * rho * e, soundspeed^2 = gamma * p / rho.
   args: density(R), energy(R), pressure(W), soundspeed(W) — all centre. *)
let ideal_gas args =
  let density = args.(0).(0) and energy = args.(1).(0) in
  let p = (gamma -. 1.0) *. density *. energy in
  args.(2).(0) <- p;
  args.(3).(0) <- sqrt (gamma *. p /. density)

let ideal_gas_info = { Am_core.Descr.flops = 5.0; transcendentals = 1.0 }

(* Artificial viscosity on compressing cells.
   args:
     0 xvel0   quad stencil [(0,0);(1,0);(0,1);(1,1)] (nodes around cell)
     1 yvel0   same stencil
     2 density (R, centre)
     3 viscosity (W, centre)
     4 celldims (R gbl: [dx; dy]) *)
let viscosity args =
  let xv = args.(0) and yv = args.(1) in
  let density = args.(2).(0) in
  let dx = args.(4).(0) and dy = args.(4).(1) in
  (* Velocity divergence from the four corner nodes. *)
  let ugrad = 0.5 *. ((xv.(1) +. xv.(3)) -. (xv.(0) +. xv.(2))) /. dx in
  let vgrad = 0.5 *. ((yv.(2) +. yv.(3)) -. (yv.(0) +. yv.(1))) /. dy in
  let div = ugrad +. vgrad in
  if div < 0.0 then begin
    let length = Float.min dx dy in
    args.(3).(0) <- 2.0 *. density *. (div *. length) *. (div *. length)
  end
  else args.(3).(0) <- 0.0

let viscosity_info = { Am_core.Descr.flops = 14.0; transcendentals = 0.0 }

(* Per-cell stable timestep (min reduction).
   args:
     0 soundspeed (R, centre)
     1 viscosity (R, centre)
     2 density (R, centre)
     3 xvel0 quad, 4 yvel0 quad
     5 celldims (R gbl)
     6 dt_min (Min gbl) *)
let calc_dt args =
  let ss = args.(0).(0) and visc = args.(1).(0) and density = args.(2).(0) in
  let xv = args.(3) and yv = args.(4) in
  let dx = args.(5).(0) and dy = args.(5).(1) in
  let u = 0.25 *. (xv.(0) +. xv.(1) +. xv.(2) +. xv.(3)) in
  let v = 0.25 *. (yv.(0) +. yv.(1) +. yv.(2) +. yv.(3)) in
  (* Effective signal speed includes the viscous pressure. *)
  let ss_eff = sqrt ((ss *. ss) +. (2.0 *. visc /. density)) in
  let dtx = dx /. (ss_eff +. Float.abs u) in
  let dty = dy /. (ss_eff +. Float.abs v) in
  let dt = 0.5 *. Float.min dtx dty in
  args.(6).(0) <- Float.min args.(6).(0) dt

let calc_dt_info = { Am_core.Descr.flops = 18.0; transcendentals = 1.0 }

(* PdV compression/expansion work (predictor and corrector share this
   kernel: the predictor passes the time-level-0 velocities twice with half
   the timestep, the corrector both levels with the full timestep — exactly
   as CloverLeaf does).  The corrector's face fluxes equal flux_calc's
   volume fluxes, which is what makes the following advection remap conserve
   mass exactly.
   args:
     0 xvel0 quad stencil [(0,0);(1,0);(0,1);(1,1)], 1 yvel0 quad
     2 xvel1 quad, 3 yvel1 quad
     4 density0 (R), 5 energy0 (R), 6 pressure (R), 7 viscosity (R)
     8 density1 (W), 9 energy1 (W)
     10 consts (R gbl: [dx; dy; dt_effective; volume]) *)
let pdv args =
  let xv0 = args.(0) and yv0 = args.(1) and xv1 = args.(2) and yv1 = args.(3) in
  let density0 = args.(4).(0) and energy0 = args.(5).(0) in
  let pressure = args.(6).(0) and visc = args.(7).(0) in
  let dx = args.(10).(0) and dy = args.(10).(1) in
  let dt = args.(10).(2) and volume = args.(10).(3) in
  (* Face fluxes from time-averaged nodal velocities; xarea = dy, yarea = dx
     on a uniform grid. *)
  let left = dy *. (0.25 *. (xv0.(0) +. xv0.(2) +. xv1.(0) +. xv1.(2))) *. dt in
  let right = dy *. (0.25 *. (xv0.(1) +. xv0.(3) +. xv1.(1) +. xv1.(3))) *. dt in
  let bottom = dx *. (0.25 *. (yv0.(0) +. yv0.(1) +. yv1.(0) +. yv1.(1))) *. dt in
  let top = dx *. (0.25 *. (yv0.(2) +. yv0.(3) +. yv1.(2) +. yv1.(3))) *. dt in
  let total_flux = right -. left +. top -. bottom in
  let volume_change = volume /. (volume +. total_flux) in
  let energy_change = (pressure +. visc) /. density0 *. total_flux /. volume in
  args.(9).(0) <- energy0 -. energy_change;
  args.(8).(0) <- density0 *. volume_change

let pdv_info = { Am_core.Descr.flops = 30.0; transcendentals = 0.0 }

(* Nodal acceleration from pressure and viscosity gradients.
   args:
     0 density0  cell quad around node: [(-1,-1);(0,-1);(-1,0);(0,0)]
     1 pressure  same stencil
     2 viscosity same stencil
     3 xvel0 (R, centre), 4 yvel0 (R, centre)
     5 xvel1 (W, centre), 6 yvel1 (W, centre)
     7 consts (R gbl: [dx; dy; dt; volume]) *)
let accelerate args =
  let d = args.(0) and p = args.(1) and q = args.(2) in
  let dx = args.(7).(0) and dy = args.(7).(1) in
  let dt = args.(7).(2) and volume = args.(7).(3) in
  let nodal_mass = 0.25 *. (d.(0) +. d.(1) +. d.(2) +. d.(3)) *. volume in
  let stepbymass = 0.5 *. dt /. nodal_mass in
  (* Pressure difference across the node in x: right cells minus left. *)
  let fx pr = ((pr.(1) +. pr.(3)) -. (pr.(0) +. pr.(2))) *. 0.5 *. dy in
  let fy pr = ((pr.(2) +. pr.(3)) -. (pr.(0) +. pr.(1))) *. 0.5 *. dx in
  args.(5).(0) <- args.(3).(0) -. (stepbymass *. (fx p +. fx q));
  args.(6).(0) <- args.(4).(0) -. (stepbymass *. (fy p +. fy q))

let accelerate_info = { Am_core.Descr.flops = 24.0; transcendentals = 0.0 }

(* Volume fluxes through x-faces from time-averaged velocities.
   args:
     0 xvel0 [(0,0);(0,1)] (nodes on the face)
     1 xvel1 same
     2 vol_flux_x (W, centre)
     3 consts (R gbl: [dx; dy; dt]) *)
let flux_calc_x args =
  let xv0 = args.(0) and xv1 = args.(1) in
  let dy = args.(3).(1) and dt = args.(3).(2) in
  args.(2).(0) <- 0.25 *. dt *. dy *. (xv0.(0) +. xv0.(1) +. xv1.(0) +. xv1.(1))

(* args mirror flux_calc_x with yvel and [(0,0);(1,0)]. *)
let flux_calc_y args =
  let yv0 = args.(0) and yv1 = args.(1) in
  let dx = args.(3).(0) and dt = args.(3).(2) in
  args.(2).(0) <- 0.25 *. dt *. dx *. (yv0.(0) +. yv0.(1) +. yv1.(0) +. yv1.(1))

let flux_calc_info = { Am_core.Descr.flops = 6.0; transcendentals = 0.0 }

(* Advection sweep volumes.
   x-sweep (first): pre_vol = V + net volume flux of both directions,
   post_vol = pre_vol - net x flux.
   args:
     0 vol_flux_x [(0,0);(1,0)]
     1 vol_flux_y [(0,0);(0,1)]
     2 pre_vol (W, centre), 3 post_vol (W, centre)
     4 consts (R gbl: [volume]) *)
let advec_vol_x args =
  let vfx = args.(0) and vfy = args.(1) in
  let volume = args.(4).(0) in
  let net_x = vfx.(1) -. vfx.(0) in
  let net_y = vfy.(1) -. vfy.(0) in
  let pre = volume +. net_x +. net_y in
  args.(2).(0) <- pre;
  args.(3).(0) <- pre -. net_x

(* y-sweep (second): only the y flux remains. *)
let advec_vol_y args =
  let vfy = args.(1) in
  let volume = args.(4).(0) in
  let net_y = vfy.(1) -. vfy.(0) in
  args.(2).(0) <- volume +. net_y;
  args.(3).(0) <- volume

let advec_vol_info = { Am_core.Descr.flops = 6.0; transcendentals = 0.0 }

(* Donor-cell mass and energy fluxes through x-faces.
   args:
     0 vol_flux_x (R, centre on faces)
     1 density1 [(-1,0);(0,0)] (left and right cells of the face)
     2 energy1  same
     3 mass_flux_x (W, centre)
     4 ener_flux_x (W, centre) *)
let advec_flux_x args =
  let vf = args.(0).(0) in
  let d = args.(1) and e = args.(2) in
  let donor = if vf > 0.0 then 0 else 1 in
  let mf = vf *. d.(donor) in
  args.(3).(0) <- mf;
  args.(4).(0) <- mf *. e.(donor)

(* Same through y-faces; density/energy stencil [(0,-1);(0,0)]. *)
let advec_flux_y = advec_flux_x

let advec_flux_info = { Am_core.Descr.flops = 4.0; transcendentals = 0.0 }

(* Cell update of an advection sweep.
   args:
     0 mass_flux [(0,0);(1,0)] (x) or [(0,0);(0,1)] (y)
     1 ener_flux same
     2 pre_vol (R, centre), 3 post_vol (R, centre)
     4 density1 (Rw, centre), 5 energy1 (Rw, centre) *)
let advec_cell args =
  let mf = args.(0) and ef = args.(1) in
  let pre_vol = args.(2).(0) and post_vol = args.(3).(0) in
  let density = args.(4) and energy = args.(5) in
  let pre_mass = density.(0) *. pre_vol in
  let post_mass = pre_mass +. mf.(0) -. mf.(1) in
  let post_ener = ((energy.(0) *. pre_mass) +. ef.(0) -. ef.(1)) /. post_mass in
  density.(0) <- post_mass /. post_vol;
  energy.(0) <- post_ener

let advec_cell_info = { Am_core.Descr.flops = 10.0; transcendentals = 0.0 }

(* Momentum advection, stage 1: mass flux through the "left" face of each
   node's control volume (x direction shown; y swaps roles).
   args:
     0 mass_flux_x [(0,-1);(0,0)] (the two face fluxes beside the node)
     1 node_flux (W, centre on nodes) *)
let mom_node_flux args =
  args.(1).(0) <- 0.5 *. (args.(0).(0) +. args.(0).(1))

(* Stage 2: post-advection nodal mass.
   args:
     0 density1 cell quad around node [(-1,-1);(0,-1);(-1,0);(0,0)]
     1 node_mass_post (W, centre)
     2 consts (R gbl: [volume]) *)
let mom_node_mass args =
  let d = args.(0) in
  args.(1).(0) <- 0.25 *. (d.(0) +. d.(1) +. d.(2) +. d.(3)) *. args.(2).(0)

(* Stage 3: upwinded momentum flux through the node CV's left face.
   args:
     0 node_flux (R, centre)
     1 vel [(-1,0);(0,0)] (x) or [(0,-1);(0,0)] (y)
     2 mom_flux (W, centre) *)
let mom_flux args =
  let f = args.(0).(0) in
  let v = args.(1) in
  let upwind = if f > 0.0 then 0 else 1 in
  args.(2).(0) <- f *. v.(upwind)

(* Stage 4: velocity update.
   args:
     0 node_flux [(0,0);(1,0)] (x) or [(0,0);(0,1)] (y)
     1 mom_flux same
     2 node_mass_post (R, centre)
     3 vel (Rw, centre) *)
let mom_vel args =
  let nf = args.(0) and mf = args.(1) in
  let mass_post = args.(2).(0) in
  let vel = args.(3) in
  (* Mass before this sweep's advection: post + net outflow. *)
  let mass_pre = mass_post +. nf.(1) -. nf.(0) in
  vel.(0) <- ((vel.(0) *. mass_pre) +. mf.(0) -. mf.(1)) /. mass_post

let advec_mom_info = { Am_core.Descr.flops = 8.0; transcendentals = 0.0 }

(* reset_field: copy the time levels back. args: src (R), dst (W). *)
let reset_field args = args.(1).(0) <- args.(0).(0)

let reset_field_info = { Am_core.Descr.flops = 0.0; transcendentals = 0.0 }

(* field_summary reductions.
   args:
     0 density0 (R), 1 energy0 (R), 2 pressure (R)
     3 xvel0 quad (nodes around cell), 4 yvel0 quad
     5 consts (R gbl: [volume])
     6 sums (Inc gbl: [vol; mass; internal energy; kinetic energy; pressure]) *)
let field_summary args =
  let density = args.(0).(0) and energy = args.(1).(0) and pressure = args.(2).(0) in
  let xv = args.(3) and yv = args.(4) in
  let volume = args.(5).(0) in
  let sums = args.(6) in
  let vsqrd =
    0.25
    *. (((xv.(0) *. xv.(0)) +. (xv.(1) *. xv.(1)) +. (xv.(2) *. xv.(2))
         +. (xv.(3) *. xv.(3)))
        +. ((yv.(0) *. yv.(0)) +. (yv.(1) *. yv.(1)) +. (yv.(2) *. yv.(2))
            +. (yv.(3) *. yv.(3))))
  in
  let cell_mass = density *. volume in
  sums.(0) <- sums.(0) +. volume;
  sums.(1) <- sums.(1) +. cell_mass;
  sums.(2) <- sums.(2) +. (cell_mass *. energy);
  sums.(3) <- sums.(3) +. (0.5 *. cell_mass *. vsqrd);
  sums.(4) <- sums.(4) +. (volume *. pressure)

let field_summary_info = { Am_core.Descr.flops = 26.0; transcendentals = 0.0 }

(* ---- Second-order (van Leer) advection --------------------------------- *)

(* The published CloverLeaf uses van Leer slope limiting on its donor-cell
   fluxes; the first-order kernels above keep the same loop structure with
   the limiter dropped.  Both are selectable in [App] (the ablation harness
   compares them). Uniform grid: the vertex-spacing ratios of the original
   reduce to 1. *)
let van_leer_limited ~sigma ~upwind ~donor ~downwind =
  let diffuw = donor -. upwind in
  let diffdw = downwind -. donor in
  if diffuw *. diffdw > 0.0 then begin
    let sigma3 = 1.0 +. sigma in
    let sigma4 = 2.0 -. sigma in
    let magnitude =
      Float.min
        (Float.min (Float.abs diffuw) (Float.abs diffdw))
        (((sigma3 *. Float.abs diffuw) +. (sigma4 *. Float.abs diffdw)) /. 6.0)
    in
    (1.0 -. sigma) *. (if diffdw >= 0.0 then magnitude else -.magnitude)
  end
  else 0.0

(* Van Leer donor fluxes through x-faces.
   args:
     0 vol_flux_x (R, centre on faces)
     1 density1 [(-2,0);(-1,0);(0,0);(1,0)]
     2 energy1  same
     3 pre_vol  [(-1,0);(0,0)] (donor candidates)
     4 mass_flux_x (W), 5 ener_flux_x (W)
   The same function serves the y direction with the stencils rotated. *)
let advec_flux_vanleer args =
  let vf = args.(0).(0) in
  let d = args.(1) and e = args.(2) and pv = args.(3) in
  (* Buffer points: 0 = -2, 1 = -1, 2 = 0, 3 = +1 (in the sweep axis). *)
  let upw, don, dnw, pre_don =
    if vf > 0.0 then (0, 1, 2, pv.(0)) else (3, 2, 1, pv.(1))
  in
  let sigmat = Float.abs vf /. pre_don in
  let lim_d =
    van_leer_limited ~sigma:sigmat ~upwind:d.(upw) ~donor:d.(don) ~downwind:d.(dnw)
  in
  let mf = vf *. (d.(don) +. lim_d) in
  args.(4).(0) <- mf;
  let sigmam = Float.abs mf /. (d.(don) *. pre_don) in
  let lim_e =
    van_leer_limited ~sigma:sigmam ~upwind:e.(upw) ~donor:e.(don) ~downwind:e.(dnw)
  in
  args.(5).(0) <- mf *. (e.(don) +. lim_e)

let advec_flux_vanleer_info = { Am_core.Descr.flops = 34.0; transcendentals = 0.0 }
