lib/taskpool/pool.mli:
