test/test_airfoil.ml: Alcotest Am_airfoil Am_checkpoint Am_core Am_mesh Am_op2 Am_simmpi Am_taskpool Am_util Array Filename Float Lazy List Option Sys
