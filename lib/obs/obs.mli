(** Process-wide observability front end.

    The runtime layers (op2, ops, simmpi, checkpoint) have no common context
    object — [Simmpi.Comm] in particular is constructed far from any facade —
    so the span tracer and the counter registry they report into are process
    globals defined here.  Drivers enable tracing, run, then export with
    {!write_trace} / {!write_counters} / {!report}. *)

val tracer : Tracer.t
val counters : Counters.t

val set_tracing : bool -> unit
val tracing : unit -> bool
(** Fast enabled check for call sites that build span arguments. *)

(** Span helpers on the global tracer (no-ops while tracing is off). *)

val begin_span : ?lane:int -> ?args:(string * float) list -> cat:Tracer.category -> string -> unit

val end_span : ?lane:int -> unit -> unit
val span : ?lane:int -> ?args:(string * float) list -> cat:Tracer.category -> string -> (unit -> 'a) -> 'a
val instant : ?lane:int -> ?args:(string * float) list -> cat:Tracer.category -> string -> unit

val colour_name : int -> string
(** ["colour0"], ["colour1"], ... without allocating for small indices. *)

(** {1 Pre-registered counters}

    Always-on; updating one is a single field write.  [plan_hits]/[plan_misses]
    count plan-cache lookups served from cache vs. creating an entry;
    [plan_builds]/[plan_colours] count plans actually constructed and their
    block colours; [exec_hits]/[exec_misses] count compiled-executor reuses
    vs. (re)compilations; [core_elements]/[boundary_elements] count elements
    run while halos were in flight vs. deferred until arrival. *)

val loop_calls : Counters.counter
val loop_bytes : Counters.counter
val loop_elements : Counters.counter
val plan_hits : Counters.counter
val plan_misses : Counters.counter
val plan_builds : Counters.counter
val plan_colours : Counters.counter
val exec_hits : Counters.counter
val exec_misses : Counters.counter
val comm_messages : Counters.counter
val comm_bytes : Counters.counter
val comm_exchanges : Counters.counter
val comm_reductions : Counters.counter
val core_elements : Counters.counter
val boundary_elements : Counters.counter
val checkpoint_snapshots : Counters.counter
val checkpoint_restores : Counters.counter

(** Fault-injection and recovery activity: faults injected per kind
    (drops, duplicates, delays, corruptions), faults detected by the
    reliable transport (CRC failures, stale-sequence discards, timeouts)
    and its retransmissions, plus whole-run events — injected rank
    crashes, recovery restarts, and aborts after retries were exhausted. *)

val fault_drops : Counters.counter
val fault_dups : Counters.counter
val fault_delays : Counters.counter
val fault_corruptions : Counters.counter
val fault_crc_failures : Counters.counter
val fault_stale : Counters.counter
val fault_timeouts : Counters.counter
val fault_retransmits : Counters.counter
val fault_crashes : Counters.counter
val fault_recoveries : Counters.counter
val fault_aborts : Counters.counter

(** Static-analysis findings per layer (descriptor lints, plan/colouring
    validation, cross-loop dataflow) and the sanitizer backend's activity:
    loops and elements executed under guard, violations raised. *)

val analysis_lint_findings : Counters.counter
val analysis_plan_violations : Counters.counter
val analysis_dataflow_findings : Counters.counter
val check_loops : Counters.counter
val check_elements : Counters.counter
val check_violations : Counters.counter

(** Footprint-inference activity: loop signatures probed, kernel
    invocations spent probing, per-context cache hits vs. misses, the
    cumulative probing time, and significant findings the verifier derived
    from observed-vs-declared diffs.  The Check backend's light mode —
    loops whose footprint the static pass proved exact, run with the
    per-element guards reduced to NaN checks — reports alongside, as do
    the distributed backends' inference-tightened halo exchanges (rows of
    depth saved versus the declared stencil extent). *)

val infer_signatures : Counters.counter
val infer_kernel_runs : Counters.counter
val infer_hits : Counters.counter
val infer_misses : Counters.counter
val infer_seconds : Counters.gauge
val infer_findings : Counters.counter
val check_light_loops : Counters.counter
val check_light_elements : Counters.counter
val halo_depth_saved : Counters.counter
val halo_exchanges_saved : Counters.counter

(** Sum of the per-loop outer-axis skew offsets of every planned tile
    schedule: tighter (inference-proven) dependence distances show up
    directly as fewer skew rows per flushed chain. *)
val tile_skew_rows : Counters.counter

(** Schedule-exploration (bounded DPOR) activity: program executions run by
    the explorer, backtrack points taken, redundant schedules pruned by
    sleep sets, and backtrack points skipped by the delay bound. *)

val dpor_executions : Counters.counter
val dpor_backtracks : Counters.counter
val dpor_sleep_hits : Counters.counter
val dpor_bound_skips : Counters.counter

(** Lazy loop-chain activity: loops recorded into a chain instead of run,
    chain flushes, skewed tiles executed, and tile-schedule cache lookups
    served from cache vs. planned (and validated) fresh. *)

val chain_loops : Counters.counter
val chain_flushes : Counters.counter
val chain_tiles : Counters.counter
val tile_hits : Counters.counter
val tile_misses : Counters.counter

(** Parallel (wavefront) tiled execution: wavefronts dispatched onto the
    domain pool and slabs executed under the parallel runner. *)

val tile_wavefronts : Counters.counter
val tile_par_slabs : Counters.counter

(** Runtime-environment telemetry.  GC cells accumulate per-loop
    [Gc.quick_stat] deltas (sampled only while tracing is enabled, so the
    default path never calls the GC); pool cells aggregate taskpool worker
    occupancy — busy time over wall time x workers for traced parallel
    regions. *)

val gc_minor : Counters.counter
val gc_major : Counters.counter
val gc_promoted : Counters.gauge
val pool_busy_seconds : Counters.gauge
val pool_wall_seconds : Counters.gauge
val pool_occupancy : Counters.gauge

(** Pre-registered latency histograms (always-on, like the counters):
    per-call loop wall time across all facades, per-exchange halo latency,
    and chain-flush / skewed-tile durations from the lazy OPS modes. *)

val loop_seconds : Counters.histogram
val halo_seconds : Counters.histogram
val chain_flush_seconds : Counters.histogram
val tile_seconds : Counters.histogram

val add_flush_hook : (unit -> unit) -> unit
(** Register an idempotent hook run before every trace/counter export and
    {!report}: lazy-chain contexts flush queued loops here so exports never
    observe (or drop) deferred work.  Hooks live for the process. *)

val run_flush_hooks : unit -> unit

val reset : unit -> unit
(** Zero all counters, drop all trace events, disable tracing. *)

(** {1 Reporting} *)

type loop_row = {
  lr_name : string;
  lr_calls : int;
  lr_seconds : float;
  lr_bytes : int;
  lr_halo_seconds : float;  (** exposed communication time *)
  lr_overlap_seconds : float;  (** communication hidden behind core compute *)
}

val report : ?roofline_gbs:float -> ?loops:loop_row list -> unit -> string
(** Rendered tables: per-loop time and achieved GB/s (against the perfmodel
    roofline ceiling when [roofline_gbs] is given) with exposed-vs-hidden
    halo columns, followed by cache hit-rates and communication totals,
    then one section per active counter family — lazy loop chains
    ([chain.*]/[tile_cache.*]), schedule exploration ([dpor.*]) — and a
    latency-distribution table (count/p50/p90/p99/max) for every non-empty
    histogram cell. *)

val counters_json : unit -> string
val write_counters : path:string -> unit
val write_trace : path:string -> unit

val finish : ?trace:string -> ?obs_json:string -> ?roofline_gbs:float -> ?loops:loop_row list -> unit -> unit
(** Driver epilogue for the [--trace] / [--obs-json] flags: write whichever
    artifact paths are given and, if any is, print {!report} and the flame
    summary to stdout. *)
