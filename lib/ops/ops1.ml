(* Public facade of the 1D structured-mesh library: the same abstraction as
   {!Ops}/{!Ops3} instantiated for one-dimensional blocks (the paper:
   blocks have "a number of dimensions (1D, 2D, 3D, etc.)"). *)

module Access = Am_core.Access
module Descr = Am_core.Descr
module Profile = Am_core.Profile
module Trace = Am_core.Trace

type block = Types1.block
type dat = Types1.dat
type arg = Types1.arg
type range = Types1.range = { xlo : int; xhi : int }
type stencil = Types1.stencil

let stencil_point = Types1.stencil_point
let stencil_3pt = Types1.stencil_3pt

type backend =
  | Seq
  | Shared of { pool : Am_taskpool.Pool.t }
  | Cuda_sim of Exec1.cuda_config
  | Check (* sanitizer: seq semantics + access-descriptor guards *)

type ctx = {
  env : Types1.env;
  mutable backend : backend;
  profile : Profile.t;
  trace : Trace.t;
  mutable dist : Dist1.t option;
  mutable checkpoint : Am_checkpoint.Runtime.session option;
  mutable fault : Am_simmpi.Fault.t option;
}

let create ?(backend = Seq) () =
  {
    env = Types1.make_env ();
    backend;
    profile = Profile.create ();
    trace = Trace.create ();
    dist = None;
    checkpoint = None;
    fault = None;
  }

let set_backend ctx backend =
  (match (backend, ctx.dist) with
  | (Shared _ | Cuda_sim _ | Check), Some _ ->
    invalid_arg "Ops1.set_backend: context is partitioned"
  | (Seq | Shared _ | Cuda_sim _ | Check), _ -> ());
  ctx.backend <- backend

let backend ctx = ctx.backend
let profile ctx = ctx.profile
let trace ctx = ctx.trace
let blocks ctx = Types1.blocks ctx.env
let dats ctx = Types1.dats ctx.env

let decl_block ctx ~name = Types1.decl_block ctx.env ~name

let decl_dat ctx ~name ~block ~xsize ?halo ?dim () =
  Types1.decl_dat ctx.env ~name ~block ~xsize ?halo ?dim ()

let arg_dat dat stencil access : arg =
  if not (Access.valid_on_dat access) then
    invalid_arg
      (Printf.sprintf
         "Ops1.arg_dat: access %s is not valid on dataset %s (datasets accept \
          Read/Write/Inc/Rw; Min/Max are global reductions — use arg_gbl)"
         (Access.to_string access) dat.Types1.dat_name);
  Types1.Arg_dat { dat; stencil; access }

let arg_gbl ~name buf access : arg =
  if not (Access.valid_on_gbl access) then
    invalid_arg
      (Printf.sprintf
         "Ops1.arg_gbl: access %s is not valid on global %s (globals accept \
          Read/Inc/Min/Max)"
         (Access.to_string access) name);
  Types1.Arg_gbl { name; buf; access }
let arg_idx : arg = Types1.Arg_idx

let interior = Types1.interior
let get = Types1.get
let set = Types1.set

let fetch_interior ctx dat =
  match ctx.dist with
  | Some d -> Dist1.fetch_interior d dat
  | None -> Types1.fetch_interior dat

let init ctx dat f =
  for x = Types1.x_min dat to Types1.x_max dat - 1 do
    for c = 0 to dat.Types1.dim - 1 do
      Types1.set dat ~x ~c (f x c)
    done
  done;
  match ctx.dist with Some d -> Dist1.push d dat | None -> ()

(* Route the distributed runtime's messages through the fault injector's
   reliable transport; a loop-counter crash trigger fires on any backend. *)
let set_fault_injector ctx f =
  ctx.fault <- Some f;
  match ctx.dist with
  | Some d -> Am_simmpi.Comm.attach_fault d.Dist1.comm f
  | None -> ()

let fault_injector ctx = ctx.fault

let attach_pending_fault ctx =
  match (ctx.fault, ctx.dist) with
  | Some f, Some d -> Am_simmpi.Comm.attach_fault d.Dist1.comm f
  | _ -> ()

let partition ctx ~n_ranks ~ref_xsize =
  if ctx.dist <> None then invalid_arg "Ops1.partition: already partitioned";
  (match ctx.backend with
  | Seq -> ()
  | Shared _ | Cuda_sim _ | Check ->
    invalid_arg "Ops1.partition: switch the backend to Seq before partitioning");
  ctx.dist <- Some (Dist1.build ctx.env ~n_ranks ~ref_xsize);
  attach_pending_fault ctx

type rank_execution = Dist1.rank_exec = Rank_seq | Rank_shared of Am_taskpool.Pool.t

let set_rank_execution ctx exec =
  match ctx.dist with
  | None -> invalid_arg "Ops1.set_rank_execution: partition first"
  | Some d -> d.Dist1.rank_exec <- exec

(* Halo-exchange policy, as for the other facades. *)
type halo_policy = On_demand | Eager

let set_halo_policy ctx policy =
  match ctx.dist with
  | None -> invalid_arg "Ops1.set_halo_policy: partition first"
  | Some d -> d.Dist1.eager_halo <- (policy = Eager)

(* Communication mode, as for the other facades (see [Ops.set_comm_mode]). *)
type comm_mode = Blocking | Overlap

let set_comm_mode ctx mode =
  match ctx.dist with
  | None -> invalid_arg "Ops1.set_comm_mode: partition first"
  | Some d -> d.Dist1.overlap <- (mode = Overlap)

let comm_mode ctx =
  match ctx.dist with
  | Some d when d.Dist1.overlap -> Overlap
  | Some _ | None -> Blocking

let comm_stats ctx =
  match ctx.dist with
  | None -> None
  | Some d -> Some (Am_simmpi.Comm.stats d.Dist1.comm)

let now () = Unix.gettimeofday ()

(* Per-call-site executor handle (see [Ops.make_handle]). *)
type handle = { mutable h_exec : Exec1.compiled_arg array option }

let make_handle () = { h_exec = None }

let resolve_compiled handle args =
  match handle.h_exec with
  | Some c when Exec1.compiled_matches c args ->
    Am_obs.Counters.incr Am_obs.Obs.exec_hits;
    c
  | Some _ | None ->
    Am_obs.Counters.incr Am_obs.Obs.exec_misses;
    let c =
      Am_obs.Obs.span ~cat:Am_obs.Tracer.Plan "compile" (fun () -> Exec1.compile args)
    in
    handle.h_exec <- Some c;
    c

let par_loop ctx ~name ?(info = Descr.default_kernel_info) ?handle block range args
    kernel =
  Types1.validate_args ~block ~range args;
  let descr = Types1.describe ~name ~block ~range ~info args in
  Trace.record ctx.trace descr;
  (* The injected rank crash counts parallel loops on the injector itself,
     so the trigger position survives a recovery restart's fresh context. *)
  (match ctx.fault with
  | Some f -> Am_simmpi.Fault.note_loop f
  | None -> ());
  let t0 = now () in
  let traced = Am_obs.Obs.tracing () in
  if traced then Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Loop name;
  let halo_seconds = ref 0.0 and overlap_seconds = ref 0.0 in
  let execute () =
    match ctx.dist with
    | Some d -> Dist1.par_loop ~halo_seconds ~overlap_seconds d ~range ~args ~kernel
    | None -> (
      let compiled = Option.map (fun h -> resolve_compiled h args) handle in
      match ctx.backend with
      | Seq -> Exec1.run_seq ?compiled ~range ~args ~kernel ()
      | Shared { pool } -> Exec1.run_shared ?compiled pool ~range ~args ~kernel
      | Cuda_sim config -> Exec1.run_cuda ?compiled config ~range ~args ~kernel
      | Check -> Exec_check1.run ~name ~range ~args ~kernel ())
  in
  (match ctx.checkpoint with
  | None -> execute ()
  | Some session ->
    let gbl_out =
      List.filter_map
        (function
          | Types1.Arg_gbl { buf; access; _ } when access <> Access.Read -> Some buf
          | Types1.Arg_gbl _ | Types1.Arg_dat _ | Types1.Arg_idx -> None)
        args
    in
    Am_checkpoint.Runtime.step ~gbl_out session ~descr ~run:execute);
  if traced then Am_obs.Obs.end_span ();
  Profile.record ctx.profile ~name ~seconds:(now () -. t0)
    ~bytes:(Descr.total_bytes descr)
    ~elements:(Types1.range_size range);
  if ctx.dist <> None then
    Profile.record_halo ctx.profile ~name ~overlapped:!overlap_seconds
      ~seconds:!halo_seconds ()

(* ---- Physical boundary conditions (update_halo, 1D) ----------------------- *)

type centering = Boundary1.centering = Cell | Node

let mirror_halo ctx ?(depth = 2) ?(sign = 1.0) ?(center = Cell) dat =
  match ctx.dist with
  | None -> Boundary1.mirror ~depth ~sign ~center dat
  | Some d -> Dist1.mirror d dat ~depth ~sign ~center

(* ---- Automatic checkpointing (paper Section VI) -------------------------- *)

(* On partitioned contexts [fetch] first pulls every point back from its
   owning rank's window and [restore] re-scatters, keeping snapshots
   canonical (see [Ops.checkpoint_fns]). *)
let checkpoint_fns ctx =
  let find name =
    match List.find_opt (fun d -> d.Types1.dat_name = name) (dats ctx) with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Ops1 checkpoint: unknown dataset %s" name)
  in
  let pull d = match ctx.dist with None -> () | Some t -> Dist1.pull t d in
  let push d = match ctx.dist with None -> () | Some t -> Dist1.push t d in
  {
    Am_checkpoint.Runtime.fetch =
      (fun name ->
        let d = find name in
        pull d;
        Array.copy d.Types1.data);
    restore =
      (fun name data ->
        let d = find name in
        if Array.length data <> Array.length d.Types1.data then
          invalid_arg "Ops1 checkpoint: snapshot size mismatch";
        Array.blit data 0 d.Types1.data 0 (Array.length data);
        push d);
  }

let enable_checkpointing ctx =
  if ctx.checkpoint = None then
    ctx.checkpoint <- Some (Am_checkpoint.Runtime.create ~fns:(checkpoint_fns ctx))

let request_checkpoint ctx =
  match ctx.checkpoint with
  | None -> invalid_arg "Ops1.request_checkpoint: call enable_checkpointing first"
  | Some session -> Am_checkpoint.Runtime.request_checkpoint session

let checkpoint_session ctx = ctx.checkpoint

let checkpoint_to_file ctx ~path =
  match ctx.checkpoint with
  | None -> invalid_arg "Ops1.checkpoint_to_file: checkpointing not enabled"
  | Some session -> Am_checkpoint.Runtime.save_to_file session ~path

let recover_from_file ctx ~path =
  ctx.checkpoint <-
    Some (Am_checkpoint.Runtime.recover_from_file ~path ~fns:(checkpoint_fns ctx))
