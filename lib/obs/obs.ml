(* Global observability singletons and the reporting front end. *)

let tracer = Tracer.create ()
let counters = Counters.create ()

let set_tracing flag = Tracer.set_enabled tracer flag
let tracing () = Tracer.enabled tracer

let begin_span ?lane ?args ~cat name = Tracer.begin_span tracer ?lane ?args ~cat name
let end_span ?lane () = Tracer.end_span tracer ?lane ()
let span ?lane ?args ~cat name f = Tracer.with_span tracer ?lane ?args ~cat name f
let instant ?lane ?args ~cat name = Tracer.instant tracer ?lane ?args ~cat name

(* Colour-round span names for the executors: precomputed so emitting one
   costs an array read, not an allocation. *)
let colour_names = Array.init 64 (fun i -> "colour" ^ string_of_int i)

let colour_name i =
  if i >= 0 && i < Array.length colour_names then colour_names.(i)
  else "colour" ^ string_of_int i

let loop_calls = Counters.counter counters "loop.calls"
let loop_bytes = Counters.counter counters ~unit_:"bytes" "loop.bytes"
let loop_elements = Counters.counter counters ~unit_:"elements" "loop.elements"
let plan_hits = Counters.counter counters "plan_cache.hits"
let plan_misses = Counters.counter counters "plan_cache.misses"
let plan_builds = Counters.counter counters "plan.builds"
let plan_colours = Counters.counter counters "plan.colours"
let exec_hits = Counters.counter counters "exec_cache.hits"
let exec_misses = Counters.counter counters "exec_cache.misses"
let comm_messages = Counters.counter counters "comm.messages"
let comm_bytes = Counters.counter counters ~unit_:"bytes" "comm.bytes_sent"
let comm_exchanges = Counters.counter counters "comm.exchanges"
let comm_reductions = Counters.counter counters "comm.reductions"
let core_elements = Counters.counter counters ~unit_:"elements" "dist.core_elements"
let boundary_elements = Counters.counter counters ~unit_:"elements" "dist.boundary_elements"
let checkpoint_snapshots = Counters.counter counters "checkpoint.snapshots"
let checkpoint_restores = Counters.counter counters "checkpoint.restores"
let analysis_lint_findings = Counters.counter counters "analysis.lint_findings"
let analysis_plan_violations = Counters.counter counters "analysis.plan_violations"
let analysis_dataflow_findings = Counters.counter counters "analysis.dataflow_findings"
let infer_signatures = Counters.counter counters "analysis.infer.signatures"
let infer_kernel_runs = Counters.counter counters "analysis.infer.kernel_runs"
let infer_hits = Counters.counter counters "analysis.infer.cache_hits"
let infer_misses = Counters.counter counters "analysis.infer.cache_misses"
let infer_seconds = Counters.gauge counters ~unit_:"s" "analysis.infer.seconds"
let infer_findings = Counters.counter counters "analysis.infer.findings"
let fault_drops = Counters.counter counters "fault.injected_drops"
let fault_dups = Counters.counter counters "fault.injected_dups"
let fault_delays = Counters.counter counters "fault.injected_delays"
let fault_corruptions = Counters.counter counters "fault.injected_corruptions"
let fault_crc_failures = Counters.counter counters "fault.crc_failures"
let fault_stale = Counters.counter counters "fault.stale_discards"
let fault_timeouts = Counters.counter counters "fault.timeouts"
let fault_retransmits = Counters.counter counters "fault.retransmits"
let fault_crashes = Counters.counter counters "fault.crashes"
let fault_recoveries = Counters.counter counters "fault.recoveries"
let fault_aborts = Counters.counter counters "fault.aborts"
let check_loops = Counters.counter counters "check.loops"
let check_elements = Counters.counter counters ~unit_:"elements" "check.elements"
let check_violations = Counters.counter counters "check.violations"
let check_light_loops = Counters.counter counters "check.light_loops"
let check_light_elements = Counters.counter counters ~unit_:"elements" "check.light_elements"
let halo_depth_saved = Counters.counter counters ~unit_:"rows" "dist.halo_depth_saved"
let halo_exchanges_saved = Counters.counter counters "dist.halo_exchanges_saved"
let dpor_executions = Counters.counter counters "dpor.executions"
let dpor_backtracks = Counters.counter counters "dpor.backtracks"
let dpor_sleep_hits = Counters.counter counters "dpor.sleep_hits"
let dpor_bound_skips = Counters.counter counters "dpor.bound_skips"
let tile_skew_rows = Counters.counter counters ~unit_:"rows" "tiling.skew_rows"
let chain_loops = Counters.counter counters "chain.queued_loops"
let chain_flushes = Counters.counter counters "chain.flushes"
let chain_tiles = Counters.counter counters "chain.tiles"
let tile_hits = Counters.counter counters "tile_cache.hits"
let tile_misses = Counters.counter counters "tile_cache.misses"
let tile_wavefronts = Counters.counter counters "tile.wavefronts"
let tile_par_slabs = Counters.counter counters ~unit_:"slabs" "tile.par_slabs"
let gc_minor = Counters.counter counters "gc.minor_collections"
let gc_major = Counters.counter counters "gc.major_collections"
let gc_promoted = Counters.gauge counters ~unit_:"words" "gc.promoted_words"
let pool_busy_seconds = Counters.gauge counters ~unit_:"s" "pool.busy_seconds"
let pool_wall_seconds = Counters.gauge counters ~unit_:"s" "pool.wall_seconds"
let pool_occupancy = Counters.gauge counters "pool.occupancy"

(* Latency-distribution cells: per-call loop wall time (all facades), one
   sample per halo exchange, and one per chain flush / skewed tile in the
   lazy OPS evaluation mode. *)
let loop_seconds = Counters.histogram counters ~unit_:"s" "loop.seconds"
let halo_seconds = Counters.histogram counters ~unit_:"s" "halo.exchange_seconds"
let chain_flush_seconds = Counters.histogram counters ~unit_:"s" "chain.flush_seconds"
let tile_seconds = Counters.histogram counters ~unit_:"s" "chain.tile_seconds"

(* Pre-export flush hooks.  Lazy-chain contexts (the OPS facades' delayed
   evaluation mode) register a chain flush here so any queued loops run
   before a trace or counter artifact is written — an export must never
   observe (or silently drop) half-recorded work.  Hooks are idempotent
   closures; contexts register once and live for the process. *)
let flush_hooks : (unit -> unit) list ref = ref []

let add_flush_hook f = flush_hooks := f :: !flush_hooks
let run_flush_hooks () = List.iter (fun f -> f ()) !flush_hooks

let reset () =
  Counters.reset counters;
  Tracer.clear tracer;
  Tracer.set_enabled tracer false

(* ---- Reporting ------------------------------------------------------- *)

type loop_row = {
  lr_name : string;
  lr_calls : int;
  lr_seconds : float;
  lr_bytes : int;
  lr_halo_seconds : float;
  lr_overlap_seconds : float;
}

let rate hits misses =
  let total = Counters.value hits + Counters.value misses in
  if total = 0 then "-"
  else Printf.sprintf "%.1f%%" (100.0 *. float_of_int (Counters.value hits) /. float_of_int total)

let loops_table ?roofline_gbs loops =
  let header =
    [ "loop"; "calls"; "time"; "GB/s" ]
    @ (match roofline_gbs with Some _ -> [ "% roof" ] | None -> [])
    @ [ "halo exposed"; "halo hidden" ]
  in
  let aligns = Am_util.Table.Left :: List.map (fun _ -> Am_util.Table.Right) (List.tl header) in
  let table = Am_util.Table.create ~title:"observed loops" ~header ~aligns () in
  List.iter
    (fun r ->
      let gbs =
        if r.lr_seconds <= 0.0 || r.lr_bytes = 0 then None
        else Some (Am_util.Units.bandwidth_gbs r.lr_bytes r.lr_seconds)
      in
      Am_util.Table.add_row table
        ([
           r.lr_name;
           string_of_int r.lr_calls;
           Am_util.Units.seconds r.lr_seconds;
           (match gbs with Some g -> Printf.sprintf "%.2f" g | None -> "-");
         ]
        @ (match roofline_gbs with
          | Some roof ->
            [
              (match gbs with
              | Some g when roof > 0.0 -> Printf.sprintf "%.0f%%" (100.0 *. g /. roof)
              | _ -> "-");
            ]
          | None -> [])
        @ [
            Am_util.Units.seconds r.lr_halo_seconds;
            Am_util.Units.seconds r.lr_overlap_seconds;
          ]))
    (List.sort (fun a b -> Float.compare b.lr_seconds a.lr_seconds) loops);
  Am_util.Table.render table

(* Counter families rendered in their own sections below rather than in
   the generic table. *)
let sectioned_families = [ "chain."; "tile_cache."; "tile."; "dpor." ]

let in_sectioned_family name =
  List.exists (fun fam -> String.starts_with ~prefix:fam name) sectioned_families

let counters_table () =
  let table =
    Am_util.Table.create ~title:"runtime counters" ~header:[ "counter"; "value" ]
      ~aligns:[ Am_util.Table.Left; Right ] ()
  in
  let row name value = Am_util.Table.add_row table [ name; value ] in
  row "plan cache hit rate" (rate plan_hits plan_misses);
  row "exec cache hit rate" (rate exec_hits exec_misses);
  List.iter
    (fun (name, v) ->
      if not (in_sectioned_family name) then
        match v with
        | Counters.Int 0 | Counters.Float 0.0 -> ()
        | Counters.Int n ->
          row name
            (if name = "comm.bytes_sent" || name = "loop.bytes" then Am_util.Units.bytes n
             else string_of_int n)
        | Counters.Float x -> row name (Printf.sprintf "%.6g" x)
        | Counters.Hist _ -> () (* rendered in the latency-distribution table *))
    (Counters.snapshot counters);
  Am_util.Table.render table

let chain_table () =
  if
    Counters.value chain_loops = 0 && Counters.value chain_flushes = 0
    && Counters.value tile_hits + Counters.value tile_misses = 0
  then None
  else begin
    let table =
      Am_util.Table.create ~title:"lazy loop chains" ~header:[ "counter"; "value" ]
        ~aligns:[ Am_util.Table.Left; Right ] ()
    in
    let row name value = Am_util.Table.add_row table [ name; value ] in
    row "chain.queued_loops" (string_of_int (Counters.value chain_loops));
    row "chain.flushes" (string_of_int (Counters.value chain_flushes));
    row "chain.tiles" (string_of_int (Counters.value chain_tiles));
    if Counters.value tile_wavefronts > 0 then begin
      row "tile.wavefronts" (string_of_int (Counters.value tile_wavefronts));
      row "tile.par_slabs" (string_of_int (Counters.value tile_par_slabs))
    end;
    row "tile cache hit rate" (rate tile_hits tile_misses);
    Some (Am_util.Table.render table)
  end

let dpor_table () =
  if Counters.value dpor_executions = 0 then None
  else begin
    let table =
      Am_util.Table.create ~title:"schedule exploration (dpor)"
        ~header:[ "counter"; "value" ] ~aligns:[ Am_util.Table.Left; Right ] ()
    in
    let row name value = Am_util.Table.add_row table [ name; value ] in
    row "dpor.executions" (string_of_int (Counters.value dpor_executions));
    row "dpor.backtracks" (string_of_int (Counters.value dpor_backtracks));
    row "dpor.sleep_hits" (string_of_int (Counters.value dpor_sleep_hits));
    row "dpor.bound_skips" (string_of_int (Counters.value dpor_bound_skips));
    Some (Am_util.Table.render table)
  end

let histograms_table () =
  let live = List.filter (fun h -> Histogram.count h > 0) (Counters.histograms counters) in
  if live = [] then None
  else begin
    let table =
      Am_util.Table.create ~title:"latency distributions"
        ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
        ~aligns:
          [ Am_util.Table.Left; Right; Right; Right; Right; Right ]
        ()
    in
    List.iter
      (fun h ->
        Am_util.Table.add_row table
          [
            Histogram.name_of h;
            string_of_int (Histogram.count h);
            Am_util.Units.seconds (Histogram.p50 h);
            Am_util.Units.seconds (Histogram.p90 h);
            Am_util.Units.seconds (Histogram.p99 h);
            Am_util.Units.seconds (Histogram.max_value h);
          ])
      live;
    Some (Am_util.Table.render table)
  end

let report ?roofline_gbs ?(loops = []) () =
  run_flush_hooks ();
  let b = Buffer.create 1024 in
  if loops <> [] then begin
    Buffer.add_string b (loops_table ?roofline_gbs loops);
    (match roofline_gbs with
    | Some roof ->
      Buffer.add_string b
        (Printf.sprintf "roofline ceiling: %.1f GB/s (perfmodel stream bandwidth)\n" roof)
    | None -> ());
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b (counters_table ());
  List.iter
    (fun section ->
      match section with
      | Some text ->
        Buffer.add_char b '\n';
        Buffer.add_string b text
      | None -> ())
    [ chain_table (); dpor_table (); histograms_table () ];
  Buffer.contents b

let counters_json () = Counters.to_json counters

let write_counters ~path =
  run_flush_hooks ();
  let oc = open_out path in
  output_string oc (counters_json ());
  close_out oc

let write_trace ~path =
  run_flush_hooks ();
  Tracer.write_chrome tracer ~path

let finish ?trace ?obs_json ?roofline_gbs ?loops () =
  run_flush_hooks ();
  match (trace, obs_json) with
  | None, None -> ()
  | _ ->
    print_newline ();
    print_string (report ?roofline_gbs ?loops ());
    (match trace with
    | Some path ->
      write_trace ~path;
      print_newline ();
      print_string (Tracer.flame_summary tracer);
      Printf.printf "trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n" path
    | None -> ());
    (match obs_json with
    | Some path ->
      write_counters ~path;
      Printf.printf "counters written to %s\n" path
    | None -> ())
