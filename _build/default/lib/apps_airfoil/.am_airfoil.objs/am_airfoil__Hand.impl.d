lib/apps_airfoil/hand.ml: Am_mesh Array Float Kernels
