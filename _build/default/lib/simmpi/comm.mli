(** In-process message-passing simulator (MPI stand-in).

    Ranks are executed BSP-style within one process; messages are FIFO per
    (src, dst) channel and all traffic is recorded for the performance
    model. *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable exchanges : int;  (** collective halo-exchange rounds *)
  mutable reductions : int;
}

type t

val create : n_ranks:int -> t
val n_ranks : t -> int

(** Live view of the traffic counters. *)
val stats : t -> stats

val reset_stats : t -> unit

(** Enqueue a message. The payload is transferred by reference; senders must
    not mutate it afterwards. *)
val send : t -> src:int -> dst:int -> float array -> unit

(** Dequeue the oldest message on the (src, dst) channel; [Failure] if none
    is pending (a deadlock in the simulated program). *)
val recv : t -> src:int -> dst:int -> float array

(** Messages currently queued on a channel. *)
val pending : t -> src:int -> dst:int -> int

(** True when no channel holds an undelivered message. *)
val all_drained : t -> bool

(** Reduce one value per rank with an associative [combine]. *)
val allreduce : t -> combine:(float -> float -> float) -> float array -> float

val allreduce_sum : t -> float array -> float
val allreduce_min : t -> float array -> float
val allreduce_max : t -> float array -> float
