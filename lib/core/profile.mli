(** Per-loop execution profile (the source of Table-I-style breakdowns). *)

type entry = {
  mutable count : int;
  mutable seconds : float;
  mutable bytes : int;  (** estimated useful bytes moved *)
  mutable elements : int;  (** iteration elements processed *)
  mutable halo_seconds : float;
      (** exposed communication time attributed to the loop *)
  mutable overlap_seconds : float;
      (** communication hidden behind core compute (non-blocking exchange) *)
  mutable gc_minor : int;
      (** minor collections during the loop (sampled only on traced runs) *)
  mutable gc_major : int;
  mutable gc_promoted_words : float;
}

type t

val create : unit -> t

(** Disable to remove the (small) bookkeeping cost. *)
val set_enabled : t -> bool -> unit

val record : t -> name:string -> seconds:float -> bytes:int -> elements:int -> unit
(** Accumulates totals and feeds the per-call wall time into both the
    loop's own histogram cell and the global [Obs.loop_seconds]. *)

val record_halo : t -> name:string -> ?overlapped:float -> seconds:float -> unit -> unit
(** [seconds] is the exposed wait; [overlapped] the portion hidden behind
    core computation.  Non-zero exposed waits also feed
    [Obs.halo_seconds]. *)

val record_gc : t -> name:string -> minor:int -> major:int -> promoted_words:float -> unit
(** Accumulate [Gc.quick_stat] deltas for one loop execution.  Facades call
    this only while span tracing is enabled, so untraced runs pay nothing. *)

val find : t -> string -> entry option
(** A snapshot of the loop's accumulated totals (mutating it has no effect
    on the profile). *)

val seconds_hist : t -> string -> Am_obs.Counters.histogram option
(** The loop's per-call wall-time distribution, if it has run. *)

val counters : t -> Am_obs.Counters.t
(** The registry backing this profile (keyed [loop.<name>.<field>]). *)

val obs_rows : t -> Am_obs.Obs.loop_row list
(** Per-loop rows for [Am_obs.Obs.report], sorted by descending time. *)

val reset : t -> unit
val total_seconds : t -> float
val total_halo_seconds : t -> float
val total_overlap_seconds : t -> float

(** Entries by descending total time. *)
val to_list : t -> (string * entry) list

(** Rendered table (loop, calls, time, GB, GB/s, halo time, overlapped). *)
val report : t -> string
