examples/performance_portability.ml: Am_core Am_mesh Am_op2 Am_taskpool Am_util Array Float List Printf Unix
