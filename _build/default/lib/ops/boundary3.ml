(* Reflective ghost-shell boundary conditions in 3D (the 3D update_halo):
   same contract as {!Boundary} with six faces, centre-aware mirroring and
   per-axis sign flips.  Corners and edges become consistent by applying
   the axes in sequence over the already-mirrored shell. *)

open Types3

type centering = Cell | Node

let mirror_low centering k = match centering with Cell -> k - 1 | Node -> k
let mirror_high centering size k =
  match centering with Cell -> size - k | Node -> size - 1 - k

(* [slab_lo, slab_hi) restricts the z-planes handled (rank windows). *)
let apply_via ~get ~set ~(dat : dat) ~depth ~sign_x ~sign_y ~sign_z ~center_x ~center_y
    ~center_z ~slab_lo ~slab_hi =
  if depth > dat.halo then invalid_arg "Boundary3.mirror: depth exceeds ghost shell";
  (* z mirrors: global ghost planes (owned by the edge ranks). *)
  for k = 1 to depth do
    List.iter
      (fun (ghost_z, src_z) ->
        if ghost_z >= slab_lo && ghost_z < slab_hi then
          for y = 0 to dat.ysize - 1 do
            for x = 0 to dat.xsize - 1 do
              for c = 0 to dat.dim - 1 do
                set x y ghost_z c (sign_z *. get x y src_z c)
              done
            done
          done)
      [ (-k, mirror_low center_z k); (dat.zsize - 1 + k, mirror_high center_z dat.zsize k) ]
  done;
  (* y then x mirrors on every locally stored plane. *)
  let z_lo = max (-dat.halo) (slab_lo - dat.halo) in
  let z_hi = min (dat.zsize + dat.halo) (slab_hi + dat.halo) in
  for z = z_lo to z_hi - 1 do
    for k = 1 to depth do
      for x = 0 to dat.xsize - 1 do
        for c = 0 to dat.dim - 1 do
          set x (-k) z c (sign_y *. get x (mirror_low center_y k) z c);
          set x (dat.ysize - 1 + k) z c
            (sign_y *. get x (mirror_high center_y dat.ysize k) z c)
        done
      done
    done;
    for y = -dat.halo to dat.ysize + dat.halo - 1 do
      for k = 1 to depth do
        for c = 0 to dat.dim - 1 do
          set (-k) y z c (sign_x *. get (mirror_low center_x k) y z c);
          set (dat.xsize - 1 + k) y z c
            (sign_x *. get (mirror_high center_x dat.xsize k) y z c)
        done
      done
    done
  done

let mirror ?(depth = 2) ?(sign_x = 1.0) ?(sign_y = 1.0) ?(sign_z = 1.0)
    ?(center_x = Cell) ?(center_y = Cell) ?(center_z = Cell) dat =
  apply_via
    ~get:(fun x y z c -> get dat ~x ~y ~z ~c)
    ~set:(fun x y z c v -> set dat ~x ~y ~z ~c v)
    ~dat ~depth ~sign_x ~sign_y ~sign_z ~center_x ~center_y ~center_z
    ~slab_lo:(-dat.halo) ~slab_hi:(dat.zsize + dat.halo)
