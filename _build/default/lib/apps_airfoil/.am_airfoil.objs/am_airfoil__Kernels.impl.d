lib/apps_airfoil/kernels.ml: Am_core Am_mesh Array Float
