(* Shared --check / --analyze plumbing for the proxy-application drivers:
   the flags themselves, and the end-of-run reporting / exit-code policy.

   Under --check a driver (a) forces the sanitizer backend, which keeps
   sequential semantics but stages every kernel argument through
   canary-padded, access-guarded buffers, (b) records the loop sequence,
   and (c) runs the static analysis layers (descriptor lints + cross-loop
   dataflow) over the recorded cycle once the run finishes.

   Under --analyze the backend is left alone; the driver additionally
   diffs every kernel's probed footprint (inferred once per loop signature
   before its first execution) against the declared descriptor — the
   Verify layer — and feeds the observed read radii into the halo-schedule
   replay.

   Static error-severity findings and dynamic sanitizer violations go
   through one exit path: both print their evidence and fail the run with
   exit code 1. *)

let arg =
  let open Cmdliner in
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Correctness-checking mode: execute on the sanitizer backend \
           (canary-padded, access-guarded staging buffers; overrides \
           $(b,--backend)), record the loop sequence, and run the access \
           descriptor and dataflow analyses over it after the run. Exits 1 \
           on any error-severity finding.")

let analyze_arg =
  let open Cmdliner in
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Static kernel verification: probe each kernel over sentinel \
           staging buffers once per loop signature, diff the observed \
           footprint against the declared access descriptor (undeclared \
           accesses are errors, declared-but-unobserved ones warnings), \
           and run the standard static layers over the recorded loop \
           sequence. Composes with $(b,--check). Exits 1 on any \
           error-severity finding.")

(* The single exit path for both failure families (static errors found
   after the run, dynamic violations raised during it): evidence first,
   then a uniform one-line verdict and exit 1. *)
let fail_run reason =
  prerr_endline (Printf.sprintf "check: %s; failing the run" reason);
  exit 1

let report r =
  print_newline ();
  print_string (Am_analysis.Analysis.report r);
  if Am_analysis.Analysis.errors r > 0 then fail_run "error-severity findings"

(* Wrap a driver body so a sanitizer violation (either facade family) is
   reported like a static error instead of escaping as an uncaught
   exception with a different exit code. *)
let guard f =
  try f () with
  | Am_op2.Exec_check.Violation msg | Am_ops.Exec_check.Violation msg ->
    prerr_endline msg;
    fail_run "dynamic access violation"
