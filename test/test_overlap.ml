(* Differential and schedule-exploration tests for the non-blocking
   core/boundary runtime.

   Three layers of evidence that overlapping halo exchanges with interior
   compute changes nothing observable:

   - randomized differential runs: seeded random meshes and loop chains
     executed on the distributed OP2 backend with overlap on and off must
     agree bitwise, and must agree with the sequential reference up to
     reduction reordering; likewise the Airfoil and CloverLeaf proxies;
   - schedule exploration (the "dpor" group, also under `dune build
     @dpor`): the bounded DPOR explorer drives halo exchanges — and a
     small overlapped OP2 program — through every Mazurkiewicz-
     inequivalent delivery schedule, cross-checked against brute-force
     enumeration where that is small enough, and demands one bitwise
     outcome; a receive that can never complete must fail fast instead of
     hanging;
   - halo-freshness invariants: eager and on-demand exchange policies,
     blocking and overlapped, are bitwise interchangeable on chains that
     interleave indirect reads, Inc accumulations and direct writes.

   Every randomized case derives its PRNG stream from one base seed;
   failures print the seed (rerun with AM_SEED=<n>).  Failing delivery
   schedules print a replay token (rerun with AM_SCHED=<token>). *)

module Op2 = Am_op2.Op2
module Ops = Am_ops.Ops
module Access = Am_core.Access
module Profile = Am_core.Profile
module Umesh = Am_mesh.Umesh
module Prng = Am_util.Prng
module Fa = Am_util.Fa
module Comm = Am_simmpi.Comm
module Halo = Am_simmpi.Halo
module Schedcheck = Am_schedcheck.Schedcheck
module Airfoil = Am_airfoil.App
module Clover = Am_cloverleaf.App

let base_seed = Qcheck_util.base_seed
let failf_seed seed fmt = Qcheck_util.failf_seed seed fmt

(* ---- Result fingerprints ---- *)

type fingerprint = {
  dats : (string * float array) list;
  gbls : (string * float) list;
}

(* [tol = 0.0] demands bitwise agreement (same partition, overlap on/off);
   a small tolerance absorbs reduction reordering across partitions. *)
let check_fingerprint ~seed ~tol ~what reference fp =
  List.iter2
    (fun (n, a) (n', b) ->
      if n <> n' then failf_seed seed "%s: dat list shape differs" what;
      if not (Fa.approx_equal ~tol a b) then
        failf_seed seed "%s: dat %s diverges (%g)" what n (Fa.rel_discrepancy a b))
    reference.dats fp.dats;
  List.iter2
    (fun (n, a) (_, b) ->
      if Float.abs (a -. b) /. (1.0 +. Float.abs a) > tol then
        failf_seed seed "%s: reduction %s diverges (%.17g vs %.17g)" what n a b)
    reference.gbls fp.gbls

(* ---- Random OP2 programs ---- *)

(* A loop chain drawn from a palette covering every communication shape the
   distributed runtime distinguishes: indirect reads (halo exchange),
   indirect Inc (halo zero + reduce), direct writes (dirtying), global
   reductions (splittable Min/Max and order-sensitive Inc). *)
type step =
  | Flux of float (* edges: Read u x2, Inc du x2 *)
  | Edge_gather of float (* edges: Read u x2, direct Write ew *)
  | Edge_scatter of float (* edges: direct Read ew, Inc u x2 *)
  | Cell_update of float (* cells: Rw u, Rw du, gbl Inc *)
  | Cell_scale of float (* cells: Rw u *)
  | Minmax (* cells: Read u, gbl Min, gbl Max *)

type program = {
  nx : int;
  ny : int;
  scramble : int option;
  dim : int;
  steps : step list;
  reps : int;
}

let random_step rng =
  let c = Prng.float_range rng (-1.0) 1.0 in
  match Prng.int rng 6 with
  | 0 -> Flux c
  | 1 -> Edge_gather c
  | 2 -> Edge_scatter c
  | 3 -> Cell_update c
  | 4 -> Cell_scale c
  | _ -> Minmax

let random_program rng =
  let nx = 6 + Prng.int rng 7 and ny = 6 + Prng.int rng 7 in
  let scramble = if Prng.bool rng then Some (Prng.int rng 1000) else None in
  let dim = 1 + Prng.int rng 3 in
  let n_steps = 3 + Prng.int rng 4 in
  {
    nx;
    ny;
    scramble;
    dim;
    steps = List.init n_steps (fun _ -> random_step rng);
    reps = 2;
  }

type built = {
  ctx : Op2.ctx;
  cells : Op2.set;
  edges : Op2.set;
  e2c : Op2.map_t;
  coords : Op2.dat;
  u : Op2.dat;
  du : Op2.dat;
  ew : Op2.dat;
}

let build p =
  let mesh = Umesh.generate_square ~nx:p.nx ~ny:p.ny () in
  let mesh =
    match p.scramble with
    | Some s -> Umesh.scramble ~seed:s mesh
    | None -> mesh
  in
  let ctx = Op2.create () in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
  let e2c =
    Op2.decl_map ctx ~name:"e2c" ~from_set:edges ~to_set:cells ~arity:2
      ~values:mesh.Umesh.edge_cells
  in
  let coords =
    Op2.decl_dat ctx ~name:"xc" ~set:cells ~dim:2 ~data:(Umesh.cell_centroids mesh)
  in
  let u =
    Op2.decl_dat ctx ~name:"u" ~set:cells ~dim:p.dim
      ~data:
        (Array.init (mesh.Umesh.n_cells * p.dim) (fun i ->
             sin (0.37 *. Float.of_int i)))
  in
  let du = Op2.decl_dat_zero ctx ~name:"du" ~set:cells ~dim:p.dim in
  let ew =
    Op2.decl_dat ctx ~name:"ew" ~set:edges ~dim:1
      ~data:(Array.init mesh.Umesh.n_edges (fun i -> cos (0.23 *. Float.of_int i)))
  in
  { ctx; cells; edges; e2c; coords; u; du; ew }

let run_program p configure =
  let b = build p in
  configure b;
  let gbls = ref [] in
  let record name v = gbls := (name, v) :: !gbls in
  for _rep = 1 to p.reps do
    List.iteri
      (fun i step ->
        let name k = Printf.sprintf "%s%d" k i in
        match step with
        | Flux c ->
          Op2.par_loop b.ctx ~name:(name "flux") b.edges
            [
              Op2.arg_dat_indirect b.u b.e2c 0 Access.Read;
              Op2.arg_dat_indirect b.u b.e2c 1 Access.Read;
              Op2.arg_dat_indirect b.du b.e2c 0 Access.Inc;
              Op2.arg_dat_indirect b.du b.e2c 1 Access.Inc;
            ]
            (fun a ->
              for d = 0 to p.dim - 1 do
                let f = c *. (a.(1).(d) -. a.(0).(d)) in
                a.(2).(d) <- a.(2).(d) +. f;
                a.(3).(d) <- a.(3).(d) -. f
              done)
        | Edge_gather c ->
          Op2.par_loop b.ctx ~name:(name "gather") b.edges
            [
              Op2.arg_dat_indirect b.u b.e2c 0 Access.Read;
              Op2.arg_dat_indirect b.u b.e2c 1 Access.Read;
              Op2.arg_dat b.ew Access.Write;
            ]
            (fun a ->
              let s = ref 0.0 in
              for d = 0 to p.dim - 1 do
                s := !s +. a.(0).(d) +. a.(1).(d)
              done;
              a.(2).(0) <- c *. !s)
        | Edge_scatter c ->
          Op2.par_loop b.ctx ~name:(name "scatter") b.edges
            [
              Op2.arg_dat b.ew Access.Read;
              Op2.arg_dat_indirect b.u b.e2c 0 Access.Inc;
              Op2.arg_dat_indirect b.u b.e2c 1 Access.Inc;
            ]
            (fun a ->
              for d = 0 to p.dim - 1 do
                a.(1).(d) <- a.(1).(d) +. (c *. a.(0).(0));
                a.(2).(d) <- a.(2).(d) -. (c *. a.(0).(0))
              done)
        | Cell_update c ->
          let tot = [| 0.0 |] in
          Op2.par_loop b.ctx ~name:(name "update") b.cells
            [
              Op2.arg_dat b.u Access.Rw;
              Op2.arg_dat b.du Access.Rw;
              Op2.arg_gbl ~name:"tot" tot Access.Inc;
            ]
            (fun a ->
              for d = 0 to p.dim - 1 do
                a.(0).(d) <- a.(0).(d) +. (c *. a.(1).(d));
                a.(2).(0) <- a.(2).(0) +. (a.(1).(d) *. a.(1).(d));
                a.(1).(d) <- 0.0
              done);
          record (name "tot") tot.(0)
        | Cell_scale c ->
          Op2.par_loop b.ctx ~name:(name "scale") b.cells
            [ Op2.arg_dat b.u Access.Rw ]
            (fun a ->
              for d = 0 to p.dim - 1 do
                a.(0).(d) <- (a.(0).(d) *. (1.0 +. (0.01 *. c))) +. (0.001 *. c)
              done)
        | Minmax ->
          let mn = [| Float.infinity |] and mx = [| Float.neg_infinity |] in
          Op2.par_loop b.ctx ~name:(name "minmax") b.cells
            [
              Op2.arg_dat b.u Access.Read;
              Op2.arg_gbl ~name:"mn" mn Access.Min;
              Op2.arg_gbl ~name:"mx" mx Access.Max;
            ]
            (fun a ->
              for d = 0 to p.dim - 1 do
                a.(1).(0) <- Float.min a.(1).(0) a.(0).(d);
                a.(2).(0) <- Float.max a.(2).(0) a.(0).(d)
              done);
          record (name "mn") mn.(0);
          record (name "mx") mx.(0))
      p.steps
  done;
  {
    dats =
      [
        ("u", Op2.fetch b.ctx b.u);
        ("du", Op2.fetch b.ctx b.du);
        ("ew", Op2.fetch b.ctx b.ew);
      ];
    gbls = List.rev !gbls;
  }

let strategies =
  [
    ("kway", fun b -> Op2.Kway_through b.e2c);
    ("rcb", fun b -> Op2.Rcb_on b.coords);
    ("block", fun b -> Op2.Block_on b.cells);
  ]

let rank_counts = Sched_util.rank_counts

let test_op2_random_differential () =
  for case = 0 to 3 do
    let seed = base_seed + case in
    let p = random_program (Prng.create seed) in
    let reference = run_program p (fun _ -> ()) in
    List.iter
      (fun n_ranks ->
        List.iter
          (fun (sname, strat_of) ->
            let part mode b =
              Op2.partition b.ctx ~n_ranks ~strategy:(strat_of b);
              Op2.set_comm_mode b.ctx mode
            in
            let blocking = run_program p (part Op2.Blocking) in
            let overlap = run_program p (part Op2.Overlap) in
            let what mode =
              Printf.sprintf "case %d %s(%d) %s" case sname n_ranks mode
            in
            check_fingerprint ~seed ~tol:1e-10 ~what:(what "blocking vs seq")
              reference blocking;
            check_fingerprint ~seed ~tol:0.0 ~what:(what "overlap vs blocking")
              blocking overlap)
          strategies)
      rank_counts
  done

(* ---- Airfoil proxy ---- *)

let airfoil_mesh = Sched_util.airfoil_mesh

let run_airfoil configure =
  let t = Airfoil.create (Lazy.force airfoil_mesh) in
  configure t;
  let rms = Airfoil.run t ~iters:5 in
  (Airfoil.solution t, rms)

let airfoil_strategies =
  [
    ("kway", fun t -> Op2.Kway_through t.Airfoil.edge_cells);
    ("rcb", fun t -> Op2.Rcb_on t.Airfoil.x);
    ("block", fun t -> Op2.Block_on t.Airfoil.cells);
  ]

let test_airfoil_overlap_differential () =
  let ref_q, ref_rms = run_airfoil (fun _ -> ()) in
  List.iter
    (fun n_ranks ->
      List.iter
        (fun (sname, strat_of) ->
          let part mode t =
            Op2.partition t.Airfoil.ctx ~n_ranks ~strategy:(strat_of t);
            Op2.set_comm_mode t.Airfoil.ctx mode
          in
          let bq, brms = run_airfoil (part Op2.Blocking) in
          let oq, orms = run_airfoil (part Op2.Overlap) in
          let what = Printf.sprintf "airfoil %s(%d)" sname n_ranks in
          if not (Fa.approx_equal ~tol:1e-10 ref_q bq) then
            Alcotest.failf "%s: blocking diverges from seq (%g)" what
              (Fa.rel_discrepancy ref_q bq);
          if Float.abs (brms -. ref_rms) /. (1.0 +. ref_rms) > 1e-10 then
            Alcotest.failf "%s: rms diverges from seq" what;
          if not (Fa.approx_equal ~tol:0.0 bq oq) then
            Alcotest.failf "%s: overlap not bitwise equal to blocking (%g)" what
              (Fa.rel_discrepancy bq oq);
          if brms <> orms then
            Alcotest.failf "%s: overlap rms %.17g <> blocking rms %.17g" what orms
              brms)
        airfoil_strategies)
    [ 2; 3; 7 ]

(* ---- CloverLeaf proxy ---- *)

let run_clover configure =
  let t = Clover.create ~nx:12 ~ny:12 () in
  configure t.Clover.ctx;
  let s = Clover.run t ~steps:4 in
  (Clover.density t, Clover.energy t, s)

let clover_partitions ny =
  [
    ("rows(2)", fun ctx -> Ops.partition ctx ~n_ranks:2 ~ref_ysize:ny);
    ("rows(3)", fun ctx -> Ops.partition ctx ~n_ranks:3 ~ref_ysize:ny);
    ("rows(5)", fun ctx -> Ops.partition ctx ~n_ranks:5 ~ref_ysize:ny);
    ( "grid(2x2)",
      fun ctx -> Ops.partition_grid ctx ~px:2 ~py:2 ~ref_xsize:12 ~ref_ysize:ny );
    ( "grid(3x2)",
      fun ctx -> Ops.partition_grid ctx ~px:3 ~py:2 ~ref_xsize:12 ~ref_ysize:ny );
  ]

let test_cloverleaf_overlap_differential () =
  let ref_d, ref_e, ref_s = run_clover (fun _ -> ()) in
  List.iter
    (fun (pname, part) ->
      let conf mode ctx =
        part ctx;
        Ops.set_comm_mode ctx mode
      in
      let bd, be, bs = run_clover (conf Ops.Blocking) in
      let od, oe, os = run_clover (conf Ops.Overlap) in
      let what = Printf.sprintf "cloverleaf %s" pname in
      if not (Fa.approx_equal ~tol:1e-10 ref_d bd) then
        Alcotest.failf "%s: density diverges from seq (%g)" what
          (Fa.rel_discrepancy ref_d bd);
      if not (Fa.approx_equal ~tol:1e-10 ref_e be) then
        Alcotest.failf "%s: energy diverges from seq (%g)" what
          (Fa.rel_discrepancy ref_e be);
      if
        Float.abs (bs.Clover.ke -. ref_s.Clover.ke) /. (1.0 +. ref_s.Clover.ke)
        > 1e-10
        || Float.abs (bs.Clover.mass -. ref_s.Clover.mass) /. ref_s.Clover.mass
           > 1e-10
      then Alcotest.failf "%s: summary diverges from seq" what;
      if not (Fa.approx_equal ~tol:0.0 bd od && Fa.approx_equal ~tol:0.0 be oe)
      then Alcotest.failf "%s: overlap not bitwise equal to blocking" what;
      if bs.Clover.ke <> os.Clover.ke || bs.Clover.ie <> os.Clover.ie then
        Alcotest.failf "%s: overlap summary differs from blocking" what)
    (clover_partitions 12)

(* ---- Schedule exploration (bounded DPOR) ---- *)

(* These used to be a hand-rolled exhaustive permutation sweep (720 orders
   at 3 ranks, silently out of reach beyond that) and a 64-trial random
   interleaving soak.  The DPOR explorer replaces both: it visits every
   Mazurkiewicz-inequivalent delivery schedule — cross-checked against
   brute-force enumeration where that is still enumerable — and each
   outcome class carries a replay token for AM_SCHED. *)

let perms = Sched_util.perms

(* One halo-ring exchange per rank count: DPOR must cover exactly the
   classes brute force finds, in strictly fewer executions. *)
let test_dpor_ring_vs_brute () =
  List.iter
    (fun n ->
      let what = Printf.sprintf "ring(%d)" n in
      let prog () = Sched_util.ring_exchange ~n 10.0 in
      let expected = prog () in
      let brute, classes = Schedcheck.brute_force ~max_executions:2000 prog in
      if brute.Schedcheck.rp_truncated then
        Alcotest.failf "%s: brute force truncated" what;
      let v, r = Sched_util.assert_uniform ~bound:6 ~what prog in
      if not (Fa.approx_equal ~tol:0.0 expected v) then
        Alcotest.failf "%s: explored schedules changed the result" what;
      if Sched_util.am_sched = None then begin
        Alcotest.(check int)
          (what ^ ": covers every inequivalent schedule")
          classes
          (Schedcheck.mazurkiewicz_classes ~dependent:Schedcheck.same_dst
             r.Schedcheck.rp_traces);
        if r.Schedcheck.rp_executions >= brute.Schedcheck.rp_executions then
          Alcotest.failf "%s: DPOR ran %d schedules, brute force only %d" what
            r.Schedcheck.rp_executions brute.Schedcheck.rp_executions
      end)
    [ 2; 3 ]

(* At 4 ranks the old sweep silently capped: 8 messages mean 8! = 40320
   interleavings.  Brute force is now skipped out loud, and DPOR covers
   the quotient — two conflicting messages per destination, 2^4 classes. *)
let test_dpor_ring4 () =
  print_endline
    "ring(4): brute-force cross-check skipped (8! = 40320 interleavings); \
     DPOR covers the 16-class quotient instead";
  let prog () = Sched_util.ring_exchange ~n:4 10.0 in
  let expected = prog () in
  let v, r =
    Sched_util.assert_uniform ~bound:8 ~max_executions:4000 ~what:"ring(4)" prog
  in
  if not (Fa.approx_equal ~tol:0.0 expected v) then
    Alcotest.fail "ring(4): explored schedules changed the result";
  if Sched_util.am_sched = None then
    Alcotest.(check int) "ring(4): 16 inequivalent schedules covered" 16
      (Schedcheck.mazurkiewicz_classes ~dependent:Schedcheck.same_dst
         r.Schedcheck.rp_traces)

(* Two exchanges in flight on the same plan (two dats mid-loop): every
   inequivalent interleaving within the delay bound must keep each token's
   payloads separate, because per-channel FIFO pairs messages with
   receives in posted order. *)
let test_dpor_two_exchanges () =
  let n = 3 in
  let prog () =
    let comm = Comm.create ~n_ranks:n in
    let plan = Sched_util.ring_plan ~n in
    let u = Sched_util.ring_data ~n 10.0 in
    let v = Sched_util.ring_data ~n 100.0 in
    let tok_u = Halo.exchange_start comm plan ~dim:1 u in
    let tok_v = Halo.exchange_start comm plan ~dim:1 v in
    Halo.exchange_finish comm plan tok_u u;
    Halo.exchange_finish comm plan tok_v v;
    if not (Comm.all_drained comm) then failwith "messages left behind";
    Array.concat (Array.to_list u @ Array.to_list v)
  in
  let expected = prog () in
  let v, r =
    Sched_util.assert_uniform ~bound:2 ~max_executions:4000
      ~what:"two exchanges" prog
  in
  if not (Fa.approx_equal ~tol:0.0 expected v) then
    Alcotest.fail "two exchanges: explored schedules changed the result";
  if Sched_util.am_sched = None then begin
    Alcotest.(check bool) "explored beyond the default schedule" true
      (r.Schedcheck.rp_executions > 1);
    (* every witness token replays to the same bits *)
    List.iter
      (fun (c : _ Schedcheck.cls) ->
        let replayed = Schedcheck.replay ~token:c.Schedcheck.cls_token prog in
        if not (Fa.approx_equal ~tol:0.0 expected replayed) then
          Alcotest.failf "token %s did not replay bitwise" c.Schedcheck.cls_token)
      r.Schedcheck.rp_classes
  end

(* A small overlapped OP2 program under DPOR: delivery order of the real
   runtime's halo and reduction messages must never leak into results. *)
let test_dpor_op2_overlap () =
  let p =
    {
      nx = 6;
      ny = 6;
      scramble = None;
      dim = 1;
      steps = [ Flux 0.5; Cell_update 0.3; Minmax ];
      reps = 1;
    }
  in
  List.iter
    (fun n_ranks ->
      let what = Printf.sprintf "op2 overlap(%d)" n_ranks in
      let prog () =
        run_program p (fun b ->
            Op2.partition b.ctx ~n_ranks ~strategy:(Op2.Kway_through b.e2c);
            Op2.set_comm_mode b.ctx Op2.Overlap)
      in
      let baseline = prog () in
      let v, r =
        Sched_util.assert_uniform ~bound:2 ~max_executions:3000 ~what prog
      in
      check_fingerprint ~seed:base_seed ~tol:0.0 ~what baseline v;
      (* At 2 ranks every message pair targets distinct destinations, so a
         single schedule legitimately covers the quotient; at 3 ranks some
         rank receives from two peers and real alternatives must exist. *)
      if Sched_util.am_sched = None && n_ranks >= 3 then
        Alcotest.(check bool) (what ^ ": explored beyond the default") true
          (r.Schedcheck.rp_executions > 1))
    [ 2; 3 ]

(* Waiting requests in any cross-channel order assigns each its own
   channel's payload; waitall is just as deterministic. *)
let test_wait_order_across_channels () =
  let payload i = [| Float.of_int i; Float.of_int (i * i) |] in
  List.iter
    (fun order ->
      let comm = Comm.create ~n_ranks:4 in
      for src = 1 to 3 do
        ignore (Comm.isend comm ~src ~dst:0 (payload src))
      done;
      let reqs = Array.init 3 (fun i -> Comm.irecv comm ~src:(i + 1) ~dst:0) in
      List.iter
        (fun i ->
          let got = Comm.wait comm reqs.(i) in
          if not (Fa.approx_equal ~tol:0.0 (payload (i + 1)) got) then
            Alcotest.failf "wait order mixed up channels")
        order;
      if not (Comm.all_drained comm) then Alcotest.fail "messages left behind")
    (perms [ 0; 1; 2 ]);
  (* waitall over sends and receives together, then inspect payloads *)
  let comm = Comm.create ~n_ranks:4 in
  let sends =
    List.map (fun src -> Comm.isend comm ~src ~dst:0 (payload src)) [ 1; 2; 3 ]
  in
  let recvs = List.map (fun src -> Comm.irecv comm ~src ~dst:0) [ 1; 2; 3 ] in
  Comm.waitall comm (sends @ recvs);
  List.iteri
    (fun i r ->
      match Comm.request_payload r with
      | Some got ->
        if not (Fa.approx_equal ~tol:0.0 (payload (i + 1)) got) then
          Alcotest.fail "waitall mixed up channels"
      | None -> Alcotest.fail "waitall left a receive incomplete")
    recvs

(* A receive that can never complete must raise the simulated-deadlock
   [Failure] immediately — even when unrelated traffic is in flight. *)
let test_wait_deadlock_fails_fast () =
  let comm = Comm.create ~n_ranks:2 in
  let r = Comm.irecv comm ~src:1 ~dst:0 in
  (match Comm.wait comm r with
  | exception Failure msg ->
    Alcotest.(check bool) "mentions deadlock" true (Str_contains.contains msg "deadlock")
  | _ -> Alcotest.fail "expected Failure");
  let comm = Comm.create ~n_ranks:3 in
  ignore (Comm.isend comm ~src:2 ~dst:0 [| 1.0 |]);
  let r = Comm.irecv comm ~src:1 ~dst:0 in
  (match Comm.wait comm r with
  | exception Failure msg ->
    Alcotest.(check bool) "mentions deadlock" true (Str_contains.contains msg "deadlock")
  | _ -> Alcotest.fail "expected Failure");
  Comm.deliver_channel comm ~src:2 ~dst:0

(* A halo plan whose import lists don't match the peer's export lists is
   rejected at construction: deadlocking plans are unrepresentable. *)
let test_deadlocking_plan_unrepresentable () =
  let n = 2 in
  let exports = Array.init n (fun _ -> Array.make n [||]) in
  let imports = Array.init n (fun _ -> Array.make n [||]) in
  imports.(0).(1) <- [| 1 |];
  match Halo.create ~n_ranks:n ~exports ~imports with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- Halo-freshness invariants ---- *)

(* Eager and on-demand policies, blocking and overlapped, must be bitwise
   interchangeable on chains interleaving indirect reads, Inc accumulations
   and direct writes — the four combinations exercise every dirty-bit
   transition. *)
let freshness_chain rng =
  let c () = Prng.float_range rng (-1.0) 1.0 in
  {
    nx = 8 + Prng.int rng 4;
    ny = 8 + Prng.int rng 4;
    scramble = None;
    dim = 1 + Prng.int rng 2;
    steps =
      [
        Flux (c ());
        Cell_update (c ());
        Cell_scale (c ());
        Edge_gather (c ());
        Flux (c ());
        Edge_scatter (c ());
        Minmax;
      ];
    reps = 2;
  }

let test_op2_halo_freshness () =
  for case = 0 to 2 do
    let seed = base_seed + 100 + case in
    let p = freshness_chain (Prng.create seed) in
    let variants = Sched_util.op2_variants in
    let fps =
      List.map
        (fun (label, policy, mode) ->
          ( label,
            run_program p (fun b ->
                Op2.partition b.ctx ~n_ranks:3 ~strategy:(Op2.Kway_through b.e2c);
                Op2.set_halo_policy b.ctx policy;
                Op2.set_comm_mode b.ctx mode) ))
        variants
    in
    match fps with
    | (_, reference) :: rest ->
      List.iter
        (fun (label, fp) ->
          check_fingerprint ~seed ~tol:0.0
            ~what:(Printf.sprintf "case %d %s" case label)
            reference fp)
        rest
    | [] -> ()
  done

let ops_tri_stencil : Ops.stencil = [| (0, 0); (1, 0); (0, 1) |]

let run_ops_chain configure =
  let nx = 14 and ny = 10 in
  let ctx = Ops.create () in
  let grid = Ops.decl_block ctx ~name:"grid" in
  let u = Ops.decl_dat ctx ~name:"u" ~block:grid ~xsize:nx ~ysize:ny ~halo:2 () in
  let w = Ops.decl_dat ctx ~name:"w" ~block:grid ~xsize:nx ~ysize:ny ~halo:2 () in
  Ops.init ctx u (fun x y _ -> sin (0.3 *. Float.of_int x) +. cos (0.2 *. Float.of_int y));
  Ops.init ctx w (fun _ _ _ -> 0.0);
  configure ctx;
  let interior = Ops.interior u in
  let total = ref 0.0 in
  for _ = 1 to 3 do
    Ops.par_loop ctx ~name:"stencil" grid interior
      [
        Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
        Ops.arg_dat w Ops.stencil_point Access.Write;
      ]
      (fun a ->
        a.(1).(0) <-
          a.(0).(0)
          +. (0.1 *. (a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4) -. (4.0 *. a.(0).(0)))));
    (* direct write dirties u's ghost rows *)
    Ops.par_loop ctx ~name:"dirty" grid interior
      [ Ops.arg_dat u Ops.stencil_point Access.Rw ]
      (fun a -> a.(0).(0) <- (0.7 *. a.(0).(0)) +. 0.3);
    let res = [| 0.0 |] in
    Ops.par_loop ctx ~name:"relax" grid interior
      [
        Ops.arg_dat u ops_tri_stencil Access.Read;
        Ops.arg_dat w Ops.stencil_point Access.Rw;
        Ops.arg_gbl ~name:"res" res Access.Inc;
      ]
      (fun a ->
        a.(1).(0) <- a.(1).(0) +. (0.2 *. (a.(0).(1) +. a.(0).(2) -. (2.0 *. a.(0).(0))));
        res.(0) <- res.(0) +. (a.(1).(0) *. a.(1).(0)));
    total := !total +. res.(0)
  done;
  (Ops.fetch_interior ctx u, Ops.fetch_interior ctx w, !total)

let test_ops_halo_freshness () =
  let ref_u, ref_w, ref_t = run_ops_chain (fun _ -> ()) in
  List.iter
    (fun (pname, part) ->
      let variants = Sched_util.ops_variants in
      let run (policy, mode) =
        run_ops_chain (fun ctx ->
            part ctx;
            Ops.set_halo_policy ctx policy;
            Ops.set_comm_mode ctx mode)
      in
      match List.map (fun (l, p, m) -> (l, run (p, m))) variants with
      | (_, ((bu, bw, bt) as _reference)) :: rest ->
        if not (Fa.approx_equal ~tol:1e-10 ref_u bu && Fa.approx_equal ~tol:1e-10 ref_w bw)
        then Alcotest.failf "%s: fields diverge from seq" pname;
        if Float.abs (bt -. ref_t) /. (1.0 +. ref_t) > 1e-10 then
          Alcotest.failf "%s: reduction diverges from seq" pname;
        List.iter
          (fun (label, (u, w, t)) ->
            if
              not
                (Fa.approx_equal ~tol:0.0 bu u
                && Fa.approx_equal ~tol:0.0 bw w
                && bt = t)
            then Alcotest.failf "%s %s: not bitwise equal to baseline" pname label)
          rest
      | [] -> ())
    [
      ("rows(3)", fun ctx -> Ops.partition ctx ~n_ranks:3 ~ref_ysize:10);
      ( "grid(2x2)",
        fun ctx -> Ops.partition_grid ctx ~px:2 ~py:2 ~ref_xsize:14 ~ref_ysize:10 );
    ]

(* ---- Profile accounting ---- *)

let test_profile_reports_overlap () =
  let mesh = Umesh.generate_airfoil ~nx:64 ~ny:48 () in
  let run mode =
    let t = Airfoil.create mesh in
    Op2.partition t.Airfoil.ctx ~n_ranks:4
      ~strategy:(Op2.Kway_through t.Airfoil.edge_cells);
    Op2.set_comm_mode t.Airfoil.ctx mode;
    ignore (Airfoil.run t ~iters:5);
    Op2.profile t.Airfoil.ctx
  in
  let blocking = run Op2.Blocking in
  Alcotest.(check bool) "blocking records halo time" true
    (Profile.total_halo_seconds blocking > 0.0);
  Alcotest.(check (float 0.0)) "blocking hides nothing" 0.0
    (Profile.total_overlap_seconds blocking);
  let overlap = run Op2.Overlap in
  Alcotest.(check bool) "overlap hides some halo time" true
    (Profile.total_overlap_seconds overlap > 0.0);
  Alcotest.(check bool) "report renders the overlapped column" true
    (Str_contains.contains (Profile.report overlap) "overlapped")

let () =
  Alcotest.run "overlap"
    [
      ( "differential",
        [
          Alcotest.test_case "random OP2 chains: overlap == blocking == seq" `Quick
            test_op2_random_differential;
          Alcotest.test_case "airfoil: 3 partitioners x 3 rank counts" `Quick
            test_airfoil_overlap_differential;
          Alcotest.test_case "cloverleaf: rows + grid decompositions" `Quick
            test_cloverleaf_overlap_differential;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "ring exchange vs brute force, ranks 2-3" `Quick
            test_dpor_ring_vs_brute;
          Alcotest.test_case "ring(4): quotient coverage, brute skipped" `Quick
            test_dpor_ring4;
          Alcotest.test_case "two exchanges, replayable witnesses" `Quick
            test_dpor_two_exchanges;
          Alcotest.test_case "overlapped OP2 program, ranks 2-3" `Quick
            test_dpor_op2_overlap;
        ] );
      ( "schedule exploration",
        [
          Alcotest.test_case "wait order across channels" `Quick
            test_wait_order_across_channels;
          Alcotest.test_case "deadlock fails fast" `Quick test_wait_deadlock_fails_fast;
          Alcotest.test_case "deadlocking plans unrepresentable" `Quick
            test_deadlocking_plan_unrepresentable;
        ] );
      ( "halo freshness",
        [
          Alcotest.test_case "OP2: policy x mode bitwise equal" `Quick
            test_op2_halo_freshness;
          Alcotest.test_case "OPS: policy x mode bitwise equal" `Quick
            test_ops_halo_freshness;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "overlapped halo seconds recorded" `Quick
            test_profile_reports_overlap;
        ] );
    ]
