(** Checkpoint planning from access-execute descriptions (paper Section VI,
    Fig 8).

    Given the sequence of loop descriptors an application executes, decides
    per dataset whether a checkpoint at a given trigger must save it, may
    drop it (overwritten before read), may defer the save to the loop that
    first touches it, or never needs it (never modified). Detects periodic
    loop sequences so a requested checkpoint can wait for the cheapest
    trigger within one period. *)

module Access = Am_core.Access
module Descr = Am_core.Descr

type dataset = { ds_name : string; ds_dim : int }

type decision =
  | Save_now
  | Save_at of int  (** deferred to the loop at this index *)
  | Drop
  | Not_saved  (** never modified: reproducible from the input *)

val decision_to_string : decision -> string

type plan = {
  trigger : int;
  decisions : (dataset * decision) list;
  units : int;  (** total dims saved — Fig 8's "units of data" column *)
  globals : (string * int list) list;  (** global -> loops writing it *)
}

(** Mesh datasets of a trace, in first-appearance order. *)
val datasets : Descr.loop list -> dataset list

(** Whether any loop of the program writes the named dataset. *)
val ever_modified : Descr.loop list -> string -> bool

(** Plan a checkpoint entering before loop [trigger]. *)
val plan_at : Descr.loop list -> trigger:int -> plan

(** Smallest period of the loop-name sequence, given at least two periods of
    evidence; [None] if aperiodic. *)
val detect_period : Descr.loop list -> int option

(** Cheapest trigger over the whole recorded horizon. *)
val best_trigger : Descr.loop list -> int

(** Defer a request at [requested] to the cheapest trigger within one
    detected period (the paper's "speculative" algorithm); the request
    itself when no periodicity is evident. *)
val speculative_trigger : Descr.loop list -> requested:int -> int

(** Fig 8 as a rendered table: per-loop access modes per dataset and the
    units-if-triggered-here column. *)
val render_figure : Descr.loop list -> string
