lib/ops/multiblock.ml: List Printf Types
