test/test_tealeaf.mli:
