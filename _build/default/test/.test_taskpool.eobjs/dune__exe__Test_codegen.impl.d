test/test_codegen.ml: Alcotest Am_codegen Am_core Am_experiments Filename In_channel Lazy List Printf Str_contains Sys Unix
