(* Performance portability: one source, every backend.

   The paper's headline: a single high-level program runs unchanged on
   sequential, shared-memory, GPU and distributed targets, with the library
   supplying colouring plans, layout conversions, partitioning and halo
   exchanges.  This example runs one OP2 program (a Jacobi-style smoothing
   of node values by edge averaging) on every backend of this repository
   and verifies all of them produce the same answer.

   Run with:  dune exec examples/performance_portability.exe *)

module Op2 = Am_op2.Op2
module Access = Am_core.Access
module Umesh = Am_mesh.Umesh

let nx = 80
let ny = 60
let iters = 20

(* Build and run the program under one backend configuration. *)
let run configure =
  let mesh = Umesh.generate_square ~nx ~ny () in
  let ctx = Op2.create () in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
  let edge_cells =
    Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges ~to_set:cells ~arity:2
      ~values:mesh.Umesh.edge_cells
  in
  let init = Array.init mesh.Umesh.n_cells (fun c -> Float.of_int (c mod 17)) in
  let v = Op2.decl_dat ctx ~name:"v" ~set:cells ~dim:1 ~data:init in
  let acc = Op2.decl_dat_zero ctx ~name:"acc" ~set:cells ~dim:1 in
  let deg = Op2.decl_dat_zero ctx ~name:"deg" ~set:cells ~dim:1 in
  configure ctx edge_cells;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Op2.par_loop ctx ~name:"gather" edges
      [
        Op2.arg_dat_indirect v edge_cells 0 Access.Read;
        Op2.arg_dat_indirect v edge_cells 1 Access.Read;
        Op2.arg_dat_indirect acc edge_cells 0 Access.Inc;
        Op2.arg_dat_indirect acc edge_cells 1 Access.Inc;
        Op2.arg_dat_indirect deg edge_cells 0 Access.Inc;
        Op2.arg_dat_indirect deg edge_cells 1 Access.Inc;
      ]
      (fun a ->
        a.(2).(0) <- a.(2).(0) +. a.(1).(0);
        a.(3).(0) <- a.(3).(0) +. a.(0).(0);
        a.(4).(0) <- a.(4).(0) +. 1.0;
        a.(5).(0) <- a.(5).(0) +. 1.0);
    Op2.par_loop ctx ~name:"relax" cells
      [ Op2.arg_dat v Access.Rw; Op2.arg_dat acc Access.Rw; Op2.arg_dat deg Access.Rw ]
      (fun a ->
        let v = a.(0) and acc = a.(1) and deg = a.(2) in
        if deg.(0) > 0.0 then v.(0) <- (0.5 *. v.(0)) +. (0.5 *. (acc.(0) /. deg.(0)));
        acc.(0) <- 0.0;
        deg.(0) <- 0.0)
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  (Op2.fetch ctx v, seconds)

let () =
  let reference, _ = run (fun _ _ -> ()) in
  let pool = Am_taskpool.Pool.create () in
  let configs =
    [
      ("sequential", fun _ _ -> ());
      ( "vectorised structure (8 lanes)",
        fun ctx _ -> Op2.set_backend ctx (Op2.Vec { Am_op2.Exec_vec.width = 8 }) );
      ( "shared memory (domain pool)",
        fun ctx _ -> Op2.set_backend ctx (Op2.Shared { pool; block_size = 128 }) );
      ( "gpu-sim NOSOA",
        fun ctx _ ->
          Op2.set_backend ctx
            (Op2.Cuda_sim
               { Am_op2.Exec_cuda.block_size = 128;
                 strategy = Am_op2.Exec_cuda.Global_aos }) );
      ( "gpu-sim SOA (auto AoS->SoA)",
        fun ctx _ ->
          Op2.set_backend ctx
            (Op2.Cuda_sim
               { Am_op2.Exec_cuda.block_size = 128;
                 strategy = Am_op2.Exec_cuda.Global_soa }) );
      ( "gpu-sim staged shared-memory",
        fun ctx _ ->
          Op2.set_backend ctx
            (Op2.Cuda_sim
               { Am_op2.Exec_cuda.block_size = 128; strategy = Am_op2.Exec_cuda.Staged }) );
      ( "mpi-sim, 4 ranks (k-way)",
        fun ctx map -> Op2.partition ctx ~n_ranks:4 ~strategy:(Op2.Kway_through map) );
      ( "mpi-sim, 7 ranks (block)",
        fun ctx map ->
          Op2.partition ctx ~n_ranks:7 ~strategy:(Op2.Block_on map.Am_op2.Types.to_set)
      );
    ]
  in
  Printf.printf "%-32s %12s %s\n" "backend" "time" "matches sequential?";
  List.iter
    (fun (name, configure) ->
      let result, seconds = run configure in
      let ok = Am_util.Fa.approx_equal ~tol:1e-10 reference result in
      Printf.printf "%-32s %12s %s\n" name
        (Am_util.Units.seconds seconds)
        (if ok then "yes" else "NO");
      if not ok then exit 1)
    configs;
  Am_taskpool.Pool.shutdown pool;
  print_endline "\none source, every backend, identical results."
