lib/ops/ops1.mli: Am_checkpoint Am_core Am_simmpi Am_taskpool Boundary1 Dist1 Exec1 Types1
