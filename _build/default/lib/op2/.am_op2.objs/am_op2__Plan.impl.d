lib/op2/plan.ml: Am_core Am_mesh Array Exec_common Fun Hashtbl List Printf String Types
