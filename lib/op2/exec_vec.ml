(* Vectorised CPU backend.

   Executes the structure of OP2's generated vectorised code (Reguly et
   al., "Vectorizing unstructured mesh computations for manycore
   architectures", cited as [15] by the paper): elements are processed in
   packs of [width] lanes with three distinct phases per pack —

     1. packed gather: staging buffers of all lanes are filled first (the
        compiler-vectorisable strided/gather loads);
     2. compute: the user function runs on each lane (the `#pragma omp
        simd` body of the generated C; OCaml has no SIMD, so lanes run
        sequentially — the *structure* is what this backend reproduces and
        what the codegen target emits);
     3. packed scatter: all lanes write back.

   Because every lane's gather happens before any lane's scatter, two lanes
   of one pack must not touch the same indirect element.  Exactly as in the
   generated code, loops with indirect writes therefore iterate colour by
   colour, packing only same-colour elements (which share no target by
   construction of the plan's element colouring). *)

module Access = Am_core.Access
module Coloring = Am_mesh.Coloring

type config = { width : int }

let default_config = { width = 8 }

let run ?resolvers ?compiled config plan ~set_size ~args ~kernel =
  let width = max 1 config.width in
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Exec_common.compile ?resolvers args
  in
  (* Per-lane staging buffers (and per-lane global accumulators). *)
  let lanes = Array.init width (fun _ -> Exec_common.make_buffers compiled) in
  let run_pack elems lo hi =
    let n = hi - lo in
    (* 1. packed gather *)
    for lane = 0 to n - 1 do
      Exec_common.gather compiled lanes.(lane) elems.(lo + lane)
    done;
    (* 2. compute ("simd" body) *)
    for lane = 0 to n - 1 do
      kernel lanes.(lane)
    done;
    (* 3. packed scatter *)
    for lane = 0 to n - 1 do
      Exec_common.scatter compiled lanes.(lane) elems.(lo + lane)
    done
  in
  let run_packed elems =
    let n = Array.length elems in
    let full = n / width * width in
    let i = ref 0 in
    while !i < full do
      run_pack elems !i (!i + width);
      i := !i + width
    done;
    (* remainder pack *)
    if full < n then run_pack elems full n
  in
  (match plan.Plan.elem_coloring with
  | None -> run_packed (Array.init set_size Fun.id)
  | Some ec ->
    (* Colour-by-colour packing: same-colour elements share no indirect
       target, so packed gathers/scatters cannot conflict. *)
    let traced = Am_obs.Obs.tracing () in
    Array.iteri
      (fun colour elems ->
        if traced then
          Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Colour_round
            (Am_obs.Obs.colour_name colour);
        run_packed elems;
        if traced then Am_obs.Obs.end_span ())
      ec.Coloring.by_color);
  if Exec_common.has_globals compiled then
    Exec_common.merge_worker_globals compiled (Array.to_list lanes)
