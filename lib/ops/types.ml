(* Core value types of the multi-block structured-mesh active library (the
   paper's OPS).

   A [block] is a logical 2D index space with no size of its own; datasets
   ([dat]) live on a block, each with its *own* extents — this is how OPS
   accommodates cell-, face- and node-centred fields of different sizes on
   one block (e.g. CloverLeaf's staggered grid) as well as multigrid levels.

   Every dataset carries a ghost ring of [halo] cells on all sides, so
   stencils evaluated near a range boundary stay in bounds; boundary
   conditions are written by running loops over ranges that extend into the
   ghost ring.  Computation is expressed as parallel loops over rectangular
   ranges, with per-argument stencils and access descriptors. *)

module Access = Am_core.Access

type block = { block_id : int; block_name : string }

type dat = {
  dat_id : int;
  dat_name : string;
  dat_block : block;
  xsize : int; (* interior extent in x *)
  ysize : int;
  halo : int; (* ghost ring width on every side *)
  dim : int; (* components per point *)
  mutable data : float array; (* row-major over (xsize+2h) x (ysize+2h) *)
}

(* A stencil is a list of relative (dx, dy) offsets.  The point (0, 0) is
   the iteration point. *)
type stencil = (int * int) array

let stencil_point : stencil = [| (0, 0) |]

let stencil_extent (s : stencil) =
  Array.fold_left (fun acc (dx, dy) -> max acc (max (abs dx) (abs dy))) 0 s

let is_center_only (s : stencil) = s = stencil_point

(* Grid-transfer stride: the accessed point for iteration (x, y) and offset
   (dx, dy) is (floor(x*xn/xd) + dx, floor(y*yn/yd) + dy).  Unit stride is
   ordinary stencil access; (2,1) reads a finer grid from a coarse loop
   (restriction), (1,2) reads a coarser grid from a fine loop (prolongation)
   — the "multi-grid situations" OPS's per-dat sizes exist for. *)
type stride = { xn : int; xd : int; yn : int; yd : int }

let unit_stride = { xn = 1; xd = 1; yn = 1; yd = 1 }

let is_unit_stride s = s = unit_stride

(* Floor division (OCaml's / truncates towards zero). *)
let floordiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let apply_stride stride ~x ~y = (floordiv (x * stride.xn) stride.xd, floordiv (y * stride.yn) stride.yd)

type arg =
  | Arg_dat of { dat : dat; stencil : stencil; access : Access.t; stride : stride }
  | Arg_gbl of { name : string; buf : float array; access : Access.t }
  | Arg_idx (* kernel receives the (x, y) iteration indices as two floats *)

(* Rectangular, half-open iteration range. *)
type range = { xlo : int; xhi : int; ylo : int; yhi : int }

let range_size r = max 0 (r.xhi - r.xlo) * max 0 (r.yhi - r.ylo)

let range_to_string r = Printf.sprintf "[%d,%d)x[%d,%d)" r.xlo r.xhi r.ylo r.yhi

type env = {
  mutable blocks : block list;
  mutable dats : dat list;
  mutable next_id : int;
}

let make_env () = { blocks = []; dats = []; next_id = 0 }

let fresh_id env =
  let id = env.next_id in
  env.next_id <- id + 1;
  id

let decl_block env ~name =
  let b = { block_id = fresh_id env; block_name = name } in
  env.blocks <- b :: env.blocks;
  b

let default_halo = 2

let decl_dat env ~name ~block ~xsize ~ysize ?(halo = default_halo) ?(dim = 1) () =
  if xsize <= 0 || ysize <= 0 then invalid_arg "decl_dat: extents must be positive";
  if halo < 0 then invalid_arg "decl_dat: negative halo";
  if dim <= 0 then invalid_arg "decl_dat: dim must be positive";
  let total = (xsize + (2 * halo)) * (ysize + (2 * halo)) * dim in
  let d =
    {
      dat_id = fresh_id env;
      dat_name = name;
      dat_block = block;
      xsize;
      ysize;
      halo;
      dim;
      data = Array.make total 0.0;
    }
  in
  env.dats <- d :: env.dats;
  d

let blocks env = List.rev env.blocks
let dats env = List.rev env.dats

(* Row stride (values per logical row) of the padded array. *)
let stride dat = (dat.xsize + (2 * dat.halo)) * dat.dim

(* Flat index of component [c] at logical point (x, y); (0,0) is the first
   interior point, negatives reach into the ghost ring. *)
let index dat ~x ~y ~c =
  (((y + dat.halo) * (dat.xsize + (2 * dat.halo))) + (x + dat.halo)) * dat.dim + c

let get dat ~x ~y ~c = dat.data.(index dat ~x ~y ~c)
let set dat ~x ~y ~c v = dat.data.(index dat ~x ~y ~c) <- v

(* Bounds of addressable logical coordinates (ghost ring included). *)
let x_min dat = -dat.halo
let x_max dat = dat.xsize + dat.halo (* exclusive *)
let y_min dat = -dat.halo
let y_max dat = dat.ysize + dat.halo (* exclusive *)

let interior dat = { xlo = 0; xhi = dat.xsize; ylo = 0; yhi = dat.ysize }

(* Fill every value (ghost ring included). *)
let fill dat v = Array.fill dat.data 0 (Array.length dat.data) v

(* Copy of the interior values in row-major (x fastest) order, used by
   validation and I/O. *)
let fetch_interior dat =
  let out = Array.make (dat.xsize * dat.ysize * dat.dim) 0.0 in
  let k = ref 0 in
  for y = 0 to dat.ysize - 1 do
    for x = 0 to dat.xsize - 1 do
      for c = 0 to dat.dim - 1 do
        out.(!k) <- get dat ~x ~y ~c;
        incr k
      done
    done
  done;
  out

let arg_access = function
  | Arg_dat { access; _ } -> access
  | Arg_gbl { access; _ } -> access
  | Arg_idx -> Access.Read

(* Validate an argument list against an iteration range: stencils must stay
   inside the addressable (interior + ghost) area over the whole range, all
   datasets must share the block, and written arguments must use the
   center-only stencil (the OPS restriction that makes structured loops
   race-free by construction).  A dataset written in a loop must be accessed
   center-only by *every* argument of that loop: reading a neighbour that
   the same loop writes is a loop-carried dependence whose result would
   depend on traversal order. *)
let validate_args ~block ~range args =
  let written = Hashtbl.create 4 in
  List.iter
    (function
      | Arg_dat { dat; access; _ } when Access.writes access ->
        Hashtbl.replace written dat.dat_id ()
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args;
  List.iter
    (function
      | Arg_dat { dat; stencil; stride; _ }
        when Hashtbl.mem written dat.dat_id
             && not (is_center_only stencil && is_unit_stride stride) ->
        invalid_arg
          (Printf.sprintf
             "ops par_loop: dat %s is written in this loop but also read through an \
              offset or strided stencil (loop-carried dependence)"
             dat.dat_name)
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args;
  List.iteri
    (fun i arg ->
      let fail msg = invalid_arg (Printf.sprintf "ops par_loop arg %d: %s" i msg) in
      match arg with
      | Arg_idx -> ()
      | Arg_gbl { access; name; buf } ->
        if not (Access.valid_on_gbl access) then
          fail (Printf.sprintf "global %s: access %s not valid on globals" name
                  (Access.to_string access));
        if Array.length buf = 0 then fail (Printf.sprintf "global %s: empty buffer" name)
      | Arg_dat { dat; stencil; access; stride } ->
        if not (Access.valid_on_dat access) then
          fail (Printf.sprintf "dat %s: access %s not valid on datasets" dat.dat_name
                  (Access.to_string access));
        if dat.dat_block.block_id <> block.block_id then
          fail (Printf.sprintf "dat %s lives on block %s, loop runs on %s" dat.dat_name
                  dat.dat_block.block_name block.block_name);
        if Array.length stencil = 0 then
          fail (Printf.sprintf "dat %s: empty stencil" dat.dat_name);
        if (not (is_unit_stride stride)) && Access.writes access then
          fail (Printf.sprintf "dat %s: strided (grid-transfer) access is read-only"
                  dat.dat_name);
        if stride.xn <= 0 || stride.xd <= 0 || stride.yn <= 0 || stride.yd <= 0 then
          fail (Printf.sprintf "dat %s: stride components must be positive" dat.dat_name);
        if Access.writes access && not (is_center_only stencil) then
          fail (Printf.sprintf
                  "dat %s: %s access requires the center-only stencil" dat.dat_name
                  (Access.to_string access));
        Array.iter
          (fun (dx, dy) ->
            let bx0, by0 = apply_stride stride ~x:range.xlo ~y:range.ylo in
            let bx1, by1 = apply_stride stride ~x:(range.xhi - 1) ~y:(range.yhi - 1) in
            let x0 = bx0 + dx and x1 = bx1 + dx in
            let y0 = by0 + dy and y1 = by1 + dy in
            if x0 < x_min dat || x1 >= x_max dat || y0 < y_min dat || y1 >= y_max dat
            then
              fail
                (Printf.sprintf
                   "dat %s: stencil offset (%d,%d) leaves the %d-deep ghost ring over \
                    range %s"
                   dat.dat_name dx dy dat.halo (range_to_string range)))
          stencil)
    args

(* Backend-independent loop descriptor for tracing/profiling. *)
let describe ~name ~block ~range ~info args : Am_core.Descr.loop =
  let arg_descr = function
    | Arg_gbl { name; buf; access } ->
      { Am_core.Descr.dat_name = name; dat_id = -1; dim = Array.length buf; access;
        kind = Am_core.Descr.Global }
    | Arg_idx ->
      { Am_core.Descr.dat_name = "idx"; dat_id = -1; dim = 2; access = Access.Read;
        kind = Am_core.Descr.Global }
    | Arg_dat { dat; stencil; access; stride = _ } ->
      {
        Am_core.Descr.dat_name = dat.dat_name;
        dat_id = dat.dat_id;
        dim = dat.dim;
        access;
        kind =
          (if is_center_only stencil then Am_core.Descr.Direct
           else
             Am_core.Descr.Stencil
               { points = Array.length stencil; extent = stencil_extent stencil });
      }
  in
  {
    Am_core.Descr.loop_name = name;
    set_name = block.block_name;
    set_size = range_size range;
    args = List.map arg_descr args;
    info;
  }
