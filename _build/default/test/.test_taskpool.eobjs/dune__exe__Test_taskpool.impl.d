test/test_taskpool.ml: Alcotest Am_taskpool Array Atomic Printf
