lib/apps_hydra/hand.ml: Am_mesh App Array Float Kernels
