lib/mesh/csr.mli:
