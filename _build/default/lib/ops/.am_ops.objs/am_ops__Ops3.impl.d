lib/ops/ops3.ml: Am_checkpoint Am_core Am_simmpi Am_taskpool Array Boundary3 Dist3 Dist3p Exec3 List Multiblock3 Printf Types3 Unix
