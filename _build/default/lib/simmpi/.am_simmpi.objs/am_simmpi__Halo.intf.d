lib/simmpi/halo.mli: Comm
