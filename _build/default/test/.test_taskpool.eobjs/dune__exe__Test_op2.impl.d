test/test_op2.ml: Alcotest Am_core Am_mesh Am_op2 Am_simmpi Am_taskpool Am_util Array Filename Float Lazy List Printf QCheck QCheck_alcotest Str_contains Sys
