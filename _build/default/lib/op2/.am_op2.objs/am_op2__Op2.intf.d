lib/op2/op2.mli: Am_checkpoint Am_core Am_simmpi Am_taskpool Dist Exec_cuda Exec_vec Types
