(* Regeneration of every table and figure in the paper's evaluation.

   Each experiment prints the paper's reported numbers next to the numbers
   this repository produces (analytic model priced on traced workloads; see
   [Calibrate]).  Absolute agreement is not the goal — the authors'testbeds
   are modelled, not owned — but the *shape* of every comparison (who wins,
   by roughly what factor, where scaling tails off) is asserted by the test
   suite and recorded in EXPERIMENTS.md.

   Per-series style constants that encode mechanisms the paper itself
   reports (NUMA-blind first touch in hand-coded OpenMP, loop fusion in the
   hand-coded CUDA CloverLeaf, OpenCL driver overhead, Hydra's reduced GPU
   occupancy) are documented inline where they are set. *)

module Table = Am_util.Table
module Units = Am_util.Units
module Machines = Am_perfmodel.Machines
module Model = Am_perfmodel.Model
module Cluster = Am_perfmodel.Cluster
module Descr = Am_core.Descr

let vec = Model.default_style
let novec = Model.unvectorized

let f2 = Units.f2
let f1 = Units.f1

(* ---- Table I ----------------------------------------------------------- *)

(* Paper values: (loop, (time_s, bw_gbs) per device). *)
let table1_paper =
  [
    ("save_soln", (2.9, 62.0), (2.17, 84.0), (0.81, 213.0));
    ("adt_calc", (5.6, 57.0), (6.86, 47.0), (2.63, 115.0));
    ("res_calc", (9.9, 69.0), (27.2, 25.0), (10.8, 60.0));
    ("update", (9.8, 79.0), (8.77, 89.0), (3.22, 228.0));
  ]

let table1 () =
  let traced = Calibrate.trace_airfoil () in
  let iters = Calibrate.airfoil_paper_iterations in
  let factor =
    Float.of_int Calibrate.airfoil_paper_cells /. Float.of_int traced.Calibrate.ref_cells
  in
  let table =
    Table.create ~title:"Table I: Airfoil loop breakdown (paper vs model)"
      ~header:
        [
          "loop"; "E5-2697 paper"; "E5-2697 model"; "Phi paper"; "Phi model";
          "K40 paper"; "K40 model";
        ]
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (name, cpu_p, phi_p, k40_p) ->
      let profile =
        List.find
          (fun p -> p.Calibrate.descr.Descr.loop_name = name)
          traced.Calibrate.profiles
      in
      let loop = Model.scale_loop factor profile.Calibrate.descr in
      let executions = profile.Calibrate.calls_per_iteration * iters in
      let cell dev =
        let t = Model.loop_time dev vec loop *. Float.of_int executions in
        let bw = Model.loop_bandwidth_gbs dev vec loop in
        Printf.sprintf "%ss %s GB/s" (f2 t) (Units.f0 bw)
      in
      let paper (t, bw) = Printf.sprintf "%ss %s GB/s" (f2 t) (Units.f0 bw) in
      Table.add_row table
        [
          name; paper cpu_p; cell Machines.xeon_e5_2697v2; paper phi_p;
          cell Machines.xeon_phi_5110p; paper k40_p; cell Machines.nvidia_k40;
        ])
    table1_paper;
  Table.print table;
  print_endline
    "  workload: traced Airfoil iteration re-priced at 2.8M cells, 1000 iterations";
  print_endline
    "  (save_soln runs once and the other loops twice per iteration, as traced)\n"

(* ---- Fig 2 -------------------------------------------------------------- *)

(* Airfoil total runtime on single-node systems. Paper bars: the three
   devices of Table I (sums of its columns) plus the unvectorised and hybrid
   CPU variants read off the figure. *)
let fig2_series =
  [
    (* name, device, style, paper seconds, note *)
    ("CPU (MPI)", Machines.xeon_e5_2697v2, novec, 42.0, "figure (approx)");
    ("CPU (MPI vectorized)", Machines.xeon_e5_2697v2, vec, 28.2, "Table I sum");
    ( "CPU (MPI+OpenMP)",
      Machines.xeon_e5_2697v2,
      { novec with Model.numa_efficiency = 0.97 },
      43.0,
      "figure (approx)" );
    ( "CPU (MPI+OpenMP vec)",
      Machines.xeon_e5_2697v2,
      { vec with Model.numa_efficiency = 0.97 },
      29.0,
      "figure (approx)" );
    ("Xeon Phi (MPI+OMP vec)", Machines.xeon_phi_5110p, vec, 45.0, "Table I sum");
    ("CUDA K40", Machines.nvidia_k40, vec, 17.5, "Table I sum");
  ]

let fig2 () =
  let traced = Calibrate.trace_airfoil () in
  let step =
    Calibrate.scaled_iteration traced ~cells:Calibrate.airfoil_paper_cells
  in
  let iters = Float.of_int Calibrate.airfoil_paper_iterations in
  let table =
    Table.create ~title:"Fig 2: Airfoil single-node runtime (1000 iterations)"
      ~header:[ "configuration"; "paper (s)"; "model (s)"; "paper source" ]
      ~aligns:[ Table.Left; Right; Right; Left ]
      ()
  in
  List.iter
    (fun (name, dev, style, paper, src) ->
      let t = Model.sequence_time dev style step *. iters in
      Table.add_row table [ name; f1 paper; f1 t; src ])
    fig2_series;
  Table.print table;
  print_newline ()

(* ---- Fig 3 -------------------------------------------------------------- *)

(* Hydra runtime on one Xeon E5-2640 node. Mechanism encodings:
   - Original and OP2-unopt run the production mesh ordering: gathers at
     locality 0.6; they differ only by framework overhead, which both the
     paper and our measured runs put at ~zero.
   - OP2 (MPI) adds PT-Scotch-class partitioning and mesh renumbering:
     locality 1.0 — the ~30% of the paper.
   - Hydra's loops are too complex for compiler vectorisation (Section IV),
     so all CPU rows are unvectorised.
   - The K40 row runs at reduced occupancy (0.6): more state and registers
     per thread, higher branch divergence. *)
let fig3 () =
  let traced = Calibrate.trace_hydra () in
  let step = Calibrate.scaled_iteration traced ~cells:Calibrate.hydra_paper_cells in
  let iters = Float.of_int Calibrate.hydra_paper_iterations in
  let series =
    [
      ("Original (MPI)", Machines.xeon_e5_2640,
       { novec with Model.locality = 0.6 }, 21.0);
      ("OP2 unopt (MPI)", Machines.xeon_e5_2640,
       { novec with Model.locality = 0.6 }, 21.5);
      ("OP2 (MPI)", Machines.xeon_e5_2640, novec, 15.0);
      ( "OP2 (MPI+OpenMP)", Machines.xeon_e5_2640,
        { novec with Model.numa_efficiency = 0.97 }, 15.5 );
      ("OP2 (CUDA K40)", Machines.nvidia_k40,
       { vec with Model.gpu_occupancy = 0.6 }, 5.5);
    ]
  in
  let table =
    Table.create ~title:"Fig 3: Hydra single-node runtime (20 iterations)"
      ~header:[ "configuration"; "paper (s, approx)"; "model (s)" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  List.iter
    (fun (name, dev, style, paper) ->
      let t = Model.sequence_time dev style step *. iters in
      Table.add_row table [ name; f1 paper; f1 t ])
    series;
  Table.print table;
  print_newline ()

(* ---- Fig 4 -------------------------------------------------------------- *)

let scaling_nodes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let print_scaling_table ~title series =
  let header =
    "nodes" :: List.map (fun (name, _) -> name) series
  in
  let table =
    Table.create ~title ~header
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) series)
      ()
  in
  List.iteri
    (fun i nodes ->
      Table.add_row table
        (string_of_int nodes
         :: List.map
              (fun (_, points) ->
                let p = List.nth points i in
                Printf.sprintf "%s (%.0f%%)" (f2 p.Cluster.seconds)
                  (100.0 *. p.Cluster.efficiency))
              series))
    scaling_nodes;
  Table.print table

let fig4 () =
  let airfoil = Calibrate.trace_airfoil () in
  let hydra = Calibrate.trace_hydra () in
  let airfoil_w = Calibrate.workload airfoil ~neighbours:4 in
  let hydra_w = Calibrate.workload hydra ~neighbours:4 in
  let steps = 100 in
  (* Hydra is unvectorisable on CPUs (Section IV) and runs at reduced GPU
     occupancy; Airfoil vectorises and fills the GPU. *)
  let strong w style cluster global =
    Cluster.strong_scaling cluster style w ~global_elements:global
      ~node_counts:scaling_nodes ~steps
  in
  let weak w style cluster per_node =
    Cluster.weak_scaling cluster style w ~elements_per_node:per_node
      ~node_counts:scaling_nodes ~steps
  in
  print_scaling_table
    ~title:"Fig 4a: strong scaling, seconds (parallel efficiency) for 100 iterations"
    [
      ("Airfoil CPU (HECToR)",
       strong airfoil_w vec Machines.hector Calibrate.airfoil_paper_cells);
      ("Airfoil GPU (Emerald)",
       strong airfoil_w vec Machines.emerald Calibrate.airfoil_paper_cells);
      ("Hydra CPU (HECToR)",
       strong hydra_w novec Machines.hector Calibrate.hydra_paper_cells);
      ( "Hydra GPU (Jade)",
        strong hydra_w
          { vec with Model.gpu_occupancy = 0.6 }
          Machines.jade Calibrate.hydra_paper_cells );
    ];
  print_endline
    "  shape targets: GPUs tail off before CPUs as per-node work shrinks\n";
  let per_node_airfoil = Calibrate.airfoil_paper_cells / 8 in
  let per_node_hydra = Calibrate.hydra_paper_cells / 8 in
  print_scaling_table
    ~title:"Fig 4b: weak scaling, seconds (efficiency) for 100 iterations"
    [
      ("Airfoil CPU (HECToR)", weak airfoil_w vec Machines.hector per_node_airfoil);
      ("Airfoil GPU (Emerald)", weak airfoil_w vec Machines.emerald per_node_airfoil);
      ("Hydra CPU (HECToR)", weak hydra_w novec Machines.hector per_node_hydra);
      ( "Hydra GPU (Jade)",
        weak hydra_w { vec with Model.gpu_occupancy = 0.6 } Machines.jade
          per_node_hydra );
    ];
  print_endline "  shape targets: near-flat weak scaling (paper: <5% loss, Airfoil CPU)\n"

(* ---- Fig 5 -------------------------------------------------------------- *)

(* The 32-core CPU node of the CloverLeaf comparison (dual-socket Sandy
   Bridge class). *)
let fig5_cpu_node =
  {
    Machines.name = "32-core CPU node";
    stream_bw = 76.0;
    gather_efficiency = 0.85;
    flops = 500.0;
    transcendental_rate = 20.0;
    scalar_penalty = 3.0;
    loop_latency = 5e-6;
    half_work = 0.0;
    rfo = true;
    is_gpu = false;
  }

(* Per-series mechanisms (paper-reported, encoded as style):
   - hand-coded OpenMP lacks NUMA-aware first touch (OPS is ~20% faster);
   - hand-coded CUDA fuses some loops (~6% fewer bytes);
   - OpenCL on the CPU defeats vectorisation and adds driver overhead;
   - OpenACC adds overhead to both, more to the hand-coded version;
   - OPS's generated MPI code is within a few % of hand-tuned. *)
let fig5_series =
  [
    (* name, device, original style, ops style, paper (orig, ops) *)
    ( "32 OMP", fig5_cpu_node,
      { vec with Model.numa_efficiency = 0.8 }, vec, (57.39, 45.92) );
    ("32 MPI", fig5_cpu_node, vec, { vec with Model.runtime_overhead = 1.02 },
     (44.60, 45.55));
    ( "2OMPx16MPI", fig5_cpu_node, vec,
      { vec with Model.runtime_overhead = 1.04 }, (44.22, 45.82) );
    ( "OpenCL (CPU)", fig5_cpu_node,
      { novec with Model.runtime_overhead = 1.08 },
      { novec with Model.runtime_overhead = 1.11 }, (61.54, 63.35) );
    ( "CUDA", Machines.nvidia_k20x,
      { vec with Model.runtime_overhead = 0.94 (* hand loop-fusion *) }, vec,
      (14.14, 15.01) );
    ( "OpenCL (GPU)", Machines.nvidia_k20x,
      { vec with Model.runtime_overhead = 1.08 },
      { vec with Model.runtime_overhead = 1.08 }, (16.19, 16.27) );
    ( "OpenACC", Machines.nvidia_k20x,
      { vec with Model.runtime_overhead = 1.45 },
      { vec with Model.runtime_overhead = 1.32 }, (21.67, 19.82) );
  ]

let fig5 () =
  let traced = Calibrate.trace_cloverleaf () in
  let step = Calibrate.scaled_iteration traced ~cells:Calibrate.clover_fig5_cells in
  let steps = Float.of_int Calibrate.clover_fig5_steps in
  let table =
    Table.create
      ~title:"Fig 5: CloverLeaf 3840^2, hand-coded Original vs OPS-generated"
      ~header:
        [ "configuration"; "orig paper"; "orig model"; "OPS paper"; "OPS model";
          "OPS/orig model" ]
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (name, dev, style_orig, style_ops, (paper_orig, paper_ops)) ->
      let t style =
        Model.sequence_time dev style step *. steps
        *. Calibrate.clover_paper_traffic_factor
      in
      let to_ = t style_orig and tp = t style_ops in
      Table.add_row table
        [ name; f1 paper_orig; f1 to_; f1 paper_ops; f1 tp; f2 (tp /. to_) ])
    fig5_series;
  Table.print table;
  print_newline ()

(* ---- Fig 6 -------------------------------------------------------------- *)

let fig6_nodes_strong = [ 128; 256; 512; 1024; 2048; 4096; 8192 ]
let fig6_nodes_weak = [ 1; 4; 16; 64; 256; 1024; 4096; 8192 ]

let fig6 () =
  let traced = Calibrate.trace_cloverleaf () in
  let scale_point (p : Cluster.scaling_point) =
    { p with Cluster.seconds = p.Cluster.seconds *. Calibrate.clover_paper_traffic_factor }
  in
  (* 1D row decomposition: two neighbours. *)
  let w = Calibrate.workload traced ~neighbours:2 in
  let ops_style = { vec with Model.runtime_overhead = 1.02 } in
  let run style cluster nodes global =
    List.map scale_point
      (Cluster.strong_scaling cluster style w ~global_elements:global
         ~node_counts:nodes ~steps:Calibrate.clover_fig6_steps)
  in
  let runw style cluster nodes per_node =
    List.map scale_point
      (Cluster.weak_scaling cluster style w ~elements_per_node:per_node
         ~node_counts:nodes ~steps:Calibrate.clover_fig6_steps)
  in
  let print_one ~title nodes series =
    let table =
      Table.create ~title
        ~header:("nodes" :: List.map fst series)
        ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) series)
        ()
    in
    List.iteri
      (fun i n ->
        Table.add_row table
          (string_of_int n
           :: List.map
                (fun (_, pts) ->
                  let p = List.nth pts i in
                  Printf.sprintf "%s (%.0f%%)" (f2 p.Cluster.seconds)
                    (100.0 *. p.Cluster.efficiency))
                series))
      nodes;
    Table.print table
  in
  print_one ~title:"Fig 6a: CloverLeaf strong scaling on Titan, 15360^2, 87 steps"
    fig6_nodes_strong
    [
      ("Original MPI", run vec Machines.titan_cpu fig6_nodes_strong
                         Calibrate.clover_fig6_strong_cells);
      ("OPS MPI", run ops_style Machines.titan_cpu fig6_nodes_strong
                    Calibrate.clover_fig6_strong_cells);
      ("Original MPI+CUDA", run vec Machines.titan_gpu fig6_nodes_strong
                              Calibrate.clover_fig6_strong_cells);
      ("OPS MPI+CUDA", run ops_style Machines.titan_gpu fig6_nodes_strong
                         Calibrate.clover_fig6_strong_cells);
    ];
  print_endline
    "  shape targets: OPS tracks Original; CPU scales to 4096 nodes, GPU tails\n";
  print_one ~title:"Fig 6b: CloverLeaf weak scaling on Titan, 3840^2 per node"
    fig6_nodes_weak
    [
      ("Original MPI", runw vec Machines.titan_cpu fig6_nodes_weak
                         Calibrate.clover_fig5_cells);
      ("OPS MPI", runw ops_style Machines.titan_cpu fig6_nodes_weak
                    Calibrate.clover_fig5_cells);
      ("Original MPI+CUDA", runw vec Machines.titan_gpu fig6_nodes_weak
                              Calibrate.clover_fig5_cells);
      ("OPS MPI+CUDA", runw ops_style Machines.titan_gpu fig6_nodes_weak
                         Calibrate.clover_fig5_cells);
    ];
  print_endline
    "  shape targets: ~1% (CPU) / ~6% (GPU) weak-scaling loss at full machine\n"

(* ---- Fig 7 -------------------------------------------------------------- *)

let fig7 () =
  print_endline "== Fig 7: generated CUDA memory strategies ==";
  print_endline (Am_codegen.Codegen.fig7 ());
  print_endline "-- full generated res_calc (STAGE_NOSOA target) --";
  let traced = Calibrate.trace_airfoil () in
  let res_calc =
    (List.find
       (fun p -> p.Calibrate.descr.Descr.loop_name = "res_calc")
       traced.Calibrate.profiles)
      .Calibrate.descr
  in
  print_endline
    (Am_codegen.Codegen.generate_op2
       (Am_codegen.Codegen.Cuda Am_codegen.Codegen.Stage_nosoa)
       res_calc);
  print_newline ()

(* ---- Fig 8 -------------------------------------------------------------- *)

let fig8 () =
  (* The planner applied to the loop chain actually executed by our Airfoil
     (its update reads adt, making update cost 9 units rather than the
     paper's 8 — the paper's airfoil variant folds the timestep into res;
     orderings and decisions are identical). *)
  let traced = Calibrate.trace_airfoil () in
  let events = Calibrate.iteration_loops traced.Calibrate.profiles in
  (* Two iterations for the periodicity evidence, as in the figure. *)
  let chain = events @ events in
  print_endline (Am_checkpoint.Planner.render_figure chain);
  (match Am_checkpoint.Planner.detect_period chain with
  | Some p -> Printf.printf "  detected loop period: %d kernels\n" p
  | None -> print_endline "  no period detected");
  let requested = 2 in
  let trigger = Am_checkpoint.Planner.speculative_trigger chain ~requested in
  let units_req = (Am_checkpoint.Planner.plan_at chain ~trigger:requested).Am_checkpoint.Planner.units in
  let units_spec = (Am_checkpoint.Planner.plan_at chain ~trigger).Am_checkpoint.Planner.units in
  Printf.printf
    "  checkpoint requested before loop %d (%d units); speculative algorithm \
     defers to loop %d (%d units)\n\n"
    (requested + 1) units_req (trigger + 1) units_spec
