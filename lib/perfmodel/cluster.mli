(** Cluster-scale execution model (the paper's Figs 4 and 6).

    Per-step node time is the device time of the rank-local share of a
    traced loop sequence; communication adds per-exchange latency, a
    bandwidth term for the halo volume (surface law, sqrt(n) in 2D, with a
    coefficient calibrated from traffic the real distributed runtime sent),
    and log-depth latency per global reduction. *)

module Descr = Am_core.Descr

type workload = {
  workload_name : string;
  step_loops : Descr.loop list;  (** one step, traced at [ref_elements] *)
  ref_elements : int;
  halo_bytes_coeff : float;
      (** bytes sent per rank per step = coeff * sqrt(n_local) *)
  exchanges_per_step : int;
  reductions_per_step : int;
  neighbours : int;
}

val messages_per_step : workload -> int

(** Surface coefficient from an observed run: total [bytes_per_step] sent by
    [ranks] ranks at local size [n_local]. *)
val calibrate_halo_coeff : bytes_per_step:float -> ranks:int -> n_local:int -> float

(** Halo-exchange seconds per step — the hideable part of {!comm_time}. *)
val halo_time : Machines.network -> workload -> nodes:int -> n_local:int -> float

(** Log-depth reduction seconds per step — synchronisation no overlap hides. *)
val reduction_time : Machines.network -> workload -> nodes:int -> float

(** Communication seconds per step (0 on a single node);
    {!halo_time} + {!reduction_time}. *)
val comm_time : Machines.network -> workload -> nodes:int -> n_local:int -> float

(** Share of a rank's elements within reach of the halo (one surface's worth
    per neighbour — the boundary layer of the core/boundary split). *)
val boundary_fraction : workload -> n_local:int -> float

(** Seconds per step at [nodes] nodes for a [global_elements] problem.
    With [overlap] the halo exchange is credited against the core share of
    the compute, [max(comm, core) + boundary] (see {!Model.overlapped_time});
    reductions stay exposed. *)
val step_time :
  ?overlap:bool ->
  Machines.cluster -> Model.style -> workload -> nodes:int -> global_elements:int ->
  float

type scaling_point = {
  nodes : int;
  seconds : float;
  efficiency : float;  (** vs ideal scaling from the first node count *)
}

val strong_scaling :
  ?overlap:bool ->
  Machines.cluster -> Model.style -> workload -> global_elements:int ->
  node_counts:int list -> steps:int -> scaling_point list

val weak_scaling :
  ?overlap:bool ->
  Machines.cluster -> Model.style -> workload -> elements_per_node:int ->
  node_counts:int list -> steps:int -> scaling_point list
