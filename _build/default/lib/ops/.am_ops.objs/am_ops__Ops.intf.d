lib/ops/ops.mli: Am_checkpoint Am_core Am_simmpi Am_taskpool Boundary Dist Exec Multiblock Types
