(** Backend-independent description of an executed parallel loop, shared by
    the profiler, performance model, checkpoint planner and code generator. *)

type arg_kind =
  | Direct
  | Indirect of { map_name : string; map_index : int; ratio : float }
    (** [ratio] = target-set size / iteration-set size, for amortised
        traffic accounting *)
  | Stencil of { points : int; extent : int }
    (** [extent] = Chebyshev radius of the stencil (max axis offset) *)
  | Global

type arg = {
  dat_name : string;
  dat_id : int;  (** unique dataset id within its context; -1 for globals *)
  dim : int;
  access : Access.t;
  kind : arg_kind;
}

(** Per-element computational intensity declared by the application author.
    [transcendentals] counts sqrt/exp-class operations. *)
type kernel_info = { flops : float; transcendentals : float }

val default_kernel_info : kernel_info

type loop = {
  loop_name : string;
  set_name : string;
  set_size : int;
  args : arg list;
  info : kernel_info;
}

val is_indirect_arg : arg -> bool
val has_indirection : loop -> bool

(** Useful bytes per iteration element under perfect reuse: direct and
    stencil data move once, indirect data moves [ratio] times (each
    referenced element once), and every indirect reference adds a 4-byte
    map index. Inc counts as read+write. *)
val bytes_per_element : loop -> int

val total_bytes : loop -> int
val total_flops : loop -> float
val arg_to_string : arg -> string
val loop_to_string : loop -> string
