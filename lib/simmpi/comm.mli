(** In-process message-passing simulator (MPI stand-in).

    Ranks are executed BSP-style within one process; messages are FIFO per
    (src, dst) channel and all traffic is recorded for the performance
    model.

    Besides the blocking [send]/[recv] pair, the simulator offers
    non-blocking [isend]/[irecv]/[wait]/[waitall] request handles: an
    [isend] stages its payload {e in flight} without delivering it, so the
    distributed backends can post exchanges, compute over core elements, and
    only then wait.  Delivery happens implicitly inside [wait]/[recv], or
    one message at a time via [deliver_one] so tests can enumerate delivery
    schedules (FIFO within a channel; interleaving across channels is the
    driver's choice). *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable exchanges : int;  (** collective halo-exchange rounds *)
  mutable reductions : int;
}

type t

(** Opaque request handle returned by [isend]/[irecv]. *)
type request

val create : n_ranks:int -> t
val n_ranks : t -> int

(** Live view of the traffic counters. *)
val stats : t -> stats

val reset_stats : t -> unit

(** Count one collective halo-exchange round, in [stats] and in the global
    observability counters.  Called by the halo layers once per round. *)
val count_exchange : t -> unit

(** Count one global reduction (ditto; [allreduce] counts itself). *)
val count_reduction : t -> unit

(** Enqueue a message. The payload is transferred by reference; senders must
    not mutate it afterwards. *)
val send : t -> src:int -> dst:int -> float array -> unit

(** Dequeue the oldest message on the (src, dst) channel (delivering any
    staged ones first); [Failure] if none is pending (a deadlock in the
    simulated program). *)
val recv : t -> src:int -> dst:int -> float array

(** Stage a message in flight on the (src, dst) channel. Counted in [stats]
    at post time; the payload is transferred by reference. *)
val isend : t -> src:int -> dst:int -> float array -> request

(** Post a receive for the oldest undelivered message on (src, dst). The
    payload materialises at [wait]. *)
val irecv : t -> src:int -> dst:int -> request

(** Complete a request. For a receive, delivers the channel's staged
    messages and returns the matched payload — raising a deadlock [Failure]
    when nothing is or ever will be available. For a send, returns [[||]].
    Waiting twice on the same receive returns the same payload. *)
val wait : t -> request -> float array

val waitall : t -> request list -> unit

(** Bytes attributed to a request: the posted size for a send, the matched
    payload size for a completed receive (0 before completion). *)
val request_bytes : request -> int

(** The payload matched to a completed receive; [None] for sends or
    incomplete receives. *)
val request_payload : request -> float array option

(** Deliver the single oldest in-flight message on a channel; false when the
    channel has nothing staged. Drives schedule-exploration tests. *)
val deliver_one : t -> src:int -> dst:int -> bool

(** Deliver everything in flight on one channel, preserving FIFO order. *)
val deliver_channel : t -> src:int -> dst:int -> unit

(** In-flight (staged, undelivered) messages on a channel. *)
val in_flight : t -> src:int -> dst:int -> int

(** Channels holding in-flight messages, in (src, dst) order. *)
val in_flight_channels : t -> (int * int) list

(** Messages currently queued on a channel (delivered plus in flight). *)
val pending : t -> src:int -> dst:int -> int

(** True when no channel holds an undelivered or in-flight message. *)
val all_drained : t -> bool

(** {1 Controlled delivery scheduling}

    Schedule explorers (the [Am_schedcheck] library) install a {e chooser}
    that intercepts every delivery a [wait]/[recv] would perform implicitly:
    whenever a receive needs its channel driven, the chooser is offered the
    set of channels with staged messages ([enabled], in (src, dst) order)
    together with the channel the receive is blocked on ([needed]), and
    returns the channel to deliver next — so the interleaving of deliveries
    across channels becomes an explicit, replayable decision sequence.  The
    chooser must return a member of [enabled] ([Invalid_argument]
    otherwise); it keeps being consulted until the needed channel can make
    the receive progress.

    The hook is process-global, like the observability singletons, because
    communicators are built deep inside the facades; installers must remove
    it when done.  With no chooser installed (the default) delivery
    behaviour is unchanged. *)

type chooser = needed:int * int -> enabled:(int * int) list -> int * int

val set_chooser : chooser option -> unit
val current_chooser : unit -> chooser option

(** {1 Fault injection and reliable transport}

    With a {!Fault} injector attached, every message travels inside a
    sequence-numbered, CRC-verified envelope and passes through the
    injector when staged (drop / duplicate / delay / bit-flip corruption).
    Receives then discard corrupt and stale copies, stash early
    out-of-order ones, and retransmit from a sender-side buffer with
    exponential backoff when the expected sequence number times out (in
    simulated deliver-steps).  An exhausted retry budget — or a receive
    with nothing in flight and no retransmit source — raises
    [Fault.Unrecoverable] instead of the deadlock [Failure].

    Without an attached injector every path is byte-for-byte the plain
    transport above: no envelopes, no sequence state, no overhead beyond
    one field test per call. *)

(** Route all subsequent traffic through the reliable enveloped transport,
    injecting faults per [fault]'s specification.  Attach before the first
    message: sequence numbering starts at the attach point. *)
val attach_fault : t -> Fault.t -> unit

val fault : t -> Fault.t option

(** {1 Reductions} *)

(** Reduce one value per rank with an associative [combine]. *)
val allreduce : t -> combine:(float -> float -> float) -> float array -> float

val allreduce_sum : t -> float array -> float
val allreduce_min : t -> float array -> float
val allreduce_max : t -> float array -> float
