(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic element of the repository (mesh generation, synthetic
    workloads, property tests) draws from this generator so that runs are
    reproducible across platforms. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [split t] advances [t] and returns an independent generator, for handing
    a private stream to each parallel worker. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** [float_range t lo hi] draws uniformly from [lo, hi). *)
val float_range : t -> float -> float -> float

(** [int t bound] draws uniformly from [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** Fair coin. *)
val bool : t -> bool

(** Standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
