(** Unstructured 2D quadrilateral meshes in OP2-Airfoil layout.

    Interior edges carry two adjacent cells; boundary edges ("bedges") carry
    one adjacent cell and a boundary-condition id. All maps are flat arrays
    with a fixed arity per element. *)

type t = {
  n_nodes : int;
  n_cells : int;
  n_edges : int;
  n_bedges : int;
  edge_nodes : int array;  (** 2 per edge *)
  edge_cells : int array;  (** 2 per edge: (left, right) *)
  cell_nodes : int array;  (** 4 per cell, counter-clockwise *)
  bedge_nodes : int array;  (** 2 per bedge *)
  bedge_cell : int array;  (** 1 per bedge *)
  bedge_bound : int array;  (** boundary-condition id per bedge *)
  node_coords : float array;  (** 2 per node *)
}

val boundary_inflow : int
val boundary_outflow : int
val boundary_wall : int
val boundary_farfield : int

(** Check structural invariants (array lengths, index ranges); raises
    [Failure] on violation. Run by all generators. *)
val validate : t -> unit

(** Cells adjacent through an interior edge. *)
val cell_dual_graph : t -> Csr.t

(** Nodes joined by a mesh edge (interior or boundary). *)
val node_graph : t -> Csr.t

(** Centroid coordinates, 2 per cell. *)
val cell_centroids : t -> float array

type side = West | East | South | North

(** [generate_mapped ~nx ~ny ~coord ~bound] builds an [nx] x [ny]-cell
    logically rectangular mesh; [coord i j] maps grid node (i, j) to physical
    space and [bound] assigns boundary ids to the four sides. *)
val generate_mapped :
  nx:int -> ny:int -> coord:(int -> int -> float * float) -> bound:(side -> int) -> t

(** Transonic channel-with-bump geometry used as the Airfoil workload. *)
val generate_airfoil : nx:int -> ny:int -> unit -> t

(** Plain unit-square grid for unit tests. *)
val generate_square : nx:int -> ny:int -> unit -> t

(** Randomly relabel cells, nodes and edges to recreate the poor locality of
    production meshes (the situation renumbering must recover from). *)
val scramble : seed:int -> t -> t
