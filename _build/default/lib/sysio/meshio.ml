(* Unstructured-mesh file I/O over the snapshot container.

   Stores the integer connectivity as doubles (exact for meshes far beyond
   any practical size: doubles hold integers up to 2^53). Mirrors OP2's
   HDF5 mesh files: one named array per set size, map and coordinate
   field. *)

module Umesh = Am_mesh.Umesh

let of_ints = Array.map Float.of_int
let to_ints = Array.map Float.to_int

let save path (m : Umesh.t) =
  Snapshot.save path
    [
      ("sizes", of_ints [| m.Umesh.n_nodes; m.Umesh.n_cells; m.Umesh.n_edges; m.Umesh.n_bedges |]);
      ("edge_nodes", of_ints m.Umesh.edge_nodes);
      ("edge_cells", of_ints m.Umesh.edge_cells);
      ("cell_nodes", of_ints m.Umesh.cell_nodes);
      ("bedge_nodes", of_ints m.Umesh.bedge_nodes);
      ("bedge_cell", of_ints m.Umesh.bedge_cell);
      ("bedge_bound", of_ints m.Umesh.bedge_bound);
      ("node_coords", m.Umesh.node_coords);
    ]

let load path =
  let entries = Snapshot.load path in
  let get name =
    match List.assoc_opt name entries with
    | Some v -> v
    | None -> raise (Snapshot.Corrupt ("missing field " ^ name))
  in
  let sizes = to_ints (get "sizes") in
  if Array.length sizes <> 4 then raise (Snapshot.Corrupt "bad sizes field");
  let m =
    {
      Umesh.n_nodes = sizes.(0);
      n_cells = sizes.(1);
      n_edges = sizes.(2);
      n_bedges = sizes.(3);
      edge_nodes = to_ints (get "edge_nodes");
      edge_cells = to_ints (get "edge_cells");
      cell_nodes = to_ints (get "cell_nodes");
      bedge_nodes = to_ints (get "bedge_nodes");
      bedge_cell = to_ints (get "bedge_cell");
      bedge_bound = to_ints (get "bedge_bound");
      node_coords = get "node_coords";
    }
  in
  Umesh.validate m;
  m
