(** Graph and coordinate partitioners (stand-ins for PT-Scotch/ParMetis).

    All partitioners return an assignment array mapping each element to a
    part id in [0, parts). *)

type quality = {
  parts : int;
  edge_cut : int;  (** undirected cut edges *)
  imbalance : float;  (** max part size over ideal, minus 1 *)
  max_part : int;
}

(** Elements per part; raises if an assignment is out of range. *)
val part_sizes : parts:int -> int array -> int array

(** Load imbalance: [max_size/ideal - 1]. *)
val imbalance : parts:int -> int array -> float

(** Cut/balance summary of an assignment. *)
val quality : Csr.t -> parts:int -> int array -> quality

(** Contiguous index-range partition (the naive baseline). *)
val block : n:int -> parts:int -> int array

(** Recursive coordinate bisection over [dim]-dimensional element
    coordinates ([dim] floats per element, [n*dim] total). *)
val rcb : coords:float array -> dim:int -> n:int -> parts:int -> int array

(** Seeded BFS region growth + boundary refinement (Metis stand-in).
    [tolerance] bounds the allowed imbalance during refinement. *)
val kway : ?tolerance:float -> ?refinement_passes:int -> Csr.t -> parts:int -> int array

(** Total import volume (vertex copies transferred) implied by a partition. *)
val halo_volume : Csr.t -> int array -> int
