(* Halo-exchange plans over a [Comm.t].

   A plan records, for every ordered rank pair (r, p), which *local* element
   slots of rank r are exported to p and which local slots of p receive them.
   The same plan serves both communication directions the OP2/OPS runtimes
   need:

   - [exchange]: owners push fresh values out to the halo copies
     (read-indirect arguments before a loop);
   - [reduce]: halo copies push accumulated contributions back to the owners,
     which add them in (increment-indirect arguments after a loop).

   Both directions come in a blocking form and a split pack/post vs.
   wait/unpack form ([exchange_start]/[exchange_finish],
   [reduce_start]/[reduce_finish]) so the distributed executors can overlap
   core computation with the in-flight messages.  Payloads are packed at post
   time: the bytes on the wire snapshot the pre-loop values even if the
   overlap phase then writes the exported slots.

   Export and import lists for a pair must have equal length and matching
   order; [validate] checks this. *)

module Obs = Am_obs.Obs
module Cat = Am_obs.Tracer

type t = {
  n_ranks : int;
  exports : int array array array; (* exports.(r).(p): local slots of r sent to p *)
  imports : int array array array; (* imports.(r).(p): local slots of r receiving from p *)
}

(* In-flight exchange (or reduce): the posted receives in completion order.
   Each entry is (receiving rank, peer it receives from, request). *)
type token = { tok_dim : int; tok_recvs : (int * int * Comm.request) list }

let create ~n_ranks ~exports ~imports =
  let t = { n_ranks; exports; imports } in
  if Array.length exports <> n_ranks || Array.length imports <> n_ranks then
    invalid_arg "Halo.create: per-rank arrays must have length n_ranks";
  Array.iter
    (fun per_peer ->
      if Array.length per_peer <> n_ranks then
        invalid_arg "Halo.create: per-peer arrays must have length n_ranks")
    exports;
  Array.iter
    (fun per_peer ->
      if Array.length per_peer <> n_ranks then
        invalid_arg "Halo.create: per-peer arrays must have length n_ranks")
    imports;
  for r = 0 to n_ranks - 1 do
    for p = 0 to n_ranks - 1 do
      if Array.length exports.(r).(p) <> Array.length imports.(p).(r) then
        invalid_arg
          (Printf.sprintf "Halo.create: export %d->%d does not match import" r p)
    done
  done;
  t

let n_ranks t = t.n_ranks

(* Total element copies moved per exchange round. *)
let volume t =
  let v = ref 0 in
  for r = 0 to t.n_ranks - 1 do
    for p = 0 to t.n_ranks - 1 do
      v := !v + Array.length t.exports.(r).(p)
    done
  done;
  !v

let pack data ~dim slots =
  let out = Array.make (dim * Array.length slots) 0.0 in
  Array.iteri
    (fun k slot -> Array.blit data (slot * dim) out (k * dim) dim)
    slots;
  out

(* Owner -> halo push, pack/post half: every export is packed and isent, and
   a receive is posted for every import. Counted as one exchange round. *)
let exchange_start comm t ~dim data =
  if Comm.n_ranks comm <> t.n_ranks then
    invalid_arg "Halo.exchange_start: comm/plan mismatch";
  Comm.count_exchange comm;
  let traced = Obs.tracing () in
  for r = 0 to t.n_ranks - 1 do
    for p = 0 to t.n_ranks - 1 do
      if r <> p && Array.length t.exports.(r).(p) > 0 then begin
        if traced then Obs.begin_span ~lane:r ~cat:Cat.Halo_pack "pack";
        let payload = pack data.(r) ~dim t.exports.(r).(p) in
        if traced then Obs.end_span ~lane:r ();
        ignore (Comm.isend comm ~src:r ~dst:p payload)
      end
    done
  done;
  let recvs = ref [] in
  for p = t.n_ranks - 1 downto 0 do
    for r = t.n_ranks - 1 downto 0 do
      if r <> p && Array.length t.imports.(p).(r) > 0 then
        recvs := (p, r, Comm.irecv comm ~src:r ~dst:p) :: !recvs
    done
  done;
  { tok_dim = dim; tok_recvs = !recvs }

(* Wait half: completes every posted receive and scatters the payloads into
   the import slots. *)
let exchange_finish comm t token data =
  let dim = token.tok_dim in
  let traced = Obs.tracing () in
  List.iter
    (fun (p, r, req) ->
      let payload = Comm.wait comm req in
      if traced then Obs.begin_span ~lane:p ~cat:Cat.Halo_unpack "unpack";
      Array.iteri
        (fun k slot -> Array.blit payload (k * dim) data.(p) (slot * dim) dim)
        t.imports.(p).(r);
      if traced then Obs.end_span ~lane:p ())
    token.tok_recvs

(* Blocking owner -> halo push of [dim] values per element. [data.(rank)] is
   that rank's local array. *)
let exchange comm t ~dim data =
  if Comm.n_ranks comm <> t.n_ranks then invalid_arg "Halo.exchange: comm/plan mismatch";
  let token = exchange_start comm t ~dim data in
  exchange_finish comm t token data

(* Halo -> owner accumulation, pack/post half: each rank isends the contents
   of its *import* slots back to the exporting owner.  Callers zero the halo
   slots before the contributing loop so only fresh contributions flow
   back. *)
let reduce_start comm t ~dim data =
  if Comm.n_ranks comm <> t.n_ranks then
    invalid_arg "Halo.reduce_start: comm/plan mismatch";
  Comm.count_exchange comm;
  let traced = Obs.tracing () in
  for p = 0 to t.n_ranks - 1 do
    for r = 0 to t.n_ranks - 1 do
      if r <> p && Array.length t.imports.(p).(r) > 0 then begin
        if traced then Obs.begin_span ~lane:p ~cat:Cat.Halo_pack "reduce_pack";
        let payload = pack data.(p) ~dim t.imports.(p).(r) in
        if traced then Obs.end_span ~lane:p ();
        ignore (Comm.isend comm ~src:p ~dst:r payload)
      end
    done
  done;
  let recvs = ref [] in
  for r = t.n_ranks - 1 downto 0 do
    for p = t.n_ranks - 1 downto 0 do
      if r <> p && Array.length t.exports.(r).(p) > 0 then
        recvs := (r, p, Comm.irecv comm ~src:p ~dst:r) :: !recvs
    done
  done;
  { tok_dim = dim; tok_recvs = !recvs }

(* Wait half: owners add the returned contributions elementwise. *)
let reduce_finish comm t token data =
  let dim = token.tok_dim in
  let traced = Obs.tracing () in
  List.iter
    (fun (r, p, req) ->
      let payload = Comm.wait comm req in
      if traced then Obs.begin_span ~lane:r ~cat:Cat.Halo_unpack "reduce_unpack";
      Array.iteri
        (fun k slot ->
          for d = 0 to dim - 1 do
            data.(r).((slot * dim) + d) <-
              data.(r).((slot * dim) + d) +. payload.((k * dim) + d)
          done)
        t.exports.(r).(p);
      if traced then Obs.end_span ~lane:r ())
    token.tok_recvs

let reduce comm t ~dim data =
  if Comm.n_ranks comm <> t.n_ranks then invalid_arg "Halo.reduce: comm/plan mismatch";
  let token = reduce_start comm t ~dim data in
  reduce_finish comm t token data

(* Largest number of peers any rank talks to — feeds the network model's
   message-count term. *)
let max_peers t =
  let worst = ref 0 in
  for r = 0 to t.n_ranks - 1 do
    let peers = ref 0 in
    for p = 0 to t.n_ranks - 1 do
      if r <> p
         && (Array.length t.exports.(r).(p) > 0 || Array.length t.imports.(r).(p) > 0)
      then incr peers
    done;
    if !peers > !worst then worst := !peers
  done;
  !worst
