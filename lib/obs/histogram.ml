(* Log-bucketed histogram cell: fixed global bucket layout shared by every
   histogram so snapshots from different cells (or processes) are directly
   comparable bucket-by-bucket.

   Buckets grow geometrically by 2^(1/4) per step (~18.9%), four buckets
   per octave, from 1 ns up past 200 s.  Recording a value is a binary
   search over an immutable float array plus three array stores — no
   allocation — so histograms can stay always-on like counters.  Mutable
   float state lives in a float array (unboxed) rather than mutable record
   fields, which would box on every update. *)

let sub_buckets = 4
let lowest = 1e-9

(* 152 finite boundaries: boundary.(i) = 1e-9 * 2^(i/4); the last is
   ~2.3e2 s.  Values above it land in one overflow bucket. *)
let n_bounds = 152
let n_buckets = n_bounds + 1
let overflow_bucket = n_bounds
let bounds = Array.init n_bounds (fun i -> lowest *. Float.pow 2.0 (float_of_int i /. float_of_int sub_buckets))
let bucket_ratio = Float.pow 2.0 (1.0 /. float_of_int sub_buckets)

(* Bucket [i] covers (bounds.(i-1), bounds.(i)]; bucket 0 additionally
   absorbs everything <= bounds.(0) (including 0, negatives and NaN — the
   record path must never raise).  Smallest [i] with [v <= bounds.(i)]. *)
(* invariant: v > bounds.(lo), v <= bounds.(hi).  Top-level tail recursion
   (not a local closure over [v], not refs) so the search allocates
   nothing — histogram cells are recorded inside every par_loop. *)
let rec bisect v lo hi =
  if hi - lo <= 1 then hi
  else
    let mid = (lo + hi) / 2 in
    if v > bounds.(mid) then bisect v mid hi else bisect v lo mid

let bucket_index v =
  if not (v > bounds.(0)) then 0
  else if v > bounds.(n_bounds - 1) then overflow_bucket
  else bisect v 0 (n_bounds - 1)

let bucket_upper i = if i >= n_bounds then Float.infinity else bounds.(i)
let bucket_lower i = if i <= 0 then 0.0 else bounds.(i - 1)

(* stats array slots *)
let s_sum = 0
let s_min = 1
let s_max = 2

type t = {
  h_name : string;
  h_unit : string;
  counts : int array; (* n_buckets *)
  mutable total : int;
  stats : float array; (* sum, min, max — unboxed float storage *)
}

let create ?(unit_ = "") name =
  { h_name = name; h_unit = unit_; counts = Array.make n_buckets 0; total = 0; stats = [| 0.0; Float.infinity; Float.neg_infinity |] }

let name_of h = h.h_name
let unit_of h = h.h_unit

let record h v =
  let i = bucket_index v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1;
  h.stats.(s_sum) <- h.stats.(s_sum) +. v;
  if v < h.stats.(s_min) then h.stats.(s_min) <- v;
  if v > h.stats.(s_max) then h.stats.(s_max) <- v

let reset h =
  Array.fill h.counts 0 n_buckets 0;
  h.total <- 0;
  h.stats.(s_sum) <- 0.0;
  h.stats.(s_min) <- Float.infinity;
  h.stats.(s_max) <- Float.neg_infinity

let count h = h.total
let sum h = h.stats.(s_sum)
let min_value h = if h.total = 0 then 0.0 else h.stats.(s_min)
let max_value h = if h.total = 0 then 0.0 else h.stats.(s_max)
let mean h = if h.total = 0 then 0.0 else h.stats.(s_sum) /. float_of_int h.total

(* Nearest-rank quantile estimated by bucket upper boundary: the returned
   value is >= the true quantile and at most one bucket ratio above it.
   Clamped to the exactly-tracked min/max so q=0/q=1 are exact. *)
let quantile h q =
  if h.total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.total))) in
    let rec find i seen =
      if i >= n_buckets then max_value h
      else
        let seen = seen + h.counts.(i) in
        if seen >= target then
          if i = overflow_bucket then max_value h
          else Float.min (bucket_upper i) (max_value h)
        else find (i + 1) seen
    in
    Float.max (min_value h) (find 0 0)
  end

let p50 h = quantile h 0.5
let p90 h = quantile h 0.9
let p99 h = quantile h 0.99

let buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then acc := (i, h.counts.(i)) :: !acc
  done;
  !acc

(* ---- Snapshots -------------------------------------------------------- *)

type snapshot = {
  s_count : int;
  s_sum : float;
  s_min : float; (* 0.0 when empty, never inf/NaN *)
  s_max : float;
  s_buckets : (int * int) list; (* (bucket index, count), ascending, counts > 0 *)
}

let snapshot h =
  { s_count = h.total; s_sum = sum h; s_min = min_value h; s_max = max_value h; s_buckets = buckets h }

let restore h s =
  reset h;
  h.total <- s.s_count;
  h.stats.(s_sum) <- s.s_sum;
  if s.s_count > 0 then begin
    h.stats.(s_min) <- s.s_min;
    h.stats.(s_max) <- s.s_max
  end;
  List.iter
    (fun (i, c) ->
      if i >= 0 && i < n_buckets then h.counts.(i) <- c)
    s.s_buckets
