(* Checkpoint/recovery execution driver.

   Applications route every parallel loop through [step]; the session
   records the loop descriptors as the program runs.  When a checkpoint is
   requested, the session consults the planner: with periodicity evidence it
   waits (within one period) for the cheapest trigger point, then snapshots
   the datasets the plan says to save — immediately for [Save_now], lazily
   at the first-touching loop for [Save_at] (their values are provably
   unchanged in between, which is also why recovery may restore everything
   at the trigger point).

   Recovery follows the paper: the application is simply restarted with a
   recovery session; [step] skips the body of every loop until the trigger
   point is reached, restores all saved datasets, and resumes normal
   execution. *)

module Descr = Am_core.Descr
module Obs = Am_obs.Obs
module Obs_counters = Am_obs.Counters
module Cat = Am_obs.Tracer

type snapshot_fns = {
  fetch : string -> float array; (* current value of a dataset, by name *)
  restore : string -> float array -> unit;
}

type phase =
  | Normal
  | Awaiting of { deadline : int } (* request accepted; choosing a trigger *)
  | Saving of { due : (int * string) list } (* deferred saves: (counter, dataset) *)
  | Fast_forward of { target : int }

type session = {
  fns : snapshot_fns;
  mutable counter : int;
  mutable phase : phase;
  mutable history : Descr.loop list; (* reversed *)
  store : (string, float array) Hashtbl.t;
  mutable trigger_at : int option; (* counter of the completed checkpoint *)
  gbl_log : (int, float array list) Hashtbl.t;
    (* Global reduction outputs per executed loop: fast-forwarding replays
       these instead of computing (the paper: skipped loops "only set the
       value of op_arg_gbl arguments"). *)
}

let create ~fns =
  {
    fns;
    counter = 0;
    phase = Normal;
    history = [];
    store = Hashtbl.create 16;
    trigger_at = None;
    gbl_log = Hashtbl.create 64;
  }

let counter s = s.counter
let trigger_at s = s.trigger_at

(* A made checkpoint is a complete restart image only once its deferred
   (Save_at) datasets have all been snapshotted. *)
let complete s =
  s.trigger_at <> None
  && (match s.phase with Saving _ -> false | Normal | Awaiting _ | Fast_forward _ -> true)
let saved_names s = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.store [])
let saved_units s = Hashtbl.fold (fun _ v acc -> acc + Array.length v) s.store 0

(* Ask for a checkpoint at the next opportunity. With periodic evidence the
   session may wait up to one period for a cheaper trigger. *)
let request_checkpoint s =
  match s.phase with
  | Normal ->
    let past = List.rev s.history in
    let deadline =
      match Planner.detect_period past with
      | None -> s.counter (* no evidence: trigger at the very next loop *)
      | Some period -> s.counter + period
    in
    s.phase <- Awaiting { deadline }
  | Awaiting _ | Saving _ | Fast_forward _ -> ()

(* Predicted future at the current position: the detected period repeated
   twice, starting from the current phase of the cycle. Falls back to the
   recorded past when the program is not periodic. *)
let predicted_future s =
  let past = Array.of_list (List.rev s.history) in
  let n = Array.length past in
  match Planner.detect_period (Array.to_list past) with
  | Some period when n >= period ->
    let start = s.counter mod period in
    Some (List.init (2 * period) (fun i -> past.(n - period + ((start + i) mod period))))
  | Some _ | None -> None

(* Units that would be saved if the checkpoint triggered right now. *)
let units_if_triggered_now s =
  match predicted_future s with
  | Some future -> (Planner.plan_at future ~trigger:0).Planner.units
  | None -> max_int

let snapshot s name =
  Obs_counters.incr Obs.checkpoint_snapshots;
  let traced = Obs.tracing () in
  if traced then Obs.begin_span ~cat:Cat.Checkpoint "snapshot";
  Hashtbl.replace s.store name (s.fns.fetch name);
  if traced then Obs.end_span ()

let begin_saving s =
  let future = predicted_future s in
  (match future with
  | None ->
    (* No structure to exploit: save every dataset ever modified. *)
    let past = List.rev s.history in
    List.iter
      (fun (d : Planner.dataset) ->
        if Planner.ever_modified past d.Planner.ds_name then
          snapshot s d.Planner.ds_name)
      (Planner.datasets past);
    s.phase <- Normal
  | Some future ->
    let plan = Planner.plan_at future ~trigger:0 in
    let due = ref [] in
    List.iter
      (fun ((d : Planner.dataset), decision) ->
        match decision with
        | Planner.Save_now -> snapshot s d.Planner.ds_name
        | Planner.Save_at offset ->
          due := (s.counter + offset, d.Planner.ds_name) :: !due
        | Planner.Drop | Planner.Not_saved -> ())
      plan.Planner.decisions;
    s.phase <- (if !due = [] then Normal else Saving { due = !due }));
  s.trigger_at <- Some s.counter

(* [gbl_out] lists the user buffers of the loop's reduction arguments
   (Inc/Min/Max globals): their post-loop values are logged on execution and
   replayed during fast-forward. *)
let step ?(gbl_out = []) s ~descr ~run =
  let run () =
    run ();
    if gbl_out <> [] then
      Hashtbl.replace s.gbl_log s.counter (List.map Array.copy gbl_out)
  in
  let replay_globals () =
    match Hashtbl.find_opt s.gbl_log s.counter with
    | None -> ()
    | Some logged ->
      if List.length logged <> List.length gbl_out then
        failwith
          (Printf.sprintf
             "Checkpoint replay mismatch at loop %d (%s): %d logged, %d expected"
             s.counter descr.Descr.loop_name (List.length logged)
             (List.length gbl_out));
      List.iter2
        (fun (dst : float array) src -> Array.blit src 0 dst 0 (Array.length dst))
        gbl_out logged
  in
  (* Deferred saves capture the value at *entry* of their loop: the planner
     only defers datasets whose first access reads, but that access may also
     modify (res is Inc-ed by the loop that first touches it), so the
     snapshot must precede the body. *)
  (match s.phase with
  | Saving { due } ->
    let remaining =
      List.filter
        (fun (at, name) ->
          if at = s.counter then begin
            snapshot s name;
            false
          end
          else true)
        due
    in
    s.phase <- (if remaining = [] then Normal else Saving { due = remaining })
  | Normal | Awaiting _ | Fast_forward _ -> ());
  (match s.phase with
  | Fast_forward { target } ->
    if s.counter >= target then begin
      (* Reached the checkpoint: restore all saved state and resume. *)
      Obs_counters.add Obs.checkpoint_restores (Hashtbl.length s.store);
      let traced = Obs.tracing () in
      if traced then Obs.begin_span ~cat:Cat.Checkpoint "restore";
      Hashtbl.iter (fun name data -> s.fns.restore name (Array.copy data)) s.store;
      if traced then Obs.end_span ();
      s.phase <- Normal;
      run ()
    end
    else
      (* Skip the body, but reproduce its global-reduction outputs. *)
      replay_globals ()
  | Awaiting { deadline } ->
    (* Trigger here if this is the cheapest point we will see before the
       deadline, or if the deadline has arrived. *)
    let units_now = units_if_triggered_now s in
    let cheaper_later =
      match predicted_future s with
      | None -> false
      | Some future ->
        let remaining = max 0 (deadline - s.counter) in
        let rec probe i best =
          if i > remaining then best
          else probe (i + 1) (min best (Planner.plan_at future ~trigger:i).Planner.units)
        in
        probe 1 max_int < units_now
    in
    if (not cheaper_later) || s.counter >= deadline then begin
      begin_saving s;
      run ()
    end
    else run ()
  | Saving _ | Normal -> run ());
  s.history <- descr :: s.history;
  s.counter <- s.counter + 1

(* A fresh session that replays the program and fast-forwards to the
   checkpoint made by [completed]. *)
let begin_recovery completed ~fns =
  match completed.trigger_at with
  | None -> invalid_arg "Checkpoint.Runtime.begin_recovery: no checkpoint was made"
  | Some target ->
    let s = create ~fns in
    Hashtbl.iter (fun k v -> Hashtbl.replace s.store k (Array.copy v)) completed.store;
    s.phase <- Fast_forward { target };
    s.trigger_at <- Some target;
    s

(* ---- File persistence --------------------------------------------------- *)

(* Checkpoints survive process death through the snapshot container
   (lib/sysio): the saved datasets plus a metadata entry holding the trigger
   position. *)

let trigger_key = "__checkpoint_trigger"
let gbl_prefix = "__gbl:"

let save_to_file s ~path =
  match s.trigger_at with
  | None -> invalid_arg "Checkpoint.Runtime.save_to_file: no checkpoint was made"
  | Some at ->
    (* The global log only matters up to the trigger (recovery resumes real
       execution there). *)
    let gbl_entries =
      Hashtbl.fold
        (fun counter buffers acc ->
          if counter >= at then acc
          else
            List.concat
              (List.mapi
                 (fun i buf -> [ (Printf.sprintf "%s%d:%d" gbl_prefix counter i, buf) ])
                 buffers)
            @ acc)
        s.gbl_log []
    in
    let entries =
      ((trigger_key, [| Float.of_int at |]) :: gbl_entries)
      @ Hashtbl.fold (fun name data acc -> (name, data) :: acc) s.store []
    in
    Am_sysio.Snapshot.save path entries

(* Build a recovery session from a checkpoint file (the restarted process
   never saw the original session). *)
let recover_from_file ~path ~fns =
  let entries = Am_sysio.Snapshot.load path in
  let target =
    match List.assoc_opt trigger_key entries with
    | Some [| at |] -> Float.to_int at
    | Some _ | None ->
      raise (Am_sysio.Snapshot.Corrupt "missing checkpoint trigger entry")
  in
  let s = create ~fns in
  List.iter
    (fun (name, data) ->
      if name = trigger_key then ()
      else if String.length name > String.length gbl_prefix
              && String.sub name 0 (String.length gbl_prefix) = gbl_prefix
      then begin
        match
          String.split_on_char ':'
            (String.sub name (String.length gbl_prefix)
               (String.length name - String.length gbl_prefix))
        with
        | [ counter; _index ] ->
          (* Entries were written in index order per counter and the file
             preserves ordering: append reconstructs the buffer list. *)
          let counter = int_of_string counter in
          let prev = Option.value ~default:[] (Hashtbl.find_opt s.gbl_log counter) in
          Hashtbl.replace s.gbl_log counter (prev @ [ data ])
        | _ -> raise (Am_sysio.Snapshot.Corrupt ("bad global log entry " ^ name))
      end
      else Hashtbl.replace s.store name data)
    entries;
  s.phase <- Fast_forward { target };
  s.trigger_at <- Some target;
  s
