lib/core/descr.ml: Access Float Hashtbl List Printf String
