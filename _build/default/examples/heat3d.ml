(* 3D heat diffusion with the Ops3 API: the 3D face of the OPS abstraction
   (blocks have "a number of dimensions (1D, 2D, 3D, etc.)").

   Run with:  dune exec examples/heat3d.exe *)

module Ops3 = Am_ops.Ops3
module Access = Am_core.Access

let () =
  let n = 24 in
  let ctx = Ops3.create () in
  let grid = Ops3.decl_block ctx ~name:"cube" in
  let u = Ops3.decl_dat ctx ~name:"u" ~block:grid ~xsize:n ~ysize:n ~zsize:n () in
  let w = Ops3.decl_dat ctx ~name:"w" ~block:grid ~xsize:n ~ysize:n ~zsize:n () in
  (* Hot ball in the centre of a cold cube. *)
  Ops3.init ctx u (fun x y z _ ->
      let d c = Float.of_int (c - (n / 2)) in
      if (d x ** 2.0) +. (d y ** 2.0) +. (d z ** 2.0) < 25.0 then 1.0 else 0.0);
  let interior = Ops3.interior u in
  for step = 1 to 100 do
    Ops3.par_loop ctx ~name:"diffuse" grid interior
      [
        Ops3.arg_dat u Ops3.stencil_7pt Access.Read;
        Ops3.arg_dat w Ops3.stencil_point Access.Write;
      ]
      (fun a ->
        let u = a.(0) in
        a.(1).(0) <-
          u.(0)
          +. (0.1 *. (u.(1) +. u.(2) +. u.(3) +. u.(4) +. u.(5) +. u.(6)
                      -. (6.0 *. u.(0)))));
    let total = [| 0.0 |] in
    Ops3.par_loop ctx ~name:"copy" grid interior
      [
        Ops3.arg_dat w Ops3.stencil_point Access.Read;
        Ops3.arg_dat u Ops3.stencil_point Access.Write;
        Ops3.arg_gbl ~name:"total" total Access.Inc;
      ]
      (fun a ->
        a.(1).(0) <- a.(0).(0);
        a.(2).(0) <- a.(2).(0) +. a.(0).(0));
    if step mod 25 = 0 then
      Printf.printf "step %3d: total heat %.4f, centre %.4f\n" step total.(0)
        (Ops3.get u ~x:(n / 2) ~y:(n / 2) ~z:(n / 2) ~c:0)
  done;
  (* The same program on the two distributed decompositions: z-slabs and
     the y x z pencil grid. *)
  let run_decomposed partition_fn =
  let ctx2 = Ops3.create () in
  let grid2 = Ops3.decl_block ctx2 ~name:"cube" in
  let u2 = Ops3.decl_dat ctx2 ~name:"u" ~block:grid2 ~xsize:n ~ysize:n ~zsize:n () in
  let w2 = Ops3.decl_dat ctx2 ~name:"w" ~block:grid2 ~xsize:n ~ysize:n ~zsize:n () in
  Ops3.init ctx2 u2 (fun x y z _ ->
      let d c = Float.of_int (c - (n / 2)) in
      if (d x ** 2.0) +. (d y ** 2.0) +. (d z ** 2.0) < 25.0 then 1.0 else 0.0);
  partition_fn ctx2;
  for _ = 1 to 100 do
    Ops3.par_loop ctx2 ~name:"diffuse" grid2 (Ops3.interior u2)
      [
        Ops3.arg_dat u2 Ops3.stencil_7pt Access.Read;
        Ops3.arg_dat w2 Ops3.stencil_point Access.Write;
      ]
      (fun a ->
        let u = a.(0) in
        a.(1).(0) <-
          u.(0)
          +. (0.1 *. (u.(1) +. u.(2) +. u.(3) +. u.(4) +. u.(5) +. u.(6)
                      -. (6.0 *. u.(0)))));
    Ops3.par_loop ctx2 ~name:"copy" grid2 (Ops3.interior u2)
      [
        Ops3.arg_dat w2 Ops3.stencil_point Access.Read;
        Ops3.arg_dat u2 Ops3.stencil_point Access.Write;
      ]
      (fun a -> a.(1).(0) <- a.(0).(0))
  done;
  Am_util.Fa.rel_discrepancy (Ops3.fetch_interior ctx u) (Ops3.fetch_interior ctx2 u2)
  in
  let d_slab = run_decomposed (fun c -> Ops3.partition c ~n_ranks:4 ~ref_zsize:n) in
  Printf.printf "slab-decomposed run matches sequential:   discrepancy %.3e\n" d_slab;
  assert (d_slab = 0.0);
  let d_pencil =
    run_decomposed (fun c ->
        Ops3.partition_pencil c ~py:2 ~pz:2 ~ref_ysize:n ~ref_zsize:n)
  in
  Printf.printf "pencil-decomposed run matches sequential: discrepancy %.3e\n" d_pencil;
  assert (d_pencil = 0.0)
