lib/perfmodel/machines.ml:
