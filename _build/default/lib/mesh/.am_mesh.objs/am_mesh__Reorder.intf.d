lib/mesh/reorder.mli: Csr
