lib/core/profile.ml: Am_util Float Hashtbl List Printf
