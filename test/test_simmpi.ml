(* Tests for the in-process message-passing simulator and halo engine. *)

module Comm = Am_simmpi.Comm
module Halo = Am_simmpi.Halo

let test_comm_fifo () =
  let c = Comm.create ~n_ranks:2 in
  Comm.send c ~src:0 ~dst:1 [| 1.0 |];
  Comm.send c ~src:0 ~dst:1 [| 2.0 |];
  Alcotest.(check (float 0.0)) "first" 1.0 (Comm.recv c ~src:0 ~dst:1).(0);
  Alcotest.(check (float 0.0)) "second" 2.0 (Comm.recv c ~src:0 ~dst:1).(0)

let test_comm_stats () =
  let c = Comm.create ~n_ranks:2 in
  Comm.send c ~src:0 ~dst:1 [| 1.0; 2.0; 3.0 |];
  let s = Comm.stats c in
  Alcotest.(check int) "messages" 1 s.Comm.messages;
  Alcotest.(check int) "bytes" 24 s.Comm.bytes;
  Comm.reset_stats c;
  Alcotest.(check int) "reset" 0 (Comm.stats c).Comm.messages

let test_comm_recv_empty_fails () =
  let c = Comm.create ~n_ranks:2 in
  Alcotest.check_raises "deadlock detected"
    (Failure "Comm.recv: no message pending from rank 1 to rank 0") (fun () ->
      ignore (Comm.recv c ~src:1 ~dst:0))

let test_comm_allreduce () =
  let c = Comm.create ~n_ranks:3 in
  Alcotest.(check (float 0.0)) "sum" 6.0 (Comm.allreduce_sum c [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 0.0)) "min" 1.0 (Comm.allreduce_min c [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 0.0)) "max" 3.0 (Comm.allreduce_max c [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check int) "reductions counted" 3 (Comm.stats c).Comm.reductions

let test_comm_drained () =
  let c = Comm.create ~n_ranks:2 in
  Alcotest.(check bool) "initially drained" true (Comm.all_drained c);
  Comm.send c ~src:0 ~dst:1 [| 0.0 |];
  Alcotest.(check bool) "pending" false (Comm.all_drained c);
  ignore (Comm.recv c ~src:0 ~dst:1);
  Alcotest.(check bool) "drained again" true (Comm.all_drained c)

(* ---- Non-blocking requests ---- *)

let test_isend_stays_in_flight () =
  let c = Comm.create ~n_ranks:2 in
  let sreq = Comm.isend c ~src:0 ~dst:1 [| 1.0; 2.0 |] in
  (* Staged, not delivered — but already counted and visible as pending. *)
  Alcotest.(check int) "in flight" 1 (Comm.in_flight c ~src:0 ~dst:1);
  Alcotest.(check int) "pending counts staged" 1 (Comm.pending c ~src:0 ~dst:1);
  Alcotest.(check bool) "not drained" false (Comm.all_drained c);
  Alcotest.(check int) "bytes at post time" 16 (Comm.stats c).Comm.bytes;
  Alcotest.(check int) "request bytes" 16 (Comm.request_bytes sreq);
  let rreq = Comm.irecv c ~src:0 ~dst:1 in
  Alcotest.(check (option reject)) "no payload before wait" None
    (Comm.request_payload rreq);
  let payload = Comm.wait c rreq in
  Alcotest.(check (float 0.0)) "payload" 2.0 payload.(1);
  Alcotest.(check (float 0.0)) "payload cached" 2.0
    (Comm.wait c rreq).(1);
  ignore (Comm.wait c sreq);
  Alcotest.(check bool) "drained after waits" true (Comm.all_drained c)

let test_wait_never_posted_deadlocks () =
  let c = Comm.create ~n_ranks:2 in
  let req = Comm.irecv c ~src:1 ~dst:0 in
  Alcotest.check_raises "deadlock detected"
    (Failure "Comm.wait: deadlock: no message in flight from rank 1 to rank 0")
    (fun () -> ignore (Comm.wait c req))

let test_recv_sees_staged_messages () =
  (* A blocking [recv] must find messages that were only isend-staged. *)
  let c = Comm.create ~n_ranks:2 in
  ignore (Comm.isend c ~src:0 ~dst:1 [| 7.0 |]);
  Alcotest.(check (float 0.0)) "recv delivers staged" 7.0
    (Comm.recv c ~src:0 ~dst:1).(0)

let test_channel_fifo_with_mixed_sends () =
  (* FIFO holds within a channel whatever the delivery schedule. *)
  let c = Comm.create ~n_ranks:2 in
  ignore (Comm.isend c ~src:0 ~dst:1 [| 1.0 |]);
  ignore (Comm.isend c ~src:0 ~dst:1 [| 2.0 |]);
  ignore (Comm.deliver_one c ~src:0 ~dst:1);
  ignore (Comm.isend c ~src:0 ~dst:1 [| 3.0 |]);
  Alcotest.(check (float 0.0)) "first" 1.0 (Comm.recv c ~src:0 ~dst:1).(0);
  Alcotest.(check (float 0.0)) "second" 2.0 (Comm.recv c ~src:0 ~dst:1).(0);
  Alcotest.(check (float 0.0)) "third" 3.0 (Comm.recv c ~src:0 ~dst:1).(0)

let test_waitall_and_channels () =
  let c = Comm.create ~n_ranks:3 in
  ignore (Comm.isend c ~src:2 ~dst:0 [| 3.0 |]);
  ignore (Comm.isend c ~src:0 ~dst:1 [| 1.0 |]);
  Alcotest.(check (list (pair int int))) "channels in (src, dst) order"
    [ (0, 1); (2, 0) ]
    (Comm.in_flight_channels c);
  let r1 = Comm.irecv c ~src:0 ~dst:1 in
  let r2 = Comm.irecv c ~src:2 ~dst:0 in
  Comm.waitall c [ r1; r2 ];
  Alcotest.(check (option (float 0.0))) "r1 payload" (Some 1.0)
    (Option.map (fun p -> p.(0)) (Comm.request_payload r1));
  Alcotest.(check (option (float 0.0))) "r2 payload" (Some 3.0)
    (Option.map (fun p -> p.(0)) (Comm.request_payload r2));
  Alcotest.(check bool) "drained" true (Comm.all_drained c)

(* Two ranks, each owning 2 elements plus 1 halo slot mirroring the peer's
   first element:
     rank 0 local: [o0; o1; h(=peer slot 0)]
     rank 1 local: [o0; o1; h(=peer slot 0)] *)
let two_rank_plan () =
  Halo.create ~n_ranks:2
    ~exports:[| [| [||]; [| 0 |] |]; [| [| 0 |]; [||] |] |]
    ~imports:[| [| [||]; [| 2 |] |]; [| [| 2 |]; [||] |] |]

let test_halo_exchange () =
  let plan = two_rank_plan () in
  let data = [| [| 10.0; 11.0; 0.0 |]; [| 20.0; 21.0; 0.0 |] |] in
  let c = Comm.create ~n_ranks:2 in
  Halo.exchange c plan ~dim:1 data;
  Alcotest.(check (float 0.0)) "rank0 halo" 20.0 data.(0).(2);
  Alcotest.(check (float 0.0)) "rank1 halo" 10.0 data.(1).(2);
  Alcotest.(check bool) "all delivered" true (Comm.all_drained c)

let test_halo_reduce () =
  let plan = two_rank_plan () in
  (* Halo slots hold partial contributions for the peer's element 0. *)
  let data = [| [| 1.0; 0.0; 5.0 |]; [| 2.0; 0.0; 7.0 |] |] in
  let c = Comm.create ~n_ranks:2 in
  Halo.reduce c plan ~dim:1 data;
  Alcotest.(check (float 0.0)) "rank0 owner accumulated" (1.0 +. 7.0) data.(0).(0);
  Alcotest.(check (float 0.0)) "rank1 owner accumulated" (2.0 +. 5.0) data.(1).(0)

let test_halo_exchange_dim2 () =
  let plan = two_rank_plan () in
  let data =
    [| [| 1.0; 2.0; 3.0; 4.0; 0.0; 0.0 |]; [| 5.0; 6.0; 7.0; 8.0; 0.0; 0.0 |] |]
  in
  let c = Comm.create ~n_ranks:2 in
  Halo.exchange c plan ~dim:2 data;
  Alcotest.(check (float 0.0)) "component 0" 5.0 data.(0).(4);
  Alcotest.(check (float 0.0)) "component 1" 6.0 data.(0).(5)

let test_halo_volume_and_peers () =
  let plan = two_rank_plan () in
  Alcotest.(check int) "volume" 2 (Halo.volume plan);
  Alcotest.(check int) "peers" 1 (Halo.max_peers plan)

let test_halo_shape_mismatch_rejected () =
  Alcotest.check_raises "export/import mismatch"
    (Invalid_argument "Halo.create: export 0->1 does not match import") (fun () ->
      ignore
        (Halo.create ~n_ranks:2
           ~exports:[| [| [||]; [| 0; 1 |] |]; [| [||]; [||] |] |]
           ~imports:[| [| [||]; [||] |]; [| [| 2 |]; [||] |] |]))

let test_exchange_then_reduce_roundtrip () =
  (* Property-style check on a ring of 4 ranks, each owning 3 elements and
     importing the "previous" rank's last element. *)
  let n_ranks = 4 in
  let exports = Array.init n_ranks (fun _ -> Array.make n_ranks [||]) in
  let imports = Array.init n_ranks (fun _ -> Array.make n_ranks [||]) in
  for r = 0 to n_ranks - 1 do
    let next = (r + 1) mod n_ranks in
    exports.(r).(next) <- [| 2 |];
    imports.(next).(r) <- [| 3 |]
  done;
  let plan = Halo.create ~n_ranks ~exports ~imports in
  let data = Array.init n_ranks (fun r -> [| Float.of_int r; 0.0; 10.0 *. Float.of_int r; 0.0 |]) in
  let c = Comm.create ~n_ranks in
  Halo.exchange c plan ~dim:1 data;
  for r = 0 to n_ranks - 1 do
    let prev = (r + n_ranks - 1) mod n_ranks in
    Alcotest.(check (float 0.0)) "halo holds prev rank's value"
      (10.0 *. Float.of_int prev) data.(r).(3)
  done;
  (* Now accumulate 1.0 in every halo slot and reduce: every owner's slot 2
     gains exactly 1.0. *)
  let before = Array.map (fun d -> d.(2)) data in
  Array.iter (fun d -> d.(3) <- 1.0) data;
  Halo.reduce c plan ~dim:1 data;
  for r = 0 to n_ranks - 1 do
    Alcotest.(check (float 0.0)) "owner gained contribution" (before.(r) +. 1.0)
      data.(r).(2)
  done

let () =
  Alcotest.run "simmpi"
    [
      ( "comm",
        [
          Alcotest.test_case "fifo" `Quick test_comm_fifo;
          Alcotest.test_case "stats" `Quick test_comm_stats;
          Alcotest.test_case "recv empty fails" `Quick test_comm_recv_empty_fails;
          Alcotest.test_case "allreduce" `Quick test_comm_allreduce;
          Alcotest.test_case "drained" `Quick test_comm_drained;
          Alcotest.test_case "isend stays in flight" `Quick test_isend_stays_in_flight;
          Alcotest.test_case "wait never-posted deadlocks" `Quick
            test_wait_never_posted_deadlocks;
          Alcotest.test_case "recv sees staged" `Quick test_recv_sees_staged_messages;
          Alcotest.test_case "channel fifo mixed" `Quick
            test_channel_fifo_with_mixed_sends;
          Alcotest.test_case "waitall and channels" `Quick test_waitall_and_channels;
        ] );
      ( "halo",
        [
          Alcotest.test_case "exchange" `Quick test_halo_exchange;
          Alcotest.test_case "reduce" `Quick test_halo_reduce;
          Alcotest.test_case "exchange dim=2" `Quick test_halo_exchange_dim2;
          Alcotest.test_case "volume/peers" `Quick test_halo_volume_and_peers;
          Alcotest.test_case "shape mismatch" `Quick test_halo_shape_mismatch_rejected;
          Alcotest.test_case "ring roundtrip" `Quick test_exchange_then_reduce_roundtrip;
        ] );
    ]
