lib/experiments/registry.ml: Ablations Extensions Figures List Measured Printf
