(* Execution engines of the OPS backends.

   All engines share one element runner: per argument the kernel receives a
   staging buffer gathered through the argument's stencil, and written
   arguments (always center-only stencils, enforced by validation) are
   scattered back after the call.  Because writes target only the iteration
   point, structured loops are race-free under any disjoint partition of the
   range — no colouring is needed, which is why OPS parallelises rows
   directly (and why its OpenMP backend handles NUMA better than hand-coded
   code, Fig 5).

   Data is addressed through affine [view]s (base + y*row + x*col), so each
   argument compiles to one [int array] of flat offsets — one delta per
   stencil point — and the gather is a straight indexed copy with no closure
   call or index arithmetic beyond a single base computation per point.  The
   distributed backend substitutes rank-local window views (which are affine
   too) without touching the traversal logic.  Inner loops use unsafe
   indexing; [validate_args] proves every stencil stays inside the
   addressable padded box over the whole range before execution starts. *)

module Access = Am_core.Access
open Types

(* Affine addressing window: component [c] of logical point (x, y) lives at
   [vbase + y*vrow + x*vcol + c] in [vdata]. *)
type view = { vdata : float array; vbase : int; vrow : int; vcol : int }

let dat_view dat =
  let pw = dat.xsize + (2 * dat.halo) in
  {
    vdata = dat.data;
    vbase = ((dat.halo * pw) + dat.halo) * dat.dim;
    vrow = pw * dat.dim;
    vcol = dat.dim;
  }

(* Bounds-checked accessors for the cold paths (tile staging, write-back). *)
let vget v ~x ~y ~c = v.vdata.(v.vbase + (y * v.vrow) + (x * v.vcol) + c)
let vset v ~x ~y ~c value = v.vdata.(v.vbase + (y * v.vrow) + (x * v.vcol) + c) <- value

type compiled_arg =
  | C_dat of {
      view : view;
      dim : int;
      stencil : stencil;
      access : Access.t;
      stride : stride;
      gather : float array -> int -> int -> unit; (* staging buffer, x, y *)
      scatter : float array -> int -> int -> unit;
    }
  | C_gbl of { user_buf : float array; access : Access.t }
  | C_idx

type resolvers = { resolve_dat : dat -> view }

let global_resolvers = { resolve_dat = dat_view }

let ignore3 _ _ _ = ()

(* Per-stencil-point flat deltas from the iteration point's base index. *)
let build_offsets view stencil =
  Array.map (fun (dx, dy) -> (dy * view.vrow) + (dx * view.vcol)) stencil

let build_gather view ~dim ~stencil ~access ~stride =
  let { vdata; vbase; vrow; vcol } = view in
  let offsets = build_offsets view stencil in
  let np = Array.length offsets in
  match access with
  | Access.Inc ->
    if dim = 1 then fun buf _ _ -> Array.unsafe_set buf 0 0.0
    else fun buf _ _ -> Array.fill buf 0 dim 0.0
  | Access.Read | Access.Rw | Access.Write ->
    if is_unit_stride stride then begin
      if np = 1 && dim = 1 then
        let o = offsets.(0) in
        fun buf x y ->
          Array.unsafe_set buf 0
            (Array.unsafe_get vdata (vbase + (y * vrow) + (x * vcol) + o))
      else if dim = 1 then
        fun buf x y ->
          let base = vbase + (y * vrow) + (x * vcol) in
          for p = 0 to np - 1 do
            Array.unsafe_set buf p
              (Array.unsafe_get vdata (base + Array.unsafe_get offsets p))
          done
      else
        fun buf x y ->
          let base = vbase + (y * vrow) + (x * vcol) in
          for p = 0 to np - 1 do
            let src = base + Array.unsafe_get offsets p in
            for d = 0 to dim - 1 do
              Array.unsafe_set buf ((p * dim) + d) (Array.unsafe_get vdata (src + d))
            done
          done
    end
    else
      fun buf x y ->
        let bx, by = apply_stride stride ~x ~y in
        let base = vbase + (by * vrow) + (bx * vcol) in
        for p = 0 to np - 1 do
          let src = base + Array.unsafe_get offsets p in
          for d = 0 to dim - 1 do
            Array.unsafe_set buf ((p * dim) + d) (Array.unsafe_get vdata (src + d))
          done
        done
  | Access.Min | Access.Max -> invalid_arg "ops: Min/Max access on a dataset"

(* Scatters are center-only and unit-stride by validation. *)
let build_scatter view ~dim ~access =
  let { vdata; vbase; vrow; vcol } = view in
  match access with
  | Access.Read -> ignore3
  | Access.Write | Access.Rw ->
    if dim = 1 then
      fun buf x y ->
        Array.unsafe_set vdata (vbase + (y * vrow) + (x * vcol)) (Array.unsafe_get buf 0)
    else
      fun buf x y ->
        let base = vbase + (y * vrow) + (x * vcol) in
        for d = 0 to dim - 1 do
          Array.unsafe_set vdata (base + d) (Array.unsafe_get buf d)
        done
  | Access.Inc ->
    if dim = 1 then
      fun buf x y ->
        let j = vbase + (y * vrow) + (x * vcol) in
        Array.unsafe_set vdata j (Array.unsafe_get vdata j +. Array.unsafe_get buf 0)
    else
      fun buf x y ->
        let base = vbase + (y * vrow) + (x * vcol) in
        for d = 0 to dim - 1 do
          let j = base + d in
          Array.unsafe_set vdata j (Array.unsafe_get vdata j +. Array.unsafe_get buf d)
        done
  | Access.Min | Access.Max -> invalid_arg "ops: Min/Max access on a dataset"

let compile_dat view ~dim ~stencil ~access ~stride =
  C_dat
    {
      view; dim; stencil; access; stride;
      gather = build_gather view ~dim ~stencil ~access ~stride;
      scatter = build_scatter view ~dim ~access;
    }

let compile ?(resolvers = global_resolvers) args =
  let one = function
    | Arg_dat { dat; stencil; access; stride } ->
      compile_dat (resolvers.resolve_dat dat) ~dim:dat.dim ~stencil ~access ~stride
    | Arg_gbl { buf; access; _ } -> C_gbl { user_buf = buf; access }
    | Arg_idx -> C_idx
  in
  Array.of_list (List.map one args)

(* Freshness of a cached executor against the live arguments: dataset
   backing arrays are compared physically (window substitution or any data
   replacement invalidates). *)
let compiled_matches compiled args =
  Array.length compiled = List.length args
  && List.for_all2
       (fun c arg ->
         match (c, arg) with
         | C_dat cd, Arg_dat { dat; stencil; access; stride } ->
           cd.view.vdata == dat.data && cd.access = access && cd.stencil = stencil
           && cd.stride = stride
         | C_gbl cg, Arg_gbl { buf; access; _ } ->
           cg.user_buf == buf && cg.access = access
         | C_idx, Arg_idx -> true
         | (C_dat _ | C_gbl _ | C_idx), _ -> false)
       (Array.to_list compiled) args

let has_globals compiled =
  Array.exists (function C_gbl _ -> true | C_dat _ | C_idx -> false) compiled

let make_buffers compiled =
  Array.map
    (function
      | C_dat { dim; stencil; _ } -> Array.make (dim * Array.length stencil) 0.0
      | C_idx -> Array.make 2 0.0
      | C_gbl { user_buf; access } -> (
        match access with
        | Access.Read | Access.Min | Access.Max -> Array.copy user_buf
        | Access.Inc -> Array.make (Array.length user_buf) 0.0
        | Access.Write | Access.Rw ->
          invalid_arg "ops: Write/Rw access on a global argument"))
    compiled

let merge_globals compiled buffers =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ | C_idx -> ()
      | C_gbl { user_buf; access } -> (
        let acc = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- user_buf.(d) +. acc.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.min user_buf.(d) acc.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.max user_buf.(d) acc.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

(* One level of the per-worker reduction tree: fold [src]'s global partials
   into [dst]'s (Inc/Min/Max are associative and commutative). *)
let combine_globals compiled dst src =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ | C_idx -> ()
      | C_gbl { access; _ } -> (
        let a = dst.(i) and b = src.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length a - 1 do
            a.(d) <- a.(d) +. b.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length a - 1 do
            a.(d) <- Float.min a.(d) b.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length a - 1 do
            a.(d) <- Float.max a.(d) b.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

(* Pairwise tree reduction of per-worker accumulator sets into the user
   buffers (replaces the mutex-serialised per-chunk merge). *)
let merge_worker_globals compiled states =
  match states with
  | [] -> ()
  | states ->
    let traced = Am_obs.Obs.tracing () in
    if traced then Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Reduce "merge_globals";
    let arr = Array.of_list states in
    let n = ref (Array.length arr) in
    while !n > 1 do
      let half = (!n + 1) / 2 in
      for i = 0 to !n - half - 1 do
        combine_globals compiled arr.(i) arr.(half + i)
      done;
      n := half
    done;
    merge_globals compiled arr.(0);
    if traced then Am_obs.Obs.end_span ()

let run_point compiled buffers kernel x y =
  for i = 0 to Array.length compiled - 1 do
    match Array.unsafe_get compiled i with
    | C_dat { gather; _ } -> gather (Array.unsafe_get buffers i) x y
    | C_idx ->
      let buf = Array.unsafe_get buffers i in
      buf.(0) <- Float.of_int x;
      buf.(1) <- Float.of_int y
    | C_gbl _ -> ()
  done;
  kernel buffers;
  for i = 0 to Array.length compiled - 1 do
    match Array.unsafe_get compiled i with
    | C_dat { scatter; _ } -> scatter (Array.unsafe_get buffers i) x y
    | C_gbl _ | C_idx -> ()
  done

(* Slab runner for the lazy-chain tiled executor: the caller owns the
   compiled arguments and staging buffers — which persist across slabs so
   global accumulations keep the eager traversal order — and merges
   globals once after the whole chain. *)
let run_range compiled buffers ~range ~kernel =
  for y = range.ylo to range.yhi - 1 do
    for x = range.xlo to range.xhi - 1 do
      run_point compiled buffers kernel x y
    done
  done

(* ---- Sequential ----------------------------------------------------- *)

let run_seq ?resolvers ?compiled ~range ~args ~kernel () =
  let compiled =
    match compiled with Some c -> c | None -> compile ?resolvers args
  in
  let buffers = make_buffers compiled in
  for y = range.ylo to range.yhi - 1 do
    for x = range.xlo to range.xhi - 1 do
      run_point compiled buffers kernel x y
    done
  done;
  if has_globals compiled then merge_globals compiled buffers

(* ---- Shared memory ("OpenMP") --------------------------------------- *)

let run_shared ?resolvers ?compiled pool ~range ~args ~kernel =
  let compiled =
    match compiled with Some c -> c | None -> compile ?resolvers args
  in
  let states =
    Am_taskpool.Pool.parallel_for_local pool ~lo:range.ylo ~hi:range.yhi
      ~local:(fun () -> make_buffers compiled)
      ~body:(fun buffers ylo yhi ->
        for y = ylo to yhi - 1 do
          for x = range.xlo to range.xhi - 1 do
            run_point compiled buffers kernel x y
          done
        done)
  in
  if has_globals compiled then merge_worker_globals compiled states

(* ---- GPU simulator --------------------------------------------------- *)

type cuda_strategy = Cuda_global | Cuda_tiled

type cuda_config = { tile_x : int; tile_y : int; strategy : cuda_strategy }

let default_cuda_config = { tile_x = 32; tile_y = 4; strategy = Cuda_tiled }

(* Staged tile execution: every dataset argument is copied (with the
   stencil-extent ring) into a scratch tile, the kernel works on the
   scratch, and written center regions are copied back — the structure of
   OPS's shared-memory CUDA kernels. *)
let run_cuda ?compiled config ~range ~args ~kernel =
  let compiled =
    match compiled with Some c -> c | None -> compile args
  in
  let buffers = make_buffers compiled in
  let xtiles = (range.xhi - range.xlo + config.tile_x - 1) / config.tile_x in
  let ytiles = (range.yhi - range.ylo + config.tile_y - 1) / config.tile_y in
  for ty = 0 to ytiles - 1 do
    for tx = 0 to xtiles - 1 do
      let txlo = range.xlo + (tx * config.tile_x) in
      let txhi = min range.xhi (txlo + config.tile_x) in
      let tylo = range.ylo + (ty * config.tile_y) in
      let tyhi = min range.yhi (tylo + config.tile_y) in
      let tile = { xlo = txlo; xhi = txhi; ylo = tylo; yhi = tyhi } in
      match config.strategy with
      | Cuda_global ->
        for y = tile.ylo to tile.yhi - 1 do
          for x = tile.xlo to tile.xhi - 1 do
            run_point compiled buffers kernel x y
          done
        done
      | Cuda_tiled ->
        (* Build a staged view per dataset argument.  The gather covers the
           tile plus the stencil-extent ring, clamped to the dataset's
           addressable box: ring corners the stencil never reaches may fall
           outside the ghost ring when the range itself extends into it
           (validation guarantees actual reads stay inside). *)
        let args_arr = Array.of_list args in
        let staged =
          Array.mapi
            (fun i c ->
              match c with
              | C_dat { stride; _ } when not (is_unit_stride stride) ->
                (* Grid-transfer reads bypass the scratch tile (their
                   footprint is not tile-shaped); they read global memory
                   directly, as OPS's generated multigrid kernels do. *)
                c
              | C_dat { view; dim; stencil; access; stride; _ } ->
                let dat =
                  match args_arr.(i) with
                  | Arg_dat { dat; _ } -> dat
                  | Arg_gbl _ | Arg_idx -> assert false
                in
                let ext = stencil_extent stencil in
                let sxlo = tile.xlo - ext and sxhi = tile.xhi + ext in
                let sylo = tile.ylo - ext and syhi = tile.yhi + ext in
                let w = sxhi - sxlo in
                let scratch = Array.make (w * (syhi - sylo) * dim) 0.0 in
                let sview =
                  {
                    vdata = scratch;
                    vbase = (((-sylo) * w) - sxlo) * dim;
                    vrow = w * dim;
                    vcol = dim;
                  }
                in
                if Access.reads access || access = Access.Write then begin
                  let gxlo = max sxlo (x_min dat) and gxhi = min sxhi (x_max dat) in
                  let gylo = max sylo (y_min dat) and gyhi = min syhi (y_max dat) in
                  for y = gylo to gyhi - 1 do
                    for x = gxlo to gxhi - 1 do
                      for c = 0 to dim - 1 do
                        vset sview ~x ~y ~c (vget view ~x ~y ~c)
                      done
                    done
                  done
                end;
                compile_dat sview ~dim ~stencil ~access ~stride
              | (C_gbl _ | C_idx) as c -> c)
            compiled
        in
        for y = tile.ylo to tile.yhi - 1 do
          for x = tile.xlo to tile.xhi - 1 do
            run_point staged buffers kernel x y
          done
        done;
        (* Write back center regions of written datasets; increment-only
           scratch tiles start from zero, so they are added. *)
        Array.iteri
          (fun i c ->
            match (c, staged.(i)) with
            | C_dat { view; dim; access; _ }, C_dat { view = sview; _ }
              when Access.writes access ->
              for y = tile.ylo to tile.yhi - 1 do
                for x = tile.xlo to tile.xhi - 1 do
                  for d = 0 to dim - 1 do
                    let v = vget sview ~x ~y ~c:d in
                    if access = Access.Inc then
                      vset view ~x ~y ~c:d (vget view ~x ~y ~c:d +. v)
                    else vset view ~x ~y ~c:d v
                  done
                done
              done
            | _ -> ())
          compiled
    done
  done;
  if has_globals compiled then merge_globals compiled buffers
