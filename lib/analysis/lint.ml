(* Layer 1: per-loop descriptor lints.

   Operates on the backend-independent [Descr.loop] plus (when available)
   the concrete map tables, so it can decide questions the descriptor alone
   cannot: whether a Write/Rw through a map is a definite race (two
   iteration elements sharing a target — the same conflict discovery the
   plan's two-level colouring performs, but reported as a diagnostic with a
   witness instead of silently serialised), and whether two arguments
   reaching the same dataset through different map components alias with
   incompatible access modes. *)

module Access = Am_core.Access
module Descr = Am_core.Descr

(* Concrete connectivity of one map, resolved from the executing context
   (or synthesised in tests). *)
type map_info = {
  mi_name : string;
  mi_arity : int;
  mi_values : int array;
}

let find_map maps name = List.find_opt (fun m -> m.mi_name = name) maps

(* The flat target element the [i]-th argument touches at iteration element
   [e], when that is a well-defined single element: Some for Direct
   (element [e] itself) and Indirect (map lookup); None for stencil and
   global arguments. *)
let column maps (a : Descr.arg) : (int -> int) option =
  match a.Descr.kind with
  | Descr.Direct -> Some (fun e -> e)
  | Descr.Indirect { map_name; map_index; _ } -> (
    match find_map maps map_name with
    | None -> None
    | Some m -> Some (fun e -> m.mi_values.((e * m.mi_arity) + map_index)))
  | Descr.Stencil _ | Descr.Global -> None

(* Mode legality — a backstop behind the argument constructors, and the
   only enforcement for descriptors that arrive from a recorded trace. *)
let check_modes (loop : Descr.loop) =
  List.concat
    (List.mapi
       (fun i (a : Descr.arg) ->
         match a.Descr.kind with
         | Descr.Global ->
           if Access.valid_on_gbl a.Descr.access then []
           else
             [
               Finding.make ~layer:Finding.Descriptor ~severity:Finding.Error
                 ~loop:loop.Descr.loop_name ~arg:i ~subject:a.Descr.dat_name
                 (Printf.sprintf "access %s is not valid on a global argument"
                    (Access.to_string a.Descr.access));
             ]
         | Descr.Direct | Descr.Indirect _ | Descr.Stencil _ ->
           if Access.valid_on_dat a.Descr.access then []
           else
             [
               Finding.make ~layer:Finding.Descriptor ~severity:Finding.Error
                 ~loop:loop.Descr.loop_name ~arg:i ~subject:a.Descr.dat_name
                 (Printf.sprintf
                    "access %s is not valid on a dataset argument (Min/Max are \
                     global reductions)"
                    (Access.to_string a.Descr.access));
             ])
       loop.Descr.args)

(* Write/Rw through a many-to-one map component: two iteration elements
   write the same target element, so the result depends on execution order
   on every backend — colouring serialises the writes but cannot decide
   which value should win.  (Inc is excluded: increments commute, and the
   plan exists precisely to scatter them race-free.) *)
let check_many_to_one maps (loop : Descr.loop) =
  List.concat
    (List.mapi
       (fun i (a : Descr.arg) ->
         match (a.Descr.kind, a.Descr.access) with
         | Descr.Indirect { map_name; map_index; _ }, (Access.Write | Access.Rw) -> (
           match find_map maps map_name with
           | None ->
             [
               Finding.make ~layer:Finding.Descriptor ~severity:Finding.Info
                 ~loop:loop.Descr.loop_name ~arg:i ~subject:a.Descr.dat_name
                 (Printf.sprintf
                    "%s through map %s#%d cannot be verified race-free (map \
                     table not available to the analysis)"
                    (Access.to_string a.Descr.access) map_name map_index);
             ]
           | Some m ->
             let n = min loop.Descr.set_size (Array.length m.mi_values / m.mi_arity) in
             let seen = Hashtbl.create (2 * n) in
             let finding = ref [] in
             (try
                for e = 0 to n - 1 do
                  let t = m.mi_values.((e * m.mi_arity) + map_index) in
                  match Hashtbl.find_opt seen t with
                  | Some e0 ->
                    finding :=
                      [
                        Finding.make ~layer:Finding.Descriptor
                          ~severity:Finding.Error ~loop:loop.Descr.loop_name
                          ~arg:i ~subject:a.Descr.dat_name
                          (Printf.sprintf
                             "definite race: %s through many-to-one map %s#%d — \
                              elements %d and %d both write target element %d \
                              (declare Inc, or restructure so the map is \
                              one-to-one over the iteration set)"
                             (Access.to_string a.Descr.access) map_name map_index
                             e0 e t);
                      ];
                    raise Exit
                  | None -> Hashtbl.add seen t e
                done
              with Exit -> ());
             !finding)
         | _ -> [])
       loop.Descr.args)

(* Two arguments reaching the same dataset with incompatible modes through
   overlapping targets.  Overlap between *different* iteration elements
   with a write involved is a race (the colouring arena only separates
   write-write conflicts between the declared conflict args; a Read
   argument is not protected from another element's concurrent write).
   Overlap only ever within one element (e.g. the two endpoints of a
   degenerate edge, or Direct Read + Direct Write of the same dat) is
   sequentially well-defined — gathers precede scatters — but worth a
   warning because staged backends may reorder the observation. *)
let check_aliasing maps (loop : Descr.loop) =
  let args = Array.of_list loop.Descr.args in
  let findings = ref [] in
  let n_args = Array.length args in
  for i = 0 to n_args - 1 do
    for j = i + 1 to n_args - 1 do
      let a = args.(i) and b = args.(j) in
      if
        a.Descr.dat_id >= 0 && a.Descr.dat_id = b.Descr.dat_id
        && (Access.writes a.Descr.access || Access.writes b.Descr.access)
        && not (a.Descr.access = Access.Inc && b.Descr.access = Access.Inc)
      then
        match (column maps a, column maps b) with
        | Some col_a, Some col_b ->
          let n = loop.Descr.set_size in
          let targets_a = Hashtbl.create (2 * n) in
          for e = 0 to n - 1 do
            let t = col_a e in
            if not (Hashtbl.mem targets_a t) then Hashtbl.add targets_a t e
          done;
          let cross = ref None and same = ref None in
          (try
             for e = 0 to n - 1 do
               let t = col_b e in
               match Hashtbl.find_opt targets_a t with
               | Some e0 when e0 <> e ->
                 cross := Some (e0, e, t);
                 raise Exit
               | Some e0 -> if !same = None then same := Some (e0, t)
               | None -> ()
             done
           with Exit -> ());
          (match (!cross, !same) with
          | Some (e0, e, t), _ ->
            findings :=
              Finding.make ~layer:Finding.Descriptor ~severity:Finding.Error
                ~loop:loop.Descr.loop_name ~arg:j ~subject:a.Descr.dat_name
                (Printf.sprintf
                   "race: args %d (%s) and %d (%s) reach dataset %s with \
                    incompatible modes — element %d through arg %d and element \
                    %d through arg %d both touch target element %d"
                   i (Access.to_string a.Descr.access) j
                   (Access.to_string b.Descr.access) a.Descr.dat_name e0 i e j t)
              :: !findings
          | None, Some (e, t) ->
            (* Overlap only ever within one iteration element: gathers
               precede scatters per element on every backend, so this is
               well-defined — just a sloppier declaration than a single Rw
               argument. *)
            findings :=
              Finding.make ~layer:Finding.Descriptor ~severity:Finding.Info
                ~loop:loop.Descr.loop_name ~arg:j ~subject:a.Descr.dat_name
                (Printf.sprintf
                   "aliased arguments: args %d (%s) and %d (%s) reach the same \
                    element %d of dataset %s from iteration element %d (never \
                    across elements) — consider declaring one %s argument \
                    instead"
                   i (Access.to_string a.Descr.access) j
                   (Access.to_string b.Descr.access) t a.Descr.dat_name e
                   (Access.to_string Access.Rw))
              :: !findings
          | None, None -> ())
        | _ -> ()
    done
  done;
  List.rev !findings

(* All per-loop lints. [maps] supplies concrete connectivity; without it the
   map-dependent checks degrade to Info-level "unverified" findings. *)
let lint ?(maps = []) (loop : Descr.loop) =
  check_modes loop @ check_many_to_one maps loop @ check_aliasing maps loop
