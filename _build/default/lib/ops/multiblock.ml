(* Inter-block halos.

   OPS applications declare how datasets on *different* blocks abut: a halo
   couples a rectangular face of one dataset to a face of another, with an
   orientation describing how indices map across the interface.  Transfers
   are triggered explicitly by the application (the paper: "inter-block halo
   exchanges are triggered explicitly by the user and serve as
   synchronization points"). *)

open Types

(* Index transform across the interface: the destination point is
   [dst_origin + M * (p - src_origin)] where [M] encodes axis permutation
   and flips. *)
type orientation = {
  xx : int; (* contribution of source dx to destination dx: -1, 0 or 1 *)
  xy : int;
  yx : int;
  yy : int;
}

let identity_orientation = { xx = 1; xy = 0; yx = 0; yy = 1 }

type halo = {
  halo_name : string;
  src : dat;
  dst : dat;
  src_range : range; (* face on the source, ghost rows allowed *)
  dst_range : range; (* matching face on the destination *)
  orientation : orientation;
}

let transformed_extent o r =
  let w = r.xhi - r.xlo and h = r.yhi - r.ylo in
  (abs ((o.xx * w) + (o.xy * h)), abs ((o.yx * w) + (o.yy * h)))

let decl_halo ~name ~src ~dst ~src_range ~dst_range ?(orientation = identity_orientation)
    () =
  if src.dim <> dst.dim then invalid_arg "decl_halo: component counts differ";
  let tw, th = transformed_extent orientation src_range in
  let dw = dst_range.xhi - dst_range.xlo and dh = dst_range.yhi - dst_range.ylo in
  if tw <> dw || th <> dh then
    invalid_arg
      (Printf.sprintf "decl_halo %s: transformed source face %dx%d does not match \
                       destination face %dx%d" name tw th dw dh);
  let check_bounds d r =
    if r.xlo < x_min d || r.xhi > x_max d || r.ylo < y_min d || r.yhi > y_max d then
      invalid_arg (Printf.sprintf "decl_halo %s: range %s outside dat %s" name
                     (range_to_string r) d.dat_name)
  in
  check_bounds src src_range;
  check_bounds dst dst_range;
  { halo_name = name; src; dst; src_range; dst_range; orientation }

(* Execute the copy: destination face values become source face values. *)
let transfer h =
  let o = h.orientation in
  let sw = h.src_range.xhi - h.src_range.xlo in
  let sh = h.src_range.yhi - h.src_range.ylo in
  (* Map local source offsets (i, j) to local destination offsets; negative
     transformed coordinates are shifted into [0, extent). *)
  let tx i j = (o.xx * i) + (o.xy * j) in
  let ty i j = (o.yx * i) + (o.yy * j) in
  let min_tx = min 0 (min (tx (sw - 1) 0) (min (tx 0 (sh - 1)) (tx (sw - 1) (sh - 1)))) in
  let min_ty = min 0 (min (ty (sw - 1) 0) (min (ty 0 (sh - 1)) (ty (sw - 1) (sh - 1)))) in
  for j = 0 to sh - 1 do
    for i = 0 to sw - 1 do
      let dx = h.dst_range.xlo + (tx i j - min_tx) in
      let dy = h.dst_range.ylo + (ty i j - min_ty) in
      for c = 0 to h.src.dim - 1 do
        set h.dst ~x:dx ~y:dy ~c
          (get h.src ~x:(h.src_range.xlo + i) ~y:(h.src_range.ylo + j) ~c)
      done
    done
  done

let transfer_all halos = List.iter transfer halos
