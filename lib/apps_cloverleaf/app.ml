(* CloverLeaf 2D in OPS form.

   The standard CloverLeaf problem: a square domain with an energetic region
   in the lower-left corner, reflective walls all around, run with the
   staggered-grid hydro cycle of [Kernels]:

     ideal_gas -> viscosity -> calc_dt -> PdV -> ideal_gas -> accelerate ->
     flux_calc -> advec_cell (x,y) -> advec_mom (x,y) -> reset_field

   Ghost-ring boundary conditions (OPS's update_halo) are refreshed with
   [Ops.mirror_halo] after each phase that invalidates them. *)

module Ops = Am_ops.Ops
module Access = Am_core.Access

(* Advection scheme: the published CloverLeaf uses van Leer slope limiting;
   the first-order variant drops the limiter (same loop structure). *)
type advection = First_order | Van_leer

type t = {
  ctx : Ops.ctx;
  advection : advection;
  grid : Ops.block;
  nx : int;
  ny : int;
  dx : float;
  dy : float;
  (* cell-centred *)
  density0 : Ops.dat;
  density1 : Ops.dat;
  energy0 : Ops.dat;
  energy1 : Ops.dat;
  pressure : Ops.dat;
  viscosity : Ops.dat;
  soundspeed : Ops.dat;
  pre_vol : Ops.dat;
  post_vol : Ops.dat;
  (* node-centred *)
  xvel0 : Ops.dat;
  xvel1 : Ops.dat;
  yvel0 : Ops.dat;
  yvel1 : Ops.dat;
  node_flux : Ops.dat;
  node_mass_post : Ops.dat;
  mom_flux : Ops.dat;
  (* x faces *)
  vol_flux_x : Ops.dat;
  mass_flux_x : Ops.dat;
  ener_flux_x : Ops.dat;
  (* y faces *)
  vol_flux_y : Ops.dat;
  mass_flux_y : Ops.dat;
  ener_flux_y : Ops.dat;
  mutable dt : float;
  mutable step : int;
  (* Global-argument buffers hoisted out of the per-step functions so every
     call site passes pointer-identical arrays and its cached executor stays
     valid (fresh literals would force a recompile per call). *)
  dims_buf : float array; (* [| dx; dy |], constant *)
  vols_buf : float array; (* [| cell volume |], constant *)
  consts_buf : float array; (* [| dx; dy; dt_eff; volume |], refilled per phase *)
  dt_min_buf : float array; (* calc_dt Min accumulator *)
  sums_buf : float array; (* field_summary Inc accumulator *)
  (* One executor handle per distinct (loop, argument-signature) site,
     keyed by site name. *)
  handles : (string, Ops.handle) Hashtbl.t;
}

let handle t key =
  match Hashtbl.find_opt t.handles key with
  | Some h -> h
  | None ->
    let h = Ops.make_handle () in
    Hashtbl.add t.handles key h;
    h

(* Standard test state (clover.in): ambient (rho, e) = (0.2, 1.0); an
   energetic square (1.0, 2.5) in the lower-left quarter. *)
let domain_size = 10.0
let state2_extent = 5.0

let initial_density x y =
  if x < state2_extent && y < state2_extent then 1.0 else 0.2

let initial_energy x y = if x < state2_extent && y < state2_extent then 2.5 else 1.0

(* Stencils (documented with the kernels). *)
let s_pt = Ops.stencil_point
let s_quad_up : Ops.stencil = [| (0, 0); (1, 0); (0, 1); (1, 1) |]
let s_quad_down : Ops.stencil = [| (-1, -1); (0, -1); (-1, 0); (0, 0) |]
let s_p1x : Ops.stencil = [| (0, 0); (1, 0) |]
let s_p1y : Ops.stencil = [| (0, 0); (0, 1) |]
let s_m1x : Ops.stencil = [| (-1, 0); (0, 0) |]
let s_m1y : Ops.stencil = [| (0, -1); (0, 0) |]
let s_4x : Ops.stencil = [| (-2, 0); (-1, 0); (0, 0); (1, 0) |]
let s_4y : Ops.stencil = [| (0, -2); (0, -1); (0, 0); (0, 1) |]

let create ?backend ?(advection = First_order) ~nx ~ny () =
  let ctx = Ops.create ?backend () in
  let grid = Ops.decl_block ctx ~name:"clover_grid" in
  let cell name = Ops.decl_dat ctx ~name ~block:grid ~xsize:nx ~ysize:ny ~halo:2 () in
  let node name =
    Ops.decl_dat ctx ~name ~block:grid ~xsize:(nx + 1) ~ysize:(ny + 1) ~halo:2 ()
  in
  let xface name =
    Ops.decl_dat ctx ~name ~block:grid ~xsize:(nx + 1) ~ysize:ny ~halo:2 ()
  in
  let yface name =
    Ops.decl_dat ctx ~name ~block:grid ~xsize:nx ~ysize:(ny + 1) ~halo:2 ()
  in
  let t =
    {
      ctx;
      advection;
      grid;
      nx;
      ny;
      dx = domain_size /. Float.of_int nx;
      dy = domain_size /. Float.of_int ny;
      density0 = cell "density0";
      density1 = cell "density1";
      energy0 = cell "energy0";
      energy1 = cell "energy1";
      pressure = cell "pressure";
      viscosity = cell "viscosity";
      soundspeed = cell "soundspeed";
      pre_vol = cell "pre_vol";
      post_vol = cell "post_vol";
      xvel0 = node "xvel0";
      xvel1 = node "xvel1";
      yvel0 = node "yvel0";
      yvel1 = node "yvel1";
      node_flux = node "node_flux";
      node_mass_post = node "node_mass_post";
      mom_flux = node "mom_flux";
      vol_flux_x = xface "vol_flux_x";
      mass_flux_x = xface "mass_flux_x";
      ener_flux_x = xface "ener_flux_x";
      vol_flux_y = yface "vol_flux_y";
      mass_flux_y = yface "mass_flux_y";
      ener_flux_y = yface "ener_flux_y";
      dt = 0.0;
      step = 0;
      dims_buf = [| domain_size /. Float.of_int nx; domain_size /. Float.of_int ny |];
      vols_buf =
        [| domain_size /. Float.of_int nx *. (domain_size /. Float.of_int ny) |];
      consts_buf = Array.make 4 0.0;
      dt_min_buf = [| 0.0 |];
      sums_buf = Array.make 5 0.0;
      handles = Hashtbl.create 32;
    }
  in
  (* Initial state, evaluated at cell centres (ghosts included, so the
     reflective boundaries start consistent). *)
  Ops.init ctx t.density0 (fun cx cy _ ->
      initial_density ((Float.of_int cx +. 0.5) *. t.dx) ((Float.of_int cy +. 0.5) *. t.dy));
  Ops.init ctx t.energy0 (fun cx cy _ ->
      initial_energy ((Float.of_int cx +. 0.5) *. t.dx) ((Float.of_int cy +. 0.5) *. t.dy));
  List.iter
    (fun d -> Ops.init ctx d (fun _ _ _ -> 0.0))
    [
      t.density1; t.energy1; t.pressure; t.viscosity; t.soundspeed; t.pre_vol;
      t.post_vol; t.xvel0; t.xvel1; t.yvel0; t.yvel1; t.node_flux; t.node_mass_post;
      t.mom_flux; t.vol_flux_x; t.mass_flux_x; t.ener_flux_x; t.vol_flux_y;
      t.mass_flux_y; t.ener_flux_y;
    ];
  t

let volume t = t.dx *. t.dy

let cells t : Ops.range = { xlo = 0; xhi = t.nx; ylo = 0; yhi = t.ny }
let nodes t : Ops.range = { xlo = 0; xhi = t.nx + 1; ylo = 0; yhi = t.ny + 1 }
let xfaces t : Ops.range = { xlo = 0; xhi = t.nx + 1; ylo = 0; yhi = t.ny }
let yfaces t : Ops.range = { xlo = 0; xhi = t.nx; ylo = 0; yhi = t.ny + 1 }

(* Extended ranges covering the ghost ring, for the reset copies. *)
let cells_ext t : Ops.range = { xlo = -2; xhi = t.nx + 2; ylo = -2; yhi = t.ny + 2 }
let nodes_ext t : Ops.range = { xlo = -2; xhi = t.nx + 3; ylo = -2; yhi = t.ny + 3 }

let mirror_thermo t =
  List.iter (fun d -> Ops.mirror_halo t.ctx d) [ t.density1; t.energy1 ]

(* Free-slip walls: the velocity component normal to each wall is zero on
   the boundary node line itself (the mirror alone leaves it free, and
   momentum advection would otherwise push mass through the wall). *)
let zero_kernel args = args.(0).(0) <- 0.0

let wall_velocities t =
  let zero name dat range =
    Ops.par_loop t.ctx ~name ~info:Kernels.reset_field_info ~handle:(handle t name)
      t.grid range
      [ Ops.arg_dat dat s_pt Access.Write ]
      zero_kernel
  in
  zero "wall_xvel_w" t.xvel1 { xlo = 0; xhi = 1; ylo = 0; yhi = t.ny + 1 };
  zero "wall_xvel_e" t.xvel1 { xlo = t.nx; xhi = t.nx + 1; ylo = 0; yhi = t.ny + 1 };
  zero "wall_yvel_s" t.yvel1 { xlo = 0; xhi = t.nx + 1; ylo = 0; yhi = 1 };
  zero "wall_yvel_n" t.yvel1 { xlo = 0; xhi = t.nx + 1; ylo = t.ny; yhi = t.ny + 1 }

let mirror_velocities t =
  wall_velocities t;
  Ops.mirror_halo t.ctx t.xvel1 ~sign_x:(-1.0) ~center_x:Ops.Node ~center_y:Ops.Node;
  Ops.mirror_halo t.ctx t.yvel1 ~sign_y:(-1.0) ~center_x:Ops.Node ~center_y:Ops.Node

let ideal_gas t ~predict =
  let density = if predict then t.density1 else t.density0 in
  let energy = if predict then t.energy1 else t.energy0 in
  Ops.par_loop t.ctx ~name:"ideal_gas" ~info:Kernels.ideal_gas_info
    ~handle:(handle t (if predict then "ideal_gas_predict" else "ideal_gas"))
    t.grid (cells t)
    [
      Ops.arg_dat density s_pt Access.Read;
      Ops.arg_dat energy s_pt Access.Read;
      Ops.arg_dat t.pressure s_pt Access.Write;
      Ops.arg_dat t.soundspeed s_pt Access.Write;
    ]
    Kernels.ideal_gas;
  Ops.mirror_halo t.ctx t.pressure;
  Ops.mirror_halo t.ctx t.soundspeed

let viscosity_step t =
  let dims = t.dims_buf in
  Ops.par_loop t.ctx ~name:"viscosity" ~info:Kernels.viscosity_info
    ~handle:(handle t "viscosity") t.grid (cells t)
    [
      Ops.arg_dat t.xvel0 s_quad_up Access.Read;
      Ops.arg_dat t.yvel0 s_quad_up Access.Read;
      Ops.arg_dat t.density0 s_pt Access.Read;
      Ops.arg_dat t.viscosity s_pt Access.Write;
      Ops.arg_gbl ~name:"celldims" dims Access.Read;
    ]
    Kernels.viscosity;
  Ops.mirror_halo t.ctx t.viscosity

let timestep t =
  let dims = t.dims_buf in
  let dt_min = t.dt_min_buf in
  dt_min.(0) <- 0.04 (* g_big clamp: the initial/maximum dt *);
  Ops.par_loop t.ctx ~name:"calc_dt" ~info:Kernels.calc_dt_info
    ~handle:(handle t "calc_dt") t.grid (cells t)
    [
      Ops.arg_dat t.soundspeed s_pt Access.Read;
      Ops.arg_dat t.viscosity s_pt Access.Read;
      Ops.arg_dat t.density0 s_pt Access.Read;
      Ops.arg_dat t.xvel0 s_quad_up Access.Read;
      Ops.arg_dat t.yvel0 s_quad_up Access.Read;
      Ops.arg_gbl ~name:"celldims" dims Access.Read;
      Ops.arg_gbl ~name:"dt" dt_min Access.Min;
    ]
    Kernels.calc_dt;
  t.dt <- dt_min.(0)

(* Refill the shared consts buffer in place (loops are synchronous, so the
   values are stable for the duration of each par_loop). *)
let consts t ~dt =
  t.consts_buf.(0) <- t.dx;
  t.consts_buf.(1) <- t.dy;
  t.consts_buf.(2) <- dt;
  t.consts_buf.(3) <- volume t;
  t.consts_buf

(* Predictor uses the level-0 velocities twice over half the timestep; the
   corrector averages both levels over the full timestep. *)
let pdv t ~predict =
  let xv1 = if predict then t.xvel0 else t.xvel1 in
  let yv1 = if predict then t.yvel0 else t.yvel1 in
  let dt_eff = if predict then 0.5 *. t.dt else t.dt in
  let name = if predict then "PdV_predict" else "PdV" in
  Ops.par_loop t.ctx ~name ~info:Kernels.pdv_info ~handle:(handle t name) t.grid
    (cells t)
    [
      Ops.arg_dat t.xvel0 s_quad_up Access.Read;
      Ops.arg_dat t.yvel0 s_quad_up Access.Read;
      Ops.arg_dat xv1 s_quad_up Access.Read;
      Ops.arg_dat yv1 s_quad_up Access.Read;
      Ops.arg_dat t.density0 s_pt Access.Read;
      Ops.arg_dat t.energy0 s_pt Access.Read;
      Ops.arg_dat t.pressure s_pt Access.Read;
      Ops.arg_dat t.viscosity s_pt Access.Read;
      Ops.arg_dat t.density1 s_pt Access.Write;
      Ops.arg_dat t.energy1 s_pt Access.Write;
      Ops.arg_gbl ~name:"consts" (consts t ~dt:dt_eff) Access.Read;
    ]
    Kernels.pdv;
  mirror_thermo t

let accelerate t =
  Ops.par_loop t.ctx ~name:"accelerate" ~info:Kernels.accelerate_info
    ~handle:(handle t "accelerate") t.grid (nodes t)
    [
      Ops.arg_dat t.density0 s_quad_down Access.Read;
      Ops.arg_dat t.pressure s_quad_down Access.Read;
      Ops.arg_dat t.viscosity s_quad_down Access.Read;
      Ops.arg_dat t.xvel0 s_pt Access.Read;
      Ops.arg_dat t.yvel0 s_pt Access.Read;
      Ops.arg_dat t.xvel1 s_pt Access.Write;
      Ops.arg_dat t.yvel1 s_pt Access.Write;
      Ops.arg_gbl ~name:"consts" (consts t ~dt:t.dt) Access.Read;
    ]
    Kernels.accelerate;
  mirror_velocities t

let flux_calc t =
  let c = consts t ~dt:t.dt in
  Ops.par_loop t.ctx ~name:"flux_calc_x" ~info:Kernels.flux_calc_info
    ~handle:(handle t "flux_calc_x") t.grid (xfaces t)
    [
      Ops.arg_dat t.xvel0 s_p1y Access.Read;
      Ops.arg_dat t.xvel1 s_p1y Access.Read;
      Ops.arg_dat t.vol_flux_x s_pt Access.Write;
      Ops.arg_gbl ~name:"consts" c Access.Read;
    ]
    Kernels.flux_calc_x;
  Ops.par_loop t.ctx ~name:"flux_calc_y" ~info:Kernels.flux_calc_info
    ~handle:(handle t "flux_calc_y") t.grid (yfaces t)
    [
      Ops.arg_dat t.yvel0 s_p1x Access.Read;
      Ops.arg_dat t.yvel1 s_p1x Access.Read;
      Ops.arg_dat t.vol_flux_y s_pt Access.Write;
      Ops.arg_gbl ~name:"consts" c Access.Read;
    ]
    Kernels.flux_calc_y

let advec_cell_sweep t ~dir =
  let vols = t.vols_buf in
  let vol_kernel, vol_name =
    match dir with
    | `X -> (Kernels.advec_vol_x, "advec_vol_x")
    | `Y -> (Kernels.advec_vol_y, "advec_vol_y")
  in
  (* Extended range: the van Leer fluxes read donor pre-volumes from ghost
     cells (ghost volume fluxes are zero, so ghost pre_vol = volume).
     Both sweep directions pass the same argument list to the volume loop,
     so they share one executor handle. *)
  Ops.par_loop t.ctx ~name:vol_name ~info:Kernels.advec_vol_info
    ~handle:(handle t "advec_vol") t.grid (cells_ext t)
    [
      Ops.arg_dat t.vol_flux_x s_p1x Access.Read;
      Ops.arg_dat t.vol_flux_y s_p1y Access.Read;
      Ops.arg_dat t.pre_vol s_pt Access.Write;
      Ops.arg_dat t.post_vol s_pt Access.Write;
      Ops.arg_gbl ~name:"volume" vols Access.Read;
    ]
    vol_kernel;
  (match dir with
  | `X ->
    (match t.advection with
    | First_order ->
      Ops.par_loop t.ctx ~name:"advec_flux_x" ~info:Kernels.advec_flux_info
        ~handle:(handle t "advec_flux_x") t.grid (xfaces t)
        [
          Ops.arg_dat t.vol_flux_x s_pt Access.Read;
          Ops.arg_dat t.density1 s_m1x Access.Read;
          Ops.arg_dat t.energy1 s_m1x Access.Read;
          Ops.arg_dat t.mass_flux_x s_pt Access.Write;
          Ops.arg_dat t.ener_flux_x s_pt Access.Write;
        ]
        Kernels.advec_flux_x
    | Van_leer ->
      Ops.par_loop t.ctx ~name:"advec_flux_x_vl" ~info:Kernels.advec_flux_vanleer_info
        ~handle:(handle t "advec_flux_x_vl") t.grid (xfaces t)
        [
          Ops.arg_dat t.vol_flux_x s_pt Access.Read;
          Ops.arg_dat t.density1 s_4x Access.Read;
          Ops.arg_dat t.energy1 s_4x Access.Read;
          Ops.arg_dat t.pre_vol s_m1x Access.Read;
          Ops.arg_dat t.mass_flux_x s_pt Access.Write;
          Ops.arg_dat t.ener_flux_x s_pt Access.Write;
        ]
        Kernels.advec_flux_vanleer);
    Ops.par_loop t.ctx ~name:"advec_cell_x" ~info:Kernels.advec_cell_info
      ~handle:(handle t "advec_cell_x") t.grid (cells t)
      [
        Ops.arg_dat t.mass_flux_x s_p1x Access.Read;
        Ops.arg_dat t.ener_flux_x s_p1x Access.Read;
        Ops.arg_dat t.pre_vol s_pt Access.Read;
        Ops.arg_dat t.post_vol s_pt Access.Read;
        Ops.arg_dat t.density1 s_pt Access.Rw;
        Ops.arg_dat t.energy1 s_pt Access.Rw;
      ]
      Kernels.advec_cell
  | `Y ->
    (match t.advection with
    | First_order ->
      Ops.par_loop t.ctx ~name:"advec_flux_y" ~info:Kernels.advec_flux_info
        ~handle:(handle t "advec_flux_y") t.grid (yfaces t)
        [
          Ops.arg_dat t.vol_flux_y s_pt Access.Read;
          Ops.arg_dat t.density1 s_m1y Access.Read;
          Ops.arg_dat t.energy1 s_m1y Access.Read;
          Ops.arg_dat t.mass_flux_y s_pt Access.Write;
          Ops.arg_dat t.ener_flux_y s_pt Access.Write;
        ]
        Kernels.advec_flux_y
    | Van_leer ->
      Ops.par_loop t.ctx ~name:"advec_flux_y_vl" ~info:Kernels.advec_flux_vanleer_info
        ~handle:(handle t "advec_flux_y_vl") t.grid (yfaces t)
        [
          Ops.arg_dat t.vol_flux_y s_pt Access.Read;
          Ops.arg_dat t.density1 s_4y Access.Read;
          Ops.arg_dat t.energy1 s_4y Access.Read;
          Ops.arg_dat t.pre_vol s_m1y Access.Read;
          Ops.arg_dat t.mass_flux_y s_pt Access.Write;
          Ops.arg_dat t.ener_flux_y s_pt Access.Write;
        ]
        Kernels.advec_flux_vanleer);
    Ops.par_loop t.ctx ~name:"advec_cell_y" ~info:Kernels.advec_cell_info
      ~handle:(handle t "advec_cell_y") t.grid (cells t)
      [
        Ops.arg_dat t.mass_flux_y s_p1y Access.Read;
        Ops.arg_dat t.ener_flux_y s_p1y Access.Read;
        Ops.arg_dat t.pre_vol s_pt Access.Read;
        Ops.arg_dat t.post_vol s_pt Access.Read;
        Ops.arg_dat t.density1 s_pt Access.Rw;
        Ops.arg_dat t.energy1 s_pt Access.Rw;
      ]
      Kernels.advec_cell);
  mirror_thermo t

let advec_mom_sweep t ~dir =
  let vols = t.vols_buf in
  let dir_tag = match dir with `X -> "x" | `Y -> "y" in
  (* Stage 1: plane mass fluxes at nodes. *)
  (match dir with
  | `X ->
    Ops.par_loop t.ctx ~name:"mom_node_flux_x" ~info:Kernels.advec_mom_info
      ~handle:(handle t "mom_node_flux_x") t.grid (nodes t)
      [
        Ops.arg_dat t.mass_flux_x s_m1y Access.Read;
        Ops.arg_dat t.node_flux s_pt Access.Write;
      ]
      Kernels.mom_node_flux
  | `Y ->
    Ops.par_loop t.ctx ~name:"mom_node_flux_y" ~info:Kernels.advec_mom_info
      ~handle:(handle t "mom_node_flux_y") t.grid (nodes t)
      [
        Ops.arg_dat t.mass_flux_y s_m1x Access.Read;
        Ops.arg_dat t.node_flux s_pt Access.Write;
      ]
      Kernels.mom_node_flux);
  (* Stage 2: post-advection nodal mass. *)
  Ops.par_loop t.ctx ~name:"mom_node_mass" ~info:Kernels.advec_mom_info
    ~handle:(handle t "mom_node_mass") t.grid (nodes t)
    [
      Ops.arg_dat t.density1 s_quad_down Access.Read;
      Ops.arg_dat t.node_mass_post s_pt Access.Write;
      Ops.arg_gbl ~name:"volume" vols Access.Read;
    ]
    Kernels.mom_node_mass;
  (* Stages 3-4 for each velocity component; each (direction, component)
     pair is its own argument signature, hence its own handle. *)
  let vel_stencil, flux_stencil =
    match dir with `X -> (s_m1x, s_p1x) | `Y -> (s_m1y, s_p1y)
  in
  List.iter
    (fun (vel_tag, vel) ->
      let site suffix = Printf.sprintf "%s_%s_%s" suffix dir_tag vel_tag in
      Ops.par_loop t.ctx ~name:"mom_flux" ~info:Kernels.advec_mom_info
        ~handle:(handle t (site "mom_flux")) t.grid (nodes t)
        [
          Ops.arg_dat t.node_flux s_pt Access.Read;
          Ops.arg_dat vel vel_stencil Access.Read;
          Ops.arg_dat t.mom_flux s_pt Access.Write;
        ]
        Kernels.mom_flux;
      Ops.par_loop t.ctx ~name:"mom_vel" ~info:Kernels.advec_mom_info
        ~handle:(handle t (site "mom_vel")) t.grid (nodes t)
        [
          Ops.arg_dat t.node_flux flux_stencil Access.Read;
          Ops.arg_dat t.mom_flux flux_stencil Access.Read;
          Ops.arg_dat t.node_mass_post s_pt Access.Read;
          Ops.arg_dat vel s_pt Access.Rw;
        ]
        Kernels.mom_vel)
    [ ("xv", t.xvel1); ("yv", t.yvel1) ];
  mirror_velocities t

let reset_field t =
  let copy name src dst range =
    Ops.par_loop t.ctx ~name ~info:Kernels.reset_field_info ~handle:(handle t name)
      t.grid range
      [ Ops.arg_dat src s_pt Access.Read; Ops.arg_dat dst s_pt Access.Write ]
      Kernels.reset_field
  in
  copy "reset_density" t.density1 t.density0 (cells_ext t);
  copy "reset_energy" t.energy1 t.energy0 (cells_ext t);
  copy "reset_xvel" t.xvel1 t.xvel0 (nodes_ext t);
  copy "reset_yvel" t.yvel1 t.yvel0 (nodes_ext t)

(* One hydro step; returns the dt taken. *)
let hydro_step t =
  ideal_gas t ~predict:false;
  viscosity_step t;
  timestep t;
  pdv t ~predict:true;
  ideal_gas t ~predict:true;
  accelerate t;
  pdv t ~predict:false;
  flux_calc t;
  advec_cell_sweep t ~dir:`X;
  advec_cell_sweep t ~dir:`Y;
  advec_mom_sweep t ~dir:`X;
  advec_mom_sweep t ~dir:`Y;
  reset_field t;
  t.step <- t.step + 1;
  t.dt

type summary = { vol : float; mass : float; ie : float; ke : float; press : float }

let field_summary t =
  let vols = t.vols_buf in
  let sums = t.sums_buf in
  Array.fill sums 0 5 0.0;
  Ops.par_loop t.ctx ~name:"field_summary" ~info:Kernels.field_summary_info
    ~handle:(handle t "field_summary") t.grid (cells t)
    [
      Ops.arg_dat t.density0 s_pt Access.Read;
      Ops.arg_dat t.energy0 s_pt Access.Read;
      Ops.arg_dat t.pressure s_pt Access.Read;
      Ops.arg_dat t.xvel0 s_quad_up Access.Read;
      Ops.arg_dat t.yvel0 s_quad_up Access.Read;
      Ops.arg_gbl ~name:"volume" vols Access.Read;
      Ops.arg_gbl ~name:"sums" sums Access.Inc;
    ]
    Kernels.field_summary;
  { vol = sums.(0); mass = sums.(1); ie = sums.(2); ke = sums.(3); press = sums.(4) }

let run t ~steps =
  for _ = 1 to steps do
    ignore (hydro_step t)
  done;
  field_summary t

(* Final density field in row-major interior order, for validation. *)
let density t = Ops.fetch_interior t.ctx t.density0
let energy t = Ops.fetch_interior t.ctx t.energy0
let xvel t = Ops.fetch_interior t.ctx t.xvel0
