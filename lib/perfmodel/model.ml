(* Roofline-style loop cost model.

   A parallel loop's time on a device is the larger of its memory time and
   its compute time, plus a dispatch latency:

   - memory time distinguishes streamed (direct/stencil) bytes from
     gathered (indirect) bytes; gathers run at a device-specific fraction
     of stream bandwidth, further degraded by poor mesh ordering
     ([locality] < 1) and by NUMA-blind allocation ([numa_efficiency] < 1);
   - compute time distinguishes ordinary flops from transcendentals
     (sqrt/exp class), and multiplies both by the device's scalar penalty
     when the code is not vectorised — this is what sinks adt_calc on the
     Xeon Phi without vectorisation (Table I / Fig 2);
   - GPUs lose efficiency when the workload is small:
     eff = n / (n + half_work), the strong-scaling tail-off of Figs 4/6.

   The inputs are the backend-independent loop descriptors the runtimes
   already produce, so the model prices exactly the program that ran. *)

module Descr = Am_core.Descr

type style = {
  vectorized : bool;
  locality : float; (* 1.0 = renumbered mesh; lower degrades gathers *)
  numa_efficiency : float; (* < 1.0 models NUMA-blind first touch *)
  runtime_overhead : float; (* multiplicative runtime/driver overhead *)
  gpu_occupancy : float;
    (* < 1.0 for register/branch-heavy kernels (Hydra on the K40, Section
       IV: "lower occupancy and higher branch divergence") *)
}

let default_style =
  { vectorized = true; locality = 1.0; numa_efficiency = 1.0; runtime_overhead = 1.0;
    gpu_occupancy = 1.0 }

let unvectorized = { default_style with vectorized = false }

(* Per-element traffic split four ways: streamed vs gathered, reads vs
   writes.  Reads and writes are separated because write-allocate caches
   (CPUs) move every written line twice (read-for-ownership then write-back),
   while GPUs write-combine; "useful" bandwidth figures like Table I's count
   the data once. Inc counts on both sides (hardware read-modify-write).
   Indirect traffic is amortised by the target/iteration set ratio — each
   referenced element moves once per loop under perfect reuse — plus a
   4-byte map index per reference, which always gathers. *)
type traffic = {
  streamed_read : float;
  streamed_write : float;
  gathered_read : float;
  gathered_write : float;
  index_bytes : float;
}

let traffic_of_loop (loop : Descr.loop) =
  let t =
    ref
      {
        streamed_read = 0.0;
        streamed_write = 0.0;
        gathered_read = 0.0;
        gathered_write = 0.0;
        index_bytes = 0.0;
      }
  in
  (* Indirect arguments are grouped: several arguments reaching the same
     dataset (e.g. both cells of an edge) together move each referenced
     element once, and the map row they share is loaded once — so data
     bytes are counted per distinct dataset and index bytes per distinct
     (map, index) pair.  This matches OP2's own useful-bandwidth accounting
     (Table I). *)
  let indirect_dats = Hashtbl.create 4 in
  let map_indices : (string * int, unit) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (a : Descr.arg) ->
      let reads =
        Am_core.Access.reads a.Descr.access || a.Descr.access = Am_core.Access.Inc
      in
      let writes = Am_core.Access.writes a.Descr.access in
      let bytes = Float.of_int (a.Descr.dim * 8) in
      match a.Descr.kind with
      | Descr.Global -> ()
      | Descr.Direct | Descr.Stencil _ ->
        t :=
          {
            !t with
            streamed_read = (!t.streamed_read +. if reads then bytes else 0.0);
            streamed_write = (!t.streamed_write +. if writes then bytes else 0.0);
          }
      | Descr.Indirect { map_name; map_index; ratio } ->
        Hashtbl.replace map_indices (map_name, map_index) ();
        let entry =
          match Hashtbl.find_opt indirect_dats a.Descr.dat_id with
          | Some entry -> entry
          | None ->
            let entry = (bytes, ref ratio, ref 0, ref false, ref false) in
            Hashtbl.add indirect_dats a.Descr.dat_id entry;
            entry
        in
        let _, _, refs, r, w = entry in
        incr refs;
        if reads then r := true;
        if writes then w := true)
    loop.Descr.args;
  Hashtbl.iter
    (fun _ (bytes, ratio, refs, r, w) ->
      (* An element referencing a dataset [refs] times touches at most
         [refs] distinct elements of it, however large the target set. *)
      let amortised = bytes *. Float.min !ratio (Float.of_int !refs) in
      t :=
        {
          !t with
          gathered_read = (!t.gathered_read +. if !r then amortised else 0.0);
          gathered_write = (!t.gathered_write +. if !w then amortised else 0.0);
        })
    indirect_dats;
  t := { !t with index_bytes = 4.0 *. Float.of_int (Hashtbl.length map_indices) };
  !t

(* Back-compat summary used by tests: (streamed, gathered) useful bytes. *)
let traffic_per_element (loop : Descr.loop) =
  let t = traffic_of_loop loop in
  ( Float.to_int (t.streamed_read +. t.streamed_write),
    Float.to_int (t.gathered_read +. t.gathered_write +. t.index_bytes) )

let useful_bytes_per_element loop =
  let t = traffic_of_loop loop in
  t.streamed_read +. t.streamed_write +. t.gathered_read +. t.gathered_write
  +. t.index_bytes

(* Scalar (non-vectorised) code cannot keep the memory system saturated on
   wide-SIMD machines: achieved bandwidth drops as well as compute rate. *)
let novec_bandwidth_factor = 0.85

let loop_time (device : Machines.device) (style : style) (loop : Descr.loop) =
  let n = Float.of_int loop.Descr.set_size in
  let t = traffic_of_loop loop in
  let write_factor = if device.Machines.rfo then 2.0 else 1.0 in
  let vec_bw =
    if style.vectorized || device.Machines.is_gpu then 1.0 else novec_bandwidth_factor
  in
  let bw = device.Machines.stream_bw *. style.numa_efficiency *. vec_bw *. 1e9 in
  let gather_bw =
    bw *. device.Machines.gather_efficiency *. Float.min 1.0 style.locality
  in
  let mem_time =
    n
    *. (((t.streamed_read +. (t.streamed_write *. write_factor)) /. bw)
        +. ((t.gathered_read +. (t.gathered_write *. write_factor) +. t.index_bytes)
            /. gather_bw))
  in
  let compute_penalty =
    if style.vectorized || device.Machines.is_gpu then 1.0
    else device.Machines.scalar_penalty
  in
  let info = loop.Descr.info in
  let comp_time =
    n
    *. ((info.Descr.flops /. (device.Machines.flops *. 1e9)
         +. (info.Descr.transcendentals /. (device.Machines.transcendental_rate *. 1e9)))
        *. compute_penalty)
  in
  let t = Float.max mem_time comp_time in
  let t = if device.Machines.is_gpu then t /. Float.max 0.05 style.gpu_occupancy else t in
  let t =
    if device.Machines.is_gpu && device.Machines.half_work > 0.0 then begin
      let eff = n /. (n +. device.Machines.half_work) in
      t /. Float.max 1e-3 eff
    end
    else t
  in
  (t +. device.Machines.loop_latency) *. style.runtime_overhead

(* Achieved *useful* bandwidth implied by the model (Table I's GB/s): data
   counted once regardless of RFO or repeated references. *)
let loop_bandwidth_gbs device style loop =
  let t = loop_time device style loop in
  useful_bytes_per_element loop *. Float.of_int loop.Descr.set_size /. t /. 1e9

let sequence_time device style loops =
  List.fold_left (fun acc l -> acc +. loop_time device style l) 0.0 loops

(* Step time under communication/computation overlap: the halo exchange is
   in flight while the core (interior) share of the compute runs, so only
   the larger of the two is paid; the boundary share — the elements whose
   stencils or indirections reach the halo — must wait for the messages.
   This is the analytic form of the runtime's core/boundary split. *)
let overlapped_time ~comm ~core ~boundary = Float.max comm core +. boundary

(* Scale a traced loop to a different mesh size: descriptors traced on a
   laptop-sized mesh are re-priced at the paper's sizes. *)
let scale_loop factor (loop : Descr.loop) =
  {
    loop with
    Descr.set_size =
      Float.to_int (Float.round (Float.of_int loop.Descr.set_size *. factor));
  }

let scale_sequence factor loops = List.map (scale_loop factor) loops
