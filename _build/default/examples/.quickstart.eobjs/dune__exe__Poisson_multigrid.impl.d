examples/poisson_multigrid.ml: Am_core Am_ops Array Float Printf
