test/test_cloverleaf3.mli:
