(* Hand-coded Airfoil baseline.

   The "Original" series of the paper's comparisons: the same solver written
   the way a performance programmer writes sequential code — flat arrays,
   direct indexing through the connectivity, arithmetic inlined, no
   framework machinery.  The operation order matches the OP2 kernels
   exactly so results agree to rounding, letting the benchmarks isolate
   framework overhead. *)

module Umesh = Am_mesh.Umesh

type t = {
  mesh : Umesh.t;
  x : float array; (* 2 per node *)
  q : float array; (* 4 per cell *)
  qold : float array;
  adt : float array; (* 1 per cell *)
  res : float array; (* 4 per cell *)
}

let gam = Kernels.gam
let gm1 = Kernels.gm1
let cfl = Kernels.cfl
let eps = Kernels.eps
let qinf = Kernels.qinf

let create (mesh : Umesh.t) =
  let q = Array.make (mesh.Umesh.n_cells * 4) 0.0 in
  for c = 0 to mesh.Umesh.n_cells - 1 do
    Array.blit qinf 0 q (4 * c) 4
  done;
  {
    mesh;
    x = Array.copy mesh.Umesh.node_coords;
    q;
    qold = Array.make (mesh.Umesh.n_cells * 4) 0.0;
    adt = Array.make mesh.Umesh.n_cells 0.0;
    res = Array.make (mesh.Umesh.n_cells * 4) 0.0;
  }

let save_soln t =
  Array.blit t.q 0 t.qold 0 (Array.length t.q)

let adt_calc t =
  let m = t.mesh in
  for c = 0 to m.Umesh.n_cells - 1 do
    let q0 = t.q.(4 * c) and q1 = t.q.((4 * c) + 1) in
    let q2 = t.q.((4 * c) + 2) and q3 = t.q.((4 * c) + 3) in
    let ri = 1.0 /. q0 in
    let u = ri *. q1 and v = ri *. q2 in
    let c_snd = sqrt (gam *. gm1 *. ((ri *. q3) -. (0.5 *. ((u *. u) +. (v *. v))))) in
    let node k = m.Umesh.cell_nodes.((4 * c) + k) in
    let xk k = t.x.(2 * node k) and yk k = t.x.((2 * node k) + 1) in
    let face xa ya xb yb =
      let dx = xa -. xb and dy = ya -. yb in
      Float.abs ((u *. dy) -. (v *. dx)) +. (c_snd *. sqrt ((dx *. dx) +. (dy *. dy)))
    in
    let acc =
      face (xk 1) (yk 1) (xk 0) (yk 0)
      +. face (xk 2) (yk 2) (xk 1) (yk 1)
      +. face (xk 3) (yk 3) (xk 2) (yk 2)
      +. face (xk 0) (yk 0) (xk 3) (yk 3)
    in
    t.adt.(c) <- acc /. cfl
  done

let res_calc t =
  let m = t.mesh in
  for e = 0 to m.Umesh.n_edges - 1 do
    let n1 = m.Umesh.edge_nodes.(2 * e) and n2 = m.Umesh.edge_nodes.((2 * e) + 1) in
    let c1 = m.Umesh.edge_cells.(2 * e) and c2 = m.Umesh.edge_cells.((2 * e) + 1) in
    let dx = t.x.(2 * n1) -. t.x.(2 * n2) in
    let dy = t.x.((2 * n1) + 1) -. t.x.((2 * n2) + 1) in
    let q1 k = t.q.((4 * c1) + k) and q2 k = t.q.((4 * c2) + k) in
    let ri1 = 1.0 /. q1 0 in
    let p1 = gm1 *. (q1 3 -. (0.5 *. ri1 *. ((q1 1 *. q1 1) +. (q1 2 *. q1 2)))) in
    let vol1 = ri1 *. ((q1 1 *. dy) -. (q1 2 *. dx)) in
    let ri2 = 1.0 /. q2 0 in
    let p2 = gm1 *. (q2 3 -. (0.5 *. ri2 *. ((q2 1 *. q2 1) +. (q2 2 *. q2 2)))) in
    let vol2 = ri2 *. ((q2 1 *. dy) -. (q2 2 *. dx)) in
    let mu = 0.5 *. (t.adt.(c1) +. t.adt.(c2)) *. eps in
    let f0 = (0.5 *. ((vol1 *. q1 0) +. (vol2 *. q2 0))) +. (mu *. (q1 0 -. q2 0)) in
    let f1 =
      (0.5 *. ((vol1 *. q1 1) +. (vol2 *. q2 1)))
      +. (0.5 *. ((p1 +. p2) *. dy))
      +. (mu *. (q1 1 -. q2 1))
    in
    let f2 =
      (0.5 *. ((vol1 *. q1 2) +. (vol2 *. q2 2)))
      -. (0.5 *. ((p1 +. p2) *. dx))
      +. (mu *. (q1 2 -. q2 2))
    in
    let f3 =
      (0.5 *. ((vol1 *. (q1 3 +. p1)) +. (vol2 *. (q2 3 +. p2))))
      +. (mu *. (q1 3 -. q2 3))
    in
    t.res.(4 * c1) <- t.res.(4 * c1) +. f0;
    t.res.(4 * c2) <- t.res.(4 * c2) -. f0;
    t.res.((4 * c1) + 1) <- t.res.((4 * c1) + 1) +. f1;
    t.res.((4 * c2) + 1) <- t.res.((4 * c2) + 1) -. f1;
    t.res.((4 * c1) + 2) <- t.res.((4 * c1) + 2) +. f2;
    t.res.((4 * c2) + 2) <- t.res.((4 * c2) + 2) -. f2;
    t.res.((4 * c1) + 3) <- t.res.((4 * c1) + 3) +. f3;
    t.res.((4 * c2) + 3) <- t.res.((4 * c2) + 3) -. f3
  done

let bres_calc t =
  let m = t.mesh in
  for b = 0 to m.Umesh.n_bedges - 1 do
    let n1 = m.Umesh.bedge_nodes.(2 * b) and n2 = m.Umesh.bedge_nodes.((2 * b) + 1) in
    let c1 = m.Umesh.bedge_cell.(b) in
    let dx = t.x.(2 * n1) -. t.x.(2 * n2) in
    let dy = t.x.((2 * n1) + 1) -. t.x.((2 * n2) + 1) in
    let q1 k = t.q.((4 * c1) + k) in
    let ri1 = 1.0 /. q1 0 in
    let p1 = gm1 *. (q1 3 -. (0.5 *. ri1 *. ((q1 1 *. q1 1) +. (q1 2 *. q1 2)))) in
    if m.Umesh.bedge_bound.(b) = Umesh.boundary_wall then begin
      t.res.((4 * c1) + 1) <- t.res.((4 * c1) + 1) +. (p1 *. dy);
      t.res.((4 * c1) + 2) <- t.res.((4 * c1) + 2) -. (p1 *. dx)
    end
    else begin
      let vol1 = ri1 *. ((q1 1 *. dy) -. (q1 2 *. dx)) in
      let ri2 = 1.0 /. qinf.(0) in
      let p2 =
        gm1
        *. (qinf.(3) -. (0.5 *. ri2 *. ((qinf.(1) *. qinf.(1)) +. (qinf.(2) *. qinf.(2)))))
      in
      let vol2 = ri2 *. ((qinf.(1) *. dy) -. (qinf.(2) *. dx)) in
      let mu = t.adt.(c1) *. eps in
      let f0 =
        (0.5 *. ((vol1 *. q1 0) +. (vol2 *. qinf.(0)))) +. (mu *. (q1 0 -. qinf.(0)))
      in
      let f1 =
        (0.5 *. ((vol1 *. q1 1) +. (vol2 *. qinf.(1))))
        +. (0.5 *. ((p1 +. p2) *. dy))
        +. (mu *. (q1 1 -. qinf.(1)))
      in
      let f2 =
        (0.5 *. ((vol1 *. q1 2) +. (vol2 *. qinf.(2))))
        -. (0.5 *. ((p1 +. p2) *. dx))
        +. (mu *. (q1 2 -. qinf.(2)))
      in
      let f3 =
        (0.5 *. ((vol1 *. (q1 3 +. p1)) +. (vol2 *. (qinf.(3) +. p2))))
        +. (mu *. (q1 3 -. qinf.(3)))
      in
      t.res.(4 * c1) <- t.res.(4 * c1) +. f0;
      t.res.((4 * c1) + 1) <- t.res.((4 * c1) + 1) +. f1;
      t.res.((4 * c1) + 2) <- t.res.((4 * c1) + 2) +. f2;
      t.res.((4 * c1) + 3) <- t.res.((4 * c1) + 3) +. f3
    end
  done

let update t =
  let rms = ref 0.0 in
  for c = 0 to t.mesh.Umesh.n_cells - 1 do
    let adti = 1.0 /. t.adt.(c) in
    for n = 0 to 3 do
      let del = adti *. t.res.((4 * c) + n) in
      t.q.((4 * c) + n) <- t.qold.((4 * c) + n) -. del;
      t.res.((4 * c) + n) <- 0.0;
      rms := !rms +. (del *. del)
    done
  done;
  !rms

let iteration t =
  save_soln t;
  let rms = ref 0.0 in
  for _inner = 1 to 2 do
    adt_calc t;
    res_calc t;
    bres_calc t;
    rms := update t
  done;
  sqrt (!rms /. Float.of_int t.mesh.Umesh.n_cells)

let run t ~iters =
  let rms = ref 0.0 in
  for _ = 1 to iters do
    rms := iteration t
  done;
  !rms

let solution t = Array.copy t.q
