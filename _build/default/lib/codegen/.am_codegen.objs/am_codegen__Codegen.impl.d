lib/codegen/codegen.ml: Am_core Array Buffer Hashtbl List Printf String
