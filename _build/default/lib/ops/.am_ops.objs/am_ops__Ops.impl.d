lib/ops/ops.ml: Am_checkpoint Am_core Am_simmpi Am_taskpool Array Boundary Dist Dist2 Exec List Multiblock Printf Types Unix
