(* Checkpoint planning from access-execute descriptions (paper Section VI,
   Fig 8).

   Because applications hand all data to the library and every loop declares
   how it accesses each dataset, the library can reason about the state of
   all datasets at any point of the execution:

   - a dataset whose *next* access after the checkpoint trigger is a Write
     is dropped — it is dead at the trigger;
   - a dataset whose next access reads (Read / Rw / Inc) must be saved; the
     save can be *deferred* until the loop that first touches it, spreading
     I/O over time (the paper's "flagged for further decision");
   - a dataset never modified anywhere in the program is never saved (it is
     reproducible from the input files);
   - global reductions are saved whenever the loop writing them executes.

   The speculative optimisation detects that the loop sequence is periodic
   and, rather than entering checkpointing mode at an expensive trigger
   point, waits (within one period) for the cheapest one. *)

module Access = Am_core.Access
module Descr = Am_core.Descr

type dataset = { ds_name : string; ds_dim : int }

type decision =
  | Save_now (* read before written: snapshot at the trigger *)
  | Save_at of int (* deferred: snapshot when loop [i] first touches it *)
  | Drop (* overwritten before read: dead at the trigger *)
  | Not_saved (* never modified by the program: restored from input *)

let decision_to_string = function
  | Save_now -> "save"
  | Save_at i -> Printf.sprintf "save@%d" i
  | Drop -> "drop"
  | Not_saved -> "not saved"

type plan = {
  trigger : int; (* index of the loop before which the checkpoint happens *)
  decisions : (dataset * decision) list;
  units : int; (* total dims saved — Fig 8's "units of data" column *)
  globals : (string * int list) list; (* global name -> loops that write it *)
}

(* All mesh datasets appearing in the trace, in first-appearance order. *)
let datasets loops =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (l : Descr.loop) ->
      List.iter
        (fun (a : Descr.arg) ->
          if a.Descr.kind <> Descr.Global && not (Hashtbl.mem seen a.Descr.dat_name)
          then begin
            Hashtbl.add seen a.Descr.dat_name ();
            out := { ds_name = a.Descr.dat_name; ds_dim = a.Descr.dim } :: !out
          end)
        l.Descr.args)
    loops;
  List.rev !out

let accesses_of loop name =
  List.filter_map
    (fun (a : Descr.arg) ->
      if a.Descr.dat_name = name && a.Descr.kind <> Descr.Global then
        Some a.Descr.access
      else None)
    loop.Descr.args

(* Is the dataset modified anywhere in the program? *)
let ever_modified loops name =
  List.exists
    (fun l -> List.exists Access.writes (accesses_of l name))
    loops

(* Combined access of a dataset within one loop (a dat referenced by several
   arguments, e.g. via both map indices, reads if any argument reads). *)
let first_access_from loops ~start name =
  let arr = Array.of_list loops in
  let n = Array.length arr in
  let rec scan i =
    if i >= n then None
    else begin
      match accesses_of arr.(i) name with
      | [] -> scan (i + 1)
      | accs ->
        let reads = List.exists (fun a -> Access.reads a || a = Access.Inc) accs in
        Some (i, reads)
    end
  in
  scan start

let plan_at loops ~trigger =
  let ds = datasets loops in
  let decisions =
    List.map
      (fun d ->
        if not (ever_modified loops d.ds_name) then (d, Not_saved)
        else begin
          match first_access_from loops ~start:trigger d.ds_name with
          | None -> (d, Drop) (* dead for the remainder of the horizon *)
          | Some (i, reads) ->
            if not reads then (d, Drop)
            else if i = trigger then (d, Save_now)
            else (d, Save_at i)
        end)
      ds
  in
  let units =
    List.fold_left
      (fun acc (d, dec) ->
        match dec with
        | Save_now | Save_at _ -> acc + d.ds_dim
        | Drop | Not_saved -> acc)
      0 decisions
  in
  let globals =
    let table = Hashtbl.create 4 in
    List.iteri
      (fun i (l : Descr.loop) ->
        List.iter
          (fun (a : Descr.arg) ->
            if a.Descr.kind = Descr.Global && Access.writes a.Descr.access then begin
              let prev = Option.value ~default:[] (Hashtbl.find_opt table a.Descr.dat_name) in
              Hashtbl.replace table a.Descr.dat_name (i :: prev)
            end)
          l.Descr.args)
      loops;
    Hashtbl.fold (fun name is acc -> (name, List.rev is) :: acc) table []
  in
  { trigger; decisions; units; globals }

(* Smallest period p such that the loop-name sequence is p-periodic over the
   recorded horizon (requiring at least two full periods of evidence). *)
let detect_period loops =
  let names = Array.of_list (List.map (fun (l : Descr.loop) -> l.Descr.loop_name) loops) in
  let n = Array.length names in
  let is_period p =
    p >= 1 && (n >= 2 * p)
    && begin
      let ok = ref true in
      for i = p to n - 1 do
        if names.(i) <> names.(i - p) then ok := false
      done;
      !ok
    end
  in
  let rec search p = if p > n / 2 then None else if is_period p then Some p else search (p + 1) in
  search 1

(* Cheapest trigger over the whole horizon. *)
let best_trigger loops =
  let n = List.length loops in
  let best = ref 0 and best_units = ref max_int in
  for i = 0 to n - 1 do
    let p = plan_at loops ~trigger:i in
    if p.units < !best_units then begin
      best := i;
      best_units := p.units
    end
  done;
  !best

(* The speculative algorithm: a checkpoint requested before loop [requested]
   is postponed — within one detected period — to the cheapest trigger
   position at or after the request. Without periodicity evidence the
   request is honoured as-is. *)
let speculative_trigger loops ~requested =
  match detect_period loops with
  | None -> requested
  | Some period ->
    let n = List.length loops in
    let horizon = min n (requested + period) in
    let best = ref requested and best_units = ref max_int in
    for i = requested to horizon - 1 do
      let p = plan_at loops ~trigger:i in
      if p.units < !best_units then begin
        best := i;
        best_units := p.units
      end
    done;
    !best

(* ---- Fig 8 rendering --------------------------------------------------- *)

(* One row per loop: the access mode of every dataset plus the units-saved
   column, matching the layout of the paper's figure. *)
let render_figure loops =
  let ds = datasets loops in
  let header =
    "#" :: "loop"
    :: (List.map (fun d -> Printf.sprintf "%s(%d)" d.ds_name d.ds_dim) ds
        @ [ "units if triggered here" ])
  in
  let table =
    Am_util.Table.create ~title:"checkpoint planning (Fig 8)" ~header
      ~aligns:(Am_util.Table.Left :: Am_util.Table.Left
               :: List.map (fun _ -> Am_util.Table.Right) ds
               @ [ Am_util.Table.Right ])
      ()
  in
  List.iteri
    (fun i (l : Descr.loop) ->
      let cells =
        List.map
          (fun d ->
            match accesses_of l d.ds_name with
            | [] -> ""
            | accs ->
              String.concat "/"
                (List.sort_uniq compare (List.map Access.to_string accs)))
          ds
      in
      let units = (plan_at loops ~trigger:i).units in
      Am_util.Table.add_row table
        (string_of_int (i + 1) :: l.Descr.loop_name :: cells
         @ [ string_of_int units ]))
    loops;
  Am_util.Table.render table
