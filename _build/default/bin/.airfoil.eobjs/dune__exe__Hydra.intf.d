bin/hydra.mli:
