(* A diagnostic produced by one of the analysis layers.

   Findings are deliberately plain data: the lint, plan-validation and
   dataflow passes produce them, the facade aggregates them, and the
   drivers decide the exit code from the worst severity.  [Info] findings
   are observations (e.g. a dataset read before any recorded write — often
   just initial data); [Warning] marks suspicious-but-defined behaviour;
   [Error] marks a defect that produces wrong answers on at least one
   backend. *)

type layer = Descriptor | Plan | Dataflow | Sanitizer | Resilience | Verify

type severity = Info | Warning | Error

type t = {
  layer : layer;
  severity : severity;
  loop : string; (* loop name; "" when the finding spans the sequence *)
  arg : int; (* argument index within the loop; -1 when not arg-specific *)
  subject : string; (* dataset / map / global the finding is about *)
  message : string;
}

let make ~layer ~severity ?(loop = "") ?(arg = -1) ~subject message =
  { layer; severity; loop; arg; subject; message }

let layer_to_string = function
  | Descriptor -> "descriptor"
  | Plan -> "plan"
  | Dataflow -> "dataflow"
  | Sanitizer -> "sanitizer"
  | Resilience -> "resilience"
  | Verify -> "verify"

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let is_error f = f.severity = Error
let is_warning f = f.severity = Warning

let to_string f =
  let where =
    match (f.loop, f.arg) with
    | "", _ -> ""
    | l, -1 -> Printf.sprintf " loop %s:" l
    | l, a -> Printf.sprintf " loop %s arg %d:" l a
  in
  Printf.sprintf "[%s/%s]%s %s: %s" (layer_to_string f.layer)
    (severity_to_string f.severity) where f.subject f.message

(* Order findings worst-first for reporting. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort findings =
  List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) findings
