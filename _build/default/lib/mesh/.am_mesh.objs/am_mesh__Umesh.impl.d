lib/mesh/umesh.ml: Am_util Array Csr Float Fun
