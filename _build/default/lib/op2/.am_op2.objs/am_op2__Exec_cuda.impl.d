lib/op2/exec_cuda.ml: Am_core Am_mesh Array Exec_common Hashtbl List Plan Types
