(* Kernels of the Aero proxy application: a 2D finite-element Poisson
   solver on the unstructured quad mesh, in the mould of the OP2 "aero"
   test case (FEM assembly + matrix-free preconditioner-free CG).

   The model problem is -laplacian(phi) = f on the unit square with
   homogeneous Dirichlet boundaries and
     f(x, y) = 2 pi^2 sin(pi x) sin(pi y),
   whose exact solution is phi = sin(pi x) sin(pi y) — so the app is
   verifiable against an analytic field (the tests check the O(h^2) FEM
   convergence order).

   res_calc assembles, per cell, the 4x4 bilinear-quad element stiffness
   matrix (isoparametric, 2x2 Gauss) into a per-cell dataset and scatters
   the element residual f_e - K_e phi_e to the nodes; spMV then applies the
   stored matrices matrix-free inside the CG iteration, exactly as the
   published aero app does.

   As for the other proxies, these kernels are plain functions over the
   staging buffers and are reused verbatim by the hand-coded baseline. *)

let pi = 4.0 *. atan 1.0

(* Source term of the model problem. *)
let source x y = 2.0 *. pi *. pi *. sin (pi *. x) *. sin (pi *. y)

(* Exact solution, used by tests and the driver's error report. *)
let exact x y = sin (pi *. x) *. sin (pi *. y)

(* 2x2 Gauss points/weights on [-1,1]^2 and the bilinear shape functions
   at reference corners (-1,-1) (1,-1) (1,1) (-1,1) — matching the
   counter-clockwise cell_nodes order of the mesh generator. *)
let gauss = 1.0 /. sqrt 3.0
let gps = [| (-.gauss, -.gauss); (gauss, -.gauss); (gauss, gauss); (-.gauss, gauss) |]
let xis = [| -1.0; 1.0; 1.0; -1.0 |]
let etas = [| -1.0; -1.0; 1.0; 1.0 |]

let shape i ~xi ~eta = 0.25 *. (1.0 +. (xis.(i) *. xi)) *. (1.0 +. (etas.(i) *. eta))
let dshape_dxi i ~eta = 0.25 *. xis.(i) *. (1.0 +. (etas.(i) *. eta))
let dshape_deta i ~xi = 0.25 *. etas.(i) *. (1.0 +. (xis.(i) *. xi))

(* res_calc: element assembly.
   args: x1..x4 (R via cell->node, dim 2), phi1..phi4 (R via cell->node),
   K (W direct, dim 16), res1..res4 (Inc via cell->node).
   Writes the element stiffness and increments the nodal residual with
   f_e - K_e phi_e. *)
let res_calc args =
  let x i = args.(i) in
  let phi i = args.(4 + i).(0) in
  let k = args.(8) in
  let res i = args.(9 + i) in
  Array.fill k 0 16 0.0;
  let fe = [| 0.0; 0.0; 0.0; 0.0 |] in
  Array.iter
    (fun (xi, eta) ->
      (* Jacobian of the isoparametric map at this Gauss point. *)
      let j00 = ref 0.0 and j01 = ref 0.0 and j10 = ref 0.0 and j11 = ref 0.0 in
      for i = 0 to 3 do
        let dxi = dshape_dxi i ~eta and deta = dshape_deta i ~xi in
        j00 := !j00 +. (dxi *. (x i).(0));
        j01 := !j01 +. (dxi *. (x i).(1));
        j10 := !j10 +. (deta *. (x i).(0));
        j11 := !j11 +. (deta *. (x i).(1))
      done;
      let det = (!j00 *. !j11) -. (!j01 *. !j10) in
      let w = Float.abs det in
      let inv = 1.0 /. det in
      (* Physical gradients of the four shape functions. *)
      let gx = Array.make 4 0.0 and gy = Array.make 4 0.0 in
      for i = 0 to 3 do
        let dxi = dshape_dxi i ~eta and deta = dshape_deta i ~xi in
        gx.(i) <- inv *. ((!j11 *. dxi) -. (!j01 *. deta));
        gy.(i) <- inv *. ((-. !j10 *. dxi) +. (!j00 *. deta))
      done;
      (* Gauss-point position for the load. *)
      let px = ref 0.0 and py = ref 0.0 in
      for i = 0 to 3 do
        let n = shape i ~xi ~eta in
        px := !px +. (n *. (x i).(0));
        py := !py +. (n *. (x i).(1))
      done;
      let f = source !px !py in
      for i = 0 to 3 do
        fe.(i) <- fe.(i) +. (w *. f *. shape i ~xi ~eta);
        for jj = 0 to 3 do
          k.((4 * i) + jj) <-
            k.((4 * i) + jj) +. (w *. ((gx.(i) *. gx.(jj)) +. (gy.(i) *. gy.(jj))))
        done
      done)
    gps;
  for i = 0 to 3 do
    let kphi = ref 0.0 in
    for jj = 0 to 3 do
      kphi := !kphi +. (k.((4 * i) + jj) *. phi jj)
    done;
    (res i).(0) <- (res i).(0) +. fe.(i) -. !kphi
  done

let res_calc_info = { Am_core.Descr.flops = 420.0; transcendentals = 8.0 }

(* dirichlet: direct masked zeroing of a nodal field (the published app's
   dirichlet loop, expressed with a precomputed boundary mask so it stays a
   direct loop and is safe on every backend, including owner-compute MPI).
   args: field (Rw), bmask (R). *)
let dirichlet args =
  let v = args.(0) and bmask = args.(1) in
  v.(0) <- v.(0) *. (1.0 -. bmask.(0))

let dirichlet_info = { Am_core.Descr.flops = 2.0; transcendentals = 0.0 }

(* init_cg: p <- r, u <- 0, v <- 0, accumulate r.r.
   args: r (R), p (W), u (W), v (W), rss (Inc gbl). *)
let init_cg args =
  let r = args.(0) and p = args.(1) and u = args.(2) and v = args.(3) in
  let rss = args.(4) in
  p.(0) <- r.(0);
  u.(0) <- 0.0;
  v.(0) <- 0.0;
  rss.(0) <- rss.(0) +. (r.(0) *. r.(0))

let init_cg_info = { Am_core.Descr.flops = 2.0; transcendentals = 0.0 }

(* spMV: matrix-free v += K_e p_e, per cell, scattering to the nodes.
   args: K (R direct, dim 16), p1..p4 (R via cell->node), v1..v4 (Inc via
   cell->node). *)
let spmv args =
  let k = args.(0) in
  let p i = args.(1 + i).(0) in
  let v i = args.(5 + i) in
  for i = 0 to 3 do
    let acc = ref 0.0 in
    for jj = 0 to 3 do
      acc := !acc +. (k.((4 * i) + jj) *. p jj)
    done;
    (v i).(0) <- (v i).(0) +. !acc
  done

let spmv_info = { Am_core.Descr.flops = 32.0; transcendentals = 0.0 }

(* dot_pv: gbl sum of p.v. args: p (R), v (R), dot (Inc gbl). *)
let dot_pv args =
  let p = args.(0) and v = args.(1) and dot = args.(2) in
  dot.(0) <- dot.(0) +. (p.(0) *. v.(0))

let dot_pv_info = { Am_core.Descr.flops = 2.0; transcendentals = 0.0 }

(* update_ur: u += alpha p, r -= alpha v, v <- 0.
   args: alpha (R gbl), p (R), v (Rw), u (Rw), r (Rw). *)
let update_ur args =
  let alpha = args.(0) and p = args.(1) and v = args.(2) in
  let u = args.(3) and r = args.(4) in
  u.(0) <- u.(0) +. (alpha.(0) *. p.(0));
  r.(0) <- r.(0) -. (alpha.(0) *. v.(0));
  v.(0) <- 0.0

let update_ur_info = { Am_core.Descr.flops = 4.0; transcendentals = 0.0 }

(* dot_r: gbl sum of r.r. args: r (R), rss (Inc gbl). *)
let dot_r args =
  let r = args.(0) and rss = args.(1) in
  rss.(0) <- rss.(0) +. (r.(0) *. r.(0))

let dot_r_info = { Am_core.Descr.flops = 2.0; transcendentals = 0.0 }

(* update_p: p <- r + beta p. args: beta (R gbl), r (R), p (Rw). *)
let update_p args =
  let beta = args.(0) and r = args.(1) and p = args.(2) in
  p.(0) <- r.(0) +. (beta.(0) *. p.(0))

let update_p_info = { Am_core.Descr.flops = 2.0; transcendentals = 0.0 }

(* update: phi += u after the inner solve, residual reset.
   args: u (R), phi (Rw), r (W), rms (Inc gbl). *)
let update args =
  let u = args.(0) and phi = args.(1) and r = args.(2) and rms = args.(3) in
  phi.(0) <- phi.(0) +. u.(0);
  r.(0) <- 0.0;
  rms.(0) <- rms.(0) +. (u.(0) *. u.(0))

let update_info = { Am_core.Descr.flops = 3.0; transcendentals = 0.0 }
