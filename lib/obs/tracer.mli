(** Span tracer: nestable begin/end spans recorded into a preallocated ring
    buffer, exportable as Chrome trace-event JSON ([chrome://tracing] /
    Perfetto) and as a plain-text flame summary.

    Spans carry a {!category} (rendered as the Chrome [cat] field) and a
    {e lane} — the Chrome [tid]; distributed backends use one lane per
    simulated rank so the trace shows rank timelines side by side.

    When the tracer is disabled every entry point returns after one mutable
    field check and allocates nothing, so instrumentation can stay compiled
    in permanently. *)

type category =
  | Loop  (** a [par_loop] invocation, or its core/boundary sub-phase *)
  | Plan  (** execution-plan construction / kernel compilation *)
  | Colour_round  (** one conflict-free colour round of an executor *)
  | Halo_pack  (** gathering export elements into a message payload *)
  | Halo_post  (** posting a non-blocking send *)
  | Halo_wait  (** waiting for a message to arrive *)
  | Halo_unpack  (** scattering a received payload into halo slots *)
  | Reduce  (** global reductions and worker-state merges *)
  | Checkpoint  (** checkpoint snapshot / restore activity *)
  | Fault  (** fault injection, detection and retransmission activity *)
  | Worker  (** taskpool worker busy/idle occupancy spans *)

val category_to_string : category -> string
(** Lower-case name used as the Chrome [cat] field ("loop", "halo_post", ...). *)

type event = {
  ev_name : string;
  ev_cat : category;
  ev_instant : bool;  (** instants have [ev_dur = 0.] *)
  ev_ts : float;  (** microseconds since the tracer epoch *)
  ev_dur : float;  (** microseconds *)
  ev_lane : int;
  ev_args : (string * float) list;
}

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [capacity] is the ring-buffer size in events (default 65536): the most
    recent [capacity] events are kept, older ones are dropped and counted.
    [clock] (default [Unix.gettimeofday]) is injectable for deterministic
    tests.  Tracers start disabled. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val now_us : t -> float
(** Microseconds since the tracer epoch, for callers timing their own
    spans (see {!complete_span}). *)

val set_process_name : t -> string -> unit
(** Process label for the Chrome export (default ["active_mesh"]). *)

val set_lane_name : t -> lane:int -> string -> unit
(** Label a lane's Chrome timeline ("worker 3"); unnamed lanes render as
    ["rank N"].  Names survive {!clear}. *)

val lane_name : t -> int -> string option

val reserve_lanes : t -> int -> unit
(** Pre-grow per-lane state for lanes [0..n-1].  Lane growth is not
    domain-safe, so concurrent recorders (taskpool workers) need their
    lanes reserved before they start. *)

val begin_span : t -> ?lane:int -> ?args:(string * float) list -> cat:category -> string -> unit
(** Open a span on [lane]'s stack.  [args] become Chrome [args] entries
    (ranks, byte counts).  No-op when disabled. *)

val end_span : t -> ?lane:int -> unit -> unit
(** Close the innermost open span on [lane] and record it.  An end with no
    open span only bumps {!unmatched}. *)

val with_span : t -> ?lane:int -> ?args:(string * float) list -> cat:category -> string -> (unit -> 'a) -> 'a
(** [with_span t ~cat name f] runs [f] inside a span; the span is closed
    even if [f] raises.  Calls [f] directly when disabled. *)

val instant : t -> ?lane:int -> ?args:(string * float) list -> cat:category -> string -> unit
(** Record a zero-duration marker event. *)

val complete_span :
  t -> ?lane:int -> ?args:(string * float) list -> cat:category -> ts:float -> dur:float -> string -> unit
(** Record a span whose [ts]/[dur] (microseconds, see {!now_us}) the caller
    measured itself.  Safe to call from multiple domains concurrently
    (slot allocation is atomic); no per-lane stack state is involved. *)

val clear : t -> unit
(** Drop all recorded events and open spans, and restart the epoch. *)

val events : t -> event list
(** Retained events sorted by ascending [ev_ts]. *)

val recorded : t -> int
(** Events recorded since the last {!clear} (including dropped ones). *)

val dropped : t -> int
(** Events lost to ring-buffer wrap-around. *)

val unmatched : t -> int
(** [end_span] calls that found no open span. *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON: leading ["M"] metadata events name the
    process and each lane, then ["X"] (complete) events for spans, ["i"]
    for instants; [pid] 0, [tid] = lane, [ts]/[dur] in microseconds.  Load
    via [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val write_chrome : t -> path:string -> unit

val flame_summary : t -> string
(** Plain-text flame view: spans aggregated by call path (lanes merged),
    with inclusive/self time and counts, indented by nesting depth. *)
