lib/checkpoint/runtime.ml: Am_core Am_sysio Array Float Hashtbl List Option Planner Printf String
