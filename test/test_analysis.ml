(* Tests for the correctness-checking stack: argument-constructor
   validation, the descriptor lints, plan validation, the cross-loop
   dataflow pass, and the sanitizer execution backends.

   The central tests are differential: the real proxy-application loop
   shapes pass with zero warning/error findings, and a seeded defect (an
   Inc demoted to Write through a many-to-one map, an undeclared stencil
   point, a kernel writing a Read argument, a forged plan colouring) is
   reported as exactly that defect, naming the loop, the argument and —
   for the sanitizer — the element. *)

module Op2 = Am_op2.Op2
module Plan = Am_op2.Plan
module Ops = Am_ops.Ops
module Ops1 = Am_ops.Ops1
module Ops3 = Am_ops.Ops3
module Access = Am_core.Access
module Descr = Am_core.Descr
module Umesh = Am_mesh.Umesh
module Analysis = Am_analysis.Analysis
module Lint = Am_analysis.Lint
module Dataflow = Am_analysis.Dataflow
module Finding = Am_analysis.Finding

let contains = Str_contains.contains

(* ---- argument-constructor validation --------------------------------- *)

let expect_invalid_arg what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_constructors () =
  let ctx = Op2.create () in
  let s = Op2.decl_set ctx ~name:"pts" ~size:4 in
  let u = Op2.decl_dat_zero ctx ~name:"u" ~set:s ~dim:1 in
  expect_invalid_arg "op2 dat Min" (fun () -> Op2.arg_dat u Access.Min);
  expect_invalid_arg "op2 gbl Write" (fun () ->
      Op2.arg_gbl ~name:"g" [| 0.0 |] Access.Write);
  let octx = Ops.create () in
  let b = Ops.decl_block octx ~name:"grid" in
  let d = Ops.decl_dat octx ~name:"d" ~block:b ~xsize:4 ~ysize:4 () in
  expect_invalid_arg "ops dat Max" (fun () ->
      Ops.arg_dat d Ops.stencil_point Access.Max);
  expect_invalid_arg "ops gbl Rw" (fun () ->
      Ops.arg_gbl ~name:"g" [| 0.0 |] Access.Rw);
  let c1 = Ops1.create () in
  let b1 = Ops1.decl_block c1 ~name:"line" in
  let d1 = Ops1.decl_dat c1 ~name:"d1" ~block:b1 ~xsize:4 () in
  expect_invalid_arg "ops1 dat Min" (fun () ->
      Ops1.arg_dat d1 Ops1.stencil_point Access.Min);
  let c3 = Ops3.create () in
  let b3 = Ops3.decl_block c3 ~name:"box" in
  let d3 = Ops3.decl_dat c3 ~name:"d3" ~block:b3 ~xsize:3 ~ysize:3 ~zsize:3 () in
  expect_invalid_arg "ops3 dat Max" (fun () ->
      Ops3.arg_dat d3 Ops3.stencil_point Access.Max);
  expect_invalid_arg "ops3 gbl Write" (fun () ->
      Ops3.arg_gbl ~name:"g" [| 0.0 |] Access.Write)

(* ---- descriptor lints ------------------------------------------------- *)

let errors_of fs = List.filter Finding.is_error fs
let warnings_of fs = List.filter Finding.is_warning fs

(* The Airfoil res_calc shape over the real generated mesh: res incremented
   through both components of edge_cells. Mutating the Inc to a Write must
   produce a witnessed many-to-one race on the real map table. *)
let airfoil_shape () =
  let mesh = Umesh.generate_airfoil ~nx:12 ~ny:8 () in
  let t = Am_airfoil.App.create mesh in
  let ec = t.Am_airfoil.App.edge_cells in
  let maps =
    [
      {
        Lint.mi_name = ec.Am_op2.Types.map_name;
        mi_arity = ec.Am_op2.Types.arity;
        mi_values = ec.Am_op2.Types.values;
      };
    ]
  in
  (maps, mesh)

let airfoil_res_loop mesh access =
  let res_arg k access =
    {
      Descr.dat_name = "res";
      dat_id = 5;
      dim = 4;
      access;
      kind =
        Descr.Indirect { map_name = "edge_cells"; map_index = k; ratio = 1.0 };
    }
  in
  {
    Descr.loop_name = "res_calc";
    set_name = "edges";
    set_size = mesh.Umesh.n_edges;
    args = [ res_arg 0 access; res_arg 1 access ];
    info = Descr.default_kernel_info;
  }

let test_lint_many_to_one () =
  let maps, mesh = airfoil_shape () in
  let loop access = airfoil_res_loop mesh access in
  let clean = Lint.lint ~maps (loop Access.Inc) in
  Alcotest.(check int) "Inc through a shared map is clean" 0
    (List.length (errors_of clean) + List.length (warnings_of clean));
  let bad = Lint.lint ~maps (loop Access.Write) in
  let errs = errors_of bad in
  Alcotest.(check bool) "mutation reported" true (errs <> []);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check string) "finding names the loop" "res_calc" f.Finding.loop)
    errs;
  let race =
    List.find
      (fun (f : Finding.t) -> contains f.Finding.message "definite race")
      errs
  in
  Alcotest.(check bool) "witness names the map" true
    (contains race.Finding.message "edge_cells");
  Alcotest.(check bool) "finding is arg-specific" true (race.Finding.arg >= 0)

let test_lint_aliasing () =
  let maps, mesh = airfoil_shape () in
  let arg k access =
    {
      Descr.dat_name = "q";
      dat_id = 2;
      dim = 4;
      access;
      kind =
        Descr.Indirect { map_name = "edge_cells"; map_index = k; ratio = 1.0 };
    }
  in
  let loop =
    {
      Descr.loop_name = "bad_alias";
      set_name = "edges";
      set_size = mesh.Umesh.n_edges;
      args = [ arg 0 Access.Read; arg 1 Access.Write ];
      info = Descr.default_kernel_info;
    }
  in
  let errs = errors_of (Lint.lint ~maps loop) in
  Alcotest.(check bool) "read vs cross-element write is an error" true
    (List.exists (fun (f : Finding.t) -> contains f.Finding.message "race") errs)

let test_lint_modes () =
  let loop =
    {
      Descr.loop_name = "bad_modes";
      set_name = "cells";
      set_size = 10;
      args =
        [
          {
            Descr.dat_name = "g";
            dat_id = -1;
            dim = 1;
            access = Access.Write;
            kind = Descr.Global;
          };
          {
            Descr.dat_name = "u";
            dat_id = 0;
            dim = 1;
            access = Access.Min;
            kind = Descr.Direct;
          };
        ];
      info = Descr.default_kernel_info;
    }
  in
  Alcotest.(check int) "both illegal modes reported" 2
    (List.length (errors_of (Lint.lint loop)))

(* ---- plan validation -------------------------------------------------- *)

let test_plan_validate () =
  let mesh = Umesh.generate_square ~nx:9 ~ny:7 () in
  let ctx = Op2.create () in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
  let edge_cells =
    Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges ~to_set:cells ~arity:2
      ~values:mesh.Umesh.edge_cells
  in
  let du = Op2.decl_dat_zero ctx ~name:"du" ~set:cells ~dim:1 in
  let args =
    [
      Op2.arg_dat_indirect du edge_cells 0 Access.Inc;
      Op2.arg_dat_indirect du edge_cells 1 Access.Inc;
    ]
  in
  let set_size = mesh.Umesh.n_edges in
  let plan = Plan.build ~set_size ~block_size:8 args in
  Alcotest.(check int) "built plan proves race-free" 0
    (List.length (Plan.validate ~set_size args plan));
  (* Forge the block colouring: every block in one colour round. Adjacent
     blocks share cells, so the validator must produce a witness. *)
  let nb = plan.Plan.blocks.Am_mesh.Coloring.n_blocks in
  let forged =
    {
      plan with
      Plan.block_coloring =
        {
          Am_mesh.Coloring.colors = Array.make nb 0;
          n_colors = 1;
          by_color = [| Array.init nb (fun i -> i) |];
        };
    }
  in
  let vs = Plan.validate ~set_size args forged in
  Alcotest.(check bool) "forged colouring caught" true (vs <> []);
  let msg = Plan.violation_to_string ~name:"flux" (List.hd vs) in
  Alcotest.(check bool) "witness names colour and target" true
    (contains msg "colour" && contains msg "conflict target")

(* ---- sanitizer backend: OP2 ------------------------------------------ *)

let expect_violation what sub f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected a sanitizer violation")
  | exception Am_op2.Exec_check.Violation msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S in %S" what sub msg)
      true (contains msg sub)

let expect_ops_violation what sub f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected a sanitizer violation")
  | exception Am_ops.Exec_check.Violation msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S in %S" what sub msg)
      true (contains msg sub)

let sani_ctx () =
  let ctx = Op2.create ~backend:Op2.Check () in
  let s = Op2.decl_set ctx ~name:"pts" ~size:8 in
  let u =
    Op2.decl_dat ctx ~name:"u" ~set:s ~dim:1
      ~data:(Array.init 8 (fun i -> 1.0 +. float_of_int i))
  in
  let w = Op2.decl_dat_zero ctx ~name:"w" ~set:s ~dim:1 in
  let acc = Op2.decl_dat_zero ctx ~name:"acc" ~set:s ~dim:1 in
  (ctx, s, u, w, acc)

let test_sanitizer_op2_violations () =
  let ctx, s, u, w, acc = sani_ctx () in
  expect_violation "write to Read arg" "Read argument" (fun () ->
      Op2.par_loop ctx ~name:"wr" s
        [ Op2.arg_dat u Access.Read ]
        (fun a -> a.(0).(0) <- 0.0));
  expect_violation "read of Write poison" "Write argument is NaN" (fun () ->
      Op2.par_loop ctx ~name:"rp" s
        [ Op2.arg_dat w Access.Write ]
        (fun a -> a.(0).(0) <- a.(0).(0) +. 1.0));
  expect_violation "unwritten Write slot" "never wrote" (fun () ->
      Op2.par_loop ctx ~name:"uw" s [ Op2.arg_dat w Access.Write ] (fun _ -> ()));
  expect_violation "canary tail" "wrote past" (fun () ->
      Op2.par_loop ctx ~name:"ct" s
        [ Op2.arg_dat w Access.Write ]
        (fun a ->
          a.(0).(0) <- 1.0;
          a.(0).(1) <- 2.0));
  expect_violation "poison propagated into Inc" "increment component" (fun () ->
      Op2.par_loop ctx ~name:"pi" s
        [ Op2.arg_dat w Access.Write; Op2.arg_dat acc Access.Inc ]
        (fun a ->
          a.(1).(0) <- a.(0).(0);
          a.(0).(0) <- 1.0));
  expect_violation "out-of-range staging index" "out-of-range" (fun () ->
      Op2.par_loop ctx ~name:"oob" s
        [ Op2.arg_dat w Access.Write ]
        (fun a ->
          a.(0).(0) <- 1.0;
          a.(0).(7) <- 1.0));
  expect_violation "write to Read global" "Read global" (fun () ->
      Op2.par_loop ctx ~name:"gw" s
        [ Op2.arg_dat w Access.Write; Op2.arg_gbl ~name:"g" [| 2.5 |] Access.Read ]
        (fun a ->
          a.(0).(0) <- 1.0;
          a.(1).(0) <- 3.0))

(* The diagnostic carries the loop, argument index and element coordinate. *)
let test_sanitizer_op2_coordinates () =
  let ctx, s, _, w, _ = sani_ctx () in
  match
    Op2.par_loop ctx ~name:"pinpoint" s
      [ Op2.arg_dat w Access.Write ]
      (fun a -> if a.(0).(1) = 0.0 then a.(0).(0) <- 1.0 (* never: slot 1 is a canary NaN *))
  with
  | _ -> Alcotest.fail "expected a violation"
  | exception Am_op2.Exec_check.Violation msg ->
    Alcotest.(check bool) "names loop, arg and element" true
      (contains msg "loop pinpoint" && contains msg "arg 0"
      && contains msg "element 0")

(* A clean indirect program under Check is bitwise-identical to Seq. *)
let test_sanitizer_op2_clean () =
  let build backend =
    let mesh = Umesh.generate_square ~nx:9 ~ny:7 () in
    let ctx = Op2.create ~backend () in
    let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
    let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
    let edge_cells =
      Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges ~to_set:cells ~arity:2
        ~values:mesh.Umesh.edge_cells
    in
    let init = Array.init mesh.Umesh.n_cells (fun c -> sin (float_of_int c *. 0.1)) in
    let u = Op2.decl_dat ctx ~name:"u" ~set:cells ~dim:1 ~data:init in
    let du = Op2.decl_dat_zero ctx ~name:"du" ~set:cells ~dim:1 in
    let rms = [| 0.0 |] in
    for _ = 1 to 3 do
      Op2.par_loop ctx ~name:"flux" edges
        [
          Op2.arg_dat_indirect u edge_cells 0 Access.Read;
          Op2.arg_dat_indirect u edge_cells 1 Access.Read;
          Op2.arg_dat_indirect du edge_cells 0 Access.Inc;
          Op2.arg_dat_indirect du edge_cells 1 Access.Inc;
        ]
        (fun a ->
          let f = a.(1).(0) -. a.(0).(0) in
          a.(2).(0) <- a.(2).(0) +. f;
          a.(3).(0) <- a.(3).(0) -. f);
      Op2.par_loop ctx ~name:"update" cells
        [
          Op2.arg_dat u Access.Rw;
          Op2.arg_dat du Access.Rw;
          Op2.arg_gbl ~name:"rms" rms Access.Inc;
        ]
        (fun a ->
          a.(0).(0) <- a.(0).(0) +. (0.1 *. a.(1).(0));
          a.(2).(0) <- a.(2).(0) +. (a.(1).(0) *. a.(1).(0));
          a.(1).(0) <- 0.0)
    done;
    (Op2.fetch ctx u, rms.(0))
  in
  let u_seq, rms_seq = build Op2.Seq in
  let u_chk, rms_chk = build Op2.Check in
  Alcotest.(check bool) "u bitwise equal" true (u_seq = u_chk);
  Alcotest.(check (float 0.0)) "rms equal" rms_seq rms_chk

(* ---- sanitizer backend: OPS ------------------------------------------ *)

let test_sanitizer_ops () =
  let build backend =
    let ctx = Ops.create ~backend () in
    let b = Ops.decl_block ctx ~name:"grid" in
    let u = Ops.decl_dat ctx ~name:"u" ~block:b ~xsize:8 ~ysize:6 () in
    let w = Ops.decl_dat ctx ~name:"w" ~block:b ~xsize:8 ~ysize:6 () in
    Ops.init ctx u (fun x y _ -> float_of_int ((x * 10) + y));
    Ops.par_loop ctx ~name:"smooth" b (Ops.interior u)
      [
        Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
        Ops.arg_dat w Ops.stencil_point Access.Write;
      ]
      (fun a ->
        a.(1).(0) <- 0.25 *. (a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4)));
    Ops.fetch_interior ctx w
  in
  Alcotest.(check bool) "ops clean run matches seq" true
    (build Ops.Seq = build Ops.Check);
  let ctx = Ops.create ~backend:Ops.Check () in
  let b = Ops.decl_block ctx ~name:"grid" in
  let u = Ops.decl_dat ctx ~name:"u" ~block:b ~xsize:8 ~ysize:6 () in
  let w = Ops.decl_dat ctx ~name:"w" ~block:b ~xsize:8 ~ysize:6 () in
  Ops.init ctx u (fun _ _ _ -> 1.0);
  (* The stencil declares only the centre point; reading slot 1 picks up a
     canary NaN, which the Write argument's scatter then rejects. *)
  expect_ops_violation "undeclared stencil point" "Write argument is NaN"
    (fun () ->
      Ops.par_loop ctx ~name:"missing_pt" b (Ops.interior u)
        [
          Ops.arg_dat u Ops.stencil_point Access.Read;
          Ops.arg_dat w Ops.stencil_point Access.Write;
        ]
        (fun a -> a.(1).(0) <- a.(0).(1)));
  expect_ops_violation "write to Read arg names the point" "point ("
    (fun () ->
      Ops.par_loop ctx ~name:"wr2" b (Ops.interior u)
        [
          Ops.arg_dat u Ops.stencil_point Access.Read;
          Ops.arg_dat w Ops.stencil_point Access.Write;
        ]
        (fun a ->
          a.(0).(0) <- 0.0;
          a.(1).(0) <- 1.0))

let test_sanitizer_ops1_ops3 () =
  let c1 = Ops1.create ~backend:Ops1.Check () in
  let b1 = Ops1.decl_block c1 ~name:"line" in
  let u1 = Ops1.decl_dat c1 ~name:"u1" ~block:b1 ~xsize:8 () in
  Ops1.init c1 u1 (fun x _ -> float_of_int x);
  expect_ops_violation "ops1 write to Read" "Read argument" (fun () ->
      Ops1.par_loop c1 ~name:"wr1" b1 (Ops1.interior u1)
        [ Ops1.arg_dat u1 Ops1.stencil_point Access.Read ]
        (fun a -> a.(0).(0) <- 9.0));
  let c3 = Ops3.create ~backend:Ops3.Check () in
  let b3 = Ops3.decl_block c3 ~name:"box" in
  let w3 = Ops3.decl_dat c3 ~name:"w3" ~block:b3 ~xsize:4 ~ysize:4 ~zsize:4 () in
  expect_ops_violation "ops3 unwritten Write" "never wrote" (fun () ->
      Ops3.par_loop c3 ~name:"uw3" b3 (Ops3.interior w3)
        [ Ops3.arg_dat w3 Ops3.stencil_point Access.Write ]
        (fun _ -> ()))

(* ---- cross-loop dataflow ---------------------------------------------- *)

let direct_arg name id access =
  { Descr.dat_name = name; dat_id = id; dim = 1; access; kind = Descr.Direct }

let mk_loop name args =
  {
    Descr.loop_name = name;
    set_name = "cells";
    set_size = 100;
    args;
    info = Descr.default_kernel_info;
  }

let test_dataflow_dead_write () =
  let loops =
    [
      mk_loop "writer_a" [ direct_arg "d" 0 Access.Write ];
      mk_loop "writer_b" [ direct_arg "d" 0 Access.Write ];
    ]
  in
  let r = Analysis.analyze loops in
  let w = List.filter Finding.is_warning r.Analysis.findings in
  Alcotest.(check bool) "dead write warned under exact coverage" true
    (List.exists (fun (f : Finding.t) -> contains f.Finding.message "dead write") w);
  let r' = Analysis.analyze ~direct_covers:false loops in
  Alcotest.(check int) "only a note when ranges are unknown" 0
    (Analysis.warnings r' + Analysis.errors r')

let test_dataflow_halo_schedule () =
  let stencil_read name dat out out_id =
    mk_loop name
      [
        {
          Descr.dat_name = dat;
          dat_id = 0;
          dim = 1;
          access = Access.Read;
          kind = Descr.Stencil { points = 5; extent = 1 };
        };
        direct_arg out out_id Access.Write;
      ]
  in
  let cycle =
    [
      mk_loop "relax" [ direct_arg "u" 0 Access.Write ];
      stencil_read "smooth" "u" "out_a" 1;
      stencil_read "smooth_again" "u" "out_b" 2;
    ]
  in
  (* two repetitions so the period detector sees a full cycle *)
  let r = Analysis.analyze (cycle @ cycle) in
  Alcotest.(check int) "one period analysed" 3 r.Analysis.loops_analyzed;
  let sched =
    List.filter (fun ex -> ex.Dataflow.ex_dat = "u") r.Analysis.schedule
  in
  Alcotest.(check int) "two ghost-reaching reads" 2 (List.length sched);
  (match sched with
  | [ a; b ] ->
    Alcotest.(check bool) "first read needs the exchange" true
      (a.Dataflow.ex_kind = Dataflow.Needed && a.Dataflow.ex_loop = "smooth");
    Alcotest.(check bool) "second read's exchange is redundant" true
      (b.Dataflow.ex_kind = Dataflow.Redundant)
  | _ -> Alcotest.fail "unexpected schedule shape");
  Alcotest.(check int) "halo schedule is not a warning" 0
    (Analysis.warnings r + Analysis.errors r)

let test_dataflow_ghost_depth () =
  let loop =
    mk_loop "wide"
      [
        {
          Descr.dat_name = "u";
          dat_id = 0;
          dim = 1;
          access = Access.Read;
          kind = Descr.Stencil { points = 7; extent = 3 };
        };
        direct_arg "out" 1 Access.Write;
      ]
  in
  let r = Analysis.analyze ~ghost_depth:2 [ loop ] in
  Alcotest.(check int) "stencil past the ghost shell is an error" 1
    (Analysis.errors r);
  let f = List.find Finding.is_error r.Analysis.findings in
  Alcotest.(check bool) "names the loop and depth" true
    (f.Finding.loop = "wide" && contains f.Finding.message "ghost shell");
  Alcotest.(check int) "within the shell is clean" 0
    (Analysis.errors (Analysis.analyze ~ghost_depth:3 [ loop ]))

(* ---- whole applications under --check are clean ----------------------- *)

let test_airfoil_clean () =
  let mesh = Umesh.generate_airfoil ~nx:16 ~ny:12 () in
  let t = Am_airfoil.App.create mesh in
  Op2.set_backend t.Am_airfoil.App.ctx Op2.Check;
  Am_core.Trace.set_enabled (Op2.trace t.Am_airfoil.App.ctx) true;
  for _ = 1 to 3 do
    ignore (Am_airfoil.App.iteration t)
  done;
  let r = Analysis.check_op2 t.Am_airfoil.App.ctx in
  Alcotest.(check int) "airfoil has no error/warning findings" 0
    (Analysis.errors r + Analysis.warnings r)

let test_tealeaf_clean () =
  let t = Am_tealeaf.App.create ~n:8 () in
  Ops3.set_backend t.Am_tealeaf.App.ctx Ops3.Check;
  Am_core.Trace.set_enabled (Ops3.trace t.Am_tealeaf.App.ctx) true;
  for _ = 1 to 2 do
    ignore (Am_tealeaf.App.step t)
  done;
  let r = Analysis.check_ops3 t.Am_tealeaf.App.ctx in
  Alcotest.(check int) "tealeaf has no error/warning findings" 0
    (Analysis.errors r + Analysis.warnings r)

let () =
  Alcotest.run "analysis"
    [
      ( "constructors",
        [ Alcotest.test_case "access-mode validation" `Quick test_constructors ] );
      ( "lint",
        [
          Alcotest.test_case "many-to-one write mutation" `Quick
            test_lint_many_to_one;
          Alcotest.test_case "cross-element aliasing" `Quick test_lint_aliasing;
          Alcotest.test_case "illegal modes" `Quick test_lint_modes;
        ] );
      ( "plan",
        [ Alcotest.test_case "validate + forged colouring" `Quick test_plan_validate ]
      );
      ( "sanitizer-op2",
        [
          Alcotest.test_case "violations" `Quick test_sanitizer_op2_violations;
          Alcotest.test_case "diagnostic coordinates" `Quick
            test_sanitizer_op2_coordinates;
          Alcotest.test_case "clean run equals seq" `Quick test_sanitizer_op2_clean;
        ] );
      ( "sanitizer-ops",
        [
          Alcotest.test_case "2d" `Quick test_sanitizer_ops;
          Alcotest.test_case "1d and 3d" `Quick test_sanitizer_ops1_ops3;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "dead write" `Quick test_dataflow_dead_write;
          Alcotest.test_case "halo schedule" `Quick test_dataflow_halo_schedule;
          Alcotest.test_case "ghost depth" `Quick test_dataflow_ghost_depth;
        ] );
      ( "apps",
        [
          Alcotest.test_case "airfoil clean under check" `Quick test_airfoil_clean;
          Alcotest.test_case "tealeaf clean under check" `Quick test_tealeaf_clean;
        ] );
    ]
