test/test_op2.mli:
