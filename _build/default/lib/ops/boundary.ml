(* Physical boundary conditions on the ghost ring (OPS's update_halo).

   CloverLeaf-style codes refresh their ghost cells after every phase with
   reflective boundaries: ghost values mirror interior values, with an
   optional sign flip for velocity components normal to the wall.  Reading
   and writing the same dataset across an offset is exactly the dependence
   [par_loop] forbids, so — like OPS itself — the library provides this as
   a built-in operation rather than a user kernel.

   Mirroring is centre-aware: cell-centred fields reflect about the cell
   interface (ghost -k <-> interior k-1), node-centred fields about the
   boundary node (ghost -k <-> interior k). *)

open Types

type centering = Cell | Node

(* Mirror source index for ghost index [g] outside [0, size). *)
let mirror_low centering k = match centering with Cell -> k - 1 | Node -> k
let mirror_high centering size k =
  match centering with Cell -> size - k | Node -> size - 1 - k

(* Apply on a raw accessor so the distributed backend can reuse the logic on
   rank-local windows. [rows] restricts the y range handled (global row
   numbering, half-open). *)
let apply_via ~get ~set ~(dat : dat) ~depth ~sign_x ~sign_y ~center_x ~center_y
    ~row_lo ~row_hi =
  if depth > dat.halo then invalid_arg "Boundary.mirror: depth exceeds ghost ring";
  (* Vertical (y) mirrors: global ghost rows, owned by edge ranks. *)
  for k = 1 to depth do
    let pairs =
      [ (-k, mirror_low center_y k); (dat.ysize - 1 + k, mirror_high center_y dat.ysize k) ]
    in
    List.iter
      (fun (ghost_y, src_y) ->
        if ghost_y >= row_lo && ghost_y < row_hi then
          for x = 0 to dat.xsize - 1 do
            for c = 0 to dat.dim - 1 do
              set x ghost_y c (sign_y *. get x src_y c)
            done
          done)
      pairs
  done;
  (* Horizontal (x) mirrors on every locally stored row, ghost rows included
     so corners are consistent without communication. *)
  let y_lo = max (-dat.halo) (row_lo - dat.halo) in
  let y_hi = min (dat.ysize + dat.halo) (row_hi + dat.halo) in
  for y = y_lo to y_hi - 1 do
    for k = 1 to depth do
      for c = 0 to dat.dim - 1 do
        set (-k) y c (sign_x *. get (mirror_low center_x k) y c);
        set (dat.xsize - 1 + k) y c (sign_x *. get (mirror_high center_x dat.xsize k) y c)
      done
    done
  done

let mirror ?(depth = 2) ?(sign_x = 1.0) ?(sign_y = 1.0) ?(center_x = Cell)
    ?(center_y = Cell) dat =
  apply_via
    ~get:(fun x y c -> get dat ~x ~y ~c)
    ~set:(fun x y c v -> set dat ~x ~y ~c v)
    ~dat ~depth ~sign_x ~sign_y ~center_x ~center_y ~row_lo:(-dat.halo)
    ~row_hi:(dat.ysize + dat.halo)
