(* Unit tests for the observability layer: span-tracer well-formedness and
   Chrome-trace export, the zero-cost disabled path, and the counter
   registry's JSON round-trip.

   The tracer takes an injectable clock, so every timing-sensitive case
   below runs against a deterministic stepping clock (1 us per reading) and
   checks exact timestamps. *)

module Tracer = Am_obs.Tracer
module Counters = Am_obs.Counters
module Histogram = Am_obs.Histogram
module Obs = Am_obs.Obs
module Profile = Am_core.Profile

(* A clock that advances one microsecond per reading, starting at 0. *)
let stepping_clock () =
  let now = ref 0.0 in
  fun () ->
    let v = !now in
    now := v +. 1e-6;
    v

(* ---- Span nesting ----------------------------------------------------- *)

(* Spans recorded through begin/end must come back properly nested: on any
   one lane, two span intervals are either disjoint or one contains the
   other. *)
let test_nesting_well_formed () =
  let t = Tracer.create ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  (* lane 0: outer containing two sequential children; lane 1 interleaved *)
  Tracer.begin_span t ~cat:Tracer.Loop "outer";
  Tracer.begin_span t ~cat:Tracer.Plan "child_a";
  Tracer.begin_span t ~lane:1 ~cat:Tracer.Halo_pack "other_lane";
  Tracer.end_span t ();
  Tracer.begin_span t ~cat:Tracer.Reduce "child_b";
  Tracer.end_span t ~lane:1 ();
  Tracer.end_span t ();
  Tracer.end_span t ();
  let evs = Tracer.events t in
  Alcotest.(check int) "all spans recorded" 4 (List.length evs);
  Alcotest.(check int) "no unmatched ends" 0 (Tracer.unmatched t);
  let spans = List.filter (fun e -> not e.Tracer.ev_instant) evs in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b && a.Tracer.ev_lane = b.Tracer.ev_lane then begin
            let a0 = a.Tracer.ev_ts and a1 = a.Tracer.ev_ts +. a.Tracer.ev_dur in
            let b0 = b.Tracer.ev_ts and b1 = b.Tracer.ev_ts +. b.Tracer.ev_dur in
            let disjoint = a1 <= b0 || b1 <= a0 in
            let a_in_b = b0 <= a0 && a1 <= b1 in
            let b_in_a = a0 <= b0 && b1 <= a1 in
            if not (disjoint || a_in_b || b_in_a) then
              Alcotest.failf "spans %s and %s overlap without nesting"
                a.Tracer.ev_name b.Tracer.ev_name
          end)
        spans)
    spans;
  (* events come back sorted by start time *)
  let rec monotonic = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "ts ascending" true (a.Tracer.ev_ts <= b.Tracer.ev_ts);
      monotonic rest
    | _ -> ()
  in
  monotonic evs

let test_unmatched_end_counted () =
  let t = Tracer.create ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  Tracer.end_span t ();
  Tracer.begin_span t ~cat:Tracer.Loop "a";
  Tracer.end_span t ();
  Tracer.end_span t ();
  Alcotest.(check int) "unmatched ends" 2 (Tracer.unmatched t);
  Alcotest.(check int) "matched span kept" 1 (List.length (Tracer.events t))

let test_ring_wraparound () =
  let t = Tracer.create ~capacity:16 ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  for i = 1 to 20 do
    Tracer.instant t ~cat:Tracer.Loop (Printf.sprintf "i%d" i)
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Tracer.recorded t);
  Alcotest.(check int) "dropped = overflow" 4 (Tracer.dropped t);
  let evs = Tracer.events t in
  Alcotest.(check int) "capacity retained" 16 (List.length evs);
  (* the oldest four were overwritten: the survivors start at i5 *)
  Alcotest.(check string) "oldest survivor" "i5" (List.hd evs).Tracer.ev_name

let test_with_span_closes_on_raise () =
  let t = Tracer.create ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  (try Tracer.with_span t ~cat:Tracer.Loop "body" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Tracer.events t));
  Tracer.end_span t ();
  Alcotest.(check int) "stack empty after raise" 1 (Tracer.unmatched t)

(* ---- Chrome export ---------------------------------------------------- *)

(* Exact golden output under the stepping clock: schema fields, "X" vs "i"
   phases, microsecond timestamps, per-lane tids, args object. *)
let test_chrome_json_golden () =
  let t = Tracer.create ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  Tracer.begin_span t ~cat:Tracer.Loop "outer";
  Tracer.begin_span t ~cat:Tracer.Plan ~args:[ ("bytes", 64.0) ] "inner";
  Tracer.end_span t ();
  Tracer.instant t ~lane:1 ~cat:Tracer.Halo_post "isend";
  Tracer.end_span t ();
  let expected =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
    ^ "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"active_mesh\"}},\n"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"rank 0\"}},\n"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"rank 1\"}},\n"
    ^ "{\"name\":\"outer\",\"cat\":\"loop\",\"ph\":\"X\",\"ts\":1.000,\"dur\":4.000,\"pid\":0,\"tid\":0},\n"
    ^ "{\"name\":\"inner\",\"cat\":\"plan\",\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000,\"pid\":0,\"tid\":0,\"args\":{\"bytes\":64.000}},\n"
    ^ "{\"name\":\"isend\",\"cat\":\"halo_post\",\"ph\":\"i\",\"ts\":4.000,\"dur\":0.000,\"pid\":0,\"tid\":1,\"s\":\"t\"}\n"
    ^ "]}\n"
  in
  Alcotest.(check string) "chrome trace golden" expected (Tracer.to_chrome_json t)

(* Explicit lane names land in the thread_name metadata events, and survive
   [clear] (lane identity outlives the ring contents). *)
let test_chrome_lane_names () =
  let t = Tracer.create ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  Tracer.set_process_name t "bench";
  Tracer.set_lane_name t ~lane:64 "worker 0";
  Tracer.instant t ~lane:64 ~cat:Tracer.Worker "busy";
  let json = Tracer.to_chrome_json t in
  Alcotest.(check bool) "process named" true
    (Str_contains.contains json "{\"name\":\"bench\"}");
  Alcotest.(check bool) "lane named" true
    (Str_contains.contains json
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":64,\"args\":{\"name\":\"worker 0\"}}");
  Tracer.clear t;
  Alcotest.(check (option string)) "lane name survives clear" (Some "worker 0")
    (Tracer.lane_name t 64)

let test_chrome_json_escaping () =
  let t = Tracer.create ~clock:(stepping_clock ()) () in
  Tracer.set_enabled t true;
  Tracer.instant t ~cat:Tracer.Loop "quote\"back\\slash\nnewline";
  let json = Tracer.to_chrome_json t in
  Alcotest.(check bool) "escaped" true
    (Str_contains.contains json "quote\\\"back\\\\slash\\nnewline")

(* ---- Disabled path ---------------------------------------------------- *)

(* With the tracer disabled, span entry points must allocate nothing: the
   instrumentation is compiled into every hot loop permanently. *)
let test_disabled_no_allocation () =
  let t = Tracer.create () in
  Alcotest.(check bool) "starts disabled" false (Tracer.enabled t);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Tracer.begin_span t ~cat:Tracer.Loop "hot";
    Tracer.instant t ~cat:Tracer.Halo_post "isend";
    Tracer.end_span t ()
  done;
  let w1 = Gc.minor_words () in
  (* slack covers the boxed floats of the two Gc.minor_words calls *)
  Alcotest.(check bool) "no per-call allocation" true (w1 -. w0 < 64.0);
  Alcotest.(check int) "nothing recorded" 0 (Tracer.recorded t)

(* ---- Histogram cells --------------------------------------------------- *)

(* The fixed log-bucketed layout: boundaries grow by exactly 2^(1/4), a
   value sitting on a boundary is inclusive (lands below), a value just
   above it moves one bucket up, and the pathological inputs the record
   path must absorb (zero, negatives, NaN, huge) land in the edge
   buckets. *)
let test_hist_boundaries () =
  (* geometric layout *)
  for i = 1 to Histogram.n_buckets - 2 do
    let ratio = Histogram.bucket_upper i /. Histogram.bucket_upper (i - 1) in
    Alcotest.(check (float 1e-9)) "boundary ratio" Histogram.bucket_ratio ratio
  done;
  (* inclusive upper bounds: the boundary value itself stays in bucket i *)
  for i = 0 to Histogram.n_buckets - 2 do
    let b = Histogram.bucket_upper i in
    Alcotest.(check int) "boundary inclusive" i (Histogram.bucket_index b);
    Alcotest.(check int) "just above moves up" (i + 1)
      (Histogram.bucket_index (b *. 1.0000001));
    Alcotest.(check bool) "lower < upper" true
      (Histogram.bucket_lower i < Histogram.bucket_upper i)
  done;
  (* edge inputs never raise and land in the edge buckets *)
  List.iter
    (fun v -> Alcotest.(check int) "degenerate to bucket 0" 0 (Histogram.bucket_index v))
    [ 0.0; -1.0; Float.nan; 1e-12; Float.neg_infinity ];
  Alcotest.(check int) "huge to overflow"
    (Histogram.n_buckets - 1)
    (Histogram.bucket_index 1e9);
  Alcotest.(check int) "inf to overflow"
    (Histogram.n_buckets - 1)
    (Histogram.bucket_index Float.infinity);
  Alcotest.(check (float 0.0)) "overflow open-ended" Float.infinity
    (Histogram.bucket_upper (Histogram.n_buckets - 1))

(* Quantiles on a known distribution: 100 samples of 1ms and one outlier
   of 1s.  The median must sit within one bucket ratio of 1ms, p99 too
   (rank 100 of 101 is still a 1ms sample), and max is exact. *)
let test_hist_quantiles () =
  let h = Histogram.create "t" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.p50 h);
  for _ = 1 to 100 do
    Histogram.record h 1e-3
  done;
  Histogram.record h 1.0;
  Alcotest.(check int) "count" 101 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "min exact" 1e-3 (Histogram.min_value h);
  Alcotest.(check (float 1e-12)) "max exact" 1.0 (Histogram.max_value h);
  let within_bucket got truth =
    got >= truth -. 1e-12 && got <= truth *. Histogram.bucket_ratio +. 1e-12
  in
  Alcotest.(check bool) "p50 ~ 1ms" true (within_bucket (Histogram.p50 h) 1e-3);
  Alcotest.(check bool) "p99 ~ 1ms" true (within_bucket (Histogram.p99 h) 1e-3);
  Alcotest.(check (float 1e-12)) "q=1 is max" 1.0 (Histogram.quantile h 1.0);
  Alcotest.(check (float 1e-12)) "sum" (0.1 +. 1.0) (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" (1.1 /. 101.0) (Histogram.mean h)

(* The record path is always-on in every par_loop, so it must not allocate.
   Samples are literal constants: a float computed at the call site is
   boxed by the caller, which would charge the measurement for an
   allocation that is not the record path's. *)
let test_hist_no_allocation () =
  let h = Histogram.create "hot" in
  let w0 = Gc.minor_words () in
  for _ = 1 to 2_500 do
    Histogram.record h 1e-6;
    Histogram.record h 5e-4;
    Histogram.record h 0.2;
    Histogram.record h 1e3
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool) "no per-record allocation" true (w1 -. w0 < 64.0);
  Alcotest.(check int) "all recorded" 10_000 (Histogram.count h)

let test_hist_reset () =
  let h = Histogram.create "r" in
  Histogram.record h 0.5;
  Histogram.record h 2.0;
  Histogram.reset h;
  Alcotest.(check int) "count zero" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "sum zero" 0.0 (Histogram.sum h);
  Alcotest.(check (float 0.0)) "min zero when empty" 0.0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max zero when empty" 0.0 (Histogram.max_value h);
  Alcotest.(check (float 0.0)) "quantile zero" 0.0 (Histogram.p90 h);
  Alcotest.(check bool) "no live buckets" true
    ((Histogram.snapshot h).Histogram.s_buckets = []);
  (* reusable after reset *)
  Histogram.record h 3.0;
  Alcotest.(check (float 1e-12)) "records again" 3.0 (Histogram.max_value h);
  (* registry reset covers histogram cells too *)
  let reg = Counters.create () in
  let rh = Counters.histogram reg "lat" in
  Counters.observe rh 1.0;
  Counters.reset reg;
  Alcotest.(check int) "registry reset clears hist" 0 (Histogram.count rh)

(* A registry holding a histogram next to plain cells must survive the
   to_json/parse_json round trip structurally, and kind clashes between
   histograms and counters/gauges are rejected both ways. *)
let test_hist_json_round_trip () =
  let reg = Counters.create () in
  let c = Counters.counter reg "plain.counter" in
  let h = Counters.histogram reg ~unit_:"s" "loop.seconds" in
  let empty = Counters.histogram reg "empty.hist" in
  ignore empty;
  Counters.add c 7;
  List.iter (Counters.observe h) [ 1e-6; 1e-6; 5e-4; 0.2; 1e3 ];
  let parsed = Counters.parse_json (Counters.to_json reg) in
  Alcotest.(check bool) "round trip equals snapshot" true
    (parsed = Counters.snapshot reg);
  (match List.assoc "loop.seconds" parsed with
  | Counters.Hist s ->
    let h' = Histogram.create "restored" in
    Histogram.restore h' s;
    Alcotest.(check int) "restored count" (Histogram.count h) (Histogram.count h');
    Alcotest.(check (float 1e-12)) "restored p50" (Histogram.p50 h) (Histogram.p50 h');
    Alcotest.(check (float 1e-12)) "restored max" (Histogram.max_value h)
      (Histogram.max_value h')
  | _ -> Alcotest.fail "loop.seconds did not parse as a histogram");
  Alcotest.check_raises "histogram/counter clash"
    (Invalid_argument "Counters: loop.seconds already registered as a histogram")
    (fun () -> ignore (Counters.counter reg "loop.seconds"));
  Alcotest.check_raises "counter/histogram clash"
    (Invalid_argument "Counters: plain.counter already registered as a counter")
    (fun () -> ignore (Counters.histogram reg "plain.counter"))

(* Property: against a sorted-array nearest-rank oracle, the histogram
   quantile is never below the true quantile and at most one bucket ratio
   above it (that is the documented resolution guarantee). *)
let prop_hist_quantile_vs_oracle =
  let open QCheck in
  let sample = map (fun x -> Float.pow 10.0 ((x *. 10.0) -. 8.0)) (float_bound_inclusive 1.0) in
  let gen = pair (list_of_size Gen.(1 -- 200) sample) (float_bound_inclusive 1.0) in
  Test.make ~name:"histogram quantile vs sorted-array oracle" ~count:300 gen
    (fun (samples, q) ->
      let h = Histogram.create "prop" in
      List.iter (Histogram.record h) samples;
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let oracle = sorted.(rank - 1) in
      let est = Histogram.quantile h q in
      est >= oracle *. (1.0 -. 1e-9)
      && est <= oracle *. Histogram.bucket_ratio *. (1.0 +. 1e-9))

(* ---- Counter registry ------------------------------------------------- *)

let test_counters_basic () =
  let reg = Counters.create () in
  let c = Counters.counter reg ~unit_:"bytes" "comm.bytes" in
  let g = Counters.gauge reg "halo.seconds" in
  Counters.add c 100;
  Counters.incr c;
  Counters.addf g 0.5;
  Counters.addf g 0.25;
  Alcotest.(check int) "counter value" 101 (Counters.value c);
  Alcotest.(check (float 1e-12)) "gauge value" 0.75 (Counters.valuef g);
  (* re-registering the same name returns the same cell *)
  let c' = Counters.counter reg "comm.bytes" in
  Counters.incr c';
  Alcotest.(check int) "same cell" 102 (Counters.value c);
  Counters.reset reg;
  Alcotest.(check int) "reset zeroes" 0 (Counters.value c);
  Alcotest.check_raises "counter/gauge kind clash"
    (Invalid_argument "Counters: comm.bytes already registered as a counter")
    (fun () -> ignore (Counters.gauge reg "comm.bytes"))

let test_counters_json_round_trip () =
  let reg = Counters.create () in
  let a = Counters.counter reg "zz.last" in
  let b = Counters.counter reg "aa.first" in
  let g = Counters.gauge reg "mid.gauge" in
  let gi = Counters.gauge reg "mid.integral" in
  Counters.add a 12345678;
  Counters.add b 0;
  Counters.set g 1.5;
  Counters.set gi 3.0;
  let parsed = Counters.parse_json (Counters.to_json reg) in
  Alcotest.(check bool) "round trip equals snapshot" true
    (parsed = Counters.snapshot reg);
  (* sorted by name, integral floats keep a decimal point *)
  Alcotest.(check string) "first key" "aa.first" (fst (List.hd parsed));
  Alcotest.(check bool) "integral gauge stays float" true
    (List.assoc "mid.integral" parsed = Counters.Float 3.0)

let test_counters_json_malformed () =
  Alcotest.(check bool) "malformed rejected" true
    (try
       ignore (Counters.parse_json "{\"a\": }");
       false
     with Failure _ -> true)

(* ---- Profile-on-registry regression ----------------------------------- *)

(* A loop that only ever records halo time (no bytes, no compute seconds)
   must render "-" for bandwidth, not inf or nan. *)
let test_report_halo_only_dash () =
  let p = Profile.create () in
  Profile.record_halo p ~name:"halo_only" ~seconds:0.01 ();
  let report = Profile.report p in
  Alcotest.(check bool) "no inf" false (Str_contains.contains report "inf");
  Alcotest.(check bool) "no nan" false (Str_contains.contains report "nan");
  Alcotest.(check bool) "dash rendered" true (Str_contains.contains report "-")

let test_obs_report_smoke () =
  Obs.reset ();
  Counters.add Obs.plan_hits 9;
  Counters.add Obs.plan_misses 1;
  let loops =
    [
      {
        Obs.lr_name = "flux";
        lr_calls = 10;
        lr_seconds = 0.1;
        lr_bytes = 100_000_000;
        lr_halo_seconds = 0.01;
        lr_overlap_seconds = 0.002;
      };
      {
        Obs.lr_name = "halo_only";
        lr_calls = 0;
        lr_seconds = 0.0;
        lr_bytes = 0;
        lr_halo_seconds = 0.01;
        lr_overlap_seconds = 0.0;
      };
    ]
  in
  let report = Obs.report ~roofline_gbs:100.0 ~loops () in
  Alcotest.(check bool) "loop named" true (Str_contains.contains report "flux");
  Alcotest.(check bool) "hit rate shown" true
    (Str_contains.contains report "90.0%");
  Alcotest.(check bool) "no inf in report" false (Str_contains.contains report "inf");
  Obs.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "nesting well-formed" `Quick test_nesting_well_formed;
          Alcotest.test_case "unmatched ends counted" `Quick test_unmatched_end_counted;
          Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "with_span closes on raise" `Quick
            test_with_span_closes_on_raise;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "golden export" `Quick test_chrome_json_golden;
          Alcotest.test_case "name escaping" `Quick test_chrome_json_escaping;
          Alcotest.test_case "lane names" `Quick test_chrome_lane_names;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_boundaries;
          Alcotest.test_case "quantiles on known data" `Quick test_hist_quantiles;
          Alcotest.test_case "record allocates nothing" `Quick
            test_hist_no_allocation;
          Alcotest.test_case "reset semantics" `Quick test_hist_reset;
          Alcotest.test_case "registry json round trip" `Quick
            test_hist_json_round_trip;
          QCheck_alcotest.to_alcotest prop_hist_quantile_vs_oracle;
        ] );
      ( "disabled",
        [ Alcotest.test_case "zero allocation" `Quick test_disabled_no_allocation ] );
      ( "counters",
        [
          Alcotest.test_case "basic ops" `Quick test_counters_basic;
          Alcotest.test_case "json round trip" `Quick test_counters_json_round_trip;
          Alcotest.test_case "malformed json" `Quick test_counters_json_malformed;
        ] );
      ( "report",
        [
          Alcotest.test_case "halo-only loop renders dash" `Quick
            test_report_halo_only_dash;
          Alcotest.test_case "obs report smoke" `Quick test_obs_report_smoke;
        ] );
    ]
