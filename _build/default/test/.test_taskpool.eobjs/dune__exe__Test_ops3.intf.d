test/test_ops3.mli:
