lib/experiments/calibrate.ml: Am_aero Am_airfoil Am_cloverleaf Am_cloverleaf3 Am_core Am_hydra Am_mesh Am_op2 Am_ops Am_perfmodel Am_simmpi Am_tealeaf Float Hashtbl List Option
