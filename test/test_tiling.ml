(* Lazy loop chains and cross-loop cache tiling.

   The contract under test is strong: on the Seq backend a flushed chain,
   executed tile-by-tile under the skewed schedule, must be BITWISE equal
   to eager execution — same traversal order per loop, one global merge
   per loop.  The suites therefore compare float bit patterns, not
   epsilon-close values: CloverLeaf hydro steps and TeaLeaf CG solves
   across a tile-size sweep, randomized synthetic chains (stencils,
   read-global refills, mirrors, reductions, chain-bound flushes), plus
   the planner/validator unit tests, the schedule cache, every flush
   trigger the facades promise (reductions, checkpoints, Obs exports),
   and the sanitizer backend driving the tiled schedule. *)

module Ops = Am_ops.Ops
module Ops1 = Am_ops.Ops1
module Ops3 = Am_ops.Ops3
module Tiling = Am_ops.Tiling
module Access = Am_core.Access
module Obs = Am_obs.Obs
module Counters = Am_obs.Counters
module CApp = Am_cloverleaf.App
module TApp = Am_tealeaf.App

(* Bit-pattern equality: distinguishes -0.0 from 0.0 and treats equal NaN
   payloads as equal, which float (=) does not. *)
let bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))) then
        ok := false)
    a;
  !ok

let check_bits name want got =
  if not (bits_equal want got) then
    Alcotest.failf "%s: tiled result is not bitwise equal to eager Seq" name

(* Deterministic int stream (no global RNG state). *)
let make_rand seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun n ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n

(* ---- Planner and validator unit tests ------------------------------------ *)

(* u' = smooth(u) ; v = smooth(u') ; u'' = combine(u', v): flow deps with
   extent 1 force a monotone skew of at least 1 per producer link. *)
let sample_chain =
  [|
    { Tiling.li_lo = 0; li_hi = 40; li_reads = [ (0, 1, 1) ]; li_writes = [ 1 ] };
    { Tiling.li_lo = 0; li_hi = 40; li_reads = [ (1, 1, 1) ]; li_writes = [ 2 ] };
    {
      Tiling.li_lo = 2;
      li_hi = 38;
      li_reads = [ (1, 0, 0); (2, 1, 1) ];
      li_writes = [ 1 ];
    };
  |]

let test_skew_monotone () =
  let sigma = Tiling.skew sample_chain in
  Alcotest.(check int) "loop 0 unskewed" 0 sigma.(0);
  if sigma.(1) < 1 then Alcotest.failf "flow dep ignored: sigma.(1) = %d" sigma.(1);
  if sigma.(2) < sigma.(1) + 1 then
    Alcotest.failf "transitive dep ignored: sigma = %d, %d" sigma.(1) sigma.(2)

let test_plan_validates () =
  List.iter
    (fun tile_size ->
      let sched = Tiling.plan ~tile_size sample_chain in
      (match Tiling.validate sample_chain sched with
      | [] -> ()
      | e :: _ -> Alcotest.failf "tile %d: %s" tile_size e);
      let total =
        Array.fold_left
          (fun acc l -> acc + max 0 (l.Tiling.li_hi - l.Tiling.li_lo))
          0 sample_chain
      in
      let covered =
        Array.fold_left
          (fun acc slabs ->
            Array.fold_left
              (fun acc { Tiling.s_lo; s_hi; _ } -> acc + (s_hi - s_lo))
              acc slabs)
          0 sched.Tiling.sched_tiles
      in
      Alcotest.(check int)
        (Printf.sprintf "tile %d covers every row once" tile_size)
        total covered)
    [ 1; 2; 3; 5; 8; 16; 64 ]

let test_validator_rejects_unskewed () =
  (* A schedule that ignores the flow dependence: both loops advance to the
     same frontier per tile, so loop 1 reads rows loop 0 has not written. *)
  let bogus =
    {
      Tiling.sched_tile = 8;
      sched_sigma = [| 0; 0; 0 |];
      sched_tiles =
        Array.init 5 (fun t ->
            let lo k = max (if k = 2 then 2 else 0) (t * 8) in
            let hi k = min (if k = 2 then 38 else 40) ((t + 1) * 8) in
            Array.of_list
              (List.filter_map
                 (fun k ->
                   if hi k > lo k then
                     Some { Tiling.s_loop = k; s_lo = lo k; s_hi = hi k }
                   else None)
                 [ 0; 1; 2 ]));
    }
  in
  match Tiling.validate sample_chain bogus with
  | [] -> Alcotest.fail "validator accepted a dependence-violating schedule"
  | _ :: _ -> ()

let test_schedule_cache () =
  let hits0 = Counters.value Obs.tile_hits in
  let misses0 = Counters.value Obs.tile_misses in
  let s1 = Tiling.find ~tile_size:7 sample_chain in
  let s2 = Tiling.find ~tile_size:7 sample_chain in
  if not (s1 == s2) then Alcotest.fail "same signature did not hit the cache";
  let s3 = Tiling.find ~tile_size:9 sample_chain in
  if s1 == s3 then Alcotest.fail "different tile size shared a schedule";
  if Counters.value Obs.tile_hits < hits0 + 1 then
    Alcotest.fail "tile_cache.hits did not advance";
  if Counters.value Obs.tile_misses < misses0 + 1 then
    Alcotest.fail "tile_cache.misses did not advance"

(* ---- CloverLeaf 2D: hydro steps across the tile sweep -------------------- *)

let seed_clover t =
  let bump dat seed =
    Ops.init t.CApp.ctx dat (fun x y _ ->
        let base = Ops.get dat ~x ~y ~c:0 in
        let h = ((x * 73) + (y * 179) + seed) land 0xFF in
        base *. (1.0 +. (1e-3 *. (Float.of_int h /. 255.0 -. 0.5))))
  in
  bump t.CApp.density0 7;
  bump t.CApp.energy0 13

let clover_state ?tile () =
  let t = CApp.create ~nx:24 ~ny:24 () in
  seed_clover t;
  (match tile with
  | Some tile_size -> Ops.set_lazy t.CApp.ctx ~tile_size true
  | None -> ());
  ignore (CApp.hydro_step t);
  ignore (CApp.hydro_step t);
  (CApp.density t, CApp.energy t, CApp.xvel t, t.CApp.dt)

let clover_eager = lazy (clover_state ())

let test_clover_tile_sweep () =
  let rd, re, rv, rdt = Lazy.force clover_eager in
  List.iter
    (fun tile ->
      let d, e, v, dt = clover_state ~tile () in
      let name field = Printf.sprintf "clover tile=%d %s" tile field in
      if Int64.bits_of_float dt <> Int64.bits_of_float rdt then
        Alcotest.failf "%s (%.17g vs %.17g)" (name "dt") dt rdt;
      check_bits (name "density") rd d;
      check_bits (name "energy") re e;
      check_bits (name "xvel") rv v)
    [ 1; 3; 8; 16; 64 ]

(* ---- TeaLeaf 3D: a CG solve across the tile sweep ------------------------ *)

let tea_state ?tile () =
  let t = TApp.create ~n:10 () in
  (match tile with
  | Some tile_size -> Ops3.set_lazy t.TApp.ctx ~tile_size true
  | None -> ());
  let iters = TApp.step ~max_iters:20 t in
  (TApp.temperature t, TApp.total_heat t, iters)

let tea_eager = lazy (tea_state ())

let test_tealeaf_tile_sweep () =
  let ru, rheat, riters = Lazy.force tea_eager in
  List.iter
    (fun tile ->
      let u, heat, iters = tea_state ~tile () in
      if iters <> riters then
        Alcotest.failf "tealeaf tile=%d: CG iteration count diverged (%d vs %d)"
          tile iters riters;
      if Int64.bits_of_float heat <> Int64.bits_of_float rheat then
        Alcotest.failf "tealeaf tile=%d: total heat diverged" tile;
      check_bits (Printf.sprintf "tealeaf tile=%d u" tile) ru u)
    [ 1; 2; 4; 10 ]

(* ---- 1D chain ------------------------------------------------------------ *)

let ops1_run setup =
  let ctx = Ops1.create () in
  let block = Ops1.decl_block ctx ~name:"line" in
  let u = Ops1.decl_dat ctx ~name:"u" ~block ~xsize:100 () in
  let w = Ops1.decl_dat ctx ~name:"w" ~block ~xsize:100 () in
  Ops1.init ctx u (fun x _ -> Float.of_int ((x * 37) mod 17) *. 0.25);
  setup ctx;
  for _ = 1 to 4 do
    Ops1.mirror_halo ctx u;
    Ops1.par_loop ctx ~name:"smooth" block (Ops1.interior w)
      [
        Ops1.arg_dat u Ops1.stencil_3pt Access.Read;
        Ops1.arg_dat w Ops1.stencil_point Access.Write;
      ]
      (fun a -> a.(1).(0) <- (a.(0).(0) +. a.(0).(1) +. a.(0).(2)) /. 3.0);
    Ops1.par_loop ctx ~name:"relax" block (Ops1.interior u)
      [
        Ops1.arg_dat w Ops1.stencil_point Access.Read;
        Ops1.arg_dat u Ops1.stencil_point Access.Rw;
      ]
      (fun a -> a.(1).(0) <- (0.7 *. a.(1).(0)) +. (0.3 *. a.(0).(0)))
  done;
  (Ops1.fetch_interior ctx u, Ops1.fetch_interior ctx w)

let ops1_state ?tile () =
  ops1_run (fun ctx ->
      match tile with
      | Some tile_size -> Ops1.set_lazy ctx ~tile_size true
      | None -> ())

let test_ops1_chain () =
  let ru, rw = ops1_state () in
  List.iter
    (fun tile ->
      let u, w = ops1_state ~tile () in
      check_bits (Printf.sprintf "1d tile=%d u" tile) ru u;
      check_bits (Printf.sprintf "1d tile=%d w" tile) rw w)
    [ 1; 7; 32; 512 ]

(* ---- Randomized 2D chains ------------------------------------------------ *)

(* A scripted chain interpreter: the same random script runs on an eager
   and a lazy context, so any divergence is the tiling's fault.  Scripts
   mix stencil loops (Write and Rw), an in-place-refilled Read-global
   (the CloverLeaf consts_buf hazard), mirrors and Inc reductions. *)
type env = { ctx : Ops.ctx; block : Ops.block; dats : Ops.dat array }

let make_env () =
  let ctx = Ops.create () in
  let block = Ops.decl_block ctx ~name:"b" in
  let dats =
    Array.init 3 (fun i ->
        Ops.decl_dat ctx ~name:(Printf.sprintf "d%d" i) ~block ~xsize:17 ~ysize:13 ())
  in
  Array.iteri
    (fun i dat ->
      Ops.init ctx dat (fun x y _ ->
          Float.of_int (((x * 31) + (y * 57) + (i * 11)) mod 23) *. 0.125))
    dats;
  { ctx; block; dats }

(* One shared scratch global, refilled in place before every loop that
   reads it — the record-time snapshot must preserve each loop's value. *)
let consts_buf = [| 0.0 |]

type step =
  | Smooth of int * int * float (* src, dst, consts value *)
  | Shift of int * int
  | Relax of int * int
  | Mirror of int
  | Reduce of int

let apply env sums step =
  match step with
  | Smooth (src, dst, c) ->
    consts_buf.(0) <- c;
    Ops.par_loop env.ctx ~name:"smooth" env.block (Ops.interior env.dats.(dst))
      [
        Ops.arg_dat env.dats.(src) Ops.stencil_2d_5pt Access.Read;
        Ops.arg_dat env.dats.(dst) Ops.stencil_point Access.Write;
        Ops.arg_gbl ~name:"consts" consts_buf Access.Read;
      ]
      (fun a ->
        a.(1).(0) <-
          a.(2).(0)
          *. (a.(0).(0) +. a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4)))
  | Shift (src, dst) ->
    Ops.par_loop env.ctx ~name:"shift" env.block (Ops.interior env.dats.(dst))
      [
        Ops.arg_dat env.dats.(src) Ops.stencil_2d_plus1y Access.Read;
        Ops.arg_dat env.dats.(dst) Ops.stencil_point Access.Write;
        Ops.arg_idx;
      ]
      (fun a ->
        a.(1).(0) <- a.(0).(1) +. (1e-3 *. (a.(2).(0) +. a.(2).(1))))
  | Relax (src, dst) ->
    Ops.par_loop env.ctx ~name:"relax" env.block (Ops.interior env.dats.(dst))
      [
        Ops.arg_dat env.dats.(src) Ops.stencil_2d_minus1y Access.Read;
        Ops.arg_dat env.dats.(dst) Ops.stencil_point Access.Rw;
      ]
      (fun a -> a.(1).(0) <- (0.6 *. a.(1).(0)) +. (0.4 *. a.(0).(1)))
  | Mirror i -> Ops.mirror_halo env.ctx env.dats.(i)
  | Reduce i ->
    let acc = [| 0.0 |] in
    Ops.par_loop env.ctx ~name:"sum" env.block (Ops.interior env.dats.(i))
      [
        Ops.arg_dat env.dats.(i) Ops.stencil_point Access.Read;
        Ops.arg_gbl ~name:"sum" acc Access.Inc;
      ]
      (fun a -> a.(1).(0) <- a.(1).(0) +. a.(0).(0));
    sums := acc.(0) :: !sums

let random_script rand =
  (* A written dat must be accessed centre-only by the whole loop, so the
     stencil-reading source is always a different dat. *)
  let pick2 rand =
    let src = rand 3 in
    (src, (src + 1 + rand 2) mod 3)
  in
  let len = 3 + rand 22 in
  List.init len (fun _ ->
      match rand 10 with
      | 0 | 1 | 2 ->
        let src, dst = pick2 rand in
        Smooth (src, dst, 0.19 +. (0.01 *. Float.of_int (rand 7)))
      | 3 | 4 ->
        let src, dst = pick2 rand in
        Shift (src, dst)
      | 5 | 6 ->
        let src, dst = pick2 rand in
        Relax (src, dst)
      | 7 | 8 -> Mirror (rand 3)
      | _ -> Reduce (rand 3))

let run_script ?tile script =
  let env = make_env () in
  (match tile with
  | Some tile_size -> Ops.set_lazy env.ctx ~tile_size true
  | None -> ());
  let sums = ref [] in
  List.iter (apply env sums) script;
  let fields = Array.map (Ops.fetch_interior env.ctx) env.dats in
  (fields, List.rev !sums)

let test_random_chains () =
  let rand = make_rand 0x5eed in
  for case = 1 to 40 do
    let script = random_script rand in
    let tile = 1 + rand 20 in
    let ref_fields, ref_sums = run_script script in
    let fields, sums = run_script ~tile script in
    if List.length sums <> List.length ref_sums then
      Alcotest.failf "case %d: reduction count diverged" case;
    List.iteri
      (fun i (a, b) ->
        if Int64.bits_of_float a <> Int64.bits_of_float b then
          Alcotest.failf "case %d tile=%d: reduction %d diverged (%.17g vs %.17g)"
            case tile i b a)
      (List.combine sums ref_sums);
    Array.iteri
      (fun i got ->
        check_bits
          (Printf.sprintf "case %d tile=%d dat %d" case tile i)
          ref_fields.(i) got)
      fields
  done

(* The chain-length bound must flush transparently: a chain far longer
   than [max_chain] still matches eager execution bitwise. *)
let test_long_chain_bound () =
  let script =
    List.concat
      (List.init 50 (fun i -> [ Smooth (0, 1, 0.2); Relax (1, 0); Mirror (i mod 3) ]))
  in
  let ref_fields, _ = run_script script in
  let fields, _ = run_script ~tile:8 script in
  Array.iteri
    (fun i got -> check_bits (Printf.sprintf "long chain dat %d" i) ref_fields.(i) got)
    fields

(* ---- Flush triggers ------------------------------------------------------ *)

let simple_loop env ~src ~dst =
  Ops.par_loop env.ctx ~name:"copy5" env.block (Ops.interior env.dats.(dst))
    [
      Ops.arg_dat env.dats.(src) Ops.stencil_2d_5pt Access.Read;
      Ops.arg_dat env.dats.(dst) Ops.stencil_point Access.Write;
    ]
    (fun a ->
      a.(1).(0) <- 0.2 *. (a.(0).(0) +. a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4)))

let test_reduction_flushes () =
  let env = make_env () in
  Ops.set_lazy env.ctx ~tile_size:4 true;
  simple_loop env ~src:0 ~dst:1;
  Alcotest.(check int) "loop queued" 1 (Ops.pending env.ctx);
  let acc = [| 0.0 |] in
  Ops.par_loop env.ctx ~name:"sum" env.block (Ops.interior env.dats.(1))
    [
      Ops.arg_dat env.dats.(1) Ops.stencil_point Access.Read;
      Ops.arg_gbl ~name:"sum" acc Access.Inc;
    ]
    (fun a -> a.(1).(0) <- a.(1).(0) +. a.(0).(0));
  Alcotest.(check int) "reduction flushed the chain" 0 (Ops.pending env.ctx);
  if acc.(0) = 0.0 then Alcotest.fail "reduction result not materialised"

let test_checkpoint_flushes () =
  let eager = make_env () in
  simple_loop eager ~src:0 ~dst:1;
  simple_loop eager ~src:1 ~dst:2;
  let want = Ops.fetch_interior eager.ctx eager.dats.(2) in
  let env = make_env () in
  Ops.set_lazy env.ctx ~tile_size:4 true;
  simple_loop env ~src:0 ~dst:1;
  Alcotest.(check int) "queued before checkpointing" 1 (Ops.pending env.ctx);
  Ops.enable_checkpointing env.ctx;
  Alcotest.(check int) "enable_checkpointing flushed" 0 (Ops.pending env.ctx);
  (* With a live session, recording is bypassed: the loop runs eagerly at
     its program point (a later restore must never replay a queued loop). *)
  simple_loop env ~src:1 ~dst:2;
  Alcotest.(check int) "live session bypasses recording" 0 (Ops.pending env.ctx);
  check_bits "checkpointed run" want (Ops.fetch_interior env.ctx env.dats.(2))

let test_obs_export_flushes () =
  let env = make_env () in
  Ops.set_lazy env.ctx ~tile_size:4 true;
  simple_loop env ~src:0 ~dst:1;
  Alcotest.(check int) "loop queued" 1 (Ops.pending env.ctx);
  ignore (Obs.report ());
  Alcotest.(check int) "Obs.report flushed the chain" 0 (Ops.pending env.ctx)

let test_chain_counters () =
  let loops0 = Counters.value Obs.chain_loops in
  let flushes0 = Counters.value Obs.chain_flushes in
  let tiles0 = Counters.value Obs.chain_tiles in
  let env = make_env () in
  Ops.set_lazy env.ctx ~tile_size:4 true;
  simple_loop env ~src:0 ~dst:1;
  simple_loop env ~src:1 ~dst:2;
  Ops.flush env.ctx;
  if Counters.value Obs.chain_loops < loops0 + 2 then
    Alcotest.fail "chain.queued_loops did not advance";
  if Counters.value Obs.chain_flushes < flushes0 + 1 then
    Alcotest.fail "chain.flushes did not advance";
  if Counters.value Obs.chain_tiles <= tiles0 then
    Alcotest.fail "chain.tiles did not advance"

(* ---- Sanitizer backend over the tiled schedule --------------------------- *)

let test_check_backend_tiled () =
  let run backend tile =
    let ctx = Ops.create ?backend () in
    let block = Ops.decl_block ctx ~name:"b" in
    let u = Ops.decl_dat ctx ~name:"u" ~block ~xsize:15 ~ysize:11 () in
    let w = Ops.decl_dat ctx ~name:"w" ~block ~xsize:15 ~ysize:11 () in
    Ops.init ctx u (fun x y _ -> Float.of_int (((x * 3) + (y * 7)) mod 13));
    (match tile with
    | Some tile_size -> Ops.set_lazy ctx ~tile_size true
    | None -> ());
    for _ = 1 to 3 do
      Ops.par_loop ctx ~name:"smooth" block (Ops.interior w)
        [
          Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
          Ops.arg_dat w Ops.stencil_point Access.Write;
        ]
        (fun a ->
          a.(1).(0) <-
            0.2 *. (a.(0).(0) +. a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4)));
      Ops.par_loop ctx ~name:"relax" block (Ops.interior u)
        [
          Ops.arg_dat w Ops.stencil_point Access.Read;
          Ops.arg_dat u Ops.stencil_point Access.Rw;
        ]
        (fun a -> a.(1).(0) <- (0.5 *. a.(1).(0)) +. (0.5 *. a.(0).(0)))
    done;
    Ops.fetch_interior ctx u
  in
  (* The guarded engine accepts a clean chain under tiling... *)
  let want = run None None in
  let got = run (Some Ops.Check) (Some 3) in
  check_bits "check backend, tiled chain" want got;
  (* ... and still catches a descriptor violation inside a tiled slab. *)
  let violated =
    let ctx = Ops.create ~backend:Ops.Check () in
    let block = Ops.decl_block ctx ~name:"b" in
    let u = Ops.decl_dat ctx ~name:"u" ~block ~xsize:8 ~ysize:8 () in
    let w = Ops.decl_dat ctx ~name:"w" ~block ~xsize:8 ~ysize:8 () in
    Ops.set_lazy ctx ~tile_size:2 true;
    Ops.par_loop ctx ~name:"fill_w" block (Ops.interior w)
      [ Ops.arg_dat w Ops.stencil_point Access.Write ]
      (fun a -> a.(0).(0) <- 1.0);
    Ops.par_loop ctx ~name:"bad" block (Ops.interior u)
      [
        Ops.arg_dat w Ops.stencil_point Access.Read;
        Ops.arg_dat u Ops.stencil_point Access.Write;
      ]
      (fun a ->
        a.(0).(0) <- 99.0 (* writes its Read argument *);
        a.(1).(0) <- 0.0);
    match Ops.flush ctx with
    | () -> false
    | exception Am_ops.Exec_check.Violation _ -> true
  in
  if not violated then
    Alcotest.fail "sanitizer missed a violation under tiled execution"

(* ---- Parallel tiled wavefront execution (tile-par) ----------------------- *)

(* The parallel contract is two-sided: dataset results stay BITWISE equal
   to eager Seq (each cell is computed exactly once, by one tile), while
   Inc global reductions merge per-tile partials in tile order — a fixed
   reassociation that is identical across pool sizes and runs but not the
   eager summation order, so those compare under an ulp bound.  Min/Max
   reductions are order-insensitive and stay exact. *)

module Tiling_par = Am_ops.Tiling_par

let with_pool size f =
  let pool = Am_taskpool.Pool.create ~size () in
  Fun.protect
    ~finally:(fun () -> Am_taskpool.Pool.shutdown pool)
    (fun () -> f pool)

(* Ordered-bits ulp distance; negative floats map below positives so the
   distance is monotone across zero. *)
let ulps_apart a b =
  let key x =
    let bits = Int64.bits_of_float x in
    if Int64.compare bits 0L >= 0 then bits else Int64.sub Int64.min_int bits
  in
  let d = Int64.sub (key a) (key b) in
  if Int64.compare d 0L < 0 then Int64.neg d else d

let reduction_bound = 1024L

let check_close name ~rtol want got =
  if Array.length want <> Array.length got then
    Alcotest.failf "%s: length mismatch" name;
  Array.iteri
    (fun i a ->
      let b = got.(i) in
      let scale = Float.max (Float.abs a) (Float.abs b) in
      if Float.abs (a -. b) > rtol *. Float.max scale 1e-30 then
        Alcotest.failf "%s: element %d diverged beyond tolerance (%.17g vs %.17g)"
          name i a b)
    want

(* -- planner mutations: forged schedules must be rejected with a witness -- *)

(* Inner-axis projection of the same shape as [sample_chain]: both axes
   carry flow dependences, so the product plan is a true diagonal
   wavefront (multiple waves, multi-tile diagonals). *)
let par_inner_chain =
  [|
    { Tiling.li_lo = 0; li_hi = 30; li_reads = [ (0, 1, 1) ]; li_writes = [ 1 ] };
    { Tiling.li_lo = 0; li_hi = 30; li_reads = [ (1, 1, 1) ]; li_writes = [ 2 ] };
    {
      Tiling.li_lo = 2;
      li_hi = 28;
      li_reads = [ (1, 0, 0); (2, 1, 1) ];
      li_writes = [ 1 ];
    };
  |]

let legal_par_sched () =
  Tiling_par.plan ~tile_size:8 ~outer:sample_chain ~inner:par_inner_chain

let test_par_verify_accepts () =
  let s = legal_par_sched () in
  Tiling_par.verify ~outer:sample_chain ~inner:par_inner_chain s;
  if Tiling_par.n_waves s < 2 then
    Alcotest.fail "expected a multi-wave schedule from a dependence-carrying chain";
  if s.Tiling_par.par_outer_free || s.Tiling_par.par_inner_free then
    Alcotest.fail "dependence-carrying axis reported as free"

let witness msg =
  if not (Str_contains.contains msg "loop" && Str_contains.contains msg "tile")
  then
    Alcotest.failf "rejection does not name a loop/tile witness: %s" msg

let test_par_verify_rejects_reordered_wave () =
  (* Swap the first two waves: tiles now run before same-band tiles they
     depend on — a sigma-flow violation the per-band axis replay catches. *)
  let s = legal_par_sched () in
  let waves = Array.copy s.Tiling_par.par_waves in
  let tmp = waves.(0) in
  waves.(0) <- waves.(1);
  waves.(1) <- tmp;
  let forged = { s with Tiling_par.par_waves = waves } in
  match Tiling_par.verify ~outer:sample_chain ~inner:par_inner_chain forged with
  | () -> Alcotest.fail "verifier accepted a wave-order (sigma-flow) forgery"
  | exception Tiling.Invalid_schedule msg -> witness msg

let test_par_verify_rejects_overlap () =
  (* Give one tile of a multi-tile wave its diagonal neighbour's bands:
     two same-wave tiles now write the same rectangles, which the explicit
     adjacent-tile overlap check must reject. *)
  let s = legal_par_sched () in
  let waves = Array.map Array.copy s.Tiling_par.par_waves in
  let wi =
    let found = ref (-1) in
    Array.iteri
      (fun i wave -> if !found < 0 && Array.length wave >= 2 then found := i)
      waves;
    if !found < 0 then Alcotest.fail "expected a wave with at least two tiles";
    !found
  in
  let a = waves.(wi).(0) and b = waves.(wi).(1) in
  waves.(wi).(0) <- { a with Tiling_par.pt_slabs = b.Tiling_par.pt_slabs };
  let forged = { s with Tiling_par.par_waves = waves } in
  match Tiling_par.verify ~outer:sample_chain ~inner:par_inner_chain forged with
  | () -> Alcotest.fail "verifier accepted overlapping same-wave tiles"
  | exception Tiling.Invalid_schedule msg -> witness msg

(* -- randomized differential battery: parallel tiled vs eager Seq -- *)

let run_script_par ~pool_size ~tile script =
  with_pool pool_size @@ fun pool ->
  let env = make_env () in
  Ops.set_tile_exec env.ctx (Ops.Tiled_par { pool; tile });
  let sums = ref [] in
  List.iter (apply env sums) script;
  let fields = Array.map (Ops.fetch_interior env.ctx) env.dats in
  (fields, List.rev !sums)

(* A chain still pending when its pool is shut down must flush caller-only
   instead of deadlocking on the departed workers — the Obs flush hooks run
   exactly this way at driver exit (pool shutdown first, trace write after). *)
let test_par_flush_after_shutdown () =
  let script =
    [
      Smooth (0, 1, 0.21);
      Reduce 1;
      Relax (1, 2);
      Shift (2, 0);
      Mirror 0;
      Smooth (2, 0, 0.23);
    ]
  in
  let ref_fields, ref_sums = run_script script in
  let pool = Am_taskpool.Pool.create ~size:3 () in
  let env = make_env () in
  Ops.set_tile_exec env.ctx (Ops.Tiled_par { pool; tile = 4 });
  let sums = ref [] in
  List.iter (apply env sums) script;
  (* the loops after the Reduce are still recorded, not yet executed *)
  Am_taskpool.Pool.shutdown pool;
  let fields = Array.map (Ops.fetch_interior env.ctx) env.dats in
  List.iteri
    (fun i (a, b) ->
      if ulps_apart a b > reduction_bound then
        Alcotest.failf "post-shutdown flush: reduction %d diverged (%.17g vs %.17g)"
          i b a)
    (List.combine (List.rev !sums) ref_sums);
  Array.iteri
    (fun i got ->
      check_bits (Printf.sprintf "post-shutdown flush dat %d" i) ref_fields.(i) got)
    fields

let gen_step =
  QCheck.Gen.(
    let pick2 =
      int_range 0 2 >>= fun src ->
      int_range 0 1 >>= fun d -> return (src, (src + 1 + d) mod 3)
    in
    frequency
      [
        ( 3,
          pick2 >>= fun (src, dst) ->
          int_range 0 6 >>= fun c ->
          return (Smooth (src, dst, 0.19 +. (0.01 *. Float.of_int c))) );
        (2, pick2 >>= fun (src, dst) -> return (Shift (src, dst)));
        (2, pick2 >>= fun (src, dst) -> return (Relax (src, dst)));
        (2, int_range 0 2 >>= fun i -> return (Mirror i));
        (1, int_range 0 2 >>= fun i -> return (Reduce i));
      ])

let gen_case = QCheck.Gen.(pair (list_size (int_range 3 24) gen_step) (int_range 1 8))

let test_par_random_chains () =
  let seed = Qcheck_util.base_seed in
  let cases =
    QCheck.Gen.generate ~rand:(Random.State.make [| seed |]) ~n:40 gen_case
  in
  List.iteri
    (fun case (script, tile) ->
      let ref_fields, ref_sums = run_script script in
      List.iter
        (fun pool_size ->
          let fields, sums = run_script_par ~pool_size ~tile script in
          Array.iteri
            (fun i got ->
              if not (bits_equal ref_fields.(i) got) then
                Qcheck_util.failf_seed seed
                  "case %d pool=%d tile=%d: dat %d is not bitwise equal to \
                   eager Seq"
                  case pool_size tile i)
            fields;
          if List.length sums <> List.length ref_sums then
            Qcheck_util.failf_seed seed "case %d pool=%d: reduction count diverged"
              case pool_size;
          List.iteri
            (fun i (got, want) ->
              (* chains with no Inc globals have no entries here: their
                 whole result is covered by the bitwise check above *)
              let d = ulps_apart want got in
              if Int64.compare d 0L < 0 || Int64.compare d reduction_bound > 0
              then
                Qcheck_util.failf_seed seed
                  "case %d pool=%d tile=%d: reduction %d is %Ld ulps from \
                   eager (%.17g vs %.17g)"
                  case pool_size tile i d got want)
            (List.combine sums ref_sums))
        [ 1; 2; 4 ])
    cases

(* -- proxy applications under the wavefront executor -- *)

let clover_par_state ~pool_size ~tile =
  with_pool pool_size @@ fun pool ->
  let t = CApp.create ~nx:24 ~ny:24 () in
  seed_clover t;
  Ops.set_tile_exec t.CApp.ctx (Ops.Tiled_par { pool; tile });
  ignore (CApp.hydro_step t);
  ignore (CApp.hydro_step t);
  (CApp.density t, CApp.energy t, CApp.xvel t, t.CApp.dt)

let test_par_clover () =
  (* CloverLeaf's only in-loop reductions are Min (calc_dt), which merge
     exactly in any order — the whole state must stay bitwise. *)
  let rd, re, rv, rdt = Lazy.force clover_eager in
  List.iter
    (fun pool_size ->
      let d, e, v, dt = clover_par_state ~pool_size ~tile:6 in
      let name field = Printf.sprintf "clover pool=%d %s" pool_size field in
      if Int64.bits_of_float dt <> Int64.bits_of_float rdt then
        Alcotest.failf "%s (%.17g vs %.17g)" (name "dt") dt rdt;
      check_bits (name "density") rd d;
      check_bits (name "energy") re e;
      check_bits (name "xvel") rv v)
    [ 1; 2; 4 ]

let tea_par_state ~pool_size =
  with_pool pool_size @@ fun pool ->
  let t = TApp.create ~n:10 () in
  Ops3.set_tile_exec t.TApp.ctx (Ops3.Tiled_par { pool; tile = 3 });
  let iters = TApp.step ~max_iters:20 t in
  (TApp.temperature t, TApp.total_heat t, iters)

let test_par_tealeaf () =
  (* CG dot products are Inc reductions driving the iteration, so the
     solution tracks eager Seq only to reassociation accuracy — but it
     must be IDENTICAL across pool sizes (per-tile partials, tile-order
     merge, pool-independent decomposition). *)
  let ru, rheat, _ = Lazy.force tea_eager in
  let u1, h1, i1 = tea_par_state ~pool_size:1 in
  let u2, h2, i2 = tea_par_state ~pool_size:2 in
  let u4, h4, i4 = tea_par_state ~pool_size:4 in
  if i1 <> i2 || i1 <> i4 then
    Alcotest.failf "CG iteration count depends on pool size (%d/%d/%d)" i1 i2 i4;
  check_bits "tealeaf pool 1 vs 2" u1 u2;
  check_bits "tealeaf pool 1 vs 4" u1 u4;
  if
    Int64.bits_of_float h1 <> Int64.bits_of_float h2
    || Int64.bits_of_float h1 <> Int64.bits_of_float h4
  then Alcotest.fail "tealeaf total heat depends on pool size";
  check_close "tealeaf u vs eager" ~rtol:1e-8 ru u1;
  check_close "tealeaf heat vs eager" ~rtol:1e-8 [| rheat |] [| h1 |]

let ops1_par_state ~pool_size ~tile =
  with_pool pool_size @@ fun pool ->
  ops1_run (fun ctx -> Ops1.set_tile_exec ctx (Ops1.Tiled_par { pool; tile }))

let test_par_ops1 () =
  let ru, rw = ops1_state () in
  List.iter
    (fun pool_size ->
      let u, w = ops1_par_state ~pool_size ~tile:16 in
      check_bits (Printf.sprintf "1d pool=%d u" pool_size) ru u;
      check_bits (Printf.sprintf "1d pool=%d w" pool_size) rw w)
    [ 1; 2; 4 ]

let test_par_ops1_collapse () =
  (* A pure map chain has a dependence-free x axis: with the degenerate
     inner axis also free, every tile lands in ONE wave. *)
  let run setup =
    let ctx = Ops1.create () in
    let block = Ops1.decl_block ctx ~name:"line" in
    let u = Ops1.decl_dat ctx ~name:"u" ~block ~xsize:96 () in
    let w = Ops1.decl_dat ctx ~name:"w" ~block ~xsize:96 () in
    Ops1.init ctx u (fun x _ -> Float.of_int ((x * 13) mod 9) *. 0.5);
    setup ctx;
    Ops1.par_loop ctx ~name:"scale" block (Ops1.interior w)
      [
        Ops1.arg_dat u Ops1.stencil_point Access.Read;
        Ops1.arg_dat w Ops1.stencil_point Access.Write;
      ]
      (fun a -> a.(1).(0) <- 2.0 *. a.(0).(0));
    Ops1.par_loop ctx ~name:"accum" block (Ops1.interior u)
      [
        Ops1.arg_dat w Ops1.stencil_point Access.Read;
        Ops1.arg_dat u Ops1.stencil_point Access.Rw;
      ]
      (fun a -> a.(1).(0) <- a.(1).(0) +. a.(0).(0));
    Ops1.flush ctx;
    (Ops1.fetch_interior ctx u, Ops1.fetch_interior ctx w)
  in
  let ru, rw = run (fun _ -> ()) in
  with_pool 4 @@ fun pool ->
  let w0 = Counters.value Obs.tile_wavefronts in
  let u, w =
    run (fun ctx -> Ops1.set_tile_exec ctx (Ops1.Tiled_par { pool; tile = 8 }))
  in
  Alcotest.(check int)
    "map chain collapses to one wave" 1
    (Counters.value Obs.tile_wavefronts - w0);
  check_bits "1d map chain u" ru u;
  check_bits "1d map chain w" rw w

(* -- metamorphic determinism -- *)

let sums_identical a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let test_par_determinism () =
  let seed = Qcheck_util.base_seed lxor 0xd37 in
  let rand = make_rand seed in
  for case = 1 to 5 do
    (* force Inc reductions into every case: they are the only part of the
       result where determinism is non-trivial *)
    let script = random_script rand @ [ Reduce 0; Reduce 2 ] in
    let tile = 1 + rand 8 in
    let f1, s1 = run_script_par ~pool_size:1 ~tile script in
    let f4, s4 = run_script_par ~pool_size:4 ~tile script in
    let f4', s4' = run_script_par ~pool_size:4 ~tile script in
    Array.iteri
      (fun i a ->
        if not (bits_equal a f4.(i)) then
          Qcheck_util.failf_seed seed "case %d: dat %d differs between pool 1 and 4"
            case i;
        if not (bits_equal f4.(i) f4'.(i)) then
          Qcheck_util.failf_seed seed
            "case %d: dat %d differs between two pool-4 runs" case i)
      f1;
    if not (sums_identical s1 s4) then
      Qcheck_util.failf_seed seed
        "case %d: Inc reductions differ between pool 1 and 4" case;
    if not (sums_identical s4 s4') then
      Qcheck_util.failf_seed seed
        "case %d: Inc reductions differ between two pool-4 runs" case
  done

(* -- sanitizer over the wavefront schedule -- *)

let test_par_check_clean () =
  let run setup =
    let ctx = Ops.create ?backend:(setup ()) () in
    let block = Ops.decl_block ctx ~name:"b" in
    let u = Ops.decl_dat ctx ~name:"u" ~block ~xsize:15 ~ysize:11 () in
    let w = Ops.decl_dat ctx ~name:"w" ~block ~xsize:15 ~ysize:11 () in
    Ops.init ctx u (fun x y _ -> Float.of_int (((x * 3) + (y * 7)) mod 13));
    (ctx, block, u, w)
  in
  let chain ctx block u w =
    for _ = 1 to 3 do
      Ops.par_loop ctx ~name:"smooth" block (Ops.interior w)
        [
          Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
          Ops.arg_dat w Ops.stencil_point Access.Write;
        ]
        (fun a ->
          a.(1).(0) <-
            0.2 *. (a.(0).(0) +. a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4)));
      Ops.par_loop ctx ~name:"relax" block (Ops.interior u)
        [
          Ops.arg_dat w Ops.stencil_point Access.Read;
          Ops.arg_dat u Ops.stencil_point Access.Rw;
        ]
        (fun a -> a.(1).(0) <- (0.5 *. a.(1).(0)) +. (0.5 *. a.(0).(0)))
    done;
    Ops.fetch_interior ctx u
  in
  let ctx, block, u, w = run (fun () -> None) in
  let want = chain ctx block u w in
  with_pool 2 @@ fun pool ->
  let ctx, block, u, w = run (fun () -> Some Ops.Check) in
  Ops.set_tile_exec ctx (Ops.Tiled_par { pool; tile = 3 });
  let w0 = Counters.value Obs.tile_wavefronts in
  let got = chain ctx block u w in
  check_bits "check backend over the wavefront schedule" want got;
  if Counters.value Obs.tile_wavefronts <= w0 then
    Alcotest.fail "Check did not traverse the wavefront schedule"

let test_par_check_race () =
  (* Bypass planning/verification entirely and hand the executor a one-wave
     schedule whose second tile reads rows the first tile writes: the
     sanitizer's cross-tile claim tracker must catch the race at run time
     (defense in depth behind [Tiling_par.verify]). *)
  with_pool 2 @@ fun pool ->
  let ctx = Ops.create ~backend:Ops.Check () in
  let block = Ops.decl_block ctx ~name:"b" in
  let u = Ops.decl_dat ctx ~name:"u" ~block ~xsize:12 ~ysize:12 () in
  let w = Ops.decl_dat ctx ~name:"w" ~block ~xsize:12 ~ysize:12 () in
  let v = Ops.decl_dat ctx ~name:"v" ~block ~xsize:12 ~ysize:12 () in
  Ops.init ctx u (fun x y _ -> Float.of_int (((x * 5) + y) mod 11));
  Ops.set_tile_exec ctx (Ops.Tiled_par { pool; tile = 6 });
  let r = Ops.interior w in
  let mid = (r.Ops.ylo + r.Ops.yhi) / 2 in
  let tile_for id (ylo, yhi) =
    {
      Tiling_par.pt_id = id;
      pt_outer = id;
      pt_inner = 0;
      pt_slabs =
        [|
          {
            Tiling_par.ps_loop = 0;
            ps_olo = ylo;
            ps_ohi = yhi;
            ps_ilo = r.Ops.xlo;
            ps_ihi = r.Ops.xhi;
          };
          {
            Tiling_par.ps_loop = 1;
            ps_olo = ylo;
            ps_ohi = yhi;
            ps_ilo = r.Ops.xlo;
            ps_ihi = r.Ops.xhi;
          };
        |];
    }
  in
  Tiling_par.inject_next_schedule
    {
      Tiling_par.par_tile = 6;
      par_sigma = [| 0; 0 |];
      par_tau = [| 0; 0 |];
      par_outer_free = false;
      par_inner_free = false;
      par_waves = [| [| tile_for 0 (r.Ops.ylo, mid); tile_for 1 (mid, r.Ops.yhi) |] |];
    };
  Ops.par_loop ctx ~name:"produce" block (Ops.interior w)
    [
      Ops.arg_dat u Ops.stencil_point Access.Read;
      Ops.arg_dat w Ops.stencil_point Access.Write;
    ]
    (fun a -> a.(1).(0) <- a.(0).(0) +. 1.0);
  Ops.par_loop ctx ~name:"consume" block (Ops.interior v)
    [
      Ops.arg_dat w Ops.stencil_2d_5pt Access.Read;
      Ops.arg_dat v Ops.stencil_point Access.Write;
    ]
    (fun a ->
      a.(1).(0) <- a.(0).(0) +. a.(0).(1) +. a.(0).(2) +. a.(0).(3) +. a.(0).(4));
  let v0 = Counters.value Obs.check_violations in
  (match Ops.flush ctx with
  | () -> Alcotest.fail "forged schedule ran without a sanitizer violation"
  | exception Am_ops.Exec_check.Violation msg ->
    if not (Str_contains.contains msg "cross-tile race") then
      Alcotest.failf "unexpected violation message: %s" msg);
  if Counters.value Obs.check_violations <= v0 then
    Alcotest.fail "check.violations did not advance"

(* -- counter discipline -- *)

let test_skew_counter_cache_stable () =
  (* Regression: the skew accounting lives behind the schedule caches — a
     replayed schedule must not count its skew rows again. *)
  Tiling.clear_cache ();
  Tiling_par.clear_cache ();
  let v0 = Counters.value Obs.tile_skew_rows in
  ignore (Tiling.find ~tile_size:5 sample_chain);
  let v1 = Counters.value Obs.tile_skew_rows in
  if v1 <= v0 then Alcotest.fail "fresh 1-axis plan did not account its skew rows";
  ignore (Tiling.find ~tile_size:5 sample_chain);
  Alcotest.(check int) "1-axis cache hit leaves skew_rows untouched" v1
    (Counters.value Obs.tile_skew_rows);
  ignore (Tiling_par.find ~tile_size:5 ~outer:sample_chain ~inner:par_inner_chain);
  let v2 = Counters.value Obs.tile_skew_rows in
  if v2 <= v1 then
    Alcotest.fail "fresh wavefront plan did not account its skew rows";
  ignore (Tiling_par.find ~tile_size:5 ~outer:sample_chain ~inner:par_inner_chain);
  Alcotest.(check int) "wavefront cache hit leaves skew_rows untouched" v2
    (Counters.value Obs.tile_skew_rows)

let test_par_counter_stability () =
  let script = [ Smooth (0, 1, 0.23); Relax (1, 2); Smooth (2, 0, 0.2) ] in
  ignore (run_script_par ~pool_size:2 ~tile:5 script);
  let v = Counters.value Obs.tile_skew_rows in
  ignore (run_script_par ~pool_size:2 ~tile:5 script);
  Alcotest.(check int) "replayed flush hits the cache without recounting skew" v
    (Counters.value Obs.tile_skew_rows)

let test_par_wavefront_counters () =
  let w0 = Counters.value Obs.tile_wavefronts in
  let s0 = Counters.value Obs.tile_par_slabs in
  ignore
    (run_script_par ~pool_size:2 ~tile:4
       [ Smooth (0, 1, 0.2); Relax (1, 0); Smooth (1, 2, 0.21) ]);
  if Counters.value Obs.tile_wavefronts <= w0 then
    Alcotest.fail "tile.wavefronts did not advance";
  if Counters.value Obs.tile_par_slabs <= s0 then
    Alcotest.fail "tile.par_slabs did not advance"

let () =
  Alcotest.run "tiling"
    [
      ( "planner",
        [
          Alcotest.test_case "skew respects dependences" `Quick test_skew_monotone;
          Alcotest.test_case "plans validate and cover" `Quick test_plan_validates;
          Alcotest.test_case "validator rejects unskewed schedule" `Quick
            test_validator_rejects_unskewed;
          Alcotest.test_case "schedule cache hits on repeat signature" `Quick
            test_schedule_cache;
        ] );
      ( "differential (bitwise vs eager Seq)",
        [
          Alcotest.test_case "cloverleaf 2D tile sweep" `Quick test_clover_tile_sweep;
          Alcotest.test_case "tealeaf 3D CG tile sweep" `Quick test_tealeaf_tile_sweep;
          Alcotest.test_case "1D smooth/relax chain" `Quick test_ops1_chain;
          Alcotest.test_case "randomized chains" `Quick test_random_chains;
          Alcotest.test_case "chain-length bound" `Quick test_long_chain_bound;
        ] );
      ( "flush triggers",
        [
          Alcotest.test_case "global reduction" `Quick test_reduction_flushes;
          Alcotest.test_case "checkpoint entry points" `Quick test_checkpoint_flushes;
          Alcotest.test_case "Obs exports" `Quick test_obs_export_flushes;
          Alcotest.test_case "chain counters" `Quick test_chain_counters;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "Check drives the tiled schedule" `Quick
            test_check_backend_tiled;
        ] );
      ( "tile-par (wavefront execution)",
        [
          Alcotest.test_case "verifier accepts planned schedules" `Quick
            test_par_verify_accepts;
          Alcotest.test_case "verifier rejects reordered waves" `Quick
            test_par_verify_rejects_reordered_wave;
          Alcotest.test_case "verifier rejects same-wave overlap" `Quick
            test_par_verify_rejects_overlap;
          Alcotest.test_case "randomized chains vs eager Seq" `Quick
            test_par_random_chains;
          Alcotest.test_case "cloverleaf 2D pool sweep" `Quick test_par_clover;
          Alcotest.test_case "tealeaf 3D CG pool sweep" `Quick test_par_tealeaf;
          Alcotest.test_case "1D pipeline chain" `Quick test_par_ops1;
          Alcotest.test_case "1D map chain collapses to one wave" `Quick
            test_par_ops1_collapse;
          Alcotest.test_case "pool-size and run-to-run determinism" `Quick
            test_par_determinism;
          Alcotest.test_case "Check drives the wavefront schedule" `Quick
            test_par_check_clean;
          Alcotest.test_case "Check catches an injected cross-tile race" `Quick
            test_par_check_race;
          Alcotest.test_case "pending chain flushes after pool shutdown" `Quick
            test_par_flush_after_shutdown;
          Alcotest.test_case "skew counter stable across cache hits" `Quick
            test_skew_counter_cache_stable;
          Alcotest.test_case "flush replay does not recount skew" `Quick
            test_par_counter_stability;
          Alcotest.test_case "wavefront counters advance" `Quick
            test_par_wavefront_counters;
        ] );
    ]
