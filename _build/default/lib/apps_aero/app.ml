(* The Aero proxy application in OP2 form: 2D FEM Poisson on the
   unstructured quad mesh, Newton outer iterations (one suffices for the
   linear model problem; the driver runs two to exercise the structure, as
   the published aero app does for its nonlinear problem), each solved with
   matrix-free conjugate gradients over the per-cell element matrices
   assembled by res_calc.

   Loop profile (the reason this proxy exists alongside Airfoil): a single
   very wide indirect assembly loop (13 arguments, 16-component per-cell
   matrix dataset), then a reduction-dominated CG inner loop — two global
   reductions per iteration plus an indirect spMV — where Airfoil is
   flux-dominated with one reduction per outer iteration. *)

module Op2 = Am_op2.Op2
module Access = Am_core.Access
module Umesh = Am_mesh.Umesh

type t = {
  ctx : Op2.ctx;
  mesh : Umesh.t;
  nodes : Op2.set;
  cells : Op2.set;
  cell_nodes : Op2.map_t;
  x : Op2.dat;
  phi : Op2.dat;
  k : Op2.dat;
  res : Op2.dat;
  p : Op2.dat;
  v : Op2.dat;
  u : Op2.dat;
  bmask : Op2.dat;
  cg_tol : float;
  cg_max_iters : int;
}

(* The standard Aero workload: a smoothly graded mesh of the unit square.
   On a perfectly uniform grid the sin-product load is an exact eigenvector
   of the tensor-product stiffness matrix and CG converges in one
   iteration; the grading makes the spectrum generic so the inner solver
   does real work, while the O(h^2) FEM convergence is unaffected. *)
let generate_mesh ~n =
  let g t = t +. (0.1 *. sin (2.0 *. Kernels.pi *. t)) in
  Umesh.generate_mapped ~nx:n ~ny:n
    ~coord:(fun i j -> (g (Float.of_int i /. Float.of_int n),
                        g (Float.of_int j /. Float.of_int n)))
    ~bound:(fun _ -> Umesh.boundary_wall)

(* 1.0 on nodes touched by any boundary edge, 0.0 inside. *)
let boundary_mask mesh =
  let mask = Array.make mesh.Umesh.n_nodes 0.0 in
  Array.iter (fun n -> mask.(n) <- 1.0) mesh.Umesh.bedge_nodes;
  mask

let create ?backend ?(cg_tol = 1e-12) ?(cg_max_iters = 200) (mesh : Umesh.t) =
  let ctx = Op2.create ?backend () in
  Op2.decl_const ctx ~name:"gauss" [| Kernels.gauss |];
  let nodes = Op2.decl_set ctx ~name:"nodes" ~size:mesh.Umesh.n_nodes in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let cell_nodes =
    Op2.decl_map ctx ~name:"cell_nodes" ~from_set:cells ~to_set:nodes ~arity:4
      ~values:mesh.Umesh.cell_nodes
  in
  let x = Op2.decl_dat ctx ~name:"x" ~set:nodes ~dim:2 ~data:mesh.Umesh.node_coords in
  let phi = Op2.decl_dat_zero ctx ~name:"phi" ~set:nodes ~dim:1 in
  let k = Op2.decl_dat_zero ctx ~name:"K" ~set:cells ~dim:16 in
  let res = Op2.decl_dat_zero ctx ~name:"res" ~set:nodes ~dim:1 in
  let p = Op2.decl_dat_zero ctx ~name:"p" ~set:nodes ~dim:1 in
  let v = Op2.decl_dat_zero ctx ~name:"v" ~set:nodes ~dim:1 in
  let u = Op2.decl_dat_zero ctx ~name:"u" ~set:nodes ~dim:1 in
  let bmask =
    Op2.decl_dat ctx ~name:"bmask" ~set:nodes ~dim:1 ~data:(boundary_mask mesh)
  in
  { ctx; mesh; nodes; cells; cell_nodes; x; phi; k; res; p; v; u; bmask;
    cg_tol; cg_max_iters }

let dirichlet t field =
  Op2.par_loop t.ctx ~name:"dirichlet" ~info:Kernels.dirichlet_info t.nodes
    [ Op2.arg_dat field Access.Rw; Op2.arg_dat t.bmask Access.Read ]
    Kernels.dirichlet

(* One Newton iteration: assemble, solve K u = res by CG, apply the
   update. Returns (cg_iterations, rms of the applied update). *)
let iteration t =
  Op2.par_loop t.ctx ~name:"res_calc" ~info:Kernels.res_calc_info t.cells
    [
      Op2.arg_dat_indirect t.x t.cell_nodes 0 Access.Read;
      Op2.arg_dat_indirect t.x t.cell_nodes 1 Access.Read;
      Op2.arg_dat_indirect t.x t.cell_nodes 2 Access.Read;
      Op2.arg_dat_indirect t.x t.cell_nodes 3 Access.Read;
      Op2.arg_dat_indirect t.phi t.cell_nodes 0 Access.Read;
      Op2.arg_dat_indirect t.phi t.cell_nodes 1 Access.Read;
      Op2.arg_dat_indirect t.phi t.cell_nodes 2 Access.Read;
      Op2.arg_dat_indirect t.phi t.cell_nodes 3 Access.Read;
      Op2.arg_dat t.k Access.Write;
      Op2.arg_dat_indirect t.res t.cell_nodes 0 Access.Inc;
      Op2.arg_dat_indirect t.res t.cell_nodes 1 Access.Inc;
      Op2.arg_dat_indirect t.res t.cell_nodes 2 Access.Inc;
      Op2.arg_dat_indirect t.res t.cell_nodes 3 Access.Inc;
    ]
    Kernels.res_calc;
  dirichlet t t.res;
  let rss = [| 0.0 |] in
  Op2.par_loop t.ctx ~name:"init_cg" ~info:Kernels.init_cg_info t.nodes
    [
      Op2.arg_dat t.res Access.Read;
      Op2.arg_dat t.p Access.Write;
      Op2.arg_dat t.u Access.Write;
      Op2.arg_dat t.v Access.Write;
      Op2.arg_gbl ~name:"rss" rss Access.Inc;
    ]
    Kernels.init_cg;
  let iters = ref 0 in
  let continue_ = ref (rss.(0) > t.cg_tol) in
  while !continue_ && !iters < t.cg_max_iters do
    incr iters;
    Op2.par_loop t.ctx ~name:"spMV" ~info:Kernels.spmv_info t.cells
      [
        Op2.arg_dat t.k Access.Read;
        Op2.arg_dat_indirect t.p t.cell_nodes 0 Access.Read;
        Op2.arg_dat_indirect t.p t.cell_nodes 1 Access.Read;
        Op2.arg_dat_indirect t.p t.cell_nodes 2 Access.Read;
        Op2.arg_dat_indirect t.p t.cell_nodes 3 Access.Read;
        Op2.arg_dat_indirect t.v t.cell_nodes 0 Access.Inc;
        Op2.arg_dat_indirect t.v t.cell_nodes 1 Access.Inc;
        Op2.arg_dat_indirect t.v t.cell_nodes 2 Access.Inc;
        Op2.arg_dat_indirect t.v t.cell_nodes 3 Access.Inc;
      ]
      Kernels.spmv;
    dirichlet t t.v;
    let dot = [| 0.0 |] in
    Op2.par_loop t.ctx ~name:"dot_pv" ~info:Kernels.dot_pv_info t.nodes
      [
        Op2.arg_dat t.p Access.Read;
        Op2.arg_dat t.v Access.Read;
        Op2.arg_gbl ~name:"dot" dot Access.Inc;
      ]
      Kernels.dot_pv;
    let alpha = [| rss.(0) /. dot.(0) |] in
    Op2.par_loop t.ctx ~name:"update_ur" ~info:Kernels.update_ur_info t.nodes
      [
        Op2.arg_gbl ~name:"alpha" alpha Access.Read;
        Op2.arg_dat t.p Access.Read;
        Op2.arg_dat t.v Access.Rw;
        Op2.arg_dat t.u Access.Rw;
        Op2.arg_dat t.res Access.Rw;
      ]
      Kernels.update_ur;
    let rss_new = [| 0.0 |] in
    Op2.par_loop t.ctx ~name:"dot_r" ~info:Kernels.dot_r_info t.nodes
      [ Op2.arg_dat t.res Access.Read; Op2.arg_gbl ~name:"rss" rss_new Access.Inc ]
      Kernels.dot_r;
    let beta = [| rss_new.(0) /. rss.(0) |] in
    Op2.par_loop t.ctx ~name:"update_p" ~info:Kernels.update_p_info t.nodes
      [
        Op2.arg_gbl ~name:"beta" beta Access.Read;
        Op2.arg_dat t.res Access.Read;
        Op2.arg_dat t.p Access.Rw;
      ]
      Kernels.update_p;
    rss.(0) <- rss_new.(0);
    continue_ := rss.(0) > t.cg_tol
  done;
  let rms = [| 0.0 |] in
  Op2.par_loop t.ctx ~name:"update" ~info:Kernels.update_info t.nodes
    [
      Op2.arg_dat t.u Access.Read;
      Op2.arg_dat t.phi Access.Rw;
      Op2.arg_dat t.res Access.Write;
      Op2.arg_gbl ~name:"rms" rms Access.Inc;
    ]
    Kernels.update;
  (!iters, sqrt (rms.(0) /. Float.of_int t.mesh.Umesh.n_nodes))

let run t ~iters =
  let last = ref (0, 0.0) in
  for _ = 1 to iters do
    last := iteration t
  done;
  !last

(* Solution in global node order (any backend). *)
let solution t = Op2.fetch t.ctx t.phi

(* Discrete L2 error of the current solution against the analytic field,
   normalised by node count. Coordinates come from the context (not the
   original mesh arrays) so the metric stays valid after renumbering. *)
let l2_error t =
  let phi = solution t and coords = Op2.fetch t.ctx t.x in
  let acc = ref 0.0 in
  for n = 0 to t.mesh.Umesh.n_nodes - 1 do
    let d = phi.(n) -. Kernels.exact coords.(2 * n) coords.((2 * n) + 1) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. Float.of_int t.mesh.Umesh.n_nodes)
