examples/shock_tube.mli:
