(* Loop-sequence tracing.

   The checkpointing planner (paper Section VI, Fig 8) reasons over the
   sequence of parallel loops an application executes and how each accesses
   each dataset.  Backends append a [Descr.loop] per invocation when tracing
   is on; analyses then run over the recorded program. *)

type t = { mutable events : Descr.loop list (* reversed *); mutable enabled : bool }

let create () = { events = []; enabled = false }

let set_enabled t flag = t.enabled <- flag
let is_enabled t = t.enabled

let record t loop = if t.enabled then t.events <- loop :: t.events

let events t = List.rev t.events

let length t = List.length t.events

let clear t = t.events <- []

(* Names of datasets appearing in the trace, in first-appearance order. *)
let dataset_names t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (loop : Descr.loop) ->
      List.iter
        (fun (a : Descr.arg) ->
          if a.Descr.kind <> Descr.Global && not (Hashtbl.mem seen a.Descr.dat_name)
          then begin
            Hashtbl.add seen a.Descr.dat_name ();
            out := a.Descr.dat_name :: !out
          end)
        loop.Descr.args)
    (events t);
  List.rev !out
