(* Recovery harness: the restart loop between the fault injector and the
   checkpoint runtime.

   An application run is handed over as a closure; when it dies from an
   injected rank crash ([Am_simmpi.Fault.Crashed]) or an unrecoverable
   message loss ([Am_simmpi.Fault.Unrecoverable] — retransmits exhausted,
   or the simulated network deadlocked), the harness re-invokes it with
   [recovering:true] so the driver can restore the last on-disk snapshot
   and fast-forward.  When the restart budget is spent the harness gives
   up cleanly: the caller gets an [Error] carrying a {!Finding.t} on the
   [Resilience] layer rather than an escaping exception, so drivers report
   it like any other diagnostic and exit non-zero.

   Unexpected exceptions (bugs, [Invalid_argument], ...) are not recovery
   material and re-raise unchanged. *)

let describe_fault = function
  | Am_simmpi.Fault.Crashed { rank; loop } ->
    Some (Printf.sprintf "rank %d crashed at parallel loop %d" rank loop)
  | Am_simmpi.Fault.Unrecoverable msg -> Some ("halo exchange lost: " ^ msg)
  | Failure msg -> Some ("runtime failure: " ^ msg)
  | _ -> None

(* [protect ~max_restarts run] runs [run ~recovering:false], restarting on
   survivable faults up to [max_restarts] times ([recovering:true] from the
   first restart on).  [max_restarts = 0] means detect-and-abort. *)
let protect ?(max_restarts = 3) run =
  let rec go ~attempt =
    match run ~recovering:(attempt > 0) with
    | v -> Ok v
    | exception e -> (
      match describe_fault e with
      | None -> raise e
      | Some what ->
        if attempt < max_restarts then (
          Am_obs.Counters.incr Am_obs.Obs.fault_recoveries;
          if Am_obs.Obs.tracing () then
            Am_obs.Obs.instant ~cat:Am_obs.Tracer.Fault "restart";
          go ~attempt:(attempt + 1))
        else (
          Am_obs.Counters.incr Am_obs.Obs.fault_aborts;
          Error
            (Finding.make ~layer:Finding.Resilience ~severity:Finding.Error
               ~subject:"recovery"
               (Printf.sprintf "%s; gave up after %d restart%s" what attempt
                  (if attempt = 1 then "" else "s")))))
  in
  go ~attempt:0
