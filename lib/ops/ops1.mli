(** OPS1: the structured-mesh active library instantiated for 1D blocks.

    The paper's OPS abstraction is dimension-generic — blocks carry "a
    number of dimensions (1D, 2D, 3D, etc.)". This module is the
    one-dimensional instantiation, with the same contract as {!Ops} and
    {!Ops3}: datasets own their extent and ghost cells, loops declare a
    stencil and access mode per argument, and writes are centre-only,
    which makes any partition of the iteration interval race-free.

    Kernel buffers are point-major: for an argument with stencil point [p]
    and component [c], the value sits at [buf.(p*dim + c)]. *)

module Access = Am_core.Access
module Descr = Am_core.Descr
module Profile = Am_core.Profile
module Trace = Am_core.Trace

type block = Types1.block
type dat = Types1.dat
type arg = Types1.arg

(** Half-open iteration interval; negative indices reach the ghost cells. *)
type range = Types1.range = { xlo : int; xhi : int }

(** Relative dx offsets; index 0 of the kernel buffer is offset 0. *)
type stencil = Types1.stencil

val stencil_point : stencil

(** Centre plus the two neighbours, in declaration order: centre, -x, +x. *)
val stencil_3pt : stencil

(** Backend: sequential reference, chunk-parallel domain pool, or the
    tiled GPU simulator. The distributed backend is entered with
    {!partition}. *)
type backend =
  | Seq
  | Shared of { pool : Am_taskpool.Pool.t }
  | Cuda_sim of Exec1.cuda_config
  | Check
      (** sanitizer: sequential semantics with canary-padded, access-guarded
          staging buffers — violations raise {!Exec_check.Violation} *)

type ctx

val create : ?backend:backend -> unit -> ctx
val set_backend : ctx -> backend -> unit
val backend : ctx -> backend
val profile : ctx -> Profile.t
val trace : ctx -> Trace.t

(** {1 Declarations} *)

val decl_block : ctx -> name:string -> block

(** [decl_dat ctx ~name ~block ~xsize ?halo ?dim ()] declares a
    zero-initialised dataset with [halo] ghost cells on both ends
    (default 2) and [dim] components per point (default 1). *)
val decl_dat :
  ctx -> name:string -> block:block -> xsize:int -> ?halo:int -> ?dim:int ->
  unit -> dat

val blocks : ctx -> block list
val dats : ctx -> dat list

(** {1 Loop arguments} *)

(** Dataset argument with its stencil. Written arguments ([Write]/[Rw]/
    [Inc]) must use {!stencil_point}, and a dataset written by a loop
    must be accessed centre-only by every argument of that loop. *)
val arg_dat : dat -> stencil -> Access.t -> arg

(** Global argument: [Read] broadcasts, [Inc]/[Min]/[Max] reduce. *)
val arg_gbl : name:string -> float array -> Access.t -> arg

(** The kernel receives the iteration index x as one float. *)
val arg_idx : arg

(** {1 Data access} *)

val interior : dat -> range
val get : dat -> x:int -> c:int -> float
val set : dat -> x:int -> c:int -> float -> unit

(** Interior values, assembled from rank windows when partitioned. *)
val fetch_interior : ctx -> dat -> float array

(** [init ctx dat f] sets every addressable cell (ghosts included) to
    [f x c], pushing to rank windows when partitioned. *)
val init : ctx -> dat -> (int -> int -> float) -> unit

(** {1 Distributed execution} *)

(** Decompose every dataset into contiguous chunks over [n_ranks]
    simulated ranks; [ref_xsize] is the reference cell count. Ghost-cell
    exchanges then happen on demand, driven by the declared stencils and
    access modes. *)
val partition : ctx -> n_ranks:int -> ref_xsize:int -> unit

(** Hybrid MPI+OpenMP: each rank's chunk runs on a shared pool. *)
type rank_execution = Dist1.rank_exec =
  | Rank_seq
  | Rank_shared of Am_taskpool.Pool.t

val set_rank_execution : ctx -> rank_execution -> unit

(** Halo-exchange policy: [On_demand] (default, dirty-bit driven) or
    [Eager] (exchange before every stencil read). *)
type halo_policy = On_demand | Eager

val set_halo_policy : ctx -> halo_policy -> unit

(** Communication mode: [Blocking] (default) or [Overlap], which posts the
    ghost exchange, runs the interior cells while the messages are in
    flight, waits, then runs the boundary cells (see {!Ops.set_comm_mode}). *)
type comm_mode = Blocking | Overlap

val set_comm_mode : ctx -> comm_mode -> unit
val comm_mode : ctx -> comm_mode

val comm_stats : ctx -> Am_simmpi.Comm.stats option

(** {1 Fault injection}

    Attach a seeded {!Am_simmpi.Fault} injector, as in {!Ops}: partitioned
    messages travel through the communicator's reliable transport and the
    armed rank crash fires from {!par_loop}.  May be called before or after
    partitioning; the injector is shared across recovery restarts. *)

val set_fault_injector : ctx -> Am_simmpi.Fault.t -> unit
val fault_injector : ctx -> Am_simmpi.Fault.t option

(** {1 Boundary conditions} *)

type centering = Boundary1.centering = Cell | Node

(** Reflective ghost-cell update at both ends, with an optional sign flip
    for wall-normal components and centre-aware reflection for staggered
    fields. *)
val mirror_halo : ctx -> ?depth:int -> ?sign:float -> ?center:centering -> dat -> unit

(** {1 The parallel loop} *)

(** Per-call-site executor handle, as in {!Ops.make_handle}. *)
type handle

val make_handle : unit -> handle

val par_loop :
  ctx ->
  name:string ->
  ?info:Descr.kernel_info ->
  ?handle:handle ->
  block ->
  range ->
  arg list ->
  (float array array -> unit) ->
  unit

(** {1 Lazy loop chains (cross-loop cache tiling)}

    As in {!Ops.set_lazy}, instantiated for the x axis (the only axis, so
    a tile is a contiguous chunk of cells).  Every 1D dataset argument is
    unit-stride, so every recorded loop is tileable; {!mirror_halo}
    barriers still split segments. *)

val set_lazy : ctx -> ?tile_size:int -> bool -> unit
val lazy_mode : ctx -> bool
val tile_size : ctx -> int
val pending : ctx -> int
val flush : ctx -> unit

(** Tiled execution mode, as in {!Ops.tile_exec}.  A 1D chain gives the
    wavefront executor a degenerate (dependence-free) inner axis: chains
    whose x axis carries dependences stay a pipeline (one tile per wave);
    dependence-free chains fan every tile into a single wave. *)
type tile_exec =
  | Tiled of { tile : int }
  | Tiled_par of { pool : Am_taskpool.Pool.t; tile : int }

val set_tile_exec : ctx -> tile_exec -> unit
val tile_exec : ctx -> tile_exec option

(** Kernel footprint inference (see {!Ops}): on by default, once per loop
    signature; observed facts lighten the Check backend and feed
    {!Am_analysis.Verify} via [footprints].  Runtime halo/skew tightening
    from sampled negatives is opt-in ([set_tighten]). *)

val set_infer : ctx -> bool -> unit
val infer_enabled : ctx -> bool

(** Opt in to runtime tightening from sampled never-observed-read facts
    (shrunken halo depths, narrowed tile skew).  Off by default; see
    {!Ops.set_tighten} for the soundness caveat. *)
val set_tighten : ctx -> bool -> unit

val tighten_enabled : ctx -> bool
val footprints : ctx -> Am_core.Probe.info list

(** {1 Automatic checkpointing}

    As for the other facades: one [request_checkpoint] and the library
    picks the cheapest trigger within a detected loop period and
    fast-forwards a restarted run. On partitioned contexts snapshots are
    pulled from (and restored to) the owning ranks' windows. *)

val enable_checkpointing : ctx -> unit
val request_checkpoint : ctx -> unit
val checkpoint_session : ctx -> Am_checkpoint.Runtime.session option
val checkpoint_to_file : ctx -> path:string -> unit
val recover_from_file : ctx -> path:string -> unit
