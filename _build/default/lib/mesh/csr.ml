(* Compressed-sparse-row adjacency structure.

   Used for the dual graph of a mesh (cells connected through shared edges),
   which drives partitioning, reordering and colouring.  Vertices are
   [0 .. n-1]; [offsets] has length [n + 1] and the neighbours of [v] live in
   [adjacency.(offsets.(v)) .. adjacency.(offsets.(v+1) - 1)]. *)

type t = { n : int; offsets : int array; adjacency : int array }

let n_vertices t = t.n

let n_arcs t = Array.length t.adjacency

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbours t v f =
  for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.adjacency.(k)
  done

let fold_neighbours t v ~init ~f =
  let acc = ref init in
  iter_neighbours t v (fun u -> acc := f !acc u);
  !acc

let neighbours t v =
  Array.sub t.adjacency t.offsets.(v) (degree t v)

let max_degree t =
  let m = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !m then m := degree t v
  done;
  !m

(* Build a symmetric graph from an undirected edge list. Self-loops are
   dropped; duplicate edges are kept (they only cost a little redundancy in
   the consumers, which all tolerate repeated neighbours). *)
let of_edges ~n edges =
  let deg = Array.make n 0 in
  let count (a, b) =
    if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Csr.of_edges: vertex out of range";
    if a <> b then begin
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1
    end
  in
  Array.iter count edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adjacency = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  let place (a, b) =
    if a <> b then begin
      adjacency.(cursor.(a)) <- b;
      cursor.(a) <- cursor.(a) + 1;
      adjacency.(cursor.(b)) <- a;
      cursor.(b) <- cursor.(b) + 1
    end
  in
  Array.iter place edges;
  { n; offsets; adjacency }

(* Co-occurrence graph: connect vertices that appear in the same row of a
   map, e.g. the cell dual graph (cells sharing an edge) from the
   edge->cells map, whose rows are edges and whose values are cells. *)
let of_map_rows ~n_vertices ~n_rows ~arity rows =
  if Array.length rows <> n_rows * arity then
    invalid_arg "Csr.of_map_rows: bad map length";
  let edges = ref [] in
  let count = ref 0 in
  for r = 0 to n_rows - 1 do
    for i = 0 to arity - 1 do
      for j = i + 1 to arity - 1 do
        let a = rows.((r * arity) + i) and b = rows.((r * arity) + j) in
        if a >= 0 && b >= 0 && a <> b then begin
          edges := (a, b) :: !edges;
          incr count
        end
      done
    done
  done;
  let arr = Array.make !count (0, 0) in
  List.iteri (fun i e -> arr.(i) <- e) !edges;
  of_edges ~n:n_vertices arr

(* Number of arcs whose endpoints land in different parts (each undirected
   edge counted once). *)
let edge_cut t parts =
  let cut = ref 0 in
  for v = 0 to t.n - 1 do
    iter_neighbours t v (fun u -> if u > v && parts.(u) <> parts.(v) then incr cut)
  done;
  !cut

(* Bandwidth of the adjacency structure under the current numbering: the
   largest |u - v| over arcs.  Reordering for locality minimises this. *)
let bandwidth t =
  let b = ref 0 in
  for v = 0 to t.n - 1 do
    iter_neighbours t v (fun u ->
        let d = abs (u - v) in
        if d > !b then b := d)
  done;
  !b

let average_bandwidth t =
  if n_arcs t = 0 then 0.0
  else begin
    let total = ref 0 in
    for v = 0 to t.n - 1 do
      iter_neighbours t v (fun u -> total := !total + abs (u - v))
    done;
    Float.of_int !total /. Float.of_int (n_arcs t)
  end

(* Relabel vertices: [perm.(old)] is the new index of vertex [old]. *)
let permute t perm =
  if Array.length perm <> t.n then invalid_arg "Csr.permute: bad permutation length";
  let inv = Array.make t.n (-1) in
  Array.iteri
    (fun old_v new_v ->
      if new_v < 0 || new_v >= t.n || inv.(new_v) <> -1 then
        invalid_arg "Csr.permute: not a permutation";
      inv.(new_v) <- old_v)
    perm;
  let offsets = Array.make (t.n + 1) 0 in
  for new_v = 0 to t.n - 1 do
    offsets.(new_v + 1) <- offsets.(new_v) + degree t inv.(new_v)
  done;
  let adjacency = Array.make offsets.(t.n) 0 in
  for new_v = 0 to t.n - 1 do
    let old_v = inv.(new_v) in
    let base = offsets.(new_v) in
    let k = ref 0 in
    iter_neighbours t old_v (fun u ->
        adjacency.(base + !k) <- perm.(u);
        incr k)
  done;
  { n = t.n; offsets; adjacency }

let is_symmetric t =
  let ok = ref true in
  for v = 0 to t.n - 1 do
    iter_neighbours t v (fun u ->
        let found = fold_neighbours t u ~init:false ~f:(fun acc w -> acc || w = v) in
        if not found then ok := false)
  done;
  !ok
