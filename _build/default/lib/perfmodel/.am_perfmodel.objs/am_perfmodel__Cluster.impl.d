lib/perfmodel/cluster.ml: Am_core Float List Machines Model
