(* Tests for the CloverLeaf proxy application: conservation, physics sanity,
   hand-coded equivalence and backend equivalence. *)

module App = Am_cloverleaf.App
module Hand = Am_cloverleaf.Hand
module Ops = Am_ops.Ops
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let nx = 20 and ny = 16

let reference = lazy (
  let t = App.create ~nx ~ny () in
  let s = App.run t ~steps:8 in
  (App.density t, App.energy t, s))

let check_matches ?(tol = 1e-10) name t =
  let d, e, s = (App.density t, App.energy t, App.field_summary t) in
  let rd, re, rs = Lazy.force reference in
  if not (Fa.approx_equal ~tol rd d) then
    Alcotest.failf "%s: density diverges (%g)" name (Fa.rel_discrepancy rd d);
  if not (Fa.approx_equal ~tol re e) then
    Alcotest.failf "%s: energy diverges (%g)" name (Fa.rel_discrepancy re e);
  if Float.abs (s.App.ke -. rs.App.ke) /. (1.0 +. rs.App.ke) > tol then
    Alcotest.failf "%s: kinetic energy diverges" name

(* ---- Conservation and physics ---- *)

let test_mass_conserved_exactly () =
  let t = App.create ~nx ~ny () in
  let s0 = App.field_summary t in
  let s1 = App.run t ~steps:20 in
  Alcotest.(check bool) "mass conserved" true
    (Float.abs (s1.App.mass -. s0.App.mass) /. s0.App.mass < 1e-12)

let test_energy_flows_to_kinetic () =
  let t = App.create ~nx ~ny () in
  let s0 = App.field_summary t in
  let s1 = App.run t ~steps:20 in
  Alcotest.(check (float 1e-12)) "starts at rest" 0.0 s0.App.ke;
  Alcotest.(check bool) "gains kinetic energy" true (s1.App.ke > 1e-6);
  Alcotest.(check bool) "internal energy drops" true (s1.App.ie < s0.App.ie)

let test_total_energy_roughly_conserved () =
  let t = App.create ~nx ~ny () in
  let s0 = App.field_summary t in
  let s1 = App.run t ~steps:20 in
  let e0 = s0.App.ie +. s0.App.ke and e1 = s1.App.ie +. s1.App.ke in
  (* First-order scheme with artificial viscosity: bounded dissipation. *)
  Alcotest.(check bool) "within 5%" true (Float.abs (e1 -. e0) /. e0 < 0.05);
  Alcotest.(check bool) "never grows" true (e1 <= e0 +. 1e-9)

let test_state_stays_physical () =
  let t = App.create ~nx ~ny () in
  ignore (App.run t ~steps:40);
  let d = App.density t and e = App.energy t in
  Alcotest.(check bool) "density finite" true (Fa.is_finite d);
  Alcotest.(check bool) "energy finite" true (Fa.is_finite e);
  Array.iter (fun v -> if v <= 0.0 then Alcotest.fail "non-positive density") d;
  Array.iter (fun v -> if v <= 0.0 then Alcotest.fail "non-positive energy") e

let test_blast_expands () =
  (* The energetic corner region must spread: density far from the corner
     rises above ambient eventually; the corner density drops. *)
  let t = App.create ~nx:32 ~ny:32 () in
  let before = App.density t in
  ignore (App.run t ~steps:60);
  let after = App.density t in
  Alcotest.(check bool) "corner density drops" true (after.(0) < before.(0));
  Alcotest.(check bool) "field changed" true (Fa.rel_discrepancy before after > 0.01)

let test_dt_positive_and_bounded () =
  let t = App.create ~nx ~ny () in
  for _ = 1 to 10 do
    let dt = App.hydro_step t in
    Alcotest.(check bool) "dt in (0, 0.04]" true (dt > 0.0 && dt <= 0.04)
  done

(* ---- Hand-coded equivalence ---- *)

let test_hand_matches_exactly () =
  let a = App.create ~nx ~ny () in
  let h = Hand.create ~nx ~ny () in
  let sa = App.run a ~steps:8 and sh = Hand.run h ~steps:8 in
  Alcotest.(check bool) "density identical" true
    (Fa.approx_equal ~tol:0.0 (App.density a) (Hand.density h));
  Alcotest.(check (float 1e-14)) "mass" sa.App.mass sh.App.mass;
  Alcotest.(check (float 1e-14)) "ie" sa.App.ie sh.App.ie;
  Alcotest.(check (float 1e-14)) "ke" sa.App.ke sh.App.ke

(* ---- Van Leer (second-order) advection ---- *)

let test_van_leer_conserves_and_matches_hand () =
  let a = App.create ~advection:App.Van_leer ~nx ~ny () in
  let h = Hand.create ~advection:App.Van_leer ~nx ~ny () in
  let s0 = App.field_summary a in
  let sa = App.run a ~steps:10 and sh = Hand.run h ~steps:10 in
  Alcotest.(check bool) "mass conserved" true
    (Float.abs (sa.App.mass -. s0.App.mass) /. s0.App.mass < 1e-12);
  Alcotest.(check bool) "hand identical" true
    (Fa.approx_equal ~tol:0.0 (App.density a) (Hand.density h));
  Alcotest.(check (float 1e-14)) "ke identical" sa.App.ke sh.App.ke

let test_van_leer_dist_matches () =
  let seq = App.create ~advection:App.Van_leer ~nx ~ny () in
  ignore (App.run seq ~steps:8);
  let dist = App.create ~advection:App.Van_leer ~nx ~ny () in
  Ops.partition dist.App.ctx ~n_ranks:4 ~ref_ysize:ny;
  ignore (App.run dist ~steps:8);
  Alcotest.(check bool) "dist identical" true
    (Fa.approx_equal ~tol:0.0 (App.density seq) (App.density dist))

let test_van_leer_sharper_than_first_order () =
  (* The limiter must reduce numerical diffusion: after the blast has run,
     the density interface stays sharper (larger max neighbour jump). *)
  let sharpness t =
    let d = App.density t in
    let m = ref 0.0 in
    for y = 0 to ny - 1 do
      for x = 0 to nx - 2 do
        let jump = Float.abs (d.((y * nx) + x + 1) -. d.((y * nx) + x)) in
        if jump > !m then m := jump
      done
    done;
    !m
  in
  let fo = App.create ~nx:32 ~ny:32 () in
  let vl = App.create ~advection:App.Van_leer ~nx:32 ~ny:32 () in
  ignore (App.run fo ~steps:30);
  ignore (App.run vl ~steps:30);
  let sharp t =
    let d = App.density t in
    let m = ref 0.0 in
    for y = 0 to 31 do
      for x = 0 to 30 do
        let jump = Float.abs (d.((y * 32) + x + 1) -. d.((y * 32) + x)) in
        if jump > !m then m := jump
      done
    done;
    !m
  in
  ignore sharpness;
  Alcotest.(check bool) "van Leer keeps a sharper interface" true
    (sharp vl > sharp fo)

(* ---- Backend equivalence ---- *)

let test_shared_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      let t = App.create ~backend:(Ops.Shared { pool }) ~nx ~ny () in
      ignore (App.run t ~steps:8);
      check_matches "shared" t)

let test_cuda_tiled_backend () =
  let t =
    App.create
      ~backend:
        (Ops.Cuda_sim
           { Am_ops.Exec.tile_x = 8; tile_y = 4; strategy = Am_ops.Exec.Cuda_tiled })
      ~nx ~ny ()
  in
  ignore (App.run t ~steps:8);
  check_matches "cuda tiled" t

let test_dist_backend () =
  let t = App.create ~nx ~ny () in
  Ops.partition t.App.ctx ~n_ranks:4 ~ref_ysize:ny;
  ignore (App.run t ~steps:8);
  check_matches "dist(4)" t

let test_grid_dist_backend () =
  (* 2D grid decomposition (2x2 ranks): the full hydro cycle, mirror BCs
     and corner-carrying two-phase exchanges, must match serial exactly. *)
  let t = App.create ~nx ~ny () in
  Ops.partition_grid t.App.ctx ~px:2 ~py:2 ~ref_xsize:nx ~ref_ysize:ny;
  ignore (App.run t ~steps:8);
  check_matches "grid(2x2)" t

let test_grid_dist_uneven () =
  (* Uneven grid (3x2) on a non-divisible extent. *)
  let t = App.create ~nx ~ny () in
  Ops.partition_grid t.App.ctx ~px:3 ~py:2 ~ref_xsize:nx ~ref_ysize:ny;
  ignore (App.run t ~steps:8);
  check_matches "grid(3x2)" t

let test_grid_hybrid_backend () =
  Pool.with_pool ~size:2 (fun pool ->
      let t = App.create ~nx ~ny () in
      Ops.partition_grid t.App.ctx ~px:2 ~py:2 ~ref_xsize:nx ~ref_ysize:ny;
      Ops.set_rank_execution t.App.ctx (Ops.Rank_shared pool);
      ignore (App.run t ~steps:8);
      check_matches ~tol:1e-12 "grid(2x2)+shared" t)

let test_hybrid_backend () =
  Pool.with_pool ~size:2 (fun pool ->
      let t = App.create ~nx ~ny () in
      Ops.partition t.App.ctx ~n_ranks:4 ~ref_ysize:ny;
      Ops.set_rank_execution t.App.ctx (Ops.Rank_shared pool);
      ignore (App.run t ~steps:8);
      (* Global-reduction merge order differs across pool workers: the state
         is exact, the summary sums reassociate at machine epsilon. *)
      check_matches ~tol:1e-12 "mpi+shared" t)

let test_dist_traffic_flows () =
  let t = App.create ~nx ~ny () in
  Ops.partition t.App.ctx ~n_ranks:3 ~ref_ysize:ny;
  ignore (App.run t ~steps:2);
  match Ops.comm_stats t.App.ctx with
  | None -> Alcotest.fail "expected stats"
  | Some s ->
    Alcotest.(check bool) "exchanges happened" true (s.Am_simmpi.Comm.exchanges > 0)

let test_eager_halo_policy () =
  (* Eager ghost-row exchanges must change traffic, never results. *)
  let run policy =
    let t = App.create ~nx ~ny () in
    Ops.partition t.App.ctx ~n_ranks:4 ~ref_ysize:ny;
    Ops.set_halo_policy t.App.ctx policy;
    ignore (App.run t ~steps:3);
    let stats = Option.get (Ops.comm_stats t.App.ctx) in
    (App.density t, stats.Am_simmpi.Comm.bytes)
  in
  let d_e, bytes_e = run Ops.Eager in
  let d_o, bytes_o = run Ops.On_demand in
  if not (Fa.approx_equal ~tol:0.0 d_e d_o) then
    Alcotest.fail "eager halo policy changed the solution";
  Alcotest.(check bool) "eager moves strictly more bytes" true (bytes_e > bytes_o)

(* ---- Automatic checkpointing ---- *)

let test_automatic_checkpoint_recovery () =
  (* Recovery replays *the same program*: the driver below is the program
     (6 hydro steps, a field summary after step 3 and at the end), run
     uninterrupted, with a live checkpoint, and under recovery. *)
  let program ?(request_at = -1) t =
    let last = ref { App.vol = 0.0; mass = 0.0; ie = 0.0; ke = 0.0; press = 0.0 } in
    for step = 1 to 6 do
      if step = request_at then Ops.request_checkpoint t.App.ctx;
      ignore (App.hydro_step t);
      if step = 3 || step = 6 then last := App.field_summary t
    done;
    !last
  in
  let truth = App.create ~nx ~ny () in
  let truth_summary = program truth in
  let live = App.create ~nx ~ny () in
  Ops.enable_checkpointing live.App.ctx;
  ignore (program ~request_at:4 live);
  Alcotest.(check bool) "checkpointing transparent" true
    (Fa.approx_equal ~tol:0.0 (App.density truth) (App.density live));
  let path = Filename.temp_file "clover_cp" ".snap" in
  Ops.checkpoint_to_file live.App.ctx ~path;
  let recovered = App.create ~nx ~ny () in
  Ops.recover_from_file recovered.App.ctx ~path;
  let rec_summary = program recovered in
  Sys.remove path;
  Alcotest.(check bool) "recovered bit-identical" true
    (Fa.approx_equal ~tol:0.0 (App.density truth) (App.density recovered)
     && Fa.approx_equal ~tol:0.0 (App.xvel truth) (App.xvel recovered));
  (* Reductions after resumption match too. *)
  Alcotest.(check (float 1e-14)) "final summary ke" truth_summary.App.ke
    rec_summary.App.ke

let () =
  Alcotest.run "cloverleaf"
    [
      ( "physics",
        [
          Alcotest.test_case "mass conserved" `Quick test_mass_conserved_exactly;
          Alcotest.test_case "ie -> ke" `Quick test_energy_flows_to_kinetic;
          Alcotest.test_case "total energy bounded" `Quick
            test_total_energy_roughly_conserved;
          Alcotest.test_case "state physical" `Quick test_state_stays_physical;
          Alcotest.test_case "blast expands" `Slow test_blast_expands;
          Alcotest.test_case "dt bounded" `Quick test_dt_positive_and_bounded;
        ] );
      ( "van leer",
        [
          Alcotest.test_case "conserves + hand exact" `Quick
            test_van_leer_conserves_and_matches_hand;
          Alcotest.test_case "dist exact" `Quick test_van_leer_dist_matches;
          Alcotest.test_case "sharper than first-order" `Slow
            test_van_leer_sharper_than_first_order;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hand-coded exact" `Quick test_hand_matches_exactly;
          Alcotest.test_case "shared backend" `Quick test_shared_backend;
          Alcotest.test_case "cuda tiled" `Quick test_cuda_tiled_backend;
          Alcotest.test_case "dist(4)" `Quick test_dist_backend;
          Alcotest.test_case "hybrid mpi+shared" `Quick test_hybrid_backend;
          Alcotest.test_case "grid dist 2x2" `Quick test_grid_dist_backend;
          Alcotest.test_case "grid dist 3x2" `Quick test_grid_dist_uneven;
          Alcotest.test_case "grid hybrid" `Quick test_grid_hybrid_backend;
          Alcotest.test_case "dist traffic" `Quick test_dist_traffic_flows;
          Alcotest.test_case "eager halo policy" `Quick test_eager_halo_policy;
        ] );
      ( "checkpointing",
        [
          Alcotest.test_case "automatic checkpoint + recovery" `Quick
            test_automatic_checkpoint_recovery;
        ] );
    ]
