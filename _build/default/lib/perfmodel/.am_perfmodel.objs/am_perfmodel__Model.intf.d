lib/perfmodel/model.mli: Am_core Machines
