lib/ops/boundary3.ml: List Types3
