(* Tests for the Hydra-sim production-scale application. *)

module App = Am_hydra.App
module Hand = Am_hydra.Hand
module Op2 = Am_op2.Op2
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let nx = 16 and ny = 12

let reference = lazy (
  let t = App.create ~nx ~ny () in
  let rms = App.run t ~iters:4 in
  (App.solution t, rms))

let check_matches ?(tol = 1e-10) name (sol, rms) =
  let ref_sol, ref_rms = Lazy.force reference in
  if not (Fa.approx_equal ~tol ref_sol sol) then
    Alcotest.failf "%s: solution diverges (%g)" name (Fa.rel_discrepancy ref_sol sol);
  if Float.abs (rms -. ref_rms) /. (1.0 +. ref_rms) > tol then
    Alcotest.failf "%s: rms diverges" name

(* ---- Dynamics ---- *)

let test_converges () =
  let t = App.create ~nx ~ny () in
  let early = App.run t ~iters:2 in
  let late = App.run t ~iters:60 in
  Alcotest.(check bool) "rms decays" true (late < early);
  Alcotest.(check bool) "state finite" true (Fa.is_finite (App.solution t))

let test_reaches_steady_state () =
  (* The dissipative dynamics must settle: the state change over a late
     window is much smaller than over the first window. *)
  let t = App.create ~nx ~ny () in
  let s0 = App.solution t in
  ignore (App.run t ~iters:10);
  let s1 = App.solution t in
  ignore (App.run t ~iters:100);
  let s2 = App.solution t in
  ignore (App.run t ~iters:10);
  let s3 = App.solution t in
  let early = Fa.max_abs_diff s0 s1 and late = Fa.max_abs_diff s2 s3 in
  Alcotest.(check bool) "settling" true (late < 0.2 *. early);
  Alcotest.(check bool) "finite" true (Fa.is_finite s3)

let test_feature_ablations_stable () =
  List.iter
    (fun (name, features) ->
      let t = App.create ~features ~nx ~ny () in
      ignore (App.run t ~iters:10);
      if not (Fa.is_finite (App.solution t)) then
        Alcotest.failf "%s: diverged" name)
    [
      ("no viscous", { App.viscous = false; source_terms = true; multigrid = true });
      ("no source", { App.viscous = true; source_terms = false; multigrid = true });
      ("no multigrid", { App.viscous = true; source_terms = true; multigrid = false });
    ]

let test_multigrid_accelerates () =
  (* The multigrid correction should leave the solution at least as close to
     the free stream after the same number of iterations. *)
  let run features =
    let t = App.create ~features ~nx ~ny () in
    App.run t ~iters:40
  in
  let with_mg = run App.all_features in
  let without = run { App.all_features with App.multigrid = false } in
  Alcotest.(check bool) "mg does not hurt convergence" true (with_mg <= without *. 1.5)

(* ---- Equivalence ---- *)

let test_hand_matches () =
  let h = Hand.create ~nx ~ny () in
  let rms = Hand.run h ~iters:4 in
  check_matches ~tol:0.0 "hand-coded" (Hand.solution h, rms)

let test_shared_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      let t = App.create ~backend:(Op2.Shared { pool; block_size = 32 }) ~nx ~ny () in
      let rms = App.run t ~iters:4 in
      check_matches "shared" (App.solution t, rms))

let test_cuda_backend () =
  let t =
    App.create
      ~backend:
        (Op2.Cuda_sim
           { Am_op2.Exec_cuda.block_size = 32; strategy = Am_op2.Exec_cuda.Staged })
      ~nx ~ny ()
  in
  let rms = App.run t ~iters:4 in
  check_matches "cuda staged" (App.solution t, rms)

let test_mpi_backend () =
  let t = App.create ~nx ~ny () in
  Op2.partition t.App.ctx ~n_ranks:4 ~strategy:(Op2.Kway_through t.App.edge_cells);
  let rms = App.run t ~iters:4 in
  check_matches "mpi(4)" (App.solution t, rms)

let test_mpi_partitions_both_levels () =
  (* The partition inference must cover the coarse sets reached only through
     the fine->coarse map. *)
  let t = App.create ~nx ~ny () in
  Op2.partition t.App.ctx ~n_ranks:3 ~strategy:(Op2.Kway_through t.App.edge_cells);
  ignore (App.run t ~iters:2);
  match Op2.comm_stats t.App.ctx with
  | None -> Alcotest.fail "expected stats"
  | Some s -> Alcotest.(check bool) "traffic flows" true (s.Am_simmpi.Comm.messages > 0)

let test_renumbering_invariant_rms () =
  let t = App.create ~nx ~ny () in
  ignore (Op2.renumber t.App.ctx ~through:t.App.edge_cells);
  let rms = App.run t ~iters:4 in
  let _, ref_rms = Lazy.force reference in
  Alcotest.(check bool) "rms invariant" true
    (Float.abs (rms -. ref_rms) /. (1.0 +. ref_rms) < 1e-10)

(* ---- Structure ---- *)

let test_loop_count_per_iteration () =
  let t = App.create ~nx ~ny () in
  Am_core.Trace.set_enabled (Op2.trace t.App.ctx) true;
  ignore (App.iteration t);
  let events = Am_core.Trace.events (Op2.trace t.App.ctx) in
  (* 2 prologue + 5 stages x 8 loops + 9 multigrid loops. *)
  Alcotest.(check int) "loops per iteration" (2 + (5 * 8) + 9) (List.length events)

let test_more_data_than_airfoil () =
  (* The paper: Hydra "moves many times more data per grid point" than
     Airfoil. Compare traced bytes per cell per iteration. *)
  let hydra_bytes =
    let t = App.create ~nx ~ny () in
    Am_core.Trace.set_enabled (Op2.trace t.App.ctx) true;
    ignore (App.iteration t);
    List.fold_left
      (fun acc l -> acc + Am_core.Descr.total_bytes l)
      0
      (Am_core.Trace.events (Op2.trace t.App.ctx))
  in
  let airfoil_bytes =
    let mesh = Am_mesh.Umesh.generate_airfoil ~nx ~ny () in
    let t = Am_airfoil.App.create mesh in
    Am_core.Trace.set_enabled (Op2.trace t.Am_airfoil.App.ctx) true;
    ignore (Am_airfoil.App.iteration t);
    List.fold_left
      (fun acc l -> acc + Am_core.Descr.total_bytes l)
      0
      (Am_core.Trace.events (Op2.trace t.Am_airfoil.App.ctx))
  in
  Alcotest.(check bool) "hydra moves >3x airfoil's bytes" true
    (hydra_bytes > 3 * airfoil_bytes)

let () =
  Alcotest.run "hydra"
    [
      ( "dynamics",
        [
          Alcotest.test_case "converges" `Quick test_converges;
          Alcotest.test_case "reaches steady state" `Slow test_reaches_steady_state;
          Alcotest.test_case "feature ablations stable" `Quick
            test_feature_ablations_stable;
          Alcotest.test_case "multigrid sane" `Quick test_multigrid_accelerates;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hand-coded exact" `Quick test_hand_matches;
          Alcotest.test_case "shared backend" `Quick test_shared_backend;
          Alcotest.test_case "cuda staged" `Quick test_cuda_backend;
          Alcotest.test_case "mpi kway" `Quick test_mpi_backend;
          Alcotest.test_case "mpi covers both levels" `Quick
            test_mpi_partitions_both_levels;
          Alcotest.test_case "renumbering invariant" `Quick
            test_renumbering_invariant_rms;
        ] );
      ( "structure",
        [
          Alcotest.test_case "loop count" `Quick test_loop_count_per_iteration;
          Alcotest.test_case "more data than airfoil" `Quick test_more_data_than_airfoil;
        ] );
    ]
