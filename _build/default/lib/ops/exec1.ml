(* 1D execution engines: same architecture as [Exec]/[Exec3] — a point
   runner over views, a sequential engine, chunk-parallel shared-memory
   execution and a tiled GPU simulator with clamped staging. *)

module Access = Am_core.Access
open Types1

type view = {
  vget : int -> int -> float; (* x c *)
  vset : int -> int -> float -> unit;
}

let dat_view dat =
  { vget = (fun x c -> get dat ~x ~c); vset = (fun x c v -> set dat ~x ~c v) }

type compiled_arg =
  | C_dat of { view : view; dim : int; stencil : stencil; access : Access.t }
  | C_gbl of { user_buf : float array; access : Access.t }
  | C_idx

type resolvers = { resolve_dat : dat -> view }

let global_resolvers = { resolve_dat = dat_view }

let compile ?(resolvers = global_resolvers) args =
  let one = function
    | Arg_dat { dat; stencil; access } ->
      C_dat { view = resolvers.resolve_dat dat; dim = dat.dim; stencil; access }
    | Arg_gbl { buf; access; _ } -> C_gbl { user_buf = buf; access }
    | Arg_idx -> C_idx
  in
  Array.of_list (List.map one args)

let make_buffers compiled =
  Array.map
    (function
      | C_dat { dim; stencil; _ } -> Array.make (dim * Array.length stencil) 0.0
      | C_idx -> Array.make 1 0.0
      | C_gbl { user_buf; access } -> (
        match access with
        | Access.Read | Access.Min | Access.Max -> Array.copy user_buf
        | Access.Inc -> Array.make (Array.length user_buf) 0.0
        | Access.Write | Access.Rw ->
          invalid_arg "ops1: Write/Rw access on a global argument"))
    compiled

let merge_globals compiled buffers =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ | C_idx -> ()
      | C_gbl { user_buf; access } -> (
        let acc = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- user_buf.(d) +. acc.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.min user_buf.(d) acc.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.max user_buf.(d) acc.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

let run_point compiled buffers kernel x =
  Array.iteri
    (fun i c ->
      match c with
      | C_gbl _ -> ()
      | C_idx -> buffers.(i).(0) <- Float.of_int x
      | C_dat { view; dim; stencil; access } -> (
        let buf = buffers.(i) in
        match access with
        | Access.Inc -> Array.fill buf 0 dim 0.0
        | Access.Read | Access.Rw | Access.Write ->
          Array.iteri
            (fun p dx ->
              for d = 0 to dim - 1 do
                buf.((p * dim) + d) <- view.vget (x + dx) d
              done)
            stencil
        | Access.Min | Access.Max -> assert false))
    compiled;
  kernel buffers;
  Array.iteri
    (fun i c ->
      match c with
      | C_gbl _ | C_idx -> ()
      | C_dat { view; dim; access; _ } -> (
        let buf = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Write | Access.Rw ->
          for d = 0 to dim - 1 do
            view.vset x d buf.(d)
          done
        | Access.Inc ->
          for d = 0 to dim - 1 do
            view.vset x d (view.vget x d +. buf.(d))
          done
        | Access.Min | Access.Max -> assert false))
    compiled

let run_seq ?resolvers ~range ~args ~kernel () =
  let compiled = compile ?resolvers args in
  let buffers = make_buffers compiled in
  for x = range.xlo to range.xhi - 1 do
    run_point compiled buffers kernel x
  done;
  merge_globals compiled buffers

(* Chunk-parallel shared-memory execution: intervals across the pool
   (centre-only writes keep any disjoint partition race-free). *)
let run_shared ?resolvers pool ~range ~args ~kernel =
  let compiled = compile ?resolvers args in
  let merge_mutex = Mutex.create () in
  Am_taskpool.Pool.parallel_for pool ~lo:range.xlo ~hi:range.xhi (fun xlo xhi ->
      let buffers = make_buffers compiled in
      for x = xlo to xhi - 1 do
        run_point compiled buffers kernel x
      done;
      Mutex.lock merge_mutex;
      merge_globals compiled buffers;
      Mutex.unlock merge_mutex)

(* Tiled GPU simulator: 1D thread blocks with staged scratch intervals. *)
type cuda_config = { tile_x : int; staged : bool }

let default_cuda_config = { tile_x = 64; staged = true }

let run_cuda config ~range ~args ~kernel =
  let compiled = compile args in
  let buffers = make_buffers compiled in
  let n_tiles = (range.xhi - range.xlo + config.tile_x - 1) / config.tile_x in
  for tx = 0 to n_tiles - 1 do
    let txlo = range.xlo + (tx * config.tile_x) in
    let txhi = min range.xhi (txlo + config.tile_x) in
    if not config.staged then
      for x = txlo to txhi - 1 do
        run_point compiled buffers kernel x
      done
    else begin
      let args_arr = Array.of_list args in
      let staged =
        Array.mapi
          (fun i c ->
            match c with
            | C_dat { view; dim; stencil; access } ->
              let dat =
                match args_arr.(i) with
                | Arg_dat { dat; _ } -> dat
                | Arg_gbl _ | Arg_idx -> assert false
              in
              let ext = stencil_extent stencil in
              let sxlo = txlo - ext and sxhi = txhi + ext in
              let scratch = Array.make ((sxhi - sxlo) * dim) 0.0 in
              let sindex x c = ((x - sxlo) * dim) + c in
              if Access.reads access || access = Access.Write then begin
                let gx0 = max sxlo (x_min dat) and gx1 = min sxhi (x_max dat) in
                for x = gx0 to gx1 - 1 do
                  for c = 0 to dim - 1 do
                    scratch.(sindex x c) <- view.vget x c
                  done
                done
              end;
              let sview =
                { vget = (fun x c -> scratch.(sindex x c));
                  vset = (fun x c v -> scratch.(sindex x c) <- v) }
              in
              C_dat { view = sview; dim; stencil; access }
            | (C_gbl _ | C_idx) as c -> c)
          compiled
      in
      for x = txlo to txhi - 1 do
        run_point staged buffers kernel x
      done;
      Array.iteri
        (fun i c ->
          match (c, staged.(i)) with
          | C_dat { view; dim; access; _ }, C_dat { view = sview; _ }
            when Access.writes access ->
            for x = txlo to txhi - 1 do
              for d = 0 to dim - 1 do
                let v = sview.vget x d in
                if access = Access.Inc then view.vset x d (view.vget x d +. v)
                else view.vset x d v
              done
            done
          | _ -> ())
        compiled
    end
  done;
  merge_globals compiled buffers
