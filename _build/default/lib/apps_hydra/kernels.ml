(* Hydra-sim kernels.

   Rolls-Royce Hydra is closed source, so this is a synthetic stand-in with
   the structural properties the paper relies on when arguing that Airfoil's
   insights transfer (Section IV):

   - a RANS-like state of 6 components per cell (flow + 2 turbulence
     variables) instead of Airfoil's 4;
   - many more distinct loops per iteration (gradients, viscous and
     inviscid fluxes, sources, 5 Runge-Kutta stages, a 2-level multigrid
     cycle) — "moves many times more data per grid point ... and carries
     out more complex computations";
   - the same access-execute patterns (direct cell loops, edge loops with
     indirect increments, boundary loops), so every backend and optimisation
     of the library is exercised at production shape.

   The arithmetic is deliberately dissipative (fluxes and sources relax the
   state towards the free stream), giving stable, deterministic dynamics
   whose exactness across backends the tests assert. *)

let n_state = 6

(* Free-stream state the dynamics relax towards. *)
let qinf = [| 1.0; 0.5; 0.0; 2.0; 0.05; 0.4 |]

let save_state args =
  let q = args.(0) and qold = args.(1) in
  Array.blit q 0 qold 0 n_state

let save_state_info = { Am_core.Descr.flops = 0.0; transcendentals = 0.0 }

(* Local timestep from cell geometry and state (sqrt-heavy, like adt_calc).
   args: x1 x2 x3 x4 (R via cell->node), q (R), adt (W). *)
let calc_dt args =
  let q = args.(4) and adt = args.(5) in
  let ri = 1.0 /. Float.max 1e-6 q.(0) in
  let u = ri *. q.(1) and v = ri *. q.(2) in
  let c = sqrt (Float.max 1e-12 (0.56 *. ((ri *. q.(3)) -. (0.5 *. ((u *. u) +. (v *. v)))))) in
  let acc = ref 0.0 in
  for k = 0 to 3 do
    let xa = args.(k) and xb = args.((k + 1) mod 4) in
    let dx = xa.(0) -. xb.(0) and dy = xa.(1) -. xb.(1) in
    acc := !acc +. Float.abs ((u *. dy) -. (v *. dx)) +. (c *. sqrt ((dx *. dx) +. (dy *. dy)))
  done;
  adt.(0) <- !acc /. 0.9

let calc_dt_info = { Am_core.Descr.flops = 45.0; transcendentals = 6.0 }

(* Zero the gradient accumulator. args: grad (W, dim 12). *)
let grad_zero args = Array.fill args.(0) 0 (2 * n_state) 0.0

let grad_zero_info = { Am_core.Descr.flops = 0.0; transcendentals = 0.0 }

(* Edge-based gradient accumulation (Green-Gauss).
   args: x1 x2 (R via edge->node), q1 q2 (R via edge->cell),
         grad1 grad2 (Inc via edge->cell, dim 12). *)
let grad_accum args =
  let x1 = args.(0) and x2 = args.(1) in
  let q1 = args.(2) and q2 = args.(3) in
  let g1 = args.(4) and g2 = args.(5) in
  let dx = x1.(0) -. x2.(0) and dy = x1.(1) -. x2.(1) in
  for n = 0 to n_state - 1 do
    let avg = 0.5 *. (q1.(n) +. q2.(n)) in
    g1.(2 * n) <- g1.(2 * n) +. (avg *. dy);
    g1.((2 * n) + 1) <- g1.((2 * n) + 1) -. (avg *. dx);
    g2.(2 * n) <- g2.(2 * n) -. (avg *. dy);
    g2.((2 * n) + 1) <- g2.((2 * n) + 1) +. (avg *. dx)
  done

let grad_accum_info = { Am_core.Descr.flops = 48.0; transcendentals = 0.0 }

(* Normalise gradients by (approximate) cell volume. args: adt (R), grad (Rw). *)
let grad_scale args =
  let adt = args.(0) and grad = args.(1) in
  let scale = 1.0 /. (1.0 +. adt.(0)) in
  for i = 0 to (2 * n_state) - 1 do
    grad.(i) <- grad.(i) *. scale
  done

let grad_scale_info = { Am_core.Descr.flops = 14.0; transcendentals = 0.0 }

(* Inviscid (central + dissipation) edge flux.
   args: x1 x2 (R), q1 q2 (R), adt1 adt2 (R), res1 res2 (Inc). *)
let flux_inviscid args =
  let x1 = args.(0) and x2 = args.(1) in
  let q1 = args.(2) and q2 = args.(3) in
  let adt1 = args.(4) and adt2 = args.(5) in
  let r1 = args.(6) and r2 = args.(7) in
  let dx = x1.(0) -. x2.(0) and dy = x1.(1) -. x2.(1) in
  let ri1 = 1.0 /. Float.max 1e-6 q1.(0) and ri2 = 1.0 /. Float.max 1e-6 q2.(0) in
  let vol1 = ri1 *. ((q1.(1) *. dy) -. (q1.(2) *. dx)) in
  let vol2 = ri2 *. ((q2.(1) *. dy) -. (q2.(2) *. dx)) in
  let mu = 0.05 *. (adt1.(0) +. adt2.(0)) in
  for n = 0 to n_state - 1 do
    let f = (0.5 *. ((vol1 *. q1.(n)) +. (vol2 *. q2.(n)))) +. (mu *. (q1.(n) -. q2.(n))) in
    r1.(n) <- r1.(n) +. f;
    r2.(n) <- r2.(n) -. f
  done

let flux_inviscid_info = { Am_core.Descr.flops = 90.0; transcendentals = 0.0 }

(* Viscous edge flux from state and gradient jumps.
   args: q1 q2 (R), grad1 grad2 (R, dim 12), res1 res2 (Inc). *)
let flux_viscous args =
  let q1 = args.(0) and q2 = args.(1) in
  let g1 = args.(2) and g2 = args.(3) in
  let r1 = args.(4) and r2 = args.(5) in
  (* Effective viscosity grows with the turbulence variables. *)
  let mu = 0.02 +. (0.1 *. 0.5 *. (q1.(4) +. q2.(4) +. q1.(5) +. q2.(5))) in
  (* Sign convention: residuals are *subtracted* in the RK update
     (q = qold - fac*res), so a diffusive flux contributes (q1 - q2) to r1:
     the high cell loses, the low cell gains. *)
  for n = 0 to n_state - 1 do
    let gjump = 0.5 *. ((g1.(2 * n) -. g2.(2 * n)) +. (g1.((2 * n) + 1) -. g2.((2 * n) + 1))) in
    let f = mu *. ((q1.(n) -. q2.(n)) +. (0.1 *. gjump)) in
    r1.(n) <- r1.(n) +. f;
    r2.(n) <- r2.(n) -. f
  done

let flux_viscous_info = { Am_core.Descr.flops = 72.0; transcendentals = 0.0 }

(* Boundary relaxation towards the free stream.
   args: x1 x2 (R via bedge->node), q1 (R), res1 (Inc), bound (R direct). *)
let flux_boundary args =
  let x1 = args.(0) and x2 = args.(1) in
  let q1 = args.(2) and r1 = args.(3) in
  let bound = args.(4) in
  let dx = x1.(0) -. x2.(0) and dy = x1.(1) -. x2.(1) in
  let len = sqrt ((dx *. dx) +. (dy *. dy)) in
  let strength = if Float.to_int bound.(0) = Am_mesh.Umesh.boundary_wall then 0.1 else 0.5 in
  (* Residuals are subtracted in the update, so relaxation *towards* the
     free stream contributes (q - qinf). *)
  for n = 0 to n_state - 1 do
    r1.(n) <- r1.(n) +. (strength *. len *. (q1.(n) -. qinf.(n)))
  done

let flux_boundary_info = { Am_core.Descr.flops = 30.0; transcendentals = 1.0 }

(* Turbulence-like source terms (transcendental-heavy cell loop).
   args: q (R), grad (R), res (Inc). *)
let source args =
  let q = args.(0) and grad = args.(1) and res = args.(2) in
  let k = Float.max 1e-9 q.(4) and om = Float.max 1e-9 q.(5) in
  let production =
    0.01 *. sqrt (k *. om)
    *. ((grad.(2) *. grad.(2)) +. (grad.(4) *. grad.(4)) +. (grad.(3) *. grad.(5)))
  in
  let dissipation_k = 0.09 *. k *. om in
  let dissipation_om = 0.075 *. om *. om in
  (* Residuals are subtracted in the update: dissipation terms enter with a
     positive sign (they decay k and omega), production with a negative. *)
  res.(4) <- res.(4) +. dissipation_k -. production;
  res.(5) <- res.(5) +. dissipation_om -. (0.5 *. production /. Float.max 1e-6 k *. om)

let source_info = { Am_core.Descr.flops = 28.0; transcendentals = 2.0 }

(* One Runge-Kutta stage: q = qold - (alpha/adt) * res, residual reset;
   the final stage also accumulates the RMS update.
   args: qold (R), q (W), res (Rw), adt (R), alpha (R gbl), rms (Inc gbl). *)
let rk_stage args =
  let qold = args.(0) and q = args.(1) and res = args.(2) in
  let adt = args.(3) and alpha = args.(4) and rms = args.(5) in
  let fac = alpha.(0) /. adt.(0) in
  for n = 0 to n_state - 1 do
    let del = fac *. res.(n) in
    q.(n) <- qold.(n) -. del;
    res.(n) <- 0.0;
    rms.(0) <- rms.(0) +. (del *. del)
  done

let rk_stage_info = { Am_core.Descr.flops = 30.0; transcendentals = 0.0 }

(* ---- Multigrid ---- *)

(* Restrict the fine update onto the coarse level.
   args: q (R), qold (R), coarse_r (Inc via fine->coarse map, dim 6). *)
let mg_restrict args =
  let q = args.(0) and qold = args.(1) and cr = args.(2) in
  for n = 0 to n_state - 1 do
    cr.(n) <- cr.(n) +. (0.25 *. (q.(n) -. qold.(n)))
  done

let mg_restrict_info = { Am_core.Descr.flops = 18.0; transcendentals = 0.0 }

(* Jacobi smoothing, edge accumulation: acc += neighbour correction.
   args: corr1 corr2 (R via coarse edge->cell), acc1 acc2 (Inc). *)
let mg_smooth_edge args =
  let c1 = args.(0) and c2 = args.(1) in
  let a1 = args.(2) and a2 = args.(3) in
  for n = 0 to n_state - 1 do
    a1.(n) <- a1.(n) +. c2.(n);
    a2.(n) <- a2.(n) +. c1.(n)
  done

let mg_smooth_edge_info = { Am_core.Descr.flops = 12.0; transcendentals = 0.0 }

(* Jacobi smoothing, cell update: corr = 0.5*(r + acc/4); acc reset.
   args: coarse_r (R), acc (Rw), corr (W). *)
let mg_smooth_cell args =
  let r = args.(0) and acc = args.(1) and corr = args.(2) in
  for n = 0 to n_state - 1 do
    corr.(n) <- 0.5 *. (r.(n) +. (0.25 *. acc.(n)));
    acc.(n) <- 0.0
  done

let mg_smooth_cell_info = { Am_core.Descr.flops = 18.0; transcendentals = 0.0 }

(* Prolong the smoothed coarse correction back to the fine level.
   args: corr (R via fine->coarse), q (Rw). *)
let mg_prolong args =
  let corr = args.(0) and q = args.(1) in
  for n = 0 to n_state - 1 do
    q.(n) <- q.(n) +. (0.2 *. corr.(n))
  done

let mg_prolong_info = { Am_core.Descr.flops = 12.0; transcendentals = 0.0 }

(* Zero a coarse accumulator. args: dat (W, dim 6). *)
let zero6 args = Array.fill args.(0) 0 n_state 0.0

let zero6_info = { Am_core.Descr.flops = 0.0; transcendentals = 0.0 }

(* Runge-Kutta stage coefficients (5-stage, as Hydra's default scheme). *)
let rk_alphas = [| 0.0533; 0.1263; 0.2375; 0.4414; 1.0 |]
