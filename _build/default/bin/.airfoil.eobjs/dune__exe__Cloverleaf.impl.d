bin/cloverleaf.ml: Am_cloverleaf Am_core Am_ops Am_simmpi Am_taskpool Am_util Arg Cmd Cmdliner Printf Term Unix
