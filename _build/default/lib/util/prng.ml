(* Deterministic splittable PRNG (splitmix64) so that every experiment in the
   repository is reproducible bit-for-bit regardless of platform.  The state
   is a single int64; [split] derives an independent stream, which the
   parallel backends use to give each domain its own generator. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Uniform float in [0, 1). Uses the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let r = Int64.to_int (Int64.logand (next_int64 t) mask) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller; consumes two uniforms per pair but we
   discard the second member for simplicity (cheap relative to use). *)
let gaussian t =
  let u1 = max 1e-300 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
