(* Run-time execution plans.

   Any loop with indirect increments or writes has potential data races under
   shared-memory execution.  Following the paper (Section II.B), the plan
   breaks the iteration set into blocks and colours at two levels:

   - blocks are coloured so same-colour blocks touch disjoint indirect
     elements (they can be run by different OpenMP threads / CUDA thread
     blocks);
   - elements are coloured so the GPU backend can order its scatters within
     a block.

   Plans depend only on the mesh connectivity, so they are built once per
   (loop, argument signature) and cached — [signature] is the cache key. *)

module Access = Am_core.Access
module Obs = Am_obs.Obs
module Counters = Am_obs.Counters
module Cat = Am_obs.Tracer
open Types

type t = {
  blocks : Am_mesh.Coloring.blocks;
  block_coloring : Am_mesh.Coloring.t;
  elem_coloring : Am_mesh.Coloring.t option; (* None when the loop is conflict-free *)
  n_conflict_targets : int;
}

let has_conflicts t = t.elem_coloring <> None

(* Indirect arguments whose access can race: Inc always, Write/Rw because two
   iteration elements may map to the same target. *)
let conflict_args args =
  List.filter_map
    (function
      | Arg_dat { dat; map = Some (m, k); access } when Access.writes access ->
        Some (dat, m, k)
      | Arg_dat _ | Arg_gbl _ -> None)
    args

(* Distinct target dats get disjoint address arenas so that conflicts on
   different datasets are kept separate. [n_elems_of] resolves the element
   count — rank-local in distributed contexts. *)
let build_arena ~n_elems_of conflicts =
  let offsets = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun (dat, _, _) ->
      if not (Hashtbl.mem offsets dat.dat_id) then begin
        Hashtbl.add offsets dat.dat_id !total;
        total := !total + n_elems_of dat
      end)
    conflicts;
  (offsets, !total)

let signature ~name ~iter_set ~block_size args =
  let arg_sig = function
    | Arg_dat { dat; map = None; access } ->
      Printf.sprintf "d%d:%s" dat.dat_id (Access.to_string access)
    | Arg_dat { dat; map = Some (m, k); access } ->
      Printf.sprintf "d%d@m%d.%d:%s" dat.dat_id m.map_id k (Access.to_string access)
    | Arg_gbl { buf; access; _ } ->
      Printf.sprintf "g%d:%s" (Array.length buf) (Access.to_string access)
  in
  Printf.sprintf "%s/s%d/b%d/%s" name iter_set.set_id block_size
    (String.concat "," (List.map arg_sig args))

(* [build ~set_size ~block_size args] plans over [0, set_size) with the
   global map tables; [?resolvers] substitutes rank-local data and map
   tables so the distributed backend can plan each rank's owned range. *)
let build ?resolvers ~set_size ~block_size args =
  let resolve_dat, resolve_map =
    match resolvers with
    | None -> ((fun d -> dat_n_elems d), fun (m : map_t) -> m.values)
    | Some r ->
      ( (fun d -> snd (r.Exec_common.resolve_dat d)),
        fun m -> r.Exec_common.resolve_map m )
  in
  let n = set_size in
  let blocks = Am_mesh.Coloring.make_blocks ~n_items:n ~block_size in
  let conflicts = conflict_args args in
  if conflicts = [] then
    {
      blocks;
      block_coloring =
        (* All blocks share colour 0: they are mutually independent. *)
        {
          Am_mesh.Coloring.colors = Array.make blocks.Am_mesh.Coloring.n_blocks 0;
          n_colors = (if blocks.Am_mesh.Coloring.n_blocks > 0 then 1 else 0);
          by_color =
            (if blocks.Am_mesh.Coloring.n_blocks > 0 then
               [| Array.init blocks.Am_mesh.Coloring.n_blocks Fun.id |]
             else [||]);
        };
      elem_coloring = None;
      n_conflict_targets = 0;
    }
  else begin
    let offsets, n_targets = build_arena ~n_elems_of:resolve_dat conflicts in
    let targets e f =
      List.iter
        (fun (dat, m, k) ->
          let base = Hashtbl.find offsets dat.dat_id in
          f (base + (resolve_map m).((e * m.arity) + k)))
        conflicts
    in
    let block_coloring = Am_mesh.Coloring.color_blocks ~blocks ~n_targets ~targets in
    let elem_coloring = Am_mesh.Coloring.color ~n_items:n ~n_targets ~targets in
    { blocks; block_coloring; elem_coloring = Some elem_coloring;
      n_conflict_targets = n_targets }
  end

(* ---- Colouring validation -------------------------------------------- *)

(* A machine-checked proof obligation over a built plan: no colour round may
   contain two iteration elements that indirectly write the same target
   element.  The shared backend runs same-coloured blocks concurrently and
   the vec/cuda backends scatter same-coloured elements as a batch, so a
   counterexample here is a real data race on those schedules.  The check
   recomputes the conflict closure from the live map tables (not from
   whatever the plan builder saw), so it also catches plans gone stale. *)

type violation = {
  v_level : [ `Block_colour | `Element_colour ];
  v_colour : int;
  v_elem_a : int; (* iteration elements (witness pair) *)
  v_elem_b : int;
  v_target : int; (* shared arena slot both elements write *)
}

let violation_to_string ~name v =
  Printf.sprintf
    "plan %s: %s colour %d schedules elements %d and %d concurrently, both \
     writing conflict target %d"
    name
    (match v.v_level with
    | `Block_colour -> "block"
    | `Element_colour -> "element")
    v.v_colour v.v_elem_a v.v_elem_b v.v_target

(* [validate ?resolvers ~set_size args plan] returns every witness pair (or
   [] — the plan is proven race-free for its schedules). *)
let validate ?resolvers ~set_size args (plan : t) =
  let resolve_dat, resolve_map =
    match resolvers with
    | None -> ((fun d -> dat_n_elems d), fun (m : map_t) -> m.values)
    | Some r ->
      ( (fun d -> snd (r.Exec_common.resolve_dat d)),
        fun m -> r.Exec_common.resolve_map m )
  in
  let conflicts = conflict_args args in
  if conflicts = [] then []
  else begin
    let offsets, n_targets = build_arena ~n_elems_of:resolve_dat conflicts in
    let targets e f =
      List.iter
        (fun (dat, m, k) ->
          let base = Hashtbl.find offsets dat.dat_id in
          f (base + (resolve_map m).((e * m.arity) + k)))
        conflicts
    in
    let violations = ref [] in
    (* Element level (vec/cuda scatter rounds): within one colour, a target
       may be touched by at most one element.  The same element touching a
       target twice (e.g. an edge with both endpoints equal) is serialised
       inside the kernel call and is not a race. *)
    (match plan.elem_coloring with
    | None -> ()
    | Some ec ->
      let round = Array.make n_targets (-1) in
      let owner = Array.make n_targets (-1) in
      Array.iteri
        (fun c elems ->
          Array.iter
            (fun e ->
              if e < set_size then
                targets e (fun t ->
                    if round.(t) = c && owner.(t) <> e then
                      violations :=
                        {
                          v_level = `Element_colour;
                          v_colour = c;
                          v_elem_a = owner.(t);
                          v_elem_b = e;
                          v_target = t;
                        }
                        :: !violations
                    else begin
                      round.(t) <- c;
                      owner.(t) <- e
                    end))
            elems)
        ec.Am_mesh.Coloring.by_color);
    (* Block level (shared backend): same-coloured blocks run on different
       workers, so a target may be touched from at most one block per
       colour.  Two elements of the same block sharing a target is fine —
       one worker runs a block sequentially. *)
    let round = Array.make n_targets (-1) in
    let owner_block = Array.make n_targets (-1) in
    let owner_elem = Array.make n_targets (-1) in
    Array.iteri
      (fun c block_ids ->
        Array.iter
          (fun b ->
            let lo, hi = Am_mesh.Coloring.block_range plan.blocks b in
            for e = lo to min (hi - 1) (set_size - 1) do
              targets e (fun t ->
                  if round.(t) = c && owner_block.(t) <> b then
                    violations :=
                      {
                        v_level = `Block_colour;
                        v_colour = c;
                        v_elem_a = owner_elem.(t);
                        v_elem_b = e;
                        v_target = t;
                      }
                      :: !violations
                  else begin
                    round.(t) <- c;
                    owner_block.(t) <- b;
                    owner_elem.(t) <- e
                  end)
            done)
          block_ids)
      plan.block_coloring.Am_mesh.Coloring.by_color;
    List.rev !violations
  end

(* ---- Plan + executor cache ------------------------------------------- *)

(* One cache entry per (loop, argument signature, block size).  The plan is
   lazy — the sequential backend resolves entries without ever building a
   colouring — and the compiled executor rides along so every call site with
   the same signature shares one specialisation.  The executor is checked
   for freshness against the live arguments on every use ([compiled_matches]
   is a handful of pointer compares) because [update]/[convert_layout]/SoA
   conversion replace dataset arrays wholesale. *)
type entry = {
  entry_name : string; (* loop name, for plan/compile trace spans *)
  entry_plan : t Lazy.t;
  mutable entry_exec : Exec_common.compiled_arg array option;
  mutable entry_foot : Am_core.Probe.info option;
      (* inferred kernel footprint, cached per signature alongside the plan
         so handle-resolved call sites skip the footprint-table lookup *)
}

type cache = {
  table : (string, entry) Hashtbl.t;
  mutable generation : int; (* bumped on invalidation; handles compare it *)
}

let make_cache () = { table = Hashtbl.create 32; generation = 0 }

(* Drop every plan and executor (mesh renumbering rewrites map tables). *)
let invalidate cache =
  Hashtbl.reset cache.table;
  cache.generation <- cache.generation + 1

let count_build (p : t) =
  Counters.incr Obs.plan_builds;
  Counters.add Obs.plan_colours p.block_coloring.Am_mesh.Coloring.n_colors;
  p

let find_entry cache ~name ~iter_set ~block_size args =
  let key = signature ~name ~iter_set ~block_size args in
  match Hashtbl.find_opt cache.table key with
  | Some e ->
    Counters.incr Obs.plan_hits;
    e
  | None ->
    Counters.incr Obs.plan_misses;
    let e =
      {
        entry_name = name;
        entry_plan =
          lazy
            (Obs.span ~cat:Cat.Plan name (fun () ->
                 count_build (build ~set_size:iter_set.set_size ~block_size args)));
        entry_exec = None;
        entry_foot = None;
      }
    in
    Hashtbl.add cache.table key e;
    e

let entry_exec entry args =
  match entry.entry_exec with
  | Some c when Exec_common.compiled_matches c args ->
    Counters.incr Obs.exec_hits;
    c
  | Some _ | None ->
    Counters.incr Obs.exec_misses;
    let c = Obs.span ~cat:Cat.Plan entry.entry_name (fun () -> Exec_common.compile args) in
    entry.entry_exec <- Some c;
    c

let find_or_build cache ~name ~iter_set ~block_size args =
  Lazy.force (find_entry cache ~name ~iter_set ~block_size args).entry_plan

(* ---- Loop handles ------------------------------------------------------ *)

(* A handle is per-call-site memoisation of the cache lookup: once resolved,
   re-invoking the same loop with structurally identical arguments skips the
   [Printf.sprintf] signature entirely — validity is a generation check plus
   pointer compares on the argument list. *)
type handle = {
  mutable h_entry : entry option;
  mutable h_block_size : int;
  mutable h_set_id : int;
  mutable h_args : arg list;
  mutable h_generation : int;
}

let make_handle () =
  { h_entry = None; h_block_size = -1; h_set_id = -1; h_args = []; h_generation = -1 }

(* Structural identity of argument lists: same dats, maps, slots, global
   buffers (physically) with the same access descriptors. *)
let args_match a b =
  List.compare_lengths a b = 0
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Arg_dat { dat = d1; map = m1; access = a1 },
           Arg_dat { dat = d2; map = m2; access = a2 } ->
           d1 == d2 && a1 = a2
           && (match (m1, m2) with
              | None, None -> true
              | Some (p, i), Some (q, j) -> p == q && i = j
              | None, Some _ | Some _, None -> false)
         | Arg_gbl { buf = b1; access = a1; _ }, Arg_gbl { buf = b2; access = a2; _ }
           ->
           b1 == b2 && a1 = a2
         | (Arg_dat _ | Arg_gbl _), _ -> false)
       a b

let resolve cache handle ~name ~iter_set ~block_size args =
  let entry =
    match handle.h_entry with
    | Some e
      when handle.h_generation = cache.generation
           && handle.h_block_size = block_size
           && handle.h_set_id = iter_set.set_id
           && args_match handle.h_args args ->
      Counters.incr Obs.plan_hits;
      e
    | Some _ | None ->
      let e = find_entry cache ~name ~iter_set ~block_size args in
      handle.h_entry <- Some e;
      handle.h_generation <- cache.generation;
      handle.h_block_size <- block_size;
      handle.h_set_id <- iter_set.set_id;
      handle.h_args <- args;
      e
  in
  (entry, entry_exec entry args)

(* Footprint side-channel: a handle whose last resolution is still valid for
   these arguments exposes the entry's cached footprint; [set_handle_foot]
   stores one there after the first (Hashtbl-keyed) inference.  Validity
   mirrors [resolve] minus the block size — a footprint depends only on the
   kernel and the descriptor, never on the block decomposition. *)
let handle_foot cache handle ~iter_set args =
  match handle.h_entry with
  | Some e
    when handle.h_generation = cache.generation
         && handle.h_set_id = iter_set.set_id
         && args_match handle.h_args args ->
    e.entry_foot
  | Some _ | None -> None

let set_handle_foot handle fi =
  match handle.h_entry with
  | Some e when e.entry_foot = None -> e.entry_foot <- Some fi
  | Some _ | None -> ()

(* Diagnostics / test hooks: what the handle last resolved to. *)
let handle_plan handle =
  match handle.h_entry with
  | Some e when Lazy.is_val e.entry_plan -> Some (Lazy.force e.entry_plan)
  | Some _ | None -> None

let handle_exec handle =
  match handle.h_entry with Some e -> e.entry_exec | None -> None
