test/test_sysio.ml: Alcotest Am_mesh Am_sysio Array Filename Float List String Sys
