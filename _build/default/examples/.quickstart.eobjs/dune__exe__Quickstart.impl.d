examples/quickstart.ml: Am_core Am_ops Array Printf
