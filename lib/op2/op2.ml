(* Public facade of the unstructured-mesh active library.

   Usage mirrors the original OP2 API:

   {[
     let ctx = Op2.create () in
     let cells = Op2.decl_set ctx ~name:"cells" ~size:n_cells in
     let edges = Op2.decl_set ctx ~name:"edges" ~size:n_edges in
     let edge_cells = Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges
                        ~to_set:cells ~arity:2 ~values in
     let q = Op2.decl_dat ctx ~name:"q" ~set:cells ~dim:4 ~data in
     ...
     Op2.par_loop ctx ~name:"res_calc" edges
       [ Op2.arg_dat_indirect q edge_cells 0 Read;
         Op2.arg_dat_indirect q edge_cells 1 Read;
         Op2.arg_dat_indirect res edge_cells 0 Inc;
         Op2.arg_dat_indirect res edge_cells 1 Inc ]
       (fun a -> ...)
   ]}

   The backend (sequential, shared-memory, GPU simulator, distributed) is a
   property of the context and can be switched between loops; applications
   never change. *)

module Access = Am_core.Access
module Descr = Am_core.Descr
module Probe = Am_core.Probe
module Profile = Am_core.Profile
module Trace = Am_core.Trace

type set = Types.set
type map_t = Types.map_t
type dat = Types.dat
type arg = Types.arg
type layout = Types.layout = Aos | Soa

type backend =
  | Seq
  | Vec of Exec_vec.config
  | Shared of { pool : Am_taskpool.Pool.t; block_size : int }
  | Cuda_sim of Exec_cuda.config
  | Check (* sanitizer: seq semantics + access-descriptor guards *)

type ctx = {
  env : Types.env;
  mutable backend : backend;
  plan_cache : Plan.cache;
  profile : Profile.t;
  trace : Trace.t;
  mutable dist : Dist.t option;
  mutable checkpoint : Am_checkpoint.Runtime.session option;
  mutable fault : Am_simmpi.Fault.t option;
  mutable infer : bool; (* kernel footprint inference (on by default) *)
  (* Spend sampled never-observed-read facts on dropping halo exchanges:
     explicit opt-in, off by default (see DESIGN.md 5j) — a read the
     probes never triggered must not leave a rank consuming stale ghosts. *)
  mutable tighten : bool;
  foot_tbl : (string, Probe.info) Hashtbl.t; (* keyed by Probe.signature *)
}

let create ?(backend = Seq) () =
  {
    env = Types.make_env ();
    backend;
    plan_cache = Plan.make_cache ();
    profile = Profile.create ();
    trace = Trace.create ();
    dist = None;
    checkpoint = None;
    fault = None;
    infer = true;
    tighten = false;
    foot_tbl = Hashtbl.create 32;
  }

let set_backend ctx backend =
  (match (backend, ctx.dist) with
  | (Shared _ | Cuda_sim _ | Vec _ | Check), Some _ ->
    invalid_arg
      "Op2.set_backend: the distributed context executes ranks sequentially; \
       shared/CUDA/vector/check backends apply to non-partitioned contexts"
  | (Seq | Shared _ | Cuda_sim _ | Vec _ | Check), _ -> ());
  ctx.backend <- backend

let backend ctx = ctx.backend
let profile ctx = ctx.profile
let trace ctx = ctx.trace

(* ---- Declarations ---------------------------------------------------- *)

let decl_set ctx ~name ~size = Types.decl_set ctx.env ~name ~size

let decl_map ctx ~name ~from_set ~to_set ~arity ~values =
  Types.decl_map ctx.env ~name ~from_set ~to_set ~arity ~values

let decl_dat ctx ~name ~set ~dim ~data = Types.decl_dat ctx.env ~name ~set ~dim ~data

let decl_dat_zero ctx ~name ~set ~dim =
  Types.decl_dat_const ctx.env ~name ~set ~dim ~value:0.0

(* op_decl_const: register a global constant (dimension = array length).
   Kernels read constants directly (OCaml closures make the broadcast
   free); the declaration exists so generated code can emit the constant
   per target — CUDA constant memory, C globals — and so diagnostics list
   them. *)
let decl_const ctx ~name values = Types.decl_global_const ctx.env ~name values
let consts ctx = Types.consts ctx.env

let sets ctx = Types.sets ctx.env
let maps ctx = Types.maps ctx.env
let dats ctx = Types.dats ctx.env

(* ---- Argument constructors ------------------------------------------- *)

(* Access-mode legality is enforced here, at declaration, so an illegal
   descriptor fails with the dataset name in hand rather than surfacing as
   an [invalid_arg] deep inside a backend's gather specialiser. *)
let require_valid_on_dat ~ctor dat access =
  if not (Access.valid_on_dat access) then
    invalid_arg
      (Printf.sprintf
         "Op2.%s: access %s is not valid on dataset %s (datasets accept \
          Read/Write/Inc/Rw; Min/Max are global reductions — use arg_gbl)"
         ctor (Access.to_string access) dat.Types.dat_name)

let arg_dat dat access : arg =
  require_valid_on_dat ~ctor:"arg_dat" dat access;
  Types.Arg_dat { dat; map = None; access }

let arg_dat_indirect dat map_t idx access : arg =
  require_valid_on_dat ~ctor:"arg_dat_indirect" dat access;
  Types.Arg_dat { dat; map = Some (map_t, idx); access }

let arg_gbl ~name buf access : arg =
  if not (Access.valid_on_gbl access) then
    invalid_arg
      (Printf.sprintf
         "Op2.arg_gbl: access %s is not valid on global %s (globals accept \
          Read/Inc/Min/Max; Write/Rw have no race-free parallel meaning)"
         (Access.to_string access) name);
  Types.Arg_gbl { name; buf; access }

(* ---- Data access ------------------------------------------------------ *)

(* Fetch a dataset in global element order and AoS layout regardless of the
   backend's internal representation. *)
let fetch ctx dat =
  match ctx.dist with
  | Some d -> Dist.fetch d dat
  | None ->
    if dat.Types.layout = Types.Aos then Array.copy dat.Types.data
    else
      Types.convert_array ~from_layout:dat.Types.layout ~to_layout:Types.Aos
        ~n:(Types.dat_n_elems dat) ~dim:dat.Types.dim dat.Types.data

(* Overwrite a dataset from a global-order AoS array. *)
let update ctx dat data =
  if Array.length data <> dat.Types.dat_set.Types.set_size * dat.Types.dim then
    invalid_arg "Op2.update: bad data length";
  (match ctx.dist with
  | Some d -> Dist.push d dat data
  | None ->
    dat.Types.data <-
      Types.convert_array ~from_layout:Types.Aos ~to_layout:dat.Types.layout
        ~n:(Types.dat_n_elems dat) ~dim:dat.Types.dim data)

let convert_layout ctx dat layout =
  if ctx.dist <> None then
    invalid_arg "Op2.convert_layout: not available on a partitioned context";
  if dat.Types.layout <> layout then begin
    dat.Types.data <-
      Types.convert_array ~from_layout:dat.Types.layout ~to_layout:layout
        ~n:(Types.dat_n_elems dat) ~dim:dat.Types.dim dat.Types.data;
    dat.Types.layout <- layout
  end

(* ---- Renumbering (mesh reordering optimisation) ----------------------- *)

(* Reverse Cuthill-McKee on the dual graph of [through]'s target set, with
   orderings induced on every other set via the declared maps — the
   automatic mesh renumbering the paper credits with a large share of
   Fig 3's single-node gain. Returns the bandwidth before/after for
   reporting. *)
(* Core renumbering machinery: given a seed permutation of one set, induce
   orderings on every other set through the declared maps and apply all of
   them to datasets and maps. *)
let apply_seed_permutation ctx ~seed_set ~seed_perm =
  if ctx.dist <> None then
    invalid_arg "Op2.renumber: renumber before partitioning";
  let open Types in
  if not (Am_mesh.Reorder.is_permutation seed_perm)
     || Array.length seed_perm <> seed_set.set_size
  then invalid_arg "Op2.renumber: seed is not a permutation of the set";
  let perms : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.add perms seed_set.set_id seed_perm;
  (* Induce orderings through maps until no progress. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        let from_known = Hashtbl.mem perms m.from_set.set_id in
        let to_known = Hashtbl.mem perms m.to_set.set_id in
        if to_known && not from_known then begin
          let perm_to = Hashtbl.find perms m.to_set.set_id in
          let renumbered = Am_mesh.Reorder.renumber_targets ~perm:perm_to m.values in
          Hashtbl.add perms m.from_set.set_id
            (Am_mesh.Reorder.induced_order ~n_sources:m.from_set.set_size
               ~arity:m.arity renumbered);
          changed := true
        end
        else if from_known && not to_known then begin
          let perm_from = Hashtbl.find perms m.from_set.set_id in
          (* Order targets by the minimum renumbered source touching them. *)
          let key = Array.make m.to_set.set_size max_int in
          for s = 0 to m.from_set.set_size - 1 do
            for k = 0 to m.arity - 1 do
              let t = m.values.((s * m.arity) + k) in
              if perm_from.(s) < key.(t) then key.(t) <- perm_from.(s)
            done
          done;
          let order = Array.init m.to_set.set_size Fun.id in
          Array.sort (fun a b -> compare (key.(a), a) (key.(b), b)) order;
          let perm = Array.make m.to_set.set_size 0 in
          Array.iteri (fun new_i old_i -> perm.(old_i) <- new_i) order;
          Hashtbl.add perms m.to_set.set_id perm;
          changed := true
        end)
      (maps ctx.env)
  done;
  let perm_of set =
    match Hashtbl.find_opt perms set.set_id with
    | Some p -> p
    | None -> Am_mesh.Reorder.identity set.set_size
  in
  (* Apply: dat data, map sources, map targets. *)
  List.iter
    (fun d ->
      if d.layout <> Aos then invalid_arg "Op2.renumber: convert datasets to AoS first";
      d.data <-
        Am_mesh.Reorder.permute_data ~perm:(perm_of d.dat_set) ~dim:d.dim d.data)
    (dats ctx.env);
  List.iter
    (fun m ->
      let v = Am_mesh.Reorder.renumber_targets ~perm:(perm_of m.to_set) m.values in
      m.values <-
        Am_mesh.Reorder.permute_sources ~perm:(perm_of m.from_set) ~dim:m.arity v)
    (maps ctx.env);
  (* Plans and compiled executors depend on map contents: drop them (live
     loop handles notice via the cache generation). *)
  Plan.invalidate ctx.plan_cache

(* Reverse Cuthill-McKee on the dual graph of [through]'s target set (the
   default OP2 renumbering); returns mean dual-graph index distance
   (before, after). *)
let renumber ctx ~through =
  let open Types in
  let dual () =
    Am_mesh.Csr.of_map_rows ~n_vertices:through.to_set.set_size
      ~n_rows:through.from_set.set_size ~arity:through.arity through.values
  in
  let g = dual () in
  let before = Am_mesh.Csr.average_bandwidth g in
  apply_seed_permutation ctx ~seed_set:through.to_set
    ~seed_perm:(Am_mesh.Reorder.rcm g);
  (before, Am_mesh.Csr.average_bandwidth (dual ()))

(* Renumber with a caller-supplied ordering of one set (e.g. a Hilbert-curve
   permutation from element coordinates); orderings of the other sets are
   induced through the maps as for RCM. *)
let renumber_with ctx ~set ~perm = apply_seed_permutation ctx ~seed_set:set ~seed_perm:perm

(* ---- Partitioning ------------------------------------------------------ *)

type partition_strategy = Dist.strategy =
  | Block_on of set
  | Rcb_on of dat
  | Kway_through of map_t

let partition ctx ~n_ranks ~strategy =
  if ctx.dist <> None then invalid_arg "Op2.partition: context already partitioned";
  (match ctx.backend with
  | Seq -> ()
  | Shared _ | Cuda_sim _ | Vec _ | Check ->
    invalid_arg "Op2.partition: switch the backend to Seq before partitioning");
  let d = Dist.build ctx.env ~n_ranks ~strategy in
  (match ctx.fault with
  | Some f -> Am_simmpi.Comm.attach_fault d.Dist.comm f
  | None -> ());
  ctx.dist <- Some d

let dist ctx = ctx.dist

(* Route the distributed runtime's messages through the fault injector's
   reliable transport; a loop-counter crash trigger fires on any backend. *)
let set_fault_injector ctx f =
  ctx.fault <- Some f;
  match ctx.dist with
  | Some d -> Am_simmpi.Comm.attach_fault d.Dist.comm f
  | None -> ()

let fault_injector ctx = ctx.fault

(* Intra-rank execution of the distributed backend: the hybrid MPI+OpenMP
   and MPI+vectorised modes of the paper. *)
type rank_execution = Dist.rank_exec =
  | Rank_seq
  | Rank_shared of { pool : Am_taskpool.Pool.t; block_size : int }
  | Rank_vec of Exec_vec.config

let set_rank_execution ctx exec =
  match ctx.dist with
  | None -> invalid_arg "Op2.set_rank_execution: partition first"
  | Some d -> d.Dist.rank_exec <- exec

(* Halo-exchange policy: On_demand is the paper's access-descriptor-driven
   scheme (exchange only when a written dat's halo is stale); Eager
   exchanges before every indirect read, the behaviour of a runtime
   without dirty-bit tracking. Identical results; different traffic. *)
type halo_policy = On_demand | Eager

let set_halo_policy ctx policy =
  match ctx.dist with
  | None -> invalid_arg "Op2.set_halo_policy: partition first"
  | Some d -> d.Dist.eager_halo <- (policy = Eager)

(* Communication mode: [Blocking] completes every halo exchange before the
   loop body; [Overlap] posts the exchange, runs the core elements (those
   reaching only owned slots), waits, then runs the boundary elements —
   the latency-hiding execution of the paper's MPI design.  Results are
   bitwise-identical between the two modes under sequential rank
   execution: the element order is core-then-boundary in both. *)
type comm_mode = Blocking | Overlap

let set_comm_mode ctx mode =
  match ctx.dist with
  | None -> invalid_arg "Op2.set_comm_mode: partition first"
  | Some d -> d.Dist.overlap <- (mode = Overlap)

let comm_mode ctx =
  match ctx.dist with
  | None -> Blocking
  | Some d -> if d.Dist.overlap then Overlap else Blocking

let comm_stats ctx =
  match ctx.dist with
  | None -> None
  | Some d -> Some (Am_simmpi.Comm.stats d.Dist.comm)

(* ---- The parallel loop ------------------------------------------------- *)

let now () = Unix.gettimeofday ()

(* A per-call-site loop handle (see [Plan]): resolves the execution plan and
   the compiled gather/scatter executor without rebuilding the signature
   string per invocation. *)
type handle = Plan.handle

let make_handle = Plan.make_handle

(* ---- Kernel footprint inference --------------------------------------- *)

(* Probe the kernel once per loop signature (see [Am_core.Probe]): the
   observed footprint feeds the Verify findings ([footprints] below), lets
   the Check backend skip the per-element guards the probes already proved,
   and drops halo exchanges for indirectly-read datasets the kernel was
   observed never to read.  Cached in [foot_tbl] by descriptor signature and,
   for handle-bearing call sites, on the plan entry itself. *)
let footprint ctx ?handle (descr : Descr.loop) iter_set args kernel =
  if not ctx.infer then None
  else begin
    let from_handle =
      match handle with
      | Some h -> Plan.handle_foot ctx.plan_cache h ~iter_set args
      | None -> None
    in
    match from_handle with
    | Some fi ->
      Am_obs.Counters.incr Am_obs.Obs.infer_hits;
      Some fi
    | None ->
      let key = Probe.signature descr in
      let fi =
        match Hashtbl.find_opt ctx.foot_tbl key with
        | Some fi ->
          Am_obs.Counters.incr Am_obs.Obs.infer_hits;
          fi
        | None ->
          Am_obs.Counters.incr Am_obs.Obs.infer_misses;
          let fp = Probe.infer ~loop:descr ~kernel () in
          (* Unstructured arguments carry no stencil radius to tighten; the
             extent column is the no-information marker throughout. *)
          let fi =
            {
              Probe.in_loop = descr;
              in_foot = fp;
              in_read_ext = Array.make (List.length args) (-1);
            }
          in
          Hashtbl.add ctx.foot_tbl key fi;
          fi
      in
      (match handle with Some h -> Plan.set_handle_foot h fi | None -> ());
      Some fi
  end

let light_of = function Some fi -> Probe.clean fi.Probe.in_foot | None -> false

(* Per-argument "declared indirectly-read but observed wholly unread" flags
   for the distributed backend — only offered on clean footprints. *)
let unread_of args = function
  | Some (fi : Probe.info) when Probe.clean fi.Probe.in_foot ->
    let fp = fi.Probe.in_foot in
    Some
      (Array.of_list
         (List.mapi
            (fun i arg ->
              match arg with
              | Types.Arg_dat { map = Some _; access; _ }
                when Access.reads access && i < Array.length fp.Probe.fp_args ->
                not (Array.exists Fun.id fp.Probe.fp_args.(i).Probe.af_read)
              | Types.Arg_dat _ | Types.Arg_gbl _ -> false)
            args))
  | Some _ | None -> None

let set_infer ctx enabled = ctx.infer <- enabled
let infer_enabled ctx = ctx.infer
let set_tighten ctx enabled = ctx.tighten <- enabled
let tighten_enabled ctx = ctx.tighten

let footprints ctx =
  Hashtbl.fold (fun _ fi acc -> fi :: acc) ctx.foot_tbl []
  |> List.sort (fun a b ->
         compare a.Probe.in_loop.Descr.loop_name b.Probe.in_loop.Descr.loop_name)

let execute_loop ctx ~name ~foot ?handle iter_set args kernel =
  match ctx.dist with
  | Some d ->
    (* Rank-local plans have their own cache; handles do not apply. *)
    let halo_seconds = ref 0.0 and overlap_seconds = ref 0.0 in
    let unread = if ctx.tighten then unread_of args foot else None in
    Dist.par_loop ?unread ~halo_seconds ~overlap_seconds d
      ~name ~iter_set ~args ~kernel;
    Profile.record_halo ctx.profile ~name ~overlapped:!overlap_seconds
      ~seconds:!halo_seconds ()
  | None -> (
    let resolve ~block_size =
      match handle with
      | None -> None
      | Some h -> Some (Plan.resolve ctx.plan_cache h ~name ~iter_set ~block_size args)
    in
    let set_size = iter_set.Types.set_size in
    match ctx.backend with
    | Seq -> (
      (* No plan needed: the entry's lazy colouring is never forced. *)
      match resolve ~block_size:0 with
      | None -> Exec_seq.run ~set_size ~args ~kernel ()
      | Some (_, compiled) -> Exec_seq.run ~compiled ~set_size ~args ~kernel ())
    | Vec config -> (
      (* The vector plan only needs element colours; block size is moot. *)
      match resolve ~block_size:256 with
      | None ->
        let plan = Plan.find_or_build ctx.plan_cache ~name ~iter_set ~block_size:256 args in
        Exec_vec.run config plan ~set_size ~args ~kernel
      | Some (entry, compiled) ->
        Exec_vec.run ~compiled config (Lazy.force entry.Plan.entry_plan) ~set_size
          ~args ~kernel)
    | Shared { pool; block_size } -> (
      match resolve ~block_size with
      | None ->
        let plan = Plan.find_or_build ctx.plan_cache ~name ~iter_set ~block_size args in
        Exec_shared.run pool plan ~set_size ~args ~kernel
      | Some (entry, compiled) ->
        Exec_shared.run ~compiled pool (Lazy.force entry.Plan.entry_plan) ~set_size
          ~args ~kernel)
    | Check ->
      (* Sanitizer: prove the colouring the parallel backends would use is
         race-free, then execute under access guards.  The plan validation
         only applies to loops with indirect writes (others never force a
         colouring). *)
      let indirect_write = function
        | Types.Arg_dat { map = Some _; access; _ } -> Access.writes access
        | Types.Arg_dat _ | Types.Arg_gbl _ -> false
      in
      if List.exists indirect_write args then begin
        let plan =
          Plan.find_or_build ctx.plan_cache ~name ~iter_set ~block_size:256 args
        in
        match Plan.validate ~set_size args plan with
        | [] -> ()
        | v :: _ as vs ->
          Am_obs.Counters.add Am_obs.Obs.analysis_plan_violations (List.length vs);
          raise (Exec_check.Violation (Plan.violation_to_string ~name v))
      end;
      Exec_check.run ~light:(light_of foot) ~name ~set_size ~args ~kernel ()
    | Cuda_sim config -> (
      (* The SoA strategy replaces dataset arrays on first touch; convert
         before resolving so the cached executor is compiled against the
         final arrays. *)
      if config.Exec_cuda.strategy = Exec_cuda.Global_soa then Exec_cuda.ensure_soa args;
      match resolve ~block_size:config.Exec_cuda.block_size with
      | None ->
        let plan =
          Plan.find_or_build ctx.plan_cache ~name ~iter_set
            ~block_size:config.Exec_cuda.block_size args
        in
        Exec_cuda.run config plan ~set_size ~args ~kernel
      | Some (entry, compiled) ->
        Exec_cuda.run ~compiled config (Lazy.force entry.Plan.entry_plan) ~set_size
          ~args ~kernel))

let par_loop ctx ~name ?(info = Descr.default_kernel_info) ?handle iter_set args kernel =
  Types.validate_args ~iter_set args;
  let descr = Types.describe ~name ~iter_set ~info args in
  Trace.record ctx.trace descr;
  (* The injected rank crash counts parallel loops on the injector itself,
     so the trigger position survives a recovery restart's fresh context. *)
  (match ctx.fault with
  | Some f -> Am_simmpi.Fault.note_loop f
  | None -> ());
  let foot = footprint ctx ?handle descr iter_set args kernel in
  let t0 = now () in
  let traced = Am_obs.Obs.tracing () in
  let gc0 = if traced then Some (Gc.quick_stat ()) else None in
  if traced then Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Loop name;
  (match ctx.checkpoint with
  | None -> execute_loop ctx ~name ~foot ?handle iter_set args kernel
  | Some session ->
    (* Checkpointing mode: the session decides whether to run the body
       (skipped while fast-forwarding, with logged global outputs replayed),
       snapshot datasets before it, or defer. *)
    let gbl_out =
      List.filter_map
        (function
          | Types.Arg_gbl { buf; access; _ } when access <> Access.Read -> Some buf
          | Types.Arg_gbl _ | Types.Arg_dat _ -> None)
        args
    in
    Am_checkpoint.Runtime.step ~gbl_out session ~descr ~run:(fun () ->
        execute_loop ctx ~name ~foot ?handle iter_set args kernel));
  if traced then Am_obs.Obs.end_span ();
  let seconds = now () -. t0 in
  (match gc0 with
  | Some g0 ->
    let g1 = Gc.quick_stat () in
    Profile.record_gc ctx.profile ~name
      ~minor:(g1.Gc.minor_collections - g0.Gc.minor_collections)
      ~major:(g1.Gc.major_collections - g0.Gc.major_collections)
      ~promoted_words:(g1.Gc.promoted_words -. g0.Gc.promoted_words)
  | None -> ());
  Profile.record ctx.profile ~name ~seconds ~bytes:(Descr.total_bytes descr)
    ~elements:iter_set.Types.set_size

(* ---- Diagnostics (op_diagnostic / op_print_dat_to_txtfile) -------------- *)

(* Cached execution plans: one line per (loop, argument signature), with the
   block decomposition and both colouring levels — the run-time artefacts
   Section II.B describes. *)
let plan_report ctx =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "execution plans:\n";
  let entries =
    Hashtbl.fold
      (fun key entry acc ->
        (* Entries whose lazy plan was never forced (sequential execution)
           have no colouring to report. *)
        if Lazy.is_val entry.Plan.entry_plan then
          (key, Lazy.force entry.Plan.entry_plan) :: acc
        else acc)
      ctx.plan_cache.Plan.table []
    |> List.sort compare
  in
  if entries = [] then Buffer.add_string buf "  (none built yet)\n";
  List.iter
    (fun (key, plan) ->
      let blocks = plan.Plan.blocks in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d blocks of %d, %d block colour(s)%s\n" key
           blocks.Am_mesh.Coloring.n_blocks blocks.Am_mesh.Coloring.block_size
           plan.Plan.block_coloring.Am_mesh.Coloring.n_colors
           (match plan.Plan.elem_coloring with
           | None -> ", conflict-free"
           | Some ec ->
             Printf.sprintf ", %d element colour(s)" ec.Am_mesh.Coloring.n_colors)))
    entries;
  Buffer.contents buf

(* Dump a dataset to a text file in global element order — works in
   distributed mode too, like op_print_dat_to_txtfile ("API calls to dump
   entire datasets to disk, even in a distributed memory environment"). *)
let dump_dat ctx dat ~path =
  let data = fetch ctx dat in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# %s: %d elements x %d components\n" dat.Types.dat_name
        dat.Types.dat_set.Types.set_size dat.Types.dim;
      for e = 0 to dat.Types.dat_set.Types.set_size - 1 do
        for d = 0 to dat.Types.dim - 1 do
          if d > 0 then output_char oc ' ';
          Printf.fprintf oc "%.17g" data.((e * dat.Types.dim) + d)
        done;
        output_char oc '\n'
      done)

(* Decomposition summary (per-set owned/halo counts, exchange volumes). *)
let partition_report ctx =
  match ctx.dist with
  | None -> "not partitioned\n"
  | Some d -> Dist.report d ctx.env

(* ---- Automatic checkpointing (paper Section VI) -------------------------- *)

(* Snapshot accessors over the context's own dataset registry: the "all data
   is handed to the library" property is what makes checkpointing fully
   automatic. *)
let checkpoint_fns ctx =
  let find name =
    match List.find_opt (fun d -> d.Types.dat_name = name) (dats ctx) with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Op2 checkpoint: unknown dataset %s" name)
  in
  {
    Am_checkpoint.Runtime.fetch = (fun name -> fetch ctx (find name));
    restore = (fun name data -> update ctx (find name) data);
  }

(* Route subsequent loops through a checkpointing session. *)
let enable_checkpointing ctx =
  if ctx.checkpoint = None then
    ctx.checkpoint <- Some (Am_checkpoint.Runtime.create ~fns:(checkpoint_fns ctx))

(* Ask for a checkpoint at the next opportunity; with periodicity evidence
   the library defers within one loop period to the cheapest trigger. *)
let request_checkpoint ctx =
  match ctx.checkpoint with
  | None -> invalid_arg "Op2.request_checkpoint: call enable_checkpointing first"
  | Some session -> Am_checkpoint.Runtime.request_checkpoint session

let checkpoint_session ctx = ctx.checkpoint

(* Persist the made checkpoint. *)
let checkpoint_to_file ctx ~path =
  match ctx.checkpoint with
  | None -> invalid_arg "Op2.checkpoint_to_file: checkpointing not enabled"
  | Some session -> Am_checkpoint.Runtime.save_to_file session ~path

(* Restart: route subsequent loops through a fast-forwarding session that
   skips every loop body until the checkpoint position, restores the saved
   datasets there, and resumes normal execution. *)
let recover_from_file ctx ~path =
  ctx.checkpoint <-
    Some (Am_checkpoint.Runtime.recover_from_file ~path ~fns:(checkpoint_fns ctx))
