(* Cluster-scale execution model (Figs 4 and 6).

   Per-step node time is the device time of the rank-local share of the
   traced loop sequence; communication adds a latency term per halo
   exchange, a bandwidth term for the halo volume (which scales with the
   local subdomain surface, sqrt(n) in 2D), and a log-depth latency term per
   global reduction.  The halo-volume coefficient is *calibrated from the
   real distributed runtime*: applications run their actual partitioned code
   on the rank simulator at a small size, measure the per-rank import volume
   recorded by [Am_simmpi.Comm], and hand the resulting surface coefficient
   to this model — the extrapolation is analytic, but its inputs come from
   executed halo plans, not guesses. *)

module Descr = Am_core.Descr

type workload = {
  workload_name : string;
  step_loops : Descr.loop list; (* one time step, traced at [ref_elements] *)
  ref_elements : int; (* global iteration elements of the traced mesh *)
  halo_bytes_coeff : float;
    (* bytes sent per rank per step = coeff * sqrt(n_local); calibrated from
       the traffic the real distributed runtime recorded at small scale *)
  exchanges_per_step : int;
  reductions_per_step : int;
  neighbours : int; (* peer ranks a rank exchanges with *)
}

let messages_per_step w = w.exchanges_per_step * w.neighbours * 2

(* Calibrate the surface coefficient from an observed run: [bytes_per_step]
   sent by all [ranks] together at local size [n_local]. *)
let calibrate_halo_coeff ~bytes_per_step ~ranks ~n_local =
  bytes_per_step /. Float.of_int ranks /. sqrt (Float.of_int (max 1 n_local))

(* Halo-exchange seconds per step on [net] for a rank holding [n_local]
   elements among [nodes]: per-message latency plus the surface-law
   bandwidth term.  This is the part a non-blocking runtime can hide. *)
let halo_time (net : Machines.network) w ~nodes ~n_local =
  if nodes <= 1 then 0.0
  else begin
    let halo_bytes = w.halo_bytes_coeff *. sqrt (Float.of_int n_local) in
    let latency = Float.of_int (messages_per_step w) *. net.Machines.latency in
    let bandwidth = halo_bytes /. (net.Machines.bandwidth *. 1e9) in
    latency +. bandwidth
  end

(* Global reductions are synchronisation points: log-depth latency that no
   overlap can hide. *)
let reduction_time (net : Machines.network) w ~nodes =
  if nodes <= 1 then 0.0
  else
    Float.of_int w.reductions_per_step
    *. 2.0 *. net.Machines.latency
    *. (log (Float.of_int nodes) /. log 2.0)

(* Communication seconds per step on [net] for a rank holding [n_local]
   elements among [nodes]. *)
let comm_time (net : Machines.network) w ~nodes ~n_local =
  halo_time net w ~nodes ~n_local +. reduction_time net w ~nodes

(* Share of a rank's elements within reach of the halo: the boundary layer
   is one surface's worth of elements per neighbour (sqrt(n) in 2D). *)
let boundary_fraction w ~n_local =
  Float.min 1.0
    (Float.of_int w.neighbours *. sqrt (Float.of_int n_local)
     /. Float.of_int (max 1 n_local))

(* Per-step time at [nodes] nodes with [global_elements] in total.  With
   [overlap] the halo exchange is credited against the core (interior)
   share of the compute — the model form of the runtime's non-blocking
   core/boundary split — while reductions stay exposed. *)
let step_time ?(overlap = false) (cluster : Machines.cluster) style w ~nodes
    ~global_elements =
  let n_local = max 1 (global_elements / nodes) in
  let factor = Float.of_int n_local /. Float.of_int w.ref_elements in
  let local_loops = Model.scale_sequence factor w.step_loops in
  let compute = Model.sequence_time cluster.Machines.node style local_loops in
  if (not overlap) || nodes <= 1 then
    compute +. comm_time cluster.Machines.net w ~nodes ~n_local
  else begin
    let frac = boundary_fraction w ~n_local in
    let core = compute *. (1.0 -. frac) and boundary = compute *. frac in
    Model.overlapped_time
      ~comm:(halo_time cluster.Machines.net w ~nodes ~n_local)
      ~core ~boundary
    +. reduction_time cluster.Machines.net w ~nodes
  end

type scaling_point = { nodes : int; seconds : float; efficiency : float }

let strong_scaling ?(overlap = false) cluster style w ~global_elements ~node_counts
    ~steps =
  let base_nodes = List.hd node_counts in
  let base =
    step_time ~overlap cluster style w ~nodes:base_nodes ~global_elements
    *. Float.of_int steps
  in
  List.map
    (fun nodes ->
      let seconds =
        step_time ~overlap cluster style w ~nodes ~global_elements
        *. Float.of_int steps
      in
      let ideal = base *. Float.of_int base_nodes /. Float.of_int nodes in
      { nodes; seconds; efficiency = ideal /. seconds })
    node_counts

let weak_scaling ?(overlap = false) cluster style w ~elements_per_node ~node_counts
    ~steps =
  let base_nodes = List.hd node_counts in
  let base =
    step_time ~overlap cluster style w ~nodes:base_nodes
      ~global_elements:(elements_per_node * base_nodes)
    *. Float.of_int steps
  in
  List.map
    (fun nodes ->
      let seconds =
        step_time ~overlap cluster style w ~nodes
          ~global_elements:(elements_per_node * nodes)
        *. Float.of_int steps
      in
      { nodes; seconds; efficiency = base /. seconds })
    node_counts
