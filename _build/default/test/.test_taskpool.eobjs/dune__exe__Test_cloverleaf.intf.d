test/test_cloverleaf.mli:
