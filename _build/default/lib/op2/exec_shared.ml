(* Shared-memory ("OpenMP") backend on the domain pool.

   Conflict-free loops are chunked dynamically across the pool.  Loops with
   indirect writes execute the plan's block schedule: colours run one after
   another (a barrier between colours), blocks of the same colour run
   concurrently — exactly the OpenMP execution strategy of the paper. *)

module Coloring = Am_mesh.Coloring

let run ?resolvers pool plan ~set_size ~args ~kernel =
  let compiled = Exec_common.compile ?resolvers args in
  let merge_mutex = Mutex.create () in
  let merge buffers =
    Mutex.lock merge_mutex;
    Exec_common.merge_globals compiled buffers;
    Mutex.unlock merge_mutex
  in
  if not (Plan.has_conflicts plan) then
    Am_taskpool.Pool.parallel_for pool ~lo:0 ~hi:set_size (fun lo hi ->
        let buffers = Exec_common.make_buffers compiled in
        for e = lo to hi - 1 do
          Exec_common.run_element compiled buffers kernel e
        done;
        merge buffers)
  else begin
    let blocks = plan.Plan.blocks in
    Array.iter
      (fun same_color_blocks ->
        Am_taskpool.Pool.parallel_iter_indices pool same_color_blocks (fun block ->
            let lo, hi = Coloring.block_range blocks block in
            let buffers = Exec_common.make_buffers compiled in
            for e = lo to hi - 1 do
              Exec_common.run_element compiled buffers kernel e
            done;
            merge buffers))
      plan.Plan.block_coloring.Coloring.by_color
  end
