lib/ops/types3.ml: Am_core Array Hashtbl List Printf
