(* Reflective ghost-cell boundary conditions in 1D (the 1D update_halo):
   same contract as {!Boundary}/{!Boundary3} with two ends, centre-aware
   mirroring and a sign flip for wall-normal components. *)

open Types1

type centering = Cell | Node

let mirror_low centering k = match centering with Cell -> k - 1 | Node -> k
let mirror_high centering size k =
  match centering with Cell -> size - k | Node -> size - 1 - k

(* [lo, hi) restricts the interior cells handled (rank windows). *)
let apply_via ~get ~set ~(dat : dat) ~depth ~sign ~center ~lo ~hi =
  if depth > dat.halo then invalid_arg "Boundary1.mirror: depth exceeds ghost cells";
  for k = 1 to depth do
    List.iter
      (fun (ghost, src) ->
        if ghost >= lo && ghost < hi then
          for c = 0 to dat.dim - 1 do
            set ghost c (sign *. get src c)
          done)
      [ (-k, mirror_low center k); (dat.xsize - 1 + k, mirror_high center dat.xsize k) ]
  done

let mirror ?(depth = 2) ?(sign = 1.0) ?(center = Cell) dat =
  apply_via
    ~get:(fun x c -> get dat ~x ~c)
    ~set:(fun x c v -> set dat ~x ~c v)
    ~dat ~depth ~sign ~center ~lo:(-dat.halo) ~hi:(dat.xsize + dat.halo)
