bin/checkpoint_demo.mli:
