lib/op2/exec_seq.ml: Exec_common
