lib/simmpi/halo.ml: Array Comm Printf
