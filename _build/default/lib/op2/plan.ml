(* Run-time execution plans.

   Any loop with indirect increments or writes has potential data races under
   shared-memory execution.  Following the paper (Section II.B), the plan
   breaks the iteration set into blocks and colours at two levels:

   - blocks are coloured so same-colour blocks touch disjoint indirect
     elements (they can be run by different OpenMP threads / CUDA thread
     blocks);
   - elements are coloured so the GPU backend can order its scatters within
     a block.

   Plans depend only on the mesh connectivity, so they are built once per
   (loop, argument signature) and cached — [signature] is the cache key. *)

module Access = Am_core.Access
open Types

type t = {
  blocks : Am_mesh.Coloring.blocks;
  block_coloring : Am_mesh.Coloring.t;
  elem_coloring : Am_mesh.Coloring.t option; (* None when the loop is conflict-free *)
  n_conflict_targets : int;
}

let has_conflicts t = t.elem_coloring <> None

(* Indirect arguments whose access can race: Inc always, Write/Rw because two
   iteration elements may map to the same target. *)
let conflict_args args =
  List.filter_map
    (function
      | Arg_dat { dat; map = Some (m, k); access } when Access.writes access ->
        Some (dat, m, k)
      | Arg_dat _ | Arg_gbl _ -> None)
    args

(* Distinct target dats get disjoint address arenas so that conflicts on
   different datasets are kept separate. [n_elems_of] resolves the element
   count — rank-local in distributed contexts. *)
let build_arena ~n_elems_of conflicts =
  let offsets = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun (dat, _, _) ->
      if not (Hashtbl.mem offsets dat.dat_id) then begin
        Hashtbl.add offsets dat.dat_id !total;
        total := !total + n_elems_of dat
      end)
    conflicts;
  (offsets, !total)

let signature ~name ~iter_set ~block_size args =
  let arg_sig = function
    | Arg_dat { dat; map = None; access } ->
      Printf.sprintf "d%d:%s" dat.dat_id (Access.to_string access)
    | Arg_dat { dat; map = Some (m, k); access } ->
      Printf.sprintf "d%d@m%d.%d:%s" dat.dat_id m.map_id k (Access.to_string access)
    | Arg_gbl { buf; access; _ } ->
      Printf.sprintf "g%d:%s" (Array.length buf) (Access.to_string access)
  in
  Printf.sprintf "%s/s%d/b%d/%s" name iter_set.set_id block_size
    (String.concat "," (List.map arg_sig args))

(* [build ~set_size ~block_size args] plans over [0, set_size) with the
   global map tables; [?resolvers] substitutes rank-local data and map
   tables so the distributed backend can plan each rank's owned range. *)
let build ?resolvers ~set_size ~block_size args =
  let resolve_dat, resolve_map =
    match resolvers with
    | None -> ((fun d -> dat_n_elems d), fun (m : map_t) -> m.values)
    | Some r ->
      ( (fun d -> snd (r.Exec_common.resolve_dat d)),
        fun m -> r.Exec_common.resolve_map m )
  in
  let n = set_size in
  let blocks = Am_mesh.Coloring.make_blocks ~n_items:n ~block_size in
  let conflicts = conflict_args args in
  if conflicts = [] then
    {
      blocks;
      block_coloring =
        (* All blocks share colour 0: they are mutually independent. *)
        {
          Am_mesh.Coloring.colors = Array.make blocks.Am_mesh.Coloring.n_blocks 0;
          n_colors = (if blocks.Am_mesh.Coloring.n_blocks > 0 then 1 else 0);
          by_color =
            (if blocks.Am_mesh.Coloring.n_blocks > 0 then
               [| Array.init blocks.Am_mesh.Coloring.n_blocks Fun.id |]
             else [||]);
        };
      elem_coloring = None;
      n_conflict_targets = 0;
    }
  else begin
    let offsets, n_targets = build_arena ~n_elems_of:resolve_dat conflicts in
    let targets e f =
      List.iter
        (fun (dat, m, k) ->
          let base = Hashtbl.find offsets dat.dat_id in
          f (base + (resolve_map m).((e * m.arity) + k)))
        conflicts
    in
    let block_coloring = Am_mesh.Coloring.color_blocks ~blocks ~n_targets ~targets in
    let elem_coloring = Am_mesh.Coloring.color ~n_items:n ~n_targets ~targets in
    { blocks; block_coloring; elem_coloring = Some elem_coloring;
      n_conflict_targets = n_targets }
  end

(* Plan cache keyed by [signature]. *)
type cache = (string, t) Hashtbl.t

let make_cache () : cache = Hashtbl.create 32

let find_or_build cache ~name ~iter_set ~block_size args =
  let key = signature ~name ~iter_set ~block_size args in
  match Hashtbl.find_opt cache key with
  | Some plan -> plan
  | None ->
    let plan = build ~set_size:iter_set.set_size ~block_size args in
    Hashtbl.add cache key plan;
    plan
