lib/mesh/partition.ml: Array Csr Float Fun Hashtbl Queue
