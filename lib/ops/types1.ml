(* 1D structured-mesh types.

   OPS blocks carry "a number of dimensions (1D, 2D, 3D, etc.)"; this is
   the 1D instantiation of the same abstraction as [Types]: datasets with
   their own extent and ghost cells, stencils of dx offsets, parallel
   loops over intervals, centre-only writes.  Kept as a separate module
   family (types1/exec1/dist1) like the 3D one, so each dimension's hot
   path stays monomorphic. *)

module Access = Am_core.Access

type block = { block_id : int; block_name : string }

type dat = {
  dat_id : int;
  dat_name : string;
  dat_block : block;
  xsize : int;
  halo : int; (* ghost cells on both ends *)
  dim : int;
  mutable data : float array; (* padded *)
}

type stencil = int array

let stencil_point : stencil = [| 0 |]

(* 3-point Laplacian stencil: centre, -x, +x. *)
let stencil_3pt : stencil = [| 0; -1; 1 |]

let stencil_extent (s : stencil) = Array.fold_left (fun acc dx -> max acc (abs dx)) 0 s
let is_center_only (s : stencil) = s = stencil_point

type arg =
  | Arg_dat of { dat : dat; stencil : stencil; access : Access.t }
  | Arg_gbl of { name : string; buf : float array; access : Access.t }
  | Arg_idx (* kernel receives x as a float *)

type range = { xlo : int; xhi : int }

let range_size r = max 0 (r.xhi - r.xlo)
let range_to_string r = Printf.sprintf "[%d,%d)" r.xlo r.xhi

type env = {
  mutable blocks : block list;
  mutable dats : dat list;
  mutable next_id : int;
}

let make_env () = { blocks = []; dats = []; next_id = 0 }

let fresh_id env =
  let id = env.next_id in
  env.next_id <- id + 1;
  id

let decl_block env ~name =
  let b = { block_id = fresh_id env; block_name = name } in
  env.blocks <- b :: env.blocks;
  b

let decl_dat env ~name ~block ~xsize ?(halo = 2) ?(dim = 1) () =
  if xsize <= 0 then invalid_arg "decl_dat1: extent must be positive";
  if halo < 0 then invalid_arg "decl_dat1: negative halo";
  if dim <= 0 then invalid_arg "decl_dat1: dim must be positive";
  let d =
    { dat_id = fresh_id env; dat_name = name; dat_block = block; xsize; halo; dim;
      data = Array.make ((xsize + (2 * halo)) * dim) 0.0 }
  in
  env.dats <- d :: env.dats;
  d

let blocks env = List.rev env.blocks
let dats env = List.rev env.dats

let index dat ~x ~c = ((x + dat.halo) * dat.dim) + c
let get dat ~x ~c = dat.data.(index dat ~x ~c)
let set dat ~x ~c v = dat.data.(index dat ~x ~c) <- v

let x_min dat = -dat.halo
let x_max dat = dat.xsize + dat.halo
let interior dat = { xlo = 0; xhi = dat.xsize }

let fetch_interior dat =
  Array.sub dat.data (dat.halo * dat.dim) (dat.xsize * dat.dim)

(* Same validation discipline as 2D/3D: stencils within the ghost cells
   over the whole range, centre-only writes, no loop-carried dependences. *)
let validate_args ~block ~range args =
  let written = Hashtbl.create 4 in
  List.iter
    (function
      | Arg_dat { dat; access; _ } when Access.writes access ->
        Hashtbl.replace written dat.dat_id ()
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args;
  List.iteri
    (fun i arg ->
      let fail msg = invalid_arg (Printf.sprintf "ops1 par_loop arg %d: %s" i msg) in
      match arg with
      | Arg_idx -> ()
      | Arg_gbl { access; name; buf } ->
        if not (Access.valid_on_gbl access) then
          fail (Printf.sprintf "global %s: access %s not valid on globals" name
                  (Access.to_string access));
        if Array.length buf = 0 then fail (Printf.sprintf "global %s: empty buffer" name)
      | Arg_dat { dat; stencil; access } ->
        if not (Access.valid_on_dat access) then
          fail (Printf.sprintf "dat %s: access %s not valid on datasets" dat.dat_name
                  (Access.to_string access));
        if dat.dat_block.block_id <> block.block_id then
          fail (Printf.sprintf "dat %s lives on block %s" dat.dat_name
                  dat.dat_block.block_name);
        if Array.length stencil = 0 then fail "empty stencil";
        if Access.writes access && not (is_center_only stencil) then
          fail (Printf.sprintf "dat %s: %s access requires the center-only stencil"
                  dat.dat_name (Access.to_string access));
        if Hashtbl.mem written dat.dat_id && not (is_center_only stencil) then
          fail (Printf.sprintf "dat %s: written in this loop but read through an \
                                offset stencil" dat.dat_name);
        Array.iter
          (fun dx ->
            let bad v = v < x_min dat || v >= x_max dat in
            if bad (range.xlo + dx) || bad (range.xhi - 1 + dx) then
              fail (Printf.sprintf "dat %s: stencil offset %d leaves the ghost cells \
                                    over range %s" dat.dat_name dx
                      (range_to_string range)))
          stencil)
    args

let describe ~name ~block ~range ~info args : Am_core.Descr.loop =
  let arg_descr = function
    | Arg_gbl { name; buf; access } ->
      { Am_core.Descr.dat_name = name; dat_id = -1; dim = Array.length buf; access;
        kind = Am_core.Descr.Global }
    | Arg_idx ->
      { Am_core.Descr.dat_name = "idx"; dat_id = -1; dim = 1; access = Access.Read;
        kind = Am_core.Descr.Global }
    | Arg_dat { dat; stencil; access } ->
      {
        Am_core.Descr.dat_name = dat.dat_name;
        dat_id = dat.dat_id;
        dim = dat.dim;
        access;
        kind =
          (if is_center_only stencil then Am_core.Descr.Direct
           else
             Am_core.Descr.Stencil
               { points = Array.length stencil; extent = stencil_extent stencil });
      }
  in
  { Am_core.Descr.loop_name = name; set_name = block.block_name;
    set_size = range_size range; args = List.map arg_descr args; info }
