lib/mesh/csr.ml: Array Float List
