lib/apps_tealeaf/app.ml: Am_core Am_ops Array
