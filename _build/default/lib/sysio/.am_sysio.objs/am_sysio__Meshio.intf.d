lib/sysio/meshio.mli: Am_mesh
