test/test_perfmodel.ml: Alcotest Am_core Am_perfmodel Hashtbl List
