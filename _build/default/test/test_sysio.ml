(* Tests for the binary snapshot format and mesh I/O. *)

module Snapshot = Am_sysio.Snapshot
module Meshio = Am_sysio.Meshio
module Umesh = Am_mesh.Umesh

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("am_test_" ^ name)

let entries =
  [
    ("q", [| 1.0; -2.5; 3.25; Float.pi |]);
    ("empty", [||]);
    ("adt", [| 0.0; 1e-300; 1e300; -0.0 |]);
  ]

let test_roundtrip_memory () =
  let decoded = Snapshot.decode (Snapshot.encode entries) in
  Alcotest.(check int) "entry count" 3 (List.length decoded);
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.(check (array (float 0.0))) "values" v1 v2)
    entries decoded

let test_roundtrip_file () =
  let path = tmp "roundtrip.snap" in
  Snapshot.save path entries;
  let decoded = Snapshot.load path in
  Sys.remove path;
  Alcotest.(check int) "entry count" 3 (List.length decoded);
  let q = List.assoc "q" decoded in
  Alcotest.(check (array (float 0.0))) "exact doubles" (List.assoc "q" entries) q

let test_special_values () =
  let special = [ ("s", [| Float.nan; Float.infinity; Float.neg_infinity |]) ] in
  match Snapshot.decode (Snapshot.encode special) with
  | [ (_, v) ] ->
    Alcotest.(check bool) "nan preserved" true (Float.is_nan v.(0));
    Alcotest.(check (float 0.0)) "inf" Float.infinity v.(1);
    Alcotest.(check (float 0.0)) "-inf" Float.neg_infinity v.(2)
  | _ -> Alcotest.fail "wrong shape"

let test_corrupt_rejected () =
  (match Snapshot.decode "NOTMAGIC" with
  | exception Snapshot.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let good = Snapshot.encode entries in
  let truncated = String.sub good 0 (String.length good - 3) in
  match Snapshot.decode truncated with
  | exception Snapshot.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncation accepted"

let test_compare_files () =
  let pa = tmp "cmp_a.snap" and pb = tmp "cmp_b.snap" in
  Snapshot.save pa [ ("u", [| 1.0; 2.0 |]); ("only_a", [| 0.0 |]) ];
  Snapshot.save pb [ ("u", [| 1.0; 2.0000001 |]); ("only_b", [| 0.0 |]) ];
  let both, only_a, only_b = Snapshot.compare_files pa pb in
  Sys.remove pa;
  Sys.remove pb;
  Alcotest.(check int) "one shared" 1 (List.length both);
  Alcotest.(check bool) "small discrepancy" true (snd (List.hd both) < 1e-6);
  Alcotest.(check (list string)) "only_a" [ "only_a" ] only_a;
  Alcotest.(check (list string)) "only_b" [ "only_b" ] only_b

let test_dump_text () =
  let path = tmp "dump.txt" in
  Snapshot.dump_text path "u" [| 1.5; 2.5 |];
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "# u: 2 values" header

let test_mesh_roundtrip () =
  let m = Umesh.generate_airfoil ~nx:12 ~ny:8 () in
  let path = tmp "mesh.snap" in
  Meshio.save path m;
  let m2 = Meshio.load path in
  Sys.remove path;
  Alcotest.(check int) "cells" m.Umesh.n_cells m2.Umesh.n_cells;
  Alcotest.(check (array int)) "edge_cells" m.Umesh.edge_cells m2.Umesh.edge_cells;
  Alcotest.(check (array (float 0.0))) "coords" m.Umesh.node_coords m2.Umesh.node_coords

let test_mesh_load_validates () =
  let path = tmp "badmesh.snap" in
  (* A "mesh" whose maps point out of range must be rejected on load. *)
  Snapshot.save path
    [
      ("sizes", [| 4.0; 1.0; 1.0; 0.0 |]);
      ("edge_nodes", [| 0.0; 99.0 |]);
      ("edge_cells", [| 0.0; 0.0 |]);
      ("cell_nodes", [| 0.0; 1.0; 2.0; 3.0 |]);
      ("bedge_nodes", [||]);
      ("bedge_cell", [||]);
      ("bedge_bound", [||]);
      ("node_coords", Array.make 8 0.0);
    ];
  (match Meshio.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "invalid mesh accepted");
  Sys.remove path

let () =
  Alcotest.run "sysio"
    [
      ( "snapshot",
        [
          Alcotest.test_case "memory roundtrip" `Quick test_roundtrip_memory;
          Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
          Alcotest.test_case "special values" `Quick test_special_values;
          Alcotest.test_case "corrupt rejected" `Quick test_corrupt_rejected;
          Alcotest.test_case "compare files" `Quick test_compare_files;
          Alcotest.test_case "dump text" `Quick test_dump_text;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "roundtrip" `Quick test_mesh_roundtrip;
          Alcotest.test_case "load validates" `Quick test_mesh_load_validates;
        ] );
    ]
