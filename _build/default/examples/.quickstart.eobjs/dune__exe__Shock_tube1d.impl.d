examples/shock_tube1d.ml: Am_core Am_ops Am_simmpi Array Float Printf
