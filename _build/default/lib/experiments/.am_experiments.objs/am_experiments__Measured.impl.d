lib/experiments/measured.ml: Am_aero Am_airfoil Am_cloverleaf Am_hydra Am_mesh Am_op2 Am_ops Am_taskpool Am_util Domain List Printf Unix
