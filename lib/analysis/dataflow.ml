(* Layer 3: cross-loop dataflow over a recorded loop sequence.

   The trace is one iteration (or a few) of a solver that will run for
   thousands of cycles, so the sequence is analysed *cyclically*: the loop
   after the last is the first again.  Three families of facts fall out:

   - def-use shape: datasets read before any recorded write (usually
     initial/input data — reported as Info so clean apps stay clean),
     datasets written but never observed by any loop (often output data
     fetched by the driver), and values that are overwritten before anyone
     reads them (a dead write: wasted bandwidth or a missing read);

   - a machine-checked halo-exchange schedule for structured traces: a
     dirty-bit simulation over the declared stencils and access modes that
     replays the on-demand policy of the distributed backends and proves
     every ghost-reaching read is preceded by an exchange, while counting
     how many exchanges an eager policy would add redundantly;

   - stencil extent versus ghost depth, when the caller supplies the
     configured depth: a stencil whose Chebyshev radius exceeds the ghost
     shell reads unexchanged memory on every partitioned backend. *)

module Access = Am_core.Access
module Descr = Am_core.Descr

let reads_value (a : Descr.arg) =
  match a.Descr.access with Access.Read | Access.Rw -> true | _ -> false

let writes_value (a : Descr.arg) = Access.writes a.Descr.access

let is_global (a : Descr.arg) = a.Descr.kind = Descr.Global

(* A pure Write that covers (at least) the elements a previous write
   produced: Direct args rewrite the iteration set itself; a centre-only
   stencil rewrites the iteration range. Indirect writes and wider stencils
   cover an unknown subset, so they never count as kills. *)
let is_kill (a : Descr.arg) =
  a.Descr.access = Access.Write
  &&
  match a.Descr.kind with
  | Descr.Direct | Descr.Stencil { extent = 0; _ } -> true
  | Descr.Indirect _ | Descr.Stencil _ | Descr.Global -> false

(* ------------------------------------------------------------------ *)
(* Def-use shape                                                       *)

(* [direct_covers]: whether a Direct write provably covers its dataset.
   True for OP2, where par_loop always iterates the full set; false for
   OPS, where loops iterate sub-ranges the descriptor does not record (two
   equal-sized boundary loops may write disjoint strips), so an apparent
   dead overwrite is only a possibility. *)
let check_defuse ~direct_covers (loops : Descr.loop list) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* read before any recorded write *)
  let written = Hashtbl.create 16 and reported = Hashtbl.create 16 in
  List.iter
    (fun (l : Descr.loop) ->
      List.iter
        (fun (a : Descr.arg) ->
          if
            (not (is_global a))
            && reads_value a
            && (not (Hashtbl.mem written a.Descr.dat_name))
            && not (Hashtbl.mem reported a.Descr.dat_name)
          then begin
            Hashtbl.add reported a.Descr.dat_name ();
            add
              (Finding.make ~layer:Finding.Dataflow ~severity:Finding.Info
                 ~loop:l.Descr.loop_name ~subject:a.Descr.dat_name
                 "read before any recorded write — initial or input data \
                  (must be populated before the loop sequence runs)")
          end)
        l.Descr.args;
      List.iter
        (fun (a : Descr.arg) ->
          if (not (is_global a)) && writes_value a then
            Hashtbl.replace written a.Descr.dat_name ())
        l.Descr.args)
    loops;
  (* written but never observed by any loop *)
  let observed = Hashtbl.create 16 in
  List.iter
    (fun (l : Descr.loop) ->
      List.iter
        (fun (a : Descr.arg) ->
          if (not (is_global a)) && reads_value a then
            Hashtbl.replace observed a.Descr.dat_name ())
        l.Descr.args)
    loops;
  let dead_reported = Hashtbl.create 16 in
  List.iter
    (fun (l : Descr.loop) ->
      List.iter
        (fun (a : Descr.arg) ->
          if
            (not (is_global a))
            && writes_value a
            && (not (Hashtbl.mem observed a.Descr.dat_name))
            && not (Hashtbl.mem dead_reported a.Descr.dat_name)
          then begin
            Hashtbl.add dead_reported a.Descr.dat_name ();
            add
              (Finding.make ~layer:Finding.Dataflow ~severity:Finding.Info
                 ~loop:l.Descr.loop_name ~subject:a.Descr.dat_name
                 "written but never read by any recorded loop — output data, \
                  or a write that could be elided")
          end)
        l.Descr.args)
    loops;
  (* dead write: a kill whose value is killed again (cyclically) before any
     loop observes it. Both writes must be covering kills of at least the
     same extent, otherwise coverage is unknown and we stay silent. *)
  let loops_a = Array.of_list loops in
  let n = Array.length loops_a in
  let touches dat (l : Descr.loop) =
    List.filter (fun (a : Descr.arg) -> (not (is_global a)) && a.Descr.dat_name = dat)
      l.Descr.args
  in
  for i = 0 to n - 1 do
    let l = loops_a.(i) in
    List.iter
      (fun (a : Descr.arg) ->
        if (not (is_global a)) && is_kill a then begin
          let dat = a.Descr.dat_name in
          (* scan forward cyclically for the next loop touching [dat] *)
          let rec next k steps =
            if steps >= n then None
            else
              let j = (i + k) mod n in
              match touches dat loops_a.(j) with
              | [] -> next (k + 1) (steps + 1)
              | args -> Some (j, args)
          in
          match next 1 1 with
          | Some (j, args)
            when (not (List.exists reads_value args))
                 && List.exists
                      (fun (b : Descr.arg) ->
                        is_kill b && loops_a.(j).Descr.set_size >= l.Descr.set_size)
                      args ->
            let severity, qualifier =
              if direct_covers then (Finding.Warning, "dead write: the value")
              else
                ( Finding.Info,
                  "possible dead write (iteration ranges are not recorded, so \
                   the two writes may cover different sub-ranges): the value" )
            in
            add
              (Finding.make ~layer:Finding.Dataflow ~severity
                 ~loop:l.Descr.loop_name ~subject:dat
                 (Printf.sprintf
                    "%s written here is overwritten by loop %s before any loop \
                     reads it"
                    qualifier loops_a.(j).Descr.loop_name))
          | _ -> ()
        end)
      l.Descr.args
  done;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Dirty-bit halo simulation                                           *)

type exchange_kind =
  | Needed  (** halo is stale at this read: on-demand policy must exchange *)
  | Redundant
      (** halo still valid: only an eager per-read policy would exchange *)

type exchange = {
  ex_loop : string;  (** the loop whose stencil read triggers the decision *)
  ex_dat : string;
  ex_kind : exchange_kind;
}

(* Replay the on-demand dirty-bit policy of the distributed OPS backends
   over the trace, treated cyclically: a write dirties a dataset's halo; a
   ghost-reaching stencil read of a dirty dataset forces an exchange and
   cleans it. Two passes reach the steady state (pass one settles the
   initial all-dirty flags); the schedule of the second pass is returned.
   By construction every ghost-reaching read in the steady-state cycle is
   preceded by an exchange — the schedule is the witness.

   [inferred] carries kernel-footprint evidence (see {!Am_core.Probe}):
   per loop name, the per-argument Chebyshev radius the kernel was
   *observed* to read (-1 = no information).  An observed radius of 0 on a
   positive-radius stencil means only declared-but-unread points reach the
   ghost shell; the runtime drops that exchange, so the replay skips it too
   and reports it as a [Redundant] over-declaration finding (second return
   value). *)
let halo_schedule ?(inferred = []) (loops : Descr.loop list) =
  let ext_tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, exts) ->
      match Hashtbl.find_opt ext_tbl name with
      | None -> Hashtbl.add ext_tbl name (Array.copy exts)
      | Some prev ->
        (* several signatures under one loop name: a radius may tighten
           only when every variant proves it, so the no-information
           sentinel (-1) is absorbing — max would let one clean variant
           tighten past another variant's unproven footprint — and a
           mismatched argument count discards the whole entry *)
        if Array.length prev <> Array.length exts then
          Hashtbl.replace ext_tbl name [||]
        else
          Array.iteri
            (fun i e ->
              prev.(i) <- (if e < 0 || prev.(i) < 0 then -1 else max e prev.(i)))
            exts)
    inferred;
  let observed l i =
    match Hashtbl.find_opt ext_tbl l with
    | Some e when i < Array.length e -> e.(i)
    | Some _ | None -> -1
  in
  let dirty = Hashtbl.create 16 in
  let is_dirty d = match Hashtbl.find_opt dirty d with Some b -> b | None -> true in
  let schedule = ref [] in
  let over = ref [] in
  for pass = 0 to 1 do
    List.iter
      (fun (l : Descr.loop) ->
        (* reads (gathers) happen before writes (scatters) within a loop *)
        List.iteri
          (fun i (a : Descr.arg) ->
            match a.Descr.kind with
            | Descr.Stencil { extent; points } when extent > 0 && reads_value a ->
              if observed l.Descr.loop_name i = 0 then begin
                (* centre-only in every probe: the exchange this read would
                   force exists only because of the over-declared points *)
                if pass = 1 && is_dirty a.Descr.dat_name then
                  over :=
                    Finding.make ~layer:Finding.Dataflow ~severity:Finding.Warning
                      ~loop:l.Descr.loop_name ~arg:i ~subject:a.Descr.dat_name
                      (Printf.sprintf
                         "redundant halo exchange: of the %d-point radius-%d \
                          stencil only declared-but-unread points reach the \
                          ghost shell (the kernel was observed reading the \
                          centre alone) — tightening the descriptor removes \
                          this exchange from the schedule"
                         points extent)
                    :: !over
              end
              else begin
                let kind = if is_dirty a.Descr.dat_name then Needed else Redundant in
                if kind = Needed then Hashtbl.replace dirty a.Descr.dat_name false;
                if pass = 1 then
                  schedule :=
                    { ex_loop = l.Descr.loop_name; ex_dat = a.Descr.dat_name;
                      ex_kind = kind }
                    :: !schedule
              end
            | _ -> ())
          l.Descr.args;
        List.iter
          (fun (a : Descr.arg) ->
            if (not (is_global a)) && writes_value a then
              Hashtbl.replace dirty a.Descr.dat_name true)
          l.Descr.args)
      loops
  done;
  (List.rev !schedule, List.rev !over)

let schedule_findings schedule =
  (* one Info per dataset summarising its steady-state exchange pattern *)
  let dats = ref [] in
  List.iter
    (fun ex -> if not (List.mem ex.ex_dat !dats) then dats := ex.ex_dat :: !dats)
    schedule;
  List.rev_map
    (fun dat ->
      let mine = List.filter (fun ex -> ex.ex_dat = dat) schedule in
      let needed = List.filter (fun ex -> ex.ex_kind = Needed) mine in
      let loops_of exs =
        String.concat ", " (List.map (fun ex -> ex.ex_loop) exs)
      in
      let msg =
        if needed = [] then
          Printf.sprintf
            "halo schedule: no exchange needed per cycle — every \
             ghost-reaching read (%s) sees a halo still valid from the \
             previous cycle; an eager policy would issue %d redundant \
             exchange(s)"
            (loops_of mine) (List.length mine)
        else
          Printf.sprintf
            "halo schedule: %d exchange(s) needed per cycle (before %s); \
             every ghost-reaching read is preceded by an exchange; an eager \
             per-read policy would issue %d (%d redundant)"
            (List.length needed) (loops_of needed) (List.length mine)
            (List.length mine - List.length needed)
      in
      Finding.make ~layer:Finding.Dataflow ~severity:Finding.Info ~subject:dat msg)
    !dats

(* ------------------------------------------------------------------ *)
(* Stencil extent versus ghost depth                                   *)

let check_ghost_depth ~ghost_depth (loops : Descr.loop list) =
  List.concat_map
    (fun (l : Descr.loop) ->
      List.concat
        (List.mapi
           (fun i (a : Descr.arg) ->
             match a.Descr.kind with
             | Descr.Stencil { extent; points } when extent > ghost_depth ->
               [
                 Finding.make ~layer:Finding.Dataflow ~severity:Finding.Error
                   ~loop:l.Descr.loop_name ~arg:i ~subject:a.Descr.dat_name
                   (Printf.sprintf
                      "stencil (%d points, radius %d) reaches past the \
                       %d-deep ghost shell — partitioned backends would read \
                       unexchanged memory"
                      points extent ghost_depth);
               ]
             | _ -> [])
           l.Descr.args))
    loops

(* ------------------------------------------------------------------ *)

type result = { findings : Finding.t list; schedule : exchange list }

let analyze ?(direct_covers = true) ?ghost_depth ?(inferred = [])
    (loops : Descr.loop list) =
  let defuse = check_defuse ~direct_covers loops in
  let schedule, over = halo_schedule ~inferred loops in
  let halo = schedule_findings schedule in
  let depth =
    match ghost_depth with
    | None -> []
    | Some d -> check_ghost_depth ~ghost_depth:d loops
  in
  { findings = depth @ defuse @ over @ halo; schedule }
