(** Seeded, schedule-driven fault injector for the simulated communicator.

    A fault specification gives per-message probabilities (drop, duplicate,
    delay, single-bit payload corruption) and an optional armed rank crash
    at a chosen parallel-loop counter.  Attach an injector to a
    communicator with {!Comm.attach_fault} and every staged message passes
    through it; the OP2/OPS facades consult {!note_loop} once per parallel
    loop for the crash trigger.

    All decisions come from one splitmix64 stream in a fixed per-message
    order, so a (seed, program) pair replays the identical fault schedule.
    An injector survives recovery restarts (the stream keeps advancing; the
    crash trigger fires at most once), while all per-channel transport
    state lives in the communicator and is rebuilt fresh. *)

type spec = {
  seed : int;
  drop : float;  (** per-message loss probability *)
  dup : float;  (** per-message duplication probability *)
  delay : float;  (** per-message delay probability *)
  max_delay : int;  (** delays are uniform in [1..max_delay] deliver-steps *)
  corrupt : float;  (** per-message single-bit-flip probability *)
  crash : (int * int) option;  (** (rank, loop counter) to crash at *)
}

(** No faults, seed 1. *)
val default : spec

(** Parse "seed=42,drop=0.1,dup=0.05,delay=0.1,corrupt=0.02,crash=1\@12";
    omitted keys keep their {!default}. *)
val spec_of_string : string -> (spec, string) result

val spec_to_string : spec -> string

(** Raised by {!note_loop} when the armed crash fires (at most once per
    injector). *)
exception Crashed of { rank : int; loop : int }

(** Raised by the communicator when a message cannot be recovered (retries
    exhausted, or nothing in flight and no retransmit source). *)
exception Unrecoverable of string

type t

val create : spec -> t
val spec : t -> spec

(** Parallel loops entered since creation (across restarts). *)
val loops_seen : t -> int

(** True while the crash trigger has not yet fired. *)
val crash_armed : t -> bool

(** Per-message fate, drawn from the stream. *)
type verdict = Deliver | Drop | Duplicate | Delay of int

val classify : t -> verdict

(** Single-bit-flipped copy of the message when the corruption roll hits;
    [None] otherwise. *)
val corrupted : t -> float array -> float array option

(** Count one parallel loop; raises {!Crashed} when the armed crash's loop
    counter is reached. *)
val note_loop : t -> unit
