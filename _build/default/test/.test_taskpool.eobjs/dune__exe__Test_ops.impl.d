test/test_ops.ml: Alcotest Am_core Am_ops Am_simmpi Am_taskpool Am_util Array Float Lazy List Option Printf QCheck QCheck_alcotest
