test/test_simmpi.ml: Alcotest Am_simmpi Array Float
