examples/unstructured_advection.mli:
