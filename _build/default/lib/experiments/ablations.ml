(* Ablations of the design choices DESIGN.md calls out.

   Each ablation isolates one mechanism of the library and shows its effect
   with real executions (plan statistics, recorded traffic, wall-clock) and,
   where relevant, the analytic device model. *)

module Table = Am_util.Table
module Units = Am_util.Units
module Op2 = Am_op2.Op2
module Ops = Am_ops.Ops
module Umesh = Am_mesh.Umesh
module Csr = Am_mesh.Csr
module Partition = Am_mesh.Partition

let time_best = Measured.time_best

(* ---- Block size vs colour count (shared-memory plans) ------------------ *)

let block_size_sweep ?(nx = 120) ?(ny = 80) ?(iters = 5) () =
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let table =
    Table.create
      ~title:"ablation: plan block size (Airfoil res_calc-class loops, shared backend)"
      ~header:[ "block size"; "block colours"; "seconds" ]
      ~aligns:[ Table.Right; Right; Right ]
      ()
  in
  List.iter
    (fun block_size ->
      (* Colour count of the res_calc plan at this block size. *)
      let t = Am_airfoil.App.create mesh in
      let args =
        [
          Op2.arg_dat_indirect t.Am_airfoil.App.res t.Am_airfoil.App.edge_cells 0
            Am_core.Access.Inc;
          Op2.arg_dat_indirect t.Am_airfoil.App.res t.Am_airfoil.App.edge_cells 1
            Am_core.Access.Inc;
        ]
      in
      let plan =
        Am_op2.Plan.build ~set_size:t.Am_airfoil.App.edges.Am_op2.Types.set_size
          ~block_size args
      in
      let colors = plan.Am_op2.Plan.block_coloring.Am_mesh.Coloring.n_colors in
      let seconds =
        Am_taskpool.Pool.with_pool (fun pool ->
            time_best ~repeats:2 (fun () ->
                let a =
                  Am_airfoil.App.create ~backend:(Op2.Shared { pool; block_size })
                    mesh
                in
                ignore (Am_airfoil.App.run a ~iters)))
      in
      Table.add_row table
        [ string_of_int block_size; string_of_int colors; Units.seconds seconds ])
    [ 16; 64; 256; 1024 ];
  Table.print table;
  print_newline ()

(* ---- Partitioner quality ------------------------------------------------ *)

let partitioner_quality ?(nx = 120) ?(ny = 80) ?(ranks = 8) () =
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let dual = Umesh.cell_dual_graph mesh in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "ablation: partition quality at %d ranks (Airfoil %dx%d) and the \
            communication it causes"
           ranks nx ny)
      ~header:[ "partitioner"; "edge cut"; "imbalance"; "measured bytes/iter" ]
      ~aligns:[ Table.Left; Right; Right; Right ]
      ()
  in
  let measure strategy_of =
    let t = Am_airfoil.App.create (Umesh.generate_airfoil ~nx ~ny ()) in
    Op2.partition t.Am_airfoil.App.ctx ~n_ranks:ranks ~strategy:(strategy_of t);
    ignore (Am_airfoil.App.iteration t);
    let stats = Option.get (Op2.comm_stats t.Am_airfoil.App.ctx) in
    stats.Am_simmpi.Comm.bytes <- 0;
    ignore (Am_airfoil.App.iteration t);
    stats.Am_simmpi.Comm.bytes
  in
  let row name assignment strategy_of =
    let q = Partition.quality dual ~parts:ranks assignment in
    Table.add_row table
      [
        name;
        string_of_int q.Partition.edge_cut;
        Printf.sprintf "%.1f%%" (100.0 *. q.Partition.imbalance);
        Units.bytes (measure strategy_of);
      ]
  in
  row "naive block" (Partition.block ~n:mesh.Umesh.n_cells ~parts:ranks)
    (fun t -> Op2.Block_on t.Am_airfoil.App.cells);
  row "coordinate RCB"
    (Partition.rcb ~coords:(Umesh.cell_centroids mesh) ~dim:2 ~n:mesh.Umesh.n_cells
       ~parts:ranks)
    (fun t -> Op2.Rcb_on t.Am_airfoil.App.x);
  (* RCB partitions cells by centroid; the runtime strategy uses node
     coordinates, close enough for the comparison. *)
  row "k-way + refinement" (Partition.kway dual ~parts:ranks)
    (fun t -> Op2.Kway_through t.Am_airfoil.App.edge_cells);
  Table.print table;
  print_newline ()

(* ---- Halo-exchange policy (on-demand dirty-bit vs eager) ----------------- *)

(* The paper's runtime exchanges halos on demand, driven by the access
   descriptors: a dataset's halo is refreshed only if a previous loop wrote
   it. This ablation runs the same applications with that tracking disabled
   (exchange before *every* indirect read) and reports the traffic both
   ways — the saving is what the access-execute abstraction knows that a
   bare message-passing runtime does not. *)
let halo_policy ?(ranks = 4) () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "ablation: on-demand (dirty-bit) vs eager halo exchanges at %d ranks, \
            one iteration/step" ranks)
      ~header:
        [ "application"; "eager bytes"; "on-demand bytes"; "saved"; "exchanges e/o" ]
      ~aligns:[ Table.Left; Right; Right; Right; Right ]
      ()
  in
  let measure ~warm make_app run_iter set_policy policy =
    let t = make_app () in
    set_policy t policy;
    (* Steady-state apps are warmed so the measured iteration is
       representative; the Aero row measures its first (and only
       hard-working) Newton iteration, CG included. *)
    if warm then run_iter t;
    let stats = Option.get (Op2.comm_stats (fst t)) in
    stats.Am_simmpi.Comm.bytes <- 0;
    stats.Am_simmpi.Comm.exchanges <- 0;
    run_iter t;
    (stats.Am_simmpi.Comm.bytes, stats.Am_simmpi.Comm.exchanges)
  in
  let row ?(warm = true) name make_app run_iter =
    let set_policy t p = Op2.set_halo_policy (fst t) p in
    let eager_bytes, eager_ex = measure ~warm make_app run_iter set_policy Op2.Eager in
    let od_bytes, od_ex = measure ~warm make_app run_iter set_policy Op2.On_demand in
    Table.add_row table
      [
        name;
        Units.bytes eager_bytes;
        Units.bytes od_bytes;
        Printf.sprintf "%.0f%%"
          (100.0 *. (1.0 -. (Float.of_int od_bytes /. Float.of_int eager_bytes)));
        Printf.sprintf "%d/%d" eager_ex od_ex;
      ]
  in
  row "Airfoil 96x64"
    (fun () ->
      let t = Am_airfoil.App.create (Umesh.generate_airfoil ~nx:96 ~ny:64 ()) in
      Op2.partition t.Am_airfoil.App.ctx ~n_ranks:ranks
        ~strategy:(Op2.Kway_through t.Am_airfoil.App.edge_cells);
      (t.Am_airfoil.App.ctx, `Airfoil t))
    (fun (_, app) -> match app with `Airfoil t -> ignore (Am_airfoil.App.iteration t));
  row "Hydra-sim 48x32"
    (fun () ->
      let t = Am_hydra.App.create ~nx:48 ~ny:32 () in
      Op2.partition t.Am_hydra.App.ctx ~n_ranks:ranks
        ~strategy:(Op2.Kway_through t.Am_hydra.App.edge_cells);
      (t.Am_hydra.App.ctx, `Hydra t))
    (fun (_, app) -> match app with `Hydra t -> ignore (Am_hydra.App.iteration t));
  row ~warm:false "Aero 32x32 (assembly + full CG solve)"
    (fun () ->
      let t = Am_aero.App.create (Am_aero.App.generate_mesh ~n:32) in
      Op2.partition t.Am_aero.App.ctx ~n_ranks:ranks
        ~strategy:(Op2.Rcb_on t.Am_aero.App.x);
      (t.Am_aero.App.ctx, `Aero t))
    (fun (_, app) -> match app with `Aero t -> ignore (Am_aero.App.iteration t));
  (* OPS has the same dirty-bit machinery over ghost rows. *)
  let clover_measure policy =
    let t = Am_cloverleaf.App.create ~nx:48 ~ny:48 () in
    Ops.partition t.Am_cloverleaf.App.ctx ~n_ranks:ranks ~ref_ysize:48;
    Ops.set_halo_policy t.Am_cloverleaf.App.ctx policy;
    ignore (Am_cloverleaf.App.hydro_step t);
    let stats = Option.get (Ops.comm_stats t.Am_cloverleaf.App.ctx) in
    stats.Am_simmpi.Comm.bytes <- 0;
    stats.Am_simmpi.Comm.exchanges <- 0;
    ignore (Am_cloverleaf.App.hydro_step t);
    (stats.Am_simmpi.Comm.bytes, stats.Am_simmpi.Comm.exchanges)
  in
  let eager_bytes, eager_ex = clover_measure Ops.Eager in
  let od_bytes, od_ex = clover_measure Ops.On_demand in
  Table.add_row table
    [
      "CloverLeaf 48x48 (OPS)";
      Units.bytes eager_bytes;
      Units.bytes od_bytes;
      Printf.sprintf "%.0f%%"
        (100.0 *. (1.0 -. (Float.of_int od_bytes /. Float.of_int eager_bytes)));
      Printf.sprintf "%d/%d" eager_ex od_ex;
    ];
  Table.print table;
  print_newline ()

(* ---- Decomposition shape (1D rows vs 2D grid) ----------------------------- *)

(* The production OPS decomposes structured blocks in every dimension; at
   scale the 2D grid wins on the surface-to-volume ratio (each rank's halo
   shrinks as its subdomain gets squarer), which is part of why CloverLeaf
   strong-scales on Titan.  Measured here with real exchanges on the rank
   simulator: same application, same rank count, different shape. *)
let decomposition_shape ?(nx = 96) ?(ny = 96) () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "ablation: decomposition shape for CloverLeaf %dx%d — measured bytes per \
            hydro step" nx ny)
      ~header:[ "ranks"; "1D rows"; "2D grid"; "grid saves" ]
      ~aligns:[ Table.Right; Right; Right; Right ]
      ()
  in
  let measure partition_fn =
    let t = Am_cloverleaf.App.create ~nx ~ny () in
    partition_fn t.Am_cloverleaf.App.ctx;
    ignore (Am_cloverleaf.App.hydro_step t);
    let stats = Option.get (Ops.comm_stats t.Am_cloverleaf.App.ctx) in
    stats.Am_simmpi.Comm.bytes <- 0;
    ignore (Am_cloverleaf.App.hydro_step t);
    stats.Am_simmpi.Comm.bytes
  in
  List.iter
    (fun (ranks, px, py) ->
      let rows = measure (fun ctx -> Ops.partition ctx ~n_ranks:ranks ~ref_ysize:ny) in
      let grid =
        measure (fun ctx -> Ops.partition_grid ctx ~px ~py ~ref_xsize:nx ~ref_ysize:ny)
      in
      Table.add_row table
        [
          Printf.sprintf "%d (=%dx%d)" ranks px py;
          Units.bytes rows;
          Units.bytes grid;
          Printf.sprintf "%.0f%%"
            (100.0 *. (1.0 -. (Float.of_int grid /. Float.of_int rows)));
        ])
    [ (4, 2, 2); (9, 3, 3); (16, 4, 4) ];
  Table.print table;
  print_newline ()

(* ---- GPU memory strategies (Fig 7's three code paths) ------------------- *)

let gpu_strategies ?(nx = 120) ?(ny = 80) ?(iters = 5) () =
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let table =
    Table.create
      ~title:"ablation: GPU-simulator memory strategies (Fig 7), Airfoil"
      ~header:[ "strategy"; "measured (host, s)"; "modelled K40 (s/1000 iters)" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  (* Modelled effect: NOSOA loses coalescing on direct args (treat direct
     traffic as gathered); SOA and STAGE recover it — the reason OP2
     auto-converts to SoA. *)
  let traced = Calibrate.trace_airfoil () in
  let step = Calibrate.scaled_iteration traced ~cells:Calibrate.airfoil_paper_cells in
  let model_time strategy =
    let dev = Am_perfmodel.Machines.nvidia_k40 in
    let style = Am_perfmodel.Model.default_style in
    let base = Am_perfmodel.Model.sequence_time dev style step *. 1000.0 in
    match strategy with
    | Am_op2.Exec_cuda.Global_aos -> base *. 1.45 (* uncoalesced AoS accesses *)
    | Am_op2.Exec_cuda.Global_soa -> base
    | Am_op2.Exec_cuda.Staged -> base *. 0.97 (* shared-memory reuse *)
  in
  List.iter
    (fun strategy ->
      let seconds =
        time_best ~repeats:2 (fun () ->
            let t =
              Am_airfoil.App.create
                ~backend:(Op2.Cuda_sim { Am_op2.Exec_cuda.block_size = 128; strategy })
                mesh
            in
            ignore (Am_airfoil.App.run t ~iters))
      in
      Table.add_row table
        [
          Am_op2.Exec_cuda.strategy_to_string strategy;
          Units.seconds seconds;
          Units.f1 (model_time strategy);
        ])
    [ Am_op2.Exec_cuda.Global_aos; Am_op2.Exec_cuda.Global_soa; Am_op2.Exec_cuda.Staged ];
  Table.print table;
  print_newline ()

(* ---- Checkpoint placement (greedy vs speculative) ------------------------ *)

let checkpoint_placement () =
  let traced = Calibrate.trace_airfoil () in
  let events = Calibrate.iteration_loops traced.Calibrate.profiles in
  let chain = events @ events in
  let table =
    Table.create
      ~title:"ablation: checkpoint placement on the Airfoil loop chain"
      ~header:[ "policy"; "trigger loop"; "units saved" ]
      ~aligns:[ Table.Left; Left; Right ]
      ()
  in
  let name_at i = (List.nth chain i).Am_core.Descr.loop_name in
  let requested = 2 (* a request arriving before res_calc *) in
  let greedy = (Am_checkpoint.Planner.plan_at chain ~trigger:requested).Am_checkpoint.Planner.units in
  Table.add_row table
    [ "greedy (trigger immediately)"; name_at requested; string_of_int greedy ];
  let spec = Am_checkpoint.Planner.speculative_trigger chain ~requested in
  let spec_units = (Am_checkpoint.Planner.plan_at chain ~trigger:spec).Am_checkpoint.Planner.units in
  Table.add_row table
    [ "speculative (wait within period)"; name_at spec; string_of_int spec_units ];
  (* Oracle restricted to the first period: beyond it the recorded horizon
     ends and datasets look (wrongly) dead. *)
  let period = Option.value ~default:9 (Am_checkpoint.Planner.detect_period chain) in
  let best = ref 0 and best_units = ref max_int in
  for i = 0 to period - 1 do
    let u = (Am_checkpoint.Planner.plan_at chain ~trigger:i).Am_checkpoint.Planner.units in
    if u < !best_units then begin best := i; best_units := u end
  done;
  Table.add_row table
    [ "oracle best (within one period)"; name_at !best; string_of_int !best_units ];
  (* Saving everything, for reference. *)
  let all_units =
    List.fold_left
      (fun acc (d : Am_checkpoint.Planner.dataset) -> acc + d.Am_checkpoint.Planner.ds_dim)
      0
      (Am_checkpoint.Planner.datasets chain)
  in
  Table.add_row table [ "save every dataset"; "-"; string_of_int all_units ];
  Table.print table;
  print_newline ()

(* ---- Checkpointing overhead ------------------------------------------------ *)

(* Section VI claims the checkpointing machinery is cheap when idle: the
   per-loop work is one table lookup while no checkpoint is pending.
   Measured here on Airfoil: baseline, enabled-but-idle, and a run that
   actually takes one checkpoint (snapshot costs included). *)
let checkpoint_overhead ?(nx = 96) ?(ny = 64) ?(iters = 20) () =
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "ablation: checkpointing overhead (Airfoil %dx%d, %d iterations)" nx ny
           iters)
      ~header:[ "configuration"; "seconds"; "vs baseline" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let baseline =
    time_best (fun () ->
        let t = Am_airfoil.App.create mesh in
        ignore (Am_airfoil.App.run t ~iters))
  in
  let add name seconds =
    Table.add_row table
      [ name; Units.seconds seconds;
        Printf.sprintf "%+.1f%%" (100.0 *. ((seconds /. baseline) -. 1.0)) ]
  in
  add "no checkpointing" baseline;
  add "enabled, never triggered"
    (time_best (fun () ->
         let t = Am_airfoil.App.create mesh in
         Op2.enable_checkpointing t.Am_airfoil.App.ctx;
         ignore (Am_airfoil.App.run t ~iters)));
  add "one checkpoint taken mid-run"
    (time_best (fun () ->
         let t = Am_airfoil.App.create mesh in
         Op2.enable_checkpointing t.Am_airfoil.App.ctx;
         ignore (Am_airfoil.App.run t ~iters:(iters / 2));
         Op2.request_checkpoint t.Am_airfoil.App.ctx;
         ignore (Am_airfoil.App.run t ~iters:(iters - (iters / 2)))));
  Table.print table;
  print_newline ()

(* ---- Mesh orderings (RCM vs Hilbert) --------------------------------------- *)

let mesh_orderings ?(nx = 300) ?(ny = 200) ?(iters = 3) () =
  let scrambled = Umesh.scramble ~seed:13 (Umesh.generate_airfoil ~nx ~ny ()) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "ablation: mesh ordering on a scrambled Airfoil %dx%d (measured, seq)" nx ny)
      ~header:[ "ordering"; "dual mean index distance"; "seconds" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let run setup =
    let t = Am_airfoil.App.create scrambled in
    setup t;
    let bw =
      Csr.average_bandwidth
        (Am_mesh.Csr.of_map_rows
           ~n_vertices:t.Am_airfoil.App.cells.Am_op2.Types.set_size
           ~n_rows:t.Am_airfoil.App.edges.Am_op2.Types.set_size ~arity:2
           t.Am_airfoil.App.edge_cells.Am_op2.Types.values)
    in
    (bw, time_best ~repeats:2 (fun () -> ignore (Am_airfoil.App.run t ~iters)))
  in
  let row name setup =
    let bw, seconds = run setup in
    Table.add_row table [ name; Printf.sprintf "%.0f" bw; Units.seconds seconds ]
  in
  row "scrambled (production order)" (fun _ -> ());
  row "reverse Cuthill-McKee" (fun t ->
      ignore (Op2.renumber t.Am_airfoil.App.ctx ~through:t.Am_airfoil.App.edge_cells));
  row "Hilbert curve" (fun t ->
      let centroids = Umesh.cell_centroids scrambled in
      let perm =
        Am_mesh.Reorder.hilbert ~coords:centroids ~dim:2
          ~n:scrambled.Umesh.n_cells ()
      in
      Op2.renumber_with t.Am_airfoil.App.ctx ~set:t.Am_airfoil.App.cells ~perm);
  Table.print table;
  print_newline ()

(* ---- Advection scheme (CloverLeaf) ---------------------------------------- *)

let advection_schemes ?(nx = 48) ?(ny = 48) ?(steps = 25) () =
  let table =
    Table.create
      ~title:"ablation: CloverLeaf advection scheme (first-order vs van Leer)"
      ~header:[ "scheme"; "mass drift"; "kinetic energy"; "max interface jump"; "seconds" ]
      ~aligns:[ Table.Left; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (name, advection) ->
      let t0 = Unix.gettimeofday () in
      let t = Am_cloverleaf.App.create ~advection ~nx ~ny () in
      let s0 = Am_cloverleaf.App.field_summary t in
      let s = Am_cloverleaf.App.run t ~steps in
      let seconds = Unix.gettimeofday () -. t0 in
      let d = Am_cloverleaf.App.density t in
      let jump = ref 0.0 in
      for y = 0 to ny - 1 do
        for x = 0 to nx - 2 do
          let j = Float.abs (d.((y * nx) + x + 1) -. d.((y * nx) + x)) in
          if j > !jump then jump := j
        done
      done;
      Table.add_row table
        [
          name;
          Printf.sprintf "%.1e" (Float.abs (s.Am_cloverleaf.App.mass -. s0.Am_cloverleaf.App.mass));
          Printf.sprintf "%.4f" s.Am_cloverleaf.App.ke;
          Printf.sprintf "%.4f" !jump;
          Units.seconds seconds;
        ])
    [
      ("first-order donor cell", Am_cloverleaf.App.First_order);
      ("van Leer limited", Am_cloverleaf.App.Van_leer);
    ];
  Table.print table;
  print_endline "  (the limiter preserves a sharper interface at modest extra flops)\n"

(* ---- Hydra feature ablations --------------------------------------------- *)

let hydra_features ?(nx = 64) ?(ny = 48) ?(iters = 30) () =
  let table =
    Table.create
      ~title:"ablation: Hydra-sim pipeline features (convergence after 30 iterations)"
      ~header:[ "configuration"; "final rms"; "seconds" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  List.iter
    (fun (name, features) ->
      let t0 = Unix.gettimeofday () in
      let t = Am_hydra.App.create ~features ~nx ~ny () in
      let rms = Am_hydra.App.run t ~iters in
      Table.add_row table
        [ name; Printf.sprintf "%.3e" rms; Units.seconds (Unix.gettimeofday () -. t0) ])
    [
      ("full pipeline", Am_hydra.App.all_features);
      ("no multigrid", { Am_hydra.App.all_features with Am_hydra.App.multigrid = false });
      ("no viscous flux", { Am_hydra.App.all_features with Am_hydra.App.viscous = false });
      ( "no turbulence sources",
        { Am_hydra.App.all_features with Am_hydra.App.source_terms = false } );
    ];
  Table.print table;
  print_newline ()

let all () =
  block_size_sweep ();
  partitioner_quality ();
  halo_policy ();
  decomposition_shape ();
  gpu_strategies ();
  checkpoint_placement ();
  checkpoint_overhead ();
  mesh_orderings ();
  advection_schemes ();
  hydra_features ()
