(* Descriptive statistics for benchmark reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Fa.sum xs /. Float.of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) ** 2.0)) xs;
    sqrt (!acc /. Float.of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. Float.of_int (n - 1) in
  let lo = Float.to_int (Float.floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. Float.of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; median = 0.0 }
  else
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      min = Array.fold_left Float.min xs.(0) xs;
      max = Array.fold_left Float.max xs.(0) xs;
      median = median xs;
    }

(* Least-squares fit y = a + b*x; returns (a, b). Used by scaling analyses to
   extract parallel efficiency slopes. *)
let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to n - 1 do
    sxx := !sxx +. ((xs.(i) -. mx) ** 2.0);
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my))
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate x";
  let b = !sxy /. !sxx in
  (my -. (b *. mx), b)

(* Geometric mean of strictly positive values, the conventional aggregate for
   speedup ratios across benchmarks. *)
let geomean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.geomean: empty";
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
      acc := !acc +. log x)
    xs;
  exp (!acc /. Float.of_int n)
