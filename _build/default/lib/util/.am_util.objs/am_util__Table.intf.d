lib/util/table.mli:
