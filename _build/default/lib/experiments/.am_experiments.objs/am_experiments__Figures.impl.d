lib/experiments/figures.ml: Am_checkpoint Am_codegen Am_core Am_perfmodel Am_util Calibrate Float List Printf
