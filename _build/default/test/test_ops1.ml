(* Tests for the 1D structured-mesh library: backend equivalence on a 1D
   heat problem, validation, boundary mirrors, chunk distribution,
   checkpoint recovery and a random-stencil property. *)

module Ops1 = Am_ops.Ops1
module Access = Am_core.Access
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let nx = 40

type mini = { ctx : Ops1.ctx; grid : Ops1.block; u : Ops1.dat; w : Ops1.dat }

let build () =
  let ctx = Ops1.create () in
  let grid = Ops1.decl_block ctx ~name:"grid" in
  let u = Ops1.decl_dat ctx ~name:"u" ~block:grid ~xsize:nx ~halo:2 () in
  let w = Ops1.decl_dat ctx ~name:"w" ~block:grid ~xsize:nx ~halo:2 () in
  Ops1.init ctx u (fun x _ -> sin (0.4 *. Float.of_int x) +. (0.05 *. Float.of_int x));
  { ctx; grid; u; w }

let run m steps =
  let interior = Ops1.interior m.u in
  let total = [| 0.0 |] in
  for _ = 1 to steps do
    Ops1.par_loop m.ctx ~name:"diffuse" m.grid interior
      [
        Ops1.arg_dat m.u Ops1.stencil_3pt Access.Read;
        Ops1.arg_dat m.w Ops1.stencil_point Access.Write;
      ]
      (fun a ->
        let u = a.(0) and w = a.(1) in
        w.(0) <- u.(0) +. (0.2 *. (u.(1) +. u.(2) -. (2.0 *. u.(0)))));
    Array.fill total 0 1 0.0;
    Ops1.par_loop m.ctx ~name:"copy" m.grid interior
      [
        Ops1.arg_dat m.w Ops1.stencil_point Access.Read;
        Ops1.arg_dat m.u Ops1.stencil_point Access.Write;
        Ops1.arg_gbl ~name:"total" total Access.Inc;
      ]
      (fun a ->
        a.(1).(0) <- a.(0).(0);
        a.(2).(0) <- a.(2).(0) +. a.(0).(0))
  done;
  (Ops1.fetch_interior m.ctx m.u, total.(0))

let reference = lazy (run (build ()) 5)

let check name (u, total) =
  let ref_u, ref_total = Lazy.force reference in
  if not (Fa.approx_equal ~tol:0.0 ref_u u) then
    Alcotest.failf "%s: field diverges (%g)" name (Fa.rel_discrepancy ref_u u);
  if Float.abs (total -. ref_total) > 1e-12 then
    Alcotest.failf "%s: reduction diverges" name

let test_shared () =
  Pool.with_pool ~size:4 (fun pool ->
      let m = build () in
      Ops1.set_backend m.ctx (Ops1.Shared { pool });
      check "shared" (run m 5))

let test_cuda_global () =
  let m = build () in
  Ops1.set_backend m.ctx (Ops1.Cuda_sim { Am_ops.Exec1.tile_x = 7; staged = false });
  check "cuda global" (run m 5)

let test_cuda_staged () =
  let m = build () in
  Ops1.set_backend m.ctx (Ops1.Cuda_sim { Am_ops.Exec1.tile_x = 7; staged = true });
  check "cuda staged" (run m 5)

let dist_test n_ranks () =
  let m = build () in
  Ops1.partition m.ctx ~n_ranks ~ref_xsize:nx;
  check (Printf.sprintf "dist(%d)" n_ranks) (run m 5)

let test_hybrid () =
  Pool.with_pool ~size:4 (fun pool ->
      let m = build () in
      Ops1.partition m.ctx ~n_ranks:3 ~ref_xsize:nx;
      Ops1.set_rank_execution m.ctx (Ops1.Rank_shared pool);
      check "dist(3)+shared" (run m 5))

let test_dist_traffic () =
  let m = build () in
  Ops1.partition m.ctx ~n_ranks:4 ~ref_xsize:nx;
  ignore (run m 2);
  match Ops1.comm_stats m.ctx with
  | None -> Alcotest.fail "expected stats"
  | Some s ->
    Alcotest.(check bool) "ghost cells exchanged" true (s.Am_simmpi.Comm.exchanges > 0);
    Alcotest.(check bool) "reductions counted" true (s.Am_simmpi.Comm.reductions > 0)

let test_mirror_halo () =
  let ctx = Ops1.create () in
  let grid = Ops1.decl_block ctx ~name:"grid" in
  let u = Ops1.decl_dat ctx ~name:"u" ~block:grid ~xsize:8 ~halo:2 () in
  Ops1.init ctx u (fun x _ -> Float.of_int x);
  Ops1.mirror_halo ctx ~depth:2 u;
  (* Cell centering: ghost -1 mirrors cell 0, ghost -2 mirrors cell 1. *)
  Alcotest.(check (float 0.0)) "left ghost 1" 0.0 (Ops1.get u ~x:(-1) ~c:0);
  Alcotest.(check (float 0.0)) "left ghost 2" 1.0 (Ops1.get u ~x:(-2) ~c:0);
  Alcotest.(check (float 0.0)) "right ghost 1" 7.0 (Ops1.get u ~x:8 ~c:0);
  Alcotest.(check (float 0.0)) "right ghost 2" 6.0 (Ops1.get u ~x:9 ~c:0);
  (* Sign flip (wall-normal velocity) and node centering. *)
  Ops1.mirror_halo ctx ~depth:1 ~sign:(-1.0) ~center:Ops1.Node u;
  Alcotest.(check (float 0.0)) "node-centred flip" (-1.0) (Ops1.get u ~x:(-1) ~c:0)

let test_mirror_matches_dist () =
  let run partitioned =
    let ctx = Ops1.create () in
    let grid = Ops1.decl_block ctx ~name:"grid" in
    let u = Ops1.decl_dat ctx ~name:"u" ~block:grid ~xsize:24 ~halo:2 () in
    let w = Ops1.decl_dat ctx ~name:"w" ~block:grid ~xsize:24 ~halo:2 () in
    if partitioned then Ops1.partition ctx ~n_ranks:3 ~ref_xsize:24;
    Ops1.init ctx u (fun x _ -> cos (0.7 *. Float.of_int x));
    for _ = 1 to 3 do
      Ops1.mirror_halo ctx ~depth:2 u;
      Ops1.par_loop ctx ~name:"smooth" grid (Ops1.interior u)
        [
          Ops1.arg_dat u Ops1.stencil_3pt Access.Read;
          Ops1.arg_dat w Ops1.stencil_point Access.Write;
        ]
        (fun a -> a.(1).(0) <- (a.(0).(0) +. a.(0).(1) +. a.(0).(2)) /. 3.0);
      Ops1.par_loop ctx ~name:"copy" grid (Ops1.interior u)
        [
          Ops1.arg_dat w Ops1.stencil_point Access.Read;
          Ops1.arg_dat u Ops1.stencil_point Access.Write;
        ]
        (fun a -> a.(1).(0) <- a.(0).(0))
    done;
    Ops1.fetch_interior ctx u
  in
  if not (Fa.approx_equal ~tol:0.0 (run false) (run true)) then
    Alcotest.fail "mirror+dist diverges from serial"

let test_validation () =
  let ctx = Ops1.create () in
  let grid = Ops1.decl_block ctx ~name:"grid" in
  let other = Ops1.decl_block ctx ~name:"other" in
  let u = Ops1.decl_dat ctx ~name:"u" ~block:grid ~xsize:8 ~halo:1 () in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "write through offset stencil" (fun () ->
      Ops1.par_loop ctx ~name:"bad" grid (Ops1.interior u)
        [ Ops1.arg_dat u Ops1.stencil_3pt Access.Write ]
        (fun _ -> ()));
  expect_invalid "stencil escapes ghost cells" (fun () ->
      Ops1.par_loop ctx ~name:"bad" grid (Ops1.interior u)
        [ Ops1.arg_dat u [| 0; 2 |] Access.Read ]
        (fun _ -> ()));
  expect_invalid "wrong block" (fun () ->
      Ops1.par_loop ctx ~name:"bad" other (Ops1.interior u)
        [ Ops1.arg_dat u Ops1.stencil_point Access.Read ]
        (fun _ -> ()));
  expect_invalid "read-write dependence" (fun () ->
      Ops1.par_loop ctx ~name:"bad" grid { Ops1.xlo = 1; xhi = 7 }
        [
          Ops1.arg_dat u [| -1 |] Access.Read;
          Ops1.arg_dat u Ops1.stencil_point Access.Write;
        ]
        (fun _ -> ()))

let test_arg_idx () =
  let ctx = Ops1.create () in
  let grid = Ops1.decl_block ctx ~name:"grid" in
  let u = Ops1.decl_dat ctx ~name:"u" ~block:grid ~xsize:8 () in
  Ops1.par_loop ctx ~name:"iota" grid (Ops1.interior u)
    [ Ops1.arg_dat u Ops1.stencil_point Access.Write; Ops1.arg_idx ]
    (fun a -> a.(0).(0) <- 2.0 *. a.(1).(0));
  Alcotest.(check (float 0.0)) "idx 5" 10.0 (Ops1.get u ~x:5 ~c:0)

let test_checkpoint_recovery () =
  let path = Filename.temp_file "ops1_ckpt" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let m = build () in
      Ops1.enable_checkpointing m.ctx;
      ignore (run m 2);
      Ops1.request_checkpoint m.ctx;
      let expect = run m 3 in
      Ops1.checkpoint_to_file m.ctx ~path;
      let m2 = build () in
      Ops1.init m2.ctx m2.u (fun _ _ -> 42.0);
      Ops1.recover_from_file m2.ctx ~path;
      ignore (run m2 2);
      let got = run m2 3 in
      let eu, et = expect and gu, gt = got in
      if not (Fa.approx_equal ~tol:0.0 eu gu) then
        Alcotest.fail "recovered field differs";
      Alcotest.(check (float 0.0)) "recovered reduction" et gt)

(* Random-stencil equivalence in 1D. *)
let prop_random_stencil_backend_equivalence =
  QCheck.Test.make ~name:"random 1D stencils agree on every backend" ~count:50
    (QCheck.make QCheck.Gen.(triple (int_range 0 1000) (int_range 9 64) (int_range 0 2)))
    (fun (seed, n, which) ->
      let rng = Am_util.Prng.create seed in
      let n_points = 1 + Am_util.Prng.int rng 5 in
      let stencil =
        Array.init n_points (fun i -> if i = 0 then 0 else Am_util.Prng.int rng 5 - 2)
      in
      let weights =
        Array.init n_points (fun _ -> Am_util.Prng.float_range rng (-1.0) 1.0)
      in
      let run configure =
        let ctx = Ops1.create () in
        let grid = Ops1.decl_block ctx ~name:"grid" in
        let u = Ops1.decl_dat ctx ~name:"u" ~block:grid ~xsize:n ~halo:2 () in
        let w = Ops1.decl_dat ctx ~name:"w" ~block:grid ~xsize:n ~halo:2 () in
        Ops1.init ctx u (fun x _ -> cos (0.3 *. Float.of_int (x * 5)));
        configure ctx;
        Ops1.par_loop ctx ~name:"rand_stencil" grid (Ops1.interior u)
          [
            Ops1.arg_dat u stencil Access.Read;
            Ops1.arg_dat w Ops1.stencil_point Access.Write;
          ]
          (fun a ->
            let acc = ref 0.0 in
            for p = 0 to n_points - 1 do
              acc := !acc +. (weights.(p) *. a.(0).(p))
            done;
            a.(1).(0) <- !acc);
        Ops1.fetch_interior ctx w
      in
      let reference = run (fun _ -> ()) in
      let result =
        run (fun ctx ->
            match which with
            | 0 -> Ops1.partition ctx ~n_ranks:3 ~ref_xsize:n
            | 1 ->
              Ops1.set_backend ctx
                (Ops1.Cuda_sim { Am_ops.Exec1.tile_x = 5; staged = true })
            | _ ->
              Ops1.set_backend ctx
                (Ops1.Cuda_sim { Am_ops.Exec1.tile_x = 9; staged = false }))
      in
      Fa.approx_equal ~tol:0.0 reference result)

let () =
  Alcotest.run "ops1"
    [
      ( "equivalence",
        [
          Alcotest.test_case "shared = seq" `Quick test_shared;
          Alcotest.test_case "cuda global = seq" `Quick test_cuda_global;
          Alcotest.test_case "cuda staged = seq" `Quick test_cuda_staged;
          Alcotest.test_case "dist(2) = seq" `Quick (dist_test 2);
          Alcotest.test_case "dist(5) = seq" `Quick (dist_test 5);
          Alcotest.test_case "dist(3)+shared = seq" `Quick test_hybrid;
          Alcotest.test_case "dist traffic" `Quick test_dist_traffic;
          Alcotest.test_case "mirror + dist = serial" `Quick test_mirror_matches_dist;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "mirror halo" `Quick test_mirror_halo;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "arg_idx" `Quick test_arg_idx;
        ] );
      ( "checkpointing",
        [ Alcotest.test_case "file recovery" `Quick test_checkpoint_recovery ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_stencil_backend_equivalence ] );
    ]
