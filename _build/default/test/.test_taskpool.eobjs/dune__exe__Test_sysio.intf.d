test/test_sysio.mli:
