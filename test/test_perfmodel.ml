(* Tests for the analytic performance model: not absolute numbers, but the
   orderings and shapes the paper's evaluation rests on. *)

module Machines = Am_perfmodel.Machines
module Model = Am_perfmodel.Model
module Cluster = Am_perfmodel.Cluster
module Descr = Am_core.Descr
module Access = Am_core.Access

let arg ?(kind = Descr.Direct) name dim access =
  (* Distinct datasets must get distinct ids: the traffic model groups
     indirect arguments by dataset. *)
  { Descr.dat_name = name; dat_id = Hashtbl.hash name; dim; access; kind }

let indirect name dim access =
  arg ~kind:(Descr.Indirect { map_name = "m"; map_index = 0; ratio = 0.5 }) name dim access

let mk ?(flops = 0.0) ?(trans = 0.0) name size args =
  { Descr.loop_name = name; set_name = "s"; set_size = size; args;
    info = { Descr.flops; transcendentals = trans } }

(* Airfoil-shaped loops at a nominal 1M cells / 2M edges. *)
let save_soln =
  mk "save_soln" 1_000_000 [ arg "q" 4 Access.Read; arg "q_old" 4 Access.Write ]

let adt_calc =
  mk ~flops:30.0 ~trans:4.0 "adt_calc" 1_000_000
    [ indirect "x" 2 Access.Read; arg "q" 4 Access.Read; arg "adt" 1 Access.Write ]

let res_calc =
  mk ~flops:80.0 "res_calc" 2_000_000
    [
      indirect "x" 2 Access.Read;
      indirect "q" 4 Access.Read;
      indirect "adt" 1 Access.Read;
      indirect "res" 4 Access.Inc;
    ]

let update =
  mk ~flops:12.0 "update" 1_000_000
    [ arg "q_old" 4 Access.Read; arg "q" 4 Access.Write; arg "res" 4 Access.Rw ]

let step = [ save_soln; adt_calc; res_calc; update ]

let cpu = Machines.xeon_e5_2697v2
let phi = Machines.xeon_phi_5110p
let k40 = Machines.nvidia_k40
let vec = Model.default_style
let novec = Model.unvectorized

(* ---- Device-level orderings (Table I / Fig 2) ---- *)

let test_direct_loops_near_stream_bw () =
  (* save_soln is a pure copy: its modelled *useful* bandwidth sits near the
     device's stream bandwidth — a factor ~2/3 on write-allocate CPUs (the
     store's read-for-ownership moves the written line twice) and >0.85 on
     write-combining GPUs. This is why Table I's CPU numbers sit below the
     nominal stream figure while the K40's sit close to it. *)
  List.iter
    (fun dev ->
      let bw = Model.loop_bandwidth_gbs dev vec save_soln in
      let frac = bw /. dev.Machines.stream_bw in
      let lo = if dev.Machines.rfo then 0.6 else 0.85 in
      let hi = if dev.Machines.rfo then 0.8 else 1.01 in
      if frac < lo || frac > hi then
        Alcotest.failf "%s: direct-loop bw fraction %.2f" dev.Machines.name frac)
    [ cpu; phi; k40 ]

let test_res_calc_is_bottleneck () =
  (* The indirect loop dominates the step on gather-weak devices (Table I:
     by 3x on the Phi and K40); on the Xeon it ties with update (paper:
     9.9s vs 9.8s), so there we only require it within 20% of the max. *)
  List.iter
    (fun (dev, slack) ->
      let t_res = Model.loop_time dev vec res_calc in
      List.iter
        (fun l ->
          if Model.loop_time dev vec l > t_res *. slack then
            Alcotest.failf "%s: %s outweighs res_calc" dev.Machines.name
              l.Descr.loop_name)
        [ save_soln; adt_calc; update ])
    [ (cpu, 1.2); (phi, 1.0); (k40, 1.0) ]

let test_vectorisation_matters_for_adt_calc () =
  (* adt_calc (sqrt-heavy) slows substantially without vectorisation on
     every CPU-class device; without vectorisation the wide-vector Phi
     loses its advantage over the Xeon entirely. *)
  let slowdown dev = Model.loop_time dev novec adt_calc /. Model.loop_time dev vec adt_calc in
  Alcotest.(check bool) "cpu slowdown > 1.3" true (slowdown cpu > 1.3);
  Alcotest.(check bool) "phi slowdown > 1.3" true (slowdown phi > 1.3);
  Alcotest.(check bool) "unvectorised phi no faster than unvectorised xeon" true
    (Model.loop_time phi novec adt_calc >= Model.loop_time cpu novec adt_calc *. 0.95);
  (* ...but pure-copy loops only pay the scalar-bandwidth factor, not the
     compute penalty. *)
  let copy_ratio = Model.loop_time cpu novec save_soln /. Model.loop_time cpu vec save_soln in
  Alcotest.(check bool) "copy pays only the bandwidth factor" true
    (copy_ratio < 1.0 /. Model.novec_bandwidth_factor +. 0.01)

let test_fig2_device_ordering () =
  (* Overall step: K40 fastest; the Phi loses to the Xeon because res_calc's
     gathers collapse its bandwidth (the paper's central Fig 2 insight). *)
  let t_cpu = Model.sequence_time cpu vec step in
  let t_phi = Model.sequence_time phi vec step in
  let t_k40 = Model.sequence_time k40 vec step in
  Alcotest.(check bool) "k40 < cpu" true (t_k40 < t_cpu);
  Alcotest.(check bool) "cpu < phi" true (t_cpu < t_phi)

let test_locality_degrades_gathers () =
  (* A scrambled mesh (locality 0.5) slows indirect loops but not direct
     ones — the renumbering effect of Fig 3. *)
  let bad = { vec with Model.locality = 0.5 } in
  let r = Model.loop_time cpu bad res_calc /. Model.loop_time cpu vec res_calc in
  Alcotest.(check bool) "res_calc slows" true (r > 1.2);
  let s = Model.loop_time cpu bad save_soln /. Model.loop_time cpu vec save_soln in
  Alcotest.(check bool) "save_soln unaffected" true (s < 1.001)

let test_numa_penalty () =
  let blind = { vec with Model.numa_efficiency = 0.8 } in
  let r = Model.loop_time cpu blind save_soln /. Model.loop_time cpu vec save_soln in
  Alcotest.(check bool) "~25% slower" true (r > 1.2 && r < 1.3)

let test_gpu_small_problem_penalty () =
  (* Shrinking the per-GPU workload must hurt efficiency (Fig 4/6 GPU
     strong-scaling tail-off); CPUs are unaffected. *)
  let small = Model.scale_loop 0.01 res_calc in
  (* 100 small launches vs one big one: the GPU pays heavily, the CPU does
     not. *)
  let gpu_overhead =
    100.0 *. Model.loop_time k40 vec small /. Model.loop_time k40 vec res_calc
  in
  Alcotest.(check bool) "gpu loses efficiency" true (gpu_overhead > 1.5);
  let cpu_overhead =
    100.0 *. Model.loop_time cpu vec small /. Model.loop_time cpu vec res_calc
  in
  (* The CPU only pays per-launch latency (visible at 20k-element loops),
     never an occupancy collapse. *)
  Alcotest.(check bool) "cpu stays near-linear" true (cpu_overhead < 1.4)

let test_traffic_split () =
  let streamed, gathered = Model.traffic_per_element res_calc in
  Alcotest.(check int) "no direct bytes" 0 streamed;
  (* Amortised by ratio 0.5: x(2)R 8 + q(4)R 16 + adt(1)R 4 +
     res(4)Inc(read+write) 32, plus one 4-byte index for the single
     (map, index) pair these synthetic args share. *)
  Alcotest.(check int) "gathered bytes" (8 + 16 + 4 + 32 + 4) gathered

(* ---- Cluster-level shapes (Figs 4/6) ---- *)

let airfoil_workload =
  {
    Cluster.workload_name = "airfoil";
    step_loops = step;
    ref_elements = 1_000_000;
    halo_bytes_coeff = 512.0; (* ~ 64 B/element * 4 elements per sqrt(n) unit *)
    exchanges_per_step = 2;
    reductions_per_step = 1;
    neighbours = 4;
  }

let nodes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let test_strong_scaling_monotone_then_tails () =
  let pts =
    Cluster.strong_scaling Machines.hector vec airfoil_workload
      ~global_elements:8_000_000 ~node_counts:nodes ~steps:100
  in
  (* Time decreases with node count... *)
  let rec decreasing = function
    | (a : Cluster.scaling_point) :: (b :: _ as rest) ->
      a.Cluster.seconds > b.Cluster.seconds && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "times decrease" true (decreasing pts);
  (* ...but efficiency erodes at scale. *)
  let last = List.nth pts (List.length pts - 1) in
  Alcotest.(check bool) "efficiency < 1 at 256 nodes" true (last.Cluster.efficiency < 0.95)

let test_gpu_strong_scaling_tails_earlier () =
  let cpu_pts =
    Cluster.strong_scaling Machines.hector vec airfoil_workload
      ~global_elements:8_000_000 ~node_counts:nodes ~steps:100
  in
  let gpu_pts =
    Cluster.strong_scaling Machines.emerald vec airfoil_workload
      ~global_elements:8_000_000 ~node_counts:nodes ~steps:100
  in
  let eff pts = (List.nth pts (List.length pts - 1)).Cluster.efficiency in
  Alcotest.(check bool) "gpu efficiency < cpu efficiency at scale" true
    (eff gpu_pts < eff cpu_pts)

let test_weak_scaling_near_flat () =
  let pts =
    Cluster.weak_scaling Machines.hector vec airfoil_workload
      ~elements_per_node:1_000_000 ~node_counts:nodes ~steps:100
  in
  let last = List.nth pts (List.length pts - 1) in
  (* Paper: <5% degradation for Airfoil CPU weak scaling. *)
  Alcotest.(check bool) "within 10% of flat" true (last.Cluster.efficiency > 0.9);
  Alcotest.(check bool) "never super-linear" true
    (List.for_all (fun p -> p.Cluster.efficiency <= 1.0 +. 1e-9) pts)

let test_comm_time_zero_on_one_node () =
  Alcotest.(check (float 0.0)) "no comm alone" 0.0
    (Cluster.comm_time Machines.gemini airfoil_workload ~nodes:1 ~n_local:1_000_000)

(* ---- Communication/computation overlap (core/boundary split) ---- *)

let test_overlap_bounds () =
  List.iter
    (fun nodes ->
      let blocking =
        Cluster.step_time Machines.hector vec airfoil_workload ~nodes
          ~global_elements:8_000_000
      in
      let overlapped =
        Cluster.step_time ~overlap:true Machines.hector vec airfoil_workload ~nodes
          ~global_elements:8_000_000
      in
      (* Overlap never costs time, and cannot beat the compute-only bound
         (plus the unhideable reduction). *)
      Alcotest.(check bool) "overlap <= blocking" true
        (overlapped <= blocking +. 1e-12);
      let n_local = max 1 (8_000_000 / nodes) in
      let comm = Cluster.comm_time Machines.hector.Machines.net airfoil_workload ~nodes ~n_local in
      let compute = blocking -. comm in
      Alcotest.(check bool) "overlap >= compute bound" true
        (overlapped
        >= compute
           +. Cluster.reduction_time Machines.hector.Machines.net airfoil_workload
                ~nodes
           -. 1e-12))
    nodes;
  (* At scale communication dominates and the credit is strict. *)
  let blocking =
    Cluster.step_time Machines.hector vec airfoil_workload ~nodes:256
      ~global_elements:8_000_000
  in
  let overlapped =
    Cluster.step_time ~overlap:true Machines.hector vec airfoil_workload ~nodes:256
      ~global_elements:8_000_000
  in
  Alcotest.(check bool) "strictly cheaper at 256 nodes" true (overlapped < blocking)

let test_overlap_improves_strong_scaling () =
  let eff pts = (List.nth pts (List.length pts - 1)).Cluster.efficiency in
  let blocking =
    Cluster.strong_scaling Machines.hector vec airfoil_workload
      ~global_elements:8_000_000 ~node_counts:nodes ~steps:100
  in
  let overlapped =
    Cluster.strong_scaling ~overlap:true Machines.hector vec airfoil_workload
      ~global_elements:8_000_000 ~node_counts:nodes ~steps:100
  in
  Alcotest.(check bool) "overlap scales no worse" true
    (eff overlapped >= eff blocking -. 1e-9)

let test_boundary_fraction_shrinks () =
  let small = Cluster.boundary_fraction airfoil_workload ~n_local:10_000 in
  let large = Cluster.boundary_fraction airfoil_workload ~n_local:1_000_000 in
  Alcotest.(check bool) "surface-to-volume shrinks" true (large < small);
  Alcotest.(check bool) "fraction in (0, 1]" true (large > 0.0 && small <= 1.0)

let () =
  Alcotest.run "perfmodel"
    [
      ( "device",
        [
          Alcotest.test_case "direct loops near stream bw" `Quick
            test_direct_loops_near_stream_bw;
          Alcotest.test_case "res_calc bottleneck" `Quick test_res_calc_is_bottleneck;
          Alcotest.test_case "vectorisation and adt_calc" `Quick
            test_vectorisation_matters_for_adt_calc;
          Alcotest.test_case "fig2 device ordering" `Quick test_fig2_device_ordering;
          Alcotest.test_case "locality degrades gathers" `Quick
            test_locality_degrades_gathers;
          Alcotest.test_case "numa penalty" `Quick test_numa_penalty;
          Alcotest.test_case "gpu small-problem penalty" `Quick
            test_gpu_small_problem_penalty;
          Alcotest.test_case "traffic split" `Quick test_traffic_split;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "strong scaling shape" `Quick
            test_strong_scaling_monotone_then_tails;
          Alcotest.test_case "gpu tails earlier" `Quick
            test_gpu_strong_scaling_tails_earlier;
          Alcotest.test_case "weak scaling near-flat" `Quick test_weak_scaling_near_flat;
          Alcotest.test_case "no comm on one node" `Quick test_comm_time_zero_on_one_node;
          Alcotest.test_case "overlap bounds" `Quick test_overlap_bounds;
          Alcotest.test_case "overlap improves strong scaling" `Quick
            test_overlap_improves_strong_scaling;
          Alcotest.test_case "boundary fraction shrinks" `Quick
            test_boundary_fraction_shrinks;
        ] );
    ]
