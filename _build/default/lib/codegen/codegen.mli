(** Source-to-source translator.

    Consumes the backend-independent loop descriptors the runtime executes
    and emits human-readable C / OpenMP / vectorised-C / CUDA source with
    the structure of the paper's generated code (one implementation per
    (loop, target) pair). The CUDA targets realise the three memory
    strategies of the paper's Fig 7. *)

module Access = Am_core.Access
module Descr = Am_core.Descr

(** Fig 7's memory strategies: direct array-of-structures access,
    structure-of-arrays with stride macros, or staged shared memory. *)
type cuda_strategy = Nosoa | Soa | Stage_nosoa

type target =
  | C_seq  (** the human-readable debugging implementation *)
  | C_openmp  (** block-colour schedule with [#pragma omp parallel for] *)
  | C_vectorized  (** packed gather / simd body / packed scatter *)
  | C_mpi
      (** owner-compute wrapper bracketed by on-demand halo exchange,
          dirty-bit and collective-reduction runtime calls *)
  | Cuda of cuda_strategy

(** Short identifier used in generated headers and file names. *)
val target_to_string : target -> string

(** The user function ("science code"): parameter names and body text. A
    placeholder body is generated when absent. *)
type user_fun = { params : string list; body : string }

val default_user_fun : Descr.loop -> user_fun

(** Generate the implementation of one unstructured-mesh loop. [consts]
    are op_decl_const globals, emitted as CUDA constant memory or
    file-scope C constants depending on the target. *)
val generate_op2 :
  target -> ?user_fun:user_fun -> ?consts:(string * float array) list ->
  Descr.loop -> string

(** Generate the implementation of one structured-mesh loop. *)
val generate_ops : target -> ?user_fun:user_fun -> Descr.loop -> string

(** The paper's Fig 7 listing verbatim (OP_ACC macros + wrapper for the
    three strategies). *)
val fig7 : unit -> string
