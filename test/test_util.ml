(* Unit and property tests for the utility library. *)

module Prng = Am_util.Prng
module Fa = Am_util.Fa
module Stats = Am_util.Stats
module Table = Am_util.Table
module Units = Am_util.Units

let check_float = Alcotest.(check (float 1e-12))

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_prng_float_range () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_int_bounds () =
  let rng = Prng.create 2 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_shuffle_permutes () =
  let rng = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_gaussian_moments () =
  let rng = Prng.create 4 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Prng.gaussian rng) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs m < 0.05);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (s -. 1.0) < 0.05)

(* ---- Fa ---- *)

let test_fa_axpy () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 10.0; 20.0; 30.0 |] in
  Fa.axpy ~alpha:2.0 x y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 12.0; 24.0; 36.0 |] y

let test_fa_dot_norm () =
  let x = [| 3.0; 4.0 |] in
  check_float "dot" 25.0 (Fa.dot x x);
  check_float "norm" 5.0 (Fa.l2_norm x)

let test_fa_discrepancy () =
  let x = [| 1.0; 2.0 |] and y = [| 1.0; 2.0 |] in
  check_float "identical" 0.0 (Fa.rel_discrepancy x y);
  Alcotest.(check bool) "approx_equal" true (Fa.approx_equal x y);
  let z = [| 1.0; 2.5 |] in
  Alcotest.(check bool) "not equal" false (Fa.approx_equal x z)

let test_fa_checksum_order_sensitive () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 3.0; 2.0; 1.0 |] in
  Alcotest.(check bool) "detects reorder" true (Fa.checksum x <> Fa.checksum y)

let test_fa_is_finite () =
  Alcotest.(check bool) "finite" true (Fa.is_finite [| 1.0; -2.0 |]);
  Alcotest.(check bool) "nan" false (Fa.is_finite [| 1.0; Float.nan |]);
  Alcotest.(check bool) "inf" false (Fa.is_finite [| Float.infinity |])

let test_fa_length_mismatch () =
  Alcotest.check_raises "axpy mismatch" (Invalid_argument "Fa.axpy: length mismatch")
    (fun () -> Fa.axpy ~alpha:1.0 [| 1.0 |] [| 1.0; 2.0 |])

(* ---- Stats ---- *)

let test_stats_summary () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let s = Stats.summarize xs in
  check_float "mean" 3.0 s.Stats.mean;
  check_float "median" 3.0 s.Stats.median;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  Alcotest.(check int) "n" 5 s.Stats.n

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "p50 interp" 25.0 (Stats.percentile xs 50.0)

let test_stats_linear_fit () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 3.0; 5.0; 7.0 |] in
  let a, b = Stats.linear_fit xs ys in
  check_float "intercept" 1.0 a;
  check_float "slope" 2.0 b

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~title:"t" ~header:[ "a"; "bb" ] () in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 6 = "== t =");
  Alcotest.(check int) "rows kept" 2 (List.length (Table.rows t))

let test_table_rejects_bad_row () =
  let t = Table.create ~title:"t" ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "bad arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_csv () =
  let t = Table.create ~title:"t" ~header:[ "a"; "b" ] () in
  Table.add_row t [ "x,y"; "z" ];
  Alcotest.(check string) "csv escaping" "a,b\n\"x,y\",z\n" (Table.to_csv t)

(* ---- Units ---- *)

let test_units_seconds () =
  Alcotest.(check string) "ms" "1.50 ms" (Units.seconds 0.0015);
  Alcotest.(check string) "s" "2.00 s" (Units.seconds 2.0)

let test_units_bandwidth () =
  check_float "GB/s" 2.0 (Units.bandwidth_gbs 2_000_000_000 1.0);
  check_float "zero time" 0.0 (Units.bandwidth_gbs 100 0.0)

(* ---- Regression gate ---- *)

let summary_of samples = Am_util.Regress.summarize (Array.of_list samples)

(* A clean 2x median slowdown against a tight baseline must trip the gate;
   the same measurement within the threshold must not.  This pins the exact
   semantics the bench --compare smoke exercises end-to-end (where the
   injected handicap is larger purely to ride out machine noise). *)
let test_regress_gate_trips_on_2x () =
  let baseline = summary_of [ 0.010; 0.010; 0.011; 0.010; 0.011 ] in
  let v =
    Am_util.Regress.gate ~name:"s" ~baseline
      ~current:(summary_of [ 0.020; 0.021; 0.020; 0.022; 0.020 ])
      ()
  in
  Alcotest.(check bool) "2x regressed" true v.Am_util.Regress.v_regressed;
  Alcotest.(check bool) "ratio ~2" true
    (v.Am_util.Regress.v_ratio > 1.8 && v.Am_util.Regress.v_ratio < 2.2);
  let ok =
    Am_util.Regress.gate ~name:"s" ~baseline
      ~current:(summary_of [ 0.0105; 0.0108; 0.0102; 0.0110; 0.0101 ])
      ()
  in
  Alcotest.(check bool) "within threshold ok" false ok.Am_util.Regress.v_regressed

(* The IQR guard: a ratio past the threshold whose absolute shift is inside
   the baseline's own spread is noise, not a regression. *)
let test_regress_gate_iqr_guard () =
  let noisy_baseline = summary_of [ 0.010; 0.030; 0.011; 0.028; 0.012 ] in
  let v =
    Am_util.Regress.gate ~name:"s" ~baseline:noisy_baseline
      ~current:(summary_of [ 0.014; 0.015; 0.014; 0.016; 0.015 ])
      ()
  in
  Alcotest.(check bool) "inside baseline spread" false
    v.Am_util.Regress.v_regressed;
  (* custom threshold: 2x trips a 50% gate, not a 120% one *)
  let baseline = summary_of [ 0.010; 0.010; 0.010 ] in
  let current = summary_of [ 0.020; 0.020; 0.020 ] in
  let at t =
    (Am_util.Regress.gate ~threshold:t ~name:"s" ~baseline ~current ())
      .Am_util.Regress.v_regressed
  in
  Alcotest.(check bool) "trips 50% gate" true (at 0.5);
  Alcotest.(check bool) "not a 120% gate" false (at 1.2)

let test_regress_summary () =
  let s = summary_of [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check int) "n" 5 s.Am_util.Regress.n;
  check_float "median" 3.0 s.Am_util.Regress.median;
  check_float "min" 1.0 s.Am_util.Regress.min;
  check_float "max" 5.0 s.Am_util.Regress.max;
  Alcotest.(check bool) "iqr positive" true (Am_util.Regress.iqr s > 0.0);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Regress.summarize: empty") (fun () ->
      ignore (summary_of []))

(* ---- JSON reader ---- *)

let test_json_parse_bench_shape () =
  let src =
    {|{ "schema": "bench-series/1", "repeat": 10,
       "series": { "a": { "median": 1.5e-3, "n": 10 },
                   "b": { "median": 2.0, "n": 4 } },
       "tags": [1, 2, true, null, "x"] }|}
  in
  match Am_util.Json.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok json ->
    let open Am_util.Json in
    Alcotest.(check (option string)) "schema" (Some "bench-series/1")
      (Option.bind (member "schema" json) to_string);
    Alcotest.(check (option (float 1e-12))) "repeat" (Some 10.0)
      (Option.bind (member "repeat" json) to_num);
    let median name =
      Option.bind (member "series" json) (member name)
      |> Fun.flip Option.bind (member "median")
      |> Fun.flip Option.bind to_num
    in
    Alcotest.(check (option (float 1e-12))) "nested median" (Some 0.0015)
      (median "a");
    Alcotest.(check (option (float 1e-12))) "missing member" None (median "zz");
    (match Option.bind (member "tags" json) to_list with
    | Some [ Num 1.0; Num 2.0; Bool true; Null; Str "x" ] -> ()
    | _ -> Alcotest.fail "list shape");
    (* shape mismatches are total *)
    Alcotest.(check (option string)) "num is not a string" None
      (Option.bind (member "repeat" json) to_string)

let test_json_parse_errors () =
  List.iter
    (fun src ->
      match Am_util.Json.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" src)
    [ ""; "{"; "{\"a\": }"; "[1,]"; "{\"a\": 1} trailing"; "nul" ]

(* ---- Properties ---- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves contents" ~count:200
    QCheck.(pair small_int (array small_int))
    (fun (seed, arr) ->
      let rng = Prng.create seed in
      let copy = Array.copy arr in
      Prng.shuffle rng copy;
      let a = Array.copy arr and b = Array.copy copy in
      Array.sort compare a;
      Array.sort compare b;
      a = b)

let prop_geomean_of_constant =
  QCheck.Test.make ~name:"geomean of constant array is the constant" ~count:100
    QCheck.(pair (float_range 0.1 1000.0) (int_range 1 20))
    (fun (c, n) ->
      let g = Stats.geomean (Array.make n c) in
      Float.abs (g -. c) /. c < 1e-9)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
        ] );
      ( "fa",
        [
          Alcotest.test_case "axpy" `Quick test_fa_axpy;
          Alcotest.test_case "dot/norm" `Quick test_fa_dot_norm;
          Alcotest.test_case "discrepancy" `Quick test_fa_discrepancy;
          Alcotest.test_case "checksum order-sensitive" `Quick
            test_fa_checksum_order_sensitive;
          Alcotest.test_case "is_finite" `Quick test_fa_is_finite;
          Alcotest.test_case "length mismatch" `Quick test_fa_length_mismatch;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bad row" `Quick test_table_rejects_bad_row;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "units",
        [
          Alcotest.test_case "seconds" `Quick test_units_seconds;
          Alcotest.test_case "bandwidth" `Quick test_units_bandwidth;
        ] );
      ( "regress",
        [
          Alcotest.test_case "gate trips on 2x" `Quick test_regress_gate_trips_on_2x;
          Alcotest.test_case "iqr guard and thresholds" `Quick
            test_regress_gate_iqr_guard;
          Alcotest.test_case "summary" `Quick test_regress_summary;
        ] );
      ( "json",
        [
          Alcotest.test_case "bench dump shape" `Quick test_json_parse_bench_shape;
          Alcotest.test_case "malformed rejected" `Quick test_json_parse_errors;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_shuffle_preserves_multiset;
          QCheck_alcotest.to_alcotest prop_geomean_of_constant;
        ] );
    ]
