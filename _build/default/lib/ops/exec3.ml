(* 3D execution engines: the same architecture as the 2D [Exec] — one point
   runner over views, a sequential engine, plane-parallel shared-memory
   execution (centre-only writes keep any disjoint partition race-free) and
   a tiled GPU simulator with clamped staging. *)

module Access = Am_core.Access
open Types3

type view = {
  vget : int -> int -> int -> int -> float; (* x y z c *)
  vset : int -> int -> int -> int -> float -> unit;
}

let dat_view dat =
  {
    vget = (fun x y z c -> get dat ~x ~y ~z ~c);
    vset = (fun x y z c v -> set dat ~x ~y ~z ~c v);
  }

type compiled_arg =
  | C_dat of {
      view : view;
      dim : int;
      stencil : stencil;
      access : Access.t;
      stride : stride;
    }
  | C_gbl of { user_buf : float array; access : Access.t }
  | C_idx

type resolvers = { resolve_dat : dat -> view }

let global_resolvers = { resolve_dat = dat_view }

let compile ?(resolvers = global_resolvers) args =
  let one = function
    | Arg_dat { dat; stencil; access; stride } ->
      C_dat { view = resolvers.resolve_dat dat; dim = dat.dim; stencil; access; stride }
    | Arg_gbl { buf; access; _ } -> C_gbl { user_buf = buf; access }
    | Arg_idx -> C_idx
  in
  Array.of_list (List.map one args)

let make_buffers compiled =
  Array.map
    (function
      | C_dat { dim; stencil; _ } -> Array.make (dim * Array.length stencil) 0.0
      | C_idx -> Array.make 3 0.0
      | C_gbl { user_buf; access } -> (
        match access with
        | Access.Read | Access.Min | Access.Max -> Array.copy user_buf
        | Access.Inc -> Array.make (Array.length user_buf) 0.0
        | Access.Write | Access.Rw ->
          invalid_arg "ops3: Write/Rw access on a global argument"))
    compiled

let merge_globals compiled buffers =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ | C_idx -> ()
      | C_gbl { user_buf; access } -> (
        let acc = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- user_buf.(d) +. acc.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.min user_buf.(d) acc.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.max user_buf.(d) acc.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

let run_point compiled buffers kernel x y z =
  Array.iteri
    (fun i c ->
      match c with
      | C_gbl _ -> ()
      | C_idx ->
        buffers.(i).(0) <- Float.of_int x;
        buffers.(i).(1) <- Float.of_int y;
        buffers.(i).(2) <- Float.of_int z
      | C_dat { view; dim; stencil; access; stride } -> (
        let buf = buffers.(i) in
        match access with
        | Access.Inc -> Array.fill buf 0 dim 0.0
        | Access.Read | Access.Rw | Access.Write ->
          let bx, by, bz = apply_stride stride ~x ~y ~z in
          Array.iteri
            (fun p (dx, dy, dz) ->
              for d = 0 to dim - 1 do
                buf.((p * dim) + d) <- view.vget (bx + dx) (by + dy) (bz + dz) d
              done)
            stencil
        | Access.Min | Access.Max -> assert false))
    compiled;
  kernel buffers;
  Array.iteri
    (fun i c ->
      match c with
      | C_gbl _ | C_idx -> ()
      | C_dat { view; dim; access; _ } -> (
        let buf = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Write | Access.Rw ->
          for d = 0 to dim - 1 do
            view.vset x y z d buf.(d)
          done
        | Access.Inc ->
          for d = 0 to dim - 1 do
            view.vset x y z d (view.vget x y z d +. buf.(d))
          done
        | Access.Min | Access.Max -> assert false))
    compiled

let run_seq ?resolvers ~range ~args ~kernel () =
  let compiled = compile ?resolvers args in
  let buffers = make_buffers compiled in
  for z = range.zlo to range.zhi - 1 do
    for y = range.ylo to range.yhi - 1 do
      for x = range.xlo to range.xhi - 1 do
        run_point compiled buffers kernel x y z
      done
    done
  done;
  merge_globals compiled buffers

(* Plane-parallel shared-memory execution: z-planes across the pool. *)
let run_shared ?resolvers pool ~range ~args ~kernel =
  let compiled = compile ?resolvers args in
  let merge_mutex = Mutex.create () in
  Am_taskpool.Pool.parallel_for pool ~lo:range.zlo ~hi:range.zhi (fun zlo zhi ->
      let buffers = make_buffers compiled in
      for z = zlo to zhi - 1 do
        for y = range.ylo to range.yhi - 1 do
          for x = range.xlo to range.xhi - 1 do
            run_point compiled buffers kernel x y z
          done
        done
      done;
      Mutex.lock merge_mutex;
      merge_globals compiled buffers;
      Mutex.unlock merge_mutex)

(* Tiled GPU simulator: 3D thread blocks with staged scratch volumes. *)
type cuda_config = { tile_x : int; tile_y : int; tile_z : int; staged : bool }

let default_cuda_config = { tile_x = 16; tile_y = 4; tile_z = 4; staged = true }

let run_cuda config ~range ~args ~kernel =
  let compiled = compile args in
  let buffers = make_buffers compiled in
  let tiles lo hi t = (hi - lo + t - 1) / t in
  for tz = 0 to tiles range.zlo range.zhi config.tile_z - 1 do
    for ty = 0 to tiles range.ylo range.yhi config.tile_y - 1 do
      for tx = 0 to tiles range.xlo range.xhi config.tile_x - 1 do
        let txlo = range.xlo + (tx * config.tile_x) in
        let txhi = min range.xhi (txlo + config.tile_x) in
        let tylo = range.ylo + (ty * config.tile_y) in
        let tyhi = min range.yhi (tylo + config.tile_y) in
        let tzlo = range.zlo + (tz * config.tile_z) in
        let tzhi = min range.zhi (tzlo + config.tile_z) in
        if not config.staged then
          for z = tzlo to tzhi - 1 do
            for y = tylo to tyhi - 1 do
              for x = txlo to txhi - 1 do
                run_point compiled buffers kernel x y z
              done
            done
          done
        else begin
          let args_arr = Array.of_list args in
          let staged =
            Array.mapi
              (fun i c ->
                match c with
                (* Strided (grid-transfer) args address another grid level:
                   keep the global view, no staging. *)
                | C_dat { stride; _ } when not (is_unit_stride stride) -> c
                | C_dat { view; dim; stencil; access; stride } ->
                  let dat =
                    match args_arr.(i) with
                    | Arg_dat { dat; _ } -> dat
                    | Arg_gbl _ | Arg_idx -> assert false
                  in
                  let ext = stencil_extent stencil in
                  let sxlo = txlo - ext and sxhi = txhi + ext in
                  let sylo = tylo - ext and syhi = tyhi + ext in
                  let szlo = tzlo - ext and szhi = tzhi + ext in
                  let w = sxhi - sxlo and h = syhi - sylo in
                  let scratch = Array.make (w * h * (szhi - szlo) * dim) 0.0 in
                  let sindex x y z c =
                    (((((z - szlo) * h) + (y - sylo)) * w + (x - sxlo)) * dim) + c
                  in
                  if Access.reads access || access = Access.Write then begin
                    let gx0 = max sxlo (x_min dat) and gx1 = min sxhi (x_max dat) in
                    let gy0 = max sylo (y_min dat) and gy1 = min syhi (y_max dat) in
                    let gz0 = max szlo (z_min dat) and gz1 = min szhi (z_max dat) in
                    for z = gz0 to gz1 - 1 do
                      for y = gy0 to gy1 - 1 do
                        for x = gx0 to gx1 - 1 do
                          for c = 0 to dim - 1 do
                            scratch.(sindex x y z c) <- view.vget x y z c
                          done
                        done
                      done
                    done
                  end;
                  let sview =
                    {
                      vget = (fun x y z c -> scratch.(sindex x y z c));
                      vset = (fun x y z c v -> scratch.(sindex x y z c) <- v);
                    }
                  in
                  C_dat { view = sview; dim; stencil; access; stride }
                | (C_gbl _ | C_idx) as c -> c)
              compiled
          in
          for z = tzlo to tzhi - 1 do
            for y = tylo to tyhi - 1 do
              for x = txlo to txhi - 1 do
                run_point staged buffers kernel x y z
              done
            done
          done;
          Array.iteri
            (fun i c ->
              match (c, staged.(i)) with
              | C_dat { view; dim; access; _ }, C_dat { view = sview; _ }
                when Access.writes access ->
                for z = tzlo to tzhi - 1 do
                  for y = tylo to tyhi - 1 do
                    for x = txlo to txhi - 1 do
                      for d = 0 to dim - 1 do
                        let v = sview.vget x y z d in
                        if access = Access.Inc then
                          view.vset x y z d (view.vget x y z d +. v)
                        else view.vset x y z d v
                      done
                    done
                  done
                done
              | _ -> ())
            compiled
        end
      done
    done
  done;
  merge_globals compiled buffers
