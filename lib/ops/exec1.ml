(* 1D execution engines: same architecture as [Exec]/[Exec3] — affine views
   with per-argument offset tables, a sequential engine, chunk-parallel
   shared-memory execution with pooled worker-local buffers, and a tiled GPU
   simulator with clamped staging. *)

module Access = Am_core.Access
open Types1

(* Affine addressing window: component [c] of logical cell [x] lives at
   [vbase + x*vcol + c] in [vdata]. *)
type view = { vdata : float array; vbase : int; vcol : int }

let dat_view dat = { vdata = dat.data; vbase = dat.halo * dat.dim; vcol = dat.dim }

let vget v ~x ~c = v.vdata.(v.vbase + (x * v.vcol) + c)
let vset v ~x ~c value = v.vdata.(v.vbase + (x * v.vcol) + c) <- value

type compiled_arg =
  | C_dat of {
      view : view;
      dim : int;
      stencil : stencil;
      access : Access.t;
      gather : float array -> int -> unit; (* staging buffer, x *)
      scatter : float array -> int -> unit;
    }
  | C_gbl of { user_buf : float array; access : Access.t }
  | C_idx

type resolvers = { resolve_dat : dat -> view }

let global_resolvers = { resolve_dat = dat_view }

let ignore2 _ _ = ()

let build_gather view ~dim ~stencil ~access =
  let { vdata; vbase; vcol } = view in
  let offsets = Array.map (fun dx -> dx * vcol) stencil in
  let np = Array.length offsets in
  match access with
  | Access.Inc ->
    if dim = 1 then fun buf _ -> Array.unsafe_set buf 0 0.0
    else fun buf _ -> Array.fill buf 0 dim 0.0
  | Access.Read | Access.Rw | Access.Write ->
    if np = 1 && dim = 1 then
      let o = offsets.(0) in
      fun buf x ->
        Array.unsafe_set buf 0 (Array.unsafe_get vdata (vbase + (x * vcol) + o))
    else if dim = 1 then
      fun buf x ->
        let base = vbase + (x * vcol) in
        for p = 0 to np - 1 do
          Array.unsafe_set buf p
            (Array.unsafe_get vdata (base + Array.unsafe_get offsets p))
        done
    else
      fun buf x ->
        let base = vbase + (x * vcol) in
        for p = 0 to np - 1 do
          let src = base + Array.unsafe_get offsets p in
          for d = 0 to dim - 1 do
            Array.unsafe_set buf ((p * dim) + d) (Array.unsafe_get vdata (src + d))
          done
        done
  | Access.Min | Access.Max -> invalid_arg "ops1: Min/Max access on a dataset"

let build_scatter view ~dim ~access =
  let { vdata; vbase; vcol } = view in
  match access with
  | Access.Read -> ignore2
  | Access.Write | Access.Rw ->
    if dim = 1 then
      fun buf x -> Array.unsafe_set vdata (vbase + (x * vcol)) (Array.unsafe_get buf 0)
    else
      fun buf x ->
        let base = vbase + (x * vcol) in
        for d = 0 to dim - 1 do
          Array.unsafe_set vdata (base + d) (Array.unsafe_get buf d)
        done
  | Access.Inc ->
    if dim = 1 then
      fun buf x ->
        let j = vbase + (x * vcol) in
        Array.unsafe_set vdata j (Array.unsafe_get vdata j +. Array.unsafe_get buf 0)
    else
      fun buf x ->
        let base = vbase + (x * vcol) in
        for d = 0 to dim - 1 do
          let j = base + d in
          Array.unsafe_set vdata j (Array.unsafe_get vdata j +. Array.unsafe_get buf d)
        done
  | Access.Min | Access.Max -> invalid_arg "ops1: Min/Max access on a dataset"

let compile_dat view ~dim ~stencil ~access =
  C_dat
    {
      view; dim; stencil; access;
      gather = build_gather view ~dim ~stencil ~access;
      scatter = build_scatter view ~dim ~access;
    }

let compile ?(resolvers = global_resolvers) args =
  let one = function
    | Arg_dat { dat; stencil; access } ->
      compile_dat (resolvers.resolve_dat dat) ~dim:dat.dim ~stencil ~access
    | Arg_gbl { buf; access; _ } -> C_gbl { user_buf = buf; access }
    | Arg_idx -> C_idx
  in
  Array.of_list (List.map one args)

let compiled_matches compiled args =
  Array.length compiled = List.length args
  && List.for_all2
       (fun c arg ->
         match (c, arg) with
         | C_dat cd, Arg_dat { dat; stencil; access } ->
           cd.view.vdata == dat.data && cd.access = access && cd.stencil = stencil
         | C_gbl cg, Arg_gbl { buf; access; _ } ->
           cg.user_buf == buf && cg.access = access
         | C_idx, Arg_idx -> true
         | (C_dat _ | C_gbl _ | C_idx), _ -> false)
       (Array.to_list compiled) args

let has_globals compiled =
  Array.exists (function C_gbl _ -> true | C_dat _ | C_idx -> false) compiled

let make_buffers compiled =
  Array.map
    (function
      | C_dat { dim; stencil; _ } -> Array.make (dim * Array.length stencil) 0.0
      | C_idx -> Array.make 1 0.0
      | C_gbl { user_buf; access } -> (
        match access with
        | Access.Read | Access.Min | Access.Max -> Array.copy user_buf
        | Access.Inc -> Array.make (Array.length user_buf) 0.0
        | Access.Write | Access.Rw ->
          invalid_arg "ops1: Write/Rw access on a global argument"))
    compiled

let merge_globals compiled buffers =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ | C_idx -> ()
      | C_gbl { user_buf; access } -> (
        let acc = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- user_buf.(d) +. acc.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.min user_buf.(d) acc.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.max user_buf.(d) acc.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

let combine_globals compiled dst src =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ | C_idx -> ()
      | C_gbl { access; _ } -> (
        let a = dst.(i) and b = src.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length a - 1 do
            a.(d) <- a.(d) +. b.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length a - 1 do
            a.(d) <- Float.min a.(d) b.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length a - 1 do
            a.(d) <- Float.max a.(d) b.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

let merge_worker_globals compiled states =
  match states with
  | [] -> ()
  | states ->
    let traced = Am_obs.Obs.tracing () in
    if traced then Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Reduce "merge_globals";
    let arr = Array.of_list states in
    let n = ref (Array.length arr) in
    while !n > 1 do
      let half = (!n + 1) / 2 in
      for i = 0 to !n - half - 1 do
        combine_globals compiled arr.(i) arr.(half + i)
      done;
      n := half
    done;
    merge_globals compiled arr.(0);
    if traced then Am_obs.Obs.end_span ()

let run_point compiled buffers kernel x =
  for i = 0 to Array.length compiled - 1 do
    match Array.unsafe_get compiled i with
    | C_dat { gather; _ } -> gather (Array.unsafe_get buffers i) x
    | C_idx -> (Array.unsafe_get buffers i).(0) <- Float.of_int x
    | C_gbl _ -> ()
  done;
  kernel buffers;
  for i = 0 to Array.length compiled - 1 do
    match Array.unsafe_get compiled i with
    | C_dat { scatter; _ } -> scatter (Array.unsafe_get buffers i) x
    | C_gbl _ | C_idx -> ()
  done

(* Slab runner for the lazy-chain tiled executor: caller-owned compiled
   arguments and staging buffers (persist across slabs so global
   accumulations keep the eager traversal order), globals merged once
   after the whole chain. *)
let run_range compiled buffers ~range ~kernel =
  for x = range.xlo to range.xhi - 1 do
    run_point compiled buffers kernel x
  done

let run_seq ?resolvers ?compiled ~range ~args ~kernel () =
  let compiled =
    match compiled with Some c -> c | None -> compile ?resolvers args
  in
  let buffers = make_buffers compiled in
  for x = range.xlo to range.xhi - 1 do
    run_point compiled buffers kernel x
  done;
  if has_globals compiled then merge_globals compiled buffers

(* Chunk-parallel shared-memory execution: intervals across the pool
   (centre-only writes keep any disjoint partition race-free).  Buffers are
   worker-local and pooled; global reductions tree-merge at the end. *)
let run_shared ?resolvers ?compiled pool ~range ~args ~kernel =
  let compiled =
    match compiled with Some c -> c | None -> compile ?resolvers args
  in
  let states =
    Am_taskpool.Pool.parallel_for_local pool ~lo:range.xlo ~hi:range.xhi
      ~local:(fun () -> make_buffers compiled)
      ~body:(fun buffers xlo xhi ->
        for x = xlo to xhi - 1 do
          run_point compiled buffers kernel x
        done)
  in
  if has_globals compiled then merge_worker_globals compiled states

(* Tiled GPU simulator: 1D thread blocks with staged scratch intervals. *)
type cuda_config = { tile_x : int; staged : bool }

let default_cuda_config = { tile_x = 64; staged = true }

let run_cuda ?compiled config ~range ~args ~kernel =
  let compiled =
    match compiled with Some c -> c | None -> compile args
  in
  let buffers = make_buffers compiled in
  let n_tiles = (range.xhi - range.xlo + config.tile_x - 1) / config.tile_x in
  for tx = 0 to n_tiles - 1 do
    let txlo = range.xlo + (tx * config.tile_x) in
    let txhi = min range.xhi (txlo + config.tile_x) in
    if not config.staged then
      for x = txlo to txhi - 1 do
        run_point compiled buffers kernel x
      done
    else begin
      let args_arr = Array.of_list args in
      let staged =
        Array.mapi
          (fun i c ->
            match c with
            | C_dat { view; dim; stencil; access; _ } ->
              let dat =
                match args_arr.(i) with
                | Arg_dat { dat; _ } -> dat
                | Arg_gbl _ | Arg_idx -> assert false
              in
              let ext = stencil_extent stencil in
              let sxlo = txlo - ext and sxhi = txhi + ext in
              let scratch = Array.make ((sxhi - sxlo) * dim) 0.0 in
              let sview = { vdata = scratch; vbase = -sxlo * dim; vcol = dim } in
              if Access.reads access || access = Access.Write then begin
                let gx0 = max sxlo (x_min dat) and gx1 = min sxhi (x_max dat) in
                for x = gx0 to gx1 - 1 do
                  for c = 0 to dim - 1 do
                    vset sview ~x ~c (vget view ~x ~c)
                  done
                done
              end;
              compile_dat sview ~dim ~stencil ~access
            | (C_gbl _ | C_idx) as c -> c)
          compiled
      in
      for x = txlo to txhi - 1 do
        run_point staged buffers kernel x
      done;
      Array.iteri
        (fun i c ->
          match (c, staged.(i)) with
          | C_dat { view; dim; access; _ }, C_dat { view = sview; _ }
            when Access.writes access ->
            for x = txlo to txhi - 1 do
              for d = 0 to dim - 1 do
                let v = vget sview ~x ~c:d in
                if access = Access.Inc then vset view ~x ~c:d (vget view ~x ~c:d +. v)
                else vset view ~x ~c:d v
              done
            done
          | _ -> ())
        compiled
    end
  done;
  if has_globals compiled then merge_globals compiled buffers
