(* Bounded dynamic partial-order reduction over delivery schedules.

   The explorer drives a schedule-deterministic program through the
   controlled scheduler hook of the simulated communicator
   ([Comm.set_chooser]).  Each run is recorded as the sequence of (src, dst)
   delivery events the program's waits forced; the runs form an execution
   tree whose nodes remember, per decision point,

   - the channels that were enabled (staged messages present),
   - the default choice (the channel the blocked receive needed — the
     schedule an uncontrolled run would take),
   - which alternatives have been explored ([done]), are pending ([todo]),
     and the branch currently on the path ([chosen]).

   After (and during) every run, backtrack points are inserted: an enabled
   event that is *dependent* with the chosen one — by default, targets the
   same destination rank — and not yet covered becomes a [todo] entry,
   unless taking it would exceed the delay bound (deviations from the
   default schedule along the prefix, déjà-fu's BPOR bounding) or it is in
   the branch's sleep set (it leads into an already-explored equivalence
   class: classic Godefroid sleep sets, inherited along the path and
   filtered by independence with each chosen event).  Independent
   co-enabled events never get a backtrack point, which is the whole
   reduction: the tree grows one branch per Mazurkiewicz trace, not one
   per interleaving.

   The DFS always takes the deepest pending backtrack point, so truncating
   the node vector to that depth discards only fully-explored subtrees.
   Every run's decisions serialise to a one-line token for replay. *)

module Comm = Am_simmpi.Comm
module Obs = Am_obs.Obs
module Counters = Am_obs.Counters

type event = int * int

let event_to_string (s, d) = string_of_int s ^ ">" ^ string_of_int d

let token_of_events evs = String.concat "," (List.map event_to_string evs)

let events_of_token tok =
  let parse_one part =
    match String.index_opt part '>' with
    | None -> Error (Printf.sprintf "schedule token: expected SRC>DST, got %S" part)
    | Some i -> (
      let a = String.sub part 0 i
      and b = String.sub part (i + 1) (String.length part - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some s, Some d when s >= 0 && d >= 0 -> Ok (s, d)
      | _ -> Error (Printf.sprintf "schedule token: expected SRC>DST, got %S" part))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_one p with Ok e -> go (e :: acc) rest | Error _ as err -> err)
  in
  go []
    (List.filter
       (fun p -> p <> "")
       (List.map String.trim (String.split_on_char ',' (String.trim tok))))

let same_dst (_, d1) (_, d2) = d1 = d2
let conflict_all _ _ = true

exception Bad_schedule of string

let () =
  Printexc.register_printer (function
    | Bad_schedule msg -> Some ("Schedcheck.Bad_schedule: " ^ msg)
    | _ -> None)

(* The schedule an uncontrolled run takes: deliver what the blocked receive
   needs; if that channel has nothing staged (its message was already
   delivered, or never will be), fall back to the first enabled channel. *)
let default_choice ~needed ~enabled =
  if List.mem needed enabled then needed else List.hd enabled

(* ---- Replay ----------------------------------------------------------- *)

let replay ~token prog =
  match events_of_token token with
  | Error msg -> raise (Bad_schedule msg)
  | Ok evs ->
    let remaining = ref evs in
    let chooser ~needed ~enabled =
      match !remaining with
      | [] -> default_choice ~needed ~enabled
      | e :: rest ->
        if not (List.mem e enabled) then
          raise
            (Bad_schedule
               (Printf.sprintf "replay: %s is not enabled (enabled: %s)"
                  (event_to_string e) (token_of_events enabled)));
        remaining := rest;
        e
    in
    Comm.set_chooser (Some chooser);
    Fun.protect ~finally:(fun () -> Comm.set_chooser None) prog

(* ---- Exploration ------------------------------------------------------ *)

type 'a cls = {
  cls_token : string;
  cls_count : int;
  cls_result : ('a, string) result;
}

type 'a report = {
  rp_executions : int;
  rp_backtracks : int;
  rp_sleep_hits : int;
  rp_bound_skips : int;
  rp_max_depth : int;
  rp_truncated : bool;
  rp_traces : event list list;
  rp_classes : 'a cls list;
}

let report_to_string r =
  let pruned = r.rp_sleep_hits + r.rp_bound_skips in
  let denom = r.rp_executions + pruned in
  let pct =
    if denom = 0 then 0.0 else 100.0 *. float_of_int pruned /. float_of_int denom
  in
  Printf.sprintf
    "dpor: %d executions, %d backtracks, %d sleep hits, %d bound skips (pruned \
     %.1f%%), max depth %d, %d result class%s%s"
    r.rp_executions r.rp_backtracks r.rp_sleep_hits r.rp_bound_skips pct
    r.rp_max_depth
    (List.length r.rp_classes)
    (if List.length r.rp_classes = 1 then "" else "es")
    (if r.rp_truncated then " [TRUNCATED at execution cap]" else "")

(* One decision point of the execution tree. *)
type node = {
  nd_enabled : event list; (* channels with staged messages, (src,dst) order *)
  nd_default : event; (* what an uncontrolled run would deliver here *)
  nd_dev_in : int; (* deviations from default strictly before this node *)
  mutable nd_chosen : event; (* branch currently on the path *)
  mutable nd_done : event list; (* branches fully explored *)
  mutable nd_todo : event list; (* backtrack points pending *)
}

let run_search ~bound ~max_executions ~dependent ~equal prog =
  (* Node vector for the current path; truncation just lowers the length. *)
  let nodes = ref (Array.make 64 None) in
  let n_nodes = ref 0 in
  let node i = match !nodes.(i) with Some n -> n | None -> assert false in
  let push n =
    if !n_nodes = Array.length !nodes then begin
      let bigger = Array.make (2 * Array.length !nodes) None in
      Array.blit !nodes 0 bigger 0 !n_nodes;
      nodes := bigger
    end;
    !nodes.(!n_nodes) <- Some n;
    incr n_nodes
  in
  let executions = ref 0
  and backtracks = ref 0
  and sleep_hits = ref 0
  and bound_skips = ref 0
  and max_depth = ref 0
  and truncated = ref false in
  let classes = ref [] in
  let traces = ref [] in
  let record token result =
    let matches c =
      match (c.cls_result, result) with
      | Ok a, Ok b -> equal a b
      | Error a, Error b -> String.equal a b
      | Ok _, Error _ | Error _, Ok _ -> false
    in
    match List.find_opt matches !classes with
    | Some c ->
      classes :=
        List.map
          (fun c' -> if c' == c then { c' with cls_count = c'.cls_count + 1 } else c')
          !classes
    | None ->
      classes := !classes @ [ { cls_token = token; cls_count = 1; cls_result = result } ]
  in
  (* One program execution: follow the tree's chosen branches through the
     first [forced_len] decisions, then default (steered off sleeping
     events); insert backtrack points at every decision. *)
  let run_once ~forced_len =
    let depth = ref 0 in
    let sleep = ref [] in
    let devs = ref 0 in
    let all_asleep = ref false in
    let chooser ~needed ~enabled =
      if enabled = [] then
        raise (Bad_schedule "chooser consulted with no channel enabled");
      let d = !depth in
      let n =
        if d < forced_len then begin
          let n = node d in
          if n.nd_enabled <> enabled then
            raise
              (Bad_schedule
                 "program is not schedule-deterministic: enabled channels changed \
                  under an identical prefix");
          n
        end
        else begin
          let n =
            {
              nd_enabled = enabled;
              nd_default = default_choice ~needed ~enabled;
              nd_dev_in = !devs;
              nd_chosen = (0, 0);
              nd_done = [];
              nd_todo = [];
            }
          in
          push n;
          n
        end
      in
      (* Sleep set on entry to this branch: inherited sleep plus the
         alternatives already explored from this node. *)
      let sleep_here =
        List.fold_left
          (fun acc e -> if List.mem e acc then acc else e :: acc)
          !sleep n.nd_done
      in
      if d >= forced_len then begin
        let awake = List.filter (fun e -> not (List.mem e sleep_here)) enabled in
        n.nd_chosen <-
          (match awake with
          | [] ->
            (* Every enabled choice leads into an explored class: this whole
               run is redundant.  Finish it anyway (aborting mid-program is
               not possible) and count the prune. *)
            all_asleep := true;
            n.nd_default
          | aw -> if List.mem n.nd_default aw then n.nd_default else List.hd aw)
      end;
      let choice = n.nd_chosen in
      devs := n.nd_dev_in + (if choice = n.nd_default then 0 else 1);
      (* Backtrack points: co-enabled dependent alternatives not yet
         covered, within the delay bound. *)
      List.iter
        (fun e ->
          if
            e <> choice && dependent e choice
            && not (List.mem e n.nd_done)
            && not (List.mem e n.nd_todo)
            && not (List.mem e sleep_here)
          then begin
            let cost = n.nd_dev_in + if e = n.nd_default then 0 else 1 in
            if cost <= bound then n.nd_todo <- e :: n.nd_todo
            else begin
              incr bound_skips;
              Counters.incr Obs.dpor_bound_skips
            end
          end)
        n.nd_enabled;
      sleep := List.filter (fun e -> not (dependent e choice)) sleep_here;
      incr depth;
      choice
    in
    Comm.set_chooser (Some chooser);
    let result =
      Fun.protect
        ~finally:(fun () -> Comm.set_chooser None)
        (fun () ->
          try Ok (prog ()) with
          | Bad_schedule _ as e -> raise e
          | e -> Error (Printexc.to_string e))
    in
    incr executions;
    Counters.incr Obs.dpor_executions;
    if !all_asleep then begin
      incr sleep_hits;
      Counters.incr Obs.dpor_sleep_hits
    end;
    if !n_nodes > !max_depth then max_depth := !n_nodes;
    let trace = List.init !n_nodes (fun i -> (node i).nd_chosen) in
    record (token_of_events trace) result;
    traces := trace :: !traces
  in
  run_once ~forced_len:0;
  let continue_ = ref true in
  while !continue_ do
    (* Deepest node with a pending backtrack point; nodes below it are
       fully explored, so truncating to it loses nothing. *)
    let d = ref (!n_nodes - 1) in
    while !d >= 0 && (node !d).nd_todo = [] do
      decr d
    done;
    if !d < 0 then continue_ := false
    else if !executions >= max_executions then begin
      truncated := true;
      continue_ := false
    end
    else begin
      let n = node !d in
      match n.nd_todo with
      | [] -> assert false
      | e :: rest ->
        n.nd_todo <- rest;
        n.nd_done <- n.nd_chosen :: n.nd_done;
        n.nd_chosen <- e;
        n_nodes := !d + 1;
        incr backtracks;
        Counters.incr Obs.dpor_backtracks;
        run_once ~forced_len:(!d + 1)
    end
  done;
  {
    rp_executions = !executions;
    rp_backtracks = !backtracks;
    rp_sleep_hits = !sleep_hits;
    rp_bound_skips = !bound_skips;
    rp_max_depth = !max_depth;
    rp_truncated = !truncated;
    rp_traces = !traces;
    rp_classes = !classes;
  }

let explore ?(bound = 2) ?(max_executions = 10_000) ?(dependent = same_dst)
    ?(equal = fun a b -> a = b) prog =
  run_search ~bound ~max_executions ~dependent ~equal prog

(* ---- Brute force and Mazurkiewicz quotient ---------------------------- *)

(* Canonical linearisation of a trace's dependence DAG: repeatedly emit the
   smallest event whose unemitted predecessors are all independent of it.
   Two traces are Mazurkiewicz-equivalent iff their canonical forms agree
   (equal events must be dependent for the tie to be unreachable). *)
let canonical ~dependent trace =
  let evs = Array.of_list trace in
  let n = Array.length evs in
  let emitted = Array.make n false in
  let out = Buffer.create (n * 4) in
  for _ = 1 to n do
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if not emitted.(i) then begin
        let available = ref true in
        for j = 0 to i - 1 do
          if (not emitted.(j)) && dependent evs.(j) evs.(i) then available := false
        done;
        if !available && (!best < 0 || compare evs.(i) evs.(!best) < 0) then best := i
      end
    done;
    emitted.(!best) <- true;
    Buffer.add_string out (event_to_string evs.(!best));
    Buffer.add_char out ','
  done;
  Buffer.contents out

let mazurkiewicz_classes ~dependent traces =
  let tbl = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace tbl (canonical ~dependent t) ()) traces;
  Hashtbl.length tbl

let brute_force ?(max_executions = 100_000) ?(dependent = same_dst)
    ?(equal = fun a b -> a = b) prog =
  let report =
    run_search ~bound:max_int ~max_executions ~dependent:conflict_all ~equal prog
  in
  (report, mazurkiewicz_classes ~dependent report.rp_traces)
