(* Kernel footprint inference: execute a loop kernel over probe staging
   buffers and observe which slots it actually reads and writes, once per
   loop signature.

   The facades hand every kernel the same shape of argument: one staging
   buffer per declared argument ([dim] values per stencil point for OPS,
   [dim] values for OP2 dats and globals).  That convention makes the
   kernel a pure function of its staging buffers, so its memory footprint
   can be *observed* instead of trusted:

   - writes are caught by a write-shadow: every slot starts from a
     distinguishable sentinel payload and a changed bit pattern after the
     kernel means the slot was written;
   - reads are caught by perturbation: re-run the kernel with one input
     slot moved (two-sided — both up and down, so a read masked by a
     min/max selection on one side still shows on the other) and any
     changed output bit means the slot's value flowed into the result;
   - a canary pad past the declared slots catches out-of-bounds accesses
     that stay inside the OCaml array; indexing past the pad raises
     [Invalid_argument], which is caught and recorded;
   - [Inc] arguments are checked for additivity: seeding the staging
     buffer must shift the result by exactly the seed, which an
     increment-that-overwrites cannot reproduce.

   Branch coverage is sampled, not proved: the kernel runs over a small
   set of probe vectors (positive O(1) values, mixed signs for
   sign-dependent branches like viscosity's [div < 0] split, spread
   magnitudes).  Observed accesses are therefore *definite* facts —
   an access that happened cannot be argued away — while absence of an
   access is only evidence, which is why [Verify] reports undeclared
   accesses as errors but never-observed declarations only as warnings. *)

module A = Access
module Counters = Am_obs.Counters
module Obs = Am_obs.Obs

type arg_foot = {
  af_name : string;
  af_access : A.t;
  af_slots : int; (* declared staging slots: points*dim (stencil) or dim *)
  af_read : bool array; (* some probe's output depended on the slot's input *)
  af_written : bool array; (* the slot's bits changed on some probe *)
  af_unwritten : bool array; (* Write-declared slot left untouched on some probe *)
  af_pad_read : bool; (* output depended on a canary-pad slot *)
  af_pad_written : bool; (* kernel wrote past the declared slots *)
  af_non_additive : bool; (* Inc argument observed overwriting, not adding *)
}

type t = {
  fp_loop : string;
  fp_args : arg_foot array;
  fp_probes : int; (* probe vectors run *)
  fp_runs : int; (* kernel invocations *)
  fp_oob : string option; (* kernel indexed past the staging pad *)
  fp_failed : string option; (* probing aborted: kernel raised on probe data *)
}

(* Key under which a footprint is cached: the loop name plus the full
   argument structure (name, dim, access, kind with stencil shape).  Two
   call sites that disagree on any of those probe separately; iteration
   range and set size are deliberately excluded — the kernel does not see
   them, and apps like TeaLeaf pass fresh global literals per call.

   [Descr] renders a stencil as only its point count and radius, so the
   facades must pass the concrete offsets (and strides) through [salt]:
   without it a 2-point horizontal and a 2-point vertical stencil under
   the same loop name would share one cached footprint, and the
   offset-indexed masks of the first call would be applied to the other
   call's offsets. *)
let signature ?(salt = "") (loop : Descr.loop) =
  loop.Descr.loop_name ^ "|"
  ^ String.concat "," (List.map Descr.arg_to_string loop.Descr.args)
  ^ salt

let slots_of (a : Descr.arg) =
  match a.Descr.kind with
  | Descr.Stencil { points; _ } -> points * a.Descr.dim
  | Descr.Direct | Descr.Indirect _ | Descr.Global -> a.Descr.dim

(* Pad width past the declared slots, matching the sanitizer executors so
   an index that the Check backend would catch in the canary tail is also
   observed here. *)
let pad_of (a : Descr.arg) = max 2 a.Descr.dim

(* ---- deterministic probe values -------------------------------------- *)

let splitmix state =
  let s = Int64.add state 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

let unit_float bits =
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.0

let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let n_probes = 4

(* One pseudo-random unit float per (probe, arg, slot), deterministic in
   the signature so inference is reproducible run to run. *)
let unit_of ~seed ~probe ~arg ~slot =
  let s =
    Int64.add seed
      (Int64.of_int ((probe * 0x3779_91) + (arg * 0x10_0001) + slot))
  in
  let _, z = splitmix s in
  unit_float z

(* The probe vectors: positive O(1) values (twice, independent draws, so
   physics kernels see ordinary magnitudes and avoid NaN), mixed signs
   (covers sign-dependent branches), spread magnitudes. *)
let probe_value ~seed ~probe ~arg ~slot =
  let u = unit_of ~seed ~probe ~arg ~slot in
  match probe with
  | 0 -> 0.5 +. u
  | 1 -> 0.25 +. (1.5 *. u)
  | 2 ->
    let v = (2.0 *. u) -. 1.0 in
    if Float.abs v < 0.1 then if v < 0.0 then v -. 0.1 else v +. 0.1 else v
  | _ -> Float.pow 10.0 (2.0 *. (u -. 0.5))

(* OPS index arguments carry iteration coordinates; probe them with small
   non-negative integers so coordinate comparisons behave like real grid
   points. *)
let idx_value ~probe ~slot =
  match probe with
  | 0 -> Float.of_int (slot + 1)
  | 1 -> 0.0
  | 2 -> Float.of_int (7 + slot)
  | _ -> 31.0

(* Write-declared slots start from an improbable finite sentinel: the
   kernel is promised the previous value is dead, so the only way these
   bits can influence the output is a descriptor lie. *)
let write_sentinel ~seed ~probe ~arg ~slot =
  1.0e17 *. (1.0 +. unit_of ~seed ~probe ~arg ~slot)

exception Probe_stop of string option * string option (* oob, failed *)

(* [idx] marks argument positions the facade declared as iteration-index
   buffers (its [Arg_idx] constructor) — [Descr] flattens those into a
   Read global, and matching on the rendered name would misprobe a user
   global genuinely called "idx". *)
let infer ?(idx = [||]) ~(loop : Descr.loop) ~(kernel : float array array -> unit)
    () =
  let is_idx i = i < Array.length idx && idx.(i) in
  Counters.incr Obs.infer_signatures;
  let t0 = Sys.time () in
  let seed = hash_string (signature loop) in
  let args = Array.of_list loop.Descr.args in
  let n = Array.length args in
  let nslots = Array.map slots_of args in
  let pads = Array.map pad_of args in
  let total i = nslots.(i) + pads.(i) in
  let bufs = Array.init n (fun i -> Array.make (total i) 0.0) in
  let fills = Array.init n (fun i -> Array.make (total i) 0.0) in
  let base = Array.init n (fun i -> Array.make (total i) 0.0) in
  let read = Array.init n (fun i -> Array.make (nslots.(i)) false) in
  let written = Array.init n (fun i -> Array.make (nslots.(i)) false) in
  let unwritten = Array.init n (fun i -> Array.make (nslots.(i)) false) in
  let pad_read = Array.make n false in
  let pad_written = Array.make n false in
  let non_additive = Array.make n false in
  let runs = ref 0 in
  let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let run_kernel () =
    incr runs;
    Counters.incr Obs.infer_kernel_runs;
    try kernel bufs with
    | Invalid_argument msg -> raise (Probe_stop (Some msg, None))
    | Stack_overflow | Out_of_memory | Sys.Break as e -> raise e
    | e -> raise (Probe_stop (None, Some (Printexc.to_string e)))
  in
  let load fills = Array.iteri (fun i f -> Array.blit f 0 bufs.(i) 0 (total i)) fills in
  (* Read detection: perturb one input slot both ways and compare every
     other slot's output bits against the baseline. *)
  let probe_read ~i ~s =
    let orig = fills.(i).(s) in
    let differs () =
      let d = ref false in
      for j = 0 to n - 1 do
        for t = 0 to total j - 1 do
          if (j <> i || t <> s) && not (same_bits bufs.(j).(t) base.(j).(t)) then
            d := true
        done
      done;
      !d
    in
    let try_delta v =
      load fills;
      bufs.(i).(s) <- v;
      run_kernel ();
      differs ()
    in
    try_delta ((orig *. 1.618) +. 0.511) || try_delta ((orig *. 0.382) -. 0.733)
  in
  let oob = ref None and failed = ref None and probes_done = ref 0 in
  (try
     for probe = 0 to n_probes - 1 do
       (* fill: probe values for readable slots, write sentinels for dead
          slots, zero for Inc (the staging convention), and probe values in
          the canary pad so pad reads are detectable too. *)
       for i = 0 to n - 1 do
         let a = args.(i) in
         for s = 0 to total i - 1 do
           fills.(i).(s) <-
             (if s >= nslots.(i) then write_sentinel ~seed ~probe ~arg:i ~slot:s
              else
                match a.Descr.access with
                | A.Write -> write_sentinel ~seed ~probe ~arg:i ~slot:s
                | A.Inc -> 0.0
                | A.Min -> 1.0e30
                | A.Max -> -1.0e30
                | A.Read | A.Rw ->
                  if is_idx i then idx_value ~probe ~slot:s
                  else probe_value ~seed ~probe ~arg:i ~slot:s)
         done
       done;
       (* baseline + write shadow *)
       load fills;
       run_kernel ();
       Array.iteri (fun i b -> Array.blit b 0 base.(i) 0 (total i)) bufs;
       for i = 0 to n - 1 do
         for s = 0 to nslots.(i) - 1 do
           if not (same_bits base.(i).(s) fills.(i).(s)) then written.(i).(s) <- true
           else if args.(i).Descr.access = A.Write then unwritten.(i).(s) <- true
         done;
         for s = nslots.(i) to total i - 1 do
           if not (same_bits base.(i).(s) fills.(i).(s)) then pad_written.(i) <- true
         done
       done;
       (* read probes: declared slots of value-carrying accesses, and the
          pad tail of every argument *)
       for i = 0 to n - 1 do
         (match args.(i).Descr.access with
         | A.Read | A.Rw | A.Write ->
           for s = 0 to nslots.(i) - 1 do
             if (not read.(i).(s)) && probe_read ~i ~s then read.(i).(s) <- true
           done
         | A.Inc | A.Min | A.Max -> ());
         for s = nslots.(i) to total i - 1 do
           if (not pad_read.(i)) && probe_read ~i ~s then pad_read.(i) <- true
         done
       done;
       (* Inc additivity: seeding the staging must shift the result by
          exactly the seed (within rounding); an overwrite cannot. *)
       if Array.exists (fun (a : Descr.arg) -> a.Descr.access = A.Inc) args then begin
         let seed_of i s = 1.0 +. (0.5 *. Float.of_int ((i * 7) + s)) in
         load fills;
         for i = 0 to n - 1 do
           if args.(i).Descr.access = A.Inc then
             for s = 0 to nslots.(i) - 1 do
               bufs.(i).(s) <- seed_of i s
             done
         done;
         run_kernel ();
         for i = 0 to n - 1 do
           if args.(i).Descr.access = A.Inc then
             for s = 0 to nslots.(i) - 1 do
               let expect = base.(i).(s) +. seed_of i s in
               let got = bufs.(i).(s) in
               if
                 (not (Float.is_nan expect))
                 && (not (Float.is_nan got))
                 && Float.abs (got -. expect)
                    > 1e-6 *. (1.0 +. Float.abs expect +. Float.abs got)
               then non_additive.(i) <- true
             done
         done
       end;
       incr probes_done
     done
   with Probe_stop (o, f) ->
     oob := o;
     failed := f);
  Counters.addf Obs.infer_seconds (Sys.time () -. t0);
  {
    fp_loop = loop.Descr.loop_name;
    fp_args =
      Array.mapi
        (fun i (a : Descr.arg) ->
          {
            af_name = a.Descr.dat_name;
            af_access = a.Descr.access;
            af_slots = nslots.(i);
            af_read = read.(i);
            af_written = written.(i);
            af_unwritten = unwritten.(i);
            af_pad_read = pad_read.(i);
            af_pad_written = pad_written.(i);
            af_non_additive = non_additive.(i);
          })
        args;
    fp_probes = !probes_done;
    fp_runs = !runs;
    fp_oob = !oob;
    fp_failed = !failed;
  }

(* ---- derived facts ---------------------------------------------------- *)

let any = Array.exists (fun b -> b)

(* Error-class observations: accesses the declaration forbids, caught in
   the act.  These are the facts [Verify] turns into definite errors and
   the Check backend refuses to lighten. *)
let arg_violates af =
  af.af_pad_read || af.af_pad_written || af.af_non_additive
  ||
  match af.af_access with
  | A.Read -> any af.af_written
  | A.Write -> any af.af_read || any af.af_unwritten
  | A.Rw | A.Inc | A.Min | A.Max -> false

(* A footprint the downstream consumers may act on: probing completed and
   no argument was caught violating its declaration. *)
let clean fp =
  fp.fp_oob = None && fp.fp_failed = None
  && fp.fp_probes > 0
  && Array.for_all (fun af -> not (arg_violates af)) fp.fp_args

(* Stencil points whose value was observed flowing into the output (any
   component), for mapping back onto the facade's concrete offsets. *)
let points_read af ~dim =
  let points = if dim > 0 then af.af_slots / dim else 0 in
  Array.init points (fun p ->
      let rec comp c = c < dim && (af.af_read.((p * dim) + c) || comp (c + 1)) in
      comp 0)

(* A footprint paired with facade-side facts the analysis layer cannot
   recover from [Descr] alone: the observed Chebyshev read extent per
   argument (computed against the real stencil offsets; -1 where the
   argument has no stencil or the footprint is not clean). *)
type info = { in_loop : Descr.loop; in_foot : t; in_read_ext : int array }
