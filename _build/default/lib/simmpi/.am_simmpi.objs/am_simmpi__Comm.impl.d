lib/simmpi/comm.ml: Array Float Printf Queue
