(* Hand-coded Hydra-sim baseline ("Original").

   The same kernels driven by a minimal direct runner over plain arrays and
   connectivity tables — no declarations, no validation, no plans, no
   descriptors, no profiling: what a hand-parallelised production code's
   sequential core looks like.  Executes identically to the OP2 version
   (same kernels, same iteration order), so the benchmarks isolate the
   framework's dispatch cost exactly as the paper's Original-vs-OP2-unopt
   comparison does (Fig 3). *)

module Umesh = Am_mesh.Umesh

type mode = R | W | I | Rw

type arg =
  | Direct of float array * int * mode
  | Indirect of float array * int * int array * int * int * mode
    (* data, dim, map, arity, index, mode *)
  | Gbl of float array * mode

(* Direct gather/scatter runner: the structure a hand writer inlines. *)
let run_loop ~n args kernel =
  let args = Array.of_list args in
  let buffers =
    Array.map
      (function
        | Direct (_, dim, _) -> Array.make dim 0.0
        | Indirect (_, dim, _, _, _, _) -> Array.make dim 0.0
        | Gbl (buf, _) -> buf)
      args
  in
  for e = 0 to n - 1 do
    Array.iteri
      (fun i a ->
        match a with
        | Gbl _ -> ()
        | Direct (data, dim, mode) -> (
          match mode with
          | I -> Array.fill buffers.(i) 0 dim 0.0
          | R | W | Rw -> Array.blit data (e * dim) buffers.(i) 0 dim)
        | Indirect (data, dim, map, arity, idx, mode) -> (
          match mode with
          | I -> Array.fill buffers.(i) 0 dim 0.0
          | R | W | Rw ->
            Array.blit data (map.((e * arity) + idx) * dim) buffers.(i) 0 dim))
      args;
    kernel buffers;
    Array.iteri
      (fun i a ->
        match a with
        | Gbl _ -> ()
        | Direct (data, dim, mode) -> (
          match mode with
          | R -> ()
          | W | Rw -> Array.blit buffers.(i) 0 data (e * dim) dim
          | I ->
            for d = 0 to dim - 1 do
              data.((e * dim) + d) <- data.((e * dim) + d) +. buffers.(i).(d)
            done)
        | Indirect (data, dim, map, arity, idx, mode) -> (
          let base = map.((e * arity) + idx) * dim in
          match mode with
          | R -> ()
          | W | Rw -> Array.blit buffers.(i) 0 data base dim
          | I ->
            for d = 0 to dim - 1 do
              data.(base + d) <- data.(base + d) +. buffers.(i).(d)
            done))
      args
  done

type t = {
  mesh : Umesh.t;
  coarse_mesh : Umesh.t;
  fine_to_coarse : int array;
  x : float array;
  q : float array;
  qold : float array;
  adt : float array;
  res : float array;
  grad : float array;
  bound : float array;
  coarse_r : float array;
  coarse_corr : float array;
  coarse_acc : float array;
}

let n_state = Kernels.n_state

let create ~nx ~ny () =
  if nx mod 2 <> 0 || ny mod 2 <> 0 then invalid_arg "Hydra.Hand.create: even sizes";
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let coarse_mesh = Umesh.generate_airfoil ~nx:(nx / 2) ~ny:(ny / 2) () in
  {
    mesh;
    coarse_mesh;
    fine_to_coarse = App.coarsening_map ~nx ~ny;
    x = Array.copy mesh.Umesh.node_coords;
    q = App.initial_q mesh;
    qold = Array.make (mesh.Umesh.n_cells * n_state) 0.0;
    adt = Array.make mesh.Umesh.n_cells 0.0;
    res = Array.make (mesh.Umesh.n_cells * n_state) 0.0;
    grad = Array.make (mesh.Umesh.n_cells * 2 * n_state) 0.0;
    bound = Array.map Float.of_int mesh.Umesh.bedge_bound;
    coarse_r = Array.make (coarse_mesh.Umesh.n_cells * n_state) 0.0;
    coarse_corr = Array.make (coarse_mesh.Umesh.n_cells * n_state) 0.0;
    coarse_acc = Array.make (coarse_mesh.Umesh.n_cells * n_state) 0.0;
  }

let iteration t =
  let m = t.mesh in
  let en = m.Umesh.edge_nodes and ec = m.Umesh.edge_cells in
  let bn = m.Umesh.bedge_nodes and bc = m.Umesh.bedge_cell in
  let cn = m.Umesh.cell_nodes in
  run_loop ~n:m.Umesh.n_cells
    [ Direct (t.q, n_state, R); Direct (t.qold, n_state, W) ]
    Kernels.save_state;
  run_loop ~n:m.Umesh.n_cells
    [
      Indirect (t.x, 2, cn, 4, 0, R);
      Indirect (t.x, 2, cn, 4, 1, R);
      Indirect (t.x, 2, cn, 4, 2, R);
      Indirect (t.x, 2, cn, 4, 3, R);
      Direct (t.q, n_state, R);
      Direct (t.adt, 1, W);
    ]
    Kernels.calc_dt;
  let rms = [| 0.0 |] in
  Array.iter
    (fun alpha ->
      run_loop ~n:m.Umesh.n_cells [ Direct (t.grad, 2 * n_state, W) ] Kernels.grad_zero;
      run_loop ~n:m.Umesh.n_edges
        [
          Indirect (t.x, 2, en, 2, 0, R);
          Indirect (t.x, 2, en, 2, 1, R);
          Indirect (t.q, n_state, ec, 2, 0, R);
          Indirect (t.q, n_state, ec, 2, 1, R);
          Indirect (t.grad, 2 * n_state, ec, 2, 0, I);
          Indirect (t.grad, 2 * n_state, ec, 2, 1, I);
        ]
        Kernels.grad_accum;
      run_loop ~n:m.Umesh.n_cells
        [ Direct (t.adt, 1, R); Direct (t.grad, 2 * n_state, Rw) ]
        Kernels.grad_scale;
      run_loop ~n:m.Umesh.n_edges
        [
          Indirect (t.x, 2, en, 2, 0, R);
          Indirect (t.x, 2, en, 2, 1, R);
          Indirect (t.q, n_state, ec, 2, 0, R);
          Indirect (t.q, n_state, ec, 2, 1, R);
          Indirect (t.adt, 1, ec, 2, 0, R);
          Indirect (t.adt, 1, ec, 2, 1, R);
          Indirect (t.res, n_state, ec, 2, 0, I);
          Indirect (t.res, n_state, ec, 2, 1, I);
        ]
        Kernels.flux_inviscid;
      run_loop ~n:m.Umesh.n_edges
        [
          Indirect (t.q, n_state, ec, 2, 0, R);
          Indirect (t.q, n_state, ec, 2, 1, R);
          Indirect (t.grad, 2 * n_state, ec, 2, 0, R);
          Indirect (t.grad, 2 * n_state, ec, 2, 1, R);
          Indirect (t.res, n_state, ec, 2, 0, I);
          Indirect (t.res, n_state, ec, 2, 1, I);
        ]
        Kernels.flux_viscous;
      run_loop ~n:m.Umesh.n_bedges
        [
          Indirect (t.x, 2, bn, 2, 0, R);
          Indirect (t.x, 2, bn, 2, 1, R);
          Indirect (t.q, n_state, bc, 1, 0, R);
          Indirect (t.res, n_state, bc, 1, 0, I);
          Direct (t.bound, 1, R);
        ]
        Kernels.flux_boundary;
      run_loop ~n:m.Umesh.n_cells
        [
          Direct (t.q, n_state, R);
          Direct (t.grad, 2 * n_state, R);
          Direct (t.res, n_state, I);
        ]
        Kernels.source;
      Array.fill rms 0 1 0.0;
      run_loop ~n:m.Umesh.n_cells
        [
          Direct (t.qold, n_state, R);
          Direct (t.q, n_state, W);
          Direct (t.res, n_state, Rw);
          Direct (t.adt, 1, R);
          Gbl ([| alpha |], R);
          Gbl (rms, I);
        ]
        Kernels.rk_stage)
    Kernels.rk_alphas;
  (* Multigrid. *)
  let cm = t.coarse_mesh in
  let cec = cm.Umesh.edge_cells in
  let f2c = t.fine_to_coarse in
  run_loop ~n:cm.Umesh.n_cells [ Direct (t.coarse_r, n_state, W) ] Kernels.zero6;
  run_loop ~n:cm.Umesh.n_cells [ Direct (t.coarse_corr, n_state, W) ] Kernels.zero6;
  run_loop ~n:cm.Umesh.n_cells [ Direct (t.coarse_acc, n_state, W) ] Kernels.zero6;
  run_loop ~n:m.Umesh.n_cells
    [
      Direct (t.q, n_state, R);
      Direct (t.qold, n_state, R);
      Indirect (t.coarse_r, n_state, f2c, 1, 0, I);
    ]
    Kernels.mg_restrict;
  for _smooth = 1 to 2 do
    run_loop ~n:cm.Umesh.n_edges
      [
        Indirect (t.coarse_corr, n_state, cec, 2, 0, R);
        Indirect (t.coarse_corr, n_state, cec, 2, 1, R);
        Indirect (t.coarse_acc, n_state, cec, 2, 0, I);
        Indirect (t.coarse_acc, n_state, cec, 2, 1, I);
      ]
      Kernels.mg_smooth_edge;
    run_loop ~n:cm.Umesh.n_cells
      [
        Direct (t.coarse_r, n_state, R);
        Direct (t.coarse_acc, n_state, Rw);
        Direct (t.coarse_corr, n_state, W);
      ]
      Kernels.mg_smooth_cell
  done;
  run_loop ~n:m.Umesh.n_cells
    [ Indirect (t.coarse_corr, n_state, f2c, 1, 0, R); Direct (t.q, n_state, Rw) ]
    Kernels.mg_prolong;
  sqrt (rms.(0) /. Float.of_int m.Umesh.n_cells)

let run t ~iters =
  let rms = ref 0.0 in
  for _ = 1 to iters do
    rms := iteration t
  done;
  !rms

let solution t = Array.copy t.q
