(* Tests for TeaLeaf-sim: CG convergence, conservation and backend
   equivalence of the implicit 3D heat solve. *)

module Tea = Am_tealeaf.App
module Ops3 = Am_ops.Ops3
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let n = 10

let reference = lazy (
  let t = Tea.create ~n () in
  Tea.run t ~steps:3;
  (Tea.temperature t, Tea.total_heat t))

let check name (temp, heat) =
  let ref_temp, ref_heat = Lazy.force reference in
  if not (Fa.approx_equal ~tol:1e-8 ref_temp temp) then
    Alcotest.failf "%s: temperature diverges (%g)" name (Fa.rel_discrepancy ref_temp temp);
  if Float.abs (heat -. ref_heat) /. ref_heat > 1e-8 then
    Alcotest.failf "%s: heat diverges" name

let test_cg_converges () =
  let t = Tea.create ~n () in
  let iters = Tea.step t in
  Alcotest.(check bool) "converged before the cap" true (iters > 0 && iters < 200)

let test_heat_conserved () =
  (* Insulated walls + implicit step: total heat is invariant to CG
     tolerance. *)
  let t = Tea.create ~n () in
  let h0 = Tea.total_heat t in
  Tea.run t ~steps:5;
  let h1 = Tea.total_heat t in
  Alcotest.(check bool) "conserved" true (Float.abs (h1 -. h0) /. h0 < 1e-6)

let test_diffuses_towards_uniform () =
  let spread temp =
    let mx = Array.fold_left Float.max neg_infinity temp in
    let mn = Array.fold_left Float.min infinity temp in
    mx -. mn
  in
  let t = Tea.create ~n () in
  let s0 = spread (Tea.temperature t) in
  Tea.run t ~steps:8;
  let s1 = spread (Tea.temperature t) in
  Alcotest.(check bool) "spread shrinks" true (s1 < s0);
  Alcotest.(check bool) "still positive" true
    (Array.for_all (fun v -> v > 0.0) (Tea.temperature t))

let test_shared_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      let t = Tea.create ~backend:(Ops3.Shared { pool }) ~n () in
      Tea.run t ~steps:3;
      check "shared" (Tea.temperature t, Tea.total_heat t))

let test_cuda_backend () =
  let t =
    Tea.create
      ~backend:
        (Ops3.Cuda_sim { Am_ops.Exec3.tile_x = 4; tile_y = 4; tile_z = 2; staged = true })
      ~n ()
  in
  Tea.run t ~steps:3;
  check "cuda staged" (Tea.temperature t, Tea.total_heat t)

let test_dist_backend () =
  let t = Tea.create ~n () in
  Ops3.partition t.Tea.ctx ~n_ranks:3 ~ref_zsize:n;
  Tea.run t ~steps:3;
  check "dist(3)" (Tea.temperature t, Tea.total_heat t)

let test_pencil_backend () =
  let t = Tea.create ~n () in
  Ops3.partition_pencil t.Tea.ctx ~py:2 ~pz:2 ~ref_ysize:n ~ref_zsize:n;
  Tea.run t ~steps:3;
  check "pencil(2x2)" (Tea.temperature t, Tea.total_heat t)

let test_hybrid_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      let t = Tea.create ~n () in
      Ops3.partition t.Tea.ctx ~n_ranks:2 ~ref_zsize:n;
      Ops3.set_rank_execution t.Tea.ctx (Ops3.Rank_shared pool);
      Tea.run t ~steps:3;
      check "dist(2)+shared" (Tea.temperature t, Tea.total_heat t))

let test_reduction_heavy_profile () =
  (* TeaLeaf is reduction-dominated: dots outnumber matvecs per CG
     iteration (2 reductions per iteration + init). *)
  let t = Tea.create ~n () in
  Am_core.Trace.set_enabled (Ops3.trace t.Tea.ctx) true;
  ignore (Tea.step t);
  let events = Am_core.Trace.events (Ops3.trace t.Tea.ctx) in
  let count name =
    List.length
      (List.filter (fun (l : Am_core.Descr.loop) -> l.Am_core.Descr.loop_name = name) events)
  in
  Alcotest.(check bool) "dots >= matvecs" true (count "cg_dot" >= count "cg_matvec");
  Alcotest.(check bool) "ran iterations" true (count "cg_matvec" > 2)

let () =
  Alcotest.run "tealeaf"
    [
      ( "solver",
        [
          Alcotest.test_case "cg converges" `Quick test_cg_converges;
          Alcotest.test_case "heat conserved" `Quick test_heat_conserved;
          Alcotest.test_case "diffuses to uniform" `Quick test_diffuses_towards_uniform;
          Alcotest.test_case "reduction-heavy profile" `Quick
            test_reduction_heavy_profile;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "shared" `Quick test_shared_backend;
          Alcotest.test_case "cuda staged" `Quick test_cuda_backend;
          Alcotest.test_case "dist(3)" `Quick test_dist_backend;
          Alcotest.test_case "pencil 2x2" `Quick test_pencil_backend;
          Alcotest.test_case "hybrid" `Quick test_hybrid_backend;
        ] );
    ]
