bin/cloverleaf3.mli:
