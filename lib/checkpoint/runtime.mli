(** Checkpoint/recovery execution driver (paper Section VI).

    Applications route every parallel loop through {!step}; on a checkpoint
    request the session consults the planner (waiting within one detected
    period for a cheap trigger), snapshots [Save_now] datasets immediately
    and deferred ones at their first-touching loop. Recovery restarts the
    application with a session that skips every loop body until the trigger
    point, restores the saved state, and resumes — the paper's
    fast-forwarding. *)

module Descr = Am_core.Descr

(** How the session reads and writes application datasets by name. *)
type snapshot_fns = {
  fetch : string -> float array;
  restore : string -> float array -> unit;
}

type session

val create : fns:snapshot_fns -> session

(** Loops executed so far. *)
val counter : session -> int

(** Position of the completed checkpoint, once made. *)
val trigger_at : session -> int option

(** True once a checkpoint was made {e and} its deferred datasets have all
    been snapshotted — the earliest point at which {!save_to_file} captures
    a complete restart image. *)
val complete : session -> bool

(** Names snapshotted so far (sorted). *)
val saved_names : session -> string list

(** Total values held in the snapshot store. *)
val saved_units : session -> int

(** Ask for a checkpoint at the next opportunity; with periodic evidence the
    session may defer up to one period. Idempotent while pending. *)
val request_checkpoint : session -> unit

(** Execute one parallel loop: [descr] is its descriptor, [run] its body.
    [gbl_out] lists the loop's global-reduction output buffers: their
    post-loop values are logged on execution, and during fast-forward the
    body is skipped but the logged values are written back — the paper's
    "skipped loops only set the value of op_arg_gbl arguments". *)
val step :
  ?gbl_out:float array list -> session -> descr:Descr.loop -> run:(unit -> unit) ->
  unit

(** Fresh session that fast-forwards a restarted application to the
    checkpoint made by [session]. *)
val begin_recovery : session -> fns:snapshot_fns -> session

(** Persist a made checkpoint to a snapshot file. *)
val save_to_file : session -> path:string -> unit

(** Recovery session from a checkpoint file (for a process that never saw
    the original session). Raises [Am_sysio.Snapshot.Corrupt] on bad
    files. *)
val recover_from_file : path:string -> fns:snapshot_fns -> session
