lib/ops/ops1.ml: Am_checkpoint Am_core Am_simmpi Am_taskpool Array Boundary1 Dist1 Exec1 List Printf Types1 Unix
