lib/ops/dist.ml: Am_core Am_simmpi Am_taskpool Array Boundary Exec Hashtbl List Printf Types
