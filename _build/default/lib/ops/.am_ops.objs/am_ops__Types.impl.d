lib/ops/types.ml: Am_core Array Hashtbl List Printf
