(* Tests for the Aero proxy application: FEM correctness against the
   analytic solution (including the O(h^2) convergence order), hand-coded
   equivalence, and backend equivalence of the assembly + CG pipeline. *)

module App = Am_aero.App
module Hand = Am_aero.Hand
module Kernels = Am_aero.Kernels
module Op2 = Am_op2.Op2
module Umesh = Am_mesh.Umesh
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let mesh = lazy (App.generate_mesh ~n:12)

let reference = lazy (
  let t = App.create (Lazy.force mesh) in
  let _, rms = App.run t ~iters:2 in
  (App.solution t, rms))

let check_matches ?(tol = 1e-8) name (sol, rms) =
  let ref_sol, ref_rms = Lazy.force reference in
  if not (Fa.approx_equal ~tol ref_sol sol) then
    Alcotest.failf "%s: solution diverges (%g)" name (Fa.rel_discrepancy ref_sol sol);
  if Float.abs (rms -. ref_rms) > tol then
    Alcotest.failf "%s: update rms diverges (%g vs %g)" name rms ref_rms

(* ---- FEM correctness ---- *)

let test_cg_converges () =
  let t = App.create (Lazy.force mesh) in
  let iters, _ = App.iteration t in
  Alcotest.(check bool) "within budget" true (iters > 0 && iters < t.App.cg_max_iters)

let test_linear_problem_solved_first_newton () =
  (* The model problem is linear: the second Newton update must be ~0. *)
  let t = App.create (Lazy.force mesh) in
  ignore (App.iteration t);
  let _, rms2 = App.iteration t in
  Alcotest.(check bool) "second update negligible" true (rms2 < 1e-10)

let test_matches_analytic_solution () =
  let t = App.create (Lazy.force mesh) in
  ignore (App.iteration t);
  Alcotest.(check bool) "close to sin(pi x) sin(pi y)" true (App.l2_error t < 0.01)

let test_h2_convergence_order () =
  (* Bilinear elements: L2 error drops ~4x per mesh refinement. *)
  let err n =
    let t = App.create (App.generate_mesh ~n) in
    ignore (App.iteration t);
    App.l2_error t
  in
  let e8 = err 8 and e16 = err 16 in
  Alcotest.(check bool)
    (Printf.sprintf "order >= ~2 (e8 %g, e16 %g)" e8 e16)
    true
    (e16 < e8 /. 3.0)

let test_dirichlet_boundary_exact () =
  let t = App.create (Lazy.force mesh) in
  ignore (App.iteration t);
  let phi = App.solution t in
  let m = Lazy.force mesh in
  Array.iter
    (fun n -> if phi.(n) <> 0.0 then Alcotest.failf "boundary node %d: phi <> 0" n)
    m.Umesh.bedge_nodes

let test_element_matrices_symmetric_psd () =
  (* Every assembled element stiffness is symmetric with non-negative
     diagonal and zero row sums (constant fields are in the kernel's null
     space). *)
  let t = App.create (Lazy.force mesh) in
  ignore (App.iteration t);
  let k = Op2.fetch t.App.ctx t.App.k in
  let n_cells = (Lazy.force mesh).Umesh.n_cells in
  for c = 0 to n_cells - 1 do
    for i = 0 to 3 do
      let d = k.((16 * c) + (4 * i) + i) in
      if d <= 0.0 then Alcotest.failf "cell %d: non-positive diagonal" c;
      let row = ref 0.0 in
      for j = 0 to 3 do
        row := !row +. k.((16 * c) + (4 * i) + j);
        let diff =
          Float.abs (k.((16 * c) + (4 * i) + j) -. k.((16 * c) + (4 * j) + i))
        in
        if diff > 1e-12 then Alcotest.failf "cell %d: K not symmetric" c
      done;
      if Float.abs !row > 1e-12 then Alcotest.failf "cell %d: row sum %g" c !row
    done
  done

(* ---- Hand-coded equivalence ---- *)

let test_hand_matches_op2 () =
  let h = Hand.create (Lazy.force mesh) in
  let _, rms = Hand.run h ~iters:2 in
  check_matches ~tol:1e-12 "hand-coded" (Hand.solution h, rms)

(* ---- Backend equivalence ---- *)

let run_with_backend setup =
  let t = App.create (Lazy.force mesh) in
  setup t;
  let _, rms = App.run t ~iters:2 in
  (App.solution t, rms)

let test_shared_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      check_matches "shared"
        (run_with_backend (fun t ->
             Op2.set_backend t.App.ctx (Op2.Shared { pool; block_size = 32 }))))

let test_vec_backend () =
  check_matches "vec(8)"
    (run_with_backend (fun t ->
         Op2.set_backend t.App.ctx (Op2.Vec { Am_op2.Exec_vec.width = 8 })))

let test_cuda_staged_backend () =
  check_matches "cuda staged"
    (run_with_backend (fun t ->
         Op2.set_backend t.App.ctx
           (Op2.Cuda_sim
              { Am_op2.Exec_cuda.block_size = 32; strategy = Am_op2.Exec_cuda.Staged })))

let test_mpi_rcb_backend () =
  check_matches "mpi rcb(4)"
    (run_with_backend (fun t ->
         Op2.partition t.App.ctx ~n_ranks:4 ~strategy:(Op2.Rcb_on t.App.x)))

let test_mpi_kway_backend () =
  check_matches "mpi kway(3)"
    (run_with_backend (fun t ->
         Op2.partition t.App.ctx ~n_ranks:3
           ~strategy:(Op2.Kway_through t.App.cell_nodes)))

let test_hybrid_backend () =
  Pool.with_pool ~size:2 (fun pool ->
      check_matches "mpi+shared(4)"
        (run_with_backend (fun t ->
             Op2.partition t.App.ctx ~n_ranks:4 ~strategy:(Op2.Rcb_on t.App.x);
             Op2.set_rank_execution t.App.ctx
               (Op2.Rank_shared { pool; block_size = 32 }))))

let test_renumbered () =
  let scrambled = Umesh.scramble ~seed:11 (Lazy.force mesh) in
  let t = App.create scrambled in
  ignore (Op2.renumber t.App.ctx ~through:t.App.cell_nodes);
  ignore (App.run t ~iters:2);
  (* Node order differs from the reference mesh, so compare physics, not
     arrays: the analytic error must be the same small number. *)
  Alcotest.(check bool) "accuracy preserved" true (App.l2_error t < 0.01)

(* Property: on arbitrary smoothly-distorted quad meshes, every assembled
   element stiffness stays symmetric with zero row sums (constants in the
   null space) and positive diagonal — the isoparametric assembly is
   correct for any proper quad, not just the default grading. *)
let prop_element_matrices_on_random_meshes =
  QCheck.Test.make ~name:"element matrices sym/psd on random meshes" ~count:25
    (QCheck.make
       QCheck.Gen.(triple (int_range 4 14) (float_range (-0.08) 0.08)
                     (float_range (-0.05) 0.05)))
    (fun (n, a, b) ->
      (* Monotone coordinate map: |g'| >= 1 - 2pi(|a| + 2|b|) > 0. *)
      let g t = t +. (a *. sin (2.0 *. Kernels.pi *. t))
                +. (b *. sin (4.0 *. Kernels.pi *. t)) in
      let mesh =
        Umesh.generate_mapped ~nx:n ~ny:n
          ~coord:(fun i j ->
            (g (Float.of_int i /. Float.of_int n), g (Float.of_int j /. Float.of_int n)))
          ~bound:(fun _ -> Umesh.boundary_wall)
      in
      let t = App.create mesh in
      ignore (App.iteration t);
      let k = Op2.fetch t.App.ctx t.App.k in
      let ok = ref true in
      for c = 0 to mesh.Umesh.n_cells - 1 do
        for i = 0 to 3 do
          if k.((16 * c) + (4 * i) + i) <= 0.0 then ok := false;
          let row = ref 0.0 in
          for j = 0 to 3 do
            row := !row +. k.((16 * c) + (4 * i) + j);
            if Float.abs (k.((16 * c) + (4 * i) + j) -. k.((16 * c) + (4 * j) + i))
               > 1e-12
            then ok := false
          done;
          if Float.abs !row > 1e-12 then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "aero"
    [
      ( "fem",
        [
          Alcotest.test_case "cg converges" `Quick test_cg_converges;
          Alcotest.test_case "linear: one newton" `Quick
            test_linear_problem_solved_first_newton;
          Alcotest.test_case "matches analytic" `Quick test_matches_analytic_solution;
          Alcotest.test_case "O(h^2) convergence" `Quick test_h2_convergence_order;
          Alcotest.test_case "dirichlet exact" `Quick test_dirichlet_boundary_exact;
          Alcotest.test_case "element K sym/psd" `Quick
            test_element_matrices_symmetric_psd;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hand = op2" `Quick test_hand_matches_op2;
          Alcotest.test_case "shared" `Quick test_shared_backend;
          Alcotest.test_case "vec" `Quick test_vec_backend;
          Alcotest.test_case "cuda staged" `Quick test_cuda_staged_backend;
          Alcotest.test_case "mpi rcb" `Quick test_mpi_rcb_backend;
          Alcotest.test_case "mpi kway" `Quick test_mpi_kway_backend;
          Alcotest.test_case "hybrid" `Quick test_hybrid_backend;
          Alcotest.test_case "renumbered" `Quick test_renumbered;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_element_matrices_on_random_meshes ] );
    ]
