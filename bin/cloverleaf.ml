(* CloverLeaf driver: the OPS proxy application from the command line.

     cloverleaf --nx 256 --ny 256 --steps 87 --backend mpi --ranks 8

   Prints the field summary every few steps (like the original's
   clover.out), the per-loop profile, and optionally verifies against the
   hand-coded baseline. *)

module Ops = Am_ops.Ops
module App = Am_cloverleaf.App

let run nx ny steps backend ranks overlap summary_every verify van_leer check
    analyze trace obs_json faults recover tile tile_par perf =
  Check_common.guard @@ fun () ->
  Am_obs.Obs.reset ();
  if trace <> None then Am_obs.Obs.set_tracing true;
  let advection =
    if van_leer then Am_cloverleaf.App.Van_leer else Am_cloverleaf.App.First_order
  in
  Printf.printf "cloverleaf: %dx%d cells, %d steps, backend %s\n%!" nx ny steps backend;
  Fault_common.with_faults ~app:"cloverleaf" ~faults ~recover @@ fun fc ~recovering ->
  let pool = ref None in
  let t =
    match (if check then "check" else backend) with
    | "check" ->
      let t = App.create ~advection ~nx ~ny () in
      Ops.set_backend t.App.ctx Ops.Check;
      Am_core.Trace.set_enabled (Ops.trace t.App.ctx) true;
      t
    | "seq" -> App.create ~advection ~nx ~ny ()
    | "shared" ->
      let p = Am_taskpool.Pool.create () in
      pool := Some p;
      App.create ~backend:(Ops.Shared { pool = p }) ~advection ~nx ~ny ()
    | "cuda" ->
      App.create ~backend:(Ops.Cuda_sim Am_ops.Exec.default_cuda_config) ~advection ~nx
        ~ny ()
    | "mpi" ->
      let t = App.create ~advection ~nx ~ny () in
      Ops.partition t.App.ctx ~n_ranks:ranks ~ref_ysize:ny;
      t
    | "mpi2d" ->
      let t = App.create ~advection ~nx ~ny () in
      let px = int_of_float (sqrt (float_of_int ranks)) in
      let px = if px * (ranks / px) = ranks then px else 1 in
      let py = ranks / max 1 px in
      Printf.printf "grid decomposition: %dx%d ranks\n%!" px py;
      Ops.partition_grid t.App.ctx ~px ~py ~ref_xsize:nx ~ref_ysize:ny;
      t
    | "hybrid" ->
      let p = Am_taskpool.Pool.create () in
      pool := Some p;
      let t = App.create ~advection ~nx ~ny () in
      Ops.partition t.App.ctx ~n_ranks:ranks ~ref_ysize:ny;
      Ops.set_rank_execution t.App.ctx (Ops.Rank_shared p);
      t
    | other -> failwith (Printf.sprintf "unknown backend %s" other)
  in
  if analyze then Am_core.Trace.set_enabled (Ops.trace t.App.ctx) true;
  Perf_common.enable perf (Ops.trace t.App.ctx);
  if overlap then begin
    if not (backend = "mpi" || backend = "mpi2d" || backend = "hybrid") then
      failwith "--overlap requires --backend mpi, mpi2d or hybrid";
    Ops.set_comm_mode t.App.ctx Ops.Overlap
  end;
  (match tile with
  | Some tile_size ->
    Ops.set_lazy t.App.ctx ~tile_size true;
    Printf.printf "lazy loop chains: %s, tile %d rows\n%!"
      (match (if check then "check" else backend) with
      | "seq" | "check" -> "on"
      | _ -> "recording bypassed on this backend")
      (Ops.tile_size t.App.ctx)
  | None -> ());
  let wf_pool = ref None in
  (match tile_par with
  | Some workers ->
    let p =
      Am_taskpool.Pool.create ?size:(if workers > 0 then Some workers else None) ()
    in
    wf_pool := Some p;
    Ops.set_tile_exec t.App.ctx
      (Ops.Tiled_par { pool = p; tile = Ops.tile_size t.App.ctx });
    Printf.printf "parallel tiling: %s, wavefronts on %d workers, tile %d rows\n%!"
      (match (if check then "check" else backend) with
      | "seq" | "check" -> "on"
      | _ -> "recording bypassed on this backend")
      (Am_taskpool.Pool.size p) (Ops.tile_size t.App.ctx)
  | None -> ());
  (match Fault_common.injector fc with
  | Some f -> Ops.set_fault_injector t.App.ctx f
  | None -> ());
  Fault_common.arm fc ~recovering
    ~recover:(fun path -> Ops.recover_from_file t.App.ctx ~path)
    ~enable:(fun () ->
      Ops.enable_checkpointing t.App.ctx;
      Ops.request_checkpoint t.App.ctx);
  let print_summary step =
    let s = App.field_summary t in
    Printf.printf "  step %4d  dt %.5f  mass %.6f  ie %.4f  ke %.6f  press %.3f\n%!"
      step t.App.dt s.App.mass s.App.ie s.App.ke s.App.press
  in
  let t0 = Unix.gettimeofday () in
  print_summary 0;
  for i = 1 to steps do
    ignore (App.hydro_step t);
    Fault_common.maybe_persist fc (Ops.checkpoint_session t.App.ctx) (fun path ->
        Ops.checkpoint_to_file t.App.ctx ~path);
    if i mod summary_every = 0 || i = steps then print_summary i
  done;
  Printf.printf "wall time: %s\n\n%!" (Am_util.Units.seconds (Unix.gettimeofday () -. t0));
  print_string (Am_core.Profile.report (Ops.profile t.App.ctx));
  (match Ops.comm_stats t.App.ctx with
  | Some s ->
    Printf.printf "\ncommunication: %d messages, %s, %d ghost exchanges\n"
      s.Am_simmpi.Comm.messages
      (Am_util.Units.bytes s.Am_simmpi.Comm.bytes)
      s.Am_simmpi.Comm.exchanges
  | None -> ());
  if check || analyze then
    Check_common.report
      (if analyze then Am_analysis.Analysis.static_ops t.App.ctx
       else Am_analysis.Analysis.check_ops t.App.ctx);
  if verify then begin
    let h = Am_cloverleaf.Hand.create ~advection ~nx ~ny () in
    ignore (Am_cloverleaf.Hand.run h ~steps);
    let d =
      Am_util.Fa.rel_discrepancy (App.density t) (Am_cloverleaf.Hand.density h)
    in
    Printf.printf "\nverification vs hand-coded baseline: max discrepancy %.3e %s\n" d
      (if d < 1e-10 then "(PASS)" else "(FAIL)");
    if d >= 1e-10 then exit 1
  end;
  Perf_common.print perf ~profile:(Ops.profile t.App.ctx) ~trace:(Ops.trace t.App.ctx);
  Am_obs.Obs.finish ?trace ?obs_json
    ~roofline_gbs:Am_perfmodel.Machines.(xeon_e5_2697v2.stream_bw)
    ~loops:(Am_core.Profile.obs_rows (Ops.profile t.App.ctx))
    ();
  (match !wf_pool with Some p -> Am_taskpool.Pool.shutdown p | None -> ());
  match !pool with Some p -> Am_taskpool.Pool.shutdown p | None -> ()

open Cmdliner

let nx = Arg.(value & opt int 128 & info [ "nx" ] ~doc:"Cells in x.")
let ny = Arg.(value & opt int 128 & info [ "ny" ] ~doc:"Cells in y.")
let steps = Arg.(value & opt int 50 & info [ "steps" ] ~doc:"Hydro steps.")

let backend =
  Arg.(value & opt string "seq" & info [ "backend" ] ~doc:"seq, shared, cuda, mpi, mpi2d or hybrid.")

let ranks = Arg.(value & opt int 4 & info [ "ranks" ] ~doc:"Simulated MPI ranks.")

let overlap =
  Arg.(
    value & flag
    & info [ "overlap" ]
        ~doc:
          "Overlap ghost exchanges with interior compute (core/boundary split; \
           distributed backends).")

let summary_every =
  Arg.(value & opt int 10 & info [ "summary-every" ] ~doc:"Field summary interval.")

let verify =
  Arg.(value & flag & info [ "verify" ] ~doc:"Cross-check against the hand-coded baseline.")

let van_leer =
  Arg.(value & flag & info [ "van-leer" ] ~doc:"Second-order van Leer advection.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv) (open in \
           chrome://tracing or ui.perfetto.dev).  Enables span tracing."
        ~docv:"FILE")

let obs_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-json" ]
        ~doc:"Write the runtime counter registry as JSON to $(docv)."
        ~docv:"FILE")

let tile_arg =
  Arg.(
    value
    & opt ~vopt:(Some 0) (some int) None
    & info [ "tile" ]
        ~doc:
          "Lazy loop chains with skewed cache tiling: par_loops are queued and \
           executed tile-by-tile at flush points.  Optional $(docv) is the tile \
           height in rows (bare --tile keeps the default)."
        ~docv:"ROWS")

let tile_par_arg =
  Arg.(
    value
    & opt ~vopt:(Some 0) (some int) None
    & info [ "tile-par" ]
        ~doc:
          "Parallel tiled execution: skew rows and columns independently and \
           dispatch each wavefront's tiles onto a domain pool.  Optional $(docv) \
           is the worker count (bare --tile-par uses the machine default).  \
           Implies --tile; combine with --tile N to pick the tile height."
        ~docv:"WORKERS")

let cmd =
  Cmd.v
    (Cmd.info "cloverleaf" ~doc:"CloverLeaf 2D hydrodynamics proxy application (OPS)")
    Term.(
      const run $ nx $ ny $ steps $ backend $ ranks $ overlap $ summary_every
      $ verify $ van_leer $ Check_common.arg $ Check_common.analyze_arg
      $ trace_arg $ obs_json_arg
      $ Fault_common.faults_arg $ Fault_common.recover_arg $ tile_arg
      $ tile_par_arg $ Perf_common.arg)

let () = exit (Cmd.eval cmd)
