test/test_tealeaf.ml: Alcotest Am_core Am_ops Am_taskpool Am_tealeaf Am_util Array Float Lazy List
