lib/mesh/partition.mli: Csr
