(* Hydra-sim in OP2 form: the production-scale synthetic application.

   Two mesh levels (fine + 2:1 coarsened) and ~16 distinct kernels executed
   ~50 times per iteration: local timesteps, five Runge-Kutta stages of
   gradient/flux/source loops, and a two-level multigrid correction — the
   loop-count and data-volume profile the paper attributes to Hydra. *)

module Op2 = Am_op2.Op2
module Access = Am_core.Access
module Umesh = Am_mesh.Umesh

(* Feature switches: the full pipeline by default; the benchmark harness
   ablates them individually. *)
type features = { viscous : bool; source_terms : bool; multigrid : bool }

let all_features = { viscous = true; source_terms = true; multigrid = true }

type t = {
  ctx : Op2.ctx;
  features : features;
  mesh : Umesh.t;
  coarse_mesh : Umesh.t;
  (* fine sets *)
  nodes : Op2.set;
  cells : Op2.set;
  edges : Op2.set;
  bedges : Op2.set;
  (* coarse sets *)
  coarse_cells : Op2.set;
  coarse_edges : Op2.set;
  (* fine maps *)
  edge_nodes : Op2.map_t;
  edge_cells : Op2.map_t;
  bedge_nodes : Op2.map_t;
  bedge_cell : Op2.map_t;
  cell_nodes : Op2.map_t;
  (* inter-level and coarse maps *)
  fine_to_coarse : Op2.map_t;
  coarse_edge_cells : Op2.map_t;
  (* fine dats *)
  x : Op2.dat;
  q : Op2.dat;
  qold : Op2.dat;
  adt : Op2.dat;
  res : Op2.dat;
  grad : Op2.dat;
  bound : Op2.dat;
  (* coarse dats *)
  coarse_r : Op2.dat;
  coarse_corr : Op2.dat;
  coarse_acc : Op2.dat;
}

let n_state = Kernels.n_state

(* Initial state: free stream plus a smooth deterministic perturbation, so
   the dissipative dynamics have something to relax. *)
let initial_q (mesh : Umesh.t) =
  let centroids = Umesh.cell_centroids mesh in
  let out = Array.make (mesh.Umesh.n_cells * n_state) 0.0 in
  for c = 0 to mesh.Umesh.n_cells - 1 do
    let cx = centroids.(2 * c) and cy = centroids.((2 * c) + 1) in
    let wobble = 0.05 *. sin (2.0 *. cx) *. cos (3.0 *. cy) in
    for n = 0 to n_state - 1 do
      out.((c * n_state) + n) <- Kernels.qinf.(n) *. (1.0 +. wobble)
    done
  done;
  out

(* 2:1 geometric coarsening map: fine cell (i, j) -> coarse (i/2, j/2). *)
let coarsening_map ~nx ~ny =
  Array.init (nx * ny) (fun c ->
      let i = c mod nx and j = c / nx in
      (i / 2) + ((j / 2) * (nx / 2)))

let create ?backend ?(features = all_features) ~nx ~ny () =
  if nx mod 2 <> 0 || ny mod 2 <> 0 then invalid_arg "Hydra.create: nx, ny must be even";
  let mesh = Umesh.generate_airfoil ~nx ~ny () in
  let coarse_mesh = Umesh.generate_airfoil ~nx:(nx / 2) ~ny:(ny / 2) () in
  let ctx = Op2.create ?backend () in
  Op2.decl_const ctx ~name:"rk_alphas" Kernels.rk_alphas;
  let nodes = Op2.decl_set ctx ~name:"nodes" ~size:mesh.Umesh.n_nodes in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
  let bedges = Op2.decl_set ctx ~name:"bedges" ~size:mesh.Umesh.n_bedges in
  let coarse_cells =
    Op2.decl_set ctx ~name:"coarse_cells" ~size:coarse_mesh.Umesh.n_cells
  in
  let coarse_edges =
    Op2.decl_set ctx ~name:"coarse_edges" ~size:coarse_mesh.Umesh.n_edges
  in
  let edge_nodes =
    Op2.decl_map ctx ~name:"edge_nodes" ~from_set:edges ~to_set:nodes ~arity:2
      ~values:mesh.Umesh.edge_nodes
  in
  let edge_cells =
    Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges ~to_set:cells ~arity:2
      ~values:mesh.Umesh.edge_cells
  in
  let bedge_nodes =
    Op2.decl_map ctx ~name:"bedge_nodes" ~from_set:bedges ~to_set:nodes ~arity:2
      ~values:mesh.Umesh.bedge_nodes
  in
  let bedge_cell =
    Op2.decl_map ctx ~name:"bedge_cell" ~from_set:bedges ~to_set:cells ~arity:1
      ~values:mesh.Umesh.bedge_cell
  in
  let cell_nodes =
    Op2.decl_map ctx ~name:"cell_nodes" ~from_set:cells ~to_set:nodes ~arity:4
      ~values:mesh.Umesh.cell_nodes
  in
  let fine_to_coarse =
    Op2.decl_map ctx ~name:"fine_to_coarse" ~from_set:cells ~to_set:coarse_cells
      ~arity:1 ~values:(coarsening_map ~nx ~ny)
  in
  let coarse_edge_cells =
    Op2.decl_map ctx ~name:"coarse_edge_cells" ~from_set:coarse_edges
      ~to_set:coarse_cells ~arity:2 ~values:coarse_mesh.Umesh.edge_cells
  in
  let x = Op2.decl_dat ctx ~name:"x" ~set:nodes ~dim:2 ~data:mesh.Umesh.node_coords in
  let q = Op2.decl_dat ctx ~name:"q" ~set:cells ~dim:n_state ~data:(initial_q mesh) in
  let qold = Op2.decl_dat_zero ctx ~name:"qold" ~set:cells ~dim:n_state in
  let adt = Op2.decl_dat_zero ctx ~name:"adt" ~set:cells ~dim:1 in
  let res = Op2.decl_dat_zero ctx ~name:"res" ~set:cells ~dim:n_state in
  let grad = Op2.decl_dat_zero ctx ~name:"grad" ~set:cells ~dim:(2 * n_state) in
  let bound =
    Op2.decl_dat ctx ~name:"bound" ~set:bedges ~dim:1
      ~data:(Array.map Float.of_int mesh.Umesh.bedge_bound)
  in
  let coarse_r = Op2.decl_dat_zero ctx ~name:"coarse_r" ~set:coarse_cells ~dim:n_state in
  let coarse_corr =
    Op2.decl_dat_zero ctx ~name:"coarse_corr" ~set:coarse_cells ~dim:n_state
  in
  let coarse_acc =
    Op2.decl_dat_zero ctx ~name:"coarse_acc" ~set:coarse_cells ~dim:n_state
  in
  {
    ctx; features; mesh; coarse_mesh; nodes; cells; edges; bedges; coarse_cells;
    coarse_edges;
    edge_nodes; edge_cells; bedge_nodes; bedge_cell; cell_nodes; fine_to_coarse;
    coarse_edge_cells; x; q; qold; adt; res; grad; bound; coarse_r; coarse_corr;
    coarse_acc;
  }

let gradients t =
  Op2.par_loop t.ctx ~name:"grad_zero" ~info:Kernels.grad_zero_info t.cells
    [ Op2.arg_dat t.grad Access.Write ]
    Kernels.grad_zero;
  Op2.par_loop t.ctx ~name:"grad_accum" ~info:Kernels.grad_accum_info t.edges
    [
      Op2.arg_dat_indirect t.x t.edge_nodes 0 Access.Read;
      Op2.arg_dat_indirect t.x t.edge_nodes 1 Access.Read;
      Op2.arg_dat_indirect t.q t.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect t.q t.edge_cells 1 Access.Read;
      Op2.arg_dat_indirect t.grad t.edge_cells 0 Access.Inc;
      Op2.arg_dat_indirect t.grad t.edge_cells 1 Access.Inc;
    ]
    Kernels.grad_accum;
  Op2.par_loop t.ctx ~name:"grad_scale" ~info:Kernels.grad_scale_info t.cells
    [ Op2.arg_dat t.adt Access.Read; Op2.arg_dat t.grad Access.Rw ]
    Kernels.grad_scale

let fluxes t =
  Op2.par_loop t.ctx ~name:"flux_inviscid" ~info:Kernels.flux_inviscid_info t.edges
    [
      Op2.arg_dat_indirect t.x t.edge_nodes 0 Access.Read;
      Op2.arg_dat_indirect t.x t.edge_nodes 1 Access.Read;
      Op2.arg_dat_indirect t.q t.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect t.q t.edge_cells 1 Access.Read;
      Op2.arg_dat_indirect t.adt t.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect t.adt t.edge_cells 1 Access.Read;
      Op2.arg_dat_indirect t.res t.edge_cells 0 Access.Inc;
      Op2.arg_dat_indirect t.res t.edge_cells 1 Access.Inc;
    ]
    Kernels.flux_inviscid;
  if t.features.viscous then
  Op2.par_loop t.ctx ~name:"flux_viscous" ~info:Kernels.flux_viscous_info t.edges
    [
      Op2.arg_dat_indirect t.q t.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect t.q t.edge_cells 1 Access.Read;
      Op2.arg_dat_indirect t.grad t.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect t.grad t.edge_cells 1 Access.Read;
      Op2.arg_dat_indirect t.res t.edge_cells 0 Access.Inc;
      Op2.arg_dat_indirect t.res t.edge_cells 1 Access.Inc;
    ]
    Kernels.flux_viscous;
  Op2.par_loop t.ctx ~name:"flux_boundary" ~info:Kernels.flux_boundary_info t.bedges
    [
      Op2.arg_dat_indirect t.x t.bedge_nodes 0 Access.Read;
      Op2.arg_dat_indirect t.x t.bedge_nodes 1 Access.Read;
      Op2.arg_dat_indirect t.q t.bedge_cell 0 Access.Read;
      Op2.arg_dat_indirect t.res t.bedge_cell 0 Access.Inc;
      Op2.arg_dat t.bound Access.Read;
    ]
    Kernels.flux_boundary;
  if t.features.source_terms then
  Op2.par_loop t.ctx ~name:"source" ~info:Kernels.source_info t.cells
    [
      Op2.arg_dat t.q Access.Read;
      Op2.arg_dat t.grad Access.Read;
      Op2.arg_dat t.res Access.Inc;
    ]
    Kernels.source

let multigrid t =
  Op2.par_loop t.ctx ~name:"mg_zero_r" ~info:Kernels.zero6_info t.coarse_cells
    [ Op2.arg_dat t.coarse_r Access.Write ]
    Kernels.zero6;
  Op2.par_loop t.ctx ~name:"mg_zero_corr" ~info:Kernels.zero6_info t.coarse_cells
    [ Op2.arg_dat t.coarse_corr Access.Write ]
    Kernels.zero6;
  Op2.par_loop t.ctx ~name:"mg_zero_acc" ~info:Kernels.zero6_info t.coarse_cells
    [ Op2.arg_dat t.coarse_acc Access.Write ]
    Kernels.zero6;
  Op2.par_loop t.ctx ~name:"mg_restrict" ~info:Kernels.mg_restrict_info t.cells
    [
      Op2.arg_dat t.q Access.Read;
      Op2.arg_dat t.qold Access.Read;
      Op2.arg_dat_indirect t.coarse_r t.fine_to_coarse 0 Access.Inc;
    ]
    Kernels.mg_restrict;
  for _smooth = 1 to 2 do
    Op2.par_loop t.ctx ~name:"mg_smooth_edge" ~info:Kernels.mg_smooth_edge_info
      t.coarse_edges
      [
        Op2.arg_dat_indirect t.coarse_corr t.coarse_edge_cells 0 Access.Read;
        Op2.arg_dat_indirect t.coarse_corr t.coarse_edge_cells 1 Access.Read;
        Op2.arg_dat_indirect t.coarse_acc t.coarse_edge_cells 0 Access.Inc;
        Op2.arg_dat_indirect t.coarse_acc t.coarse_edge_cells 1 Access.Inc;
      ]
      Kernels.mg_smooth_edge;
    Op2.par_loop t.ctx ~name:"mg_smooth_cell" ~info:Kernels.mg_smooth_cell_info
      t.coarse_cells
      [
        Op2.arg_dat t.coarse_r Access.Read;
        Op2.arg_dat t.coarse_acc Access.Rw;
        Op2.arg_dat t.coarse_corr Access.Write;
      ]
      Kernels.mg_smooth_cell
  done;
  Op2.par_loop t.ctx ~name:"mg_prolong" ~info:Kernels.mg_prolong_info t.cells
    [
      Op2.arg_dat_indirect t.coarse_corr t.fine_to_coarse 0 Access.Read;
      Op2.arg_dat t.q Access.Rw;
    ]
    Kernels.mg_prolong

(* One outer iteration: returns the RMS update of the final RK stage. *)
let iteration t =
  Op2.par_loop t.ctx ~name:"save_state" ~info:Kernels.save_state_info t.cells
    [ Op2.arg_dat t.q Access.Read; Op2.arg_dat t.qold Access.Write ]
    Kernels.save_state;
  Op2.par_loop t.ctx ~name:"calc_dt" ~info:Kernels.calc_dt_info t.cells
    [
      Op2.arg_dat_indirect t.x t.cell_nodes 0 Access.Read;
      Op2.arg_dat_indirect t.x t.cell_nodes 1 Access.Read;
      Op2.arg_dat_indirect t.x t.cell_nodes 2 Access.Read;
      Op2.arg_dat_indirect t.x t.cell_nodes 3 Access.Read;
      Op2.arg_dat t.q Access.Read;
      Op2.arg_dat t.adt Access.Write;
    ]
    Kernels.calc_dt;
  let rms = [| 0.0 |] in
  Array.iter
    (fun alpha ->
      gradients t;
      fluxes t;
      Array.fill rms 0 1 0.0;
      Op2.par_loop t.ctx ~name:"rk_stage" ~info:Kernels.rk_stage_info t.cells
        [
          Op2.arg_dat t.qold Access.Read;
          Op2.arg_dat t.q Access.Write;
          Op2.arg_dat t.res Access.Rw;
          Op2.arg_dat t.adt Access.Read;
          Op2.arg_gbl ~name:"alpha" [| alpha |] Access.Read;
          Op2.arg_gbl ~name:"rms" rms Access.Inc;
        ]
        Kernels.rk_stage)
    Kernels.rk_alphas;
  if t.features.multigrid then multigrid t;
  sqrt (rms.(0) /. Float.of_int t.mesh.Umesh.n_cells)

let run t ~iters =
  let rms = ref 0.0 in
  for _ = 1 to iters do
    rms := iteration t
  done;
  !rms

let solution t = Op2.fetch t.ctx t.q

(* Distinct loops executed per iteration (for reporting). *)
let loops_per_iteration = 2 + (5 * 8) + 8
