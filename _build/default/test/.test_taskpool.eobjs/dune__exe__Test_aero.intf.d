test/test_aero.mli:
