examples/multiblock_heat.mli:
