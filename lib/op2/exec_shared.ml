(* Shared-memory ("OpenMP") backend on the domain pool.

   Conflict-free loops are chunked dynamically across the pool.  Loops with
   indirect writes execute the plan's block schedule: colours run one after
   another (a barrier between colours), blocks of the same colour run
   concurrently — exactly the OpenMP execution strategy of the paper.

   Staging buffers (and global-reduction accumulators) are worker-local and
   pooled: each worker allocates one buffer set on its first chunk and keeps
   it for the whole loop, including across colour rounds.  Global reductions
   are therefore lock-free during execution and combined once at the end by
   a tree merge — there is no per-chunk mutex, and loops without global
   arguments skip the reduction machinery entirely. *)

module Coloring = Am_mesh.Coloring

let run ?resolvers ?compiled pool plan ~set_size ~args ~kernel =
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Exec_common.compile ?resolvers args
  in
  let has_globals = Exec_common.has_globals compiled in
  if not (Plan.has_conflicts plan) then begin
    let states =
      Am_taskpool.Pool.parallel_for_local pool ~lo:0 ~hi:set_size
        ~local:(fun () -> Exec_common.make_buffers compiled)
        ~body:(fun buffers lo hi ->
          for e = lo to hi - 1 do
            Exec_common.run_element compiled buffers kernel e
          done)
    in
    if has_globals then Exec_common.merge_worker_globals compiled states
  end
  else begin
    let blocks = plan.Plan.blocks in
    (* Free-list of buffer sets handed back between colour rounds, so a
       worker joining a later round reuses a set allocated earlier instead
       of growing the pool.  Accumulators carry over safely: they only ever
       accumulate, and each distinct set is merged exactly once at the end. *)
    let free = Atomic.make [] in
    let take () =
      let rec pop () =
        match Atomic.get free with
        | [] -> Exec_common.make_buffers compiled
        | b :: rest as old ->
          if Atomic.compare_and_set free old rest then b else pop ()
      in
      pop ()
    in
    let give_back states =
      List.iter
        (fun b ->
          let rec push () =
            let old = Atomic.get free in
            if not (Atomic.compare_and_set free old (b :: old)) then push ()
          in
          push ())
        states
    in
    let all_states = ref [] in
    let traced = Am_obs.Obs.tracing () in
    Array.iteri
      (fun colour same_color_blocks ->
        if traced then
          Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Colour_round
            (Am_obs.Obs.colour_name colour);
        let states =
          Am_taskpool.Pool.parallel_iter_indices_local pool same_color_blocks
            ~local:take
            ~body:(fun buffers block ->
              let lo, hi = Coloring.block_range blocks block in
              for e = lo to hi - 1 do
                Exec_common.run_element compiled buffers kernel e
              done)
        in
        if has_globals then
          List.iter
            (fun b ->
              if not (List.memq b !all_states) then all_states := b :: !all_states)
            states;
        give_back states;
        if traced then Am_obs.Obs.end_span ())
      plan.Plan.block_coloring.Coloring.by_color;
    if has_globals then Exec_common.merge_worker_globals compiled !all_states
  end
