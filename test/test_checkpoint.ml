(* Tests for the checkpoint planner (Fig 8 logic) and the fast-forward
   recovery runtime.  The "dpor" group (also under `dune build @dpor`)
   additionally exhausts a fixed crash/restart scenario over every
   delivery interleaving within a bound: wherever the deliver-step clock
   places the crash, restore-then-replay must rebuild the fault-free
   bits.  Failing schedules print a replay token (AM_SCHED=<token>). *)

module Planner = Am_checkpoint.Planner
module Runtime = Am_checkpoint.Runtime
module Descr = Am_core.Descr
module Access = Am_core.Access
module Fault = Am_simmpi.Fault
module Finding = Am_analysis.Finding
module Schedcheck = Am_schedcheck.Schedcheck
module Fa = Am_util.Fa

(* The Airfoil loop chain of Fig 8, as descriptors.  Dataset dims follow the
   figure: bounds(1), x(2), q(4), q_old(4), adt(1), res(4); rms is a global. *)
let arg ?(kind = Descr.Direct) name dim access =
  { Descr.dat_name = name; dat_id = 0; dim; access; kind }

let indirect name dim access =
  arg ~kind:(Descr.Indirect { map_name = "map"; map_index = 0; ratio = 1.0 }) name dim access

let gbl name access =
  { Descr.dat_name = name; dat_id = -1; dim = 1; access; kind = Descr.Global }

let mk name args =
  { Descr.loop_name = name; set_name = "cells"; set_size = 1000; args;
    info = Descr.default_kernel_info }

let save_soln = mk "save_soln" [ arg "q" 4 Access.Read; arg "q_old" 4 Access.Write ]

let adt_calc =
  mk "adt_calc"
    [ indirect "x" 2 Access.Read; arg "q" 4 Access.Read; arg "adt" 1 Access.Write ]

let res_calc =
  mk "res_calc"
    [
      indirect "x" 2 Access.Read;
      indirect "q" 4 Access.Read;
      indirect "adt" 1 Access.Read;
      indirect "res" 4 Access.Inc;
    ]

let bres_calc =
  mk "bres_calc"
    [
      indirect "x" 2 Access.Read;
      indirect "q" 4 Access.Read;
      indirect "adt" 1 Access.Read;
      indirect "res" 4 Access.Inc;
      arg "bounds" 1 Access.Read;
    ]

let update =
  mk "update"
    [
      arg "q_old" 4 Access.Read;
      arg "q" 4 Access.Write;
      arg "res" 4 Access.Rw;
      gbl "rms" Access.Inc;
    ]

(* One Airfoil iteration: save_soln every second inner cycle, as in Fig 8. *)
let airfoil_cycle = [ adt_calc; res_calc; bres_calc; update ]

let fig8_sequence =
  (save_soln :: airfoil_cycle) @ airfoil_cycle @ (save_soln :: airfoil_cycle)
  @ airfoil_cycle

(* ---- Planner: Fig 8's units column ---- *)

let units_at i = (Planner.plan_at fig8_sequence ~trigger:i).Planner.units

let test_fig8_units () =
  (* Loops 1..9 of the figure: save_soln adt res bres update adt res bres
     update, with units 8 12 13 13 8 12 13 13 8. *)
  let expected = [ 8; 12; 13; 13; 8; 12; 13; 13; 8 ] in
  List.iteri
    (fun i e -> Alcotest.(check int) (Printf.sprintf "units at loop %d" (i + 1)) e (units_at i))
    expected

let test_fig8_decisions_at_adt_calc () =
  (* Paper: triggering before adt_calc saves q now, drops adt, defers res to
     res_calc and q_old to update; x and bounds are never saved. *)
  let plan = Planner.plan_at fig8_sequence ~trigger:1 in
  let find name =
    List.find (fun ((d : Planner.dataset), _) -> d.Planner.ds_name = name)
      plan.Planner.decisions
    |> snd
  in
  Alcotest.(check string) "q saved now" "save" (Planner.decision_to_string (find "q"));
  Alcotest.(check string) "adt dropped" "drop" (Planner.decision_to_string (find "adt"));
  (match find "res" with
  | Planner.Save_at i ->
    Alcotest.(check string) "res deferred to res_calc" "res_calc"
      (List.nth fig8_sequence i).Descr.loop_name
  | d -> Alcotest.failf "res: expected deferral, got %s" (Planner.decision_to_string d));
  (match find "q_old" with
  | Planner.Save_at i ->
    Alcotest.(check string) "q_old deferred to update" "update"
      (List.nth fig8_sequence i).Descr.loop_name
  | d -> Alcotest.failf "q_old: expected deferral, got %s" (Planner.decision_to_string d));
  Alcotest.(check string) "x never saved" "not saved"
    (Planner.decision_to_string (find "x"));
  Alcotest.(check string) "bounds never saved" "not saved"
    (Planner.decision_to_string (find "bounds"))

let test_fig8_globals () =
  let plan = Planner.plan_at fig8_sequence ~trigger:0 in
  match List.assoc_opt "rms" plan.Planner.globals with
  | None -> Alcotest.fail "rms should be tracked"
  | Some writes ->
    Alcotest.(check bool) "rms saved at every update" true
      (List.for_all
         (fun i -> (List.nth fig8_sequence i).Descr.loop_name = "update")
         writes)

let test_period_detection () =
  (* The 9-loop cycle of the paper repeats. *)
  Alcotest.(check (option int)) "period of fig8 chain" (Some 9)
    (Planner.detect_period fig8_sequence);
  Alcotest.(check (option int)) "aperiodic" None
    (Planner.detect_period [ save_soln; adt_calc; res_calc ]);
  Alcotest.(check (option int)) "single loop repeated" (Some 1)
    (Planner.detect_period [ update; update; update ])

let test_speculative_waits_for_cheap_point () =
  (* Requested before res_calc (units 13): speculative planning waits for
     the next update/save_soln-class point (units 8). *)
  let t = Planner.speculative_trigger fig8_sequence ~requested:2 in
  Alcotest.(check bool) "cheaper trigger chosen" true
    ((Planner.plan_at fig8_sequence ~trigger:t).Planner.units = 8);
  Alcotest.(check bool) "within one period" true (t >= 2 && t < 2 + 9)

let test_best_trigger () =
  let t = Planner.best_trigger fig8_sequence in
  Alcotest.(check int) "global best is a 8-unit point" 8 (units_at t)

let test_render_figure () =
  let s = Planner.render_figure fig8_sequence in
  Alcotest.(check bool) "mentions res_calc" true
    (Str_contains.contains s "res_calc");
  Alcotest.(check bool) "has units column" true
    (Str_contains.contains s "units if triggered here")

(* ---- Runtime: checkpoint and fast-forward recovery ---- *)

(* A tiny two-dataset program: u' = u + shift; every cycle is [modify;
   accumulate]. State lives in plain arrays so snapshots are trivial. *)
type app = { u : float array; acc : float array }

let make_app () = { u = Array.init 8 Float.of_int; acc = Array.make 8 0.0 }

let app_fns app =
  {
    Runtime.fetch =
      (function
        | "u" -> Array.copy app.u
        | "acc" -> Array.copy app.acc
        | name -> Alcotest.failf "unknown dataset %s" name);
    restore =
      (fun name data ->
        match name with
        | "u" -> Array.blit data 0 app.u 0 (Array.length data)
        | "acc" -> Array.blit data 0 app.acc 0 (Array.length data)
        | name -> Alcotest.failf "unknown dataset %s" name);
  }

let modify_loop = mk "modify" [ arg "u" 1 Access.Rw ]
let accum_loop = mk "accum" [ arg "u" 1 Access.Read; arg "acc" 1 Access.Rw ]

let run_app ?(request_at = -1) session app cycles =
  for cycle = 0 to cycles - 1 do
    if cycle = request_at then Runtime.request_checkpoint session;
    Runtime.step session ~descr:modify_loop ~run:(fun () ->
        Array.iteri (fun i v -> app.u.(i) <- v +. 1.0) app.u);
    Runtime.step session ~descr:accum_loop ~run:(fun () ->
        Array.iteri (fun i v -> app.acc.(i) <- app.acc.(i) +. v) app.u)
  done

let test_runtime_checkpoint_and_recovery () =
  (* Uninterrupted run: the truth. *)
  let truth = make_app () in
  run_app (Runtime.create ~fns:(app_fns truth)) truth 10;
  (* Run with a checkpoint requested partway. *)
  let original = make_app () in
  let session = Runtime.create ~fns:(app_fns original) in
  run_app ~request_at:4 session original 10;
  Alcotest.(check bool) "checkpoint was made" true (Runtime.trigger_at session <> None);
  Alcotest.(check bool) "checkpoint unchanged results" true
    (Am_util.Fa.approx_equal ~tol:0.0 truth.acc original.acc);
  (* "Failure": restart from scratch with a recovery session. *)
  let recovered = make_app () in
  (* Wipe the state to prove recovery does not depend on it. *)
  Array.fill recovered.u 0 8 (-999.0);
  Array.fill recovered.acc 0 8 (-999.0);
  let r = Runtime.begin_recovery session ~fns:(app_fns recovered) in
  run_app r recovered 10;
  Alcotest.(check bool) "recovered u matches" true
    (Am_util.Fa.approx_equal ~tol:0.0 truth.u recovered.u);
  Alcotest.(check bool) "recovered acc matches" true
    (Am_util.Fa.approx_equal ~tol:0.0 truth.acc recovered.acc)

let test_runtime_saves_less_than_everything () =
  (* With periodic evidence the session should not snapshot datasets that
     are dead at the trigger. Here both are live, so instead check the
     trivial bound: saved units <= total state. *)
  let app = make_app () in
  let session = Runtime.create ~fns:(app_fns app) in
  run_app ~request_at:5 session app 10;
  Alcotest.(check bool) "some data saved" true (Runtime.saved_units session > 0);
  Alcotest.(check bool) "bounded by state size" true (Runtime.saved_units session <= 16)

let test_runtime_immediate_without_period () =
  (* Request a checkpoint on the very first cycle: no periodicity evidence
     yet, so everything modified is saved and the trigger is immediate. *)
  let app = make_app () in
  let session = Runtime.create ~fns:(app_fns app) in
  run_app ~request_at:0 session app 3;
  match Runtime.trigger_at session with
  | None -> Alcotest.fail "expected a checkpoint"
  | Some t -> Alcotest.(check int) "immediate trigger" 0 t

let test_file_persistence () =
  (* Checkpoint, write to disk, "reboot" (a fresh process would only have
     the file), recover from the file, finish, compare. *)
  let truth = make_app () in
  run_app (Runtime.create ~fns:(app_fns truth)) truth 10;
  let original = make_app () in
  let session = Runtime.create ~fns:(app_fns original) in
  run_app ~request_at:4 session original 10;
  let path = Filename.temp_file "am_checkpoint" ".snap" in
  Runtime.save_to_file session ~path;
  let recovered = make_app () in
  Array.fill recovered.u 0 8 (-1.0);
  Array.fill recovered.acc 0 8 (-1.0);
  let r = Runtime.recover_from_file ~path ~fns:(app_fns recovered) in
  run_app r recovered 10;
  Sys.remove path;
  Alcotest.(check bool) "recovered from file" true
    (Am_util.Fa.approx_equal ~tol:0.0 truth.acc recovered.acc)

let test_file_persistence_rejects_garbage () =
  let path = Filename.temp_file "am_checkpoint" ".snap" in
  Am_sysio.Snapshot.save path [ ("unrelated", [| 1.0 |]) ];
  (match Runtime.recover_from_file ~path ~fns:(app_fns (make_app ())) with
  | exception Am_sysio.Snapshot.Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage checkpoint accepted");
  Sys.remove path;
  (* Saving before any checkpoint was made is a usage error. *)
  let s = Runtime.create ~fns:(app_fns (make_app ())) in
  match Runtime.save_to_file s ~path with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- Snapshot damage: detected, never silently restored ---- *)

(* A session snapshot written to disk, for the damage cases below. *)
let write_snapshot () =
  let app = make_app () in
  let session = Runtime.create ~fns:(app_fns app) in
  run_app ~request_at:4 session app 10;
  let path = Filename.temp_file "am_checkpoint" ".snap" in
  Runtime.save_to_file session ~path;
  path

let expect_corrupt what path =
  match Runtime.recover_from_file ~path ~fns:(app_fns (make_app ())) with
  | exception Am_sysio.Snapshot.Corrupt _ -> Sys.remove path
  | _ ->
    Sys.remove path;
    Alcotest.failf "%s snapshot accepted" what

let test_truncated_snapshot_rejected () =
  let path = write_snapshot () in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - (String.length full / 3))));
  expect_corrupt "truncated" path

let test_bitflip_snapshot_rejected () =
  (* Flip one payload bit well past the header: only the body checksum can
     catch this — the framing still parses. *)
  let path = write_snapshot () in
  let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let pos = Bytes.length full - 11 in
  Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0x10));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc full);
  (match Runtime.recover_from_file ~path ~fns:(app_fns (make_app ())) with
  | exception Am_sysio.Snapshot.Corrupt msg ->
    Sys.remove path;
    if not (Str_contains.contains msg "checksum") then
      Alcotest.failf "corruption not attributed to the checksum: %s" msg
  | _ ->
    Sys.remove path;
    Alcotest.fail "bit-flipped snapshot silently restored")

(* ---- Restore-then-replay equivalence after a mid-period crash ---- *)

let test_restore_then_replay_after_midperiod_crash () =
  (* The run "crashes" mid-cycle — after modify but before accum — later
     than the persisted snapshot.  Restarting from the file and replaying
     from the top must still land exactly on the uninterrupted result. *)
  let truth = make_app () in
  run_app (Runtime.create ~fns:(app_fns truth)) truth 10;
  let original = make_app () in
  let session = Runtime.create ~fns:(app_fns original) in
  run_app ~request_at:4 session original 7;
  let path = Filename.temp_file "am_checkpoint" ".snap" in
  Runtime.save_to_file session ~path;
  (* One and a half more cycles, then the crash. *)
  Runtime.step session ~descr:modify_loop ~run:(fun () ->
      Array.iteri (fun i v -> original.u.(i) <- v +. 1.0) original.u);
  let recovered = make_app () in
  Array.fill recovered.u 0 8 nan;
  Array.fill recovered.acc 0 8 nan;
  let r = Runtime.recover_from_file ~path ~fns:(app_fns recovered) in
  run_app r recovered 10;
  Sys.remove path;
  Alcotest.(check bool) "replayed u matches truth" true
    (Am_util.Fa.approx_equal ~tol:0.0 truth.u recovered.u);
  Alcotest.(check bool) "replayed acc matches truth" true
    (Am_util.Fa.approx_equal ~tol:0.0 truth.acc recovered.acc)

(* ---- Bounded-DPOR exploration of crash/restart schedules ------------------ *)

(* The crash fires when a rank's deliver-step clock reaches the spec'd
   count, so reordering deliveries moves the crash point — every
   interleaving within the bound is a different mid-run crash, and each
   must recover through the checkpoint to the fault-free bits.  All
   channels are coupled through the shared clocks and injector stream,
   hence [Schedcheck.conflict_all]. *)
let test_dpor_crash_restart_exhausted () =
  let spec =
    match Fault.spec_of_string "seed=31337,crash=1@80" with
    | Ok s -> s
    | Error m -> Alcotest.failf "bad spec: %s" m
  in
  let proxy = Sched_util.clover_proxy in
  let prog () =
    match Sched_util.run_schedule proxy ~n_ranks:2 ~spec ~recover:true with
    | Ok solution -> solution
    | Error f -> failwith (Finding.to_string f)
  in
  let reference = Sched_util.clean proxy ~n_ranks:2 in
  let solution, r =
    Sched_util.assert_uniform ~bound:1 ~max_executions:600
      ~dependent:Schedcheck.conflict_all
      ~equal:(fun a b -> Fa.approx_equal ~tol:0.0 a b)
      ~what:"cloverleaf(2) crash/restart" prog
  in
  if not (Fa.approx_equal ~tol:0.0 reference solution) then
    Alcotest.failf
      "recovered run is not bitwise equal to fault-free (%g)"
      (Fa.rel_discrepancy reference solution);
  if Sched_util.am_sched = None && r.Schedcheck.rp_executions <= 1 then
    Alcotest.fail "crash scenario offered no delivery decisions to explore"

let () =
  Alcotest.run "checkpoint"
    [
      ( "planner",
        [
          Alcotest.test_case "fig8 units" `Quick test_fig8_units;
          Alcotest.test_case "fig8 decisions at adt_calc" `Quick
            test_fig8_decisions_at_adt_calc;
          Alcotest.test_case "fig8 globals" `Quick test_fig8_globals;
          Alcotest.test_case "period detection" `Quick test_period_detection;
          Alcotest.test_case "speculative trigger" `Quick
            test_speculative_waits_for_cheap_point;
          Alcotest.test_case "best trigger" `Quick test_best_trigger;
          Alcotest.test_case "render" `Quick test_render_figure;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "checkpoint + recovery" `Quick
            test_runtime_checkpoint_and_recovery;
          Alcotest.test_case "bounded saves" `Quick test_runtime_saves_less_than_everything;
          Alcotest.test_case "immediate without period" `Quick
            test_runtime_immediate_without_period;
          Alcotest.test_case "file persistence" `Quick test_file_persistence;
          Alcotest.test_case "file garbage rejected" `Quick
            test_file_persistence_rejects_garbage;
        ] );
      ( "damage",
        [
          Alcotest.test_case "truncated snapshot rejected" `Quick
            test_truncated_snapshot_rejected;
          Alcotest.test_case "bit flip caught by checksum" `Quick
            test_bitflip_snapshot_rejected;
          Alcotest.test_case "restore-then-replay after mid-period crash" `Quick
            test_restore_then_replay_after_midperiod_crash;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "crash/restart schedules exhausted" `Quick
            test_dpor_crash_restart_exhausted;
        ] );
    ]
