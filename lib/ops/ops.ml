(* Public facade of the multi-block structured-mesh active library (OPS).

   Usage:

   {[
     let ctx = Ops.create () in
     let grid = Ops.decl_block ctx ~name:"grid" in
     let density =
       Ops.decl_dat ctx ~name:"density" ~block:grid ~xsize:nx ~ysize:ny ()
     in
     ...
     Ops.par_loop ctx ~name:"ideal_gas" grid (Ops.interior density)
       [ Ops.arg_dat density Ops.stencil_point Access.Read;
         Ops.arg_dat pressure Ops.stencil_point Access.Write ]
       (fun a -> a.(1).(0) <- (gamma -. 1.0) *. a.(0).(0) *. energy)
   ]}

   As with OP2, the backend is a property of the context: sequential,
   shared-memory (rows across the domain pool), the tiled GPU simulator, or
   the row-decomposed distributed runtime. *)

module Access = Am_core.Access
module Descr = Am_core.Descr
module Profile = Am_core.Profile
module Trace = Am_core.Trace

type block = Types.block
type dat = Types.dat
type arg = Types.arg
type range = Types.range = { xlo : int; xhi : int; ylo : int; yhi : int }
type stencil = Types.stencil

let stencil_point = Types.stencil_point

(* Common 2D stencils, named as OPS applications name them. *)
let stencil_2d_00 = stencil_point
let stencil_2d_5pt : stencil = [| (0, 0); (-1, 0); (1, 0); (0, -1); (0, 1) |]
let stencil_2d_plus1x : stencil = [| (0, 0); (1, 0) |]
let stencil_2d_plus1y : stencil = [| (0, 0); (0, 1) |]
let stencil_2d_minus1x : stencil = [| (0, 0); (-1, 0) |]
let stencil_2d_minus1y : stencil = [| (0, 0); (0, -1) |]
let stencil_2d_quad : stencil = [| (0, 0); (1, 0); (0, 1); (1, 1) |]

let stencil_offsets (s : stencil) = s

type backend =
  | Seq
  | Shared of { pool : Am_taskpool.Pool.t }
  | Cuda_sim of Exec.cuda_config
  | Check (* sanitizer: seq semantics + access-descriptor guards *)

(* Distributed state: row decomposition or the 2D process grid. *)
type dist_state = Rows of Dist.t | Grid of Dist2.t

type ctx = {
  env : Types.env;
  mutable backend : backend;
  profile : Profile.t;
  trace : Trace.t;
  mutable dist : dist_state option;
  mutable checkpoint : Am_checkpoint.Runtime.session option;
  mutable fault : Am_simmpi.Fault.t option;
}

let create ?(backend = Seq) () =
  {
    env = Types.make_env ();
    backend;
    profile = Profile.create ();
    trace = Trace.create ();
    dist = None;
    checkpoint = None;
    fault = None;
  }

let set_backend ctx backend =
  (match (backend, ctx.dist) with
  | (Shared _ | Cuda_sim _ | Check), Some _ ->
    invalid_arg "Ops.set_backend: context is partitioned; ranks execute sequentially"
  | (Seq | Shared _ | Cuda_sim _ | Check), _ -> ());
  ctx.backend <- backend

let backend ctx = ctx.backend
let profile ctx = ctx.profile
let trace ctx = ctx.trace

(* ---- Declarations ------------------------------------------------------ *)

let decl_block ctx ~name = Types.decl_block ctx.env ~name

let decl_dat ctx ~name ~block ~xsize ~ysize ?halo ?dim () =
  Types.decl_dat ctx.env ~name ~block ~xsize ~ysize ?halo ?dim ()

let blocks ctx = Types.blocks ctx.env
let dats ctx = Types.dats ctx.env

(* ---- Argument constructors --------------------------------------------- *)

(* Access-mode legality fails here, at construction, with the dataset name
   in hand (the loop-time [validate_args] re-checks as a backstop). *)
let require_valid_on_dat ~ctor (dat : Types.dat) access =
  if not (Access.valid_on_dat access) then
    invalid_arg
      (Printf.sprintf
         "Ops.%s: access %s is not valid on dataset %s (datasets accept \
          Read/Write/Inc/Rw; Min/Max are global reductions — use arg_gbl)"
         ctor (Access.to_string access) dat.Types.dat_name)

let arg_dat dat stencil access : arg =
  require_valid_on_dat ~ctor:"arg_dat" dat access;
  Types.Arg_dat { dat; stencil; access; stride = Types.unit_stride }

(* Grid-transfer arguments for multigrid: [arg_dat_restrict] reads a finer
   dataset from a coarse-grid loop (accessed point = factor * iteration
   point + offset); [arg_dat_prolong] reads a coarser dataset from a
   fine-grid loop (point / factor + offset). Read-only. *)
let arg_dat_restrict dat stencil ~factor access : arg =
  require_valid_on_dat ~ctor:"arg_dat_restrict" dat access;
  Types.Arg_dat
    { dat; stencil; access; stride = { Types.xn = factor; xd = 1; yn = factor; yd = 1 } }

let arg_dat_prolong dat stencil ~factor access : arg =
  require_valid_on_dat ~ctor:"arg_dat_prolong" dat access;
  Types.Arg_dat
    { dat; stencil; access; stride = { Types.xn = 1; xd = factor; yn = 1; yd = factor } }

let arg_gbl ~name buf access : arg =
  if not (Access.valid_on_gbl access) then
    invalid_arg
      (Printf.sprintf
         "Ops.arg_gbl: access %s is not valid on global %s (globals accept \
          Read/Inc/Min/Max)"
         (Access.to_string access) name);
  Types.Arg_gbl { name; buf; access }
let arg_idx : arg = Types.Arg_idx

(* ---- Data access -------------------------------------------------------- *)

let interior = Types.interior
let fill = Types.fill
let get = Types.get
let set = Types.set

let fetch_interior ctx dat =
  match ctx.dist with
  | Some (Rows d) -> Dist.fetch_interior d dat
  | Some (Grid d) -> Dist2.fetch_interior d dat
  | None -> Types.fetch_interior dat

(* Direct initialisation of every addressable point (ghosts included): the
   function receives logical (x, y) and the component index. Pushes to the
   distributed windows when partitioned. *)
let init ctx dat f =
  for y = Types.y_min dat to Types.y_max dat - 1 do
    for x = Types.x_min dat to Types.x_max dat - 1 do
      for c = 0 to dat.Types.dim - 1 do
        Types.set dat ~x ~y ~c (f x y c)
      done
    done
  done;
  match ctx.dist with
  | Some (Rows d) -> Dist.push d dat
  | Some (Grid d) -> Dist2.push d dat
  | None -> ()

(* ---- Partitioning -------------------------------------------------------- *)

let check_partitionable ctx =
  if ctx.dist <> None then invalid_arg "Ops.partition: context already partitioned";
  match ctx.backend with
  | Seq -> ()
  | Shared _ | Cuda_sim _ | Check ->
    invalid_arg "Ops.partition: switch the backend to Seq before partitioning"

let dist_comm ctx =
  match ctx.dist with
  | None -> None
  | Some (Rows d) -> Some d.Dist.comm
  | Some (Grid d) -> Some d.Dist2.comm

(* Route the distributed runtime's messages through the fault injector's
   reliable transport; a loop-counter crash trigger fires on any backend. *)
let set_fault_injector ctx f =
  ctx.fault <- Some f;
  match dist_comm ctx with
  | Some comm -> Am_simmpi.Comm.attach_fault comm f
  | None -> ()

let fault_injector ctx = ctx.fault

let attach_pending_fault ctx =
  match (ctx.fault, dist_comm ctx) with
  | Some f, Some comm -> Am_simmpi.Comm.attach_fault comm f
  | _ -> ()

let partition ctx ~n_ranks ~ref_ysize =
  check_partitionable ctx;
  ctx.dist <- Some (Rows (Dist.build ctx.env ~n_ranks ~ref_ysize));
  attach_pending_fault ctx

(* 2D grid decomposition (px x py ranks), as the production OPS uses for
   CloverLeaf at scale: both dimensions split, two-phase ghost exchange
   carrying the corners. *)
let partition_grid ctx ~px ~py ~ref_xsize ~ref_ysize =
  check_partitionable ctx;
  ctx.dist <- Some (Grid (Dist2.build ctx.env ~px ~py ~ref_xsize ~ref_ysize));
  attach_pending_fault ctx

(* Hybrid MPI+OpenMP: run each rank's rows on a shared pool. *)
type rank_execution = Dist.rank_exec = Rank_seq | Rank_shared of Am_taskpool.Pool.t

let set_rank_execution ctx exec =
  match ctx.dist with
  | None -> invalid_arg "Ops.set_rank_execution: partition first"
  | Some (Rows d) -> d.Dist.rank_exec <- exec
  | Some (Grid d) ->
    d.Dist2.rank_exec <-
      (match exec with
      | Rank_seq -> Dist2.Rank_seq
      | Rank_shared pool -> Dist2.Rank_shared pool)

(* Halo-exchange policy, as for OP2: [On_demand] skips exchanges whose
   ghost rows are still fresh; [Eager] exchanges before every stencil read. *)
type halo_policy = On_demand | Eager

let set_halo_policy ctx policy =
  match ctx.dist with
  | None -> invalid_arg "Ops.set_halo_policy: partition first"
  | Some (Rows d) -> d.Dist.eager_halo <- (policy = Eager)
  | Some (Grid d) -> d.Dist2.eager_halo <- (policy = Eager)

(* Communication mode, as for OP2: [Blocking] completes ghost exchanges
   before the loop body; [Overlap] posts them, runs the interior sub-range
   (points whose stencils stay inside the owned region) while the messages
   are in flight, waits, then runs the boundary strips. *)
type comm_mode = Blocking | Overlap

let set_comm_mode ctx mode =
  match ctx.dist with
  | None -> invalid_arg "Ops.set_comm_mode: partition first"
  | Some (Rows d) -> d.Dist.overlap <- (mode = Overlap)
  | Some (Grid d) -> d.Dist2.overlap <- (mode = Overlap)

let comm_mode ctx =
  match ctx.dist with
  | Some (Rows d) when d.Dist.overlap -> Overlap
  | Some (Grid d) when d.Dist2.overlap -> Overlap
  | Some (Rows _) | Some (Grid _) | None -> Blocking

let comm_stats ctx =
  match ctx.dist with
  | None -> None
  | Some (Rows d) -> Some (Am_simmpi.Comm.stats d.Dist.comm)
  | Some (Grid d) -> Some (Am_simmpi.Comm.stats d.Dist2.comm)

(* ---- Multi-block halos ---------------------------------------------------- *)

type halo = Multiblock.halo
type orientation = Multiblock.orientation

let identity_orientation = Multiblock.identity_orientation

let decl_halo ctx ~name ~src ~dst ~src_range ~dst_range ?orientation () =
  if ctx.dist <> None then
    invalid_arg "Ops.decl_halo: declare halos before partitioning";
  Multiblock.decl_halo ~name ~src ~dst ~src_range ~dst_range ?orientation ()

let halo_transfer ctx halos =
  if ctx.dist <> None then
    invalid_arg "Ops.halo_transfer: inter-block halos unsupported on a partitioned \
                 context (partition a single block instead)";
  Multiblock.transfer_all halos

(* ---- The parallel loop ----------------------------------------------------- *)

let now () = Unix.gettimeofday ()

(* Per-call-site loop handle: caches the compiled gather/scatter executor
   (offset tables and specialised closures) so repeated invocations skip
   argument compilation.  Freshness is a handful of pointer compares per
   call; a changed dataset array, stencil or access recompiles. *)
type handle = { mutable h_exec : Exec.compiled_arg array option }

let make_handle () = { h_exec = None }

let resolve_compiled handle args =
  match handle.h_exec with
  | Some c when Exec.compiled_matches c args ->
    Am_obs.Counters.incr Am_obs.Obs.exec_hits;
    c
  | Some _ | None ->
    Am_obs.Counters.incr Am_obs.Obs.exec_misses;
    let c =
      Am_obs.Obs.span ~cat:Am_obs.Tracer.Plan "compile" (fun () -> Exec.compile args)
    in
    handle.h_exec <- Some c;
    c

let par_loop ctx ~name ?(info = Descr.default_kernel_info) ?handle block range args
    kernel =
  Types.validate_args ~block ~range args;
  let descr = Types.describe ~name ~block ~range ~info args in
  Trace.record ctx.trace descr;
  (* The injected rank crash counts parallel loops on the injector itself,
     so the trigger position survives a recovery restart's fresh context. *)
  (match ctx.fault with
  | Some f -> Am_simmpi.Fault.note_loop f
  | None -> ());
  let t0 = now () in
  let traced = Am_obs.Obs.tracing () in
  if traced then Am_obs.Obs.begin_span ~cat:Am_obs.Tracer.Loop name;
  let halo_seconds = ref 0.0 and overlap_seconds = ref 0.0 in
  let execute () =
    match ctx.dist with
    | Some (Rows d) -> Dist.par_loop ~halo_seconds ~overlap_seconds d ~range ~args ~kernel
    | Some (Grid d) -> Dist2.par_loop ~halo_seconds ~overlap_seconds d ~range ~args ~kernel
    | None -> (
      let compiled = Option.map (fun h -> resolve_compiled h args) handle in
      match ctx.backend with
      | Seq -> Exec.run_seq ?compiled ~range ~args ~kernel ()
      | Shared { pool } -> Exec.run_shared ?compiled pool ~range ~args ~kernel
      | Cuda_sim config -> Exec.run_cuda ?compiled config ~range ~args ~kernel
      | Check -> Exec_check.run ~name ~range ~args ~kernel ())
  in
  (match ctx.checkpoint with
  | None -> execute ()
  | Some session ->
    let gbl_out =
      List.filter_map
        (function
          | Types.Arg_gbl { buf; access; _ } when access <> Access.Read -> Some buf
          | Types.Arg_gbl _ | Types.Arg_dat _ | Types.Arg_idx -> None)
        args
    in
    Am_checkpoint.Runtime.step ~gbl_out session ~descr ~run:execute);
  if traced then Am_obs.Obs.end_span ();
  let seconds = now () -. t0 in
  Profile.record ctx.profile ~name ~seconds ~bytes:(Descr.total_bytes descr)
    ~elements:(Types.range_size range);
  if ctx.dist <> None then
    Profile.record_halo ctx.profile ~name ~overlapped:!overlap_seconds
      ~seconds:!halo_seconds ()

(* ---- Physical boundary conditions (update_halo) --------------------------- *)

type centering = Boundary.centering = Cell | Node

(* Reflective ghost-ring update with optional sign flips (velocity normal
   components) and centre-aware mirroring for staggered fields. This is the
   library-provided equivalent of CloverLeaf's update_halo. *)
let mirror_halo ctx ?(depth = 2) ?(sign_x = 1.0) ?(sign_y = 1.0) ?(center_x = Cell)
    ?(center_y = Cell) dat =
  match ctx.dist with
  | None -> Boundary.mirror ~depth ~sign_x ~sign_y ~center_x ~center_y dat
  | Some (Rows d) -> Dist.mirror d dat ~depth ~sign_x ~sign_y ~center_x ~center_y
  | Some (Grid d) -> Dist2.mirror d dat ~depth ~sign_x ~sign_y ~center_x ~center_y

(* ---- Automatic checkpointing (paper Section VI) -------------------------- *)

(* Snapshots capture the full padded array of a dataset (ghost ring
   included) so recovery restores boundary state exactly.  On a partitioned
   context the padded array is assembled from the rank windows' owned
   values before the copy ([pull]), and scattered back into every window
   (ghost copies included, which are then exactly the owners' values — what
   an exchange would deliver) after a restore ([push]); the snapshot is
   therefore decomposition-independent. *)
let checkpoint_fns ctx =
  let find name =
    match List.find_opt (fun d -> d.Types.dat_name = name) (dats ctx) with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Ops checkpoint: unknown dataset %s" name)
  in
  let pull d =
    match ctx.dist with
    | None -> ()
    | Some (Rows t) -> Dist.pull t d
    | Some (Grid t) -> Dist2.pull t d
  in
  let push d =
    match ctx.dist with
    | None -> ()
    | Some (Rows t) -> Dist.push t d
    | Some (Grid t) -> Dist2.push t d
  in
  {
    Am_checkpoint.Runtime.fetch =
      (fun name ->
        let d = find name in
        pull d;
        Array.copy d.Types.data);
    restore =
      (fun name data ->
        let d = find name in
        if Array.length data <> Array.length d.Types.data then
          invalid_arg "Ops checkpoint: snapshot size mismatch";
        Array.blit data 0 d.Types.data 0 (Array.length data);
        push d);
  }

let enable_checkpointing ctx =
  if ctx.checkpoint = None then
    ctx.checkpoint <- Some (Am_checkpoint.Runtime.create ~fns:(checkpoint_fns ctx))

let request_checkpoint ctx =
  match ctx.checkpoint with
  | None -> invalid_arg "Ops.request_checkpoint: call enable_checkpointing first"
  | Some session -> Am_checkpoint.Runtime.request_checkpoint session

let checkpoint_session ctx = ctx.checkpoint

let checkpoint_to_file ctx ~path =
  match ctx.checkpoint with
  | None -> invalid_arg "Ops.checkpoint_to_file: checkpointing not enabled"
  | Some session -> Am_checkpoint.Runtime.save_to_file session ~path

let recover_from_file ctx ~path =
  ctx.checkpoint <-
    Some (Am_checkpoint.Runtime.recover_from_file ~path ~fns:(checkpoint_fns ctx))
