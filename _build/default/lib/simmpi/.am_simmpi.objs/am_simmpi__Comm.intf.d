lib/simmpi/comm.mli:
