(* Halo-exchange plans over a [Comm.t].

   A plan records, for every ordered rank pair (r, p), which *local* element
   slots of rank r are exported to p and which local slots of p receive them.
   The same plan serves both communication directions the OP2/OPS runtimes
   need:

   - [exchange]: owners push fresh values out to the halo copies
     (read-indirect arguments before a loop);
   - [reduce]: halo copies push accumulated contributions back to the owners,
     which add them in (increment-indirect arguments after a loop).

   Export and import lists for a pair must have equal length and matching
   order; [validate] checks this. *)

type t = {
  n_ranks : int;
  exports : int array array array; (* exports.(r).(p): local slots of r sent to p *)
  imports : int array array array; (* imports.(r).(p): local slots of r receiving from p *)
}

let create ~n_ranks ~exports ~imports =
  let t = { n_ranks; exports; imports } in
  if Array.length exports <> n_ranks || Array.length imports <> n_ranks then
    invalid_arg "Halo.create: per-rank arrays must have length n_ranks";
  Array.iter
    (fun per_peer ->
      if Array.length per_peer <> n_ranks then
        invalid_arg "Halo.create: per-peer arrays must have length n_ranks")
    exports;
  Array.iter
    (fun per_peer ->
      if Array.length per_peer <> n_ranks then
        invalid_arg "Halo.create: per-peer arrays must have length n_ranks")
    imports;
  for r = 0 to n_ranks - 1 do
    for p = 0 to n_ranks - 1 do
      if Array.length exports.(r).(p) <> Array.length imports.(p).(r) then
        invalid_arg
          (Printf.sprintf "Halo.create: export %d->%d does not match import" r p)
    done
  done;
  t

let n_ranks t = t.n_ranks

(* Total element copies moved per exchange round. *)
let volume t =
  let v = ref 0 in
  for r = 0 to t.n_ranks - 1 do
    for p = 0 to t.n_ranks - 1 do
      v := !v + Array.length t.exports.(r).(p)
    done
  done;
  !v

let pack data ~dim slots =
  let out = Array.make (dim * Array.length slots) 0.0 in
  Array.iteri
    (fun k slot -> Array.blit data (slot * dim) out (k * dim) dim)
    slots;
  out

(* Owner -> halo push of [dim] values per element. [data.(rank)] is that
   rank's local array. *)
let exchange comm t ~dim data =
  if Comm.n_ranks comm <> t.n_ranks then invalid_arg "Halo.exchange: comm/plan mismatch";
  (Comm.stats comm).exchanges <- (Comm.stats comm).exchanges + 1;
  for r = 0 to t.n_ranks - 1 do
    for p = 0 to t.n_ranks - 1 do
      if r <> p && Array.length t.exports.(r).(p) > 0 then
        Comm.send comm ~src:r ~dst:p (pack data.(r) ~dim t.exports.(r).(p))
    done
  done;
  for p = 0 to t.n_ranks - 1 do
    for r = 0 to t.n_ranks - 1 do
      if r <> p && Array.length t.imports.(p).(r) > 0 then begin
        let payload = Comm.recv comm ~src:r ~dst:p in
        Array.iteri
          (fun k slot -> Array.blit payload (k * dim) data.(p) (slot * dim) dim)
          t.imports.(p).(r)
      end
    done
  done

(* Halo -> owner accumulation: each rank sends the contents of its *import*
   slots back to the exporting owner, which adds them elementwise.  Callers
   zero the halo slots before the contributing loop so only fresh
   contributions flow back. *)
let reduce comm t ~dim data =
  if Comm.n_ranks comm <> t.n_ranks then invalid_arg "Halo.reduce: comm/plan mismatch";
  (Comm.stats comm).exchanges <- (Comm.stats comm).exchanges + 1;
  for p = 0 to t.n_ranks - 1 do
    for r = 0 to t.n_ranks - 1 do
      if r <> p && Array.length t.imports.(p).(r) > 0 then
        Comm.send comm ~src:p ~dst:r (pack data.(p) ~dim t.imports.(p).(r))
    done
  done;
  for r = 0 to t.n_ranks - 1 do
    for p = 0 to t.n_ranks - 1 do
      if r <> p && Array.length t.exports.(r).(p) > 0 then begin
        let payload = Comm.recv comm ~src:p ~dst:r in
        Array.iteri
          (fun k slot ->
            for d = 0 to dim - 1 do
              data.(r).((slot * dim) + d) <-
                data.(r).((slot * dim) + d) +. payload.((k * dim) + d)
            done)
          t.exports.(r).(p)
      end
    done
  done

(* Largest number of peers any rank talks to — feeds the network model's
   message-count term. *)
let max_peers t =
  let worst = ref 0 in
  for r = 0 to t.n_ranks - 1 do
    let peers = ref 0 in
    for p = 0 to t.n_ranks - 1 do
      if r <> p
         && (Array.length t.exports.(r).(p) > 0 || Array.length t.imports.(r).(p) > 0)
      then incr peers
    done;
    if !peers > !worst then worst := !peers
  done;
  !worst
