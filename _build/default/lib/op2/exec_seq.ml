(* Sequential reference backend.

   This is the "generic implementation" of the paper: a plain loop over the
   iteration set, gathering and scattering per element.  It is the
   correctness oracle every other backend is tested against, and the
   human-readable debugging target the source-to-source generator also
   emits. *)

let run ?resolvers ~set_size ~args ~kernel () =
  let compiled = Exec_common.compile ?resolvers args in
  let buffers = Exec_common.make_buffers compiled in
  for e = 0 to set_size - 1 do
    Exec_common.run_element compiled buffers kernel e
  done;
  Exec_common.merge_globals compiled buffers
