lib/sysio/snapshot.mli:
