(** Log-bucketed histogram cell.

    All histograms share one fixed bucket layout: geometric buckets growing
    by [2^(1/4)] per step (four per octave) from 1 ns past 200 s, plus one
    overflow bucket, so snapshots are comparable bucket-by-bucket across
    cells and runs.  Recording is a binary search plus a few array stores
    and allocates nothing, so histogram cells stay always-on like counters.

    Quantiles are estimated by the upper boundary of the bucket holding the
    nearest-rank sample: the estimate is at least the true quantile and at
    most one bucket ratio (~18.9%) above it; exact min/max are tracked on
    the side. *)

type t

val create : ?unit_:string -> string -> t
(** Fresh empty histogram.  Prefer registering through
    {!Counters.histogram} so the cell is covered by registry snapshots. *)

val name_of : t -> string
val unit_of : t -> string

val record : t -> float -> unit
(** Allocation-free.  Non-finite and non-positive values fall into the
    lowest bucket rather than raising. *)

val reset : t -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float

val min_value : t -> float
(** Exact observed minimum (0.0 when empty). *)

val max_value : t -> float
(** Exact observed maximum (0.0 when empty). *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [[0,1]]; nearest-rank, bucket-resolution
    (see module doc).  0.0 when empty. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

(** {1 Bucket layout} *)

val n_buckets : int
(** Total buckets including the overflow bucket (index [n_buckets - 1]). *)

val bucket_ratio : float
(** Geometric growth factor between consecutive boundaries, [2^(1/4)]. *)

val bucket_index : float -> int
(** Bucket a value falls into. *)

val bucket_lower : int -> float
(** Exclusive lower boundary of a bucket (0.0 for bucket 0). *)

val bucket_upper : int -> float
(** Inclusive upper boundary ([infinity] for the overflow bucket). *)

(** {1 Snapshots} *)

type snapshot = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_buckets : (int * int) list;
      (** (bucket index, count) for non-empty buckets, ascending index. *)
}
(** Structural value for comparisons and JSON round-trips. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite [t]'s state from a snapshot (inverse of {!snapshot}). *)
