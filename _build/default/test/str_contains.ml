(* Substring helper shared by test suites. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    for i = 0 to n - m do
      if (not !found) && String.sub s i m = sub then found := true
    done;
    !found
  end
