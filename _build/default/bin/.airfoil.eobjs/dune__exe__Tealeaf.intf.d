bin/tealeaf.mli:
