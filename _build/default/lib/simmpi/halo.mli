(** Halo-exchange plans over a {!Comm.t}.

    A plan pairs export slot lists with matching import slot lists for every
    ordered rank pair; one plan serves both the owner->halo push
    ([exchange]) and the halo->owner accumulation ([reduce]). *)

type t

(** [create ~n_ranks ~exports ~imports]: [exports.(r).(p)] lists local slots
    of rank [r] sent to [p]; [imports.(p).(r)] the matching destination
    slots on [p] (equal length, same order). Raises [Invalid_argument] on
    shape mismatches. *)
val create :
  n_ranks:int -> exports:int array array array -> imports:int array array array -> t

val n_ranks : t -> int

(** Element copies moved per exchange round. *)
val volume : t -> int

(** Push owner values into halo copies: [data.(r)] is rank [r]'s local array
    with [dim] floats per element slot. *)
val exchange : Comm.t -> t -> dim:int -> float array array -> unit

(** Accumulate halo contributions back onto owners (elementwise add). The
    caller must have zeroed halo slots before the contributing loop. *)
val reduce : Comm.t -> t -> dim:int -> float array array -> unit

(** Largest peer count of any rank (network-model input). *)
val max_peers : t -> int
