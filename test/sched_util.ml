(* Shared schedule-driving helpers for the interleaving, fault and
   checkpoint suites.

   Everything here used to live (duplicated) in test_overlap.ml and
   test_faults.ml: the n-rank halo ring and its expected result, the
   permutation enumerator, the rank-count and policy x mode sweep tables,
   the fault-proxy runners with their checkpoint/restart plumbing, and —
   new with the DPOR explorer — the [assert_uniform] harness that drives a
   program through every inequivalent delivery schedule and demands one
   bitwise-identical outcome.

   Failing schedules print a replay token; rerun the suite with
   AM_SCHED=<token> to execute exactly that schedule (the uniformity check
   is skipped: the single replayed run is the reproduction). *)

module Op2 = Am_op2.Op2
module Ops = Am_ops.Ops
module Comm = Am_simmpi.Comm
module Halo = Am_simmpi.Halo
module Fault = Am_simmpi.Fault
module Schedcheck = Am_schedcheck.Schedcheck
module Resilience = Am_analysis.Resilience
module Umesh = Am_mesh.Umesh
module Airfoil = Am_airfoil.App
module Clover = Am_cloverleaf.App
module Fa = Am_util.Fa

(* Rank counts the sweeps cover: sequential, the two smallest nontrivial
   decompositions, and one that leaves some ranks with ragged partitions. *)
let rank_counts = [ 1; 2; 3; 7 ]

let rec perms = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (perms (List.filter (fun y -> y <> x) l)))
      l

(* ---- n-rank halo ring -------------------------------------------------- *)

(* Every rank exports slot 0 to both neighbours and imports into slot 1
   (from the previous rank) and slot 2 (from the next).  At n = 2 the two
   neighbours coincide, degenerating to one message each way (slot 2). *)
let ring_plan ~n =
  let exports = Array.init n (fun _ -> Array.make n [||]) in
  let imports = Array.init n (fun _ -> Array.make n [||]) in
  for r = 0 to n - 1 do
    exports.(r).((r + 1) mod n) <- [| 0 |];
    exports.(r).((r + n - 1) mod n) <- [| 0 |]
  done;
  for p = 0 to n - 1 do
    imports.(p).((p + n - 1) mod n) <- [| 1 |];
    imports.(p).((p + 1) mod n) <- [| 2 |]
  done;
  Halo.create ~n_ranks:n ~exports ~imports

let ring_data ~n base =
  Array.init n (fun r -> [| base +. Float.of_int r; 0.0; 0.0 |])

(* One complete ring exchange, flattened for fingerprint comparison; checks
   the transport left nothing behind. *)
let ring_exchange ~n base =
  let comm = Comm.create ~n_ranks:n in
  let plan = ring_plan ~n in
  let data = ring_data ~n base in
  Halo.exchange comm plan ~dim:1 data;
  if not (Comm.all_drained comm) then failwith "ring exchange left messages behind";
  Array.concat (Array.to_list data)

let check_ring ~what expected data =
  Array.iteri
    (fun r row ->
      if not (Fa.approx_equal ~tol:0.0 expected.(r) row) then
        Alcotest.failf "%s: rank %d got [%s], wanted [%s]" what r
          (String.concat "; " (Array.to_list (Array.map string_of_float row)))
          (String.concat "; "
             (Array.to_list (Array.map string_of_float expected.(r)))))
    expected;
  ignore data

(* ---- Policy x mode sweep tables ---------------------------------------- *)

let op2_variants =
  [
    ("on-demand/blocking", Op2.On_demand, Op2.Blocking);
    ("eager/blocking", Op2.Eager, Op2.Blocking);
    ("on-demand/overlap", Op2.On_demand, Op2.Overlap);
    ("eager/overlap", Op2.Eager, Op2.Overlap);
  ]

let ops_variants =
  [
    ("on-demand/blocking", Ops.On_demand, Ops.Blocking);
    ("eager/blocking", Ops.Eager, Ops.Blocking);
    ("on-demand/overlap", Ops.On_demand, Ops.Overlap);
    ("eager/overlap", Ops.Eager, Ops.Overlap);
  ]

(* ---- Fault proxies and the restart harness ------------------------------ *)

(* One proxy application, abstracted over what the restart harness needs:
   [run] builds the application from scratch (partitioned over [n_ranks],
   the injector attached when given), drives it while persisting the first
   complete checkpoint to [ckpt], restoring from it when [recovering], and
   returns a result fingerprint. *)
type proxy = {
  p_name : string;
  crash_range : int * int; (* injected crash-loop window *)
  run :
    n_ranks:int -> fault:Fault.t option -> ckpt:string option ->
    written:bool ref -> recovering:bool -> float array;
}

let airfoil_mesh = lazy (Umesh.generate_airfoil ~nx:12 ~ny:8 ())

let airfoil_proxy =
  {
    p_name = "airfoil";
    crash_range = (3, 22);
    run =
      (fun ~n_ranks ~fault ~ckpt ~written ~recovering ->
        let t = Airfoil.create (Lazy.force airfoil_mesh) in
        let ctx = t.Airfoil.ctx in
        if n_ranks > 1 then
          Op2.partition ctx ~n_ranks ~strategy:(Op2.Kway_through t.Airfoil.edge_cells);
        (match fault with Some f -> Op2.set_fault_injector ctx f | None -> ());
        (match ckpt with
        | Some path when recovering && !written -> Op2.recover_from_file ctx ~path
        | Some _ ->
          Op2.enable_checkpointing ctx;
          Op2.request_checkpoint ctx
        | None -> ());
        for _ = 1 to 5 do
          ignore (Airfoil.iteration t);
          match (ckpt, Op2.checkpoint_session ctx) with
          | Some path, Some s
            when (not !written) && Am_checkpoint.Runtime.complete s ->
            Op2.checkpoint_to_file ctx ~path;
            written := true
          | _ -> ()
        done;
        Airfoil.solution t);
  }

let clover_proxy =
  {
    p_name = "cloverleaf";
    crash_range = (5, 90);
    run =
      (fun ~n_ranks ~fault ~ckpt ~written ~recovering ->
        (* 16 rows: every rank count in the soak (up to 7) still owns at
           least the 2-deep ghost region. *)
        let t = Clover.create ~nx:12 ~ny:16 () in
        let ctx = t.Clover.ctx in
        if n_ranks > 1 then Ops.partition ctx ~n_ranks ~ref_ysize:16;
        (match fault with Some f -> Ops.set_fault_injector ctx f | None -> ());
        (match ckpt with
        | Some path when recovering && !written -> Ops.recover_from_file ctx ~path
        | Some _ ->
          Ops.enable_checkpointing ctx;
          Ops.request_checkpoint ctx
        | None -> ());
        for _ = 1 to 4 do
          ignore (Clover.hydro_step t);
          match (ckpt, Ops.checkpoint_session ctx) with
          | Some path, Some s
            when (not !written) && Am_checkpoint.Runtime.complete s ->
            Ops.checkpoint_to_file ctx ~path;
            written := true
          | _ -> ()
        done;
        Array.append (Clover.density t) (Clover.energy t));
  }

let proxies = [ airfoil_proxy; clover_proxy ]

(* Fault-free result of a proxy at one rank count, built once per suite. *)
let clean_cache : (string * int, float array) Hashtbl.t = Hashtbl.create 16

let clean proxy ~n_ranks =
  match Hashtbl.find_opt clean_cache (proxy.p_name, n_ranks) with
  | Some r -> r
  | None ->
    let r =
      proxy.run ~n_ranks ~fault:None ~ckpt:None ~written:(ref false)
        ~recovering:false
    in
    Hashtbl.replace clean_cache (proxy.p_name, n_ranks) r;
    r

(* Run one fault schedule under the restart harness.  [recover] arms
   checkpoint/restart (crash schedules must survive); without it the
   harness is detect-and-abort. *)
let run_schedule proxy ~n_ranks ~spec ~recover =
  let fault = Some (Fault.create spec) in
  let ckpt =
    if recover then (
      let p = Filename.temp_file ("am_fault_" ^ proxy.p_name) ".snap" in
      Sys.remove p;
      Some p)
    else None
  in
  let written = ref false in
  let result =
    Resilience.protect ~max_restarts:(if recover then 3 else 0)
      (fun ~recovering -> proxy.run ~n_ranks ~fault ~ckpt ~written ~recovering)
  in
  (match ckpt with Some p when Sys.file_exists p -> Sys.remove p | _ -> ());
  result

(* ---- DPOR harness ------------------------------------------------------- *)

let am_sched = Sys.getenv_opt "AM_SCHED"

let class_lines classes =
  String.concat "\n"
    (List.map
       (fun (c : _ Schedcheck.cls) ->
         Printf.sprintf "  %s x%d  [replay with AM_SCHED=%s]"
           (match c.Schedcheck.cls_result with
           | Ok _ -> "Ok"
           | Error msg -> "Error: " ^ msg)
           c.Schedcheck.cls_count c.Schedcheck.cls_token)
       classes)

(* Explore every inequivalent delivery schedule of [prog] (within [bound]
   deviations) and demand a single, non-raising outcome; returns it with
   the exploration report.  On failure the report and every outcome class
   — each with its replay token — are printed.  Under AM_SCHED=<token> the
   exploration is skipped and the named schedule runs alone. *)
let assert_uniform ?bound ?max_executions ?dependent
    ?(equal = fun a b -> a = b) ~what prog =
  match am_sched with
  | Some token ->
    let v = Schedcheck.replay ~token prog in
    ( v,
      {
        Schedcheck.rp_executions = 1;
        rp_backtracks = 0;
        rp_sleep_hits = 0;
        rp_bound_skips = 0;
        rp_max_depth = 0;
        rp_truncated = false;
        rp_traces = [];
        rp_classes =
          [ { Schedcheck.cls_token = token; cls_count = 1; cls_result = Ok v } ];
      } )
  | None -> (
    let r = Schedcheck.explore ?bound ?max_executions ?dependent ~equal prog in
    if r.Schedcheck.rp_truncated then
      Alcotest.failf "%s: exploration truncated before covering the bound\n%s" what
        (Schedcheck.report_to_string r);
    match r.Schedcheck.rp_classes with
    | [ { Schedcheck.cls_result = Ok v; _ } ] -> (v, r)
    | classes ->
      Alcotest.failf "%s: schedules are not observationally equivalent\n%s\n%s"
        what
        (Schedcheck.report_to_string r)
        (class_lines classes))
