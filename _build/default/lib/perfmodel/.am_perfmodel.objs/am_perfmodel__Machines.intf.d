lib/perfmodel/machines.mli:
