lib/apps_cloverleaf/app.ml: Am_core Am_ops Array Float Kernels List
