lib/apps_cloverleaf/hand.ml: App Array Float Kernels List
