(** Analytic descriptions of the paper's hardware.

    Each device is a small set of roofline-style constants, calibrated once
    against the paper's own measurements (Table I achieved bandwidths);
    EXPERIMENTS.md records how close the modelled figures land. The key
    asymmetries: CPUs gather nearly at stream speed on well-ordered meshes
    but pay read-for-ownership on stores and a large scalar penalty without
    vectorisation; the Xeon Phi and the GPUs collapse on gathers; GPUs ramp
    up with workload size. *)

type device = {
  name : string;
  stream_bw : float;  (** GB/s achieved on contiguous streams *)
  gather_efficiency : float;  (** fraction of [stream_bw] on indirect access *)
  flops : float;  (** GFLOP/s double precision, vectorised *)
  transcendental_rate : float;  (** G sqrt-class ops/s, vectorised *)
  scalar_penalty : float;  (** compute slowdown when not vectorised *)
  loop_latency : float;  (** per-loop dispatch overhead, seconds *)
  half_work : float;  (** elements at which GPU efficiency is 50% (0 = n/a) *)
  rfo : bool;  (** write-allocate caches: stores move the line twice *)
  is_gpu : bool;
}

(** Dual-socket Ivy Bridge node of Table I. *)
val xeon_e5_2697v2 : device

(** Hydra's single-socket Sandy Bridge node (Fig 3). *)
val xeon_e5_2640 : device

val xeon_phi_5110p : device
val nvidia_k40 : device
val nvidia_k20 : device
val nvidia_m2090 : device
val cray_xe6_node : device  (** HECToR *)

val cray_xk7_cpu : device  (** Titan host CPU *)

val nvidia_k20x : device  (** Titan GPU *)

type network = {
  net_name : string;
  latency : float;  (** seconds per message *)
  bandwidth : float;  (** GB/s per node *)
}

val gemini : network  (** Cray Gemini (HECToR, Titan) *)

val infiniband_qdr : network  (** Emerald / Jade *)

type cluster = { cluster_name : string; node : device; net : network }

val hector : cluster
val emerald : cluster
val jade : cluster
val titan_cpu : cluster
val titan_gpu : cluster
