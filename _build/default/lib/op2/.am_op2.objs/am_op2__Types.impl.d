lib/op2/types.ml: Am_core Array Float List Printf
