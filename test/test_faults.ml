(* Fault-injection and recovery test suite.

   Three layers of evidence that the survivable-halo-exchange stack works:

   - protocol unit tests on a bare communicator: the CRC rejects corrupted
     envelopes, duplicates are discarded as stale, delayed messages are
     re-ordered through the out-of-order stash, dropped messages are
     retransmitted after a timeout, and a total loss raises
     [Fault.Unrecoverable] instead of hanging or leaking the deadlock
     [Failure];

   - a randomized fault-schedule soak: seeded schedules across rank counts
     {1,2,3,7} x fault kinds {drop, duplicate, delay, corrupt, crash} x
     the Airfoil and CloverLeaf proxies.  A schedule the transport (or the
     checkpoint/restart harness, for crashes) survives must produce
     results bitwise identical to the fault-free run of the same
     configuration; one it cannot survive must end in a clean resilience
     finding.  The fault-free distributed runs are checked against the
     sequential reference up to reduction reordering (1e-10);

   - fixed regression schedules (seeds that once exercised interesting
     paths) plus spec-parser round-trips;

   - bounded-DPOR delivery-schedule exploration (the "dpor" group, also
     under `dune build @dpor`): fixed fault specs are exhausted over every
     delivery interleaving within the bound — [Schedcheck.conflict_all],
     because the shared splitmix64 roll order and the deliver-step clocks
     couple all channels — and must either produce the fault-free bits or
     one named resilience finding.

   Every randomized case derives its PRNG stream from one base seed;
   failures print the seed (rerun with AM_SEED=<n>).  Failing delivery
   schedules print a replay token (rerun with AM_SCHED=<token>). *)

module Op2 = Am_op2.Op2
module Ops = Am_ops.Ops
module Comm = Am_simmpi.Comm
module Fault = Am_simmpi.Fault
module Prng = Am_util.Prng
module Fa = Am_util.Fa
module Counters = Am_obs.Counters
module Obs = Am_obs.Obs
module Finding = Am_analysis.Finding
module Schedcheck = Am_schedcheck.Schedcheck

let base_seed = Qcheck_util.base_seed
let failf_seed seed fmt = Qcheck_util.failf_seed seed fmt

(* ---- Protocol unit tests on a bare communicator -------------------------- *)

let with_fault spec f =
  let t = Comm.create ~n_ranks:2 in
  Comm.attach_fault t (Fault.create spec);
  f t

let payload i = Array.init 4 (fun c -> Float.of_int ((10 * i) + c))

let check_payload what i got =
  if got <> payload i then
    Alcotest.failf "%s: message %d arrived as %s" what i
      (String.concat "," (Array.to_list (Array.map string_of_float got)))

let test_no_injector_no_envelope () =
  (* Without an injector the transport is the plain one: a 4-word message
     costs exactly 4 words on the wire (no envelope overhead). *)
  let t = Comm.create ~n_ranks:2 in
  Alcotest.(check bool) "no injector by default" true (Comm.fault t = None);
  Comm.send t ~src:0 ~dst:1 (payload 0);
  Alcotest.(check int) "bytes = payload only" (4 * 8) (Comm.stats t).Comm.bytes;
  check_payload "plain" 0 (Comm.recv t ~src:0 ~dst:1)

let test_envelope_overhead_when_enabled () =
  with_fault { Fault.default with seed = 1 } (fun t ->
      Comm.send t ~src:0 ~dst:1 (payload 0);
      Alcotest.(check int) "bytes = payload + 3-word envelope" ((4 + 3) * 8)
        (Comm.stats t).Comm.bytes;
      check_payload "enveloped" 0 (Comm.recv t ~src:0 ~dst:1))

let test_crc_rejects_corruption () =
  (* Every transmission (retransmits included) is bit-flipped.  A flip can
     land harmlessly (e.g. a mantissa bit of the seq word that truncation
     ignores), so an accept is possible — but an accepted message must be
     bit-correct, and a flip that touches the content must either be
     rejected by the CRC until a clean retransmit or end in Unrecoverable.
     Never a wrong payload, never a hang, never the deadlock Failure. *)
  Obs.reset ();
  let unrecoverable = ref 0 in
  for seed = 1 to 10 do
    with_fault { Fault.default with seed; corrupt = 1.0 } (fun t ->
        Comm.send t ~src:0 ~dst:1 (payload 0);
        match Comm.recv t ~src:0 ~dst:1 with
        | got -> check_payload (Printf.sprintf "corrupt seed %d" seed) 0 got
        | exception Fault.Unrecoverable _ -> incr unrecoverable)
  done;
  if Counters.value Obs.fault_corruptions = 0 then
    Alcotest.fail "no corruption injected";
  if Counters.value Obs.fault_crc_failures = 0 then
    Alcotest.fail "no CRC failure was counted";
  if !unrecoverable = 0 then
    Alcotest.fail "persistent corruption never exhausted the retries"

let test_duplicates_discarded () =
  Obs.reset ();
  with_fault { Fault.default with seed = 5; dup = 1.0 } (fun t ->
      for i = 0 to 4 do
        Comm.send t ~src:0 ~dst:1 (payload i)
      done;
      for i = 0 to 4 do
        check_payload "dup" i (Comm.recv t ~src:0 ~dst:1)
      done;
      if Counters.value Obs.fault_dups = 0 then Alcotest.fail "no duplicate injected";
      if Counters.value Obs.fault_stale = 0 then
        Alcotest.fail "no duplicate was discarded as stale")

let test_delays_reordered () =
  (* Everything is delayed by a random number of deliver-steps; FIFO order
     is destroyed in flight and must be rebuilt by sequence number. *)
  Obs.reset ();
  for seed = 1 to 10 do
    with_fault { Fault.default with seed; delay = 1.0; max_delay = 6 } (fun t ->
        for i = 0 to 4 do
          Comm.send t ~src:0 ~dst:1 (payload i)
        done;
        for i = 0 to 4 do
          check_payload (Printf.sprintf "delay seed %d" seed) i
            (Comm.recv t ~src:0 ~dst:1)
        done)
  done;
  if Counters.value Obs.fault_delays = 0 then Alcotest.fail "no delay injected"

let test_drops_retransmitted () =
  Obs.reset ();
  for seed = 1 to 10 do
    (* 0.3^7 per-message loss: retransmission is exercised constantly,
       actual loss across these fixed seeds never happens. *)
    with_fault { Fault.default with seed; drop = 0.3 } (fun t ->
        for i = 0 to 9 do
          Comm.send t ~src:0 ~dst:1 (payload i)
        done;
        for i = 0 to 9 do
          check_payload (Printf.sprintf "drop seed %d" seed) i
            (Comm.recv t ~src:0 ~dst:1)
        done)
  done;
  if Counters.value Obs.fault_drops = 0 then Alcotest.fail "no drop injected";
  if Counters.value Obs.fault_retransmits = 0 then
    Alcotest.fail "no retransmission happened"

let test_total_loss_unrecoverable () =
  Obs.reset ();
  with_fault { Fault.default with seed = 7; drop = 1.0 } (fun t ->
      Comm.send t ~src:0 ~dst:1 (payload 0);
      (match Comm.recv t ~src:0 ~dst:1 with
      | _ -> Alcotest.fail "total loss was survived"
      | exception Fault.Unrecoverable msg ->
        if not (Str_contains.contains msg "retransmits") then
          Alcotest.failf "unexpected diagnostic: %s" msg);
      if Counters.value Obs.fault_timeouts = 0 then
        Alcotest.fail "no timeout was counted")

let test_recv_nothing_in_flight () =
  (* The reliable transport's analogue of the simulator's deadlock
     fail-fast: a receive that can never complete raises Unrecoverable. *)
  with_fault { Fault.default with seed = 2 } (fun t ->
      match Comm.recv t ~src:0 ~dst:1 with
      | _ -> Alcotest.fail "receive of nothing returned"
      | exception Fault.Unrecoverable _ -> ())

(* ---- Spec parsing --------------------------------------------------------- *)

let test_spec_roundtrip () =
  let rng = Prng.create (base_seed lxor 0x5bec) in
  for _ = 1 to 50 do
    let spec =
      {
        Fault.seed = Prng.int rng 100000;
        drop = Float.of_int (Prng.int rng 100) /. 100.0;
        dup = Float.of_int (Prng.int rng 100) /. 100.0;
        delay = Float.of_int (Prng.int rng 100) /. 100.0;
        max_delay = 1 + Prng.int rng 20;
        corrupt = Float.of_int (Prng.int rng 100) /. 100.0;
        crash = (if Prng.bool rng then Some (Prng.int rng 8, Prng.int rng 100) else None);
      }
    in
    match Fault.spec_of_string (Fault.spec_to_string spec) with
    | Ok spec' ->
      if spec' <> spec then
        Alcotest.failf "round-trip changed %s into %s" (Fault.spec_to_string spec)
          (Fault.spec_to_string spec')
    | Error msg -> Alcotest.failf "round-trip of %s failed: %s" (Fault.spec_to_string spec) msg
  done

let test_spec_errors () =
  List.iter
    (fun s ->
      match Fault.spec_of_string s with
      | Ok _ -> Alcotest.failf "bad spec %S was accepted" s
      | Error _ -> ())
    [ "drop=2.0"; "drop=-0.1"; "bogus=1"; "crash=1"; "crash=x@2"; "seed="; "dup=abc" ]

(* ---- Randomized fault-schedule soak --------------------------------------- *)

type kind = KDrop | KDup | KDelay | KCorrupt | KCrash

let kind_name = function
  | KDrop -> "drop"
  | KDup -> "dup"
  | KDelay -> "delay"
  | KCorrupt -> "corrupt"
  | KCrash -> "crash"

let kinds = [ KDrop; KDup; KDelay; KCorrupt; KCrash ]
let rank_counts = Sched_util.rank_counts

(* Survivable-by-construction probabilities: a message is only lost when
   every one of the 1 + max_retries transmissions drops, so p <= 0.2 keeps
   the per-message loss probability below 2e-5. *)
let spec_for rng kind ~n_ranks ~crash_range =
  let seed = 1 + Prng.int rng 1_000_000 in
  let base = { Fault.default with seed } in
  match kind with
  | KDrop -> { base with drop = 0.05 +. Prng.float_range rng 0.0 0.15 }
  | KDup -> { base with dup = 0.1 +. Prng.float_range rng 0.0 0.4 }
  | KDelay ->
    { base with delay = 0.2 +. Prng.float_range rng 0.0 0.6;
      max_delay = 1 + Prng.int rng 8 }
  | KCorrupt -> { base with corrupt = 0.02 +. Prng.float_range rng 0.0 0.1 }
  | KCrash ->
    let lo, hi = crash_range in
    { base with crash = Some (Prng.int rng n_ranks, lo + Prng.int rng (hi - lo)) }

(* The proxy runners, their fault-free cache and the restart harness now
   live in [Sched_util], shared with the checkpoint suite's DPOR group. *)
let proxies = Sched_util.proxies
let airfoil_proxy = Sched_util.airfoil_proxy
let clean = Sched_util.clean
let run_schedule = Sched_util.run_schedule
let proxy_name (p : Sched_util.proxy) = p.Sched_util.p_name
let proxy_crash_range (p : Sched_util.proxy) = p.Sched_util.crash_range

let test_soak () =
  let rng = Prng.create base_seed in
  let survived = ref 0 and aborted = ref 0 in
  List.iter
    (fun proxy ->
      List.iter
        (fun n_ranks ->
          (* The fault-free distributed run agrees with the sequential
             reference up to reduction reordering. *)
          let reference = clean proxy ~n_ranks in
          if not (Fa.approx_equal ~tol:1e-10 (clean proxy ~n_ranks:1) reference)
          then
            failf_seed base_seed "%s(%d): fault-free run diverges from seq"
              (proxy_name proxy) n_ranks;
          List.iter
            (fun kind ->
              for _rep = 1 to 5 do
                let spec =
                  spec_for rng kind ~n_ranks ~crash_range:(proxy_crash_range proxy)
                in
                let recover = kind = KCrash in
                let what =
                  Printf.sprintf "%s(%d) %s [%s]" (proxy_name proxy) n_ranks
                    (kind_name kind) (Fault.spec_to_string spec)
                in
                match run_schedule proxy ~n_ranks ~spec ~recover with
                | Ok solution ->
                  incr survived;
                  if not (Fa.approx_equal ~tol:0.0 reference solution) then
                    failf_seed base_seed
                      "%s: survived but not bitwise equal to fault-free (%g)"
                      what
                      (Fa.rel_discrepancy reference solution)
                | Error finding ->
                  (* A legitimately unsurvivable draw must still abort
                     cleanly through the resilience layer. *)
                  incr aborted;
                  if finding.Finding.layer <> Finding.Resilience then
                    failf_seed base_seed "%s: abort through wrong layer (%s)"
                      what
                      (Finding.to_string finding);
                  if kind = KCrash then
                    failf_seed base_seed
                      "%s: crash schedule was not recovered: %s" what
                      (Finding.to_string finding)
              done)
            kinds)
        rank_counts)
    proxies;
  (* 2 proxies x 4 rank counts x 5 kinds x 5 reps = 200 schedules; the
     probabilities are tuned so survival is the overwhelmingly common
     outcome — a soak where most schedules abort would prove nothing. *)
  Alcotest.(check int) "schedules exercised" 200 (!survived + !aborted);
  if !aborted > !survived / 4 then
    failf_seed base_seed "too many unsurvivable draws (%d of %d)" !aborted
      (!survived + !aborted)

(* Same seed, same schedule: the whole faulty run must replay bitwise. *)
let test_soak_deterministic () =
  let rng = Prng.create (base_seed lxor 0xdef) in
  List.iter
    (fun proxy ->
      List.iter
        (fun kind ->
          let spec = spec_for rng kind ~n_ranks:3 ~crash_range:(proxy_crash_range proxy) in
          let recover = kind = KCrash in
          let once () = run_schedule proxy ~n_ranks:3 ~spec ~recover in
          match (once (), once ()) with
          | Ok a, Ok b ->
            if not (Fa.approx_equal ~tol:0.0 a b) then
              failf_seed base_seed "%s %s: same seed, different results"
                (proxy_name proxy) (kind_name kind)
          | Error a, Error b ->
            if Finding.to_string a <> Finding.to_string b then
              failf_seed base_seed "%s %s: same seed, different findings"
                (proxy_name proxy) (kind_name kind)
          | Ok _, Error f | Error f, Ok _ ->
            failf_seed base_seed "%s %s: same seed, different outcome (%s)"
              (proxy_name proxy) (kind_name kind) (Finding.to_string f))
        kinds)
    proxies

(* ---- Fixed regression schedules ------------------------------------------- *)

(* Schedules kept verbatim: each once exercised a distinct recovery path
   (mixed loss+reorder, corruption under load, crash before the checkpoint
   is complete, crash long after it). *)
let regression_schedules =
  [
    ("airfoil", 3, "seed=1905414,drop=0.12,dup=0.2,delay=0.3,max_delay=5", false);
    ("airfoil", 2, "seed=77,corrupt=0.08,delay=0.25", false);
    ("airfoil", 3, "seed=424242,crash=2@4", true);
    ("cloverleaf", 2, "seed=31337,crash=1@80", true);
    ("cloverleaf", 7, "seed=90210,drop=0.1,corrupt=0.05", false);
  ]

let test_regressions () =
  List.iter
    (fun (pname, n_ranks, spec_s, recover) ->
      let proxy = List.find (fun p -> proxy_name p = pname) proxies in
      let spec =
        match Fault.spec_of_string spec_s with
        | Ok s -> s
        | Error m -> Alcotest.failf "bad regression spec %s: %s" spec_s m
      in
      match run_schedule proxy ~n_ranks ~spec ~recover with
      | Ok solution ->
        let reference = clean proxy ~n_ranks in
        if not (Fa.approx_equal ~tol:0.0 reference solution) then
          Alcotest.failf "regression %s(%d) %s: not bitwise equal (%g)" pname
            n_ranks spec_s
            (Fa.rel_discrepancy reference solution)
      | Error finding ->
        Alcotest.failf "regression %s(%d) %s: not survived: %s" pname n_ranks
          spec_s (Finding.to_string finding))
    regression_schedules

(* ---- Unsurvivable schedules abort cleanly --------------------------------- *)

let test_unsurvivable_aborts () =
  (* Total loss, no recovery: a named resilience finding, no hang, no
     leaked exception. *)
  (match
     run_schedule airfoil_proxy ~n_ranks:2
       ~spec:{ Fault.default with seed = 13; drop = 1.0 }
       ~recover:false
   with
  | Ok _ -> Alcotest.fail "total loss was survived"
  | Error f ->
    Alcotest.(check bool) "resilience layer" true (f.Finding.layer = Finding.Resilience);
    Alcotest.(check string) "finding subject" "recovery" f.Finding.subject;
    if not (Str_contains.contains (Finding.to_string f) "lost") then
      Alcotest.failf "finding does not name the loss: %s" (Finding.to_string f));
  (* Crash without --recover: detect-and-abort, naming the crash. *)
  match
    run_schedule airfoil_proxy ~n_ranks:2
      ~spec:{ Fault.default with seed = 13; crash = Some (1, 8) }
      ~recover:false
  with
  | Ok _ -> Alcotest.fail "crash was survived without recovery"
  | Error f ->
    if not (Str_contains.contains (Finding.to_string f) "crashed") then
      Alcotest.failf "finding does not name the crash: %s" (Finding.to_string f)

(* Total loss under recovery exhausts the restart budget and still ends in
   a finding (the restarts replay the same deterministic loss). *)
let test_recovery_budget_exhausted () =
  Obs.reset ();
  match
    run_schedule airfoil_proxy ~n_ranks:2
      ~spec:{ Fault.default with seed = 21; drop = 1.0 }
      ~recover:true
  with
  | Ok _ -> Alcotest.fail "total loss was survived"
  | Error f ->
    if not (Str_contains.contains (Finding.to_string f) "3 restarts") then
      Alcotest.failf "finding does not count the restarts: %s" (Finding.to_string f);
    Alcotest.(check int) "restarts counted" 3 (Counters.value Obs.fault_recoveries);
    Alcotest.(check int) "abort counted" 1 (Counters.value Obs.fault_aborts)

(* ---- Bounded-DPOR exploration of delivery schedules ----------------------- *)

(* Under fault injection every channel is coupled to every other (shared
   splitmix64 roll order, deliver-step clocks), so the dependence relation
   is [Schedcheck.conflict_all]: no two deliveries commute. *)

(* Two source ranks dup-flooding rank 0: every delivery interleaving of
   the two channels within the bound must rebuild the same payloads, and
   the exploration itself must replay bitwise. *)
let test_dpor_dup_flood_exhausted () =
  let prog () =
    let t = Comm.create ~n_ranks:3 in
    Comm.attach_fault t (Fault.create { Fault.default with seed = 5; dup = 1.0 });
    Comm.send t ~src:1 ~dst:0 (payload 0);
    Comm.send t ~src:2 ~dst:0 (payload 2);
    Comm.send t ~src:1 ~dst:0 (payload 1);
    Comm.send t ~src:2 ~dst:0 (payload 3);
    List.map
      (fun (src, i) ->
        let got = Comm.recv t ~src ~dst:0 in
        check_payload "dpor dup flood" i got;
        got)
      [ (1, 0); (1, 1); (2, 2); (2, 3) ]
  in
  let _, r =
    Sched_util.assert_uniform ~bound:2 ~max_executions:2000
      ~dependent:Schedcheck.conflict_all ~what:"dup flood" prog
  in
  if Sched_util.am_sched = None then begin
    if r.Schedcheck.rp_executions <= 1 then
      Alcotest.fail "dup flood offered no delivery decisions to explore";
    (* Deterministically exhausted: a second exploration visits the very
       same schedules in the very same order. *)
    let r' =
      Schedcheck.explore ~bound:2 ~max_executions:2000
        ~dependent:Schedcheck.conflict_all prog
    in
    Alcotest.(check int) "same executions" r.Schedcheck.rp_executions
      r'.Schedcheck.rp_executions;
    if r'.Schedcheck.rp_traces <> r.Schedcheck.rp_traces then
      Alcotest.fail "exploration is not deterministic"
  end

(* Total loss offers no delivery decisions (nothing is ever staged), so
   the exploration collapses to one class: the named resilience failure. *)
let test_dpor_total_loss_one_finding () =
  let prog () =
    let t = Comm.create ~n_ranks:2 in
    Comm.attach_fault t (Fault.create { Fault.default with seed = 13; drop = 1.0 });
    Comm.send t ~src:0 ~dst:1 (payload 0);
    Comm.recv t ~src:0 ~dst:1
  in
  let r =
    Schedcheck.explore ~bound:2 ~dependent:Schedcheck.conflict_all prog
  in
  match r.Schedcheck.rp_classes with
  | [ { Schedcheck.cls_result = Error msg; cls_count; _ } ] ->
    Alcotest.(check int) "one schedule" r.Schedcheck.rp_executions cls_count;
    if not (Str_contains.contains msg "retransmits") then
      Alcotest.failf "finding does not name the loss: %s" msg
  | classes ->
    Alcotest.failf "expected one Error class, got %d classes:\n%s"
      (List.length classes) (Schedcheck.report_to_string r)

(* A scenario previously covered only by randomized draws, now exhausted
   deterministically: a fixed corrupt+delay schedule on the 2-rank
   CloverLeaf (whose staggered exchanges keep both directions in flight
   at once) must produce the fault-free bits under every delivery
   interleaving within the bound. *)
let test_dpor_proxy_fault_exhausted () =
  let spec =
    match Fault.spec_of_string "seed=77,corrupt=0.08,delay=0.25" with
    | Ok s -> s
    | Error m -> Alcotest.failf "bad spec: %s" m
  in
  let proxy = Sched_util.clover_proxy in
  let prog () =
    match run_schedule proxy ~n_ranks:2 ~spec ~recover:false with
    | Ok solution -> solution
    | Error f -> failwith (Finding.to_string f)
  in
  let reference = clean proxy ~n_ranks:2 in
  let solution, r =
    Sched_util.assert_uniform ~bound:1 ~max_executions:600
      ~dependent:Schedcheck.conflict_all
      ~equal:(fun a b -> Fa.approx_equal ~tol:0.0 a b)
      ~what:"cloverleaf(2) corrupt+delay" prog
  in
  if not (Fa.approx_equal ~tol:0.0 reference solution) then
    Alcotest.failf
      "explored fault run is not bitwise equal to fault-free (%g)"
      (Fa.rel_discrepancy reference solution);
  if Sched_util.am_sched = None && r.Schedcheck.rp_executions <= 1 then
    Alcotest.fail "proxy fault run offered no delivery decisions to explore"

let () =
  Alcotest.run "faults"
    [
      ( "protocol",
        [
          Alcotest.test_case "no injector, no envelope" `Quick
            test_no_injector_no_envelope;
          Alcotest.test_case "envelope overhead when enabled" `Quick
            test_envelope_overhead_when_enabled;
          Alcotest.test_case "crc rejects corruption" `Quick test_crc_rejects_corruption;
          Alcotest.test_case "duplicates discarded" `Quick test_duplicates_discarded;
          Alcotest.test_case "delays reordered" `Quick test_delays_reordered;
          Alcotest.test_case "drops retransmitted" `Quick test_drops_retransmitted;
          Alcotest.test_case "total loss unrecoverable" `Quick
            test_total_loss_unrecoverable;
          Alcotest.test_case "recv of nothing fails fast" `Quick
            test_recv_nothing_in_flight;
        ] );
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "malformed specs rejected" `Quick test_spec_errors;
        ] );
      ( "soak",
        [
          Alcotest.test_case "200 randomized schedules" `Slow test_soak;
          Alcotest.test_case "schedules replay deterministically" `Slow
            test_soak_deterministic;
          Alcotest.test_case "fixed regression schedules" `Quick test_regressions;
        ] );
      ( "abort",
        [
          Alcotest.test_case "unsurvivable aborts cleanly" `Quick
            test_unsurvivable_aborts;
          Alcotest.test_case "restart budget exhausts cleanly" `Quick
            test_recovery_budget_exhausted;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "dup flood exhausted within bound" `Quick
            test_dpor_dup_flood_exhausted;
          Alcotest.test_case "total loss collapses to one finding" `Quick
            test_dpor_total_loss_one_finding;
          Alcotest.test_case "fixed proxy fault exhausted" `Quick
            test_dpor_proxy_fault_exhausted;
        ] );
    ]
