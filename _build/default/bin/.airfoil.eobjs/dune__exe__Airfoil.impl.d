bin/airfoil.ml: Am_airfoil Am_core Am_mesh Am_op2 Am_simmpi Am_sysio Am_taskpool Am_util Arg Cmd Cmdliner Printf Sys Term Unix
