(* Tests for kernel footprint inference (Probe) and the Verify diff.

   The central property is a round-trip: synthesize a (descriptor, kernel)
   pair from a randomly chosen footprint — the kernel mechanically reads
   exactly the chosen slots and writes exactly its output argument — and
   inference must recover that footprint bit-for-bit: every chosen slot
   observed read, no other slot observed read or written, the footprint
   clean.

   The mutation tests drive the whole pipeline instead: a real facade
   context (Airfoil-shaped OP2 program, CloverLeaf-shaped OPS stencil
   loop) runs one seeded descriptor lie — an undeclared write to a Read
   argument, an over-declared stencil point, an Inc that overwrites — and
   [Analysis.static_*] must report exactly that defect, naming the loop,
   the argument and the slot. *)

module Probe = Am_core.Probe
module Descr = Am_core.Descr
module Access = Am_core.Access
module Trace = Am_core.Trace
module Verify = Am_analysis.Verify
module Finding = Am_analysis.Finding
module Analysis = Am_analysis.Analysis
module Op2 = Am_op2.Op2
module Ops = Am_ops.Ops
module Umesh = Am_mesh.Umesh

let contains = Str_contains.contains

(* ---- round-trip property --------------------------------------------- *)

(* One synthetic input argument: [mask] marks the staging slots the
   generated kernel actually reads (length points * dim). *)
type arg_spec = { sp_dim : int; sp_points : int; sp_mask : bool array }

let spec_gen =
  QCheck.Gen.(
    let input =
      int_range 1 2 >>= fun sp_dim ->
      int_range 1 4 >>= fun sp_points ->
      array_size (return (sp_points * sp_dim)) bool >>= fun sp_mask ->
      return { sp_dim; sp_points; sp_mask }
    in
    list_size (int_range 1 3) input >>= fun inputs ->
    int_range 1 2 >>= fun out_dim ->
    bool >>= fun out_inc -> return (inputs, out_dim, out_inc))

let spec_print (inputs, out_dim, out_inc) =
  let mask m =
    String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") m))
  in
  Printf.sprintf "inputs=[%s] out_dim=%d out=%s"
    (String.concat "; "
       (List.map
          (fun sp -> Printf.sprintf "%dx%d:%s" sp.sp_points sp.sp_dim (mask sp.sp_mask))
          inputs))
    out_dim
    (if out_inc then "Inc" else "Write")

let descr_of_spec inputs out_dim out_inc =
  let nin = List.length inputs in
  let args =
    List.mapi
      (fun i sp ->
        {
          Descr.dat_name = Printf.sprintf "in%d" i;
          dat_id = i;
          dim = sp.sp_dim;
          access = Access.Read;
          kind =
            (if sp.sp_points = 1 then Descr.Direct
             else Descr.Stencil { points = sp.sp_points; extent = sp.sp_points / 2 });
        })
      inputs
    @ [
        {
          Descr.dat_name = "out";
          dat_id = nin;
          dim = out_dim;
          access = (if out_inc then Access.Inc else Access.Write);
          kind = Descr.Direct;
        };
      ]
  in
  {
    Descr.loop_name = "synth";
    set_name = "s";
    set_size = 0;
    args;
    info = Descr.default_kernel_info;
  }

(* The kernel reads exactly the masked slots (each with a distinct nonzero
   coefficient, so any masked slot's value flows into the output) and
   writes exactly the output argument's slots. *)
let kernel_of_spec inputs out_dim out_inc (bufs : float array array) =
  let nin = List.length inputs in
  let acc = ref 1.0 in
  List.iteri
    (fun i sp ->
      Array.iteri
        (fun s m -> if m then acc := !acc +. (bufs.(i).(s) *. Float.of_int (s + 2)))
        sp.sp_mask)
    inputs;
  for s = 0 to out_dim - 1 do
    let v = (!acc *. Float.of_int (s + 1)) +. 0.25 in
    if out_inc then bufs.(nin).(s) <- bufs.(nin).(s) +. v else bufs.(nin).(s) <- v
  done

let prop_roundtrip =
  QCheck.Test.make ~name:"synthesized footprint round-trips exactly" ~count:100
    (QCheck.make ~print:spec_print spec_gen)
    (fun ((inputs, out_dim, out_inc) as spec) ->
      let descr = descr_of_spec inputs out_dim out_inc in
      let fp = Probe.infer ~loop:descr ~kernel:(kernel_of_spec inputs out_dim out_inc) () in
      let fail fmt = QCheck.Test.fail_reportf ("%s: " ^^ fmt) (spec_print spec) in
      if not (Probe.clean fp) then fail "footprint not clean";
      List.iteri
        (fun i sp ->
          let af = fp.Probe.fp_args.(i) in
          if af.Probe.af_read <> sp.sp_mask then
            fail "arg %d: observed reads differ from the synthesized mask" i;
          if Probe.any af.Probe.af_written then fail "arg %d: phantom write observed" i;
          if af.Probe.af_pad_read || af.Probe.af_pad_written then
            fail "arg %d: phantom pad access" i)
        inputs;
      let out = fp.Probe.fp_args.(List.length inputs) in
      if not (Array.for_all Fun.id out.Probe.af_written) then
        fail "output: not every slot observed written";
      if out.Probe.af_non_additive then fail "output: additive Inc flagged";
      true)

(* ---- mutation: undeclared write on an Airfoil-shaped program ----------- *)

(* The res_calc shape: u read through both components of edge_cells, du
   incremented through the same map. *)
type mini = {
  ctx : Op2.ctx;
  edges : Op2.set;
  edge_cells : Op2.map_t;
  u : Op2.dat;
  du : Op2.dat;
}

let build_mini () =
  let mesh = Umesh.generate_square ~nx:9 ~ny:7 () in
  let ctx = Op2.create () in
  let cells = Op2.decl_set ctx ~name:"cells" ~size:mesh.Umesh.n_cells in
  let edges = Op2.decl_set ctx ~name:"edges" ~size:mesh.Umesh.n_edges in
  let edge_cells =
    Op2.decl_map ctx ~name:"edge_cells" ~from_set:edges ~to_set:cells ~arity:2
      ~values:mesh.Umesh.edge_cells
  in
  let init = Array.init mesh.Umesh.n_cells (fun c -> 1.0 +. (0.1 *. Float.of_int c)) in
  let u = Op2.decl_dat ctx ~name:"u" ~set:cells ~dim:1 ~data:init in
  let du = Op2.decl_dat_zero ctx ~name:"du" ~set:cells ~dim:1 in
  Trace.set_enabled (Op2.trace ctx) true;
  { ctx; edges; edge_cells; u; du }

let find_verify ~severity ~loop ~arg ~needle findings =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.layer = Finding.Verify
      && f.Finding.severity = severity
      && f.Finding.loop = loop && f.Finding.arg = arg
      && contains f.Finding.message needle)
    findings

let test_undeclared_write () =
  let m = build_mini () in
  Op2.par_loop m.ctx ~name:"flux_bad" m.edges
    [
      Op2.arg_dat_indirect m.u m.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect m.u m.edge_cells 1 Access.Read;
      Op2.arg_dat_indirect m.du m.edge_cells 0 Access.Inc;
      Op2.arg_dat_indirect m.du m.edge_cells 1 Access.Inc;
    ]
    (fun a ->
      let f = a.(1).(0) -. a.(0).(0) in
      a.(2).(0) <- a.(2).(0) +. f;
      a.(3).(0) <- a.(3).(0) -. f;
      (* the lie: scribble on the Read argument's staging *)
      a.(0).(0) <- 0.0);
  let r = Analysis.static_op2 m.ctx in
  Alcotest.(check bool)
    "error names loop flux_bad, arg 0, slot 0" true
    (find_verify ~severity:Finding.Error ~loop:"flux_bad" ~arg:0
       ~needle:"observed write to slot(s) 0 of a Read argument"
       r.Analysis.findings)

(* ---- mutation: Inc that overwrites ------------------------------------ *)

let test_inc_overwrite () =
  let m = build_mini () in
  Op2.par_loop m.ctx ~name:"flux_clobber" m.edges
    [
      Op2.arg_dat_indirect m.u m.edge_cells 0 Access.Read;
      Op2.arg_dat_indirect m.du m.edge_cells 0 Access.Inc;
    ]
    (fun a -> (* overwrite instead of accumulate *)
      a.(1).(0) <- a.(0).(0));
  let r = Analysis.static_op2 m.ctx in
  Alcotest.(check bool)
    "error names loop flux_clobber, arg 1, overwriting Inc" true
    (find_verify ~severity:Finding.Error ~loop:"flux_clobber" ~arg:1
       ~needle:"Inc argument observed overwriting" r.Analysis.findings)

(* ---- mutation: over-declared stencil point (CloverLeaf shape) ---------- *)

let test_overdeclared_stencil () =
  let ctx = Ops.create () in
  let grid = Ops.decl_block ctx ~name:"grid" in
  let u = Ops.decl_dat ctx ~name:"u" ~block:grid ~xsize:12 ~ysize:10 ~halo:1 () in
  let w = Ops.decl_dat ctx ~name:"w" ~block:grid ~xsize:12 ~ysize:10 ~halo:1 () in
  Ops.init ctx u (fun x y _ -> Float.of_int ((x * 3) + y));
  Trace.set_enabled (Ops.trace ctx) true;
  (* Declares the full 5-point stencil but reads only one point — the
     CloverLeaf advection shape whose over-declaration the halo consumer
     pays for. *)
  Ops.par_loop ctx ~name:"advec_narrow" grid (Ops.interior u)
    [
      Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
      Ops.arg_dat w Ops.stencil_point Access.Write;
    ]
    (fun a -> a.(1).(0) <- 2.0 *. a.(0).(0));
  let r = Analysis.static_ops ctx in
  let fs = r.Analysis.findings in
  Alcotest.(check bool)
    "warning names loop advec_narrow, arg 0, unread stencil points" true
    (find_verify ~severity:Finding.Warning ~loop:"advec_narrow" ~arg:0
       ~needle:"never observed read" fs);
  Alcotest.(check bool)
    "no error-severity finding for a mere over-declaration" true
    (not (List.exists Finding.is_error fs))

(* ---- direct Verify diff on a hand-built footprint ---------------------- *)

(* The Verify layer itself, without a facade: an undeclared write shows as
   an Error carrying the slot list, an unread declared argument as a
   Warning — the severity split the probing soundness model dictates. *)
let test_verify_severity_split () =
  let descr =
    descr_of_spec
      [ { sp_dim = 1; sp_points = 1; sp_mask = [| false |] } ]
      1 false
  in
  let fp =
    Probe.infer ~loop:descr
      ~kernel:(fun bufs ->
        bufs.(1).(0) <- 1.0 +. bufs.(0).(0);
        bufs.(0).(0) <- 7.0 (* undeclared write *))
      ()
  in
  let fi = { Probe.in_loop = descr; in_foot = fp; in_read_ext = [| -1; -1 |] } in
  let fs = Verify.check [ fi ] in
  Alcotest.(check bool)
    "undeclared write is an error" true
    (find_verify ~severity:Finding.Error ~loop:"synth" ~arg:0
       ~needle:"observed write to slot(s) 0" fs);
  Alcotest.(check bool)
    "clean footprints are withheld from consumers" false
    (Probe.clean fp)

(* ---- cache key: concrete offsets, not abstracted shape ----------------- *)

(* Two loops under one name whose stencils agree on everything [Descr]
   renders (2 points, extent 1) but differ in offsets: the horizontal and
   vertical variants must each get their own cached footprint — a shared
   entry would apply one variant's read extents to the other's offsets. *)
let test_stencil_salt () =
  let ctx = Ops.create () in
  let grid = Ops.decl_block ctx ~name:"grid" in
  let u = Ops.decl_dat ctx ~name:"u" ~block:grid ~xsize:10 ~ysize:10 ~halo:1 () in
  let w = Ops.decl_dat ctx ~name:"w" ~block:grid ~xsize:10 ~ysize:10 ~halo:1 () in
  Ops.init ctx u (fun x y _ -> Float.of_int ((x * 3) + y));
  let run stencil =
    Ops.par_loop ctx ~name:"drift" grid (Ops.interior u)
      [
        Ops.arg_dat u stencil Access.Read;
        Ops.arg_dat w Ops.stencil_point Access.Write;
      ]
      (fun a -> a.(1).(0) <- a.(0).(0) +. a.(0).(1))
  in
  run Ops.stencil_2d_plus1x;
  run Ops.stencil_2d_plus1y;
  Alcotest.(check int) "one cached footprint per offset set" 2
    (List.length (Ops.footprints ctx))

(* ---- probing iteration-index buffers by marker, not by name ------------ *)

let idx_descr () =
  {
    Descr.loop_name = "idxprobe";
    set_name = "s";
    set_size = 0;
    args =
      [
        {
          Descr.dat_name = "idx";
          dat_id = -1;
          dim = 1;
          access = Access.Read;
          kind = Descr.Global;
        };
        {
          Descr.dat_name = "out";
          dat_id = 0;
          dim = 1;
          access = Access.Write;
          kind = Descr.Direct;
        };
      ];
    info = Descr.default_kernel_info;
  }

(* Only a facade-supplied [~idx] mask makes an argument probe as iteration
   coordinates; a user global that merely happens to be named "idx" gets
   ordinary probe values.  The first kernel call is the probe-0 baseline:
   the coordinate fill puts exactly slot+1 = 1.0 there, the ordinary fill
   a signature-deterministic value that is not 1.0. *)
let test_idx_marker () =
  let capture () =
    let seen = ref None in
    let kernel bufs =
      if !seen = None then seen := Some bufs.(0).(0);
      bufs.(1).(0) <- bufs.(0).(0) +. 1.0
    in
    (seen, kernel)
  in
  let seen_marked, k_marked = capture () in
  ignore (Probe.infer ~idx:[| true; false |] ~loop:(idx_descr ()) ~kernel:k_marked ());
  Alcotest.(check (option (float 0.0)))
    "marked arg probes as coordinates" (Some 1.0) !seen_marked;
  let seen_plain, k_plain = capture () in
  ignore (Probe.infer ~loop:(idx_descr ()) ~kernel:k_plain ());
  match !seen_plain with
  | None -> Alcotest.fail "kernel never ran"
  | Some v ->
    Alcotest.(check bool) "unmarked \"idx\" global probes normally" true (v <> 1.0)

(* ---- runtime tightening is opt-in -------------------------------------- *)

(* A distributed run whose read stencil is over-declared (5-point, kernel
   reads only the centre): by default the sampled negative must not shrink
   any exchange; after [set_tighten] the same program drops ghost rows. *)
let tighten_run ~tighten =
  let ctx = Ops.create () in
  let grid = Ops.decl_block ctx ~name:"grid" in
  let u = Ops.decl_dat ctx ~name:"u" ~block:grid ~xsize:16 ~ysize:16 ~halo:1 () in
  let w = Ops.decl_dat ctx ~name:"w" ~block:grid ~xsize:16 ~ysize:16 ~halo:1 () in
  Ops.init ctx u (fun x y _ -> Float.of_int ((x * 5) + y));
  Ops.set_tighten ctx tighten;
  Ops.partition ctx ~n_ranks:2 ~ref_ysize:16;
  let d0 = Am_obs.Counters.value Am_obs.Obs.halo_depth_saved in
  for _ = 1 to 2 do
    Ops.par_loop ctx ~name:"bump" grid (Ops.interior u)
      [ Ops.arg_dat u Ops.stencil_point Access.Rw ]
      (fun a -> a.(0).(0) <- a.(0).(0) +. 1.0);
    Ops.par_loop ctx ~name:"copy_centre" grid (Ops.interior u)
      [
        Ops.arg_dat u Ops.stencil_2d_5pt Access.Read;
        Ops.arg_dat w Ops.stencil_point Access.Write;
      ]
      (fun a -> a.(1).(0) <- a.(0).(0))
  done;
  Ops.flush ctx;
  Am_obs.Counters.value Am_obs.Obs.halo_depth_saved - d0

let test_tighten_opt_in () =
  Alcotest.(check bool) "tightening is off by default" false
    (Ops.tighten_enabled (Ops.create ()));
  Alcotest.(check int) "no ghost rows dropped by default" 0
    (tighten_run ~tighten:false);
  Alcotest.(check bool) "opted-in context drops ghost rows" true
    (tighten_run ~tighten:true > 0)

(* ---- halo replay: the no-information sentinel is absorbing ------------- *)

module Dataflow = Am_analysis.Dataflow

let dflow_direct name id access =
  { Descr.dat_name = name; dat_id = id; dim = 1; access; kind = Descr.Direct }

let dflow_loop name args =
  {
    Descr.loop_name = name;
    set_name = "cells";
    set_size = 100;
    args;
    info = Descr.default_kernel_info;
  }

let test_halo_merge_absorbing () =
  let loops =
    [
      dflow_loop "relax" [ dflow_direct "u" 0 Access.Write ];
      dflow_loop "smooth"
        [
          {
            Descr.dat_name = "u";
            dat_id = 0;
            dim = 1;
            access = Access.Read;
            kind = Descr.Stencil { points = 5; extent = 1 };
          };
          dflow_direct "out" 1 Access.Write;
        ];
    ]
  in
  (* one centre-only proven variant alone: the replay drops the exchange
     and flags the over-declaration *)
  let sched1, over1 =
    Dataflow.halo_schedule ~inferred:[ ("smooth", [| 0; -1 |]) ] loops
  in
  Alcotest.(check int) "proven variant drops the exchange" 0 (List.length sched1);
  Alcotest.(check int) "and reports it redundant" 1 (List.length over1);
  (* the same proven variant plus an unproven one under the same loop
     name: -1 absorbs, the exchange stays, no false warning *)
  let sched2, over2 =
    Dataflow.halo_schedule
      ~inferred:[ ("smooth", [| 0; -1 |]); ("smooth", [| -1; -1 |]) ]
      loops
  in
  Alcotest.(check int) "unproven variant keeps the exchange" 1
    (List.length sched2);
  Alcotest.(check int) "no false redundancy warning" 0 (List.length over2);
  (* mismatched argument counts discard the whole entry *)
  let sched3, over3 =
    Dataflow.halo_schedule
      ~inferred:[ ("smooth", [| 0; -1 |]); ("smooth", [| 0 |]) ]
      loops
  in
  Alcotest.(check int) "length mismatch keeps the exchange" 1
    (List.length sched3);
  Alcotest.(check int) "length mismatch emits no warning" 0 (List.length over3)

let () =
  Alcotest.run "infer"
    [
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest prop_roundtrip ] );
      ( "mutations",
        [
          Alcotest.test_case "undeclared write (airfoil shape)" `Quick
            test_undeclared_write;
          Alcotest.test_case "inc overwrite (airfoil shape)" `Quick
            test_inc_overwrite;
          Alcotest.test_case "over-declared stencil (cloverleaf shape)" `Quick
            test_overdeclared_stencil;
        ] );
      ( "verify",
        [
          Alcotest.test_case "severity split" `Quick test_verify_severity_split;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "offsets salt the footprint cache" `Quick
            test_stencil_salt;
          Alcotest.test_case "idx probing needs the marker, not the name" `Quick
            test_idx_marker;
          Alcotest.test_case "runtime tightening is opt-in" `Quick
            test_tighten_opt_in;
          Alcotest.test_case "halo merge: -1 absorbs" `Quick
            test_halo_merge_absorbing;
        ] );
    ]
