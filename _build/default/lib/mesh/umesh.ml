(* Unstructured 2D quadrilateral meshes.

   Both generators produce logically-structured quad meshes stored in fully
   unstructured form (explicit edge->node, edge->cell, cell->node maps), which
   is exactly how the OP2 Airfoil test case stores its grid.  The maps use
   the conventions of the Airfoil application:

   - interior edges carry two adjacent cells (left, right);
   - boundary edges ("bedges") carry the single adjacent cell plus a
     boundary-condition id. *)

type t = {
  n_nodes : int;
  n_cells : int;
  n_edges : int;
  n_bedges : int;
  edge_nodes : int array; (* 2 per edge *)
  edge_cells : int array; (* 2 per edge *)
  cell_nodes : int array; (* 4 per cell *)
  bedge_nodes : int array; (* 2 per bedge *)
  bedge_cell : int array; (* 1 per bedge *)
  bedge_bound : int array; (* boundary-condition id per bedge *)
  node_coords : float array; (* 2 per node *)
}

let boundary_inflow = 1
let boundary_outflow = 2
let boundary_wall = 3
let boundary_farfield = 4

(* Structural sanity used by tests and by [validate] below. *)
let validate m =
  let check name cond = if not cond then failwith ("Umesh.validate: " ^ name) in
  check "edge_nodes length" (Array.length m.edge_nodes = 2 * m.n_edges);
  check "edge_cells length" (Array.length m.edge_cells = 2 * m.n_edges);
  check "cell_nodes length" (Array.length m.cell_nodes = 4 * m.n_cells);
  check "bedge_nodes length" (Array.length m.bedge_nodes = 2 * m.n_bedges);
  check "bedge_cell length" (Array.length m.bedge_cell = m.n_bedges);
  check "bedge_bound length" (Array.length m.bedge_bound = m.n_bedges);
  check "node_coords length" (Array.length m.node_coords = 2 * m.n_nodes);
  let in_range hi v = v >= 0 && v < hi in
  Array.iter (fun v -> check "edge_nodes range" (in_range m.n_nodes v)) m.edge_nodes;
  Array.iter (fun v -> check "edge_cells range" (in_range m.n_cells v)) m.edge_cells;
  Array.iter (fun v -> check "cell_nodes range" (in_range m.n_nodes v)) m.cell_nodes;
  Array.iter (fun v -> check "bedge_nodes range" (in_range m.n_nodes v)) m.bedge_nodes;
  Array.iter (fun v -> check "bedge_cell range" (in_range m.n_cells v)) m.bedge_cell

(* Dual graph over cells: cells adjacent through an interior edge. *)
let cell_dual_graph m =
  Csr.of_map_rows ~n_vertices:m.n_cells ~n_rows:m.n_edges ~arity:2 m.edge_cells

(* Node graph: nodes joined by mesh edges (interior and boundary). *)
let node_graph m =
  let total = m.n_edges + m.n_bedges in
  let edges = Array.make total (0, 0) in
  for e = 0 to m.n_edges - 1 do
    edges.(e) <- (m.edge_nodes.(2 * e), m.edge_nodes.((2 * e) + 1))
  done;
  for b = 0 to m.n_bedges - 1 do
    edges.(m.n_edges + b) <- (m.bedge_nodes.(2 * b), m.bedge_nodes.((2 * b) + 1))
  done;
  Csr.of_edges ~n:m.n_nodes edges

let cell_centroids m =
  let out = Array.make (2 * m.n_cells) 0.0 in
  for c = 0 to m.n_cells - 1 do
    let cx = ref 0.0 and cy = ref 0.0 in
    for k = 0 to 3 do
      let node = m.cell_nodes.((4 * c) + k) in
      cx := !cx +. m.node_coords.(2 * node);
      cy := !cy +. m.node_coords.((2 * node) + 1)
    done;
    out.(2 * c) <- !cx /. 4.0;
    out.((2 * c) + 1) <- !cy /. 4.0
  done;
  out

(* Generator over a logically rectangular [nx] x [ny] grid of cells.

   [coord i j] gives physical coordinates of node (i, j), i in [0, nx],
   j in [0, ny].  [bound side] assigns boundary ids to the four sides.
   Node (i, j) has index i + j * (nx + 1); cell (i, j) likewise with nx. *)
type side = West | East | South | North

let generate_mapped ~nx ~ny ~coord ~bound =
  if nx < 1 || ny < 1 then invalid_arg "Umesh.generate_mapped: need nx, ny >= 1";
  let n_nodes = (nx + 1) * (ny + 1) in
  let n_cells = nx * ny in
  let node i j = i + (j * (nx + 1)) in
  let cell i j = i + (j * nx) in
  let node_coords = Array.make (2 * n_nodes) 0.0 in
  for j = 0 to ny do
    for i = 0 to nx do
      let x, y = coord i j in
      node_coords.(2 * node i j) <- x;
      node_coords.((2 * node i j) + 1) <- y
    done
  done;
  let cell_nodes = Array.make (4 * n_cells) 0 in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let c = cell i j in
      (* counter-clockwise *)
      cell_nodes.(4 * c) <- node i j;
      cell_nodes.((4 * c) + 1) <- node (i + 1) j;
      cell_nodes.((4 * c) + 2) <- node (i + 1) (j + 1);
      cell_nodes.((4 * c) + 3) <- node i (j + 1)
    done
  done;
  (* Interior edges: vertical edges between horizontally adjacent cells, and
     horizontal edges between vertically adjacent cells. *)
  let n_edges = ((nx - 1) * ny) + (nx * (ny - 1)) in
  let edge_nodes = Array.make (2 * n_edges) 0 in
  let edge_cells = Array.make (2 * n_edges) 0 in
  let e = ref 0 in
  let add_edge n1 n2 c1 c2 =
    edge_nodes.(2 * !e) <- n1;
    edge_nodes.((2 * !e) + 1) <- n2;
    edge_cells.(2 * !e) <- c1;
    edge_cells.((2 * !e) + 1) <- c2;
    incr e
  in
  (* Node order fixes the edge normal: the airfoil-style flux kernels use
     (dy, -dx) with (dx, dy) = x(n1) - x(n2) as the normal pointing from
     cell1 to cell2. *)
  for j = 0 to ny - 1 do
    for i = 1 to nx - 1 do
      add_edge (node i (j + 1)) (node i j) (cell (i - 1) j) (cell i j)
    done
  done;
  for j = 1 to ny - 1 do
    for i = 0 to nx - 1 do
      add_edge (node i j) (node (i + 1) j) (cell i (j - 1)) (cell i j)
    done
  done;
  assert (!e = n_edges);
  (* Boundary edges around the rectangle. *)
  let n_bedges = 2 * (nx + ny) in
  let bedge_nodes = Array.make (2 * n_bedges) 0 in
  let bedge_cell = Array.make n_bedges 0 in
  let bedge_bound = Array.make n_bedges 0 in
  let b = ref 0 in
  let add_bedge n1 n2 c side =
    bedge_nodes.(2 * !b) <- n1;
    bedge_nodes.((2 * !b) + 1) <- n2;
    bedge_cell.(!b) <- c;
    bedge_bound.(!b) <- bound side;
    incr b
  in
  (* Boundary normals (dy, -dx) must point out of the domain. *)
  for j = 0 to ny - 1 do
    add_bedge (node 0 j) (node 0 (j + 1)) (cell 0 j) West;
    add_bedge (node nx (j + 1)) (node nx j) (cell (nx - 1) j) East
  done;
  for i = 0 to nx - 1 do
    add_bedge (node (i + 1) 0) (node i 0) (cell i 0) South;
    add_bedge (node i ny) (node (i + 1) ny) (cell i (ny - 1)) North
  done;
  assert (!b = n_bedges);
  let m =
    {
      n_nodes;
      n_cells;
      n_edges;
      n_bedges;
      edge_nodes;
      edge_cells;
      cell_nodes;
      bedge_nodes;
      bedge_cell;
      bedge_bound;
      node_coords;
    }
  in
  validate m;
  m

(* Channel with a circular-arc bump on the lower wall — the classic
   transonic "Ni bump" geometry that the OP2 Airfoil case models
   (flow past a thin aerofoil section).  Grid points are clustered towards
   the bump in both directions. *)
let generate_airfoil ~nx ~ny () =
  let bump_height = 0.08 and bump_lo = 1.0 and bump_hi = 2.0 in
  let length = 3.0 and height = 2.0 in
  let coord i j =
    let s = Float.of_int i /. Float.of_int nx in
    let t = Float.of_int j /. Float.of_int ny in
    (* Mild clustering towards the lower wall. *)
    let t = t ** 1.3 in
    let x = s *. length in
    let y_floor =
      if x >= bump_lo && x <= bump_hi then begin
        let u = (x -. bump_lo) /. (bump_hi -. bump_lo) in
        bump_height *. sin (Float.pi *. u)
      end
      else 0.0
    in
    (x, y_floor +. (t *. (height -. y_floor)))
  in
  let bound = function
    | West -> boundary_inflow
    | East -> boundary_outflow
    | South -> boundary_wall
    | North -> boundary_farfield
  in
  generate_mapped ~nx ~ny ~coord ~bound

(* Plain unit-square grid, useful for convergence and unit tests. *)
let generate_square ~nx ~ny () =
  let coord i j = (Float.of_int i /. Float.of_int nx, Float.of_int j /. Float.of_int ny) in
  let bound = function
    | West -> boundary_inflow
    | East -> boundary_outflow
    | South | North -> boundary_wall
  in
  generate_mapped ~nx ~ny ~coord ~bound

(* Randomly relabel cells, nodes and edges.  Production meshes arrive with
   poor locality; applying this before a solve recreates that situation so
   that renumbering optimisations (Fig 3's ~30%) have something to recover. *)
let scramble ~seed m =
  let rng = Am_util.Prng.create seed in
  let make_perm n =
    let p = Array.init n Fun.id in
    Am_util.Prng.shuffle rng p;
    p
  in
  (* perm.(old) = new *)
  let cell_perm = make_perm m.n_cells in
  let node_perm = make_perm m.n_nodes in
  let edge_perm = make_perm m.n_edges in
  let permute_data ~perm ~dim src =
    if Array.length src = 0 then src
    else begin
    let dst = Array.make (Array.length src) src.(0) in
    let n = Array.length perm in
    for old_i = 0 to n - 1 do
      let new_i = perm.(old_i) in
      Array.blit src (old_i * dim) dst (new_i * dim) dim
    done;
    dst
    end
  in
  let renumber targets_perm src = Array.map (fun v -> targets_perm.(v)) src in
  {
    m with
    edge_nodes = permute_data ~perm:edge_perm ~dim:2 (renumber node_perm m.edge_nodes);
    edge_cells = permute_data ~perm:edge_perm ~dim:2 (renumber cell_perm m.edge_cells);
    cell_nodes = permute_data ~perm:cell_perm ~dim:4 (renumber node_perm m.cell_nodes);
    bedge_nodes = renumber node_perm m.bedge_nodes;
    bedge_cell = renumber cell_perm m.bedge_cell;
    node_coords = permute_data ~perm:node_perm ~dim:2 m.node_coords;
  }
