(** Typed counter/gauge registry.

    A registry holds named metric cells: monotonic integer {e counters}
    (messages sent, bytes moved, cache hits) and floating-point {e gauges}
    (accumulated seconds).  Cells are registered once by name — registering
    the same name again returns the existing cell — and the whole registry
    is scraped into a single JSON snapshot.

    Updating a cell is a single mutable-field write, so instrumentation can
    leave counters always-on; there is no enabled flag at this level. *)

type t
(** A registry of named cells. *)

type counter
(** A monotonic integer cell. *)

type gauge
(** A floating-point cell. *)

type histogram = Histogram.t
(** A log-bucketed distribution cell (see {!Histogram}). *)

type value = Int of int | Float of float | Hist of Histogram.snapshot

val create : unit -> t

val counter : t -> ?unit_:string -> string -> counter
(** [counter t name] registers (or retrieves) the integer cell [name].
    [unit_] is a human label ("bytes", "elements") carried into reports.
    Raises [Invalid_argument] if [name] is registered as a gauge or a
    histogram. *)

val gauge : t -> ?unit_:string -> string -> gauge
(** Float-valued counterpart of {!counter}. *)

val histogram : t -> ?unit_:string -> string -> histogram
(** Distribution-valued counterpart of {!counter}: registers (or
    retrieves) a histogram cell covered by {!reset}/{!snapshot}/{!to_json}
    like any other cell. *)

val add : counter -> int -> unit
val incr : counter -> unit
val addf : gauge -> float -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one sample (allocation-free; alias of {!Histogram.record}). *)

val value : counter -> int
val valuef : gauge -> float
val name_of : counter -> string

val reset : t -> unit
(** Zero every cell (registrations are kept). *)

val snapshot : t -> (string * value) list
(** All cells, sorted by name. *)

val find : t -> string -> value option

val find_histogram : t -> string -> histogram option

val histograms : t -> histogram list
(** All registered histogram cells, sorted by name. *)

val to_json : t -> string
(** One JSON object mapping cell name to value, sorted by name.  Histogram
    cells render as a nested object
    [{"count":..,"sum":..,"min":..,"max":..,"buckets":{"<i>":<n>,..}}]. *)

val parse_json : string -> (string * value) list
(** Parse a snapshot previously produced by {!to_json} (minimal parser for
    exactly that subset of JSON; raises [Failure] on malformed input).
    Used for round-trip testing and by tools consuming [--obs-json]. *)
