bin/tealeaf.ml: Am_core Am_ops Am_taskpool Am_tealeaf Am_util Arg Cmd Cmdliner Printf Term Unix
