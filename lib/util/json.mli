(** Minimal JSON reader.

    Just enough to load the benchmark dumps ([BENCH*.json]) and counter
    snapshots this repository writes itself: the full value grammar with
    numbers parsed as floats.  No dependency beyond the standard library;
    not a streaming parser — inputs are whole files of at most a few MB. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in source order, duplicates kept *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed).  [Error msg]
    carries the byte offset of the failure. *)

val of_file : string -> (t, string) result

(** {1 Access helpers} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First member of that name in an object. *)

val to_num : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
