(* Tests for CloverLeaf 3D on the Ops3 API. *)

module App = Am_cloverleaf3.App
module Ops3 = Am_ops.Ops3
module Fa = Am_util.Fa
module Pool = Am_taskpool.Pool

let n = 10

let reference = lazy (
  let t = App.create ~n () in
  let s = App.run t ~steps:4 in
  (App.density t, s))

let check ?(tol = 1e-12) name t =
  let d = App.density t and s = App.field_summary t in
  let rd, rs = Lazy.force reference in
  if not (Fa.approx_equal ~tol rd d) then
    Alcotest.failf "%s: density diverges (%g)" name (Fa.rel_discrepancy rd d);
  if Float.abs (s.App.ke -. rs.App.ke) /. (1.0 +. rs.App.ke) > 1e-10 then
    Alcotest.failf "%s: ke diverges" name

let test_mass_conserved () =
  let t = App.create ~n () in
  let s0 = App.field_summary t in
  let s1 = App.run t ~steps:10 in
  Alcotest.(check bool) "mass conserved exactly" true
    (Float.abs (s1.App.mass -. s0.App.mass) /. s0.App.mass < 1e-12)

let test_energy_flows () =
  let t = App.create ~n () in
  let s0 = App.field_summary t in
  let s1 = App.run t ~steps:10 in
  Alcotest.(check bool) "ke grows" true (s1.App.ke > 1e-6);
  Alcotest.(check bool) "ie falls" true (s1.App.ie < s0.App.ie);
  Alcotest.(check bool) "total energy bounded" true
    (s1.App.ie +. s1.App.ke <= s0.App.ie +. s0.App.ke +. 1e-9)

let test_stays_physical () =
  let t = App.create ~n () in
  ignore (App.run t ~steps:20);
  let d = App.density t in
  Alcotest.(check bool) "finite" true (Fa.is_finite d);
  Array.iter (fun v -> if v <= 0.0 then Alcotest.fail "non-positive density") d

let test_shared_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      let t = App.create ~backend:(Ops3.Shared { pool }) ~n () in
      ignore (App.run t ~steps:4);
      check "shared" t)

let test_cuda_backend () =
  let t =
    App.create
      ~backend:
        (Ops3.Cuda_sim { Am_ops.Exec3.tile_x = 4; tile_y = 4; tile_z = 2; staged = true })
      ~n ()
  in
  ignore (App.run t ~steps:4);
  check "cuda staged" t

let test_dist_backend () =
  let t = App.create ~n () in
  Ops3.partition t.App.ctx ~n_ranks:3 ~ref_zsize:n;
  ignore (App.run t ~steps:4);
  check ~tol:0.0 "dist(3)" t

let test_pencil_backend () =
  (* y x z pencil decomposition: full hydro cycle, mirrors, edge-carrying
     two-phase exchanges. *)
  let t = App.create ~n () in
  Ops3.partition_pencil t.App.ctx ~py:2 ~pz:2 ~ref_ysize:n ~ref_zsize:n;
  ignore (App.run t ~steps:4);
  check ~tol:0.0 "pencil(2x2)" t

let test_pencil_hybrid_backend () =
  Pool.with_pool ~size:2 (fun pool ->
      let t = App.create ~n () in
      Ops3.partition_pencil t.App.ctx ~py:2 ~pz:2 ~ref_ysize:n ~ref_zsize:n;
      Ops3.set_rank_execution t.App.ctx (Ops3.Rank_shared pool);
      ignore (App.run t ~steps:4);
      check ~tol:0.0 "pencil(2x2)+shared" t)

let test_hybrid_backend () =
  Pool.with_pool ~size:4 (fun pool ->
      let t = App.create ~n () in
      Ops3.partition t.App.ctx ~n_ranks:2 ~ref_zsize:n;
      Ops3.set_rank_execution t.App.ctx (Ops3.Rank_shared pool);
      ignore (App.run t ~steps:4);
      check ~tol:0.0 "dist(2)+shared" t)

let test_dist_traffic () =
  let t = App.create ~n () in
  Ops3.partition t.App.ctx ~n_ranks:2 ~ref_zsize:n;
  ignore (App.run t ~steps:2);
  match Ops3.comm_stats t.App.ctx with
  | None -> Alcotest.fail "expected stats"
  | Some s ->
    Alcotest.(check bool) "plane exchanges happened" true
      (s.Am_simmpi.Comm.exchanges > 0)

let () =
  Alcotest.run "cloverleaf3"
    [
      ( "physics",
        [
          Alcotest.test_case "mass conserved" `Quick test_mass_conserved;
          Alcotest.test_case "ie -> ke" `Quick test_energy_flows;
          Alcotest.test_case "physical" `Quick test_stays_physical;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "shared" `Quick test_shared_backend;
          Alcotest.test_case "cuda staged" `Quick test_cuda_backend;
          Alcotest.test_case "dist(3)" `Quick test_dist_backend;
          Alcotest.test_case "pencil 2x2" `Quick test_pencil_backend;
          Alcotest.test_case "pencil hybrid" `Quick test_pencil_hybrid_backend;
          Alcotest.test_case "hybrid" `Quick test_hybrid_backend;
          Alcotest.test_case "dist traffic" `Quick test_dist_traffic;
        ] );
    ]
