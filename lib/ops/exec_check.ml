(* 2D sanitizer executor: sequential traversal with access-descriptor guards.

   Structured-mesh kernels receive one staging buffer per argument with
   [dim] values per declared stencil point.  Under this executor every
   buffer carries a tail of canary slots holding a distinguished NaN bit
   pattern, [Read] buffers are snapshot and compared bitwise after the
   kernel, [Write] buffers are poisoned with NaN instead of gathered, and
   written buffers are rejected if any component comes back NaN.  Together
   these catch the three descriptor lies the library's planning depends on
   not happening: writing a [Read] argument, reading a [Write] argument's
   previous value, and indexing a stencil point that was never declared
   (the read lands in the canary tail and the NaN propagates into whatever
   the kernel writes).  Violations raise {!Violation} naming the loop,
   argument, dataset and (x, y) iteration point.

   Clean runs produce results identical to [Exec.run_seq]. *)

module Access = Am_core.Access
module Counters = Am_obs.Counters
module Obs = Am_obs.Obs
open Types

exception Violation of string

let canary_bits = 0x7FF8DEADBEEF0002L
let canary = Int64.float_of_bits canary_bits
let is_canary v = Int64.equal (Int64.bits_of_float v) canary_bits
let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

type guarded =
  | G_dat of {
      dat : dat;
      stencil : stencil;
      access : Access.t;
      stride : stride;
      buf : float array; (* points*dim + pad, canaries in the tail *)
      snapshot : float array; (* points*dim; pre-kernel bits for Read/Rw *)
    }
  | G_gbl of {
      gname : string;
      user_buf : float array;
      access : Access.t;
      buf : float array; (* persists across points, like the seq backend *)
      snapshot : float array;
    }
  | G_idx of { buf : float array }

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let fail ~name ~arg_i ~what ~x ~y fmt =
  Printf.ksprintf
    (fun s ->
      Counters.incr Obs.check_violations;
      violation "check: loop %s, arg %d (%s), point (%d,%d): %s" name arg_i what x y s)
    fmt

let pad_of dim = max 2 dim

let guard_args args =
  List.map
    (function
      | Arg_dat { dat; stencil; access; stride } ->
        let n = dat.dim * Array.length stencil in
        G_dat
          {
            dat;
            stencil;
            access;
            stride;
            buf = Array.make (n + pad_of dat.dim) canary;
            snapshot = Array.make n 0.0;
          }
      | Arg_gbl { name; buf; access } ->
        let dim = Array.length buf in
        let b = Array.make (dim + pad_of dim) canary in
        (match access with
        | Access.Read | Access.Min | Access.Max -> Array.blit buf 0 b 0 dim
        | Access.Inc -> Array.fill b 0 dim 0.0
        | Access.Write | Access.Rw ->
          invalid_arg "ops: Write/Rw access on a global argument");
        G_gbl { gname = name; user_buf = buf; access; buf = b; snapshot = Array.copy buf }
      | Arg_idx -> G_idx { buf = Array.make 4 canary })
    args

let gather ~name ~arg_i g ~x ~y =
  match g with
  | G_gbl _ -> ()
  | G_idx { buf } ->
    buf.(0) <- Float.of_int x;
    buf.(1) <- Float.of_int y
  | G_dat { dat; stencil; access; stride; buf; snapshot } -> (
    match access with
    | Access.Read | Access.Rw ->
      let bx, by = apply_stride stride ~x ~y in
      Array.iteri
        (fun p (dx, dy) ->
          for c = 0 to dat.dim - 1 do
            let v = get dat ~x:(bx + dx) ~y:(by + dy) ~c in
            buf.((p * dat.dim) + c) <- v;
            snapshot.((p * dat.dim) + c) <- v
          done)
        stencil
    | Access.Write -> Array.fill buf 0 (dat.dim * Array.length stencil) canary
    | Access.Inc -> Array.fill buf 0 (dat.dim * Array.length stencil) 0.0
    | Access.Min | Access.Max ->
      fail ~name ~arg_i ~what:dat.dat_name ~x ~y "Min/Max access on a dataset")

(* [light] is the inference-backed fast path: when the static probe proved
   the loop's footprint exact, the bitwise snapshot compares of Read
   staging (the dominant per-slot cost of the sanitizer) are skipped,
   keeping the NaN checks on scattered results AND the cheap canary-pad
   and index-buffer sweeps — "probed clean" is itself a 4-sample fact, so
   an out-of-bounds access or index scribble behind a branch the probes
   never triggered is still caught at the offending element; only the
   Read write-back guard inherits the probe's sampling blind spot.  Loops
   whose footprint was caught lying never run light, so every violation
   the full guards would raise still is. *)
let check_and_scatter ~light ~name ~arg_i g ~x ~y =
  match g with
  | G_idx { buf } ->
    for d = 2 to 3 do
      if not (is_canary buf.(d)) then
        fail ~name ~arg_i ~what:"idx" ~x ~y
          "kernel wrote past the 2 iteration-index slots"
    done;
    if
      (not (same_bits buf.(0) (Float.of_int x)))
      || not (same_bits buf.(1) (Float.of_int y))
    then
      fail ~name ~arg_i ~what:"idx" ~x ~y "kernel wrote the (read-only) index buffer"
  | G_gbl { gname; user_buf; access; buf; snapshot } -> (
    let dim = Array.length user_buf in
    for d = dim to Array.length buf - 1 do
      if not (is_canary buf.(d)) then
        fail ~name ~arg_i ~what:gname ~x ~y
          "kernel wrote past the %d declared component(s) of the global" dim
    done;
    match access with
    | Access.Read ->
      if not light then
        for d = 0 to dim - 1 do
          if not (same_bits buf.(d) snapshot.(d)) then
            fail ~name ~arg_i ~what:gname ~x ~y
              "kernel wrote component %d of a Read global (%.17g -> %.17g)" d
              snapshot.(d) buf.(d)
        done
    | Access.Inc | Access.Min | Access.Max -> ()
    | Access.Write | Access.Rw -> assert false)
  | G_dat { dat; stencil; access; buf; snapshot; _ } -> (
    let n = dat.dim * Array.length stencil in
    for d = n to Array.length buf - 1 do
      if not (is_canary buf.(d)) then
        fail ~name ~arg_i ~what:dat.dat_name ~x ~y
          "kernel wrote past the %d declared stencil value(s): undeclared \
           stencil point or out-of-range component index"
          n
    done;
    match access with
    | Access.Read ->
      if not light then
        for d = 0 to n - 1 do
          if not (same_bits buf.(d) snapshot.(d)) then
            fail ~name ~arg_i ~what:dat.dat_name ~x ~y
              "kernel wrote slot %d of a Read argument (%.17g -> %.17g)" d
              snapshot.(d) buf.(d)
        done
    | Access.Write ->
      (* Center-only by validation: scatter slot p = 0. *)
      for c = 0 to dat.dim - 1 do
        if Float.is_nan buf.(c) then
          fail ~name ~arg_i ~what:dat.dat_name ~x ~y
            "component %d of a Write argument is NaN after the kernel: the \
             kernel read the (poisoned) previous value or never wrote the slot"
            c;
        set dat ~x ~y ~c buf.(c)
      done
    | Access.Rw ->
      for c = 0 to dat.dim - 1 do
        if Float.is_nan buf.(c) && not (Float.is_nan snapshot.(c)) then
          fail ~name ~arg_i ~what:dat.dat_name ~x ~y
            "component %d of an Rw argument became NaN inside the kernel \
             (derived from another argument's poisoned Write buffer)"
            c;
        set dat ~x ~y ~c buf.(c)
      done
    | Access.Inc ->
      for c = 0 to dat.dim - 1 do
        if Float.is_nan buf.(c) then
          fail ~name ~arg_i ~what:dat.dat_name ~x ~y
            "increment component %d is NaN (derived from another argument's \
             poisoned Write buffer)"
            c;
        set dat ~x ~y ~c (get dat ~x ~y ~c +. buf.(c))
      done
    | Access.Min | Access.Max -> assert false)

let merge_gbl g =
  match g with
  | G_dat _ | G_idx _ -> ()
  | G_gbl { user_buf; access; buf; _ } -> (
    match access with
    | Access.Read -> ()
    | Access.Inc ->
      for d = 0 to Array.length user_buf - 1 do
        user_buf.(d) <- user_buf.(d) +. buf.(d)
      done
    | Access.Min ->
      for d = 0 to Array.length user_buf - 1 do
        user_buf.(d) <- Float.min user_buf.(d) buf.(d)
      done
    | Access.Max ->
      for d = 0 to Array.length user_buf - 1 do
        user_buf.(d) <- Float.max user_buf.(d) buf.(d)
      done
    | Access.Write | Access.Rw -> assert false)

let run ?(light = false) ~name ~range ~args ~kernel () =
  Counters.incr Obs.check_loops;
  Counters.add Obs.check_elements (range_size range);
  if light then begin
    Counters.incr Obs.check_light_loops;
    Counters.add Obs.check_light_elements (range_size range)
  end;
  let guarded = Array.of_list (guard_args args) in
  let buffers =
    Array.map
      (function G_dat { buf; _ } -> buf | G_gbl { buf; _ } -> buf | G_idx { buf } -> buf)
      guarded
  in
  for y = range.ylo to range.yhi - 1 do
    for x = range.xlo to range.xhi - 1 do
      Array.iteri (fun i g -> gather ~name ~arg_i:i g ~x ~y) guarded;
      (try kernel buffers
       with Invalid_argument msg ->
         Counters.incr Obs.check_violations;
         violation
           "check: loop %s, point (%d,%d): kernel raised Invalid_argument (%s) \
            — out-of-range staging-buffer index"
           name x y msg);
      Array.iteri (fun i g -> check_and_scatter ~light ~name ~arg_i:i g ~x ~y) guarded
    done
  done;
  Array.iter merge_gbl guarded
