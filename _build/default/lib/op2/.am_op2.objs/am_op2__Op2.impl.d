lib/op2/op2.ml: Am_checkpoint Am_core Am_mesh Am_simmpi Am_taskpool Array Buffer Dist Exec_cuda Exec_seq Exec_shared Exec_vec Fun Hashtbl List Plan Printf Types Unix
