(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

   One checksum shared by the two integrity layers: snapshot files verify
   their body against a stored CRC on load, and the fault-injected
   communicator verifies every halo message envelope before unpacking.
   The accumulator is exposed so callers can fold headers and payloads
   into one running value without concatenating buffers. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Accumulator values are pre-inversion CRC states. *)
let start = 0xFFFFFFFF

let add_byte acc b = (Lazy.force table).((acc lxor b) land 0xff) lxor (acc lsr 8)

let add_string acc s =
  let acc = ref acc in
  String.iter (fun ch -> acc := add_byte !acc (Char.code ch)) s;
  !acc

(* Fold a float as its IEEE-754 bits, little-endian byte order. *)
let add_float acc v =
  let bits = Int64.bits_of_float v in
  let acc = ref acc in
  for i = 0 to 7 do
    acc :=
      add_byte !acc (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done;
  !acc

let finish acc = acc lxor 0xFFFFFFFF

let string s = finish (add_string start s)
let floats a = finish (Array.fold_left add_float start a)
