(** Per-loop performance attribution ("perf doctor").

    Joins measured per-loop wall time, byte counts and GC deltas (from
    {!Am_core.Profile}) against {!Model} predictions for the same loop
    descriptors (from the context's {!Am_core.Trace}), yielding one
    attribution row per loop handle: achieved GB/s, the model's predicted
    GB/s, the ratio, and a verdict.  Surfaced by the drivers'
    [--perf-report] flag and by [bench --json]'s [doctor] section. *)

type verdict =
  | Ok  (** within the agreement band of the analytic model *)
  | Below_model  (** missing its roofline: cache, NUMA, GC or scheduling *)
  | Above_model
      (** "beating" the machine — the byte accounting or descriptor is
          suspect, not the hardware *)

val verdict_to_string : verdict -> string

type row = {
  dr_name : string;
  dr_calls : int;
  dr_seconds : float;  (** total measured wall time *)
  dr_call_seconds : float;
      (** median per-call wall time (histogram p50 when available, else
          mean), so cold calls and GC pauses don't skew the verdict *)
  dr_bytes : int;  (** total useful bytes moved *)
  dr_achieved_gbs : float;
  dr_model_gbs : float;
  dr_pct_of_model : float;  (** 100 x achieved / predicted bandwidth *)
  dr_gc_minor : int;  (** GC deltas accumulate only on traced runs *)
  dr_gc_major : int;
  dr_gc_promoted_words : float;
  dr_verdict : verdict;
}

val default_ok_band : float * float
(** Percent-of-model band treated as agreement, [(60., 140.)]. *)

val diagnose :
  ?device:Machines.device ->
  ?style:Model.style ->
  ?ok_band:float * float ->
  profile:Am_core.Profile.t ->
  loops:Am_core.Descr.loop list ->
  unit ->
  row list
(** One row per profiled loop that has a descriptor in [loops] (first
    occurrence per name wins) and did measurable work; ordered by
    descending total time.  Defaults: the Table-I Xeon node and
    {!Model.default_style}. *)

val report : ?device:Machines.device -> row list -> string
(** Rendered attribution table plus a one-line summary.  [device] only
    labels the title; pass the one given to {!diagnose}. *)
