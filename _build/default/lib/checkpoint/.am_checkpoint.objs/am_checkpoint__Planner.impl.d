lib/checkpoint/planner.ml: Am_core Am_util Array Hashtbl List Option Printf String
