test/test_cloverleaf3.ml: Alcotest Am_cloverleaf3 Am_ops Am_simmpi Am_taskpool Am_util Array Float Lazy
