lib/util/stats.mli:
