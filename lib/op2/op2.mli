(** OP2: the unstructured-mesh domain-specific active library.

    An application declares its mesh once — sets, maps between sets, and
    datasets on sets — and expresses all computation as parallel loops over
    sets, with an access descriptor per argument. From that single
    abstraction the library derives race-free shared-memory schedules
    (two-level colouring), GPU execution plans (block staging, AoS/SoA),
    distributed-memory partitioning with on-demand halo exchanges, mesh
    renumbering, checkpoint analyses and performance-model inputs — the
    design of Giles, Mudalige et al.'s OP2.

    {[
      let ctx = Op2.create () in
      let cells = Op2.decl_set ctx ~name:"cells" ~size:n_cells in
      let edges = Op2.decl_set ctx ~name:"edges" ~size:n_edges in
      let e2c = Op2.decl_map ctx ~name:"e2c" ~from_set:edges ~to_set:cells
                  ~arity:2 ~values in
      let q = Op2.decl_dat ctx ~name:"q" ~set:cells ~dim:4 ~data in
      Op2.par_loop ctx ~name:"flux" edges
        [ Op2.arg_dat_indirect q e2c 0 Access.Read;
          Op2.arg_dat_indirect q e2c 1 Access.Read;
          Op2.arg_dat_indirect res e2c 0 Access.Inc;
          Op2.arg_dat_indirect res e2c 1 Access.Inc ]
        (fun args -> ...)
    ]}

    Kernels receive one staging buffer per argument ([float array array]),
    gathered before the call and scattered back according to the access
    mode; [Inc] buffers arrive zeroed and are added to memory afterwards.
    Kernels must touch only their buffers. *)

module Access = Am_core.Access
module Descr = Am_core.Descr
module Profile = Am_core.Profile
module Trace = Am_core.Trace

type set = Types.set
type map_t = Types.map_t
type dat = Types.dat
type arg = Types.arg

(** Dataset memory layout: array-of-structures or structure-of-arrays. *)
type layout = Types.layout = Aos | Soa

(** Execution backend of a context. [Seq] is the reference; [Shared] runs
    colour-by-colour block schedules on a domain pool; [Cuda_sim] executes
    the structure of OP2's generated CUDA (thread blocks, element colours,
    the three memory strategies of the paper's Fig 7) in-process. The
    distributed backend is entered with {!partition}. *)
type backend =
  | Seq
  | Vec of Exec_vec.config
      (** packed gather / simd-body / packed scatter structure of OP2's
          generated vectorised CPU code, colour-packed for indirect writes *)
  | Shared of { pool : Am_taskpool.Pool.t; block_size : int }
  | Cuda_sim of Exec_cuda.config
  | Check
      (** sanitizer: sequential semantics with canary-padded, access-guarded
          staging buffers — a kernel violating its access descriptors raises
          {!Exec_check.Violation} naming the loop, argument and element.
          Loops with indirect writes additionally have their cached plan's
          colouring machine-checked ({!Plan.validate}) before execution. *)

type ctx

(** Fresh application context (default backend: [Seq]). *)
val create : ?backend:backend -> unit -> ctx

(** Switch backend between loops; rejected on partitioned contexts (ranks
    execute sequentially there). *)
val set_backend : ctx -> backend -> unit

val backend : ctx -> backend

(** Per-loop wall-time/bytes profile (the data behind Table-I-style
    breakdowns). *)
val profile : ctx -> Profile.t

(** Loop-sequence trace; enable to feed the checkpoint planner and the
    performance model. *)
val trace : ctx -> Trace.t

(** {1 Declarations} *)

val decl_set : ctx -> name:string -> size:int -> set

(** [decl_map ctx ~name ~from_set ~to_set ~arity ~values] declares a map
    with [arity] entries per [from_set] element. Values are validated
    against [to_set] and copied. *)
val decl_map :
  ctx -> name:string -> from_set:set -> to_set:set -> arity:int -> values:int array ->
  map_t

(** [decl_dat ctx ~name ~set ~dim ~data] declares a dataset with [dim]
    values per element ([data] copied, AoS order). *)
val decl_dat : ctx -> name:string -> set:set -> dim:int -> data:float array -> dat

(** Zero-initialised dataset. *)
val decl_dat_zero : ctx -> name:string -> set:set -> dim:int -> dat

(** [decl_const ctx ~name values] registers a global simulation constant
    (op_decl_const). Kernels read constants directly as OCaml values; the
    declaration tells the code generator to emit the constant per target
    (CUDA constant memory, C globals) and appears in diagnostics. *)
val decl_const : ctx -> name:string -> float array -> unit

(** Declared constants, in declaration order. *)
val consts : ctx -> (string * float array) list

val sets : ctx -> set list
val maps : ctx -> map_t list
val dats : ctx -> dat list

(** {1 Loop arguments} *)

(** Direct access: element [i] of the loop touches element [i] of the dat.
    Raises [Invalid_argument] when the access mode is not
    {!Access.valid_on_dat} (Min/Max are global reductions). *)
val arg_dat : dat -> Access.t -> arg

(** Indirect access through map component [idx]: element [e] touches
    [map.values.(e*arity + idx)]. Same access-mode validation as
    {!arg_dat}. *)
val arg_dat_indirect : dat -> map_t -> int -> Access.t -> arg

(** Global argument: [Read] broadcasts, [Inc]/[Min]/[Max] reduce. Raises
    [Invalid_argument] when the mode is not {!Access.valid_on_gbl}
    (Write/Rw on a shared scalar cannot be raced safely). *)
val arg_gbl : name:string -> float array -> Access.t -> arg

(** {1 Data access} *)

(** Dataset contents in global element order and AoS layout, whatever the
    backend's internal representation (owned values gathered from ranks on
    partitioned contexts). Always a fresh array. *)
val fetch : ctx -> dat -> float array

(** Overwrite a dataset from a global-order AoS array (scattered to ranks on
    partitioned contexts). *)
val update : ctx -> dat -> float array -> unit

(** In-place AoS/SoA conversion (the paper's automatic layout
    transformation); not available once partitioned. *)
val convert_layout : ctx -> dat -> layout -> unit

(** {1 Optimisations} *)

(** Reverse Cuthill-McKee renumbering on the dual graph of [through]'s
    target set, with induced orderings on every other set; datasets and maps
    are permuted in place and execution plans invalidated. Returns the dual
    graph's mean index distance (before, after). Must precede
    {!partition}. *)
val renumber : ctx -> through:map_t -> float * float

(** Renumber with a caller-supplied seed ordering of one set
    ([perm.(old) = new], e.g. from {!Am_mesh.Reorder.hilbert}); other sets'
    orderings are induced through the maps as for {!renumber}. *)
val renumber_with : ctx -> set:set -> perm:int array -> unit

(** {1 Distributed execution} *)

type partition_strategy = Dist.strategy =
  | Block_on of set  (** contiguous ranges of the given set *)
  | Rcb_on of dat  (** recursive coordinate bisection on a coordinate dat *)
  | Kway_through of map_t
      (** k-way graph partition of the map's target set's dual graph
          (the PT-Scotch/ParMetis role) *)

(** Partition every set across [n_ranks] simulated ranks (propagating the
    primary partition through the declared maps), build halo exchange
    plans, and scatter datasets. Subsequent loops run owner-compute with
    on-demand halo exchanges derived from the access descriptors. *)
val partition : ctx -> n_ranks:int -> strategy:partition_strategy -> unit

val dist : ctx -> Dist.t option

(** Intra-rank execution of the distributed backend: the paper's hybrid
    MPI+OpenMP (shared pool per rank) and MPI+vectorised modes. Rank-local
    execution plans are built from the rank-local map tables. *)
type rank_execution = Dist.rank_exec =
  | Rank_seq
  | Rank_shared of { pool : Am_taskpool.Pool.t; block_size : int }
  | Rank_vec of Exec_vec.config

(** Select intra-rank execution; the context must be partitioned. *)
val set_rank_execution : ctx -> rank_execution -> unit

(** Halo-exchange policy. [On_demand] (the default, and the paper's
    design) exchanges a dataset's halo only when a prior write made it
    stale, driven by the access descriptors; [Eager] exchanges before
    every indirect read — the behaviour of a runtime without dirty-bit
    tracking. Results are identical; communication volume is not (see the
    halo-policy ablation). *)
type halo_policy = On_demand | Eager

val set_halo_policy : ctx -> halo_policy -> unit

(** Communication mode of the partitioned runtime. [Blocking] (the
    default) completes every halo exchange before the loop body runs;
    [Overlap] posts the exchange, executes the {e core} elements — those
    reaching only owned slots through the loop's indirections — while the
    messages are in flight, waits, then executes the {e boundary}
    elements. Under sequential rank execution both modes iterate
    core-then-boundary, so their results are bitwise identical; the modes
    differ only in how much communication time is exposed
    (see {!Am_core.Profile.entry}). *)
type comm_mode = Blocking | Overlap

val set_comm_mode : ctx -> comm_mode -> unit
val comm_mode : ctx -> comm_mode

(** Live communication counters of the partitioned runtime. *)
val comm_stats : ctx -> Am_simmpi.Comm.stats option

(** {1 Fault injection}

    Attach a seeded {!Am_simmpi.Fault} injector: the partitioned runtime's
    messages then travel through the communicator's reliable transport
    (sequence numbers, CRC verification, timeout-driven retransmission),
    and the injector's armed rank crash fires from {!par_loop} when its
    loop counter is reached — raising [Am_simmpi.Fault.Crashed], which a
    recovery harness turns into a restart.  May be called before or after
    {!partition}; the injector is shared across recovery restarts. *)

val set_fault_injector : ctx -> Am_simmpi.Fault.t -> unit
val fault_injector : ctx -> Am_simmpi.Fault.t option

(** {1 The parallel loop} *)

(** Per-call-site loop handle: caches the resolved execution plan and the
    compiled gather/scatter executor for a [par_loop] site, so repeated
    invocations skip the signature-string cache lookup entirely (validity is
    re-checked with pointer compares every call, and the handle re-resolves
    itself after renumbering, layout conversion or dataset updates).
    Same-signature sites share one plan and one executor even through
    distinct handles. Handles are inert on partitioned contexts. *)
type handle = Plan.handle

val make_handle : unit -> handle

(** [par_loop ctx ~name ?info ?handle iter_set args kernel] validates
    [args], records trace/profile entries, and executes [kernel] over every
    element of [iter_set] on the context's backend. [info] declares the
    kernel's per-element flop/transcendental counts for the performance
    model; [handle] memoises plan + executor resolution for the call site. *)
val par_loop :
  ctx ->
  name:string ->
  ?info:Descr.kernel_info ->
  ?handle:handle ->
  set ->
  arg list ->
  (float array array -> unit) ->
  unit

(** {1 Kernel footprint inference}

    On by default and cached once per loop signature: each kernel is probed
    over sentinel-filled staging buffers before its first execution, and the
    observed footprint is compared against the declared descriptor by
    {!Am_analysis.Verify}.  Clean footprints let the Check backend skip the
    bitwise Read snapshot compares the probes already covered.  Dropping
    halo exchanges for indirectly-read datasets the probes never saw the
    kernel read is an explicit opt-in via [set_tighten] (off by default):
    never-observed is a sampled negative, and a data-dependent read the
    probes missed would otherwise consume stale ghost elements silently. *)

val set_infer : ctx -> bool -> unit
val infer_enabled : ctx -> bool

(** Opt in to dropping ghost exchanges for datasets whose reads probing
    never observed.  Off by default; see the caveat above. *)
val set_tighten : ctx -> bool -> unit

val tighten_enabled : ctx -> bool
val footprints : ctx -> Am_core.Probe.info list

(** {1 Diagnostics} *)

(** Human-readable summary of every cached execution plan (block counts and
    both colouring levels) — the op_diagnostic view of Section II.B. *)
val plan_report : ctx -> string

(** Dump a dataset to a text file in global element order; works on
    partitioned contexts too (op_print_dat_to_txtfile). *)
val dump_dat : ctx -> dat -> path:string -> unit

(** Per-set decomposition summary of a partitioned context (owned/halo
    counts, exchange volumes, peer counts); "not partitioned" otherwise. *)
val partition_report : ctx -> string

(** {1 Automatic checkpointing}

    Because all data is handed to the library at declaration time, the
    checkpoint content is decided automatically from the access-execute
    descriptions (paper Section VI): the user only requests a checkpoint;
    the library waits (within one detected loop period) for the cheapest
    trigger, saves exactly the datasets recovery needs, and on restart
    fast-forwards the application to the checkpoint. *)

(** Route subsequent {!par_loop}s through a checkpointing session. *)
val enable_checkpointing : ctx -> unit

(** Ask for a checkpoint at the next (cheapest, within one loop period)
    opportunity. Requires {!enable_checkpointing}. *)
val request_checkpoint : ctx -> unit

val checkpoint_session : ctx -> Am_checkpoint.Runtime.session option

(** Persist the made checkpoint to a snapshot file. *)
val checkpoint_to_file : ctx -> path:string -> unit

(** Restart support: subsequent loops are skipped until the checkpoint
    position recorded in the file, state is restored there, and execution
    resumes. The application simply runs from the beginning. *)
val recover_from_file : ctx -> path:string -> unit
