(* Shared gather/scatter machinery of the OP2 backends.

   Every backend presents the user kernel with the same calling convention:
   one staging buffer per argument, gathered before the kernel runs and
   scattered back according to the access descriptor.  This mirrors the
   paper's generated wrappers (Fig 7), where user functions receive pointers
   prepared by the wrapper, and keeps kernels oblivious to layout (AoS/SoA),
   indirection and distribution.

   Arguments are "compiled" per loop invocation into a flat form that
   resolves dataset arrays and map tables once; the distributed backend
   passes resolvers that substitute rank-local arrays. *)

module Access = Am_core.Access
open Types

type compiled_arg =
  | C_dat of {
      data : float array;
      dim : int;
      layout : layout;
      n : int; (* elements in [data]; layout stride for SoA *)
      access : Access.t;
      map_values : int array; (* [||] for direct args *)
      arity : int;
      idx : int;
      indirect : bool;
    }
  | C_gbl of { user_buf : float array; access : Access.t }

type resolvers = {
  resolve_dat : dat -> float array * int; (* backing array and element count *)
  resolve_map : map_t -> int array;
}

let global_resolvers =
  {
    resolve_dat = (fun d -> (d.data, dat_n_elems d));
    resolve_map = (fun m -> m.values);
  }

let compile ?(resolvers = global_resolvers) args =
  let compile_one = function
    | Arg_dat { dat; map = None; access } ->
      let data, n = resolvers.resolve_dat dat in
      C_dat { data; dim = dat.dim; layout = dat.layout; n; access;
              map_values = [||]; arity = 0; idx = 0; indirect = false }
    | Arg_dat { dat; map = Some (m, k); access } ->
      let data, n = resolvers.resolve_dat dat in
      C_dat { data; dim = dat.dim; layout = dat.layout; n; access;
              map_values = resolvers.resolve_map m; arity = m.arity; idx = k;
              indirect = true }
    | Arg_gbl { buf; access; _ } -> C_gbl { user_buf = buf; access }
  in
  Array.of_list (List.map compile_one args)

(* Worker-local staging buffers: dat args get a [dim]-sized scratch, global
   args an accumulator initialised for their reduction. *)
let make_buffers compiled =
  Array.map
    (function
      | C_dat { dim; _ } -> Array.make dim 0.0
      | C_gbl { user_buf; access } -> (
        match access with
        | Access.Read | Access.Min | Access.Max -> Array.copy user_buf
        | Access.Inc -> Array.make (Array.length user_buf) 0.0
        | Access.Write | Access.Rw ->
          invalid_arg "op2: Write/Rw access on a global argument"))
    compiled

(* Fold one worker's global accumulators into the user buffers.  Callers
   serialise calls (mutex or sequential phase). *)
let merge_globals compiled buffers =
  Array.iteri
    (fun i c ->
      match c with
      | C_dat _ -> ()
      | C_gbl { user_buf; access } -> (
        let acc = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Inc ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- user_buf.(d) +. acc.(d)
          done
        | Access.Min ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.min user_buf.(d) acc.(d)
          done
        | Access.Max ->
          for d = 0 to Array.length user_buf - 1 do
            user_buf.(d) <- Float.max user_buf.(d) acc.(d)
          done
        | Access.Write | Access.Rw -> assert false))
    compiled

let target_elem c e =
  match c with
  | C_dat { indirect = true; map_values; arity; idx; _ } ->
    map_values.((e * arity) + idx)
  | C_dat { indirect = false; _ } -> e
  | C_gbl _ -> -1

let gather compiled buffers e =
  Array.iteri
    (fun i c ->
      match c with
      | C_gbl _ -> ()
      | C_dat ({ data; dim; layout; n; access; _ } as cd) -> (
        let buf = buffers.(i) in
        match access with
        | Access.Inc -> Array.fill buf 0 dim 0.0
        | Access.Read | Access.Rw | Access.Write ->
          (* Write also gathers: kernels receive the previous contents, as
             OP2's pointer-passing convention does. *)
          let elem = target_elem (C_dat cd) e in
          for d = 0 to dim - 1 do
            buf.(d) <- data.(value_index layout ~n ~dim ~elem ~comp:d)
          done
        | Access.Min | Access.Max -> assert false))
    compiled

let scatter compiled buffers e =
  Array.iteri
    (fun i c ->
      match c with
      | C_gbl _ -> ()
      | C_dat ({ data; dim; layout; n; access; _ } as cd) -> (
        let buf = buffers.(i) in
        match access with
        | Access.Read -> ()
        | Access.Write | Access.Rw ->
          let elem = target_elem (C_dat cd) e in
          for d = 0 to dim - 1 do
            data.(value_index layout ~n ~dim ~elem ~comp:d) <- buf.(d)
          done
        | Access.Inc ->
          let elem = target_elem (C_dat cd) e in
          for d = 0 to dim - 1 do
            let j = value_index layout ~n ~dim ~elem ~comp:d in
            data.(j) <- data.(j) +. buf.(d)
          done
        | Access.Min | Access.Max -> assert false))
    compiled

(* Run one element through gather -> kernel -> scatter. *)
let run_element compiled buffers kernel e =
  gather compiled buffers e;
  kernel buffers;
  scatter compiled buffers e
