(* Distributed 3D backend: pencil (y x z) decomposition.

   The 3D analogue of [Dist2]'s process grid: the reference space is split
   into py x pz boxes over the y and z axes (x stays whole — the unit-
   stride axis, kept contiguous for locality, as production codes do for
   pencil decompositions).  Rank r sits at ry = r mod py, rz = r / py.
   Ghost exchange is two-phase: ghost rows (y) over the full stored z
   extent first, then ghost planes (z) over the full y-extended extent,
   which carries the edge cells — the 3D version of Dist2's corner
   argument, with x never decomposed. *)

module Obs = Am_obs.Obs
module Obs_counters = Am_obs.Counters
module Cat = Am_obs.Tracer
module Access = Am_core.Access
module Comm = Am_simmpi.Comm
open Types3

type window = {
  row_lo : int; (* first owned y-row (global numbering) *)
  row_hi : int;
  slab_lo : int; (* first owned z-plane *)
  slab_hi : int;
  y_stride : int; (* stored rows = row_hi - row_lo + 2*halo *)
  data : float array;
}

type dat_dist = { windows : window array; mutable fresh : bool }

type rank_exec = Rank_seq | Rank_shared of Am_taskpool.Pool.t

type t = {
  comm : Comm.t;
  py : int;
  pz : int;
  ref_ysize : int;
  ref_zsize : int;
  chunk_y : int array;
  chunk_z : int array;
  dat_dists : (int, dat_dist) Hashtbl.t;
  env : env;
  mutable rank_exec : rank_exec;
  mutable overlap : bool;
}

let n_ranks t = t.py * t.pz
let rank_at t ~ry ~rz = (rz * t.py) + ry

let owned_box t dat ~ry ~rz =
  let row_lo = if ry = 0 then -dat.halo else t.chunk_y.(ry) in
  let row_hi = if ry = t.py - 1 then dat.ysize + dat.halo else t.chunk_y.(ry + 1) in
  let slab_lo = if rz = 0 then -dat.halo else t.chunk_z.(rz) in
  let slab_hi = if rz = t.pz - 1 then dat.zsize + dat.halo else t.chunk_z.(rz + 1) in
  (row_lo, row_hi, slab_lo, slab_hi)

let pos_of_chunk chunk n v =
  if v < chunk.(1) then 0
  else if v >= chunk.(n - 1) then n - 1
  else begin
    let r = ref 1 in
    while not (v >= chunk.(!r) && v < chunk.(!r + 1)) do
      incr r
    done;
    !r
  end

let rank_of_point t ~y ~z =
  rank_at t ~ry:(pos_of_chunk t.chunk_y t.py y) ~rz:(pos_of_chunk t.chunk_z t.pz z)

let window_index dat w ~x ~y ~z ~c =
  ((((((z - (w.slab_lo - dat.halo)) * w.y_stride) + (y - (w.row_lo - dat.halo)))
     * padded_x dat)
    + (x + dat.halo))
   * dat.dim)
  + c

let window_view dat w : Exec3.view =
  let px = padded_x dat in
  {
    Exec3.vdata = w.data;
    vbase =
      (((((dat.halo - w.slab_lo) * w.y_stride) + (dat.halo - w.row_lo)) * px)
       + dat.halo)
      * dat.dim;
    vplane = w.y_stride * px * dat.dim;
    vrow = px * dat.dim;
    vcol = dat.dim;
  }

let build env ~py ~pz ~ref_ysize ~ref_zsize =
  if py <= 0 || pz <= 0 then invalid_arg "Ops3 pencil: grid extents must be positive";
  if ref_ysize < py then invalid_arg "Ops3 pencil: fewer rows than ranks in y";
  if ref_zsize < pz then invalid_arg "Ops3 pencil: fewer planes than ranks in z";
  let max_halo = List.fold_left (fun acc d -> max acc d.halo) 0 (dats env) in
  let chunk_y = Array.init (py + 1) (fun r -> r * ref_ysize / py) in
  let chunk_z = Array.init (pz + 1) (fun r -> r * ref_zsize / pz) in
  let check name n chunk =
    for r = 0 to n - 1 do
      if n > 1 && chunk.(r + 1) - chunk.(r) < max_halo then
        invalid_arg
          (Printf.sprintf
             "Ops3 pencil: %s chunk %d owns %d cells, fewer than ghost depth %d" name r
             (chunk.(r + 1) - chunk.(r)) max_halo)
    done
  in
  check "y" py chunk_y;
  check "z" pz chunk_z;
  List.iter
    (fun d ->
      if d.ysize < ref_ysize || d.zsize < ref_zsize then
        invalid_arg
          (Printf.sprintf "Ops3 pencil: dat %s smaller than the reference space"
             d.dat_name))
    (dats env);
  let t =
    { comm = Comm.create ~n_ranks:(py * pz); py; pz; ref_ysize; ref_zsize; chunk_y;
      chunk_z; dat_dists = Hashtbl.create 16; env; rank_exec = Rank_seq;
      overlap = false }
  in
  List.iter
    (fun dat ->
      let windows =
        Array.init (py * pz) (fun r ->
            let ry = r mod t.py and rz = r / t.py in
            let row_lo, row_hi, slab_lo, slab_hi = owned_box t dat ~ry ~rz in
            let y_stride = row_hi - row_lo + (2 * dat.halo) in
            let planes = slab_hi - slab_lo + (2 * dat.halo) in
            let w =
              { row_lo; row_hi; slab_lo; slab_hi; y_stride;
                data = Array.make (planes * y_stride * padded_x dat * dat.dim) 0.0 }
            in
            for z = max (z_min dat) (slab_lo - dat.halo)
                to min (z_max dat - 1) (slab_hi + dat.halo - 1) do
              for y = max (y_min dat) (row_lo - dat.halo)
                  to min (y_max dat - 1) (row_hi + dat.halo - 1) do
                for x = -dat.halo to dat.xsize + dat.halo - 1 do
                  for c = 0 to dat.dim - 1 do
                    w.data.(window_index dat w ~x ~y ~z ~c) <- get dat ~x ~y ~z ~c
                  done
                done
              done
            done;
            w)
      in
      Hashtbl.add t.dat_dists dat.dat_id { windows; fresh = true })
    (dats env);
  t

let dat_dist t dat = Hashtbl.find t.dat_dists dat.dat_id

(* Pack/unpack a box: whole padded x rows, y in [y0, y1), z in [z0, z1). *)
let pack_box dat w ~y0 ~y1 ~z0 ~z1 =
  let row_len = padded_x dat * dat.dim in
  let out = Array.make ((y1 - y0) * (z1 - z0) * row_len) 0.0 in
  let k = ref 0 in
  for z = z0 to z1 - 1 do
    for y = y0 to y1 - 1 do
      let base = window_index dat w ~x:(-dat.halo) ~y ~z ~c:0 in
      Array.blit w.data base out !k row_len;
      k := !k + row_len
    done
  done;
  out

let unpack_box dat w ~y0 ~y1 ~z0 ~z1 payload =
  let row_len = padded_x dat * dat.dim in
  let k = ref 0 in
  for z = z0 to z1 - 1 do
    for y = y0 to y1 - 1 do
      let base = window_index dat w ~x:(-dat.halo) ~y ~z ~c:0 in
      Array.blit payload !k w.data base row_len;
      k := !k + row_len
    done
  done

(* An in-flight phase-Y exchange: the posted ghost-row receives, tagged with
   the receiving rank and whether the payload came from the rank below in y
   (lands in the bottom ghost rows) or above. *)
type token = { tok_recvs : (int * bool * Comm.request) list }

(* Pack/post half of the two-phase exchange: phase Y (ghost rows over the
   full stored z extent) is put in flight; phase Z must run after the waits
   because it carries the y-z edge cells filled by phase Y. *)
let exchange_start t dat =
  let dd = dat_dist t dat in
  if not dd.fresh then begin
    Comm.count_exchange t.comm;
    let h = dat.halo in
    if h = 0 then begin
      dd.fresh <- true;
      None
    end
    else begin
      let recvs = ref [] in
      for rz = t.pz - 1 downto 0 do
        for ry = t.py - 2 downto 0 do
          let r = rank_at t ~ry ~rz and rn = rank_at t ~ry:(ry + 1) ~rz in
          let w = dd.windows.(r) and wn = dd.windows.(rn) in
          let z0 = w.slab_lo - h and z1 = w.slab_hi + h in
          let traced = Obs.tracing () in
          if traced then Obs.begin_span ~lane:r ~cat:Cat.Halo_pack "pack_box";
          let up = pack_box dat w ~y0:(w.row_hi - h) ~y1:w.row_hi ~z0 ~z1 in
          if traced then Obs.end_span ~lane:r ();
          ignore (Comm.isend t.comm ~src:r ~dst:rn up);
          if traced then Obs.begin_span ~lane:rn ~cat:Cat.Halo_pack "pack_box";
          let down = pack_box dat wn ~y0:wn.row_lo ~y1:(wn.row_lo + h) ~z0 ~z1 in
          if traced then Obs.end_span ~lane:rn ();
          ignore (Comm.isend t.comm ~src:rn ~dst:r down);
          recvs :=
            (rn, true, Comm.irecv t.comm ~src:r ~dst:rn)
            :: (r, false, Comm.irecv t.comm ~src:rn ~dst:r)
            :: !recvs
        done
      done;
      Some { tok_recvs = !recvs }
    end
  end
  else None

(* Wait half: completes the phase-Y receives, unpacks the ghost rows, then
   runs phase Z blocking — ghost planes over the full y-extended extent,
   carrying the y-z edge cells freshly filled by phase Y. *)
let exchange_finish t dat token =
  let dd = dat_dist t dat in
  let h = dat.halo in
  let traced = Obs.tracing () in
  List.iter
    (fun (r, from_below, req) ->
      let payload = Comm.wait t.comm req in
      let w = dd.windows.(r) in
      let z0 = w.slab_lo - h and z1 = w.slab_hi + h in
      if traced then Obs.begin_span ~lane:r ~cat:Cat.Halo_unpack "unpack_box";
      if from_below then
        unpack_box dat w ~y0:(w.row_lo - h) ~y1:w.row_lo ~z0 ~z1 payload
      else unpack_box dat w ~y0:w.row_hi ~y1:(w.row_hi + h) ~z0 ~z1 payload;
      if traced then Obs.end_span ~lane:r ())
    token.tok_recvs;
  for ry = 0 to t.py - 1 do
    for rz = 0 to t.pz - 2 do
      let r = rank_at t ~ry ~rz and rn = rank_at t ~ry ~rz:(rz + 1) in
      let w = dd.windows.(r) and wn = dd.windows.(rn) in
      let y0 = w.row_lo - h and y1 = w.row_hi + h in
      Comm.send t.comm ~src:r ~dst:rn
        (pack_box dat w ~y0 ~y1 ~z0:(w.slab_hi - h) ~z1:w.slab_hi);
      Comm.send t.comm ~src:rn ~dst:r
        (pack_box dat wn ~y0 ~y1 ~z0:wn.slab_lo ~z1:(wn.slab_lo + h))
    done;
    for rz = 0 to t.pz - 2 do
      let r = rank_at t ~ry ~rz and rn = rank_at t ~ry ~rz:(rz + 1) in
      let w = dd.windows.(r) and wn = dd.windows.(rn) in
      let y0 = w.row_lo - h and y1 = w.row_hi + h in
      unpack_box dat wn ~y0 ~y1 ~z0:(wn.slab_lo - h) ~z1:wn.slab_lo
        (Comm.recv t.comm ~src:r ~dst:rn);
      unpack_box dat w ~y0 ~y1 ~z0:w.slab_hi ~z1:(w.slab_hi + h)
        (Comm.recv t.comm ~src:rn ~dst:r)
    done
  done;
  dd.fresh <- true

(* Two-phase neighbour exchange for one dataset, blocking. *)
let exchange t dat =
  match exchange_start t dat with
  | None -> ()
  | Some token -> exchange_finish t dat token

let par_loop ?ext ?(halo_seconds = ref 0.0) ?(overlap_seconds = ref 0.0) t ~range
    ~args ~kernel =
  List.iter
    (function
      | Arg_dat { stride; _ } when not (is_unit_stride stride) ->
        invalid_arg "ops3-mpi: strided (grid-transfer) stencils are unsupported on \
                     partitioned contexts"
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args;
  (* Stencil-read datasets needing a ghost exchange (deduplicated).  The
     two-phase pencil exchange is all-or-nothing at the full ghost depth,
     so the inference-tightened extents ([ext], -1 where no proof) act as a
     filter: a dataset whose every stencil read was observed centre-only
     skips its exchange outright. *)
  let seen = Hashtbl.create 4 in
  let order = ref [] in
  List.iteri
    (fun i arg ->
      match arg with
      | Arg_dat { dat; stencil; access; _ }
        when Access.reads access && stencil_extent stencil > 0 ->
        let declared = stencil_extent stencil in
        let need =
          match ext with
          | Some e when i < Array.length e && e.(i) >= 0 && e.(i) < declared ->
            e.(i)
          | Some _ | None -> declared
        in
        if not (Hashtbl.mem seen dat.dat_id) then order := dat :: !order;
        let prev = try Hashtbl.find seen dat.dat_id with Not_found -> -1 in
        if need > prev then Hashtbl.replace seen dat.dat_id need
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args;
  let needs =
    List.filter
      (fun (d : dat) ->
        match Hashtbl.find_opt seen d.dat_id with
        | Some need when need > 0 -> true
        | Some _ ->
          Obs_counters.add Obs.halo_depth_saved d.halo;
          false
        | None -> false)
      (List.rev !order)
  in
  let exposed = ref 0.0 and xfer = ref 0.0 in
  let rank_box r =
    let ry = r mod t.py and rz = r / t.py in
    let own_ylo = if ry = 0 then min_int else t.chunk_y.(ry) in
    let own_yhi = if ry = t.py - 1 then max_int else t.chunk_y.(ry + 1) in
    let own_zlo = if rz = 0 then min_int else t.chunk_z.(rz) in
    let own_zhi = if rz = t.pz - 1 then max_int else t.chunk_z.(rz + 1) in
    let ylo = max range.ylo own_ylo and yhi = min range.yhi own_yhi in
    let zlo = max range.zlo own_zlo and zhi = min range.zhi own_zhi in
    if ylo < yhi && zlo < zhi then Some (ylo, yhi, zlo, zhi) else None
  in
  let run_box r ~ylo ~yhi ~zlo ~zhi =
    if ylo < yhi && zlo < zhi then begin
      let resolvers =
        { Exec3.resolve_dat = (fun d -> window_view d (dat_dist t d).windows.(r)) }
      in
      match t.rank_exec with
      | Rank_seq ->
        Exec3.run_seq ~resolvers ~range:{ range with ylo; yhi; zlo; zhi } ~args
          ~kernel ()
      | Rank_shared pool ->
        Exec3.run_shared ~resolvers pool
          ~range:{ range with ylo; yhi; zlo; zhi }
          ~args ~kernel
    end
  in
  (* A global Inc reduction is summed in iteration order: splitting the box
     would reorder the additions, so such loops keep the blocking
     exchange. *)
  let splittable =
    not
      (List.exists
         (function
           | Arg_gbl { access = Access.Inc; _ } -> true
           | Arg_gbl _ | Arg_dat _ | Arg_idx -> false)
         args)
  in
  let tokens =
    if not (t.overlap && splittable) then begin
      List.iter
        (fun dat ->
          let t0 = Unix.gettimeofday () in
          exchange t dat;
          exposed := !exposed +. (Unix.gettimeofday () -. t0))
        needs;
      []
    end
    else
      List.filter_map
        (fun dat ->
          let t0 = Unix.gettimeofday () in
          let tok = exchange_start t dat in
          xfer := !xfer +. (Unix.gettimeofday () -. t0);
          Option.map (fun tok -> (dat, tok)) tok)
        needs
  in
  if tokens = [] then
    for r = 0 to n_ranks t - 1 do
      match rank_box r with
      | None -> ()
      | Some (ylo, yhi, zlo, zhi) -> run_box r ~ylo ~yhi ~zlo ~zhi
    done
  else begin
    (* Interior/boundary split: the interior box stays [margin] away from
       every internal partition boundary.  The margin is the full ghost
       depth (not just the stencil extent) because phase Z packs the planes
       nearest the boundary at wait time — the interior must not have
       touched them.  Centre-only writes make the order immaterial, so
       results match blocking bitwise. *)
    let margin =
      List.fold_left (fun acc (dat, _) -> max acc dat.halo) 0 tokens
    in
    let bounds =
      Array.init (n_ranks t) (fun r ->
          match rank_box r with
          | None -> None
          | Some (ylo, yhi, zlo, zhi) ->
            let ry = r mod t.py and rz = r / t.py in
            let int_ylo =
              if ry > 0 then max ylo (min yhi (t.chunk_y.(ry) + margin)) else ylo
            in
            let int_yhi =
              if ry < t.py - 1 then
                min yhi (max int_ylo (t.chunk_y.(ry + 1) - margin))
              else yhi
            in
            let int_zlo =
              if rz > 0 then max zlo (min zhi (t.chunk_z.(rz) + margin)) else zlo
            in
            let int_zhi =
              if rz < t.pz - 1 then
                min zhi (max int_zlo (t.chunk_z.(rz + 1) - margin))
              else zhi
            in
            Some
              ( (ylo, yhi, zlo, zhi),
                (int_ylo, max int_ylo int_yhi, int_zlo, max int_zlo int_zhi) ))
    in
    let traced = Obs.tracing () in
    let col_cells = range.xhi - range.xlo in
    let t_core = Unix.gettimeofday () in
    Array.iteri
      (fun r b ->
        match b with
        | None -> ()
        | Some (_, (ylo, yhi, zlo, zhi)) ->
          if traced then Obs.begin_span ~lane:r ~cat:Cat.Loop "core";
          run_box r ~ylo ~yhi ~zlo ~zhi;
          Obs_counters.add Obs.core_elements
            (max 0 (yhi - ylo) * max 0 (zhi - zlo) * col_cells);
          if traced then Obs.end_span ~lane:r ())
      bounds;
    let core_seconds = Unix.gettimeofday () -. t_core in
    if tokens <> [] then begin
      let t_wait = Unix.gettimeofday () in
      List.iter (fun (dat, tok) -> exchange_finish t dat tok) tokens;
      xfer := !xfer +. (Unix.gettimeofday () -. t_wait);
      let hidden = Float.min !xfer core_seconds in
      exposed := !exposed +. (!xfer -. hidden);
      overlap_seconds := !overlap_seconds +. hidden
    end;
    (* Boundary frame in the y-z plane: bottom and top z-slabs full y
       width, then the y sides of the middle band. *)
    Array.iteri
      (fun r b ->
        match b with
        | None -> ()
        | Some ((ylo, yhi, zlo, zhi), (int_ylo, int_yhi, int_zlo, int_zhi)) ->
          if traced then Obs.begin_span ~lane:r ~cat:Cat.Loop "boundary";
          run_box r ~ylo ~yhi ~zlo ~zhi:int_zlo;
          run_box r ~ylo ~yhi:int_ylo ~zlo:int_zlo ~zhi:int_zhi;
          run_box r ~ylo:int_yhi ~yhi ~zlo:int_zlo ~zhi:int_zhi;
          run_box r ~ylo ~yhi ~zlo:int_zhi ~zhi;
          Obs_counters.add Obs.boundary_elements
            (max 0
               ((max 0 (yhi - ylo) * max 0 (zhi - zlo))
               - (max 0 (int_yhi - int_ylo) * max 0 (int_zhi - int_zlo)))
            * col_cells);
          if traced then Obs.end_span ~lane:r ())
      bounds
  end;
  halo_seconds := !halo_seconds +. !exposed;
  List.iter
    (function
      | Arg_dat { dat; access; _ } when Access.writes access ->
        (dat_dist t dat).fresh <- false
      | Arg_gbl { access; _ } when access <> Access.Read ->
        Comm.count_reduction t.comm
      | Arg_dat _ | Arg_gbl _ | Arg_idx -> ())
    args

let fetch_interior t dat =
  let dd = dat_dist t dat in
  let out = Array.make (dat.xsize * dat.ysize * dat.zsize * dat.dim) 0.0 in
  let k = ref 0 in
  for z = 0 to dat.zsize - 1 do
    for y = 0 to dat.ysize - 1 do
      let w = dd.windows.(rank_of_point t ~y ~z) in
      for x = 0 to dat.xsize - 1 do
        for c = 0 to dat.dim - 1 do
          out.(!k) <- w.data.(window_index dat w ~x ~y ~z ~c);
          incr k
        done
      done
    done
  done;
  out

(* Pull every window's owned values (global ghost cells included — the
   edge ranks own them) back into the global padded array: the inverse of
   [push].  Reading only from owners never sees a stale ghost copy. *)
let pull t dat =
  let dd = dat_dist t dat in
  for z = z_min dat to z_max dat - 1 do
    for y = y_min dat to y_max dat - 1 do
      let w = dd.windows.(rank_of_point t ~y ~z) in
      for x = -dat.halo to dat.xsize + dat.halo - 1 do
        for c = 0 to dat.dim - 1 do
          set dat ~x ~y ~z ~c w.data.(window_index dat w ~x ~y ~z ~c)
        done
      done
    done
  done

let push t dat =
  let dd = dat_dist t dat in
  for r = 0 to n_ranks t - 1 do
    let w = dd.windows.(r) in
    for z = max (z_min dat) (w.slab_lo - dat.halo)
        to min (z_max dat - 1) (w.slab_hi + dat.halo - 1) do
      for y = max (y_min dat) (w.row_lo - dat.halo)
          to min (y_max dat - 1) (w.row_hi + dat.halo - 1) do
        for x = -dat.halo to dat.xsize + dat.halo - 1 do
          for c = 0 to dat.dim - 1 do
            w.data.(window_index dat w ~x ~y ~z ~c) <- get dat ~x ~y ~z ~c
          done
        done
      done
    done
  done;
  dd.fresh <- true

(* Reflective boundary mirror: each window mirrors the global ghost cells
   it owns (x on every rank — x is never decomposed — y/z on the edge
   ranks), clamped to its stored box; the next on-demand exchange
   propagates mirrored cells across rank boundaries. *)
let mirror t dat ~depth ~sign_x ~sign_y ~sign_z ~center_x ~center_y ~center_z =
  if depth > dat.halo then invalid_arg "Boundary3.mirror: depth exceeds ghost shell";
  let dd = dat_dist t dat in
  let mirror_low centering k =
    match centering with Boundary3.Cell -> k - 1 | Node -> k
  in
  let mirror_high centering size k =
    match centering with Boundary3.Cell -> size - k | Node -> size - 1 - k
  in
  for r = 0 to n_ranks t - 1 do
    let w = dd.windows.(r) in
    let get x y z c = w.data.(window_index dat w ~x ~y ~z ~c) in
    let set x y z c v = w.data.(window_index dat w ~x ~y ~z ~c) <- v in
    let sy0 = w.row_lo - dat.halo and sy1 = w.row_hi + dat.halo in
    let sz0 = w.slab_lo - dat.halo and sz1 = w.slab_hi + dat.halo in
    (* z mirrors (edge rz ranks), over stored y and interior x. *)
    for k = 1 to depth do
      List.iter
        (fun (ghost_z, src_z) ->
          if ghost_z >= w.slab_lo && ghost_z < w.slab_hi then
            for y = max 0 sy0 to min dat.ysize sy1 - 1 do
              for x = 0 to dat.xsize - 1 do
                for c = 0 to dat.dim - 1 do
                  set x y ghost_z c (sign_z *. get x y src_z c)
                done
              done
            done)
        [ (-k, mirror_low center_z k);
          (dat.zsize - 1 + k, mirror_high center_z dat.zsize k) ]
    done;
    (* y mirrors (edge ry ranks), over all stored z and interior x. *)
    for z = sz0 to sz1 - 1 do
      for k = 1 to depth do
        for x = 0 to dat.xsize - 1 do
          for c = 0 to dat.dim - 1 do
            if -k >= w.row_lo && -k < w.row_hi then
              set x (-k) z c (sign_y *. get x (mirror_low center_y k) z c);
            if dat.ysize - 1 + k >= w.row_lo && dat.ysize - 1 + k < w.row_hi then
              set x (dat.ysize - 1 + k) z c
                (sign_y *. get x (mirror_high center_y dat.ysize k) z c)
          done
        done
      done;
      (* x mirrors on every rank, over the stored y extent of this plane
         (ghost rows included so the rank's own edges stay consistent). *)
      for y = sy0 to sy1 - 1 do
        for k = 1 to depth do
          for c = 0 to dat.dim - 1 do
            set (-k) y z c (sign_x *. get (mirror_low center_x k) y z c);
            set (dat.xsize - 1 + k) y z c
              (sign_x *. get (mirror_high center_x dat.xsize k) y z c)
          done
        done
      done
    done
  done;
  dd.fresh <- false
