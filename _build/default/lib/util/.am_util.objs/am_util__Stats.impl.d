lib/util/stats.ml: Array Fa Float
