lib/core/descr.mli: Access
