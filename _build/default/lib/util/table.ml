(* Aligned plain-text tables and CSV output for the benchmark harness.  The
   bench executable prints one table per paper figure/table; keeping the
   renderer here lets tests check formatting without running benchmarks. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns/header length mismatch";
      a
    | None -> List.map (fun _ -> Right) header
  in
  { title; header; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let rows t = List.rev t.rows

let widths t =
  let all = t.header :: rows t in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.header

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let ws = widths t in
  let buf = Buffer.create 256 in
  let line cells =
    let padded =
      List.mapi
        (fun i c -> pad (List.nth t.aligns i) (List.nth ws i) c)
        cells
    in
    Buffer.add_string buf ("| " ^ String.concat " | " padded ^ " |\n")
  in
  let rule () =
    let dashes = List.map (fun w -> String.make (w + 2) '-') ws in
    Buffer.add_string buf ("+" ^ String.concat "+" dashes ^ "+\n")
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  line t.header;
  rule ();
  List.iter line (rows t);
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells) ^ "\n")
  in
  line t.header;
  List.iter line (rows t);
  Buffer.contents buf
