(* Sequential reference backend.

   This is the "generic implementation" of the paper: a plain loop over the
   iteration set, gathering and scattering per element.  It is the
   correctness oracle every other backend is tested against, and the
   human-readable debugging target the source-to-source generator also
   emits. *)

(* [?compiled] lets a loop handle supply a cached executor (see [Plan]);
   without one the arguments are compiled on the spot. *)
let run ?resolvers ?compiled ~set_size ~args ~kernel () =
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Exec_common.compile ?resolvers args
  in
  let buffers = Exec_common.make_buffers compiled in
  for e = 0 to set_size - 1 do
    Exec_common.run_element compiled buffers kernel e
  done;
  if Exec_common.has_globals compiled then
    Exec_common.merge_globals compiled buffers
